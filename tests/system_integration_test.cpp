// End-to-end integration: bootstrap, allocation, streaming, completion.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "media/catalog.hpp"
#include "metrics/collectors.hpp"
#include "workload/arrivals.hpp"
#include "workload/heterogeneity.hpp"

namespace p2prm {
namespace {

using namespace core;
using namespace workload;

SystemConfig small_config(std::uint64_t seed = 7) {
  SystemConfig config;
  config.seed = seed;
  config.max_domain_size = 16;
  return config;
}

struct SmallWorld {
  media::Catalog catalog = media::ladder_catalog();
  System system;
  util::Rng rng{123};
  ObjectPopulation population;
  PeerFactory factory;

  explicit SmallWorld(SystemConfig config = small_config(),
                      PopulationConfig pop = {}, HeterogeneityConfig het = {},
                      ProvisionConfig prov = {})
      : system(config),
        population(catalog, pop, system, rng),
        factory(make_peer_factory(catalog, population, het, prov, system, rng)) {}
};

TEST(SystemIntegration, FirstPeerBecomesResourceManager) {
  SmallWorld world;
  auto [spec, inv] = world.factory();
  const auto id = world.system.add_peer(spec, std::move(inv));
  world.system.run_for(util::seconds(1));
  auto* node = world.system.peer(id);
  ASSERT_NE(node, nullptr);
  EXPECT_TRUE(node->joined());
  EXPECT_EQ(node->role(), overlay::PeerRole::ResourceManager);
  EXPECT_EQ(world.system.resource_manager_ids().size(), 1u);
}

TEST(SystemIntegration, PeersJoinFirstDomain) {
  SmallWorld world;
  const auto ids = bootstrap_network(world.system, world.factory, 8);
  ASSERT_EQ(ids.size(), 8u);
  for (const auto id : ids) {
    EXPECT_TRUE(world.system.peer(id)->joined()) << "peer " << id;
  }
  const auto domains = world.system.domains();
  ASSERT_EQ(domains.size(), 1u);
  EXPECT_EQ(domains[0].members, 8u);
}

TEST(SystemIntegration, DomainSplitsWhenFull) {
  auto config = small_config();
  config.max_domain_size = 6;
  SmallWorld world(config);
  bootstrap_network(world.system, world.factory, 20);
  world.system.run_for(util::seconds(10));
  const auto domains = world.system.domains();
  EXPECT_GE(domains.size(), 2u) << "domain should have split";
  std::size_t members = 0;
  for (const auto& d : domains) {
    EXPECT_LE(d.members, 6u);
    members += d.members;
  }
  EXPECT_EQ(members, 20u);
}

TEST(SystemIntegration, TranscodingTaskCompletesEndToEnd) {
  SmallWorld world;
  const auto ids = bootstrap_network(world.system, world.factory, 10);

  // Request an object the population definitely holds, with a generous
  // deadline, from a random peer.
  const auto& object = world.population.at(0);
  QoSRequirements q;
  q.object = object.id;
  q.acceptable_formats = {object.format};  // passthrough: always feasible
  q.deadline = util::seconds(60);
  const auto task = world.system.submit_task(ids.back(), q);

  world.system.run_for(util::seconds(30));
  const auto* record = world.system.ledger().record(task);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->status, TaskStatus::Completed)
      << "reason: " << record->reason;
  EXPECT_FALSE(record->missed_deadline);
}

TEST(SystemIntegration, TranscodedDeliveryThroughPipeline) {
  SmallWorld world;
  const auto ids = bootstrap_network(world.system, world.factory, 12);

  // Force a real transcode: target a strictly smaller format.
  const auto& object = world.population.at(1);
  media::MediaFormat target = object.format;
  target.resolution = media::kRes320x240;
  target.bitrate_kbps = 64;
  target.codec = media::Codec::MPEG4;

  QoSRequirements q;
  q.object = object.id;
  q.acceptable_formats = {target};
  q.deadline = util::minutes(5);
  const auto task = world.system.submit_task(ids.front(), q);

  world.system.run_for(util::minutes(6));
  const auto* record = world.system.ledger().record(task);
  ASSERT_NE(record, nullptr);
  // Either completed through a chain, or rejected because no service chain
  // exists in this random provisioning — but with 12 peers x 4 services the
  // ladder is almost surely covered. Assert completion to catch pipeline
  // bugs loudly.
  EXPECT_EQ(record->status, TaskStatus::Completed)
      << "reason: " << record->reason;
}

TEST(SystemIntegration, SteadyWorkloadMostlyOnTime) {
  SmallWorld world;
  bootstrap_network(world.system, world.factory, 16);

  RequestConfig rc;
  RequestSynthesizer synth(world.catalog, world.population, rc);
  WorkloadDriver driver(world.system,
                        std::make_unique<PoissonArrivals>(0.5), synth);
  driver.start(world.system.simulator().now() + util::seconds(60));
  world.system.run_for(util::seconds(120));
  world.system.ledger().orphan_pending(world.system.simulator().now());

  const auto& ledger = world.system.ledger();
  EXPECT_GT(ledger.submitted(), 10u);
  EXPECT_GT(ledger.goodput(), 0.5)
      << "completed=" << ledger.completed() << " rejected=" << ledger.rejected()
      << " failed=" << ledger.failed() << " orphaned=" << ledger.orphaned();
}

TEST(SystemIntegration, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    SmallWorld world(small_config(seed));
    bootstrap_network(world.system, world.factory, 10);
    RequestConfig rc;
    RequestSynthesizer synth(world.catalog, world.population, rc);
    WorkloadDriver driver(world.system,
                          std::make_unique<PoissonArrivals>(1.0), synth);
    driver.start(world.system.simulator().now() + util::seconds(30));
    world.system.run_for(util::seconds(60));
    return std::make_tuple(world.system.ledger().submitted(),
                           world.system.ledger().completed(),
                           world.system.network().stats().messages_sent,
                           world.system.network().stats().bytes_sent);
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));  // and seeds actually matter
}

TEST(SystemIntegration, LedgerTracksRejectionWhenObjectUnknown) {
  SmallWorld world;
  const auto ids = bootstrap_network(world.system, world.factory, 6);
  QoSRequirements q;
  q.object = util::ObjectId{999999};  // nobody has this
  q.acceptable_formats = {media::MediaFormat{media::Codec::MPEG4,
                                             media::kRes320x240, 64}};
  q.deadline = util::seconds(30);
  const auto task = world.system.submit_task(ids.front(), q);
  world.system.run_for(util::seconds(10));
  const auto* record = world.system.ledger().record(task);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->status, TaskStatus::Rejected);
}

TEST(SystemIntegration, TrafficAccountingSplitsControlAndData) {
  SmallWorld world;
  const auto ids = bootstrap_network(world.system, world.factory, 8);
  const auto& object = world.population.at(0);
  QoSRequirements q;
  q.object = object.id;
  q.acceptable_formats = {object.format};
  q.deadline = util::seconds(60);
  world.system.submit_task(ids.back(), q);
  world.system.run_for(util::seconds(30));

  const auto split = metrics::split_traffic(world.system.network().stats());
  EXPECT_GT(split.control_messages, 0u);
  EXPECT_GT(split.data_messages, 0u);
  EXPECT_GT(split.data_bytes, 100000u);  // the media payload dominates
}

}  // namespace
}  // namespace p2prm

// Unit tests for the PR 6 data-layout primitives: the size-classed Pool,
// the slot-addressed SlotPool, and the open-addressing FlatMap/FlatSet.
// The fuzz-style cases mirror every operation against the std container
// they replace, so any divergence in observable semantics fails loudly.
// The suite runs under ASan in CI; the pool cases in particular exist to
// prove the thread-local freelist leaks nothing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/arena.hpp"
#include "util/flat_map.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace p2prm {
namespace {

// ---------------------------------------------------------------- Pool ---

TEST(PoolTest, SizeClassBoundaries) {
  // Exact class sizes map to their own class; one past rolls over.
  EXPECT_EQ(util::Pool::class_of(0), 0u);
  EXPECT_EQ(util::Pool::class_of(1), 0u);
  EXPECT_EQ(util::Pool::class_of(64), 0u);
  EXPECT_EQ(util::Pool::class_of(65), 1u);
  EXPECT_EQ(util::Pool::class_of(128), 1u);
  EXPECT_EQ(util::Pool::class_of(129), 2u);
  EXPECT_EQ(util::Pool::class_of(512), 3u);
  EXPECT_EQ(util::Pool::class_of(1024), 4u);
  EXPECT_EQ(util::Pool::class_of(1025), util::Pool::kNumClasses);
}

TEST(PoolTest, ReusesFreedBlocksWithinClass) {
  // The freelist is LIFO, so whatever earlier tests left cached, the block
  // freed immediately before an allocation of the same class comes back.
  void* a = util::Pool::allocate(48);
  util::Pool::deallocate(a, 48);
  const auto before = util::Pool::stats();
  void* b = util::Pool::allocate(40);  // same class (<= 64 bytes)
  const auto after = util::Pool::stats();
  EXPECT_EQ(b, a);
  EXPECT_EQ(after.reused, before.reused + 1);
  EXPECT_EQ(after.fresh, before.fresh);
  util::Pool::deallocate(b, 40);
}

TEST(PoolTest, DistinctClassesDoNotShareFreelists) {
  void* small = util::Pool::allocate(64);
  util::Pool::deallocate(small, 64);
  const auto before = util::Pool::stats();
  void* large = util::Pool::allocate(65);  // class 1: must not reuse class 0
  const auto after = util::Pool::stats();
  EXPECT_EQ(after.fresh + after.reused, before.fresh + before.reused + 1);
  // The freed 64-byte block stays cached for its own class.
  void* small2 = util::Pool::allocate(64);
  EXPECT_EQ(small2, small);
  util::Pool::deallocate(large, 65);
  util::Pool::deallocate(small2, 64);
}

TEST(PoolTest, PooledBlocksSatisfyFundamentalAlignment) {
  for (std::size_t bytes : {1u, 48u, 64u, 100u, 512u, 1024u}) {
    void* p = util::Pool::allocate(bytes);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(std::max_align_t),
              0u)
        << "allocate(" << bytes << ") misaligned";
    util::Pool::deallocate(p, bytes);
  }
}

TEST(PoolTest, OversizeFallsThroughToOperatorNew) {
  const auto before = util::Pool::stats();
  void* p = util::Pool::allocate(util::Pool::kMaxPooledSize + 1);
  const auto after = util::Pool::stats();
  EXPECT_EQ(after.oversize, before.oversize + 1);
  EXPECT_EQ(after.fresh, before.fresh);
  EXPECT_EQ(after.reused, before.reused);
  util::Pool::deallocate(p, util::Pool::kMaxPooledSize + 1);
  // Oversize blocks are not cached: the next oversize call is fresh again.
  void* q = util::Pool::allocate(util::Pool::kMaxPooledSize + 1);
  EXPECT_EQ(util::Pool::stats().oversize, after.oversize + 1);
  util::Pool::deallocate(q, util::Pool::kMaxPooledSize + 1);
}

struct PoolCounted {
  static int live;
  int payload;
  explicit PoolCounted(int p) : payload(p) { ++live; }
  ~PoolCounted() { --live; }
};
int PoolCounted::live = 0;

TEST(PoolTest, PoolNewDeleteRunConstructorsAndDestructors) {
  // No-leak under ASan: every pool_new is paired with pool_delete and the
  // thread-local cache destructor frees whatever stayed on the freelist.
  std::vector<PoolCounted*> objs;
  for (int i = 0; i < 100; ++i) objs.push_back(util::pool_new<PoolCounted>(i));
  EXPECT_EQ(PoolCounted::live, 100);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(objs[static_cast<std::size_t>(i)]->payload, i);
  for (auto* p : objs) util::pool_delete(p);
  EXPECT_EQ(PoolCounted::live, 0);
}

struct alignas(64) Overaligned {
  double values[4];
};

TEST(PoolTest, OveralignedTypesBypassThePool) {
  // The pool only guarantees fundamental alignment; pool_new must route
  // over-aligned types through plain new so alignment still holds.
  auto* p = util::pool_new<Overaligned>();
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(Overaligned), 0u);
  util::pool_delete(p);
}

// ------------------------------------------------------------ SlotPool ---

TEST(SlotPoolTest, SlotsAreRecycledLifo) {
  util::SlotPool<int> pool;
  const auto a = pool.emplace(1);
  const auto b = pool.emplace(2);
  const auto c = pool.emplace(3);
  EXPECT_EQ(pool.size(), 3u);
  pool.erase(b);
  pool.erase(a);
  EXPECT_EQ(pool.emplace(4), a);  // last freed, first reused
  EXPECT_EQ(pool.emplace(5), b);
  EXPECT_EQ(pool.get(c), 3);
  EXPECT_EQ(pool.get(a), 4);
  EXPECT_EQ(pool.get(b), 5);
}

TEST(SlotPoolTest, PointersStableAcrossGrowth) {
  util::SlotPool<std::uint64_t> pool;
  const auto first = pool.emplace(std::uint64_t{7});
  std::uint64_t* p = &pool.get(first);
  // Push well past several chunk boundaries (kChunkSize = 64).
  std::vector<std::uint32_t> slots;
  for (std::uint64_t i = 0; i < 1000; ++i) slots.push_back(pool.emplace(i));
  EXPECT_EQ(&pool.get(first), p);  // chunks never move
  EXPECT_EQ(*p, 7u);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(pool.get(slots[static_cast<std::size_t>(i)]), i);
  }
}

TEST(SlotPoolTest, ClearDestroysLiveObjectsOnly) {
  PoolCounted::live = 0;
  util::SlotPool<PoolCounted> pool;
  std::vector<std::uint32_t> slots;
  for (int i = 0; i < 200; ++i) slots.push_back(pool.emplace(i));
  for (std::size_t i = 0; i < slots.size(); i += 2) pool.erase(slots[i]);
  EXPECT_EQ(PoolCounted::live, 100);
  pool.clear();
  EXPECT_EQ(PoolCounted::live, 0);
  EXPECT_TRUE(pool.empty());
  // Pool is usable after clear.
  const auto s = pool.emplace(42);
  EXPECT_EQ(pool.get(s).payload, 42);
  pool.clear();
}

TEST(SlotPoolTest, MoveTransfersStorage) {
  util::SlotPool<int> a;
  const auto s = a.emplace(9);
  util::SlotPool<int> b = std::move(a);
  EXPECT_EQ(b.get(s), 9);
  EXPECT_EQ(b.size(), 1u);
}

// ------------------------------------------------------------- FlatMap ---

TEST(FlatMapTest, BasicInsertFindErase) {
  util::FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_FALSE(m.erase(1));

  m[1] = 10;
  auto [p, inserted] = m.try_emplace(2, 20);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*p, 20);
  auto [q, inserted2] = m.try_emplace(2, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*q, 20);  // existing entry untouched
  m.insert_or_assign(2, 21);

  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(1));
  ASSERT_NE(m.find(2), nullptr);
  EXPECT_EQ(*m.find(2), 21);
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.contains(1));
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, StrongIdKeys) {
  util::FlatMap<util::PeerId, double> m;
  m[util::PeerId{3}] = 0.5;
  m.try_emplace(util::PeerId{4}, 0.25);
  EXPECT_TRUE(m.contains(util::PeerId{3}));
  ASSERT_NE(m.find(util::PeerId{4}), nullptr);
  EXPECT_EQ(*m.find(util::PeerId{4}), 0.25);
  EXPECT_FALSE(m.contains(util::PeerId{5}));
}

TEST(FlatMapTest, GrowthPreservesAllEntries) {
  util::FlatMap<std::uint64_t, std::uint64_t> m;
  // Far past several rehash doublings from the minimum capacity of 8.
  for (std::uint64_t i = 0; i < 10'000; ++i) m[i] = i * 3;
  EXPECT_EQ(m.size(), 10'000u);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    const auto* v = m.find(i);
    ASSERT_NE(v, nullptr) << "lost key " << i;
    EXPECT_EQ(*v, i * 3);
  }
}

TEST(FlatMapTest, BackwardShiftEraseKeepsClustersReachable) {
  // Sequential ids hash through splitmix64, so build real collision
  // clusters by volume instead: many keys in a small-capacity regime,
  // erased in an adversarial (insertion) order, with every survivor
  // checked after each erase. A tombstone or shift bug shows up as a
  // survivor becoming unreachable mid-cluster.
  util::FlatMap<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kN = 500;
  for (std::uint64_t i = 0; i < kN; ++i) m[i] = i;
  for (std::uint64_t dead = 0; dead < kN; ++dead) {
    EXPECT_TRUE(m.erase(dead));
    EXPECT_FALSE(m.contains(dead));
    for (std::uint64_t alive = dead + 1; alive < kN; alive += 97) {
      ASSERT_NE(m.find(alive), nullptr)
          << "erasing " << dead << " orphaned " << alive;
    }
  }
  EXPECT_TRUE(m.empty());
}

TEST(FlatMapTest, MirrorsUnorderedMapUnderRandomOps) {
  // Differential fuzz: the same random insert/assign/erase stream applied
  // to FlatMap and std::unordered_map must agree on every lookup.
  util::Rng rng(0xFAB);
  util::FlatMap<std::uint64_t, std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  for (int op = 0; op < 20'000; ++op) {
    const std::uint64_t key = rng.below(512);  // small space forces churn
    switch (rng.below(3)) {
      case 0: {
        const std::uint64_t value = rng.next();
        flat.insert_or_assign(key, value);
        ref[key] = value;
        break;
      }
      case 1:
        EXPECT_EQ(flat.erase(key), ref.erase(key) > 0);
        break;
      default: {
        const auto* v = flat.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(v != nullptr, it != ref.end()) << "key " << key;
        if (v != nullptr) {
          EXPECT_EQ(*v, it->second);
        }
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
}

TEST(FlatMapTest, ForEachVisitsEveryEntryExactlyOnce) {
  util::FlatMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t i = 0; i < 100; ++i) m[i] = i;
  std::set<std::uint64_t> seen;
  m.for_each([&](const std::uint64_t& k, std::uint64_t& v) {
    EXPECT_EQ(k, v);
    EXPECT_TRUE(seen.insert(k).second) << "key visited twice";
  });
  EXPECT_EQ(seen.size(), 100u);
}

TEST(FlatMapTest, SlotOrderIsDeterministicForSameInsertionSequence) {
  // The determinism contract the engine relies on: two maps built by the
  // same insertion sequence iterate identically (same platform, same run).
  auto build = [] {
    util::FlatMap<std::uint64_t, std::uint64_t> m;
    util::Rng rng(77);
    for (int i = 0; i < 1000; ++i) m.insert_or_assign(rng.below(600), rng.next());
    return m;
  };
  auto a = build();
  auto b = build();
  std::vector<std::uint64_t> order_a, order_b;
  a.for_each([&](const std::uint64_t& k, std::uint64_t&) { order_a.push_back(k); });
  b.for_each([&](const std::uint64_t& k, std::uint64_t&) { order_b.push_back(k); });
  EXPECT_EQ(order_a, order_b);
}

TEST(FlatMapTest, ProbeLengthReportsHomeSlotAsOne) {
  util::FlatMap<std::uint64_t, int> m;
  EXPECT_EQ(m.probe_length(1), 0u);  // absent (and empty)
  m[1] = 1;
  EXPECT_EQ(m.probe_length(1), 1u);  // alone -> home slot
  EXPECT_EQ(m.probe_length(2), 0u);  // absent
  for (std::uint64_t i = 2; i < 200; ++i) m[i] = 1;
  // Under load some key must sit past its home slot; all stay reachable.
  std::size_t max_probe = 0;
  for (std::uint64_t i = 1; i < 200; ++i) {
    const auto len = m.probe_length(i);
    ASSERT_GE(len, 1u);
    max_probe = std::max(max_probe, len);
  }
  EXPECT_GE(max_probe, 2u);
}

TEST(FlatMapTest, ReserveAvoidsRehashDuringFill) {
  util::FlatMap<std::uint64_t, int> m;
  m.reserve(1000);
  m[42] = 1;
  const int* p = m.find(42);
  for (std::uint64_t i = 0; i < 999; ++i) m[i + 100] = 0;
  // No rehash happened below the reserved size, so the pointer held.
  EXPECT_EQ(m.find(42), p);
}

// ------------------------------------------------------------- FlatSet ---

TEST(FlatSetTest, InsertContainsErase) {
  util::FlatSet<std::uint64_t> s;
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.insert(1));
  EXPECT_FALSE(s.insert(1));  // duplicate
  EXPECT_TRUE(s.contains(1));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.erase(1));
  EXPECT_FALSE(s.erase(1));
  EXPECT_TRUE(s.empty());
}

TEST(FlatSetTest, MirrorsUnorderedSetUnderRandomOps) {
  util::Rng rng(0xBEE);
  util::FlatSet<std::uint64_t> flat;
  std::unordered_set<std::uint64_t> ref;
  for (int op = 0; op < 20'000; ++op) {
    const std::uint64_t key = rng.below(256);
    switch (rng.below(3)) {
      case 0:
        EXPECT_EQ(flat.insert(key), ref.insert(key).second);
        break;
      case 1:
        EXPECT_EQ(flat.erase(key), ref.erase(key) > 0);
        break;
      default:
        ASSERT_EQ(flat.contains(key), ref.count(key) > 0) << "key " << key;
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
}

}  // namespace
}  // namespace p2prm

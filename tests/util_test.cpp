#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "util/args.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace p2prm::util {
namespace {

// ---- ids -------------------------------------------------------------------

TEST(Ids, DistinctTypesAndInvalidSentinel) {
  PeerId p{3};
  TaskId t{3};
  EXPECT_EQ(p.value(), t.value());
  static_assert(!std::is_same_v<PeerId, TaskId>);
  EXPECT_FALSE(PeerId::invalid().valid());
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(to_string(PeerId::invalid()), "<invalid>");
}

TEST(Ids, GeneratorIsMonotonic) {
  IdGenerator<TaskId> gen;
  const auto a = gen.next();
  const auto b = gen.next();
  EXPECT_LT(a, b);
  EXPECT_EQ(gen.issued(), 2u);
}

TEST(Ids, HashSpreadsSequentialIds) {
  std::unordered_set<std::size_t> hashes;
  std::hash<PeerId> h;
  for (std::uint64_t i = 0; i < 1000; ++i) hashes.insert(h(PeerId{i}));
  EXPECT_EQ(hashes.size(), 1000u);  // no collisions on a small sequence
}

// ---- time -------------------------------------------------------------------

TEST(Time, Conversions) {
  EXPECT_EQ(seconds(2), 2'000'000'000);
  EXPECT_EQ(milliseconds(3), 3'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(5)), 5.0);
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_EQ(from_chrono(std::chrono::milliseconds(7)), milliseconds(7));
}

TEST(Time, Formatting) {
  EXPECT_EQ(format_time(seconds(2)), "2.000s");
  EXPECT_EQ(format_time(milliseconds(3)), "3.000ms");
  EXPECT_EQ(format_time(microseconds(4)), "4.000us");
  EXPECT_EQ(format_time(kTimeInfinity), "inf");
}

// ---- rng -------------------------------------------------------------------

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) differs |= (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(1);
  std::unordered_set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(3);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(4);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(rng.pareto(3.0, 2.0), 3.0);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(6);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.bernoulli(0.25);
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.02);
}

TEST(Rng, ForkDecorrelates) {
  Rng a(7);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(8);
  std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v.begin(), v.end());
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Zipf, RankOneMostFrequentAndRatioMatches) {
  Rng rng(10);
  ZipfDistribution zipf(10, 1.0);
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  for (std::size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GE(counts[0], counts[i]);
  }
  // With s=1, P(rank1)/P(rank2) == 2.
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 2.0, 0.2);
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(10, 0.0), std::invalid_argument);
}

// ---- stats -------------------------------------------------------------------

TEST(RunningStats, WelfordMatchesDirectComputation) {
  RunningStats stats;
  std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  double sum = 0.0;
  for (double x : xs) {
    stats.add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size();
  EXPECT_DOUBLE_EQ(stats.mean(), mean);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 16.0);
  EXPECT_EQ(stats.count(), 5u);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  Rng rng(11);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(0, 1);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Samples, QuantilesExact) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_THROW((void)s.quantile(1.5), std::invalid_argument);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(-3.0);   // clamps to first
  h.add(100.0);  // clamps to last
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_FALSE(h.render().empty());
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(TimeSeries, WindowedMean) {
  TimeSeries ts;
  ts.add(0.0, 1.0);
  ts.add(1.0, 2.0);
  ts.add(2.0, 3.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(0.0, 2.0), 1.5);
  EXPECT_DOUBLE_EQ(ts.last(), 3.0);
}

// ---- table -------------------------------------------------------------------

TEST(Table, AlignedOutputAndCsv) {
  Table t({"name", "count"});
  t.cell("alpha").cell(std::int64_t{10}).end_row();
  t.cell("b,c").cell(2.5, 1).end_row();
  const std::string pretty = t.to_string();
  EXPECT_NE(pretty.find("alpha"), std::string::npos);
  EXPECT_NE(pretty.find("-----"), std::string::npos);
  std::ostringstream csv;
  t.write_csv(csv);
  EXPECT_NE(csv.str().find("\"b,c\""), std::string::npos);
}

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  t.cell("only-one");
  EXPECT_THROW(t.end_row(), std::logic_error);
}

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
}

// ---- args -------------------------------------------------------------------

TEST(Args, ParsesAllForms) {
  const char* argv[] = {"prog", "--peers=32", "--seed", "9", "--csv"};
  Args args(5, argv);
  EXPECT_EQ(args.get_int("peers", 0), 32);
  EXPECT_EQ(args.get_int("seed", 0), 9);
  EXPECT_TRUE(args.get_bool("csv", false));
  EXPECT_EQ(args.get_int("missing", 5), 5);
  EXPECT_TRUE(args.unused().empty());
}

TEST(Args, RejectsPositional) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Args(2, argv), std::invalid_argument);
}

TEST(Args, TracksUnusedKeys) {
  const char* argv[] = {"prog", "--typo=1"};
  Args args(2, argv);
  EXPECT_EQ(args.unused().size(), 1u);
}

}  // namespace
}  // namespace p2prm::util

// The umbrella header must compile standalone and expose the public API.
#include "p2prm.hpp"

#include <gtest/gtest.h>

TEST(Umbrella, PublicApiVisible) {
  p2prm::core::SystemConfig config;
  config.seed = 1;
  p2prm::core::System system(config);
  EXPECT_EQ(system.alive_count(), 0u);
  EXPECT_EQ(p2prm::fairness::jain_index(std::vector<double>{1.0, 1.0}), 1.0);
}

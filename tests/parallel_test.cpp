// Differential battery proving the parallel engine equivalent to the
// sequential one (docs/PARALLELISM.md).
//
// For fuzzed ScenarioSpecs, a run under SystemConfig::num_threads in
// {2, 4, 8} must reproduce the sequential run *byte for byte*: the behavior
// digest, every ledger/network counter, the full trace dump, and the
// metrics_json snapshot. The battery runs seeds 1..N at the thread counts
// below; CI's parallel-equivalence job and the P2PRM_PARALLEL_FULL=1
// environment knob crank it to the full 1..200 x {2,4,8} sweep. Every
// parallel run also passes the default invariant set, which includes
// parallel.counters (per-shard sums == global snapshot).
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "check/runner.hpp"
#include "check/scenario.hpp"
#include "core/system.hpp"
#include "core/trace.hpp"
#include "metrics/report.hpp"
#include "sim/parallel.hpp"

namespace p2prm::check {
namespace {

// Everything observable about one run: the digest plus the byte-exact
// artifacts (trace dump, metrics_json) and, for parallel runs, the engine's
// per-shard execution census captured before teardown.
struct Artifacts {
  RunResult result;
  std::string metrics;
  std::string trace;
  std::vector<std::uint64_t> shard_executed;
  std::size_t shard_overrides = 0;  // domains migrated off their hash shard
  std::uint64_t rebalances = 0;     // engine-level migration count
};

std::string dump_trace(const core::Tracer& tracer) {
  std::ostringstream os;
  for (const auto& e : tracer.events()) {
    os << e.at << ' ' << core::trace_kind_name(e.kind) << ' '
       << util::to_string(e.peer) << ' ' << util::to_string(e.task) << ' '
       << util::to_string(e.domain) << ' ' << e.detail << '\n';
  }
  return os.str();
}

Artifacts run_with(const ScenarioSpec& spec, unsigned threads,
                   const ConfigTweakFn& tweak = {}) {
  Artifacts out;
  auto checker = InvariantChecker::with_defaults();
  out.result = run_scenario(
      spec, checker, util::seconds(2),
      [&out](core::System& system) {
        out.metrics = metrics::metrics_json(system);
        out.trace = dump_trace(*system.tracer());
        out.shard_overrides = system.shard_override_count();
        if (const auto* engine = system.simulator().parallel_engine()) {
          out.rebalances = engine->stats().rebalances;
          for (sim::ShardId s = 0; s < engine->shards(); ++s) {
            out.shard_executed.push_back(engine->shard_counters(s).executed);
          }
        }
      },
      threads, tweak);
  return out;
}

void expect_equivalent(const Artifacts& seq, const Artifacts& par,
                       std::uint64_t seed, unsigned threads) {
  const auto tag = [&] {
    std::ostringstream os;
    os << "seed=" << seed << " threads=" << threads;
    return os.str();
  }();
  ASSERT_TRUE(par.result.ok())
      << tag << " parallel violation: " << par.result.violations.front().invariant
      << ": " << par.result.violations.front().message;
  EXPECT_EQ(seq.result.digest, par.result.digest) << tag;
  EXPECT_EQ(seq.result.end_time, par.result.end_time) << tag;
  EXPECT_EQ(seq.result.submitted, par.result.submitted) << tag;
  EXPECT_EQ(seq.result.completed, par.result.completed) << tag;
  EXPECT_EQ(seq.result.rejected, par.result.rejected) << tag;
  EXPECT_EQ(seq.result.failed, par.result.failed) << tag;
  EXPECT_EQ(seq.result.orphaned, par.result.orphaned) << tag;
  EXPECT_EQ(seq.result.missed, par.result.missed) << tag;
  EXPECT_EQ(seq.result.trace_events, par.result.trace_events) << tag;
  EXPECT_EQ(seq.result.net_sent, par.result.net_sent) << tag;
  EXPECT_EQ(seq.result.net_delivered, par.result.net_delivered) << tag;
  EXPECT_EQ(seq.result.domains, par.result.domains) << tag;
  EXPECT_EQ(seq.result.alive, par.result.alive) << tag;
  EXPECT_EQ(seq.trace, par.trace) << tag << ": trace dumps diverge";
  EXPECT_EQ(seq.metrics, par.metrics) << tag << ": metrics_json diverges";
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

bool full_battery() { return env_u64("P2PRM_PARALLEL_FULL", 0) != 0; }

// ---- the battery ----------------------------------------------------------

// Digest + counter equivalence over fuzz seeds. Default: seeds 1..25 at
// {2, 4} threads (a few seconds); P2PRM_PARALLEL_FULL=1 (CI) runs the
// acceptance sweep, seeds 1..200 at {2, 4, 8}.
TEST(ParallelEquivalence, DifferentialBattery) {
  const std::uint64_t seed_end =
      env_u64("P2PRM_PARALLEL_SEED_END", full_battery() ? 201 : 26);
  const std::vector<unsigned> thread_counts =
      full_battery() ? std::vector<unsigned>{2, 4, 8}
                     : std::vector<unsigned>{2, 4};
  for (std::uint64_t seed = 1; seed < seed_end; ++seed) {
    const ScenarioSpec spec = ScenarioSpec::generate(seed);
    const Artifacts seq = run_with(spec, 1);
    ASSERT_TRUE(seq.result.ok())
        << "seed " << seed << " sequential run not clean: "
        << seq.result.violations.front().invariant;
    for (const unsigned threads : thread_counts) {
      const Artifacts par = run_with(spec, threads);
      expect_equivalent(seq, par, seed, threads);
      if (HasFatalFailure()) return;
    }
  }
}

// Byte-exact artifact check at every supported thread count, including 8,
// on a handful of seeds (the battery above covers breadth; this pins the
// full metrics_json / trace dump bytes at depth).
TEST(ParallelEquivalence, ByteArtifactsAcrossThreadCounts) {
  for (const std::uint64_t seed : {1ULL, 4ULL, 9ULL}) {
    const ScenarioSpec spec = ScenarioSpec::generate(seed);
    const Artifacts seq = run_with(spec, 1);
    ASSERT_TRUE(seq.result.ok()) << "seed " << seed;
    for (const unsigned threads : {2U, 4U, 8U}) {
      const Artifacts par = run_with(spec, threads);
      expect_equivalent(seq, par, seed, threads);
      if (HasFatalFailure()) return;
    }
  }
}

// The domain -> shard router must actually spread work: on a multi-domain
// scenario with several shards, more than one shard executes events.
// (Equivalence would hold trivially if everything collapsed onto shard 0.)
TEST(ParallelEquivalence, ShardRoutingSpreadsWork) {
  ScenarioSpec spec = ScenarioSpec::generate(3);
  spec.peers = 24;
  spec.max_domain_size = 6;  // forces several domains
  const Artifacts par = run_with(spec, 4);
  ASSERT_TRUE(par.result.ok());
  ASSERT_EQ(par.shard_executed.size(), 4u);
  std::size_t active_shards = 0;
  for (const auto executed : par.shard_executed) {
    if (executed > 0) ++active_shards;
  }
  EXPECT_GT(active_shards, 1u)
      << "all events executed on one shard; domain routing is degenerate";
}

// EWMA shard rebalancing must be byte-neutral: under OrderedCommit the
// coordinator commits in global (time, id) order regardless of which shard
// hosts a domain, so migrating hot domains between barriers can change only
// timing, never behavior. Seeds 1..N at 4 threads with rebalancing on and
// off, both pinned against the sequential run (P2PRM_PARALLEL_FULL=1 widens
// to the ISSUE's 1..50 acceptance range).
TEST(ShardRebalance, DifferentialOnVsOff) {
  const std::uint64_t seed_end =
      env_u64("P2PRM_REBALANCE_SEED_END", full_battery() ? 51 : 13);
  // Aggressive thresholds so scenarios actually trigger migrations instead
  // of vacuously passing with the policy idle.
  const ConfigTweakFn eager = [](core::SystemConfig& sys) {
    sys.enable_shard_rebalance = true;
    sys.rebalance_interval_windows = 8;
    sys.rebalance_imbalance = 1.05;
  };
  const ConfigTweakFn off = [](core::SystemConfig& sys) {
    sys.enable_shard_rebalance = false;
  };
  std::uint64_t total_rebalances = 0;
  for (std::uint64_t seed = 1; seed < seed_end; ++seed) {
    const ScenarioSpec spec = ScenarioSpec::generate(seed);
    const Artifacts seq = run_with(spec, 1);
    ASSERT_TRUE(seq.result.ok())
        << "seed " << seed << " sequential run not clean: "
        << seq.result.violations.front().invariant;
    const Artifacts on = run_with(spec, 4, eager);
    expect_equivalent(seq, on, seed, 4);
    if (HasFatalFailure()) return;
    const Artifacts no = run_with(spec, 4, off);
    expect_equivalent(seq, no, seed, 4);
    if (HasFatalFailure()) return;
    EXPECT_EQ(no.shard_overrides, 0u)
        << "seed " << seed << ": rebalancing disabled but domains migrated";
    total_rebalances += on.rebalances;
  }
  // The sweep as a whole must have exercised the policy — otherwise the
  // on-vs-off comparison proved nothing.
  EXPECT_GT(total_rebalances, 0u)
      << "no scenario triggered a migration; thresholds too conservative";
}

// Hot-domain migration preserves commit order on a deliberately skewed
// workload: few domains, one of which dominates, with thresholds low
// enough that the hottest domain is moved mid-run.
TEST(ShardRebalance, HotDomainMigrationPreservesCommitOrder) {
  ScenarioSpec spec = ScenarioSpec::generate(5);
  spec.peers = 32;
  spec.max_domain_size = 16;  // one big (hot) domain plus small ones
  const ConfigTweakFn eager = [](core::SystemConfig& sys) {
    sys.enable_shard_rebalance = true;
    sys.rebalance_interval_windows = 4;
    sys.rebalance_imbalance = 1.01;
  };
  const Artifacts seq = run_with(spec, 1);
  ASSERT_TRUE(seq.result.ok())
      << seq.result.violations.front().invariant << ": "
      << seq.result.violations.front().message;
  for (const unsigned threads : {2U, 4U}) {
    const Artifacts par = run_with(spec, threads, eager);
    EXPECT_GT(par.rebalances, 0u)
        << "threads=" << threads
        << ": skewed scenario never migrated its hot domain";
    expect_equivalent(seq, par, 5, threads);
    if (HasFatalFailure()) return;
  }
}

// Faulty + churny scenarios cancel constantly (timers, retries), which is
// what drives tombstone compaction — the equivalence must survive it.
TEST(ParallelEquivalence, FaultHeavyScenario) {
  ScenarioSpec spec = ScenarioSpec::generate(11);
  spec.churn = true;
  spec.crash_fraction = 0.3;
  spec.link.loss = 0.02;
  spec.link.delay = util::milliseconds(5);
  const Artifacts seq = run_with(spec, 1);
  ASSERT_TRUE(seq.result.ok())
      << seq.result.violations.front().invariant << ": "
      << seq.result.violations.front().message;
  for (const unsigned threads : {2U, 8U}) {
    const Artifacts par = run_with(spec, threads);
    expect_equivalent(seq, par, 11, threads);
  }
}

}  // namespace
}  // namespace p2prm::check

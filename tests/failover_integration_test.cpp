// Failure handling end-to-end: member crashes with task recovery, graceful
// leave, RM failover through the backup, and churn survival.
#include <gtest/gtest.h>

#include "check/runner.hpp"
#include "check/scenario.hpp"
#include "core/system.hpp"
#include "media/catalog.hpp"
#include "workload/arrivals.hpp"
#include "workload/churn.hpp"
#include "workload/heterogeneity.hpp"

namespace p2prm {
namespace {

using namespace core;
using namespace workload;

SystemConfig failover_config(std::uint64_t seed = 11) {
  SystemConfig config;
  config.seed = seed;
  config.max_domain_size = 24;
  return config;
}

struct World {
  media::Catalog catalog = media::ladder_catalog();
  System system;
  util::Rng rng{321};
  ObjectPopulation population;
  PeerFactory factory;

  explicit World(SystemConfig config = failover_config())
      : system(config),
        population(catalog, PopulationConfig{}, system, rng),
        factory(make_peer_factory(catalog, population, HeterogeneityConfig{},
                                  ProvisionConfig{}, system, rng)) {}
};

TEST(Failover, GracefulLeaveRemovesMemberFromDomain) {
  World world;
  const auto ids = bootstrap_network(world.system, world.factory, 8);
  const auto rm_id = world.system.resource_manager_ids().at(0);
  util::PeerId victim;
  for (const auto id : ids) {
    if (id != rm_id) victim = id;
  }
  world.system.leave_peer(victim);
  world.system.run_for(util::seconds(5));
  auto* rm = world.system.peer(rm_id)->resource_manager();
  ASSERT_NE(rm, nullptr);
  EXPECT_FALSE(rm->info().domain().has_member(victim));
}

TEST(Failover, CrashedMemberDetectedByReportTimeout) {
  World world;
  const auto ids = bootstrap_network(world.system, world.factory, 8);
  const auto rm_id = world.system.resource_manager_ids().at(0);
  util::PeerId victim;
  for (const auto id : ids) {
    if (id != rm_id) victim = id;
  }
  world.system.crash_peer(victim);  // silent: no LeaveNotice
  world.system.run_for(util::seconds(10));
  auto* rm = world.system.peer(rm_id)->resource_manager();
  ASSERT_NE(rm, nullptr);
  EXPECT_FALSE(rm->info().domain().has_member(victim));
  EXPECT_GE(rm->stats().member_failures, 1u);
}

TEST(Failover, BackupTakesOverAfterRmCrash) {
  World world;
  bootstrap_network(world.system, world.factory, 10);
  // Let backup sync run a few rounds.
  world.system.run_for(util::seconds(5));
  const auto old_rm = world.system.resource_manager_ids().at(0);

  world.system.crash_peer(old_rm);
  world.system.run_for(util::seconds(15));

  const auto rms = world.system.resource_manager_ids();
  ASSERT_EQ(rms.size(), 1u) << "exactly one RM should lead the domain";
  EXPECT_NE(rms[0], old_rm);
  auto* rm = world.system.peer(rms[0])->resource_manager();
  // The restored info base kept the membership (minus the dead RM).
  EXPECT_GE(rm->info().domain().size(), 8u);
  EXPECT_FALSE(rm->info().domain().has_member(old_rm));
  // Members follow the new RM.
  for (const auto id : world.system.alive_peer_ids()) {
    EXPECT_EQ(world.system.peer(id)->current_rm(), rms[0]) << "peer " << id;
  }
}

TEST(Failover, TasksSurviveRmFailover) {
  World world;
  const auto ids = bootstrap_network(world.system, world.factory, 12);
  world.system.run_for(util::seconds(5));
  const auto rm_id = world.system.resource_manager_ids().at(0);

  // A long-deadline task whose pipeline outlives the RM crash.
  const auto& object = world.population.at(0);
  QoSRequirements q;
  q.object = object.id;
  q.acceptable_formats = {object.format};
  q.deadline = util::minutes(5);
  util::PeerId origin;
  for (const auto id : ids) {
    if (id != rm_id) origin = id;
  }
  const auto task = world.system.submit_task(origin, q);
  // Crash the RM while the task runs.
  world.system.run_for(util::milliseconds(100));
  world.system.crash_peer(rm_id);
  world.system.run_for(util::minutes(2));

  const auto* record = world.system.ledger().record(task);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->status, TaskStatus::Completed)
      << "reason: " << record->reason;
}

TEST(Failover, TaskRecoveredWhenHopPeerCrashes) {
  // Deterministically construct a domain where the only two providers of a
  // conversion exist, kill the chosen one mid-flight, and verify the RM
  // recomposes onto the other.
  SystemConfig config = failover_config();
  config.max_domain_size = 8;
  World world(config);
  auto& system = world.system;

  const auto fig = media::figure1_catalog();

  auto add_peer = [&](std::vector<media::MediaObject> objects,
                      std::vector<ServiceOffering> services) {
    overlay::PeerSpec spec;
    spec.capacity_ops_per_s = 100e6;
    spec.link.uplink_bytes_per_s = 1.25e7;
    spec.link.downlink_bytes_per_s = 1.25e7;
    spec.online_since = -util::minutes(60);
    PeerInventory inv;
    inv.objects = std::move(objects);
    inv.services = std::move(services);
    const auto id = system.add_peer(spec, std::move(inv));
    system.run_for(util::milliseconds(50));
    return id;
  };

  util::Rng orng{5};
  const auto object =
      media::make_object(system.next_object_id(), fig.v1, 20.0, orng);

  add_peer({}, {});  // founder/RM
  const auto source = add_peer({object}, {});
  const auto codec_host =
      add_peer({}, {{system.next_service_id(), fig.edges[0]}});  // e1
  const auto host_a =
      add_peer({}, {{system.next_service_id(), fig.edges[1]}});  // e2
  const auto host_b =
      add_peer({}, {{system.next_service_id(), fig.edges[2]}});  // e3
  const auto sink = add_peer({}, {});
  system.run_for(util::seconds(3));

  QoSRequirements q;
  q.object = object.id;
  q.acceptable_formats = {fig.v3};
  q.deadline = util::minutes(4);
  const auto task = system.submit_task(sink, q);
  system.run_for(util::milliseconds(500));

  // Find which of host_a/host_b got the second hop and kill it.
  const auto rm_id = system.resource_manager_ids().at(0);
  auto* rm = system.peer(rm_id)->resource_manager();
  const auto* active = rm->info().task(task);
  ASSERT_NE(active, nullptr);
  ASSERT_EQ(active->sg.hop_count(), 2u);
  const auto chosen = active->sg.hops()[1].peer;
  ASSERT_TRUE(chosen == host_a || chosen == host_b);
  system.crash_peer(chosen);
  system.run_for(util::minutes(3));

  const auto* record = system.ledger().record(task);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->status, TaskStatus::Completed)
      << "reason: " << record->reason;
  EXPECT_GE(rm->stats().recoveries_succeeded, 1u);
  (void)codec_host;
  (void)source;
}

TEST(Failover, TaskFailsWhenNoSubstituteExists) {
  SystemConfig config = failover_config();
  config.redirect_across_domains = false;
  World world(config);
  auto& system = world.system;
  const auto fig = media::figure1_catalog();

  auto add_peer = [&](std::vector<media::MediaObject> objects,
                      std::vector<ServiceOffering> services) {
    overlay::PeerSpec spec;
    spec.capacity_ops_per_s = 100e6;
    spec.online_since = -util::minutes(60);
    PeerInventory inv;
    inv.objects = std::move(objects);
    inv.services = std::move(services);
    const auto id = system.add_peer(spec, std::move(inv));
    system.run_for(util::milliseconds(50));
    return id;
  };

  util::Rng orng{6};
  const auto object =
      media::make_object(system.next_object_id(), fig.v2, 20.0, orng);
  add_peer({}, {});
  add_peer({object}, {});
  const auto only_host =
      add_peer({}, {{system.next_service_id(), fig.edges[1]}});  // sole e2
  const auto sink = add_peer({}, {});
  system.run_for(util::seconds(3));

  QoSRequirements q;
  q.object = object.id;
  q.acceptable_formats = {fig.v3};
  q.deadline = util::minutes(4);
  const auto task = system.submit_task(sink, q);
  system.run_for(util::milliseconds(500));
  system.crash_peer(only_host);
  system.run_for(util::seconds(30));

  const auto* record = system.ledger().record(task);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->status, TaskStatus::Failed);
}

TEST(Failover, TaskSubmittedMomentsBeforeRmCrashStillResolves) {
  // The hardest window for the allocation RPC: the TaskQuery is in flight
  // (or just arrived) when the primary RM dies, so no TaskAccept/TaskReject
  // ever comes back from it. The origin's retry loop must re-send until the
  // backup takes over and answer — the task must not hang as Pending.
  World world;
  const auto ids = bootstrap_network(world.system, world.factory, 12);
  world.system.run_for(util::seconds(5));  // backup sync settles
  const auto rm_id = world.system.resource_manager_ids().at(0);

  const auto& object = world.population.at(0);
  QoSRequirements q;
  q.object = object.id;
  q.acceptable_formats = {object.format};
  q.deadline = util::minutes(5);
  util::PeerId origin;
  for (const auto id : ids) {
    if (id != rm_id) origin = id;
  }
  const auto task = world.system.submit_task(origin, q);
  // Crash the RM before the query's one-way latency elapses: the message
  // dies with the receiver and only a retry can save the task.
  world.system.run_for(util::microseconds(100));
  world.system.crash_peer(rm_id);
  world.system.run_for(util::minutes(2));

  const auto* record = world.system.ledger().record(task);
  ASSERT_NE(record, nullptr);
  EXPECT_NE(record->status, TaskStatus::Pending)
      << "query lost to the dead RM was never retried";
  EXPECT_EQ(record->status, TaskStatus::Completed)
      << "reason: " << record->reason;
  // The answer came from the backup, after at least one retry.
  const auto* node = world.system.peer(origin);
  ASSERT_NE(node, nullptr);
  EXPECT_GE(node->stats().query_retry.retries, 1u);
  const auto rms = world.system.resource_manager_ids();
  ASSERT_EQ(rms.size(), 1u);
  EXPECT_NE(rms[0], rm_id);
}

TEST(Failover, SplitBrainResolvedAfterPartitionHeals) {
  World world;
  bootstrap_network(world.system, world.factory, 12);
  world.system.run_for(util::seconds(5));  // backup sync settles
  const auto old_rm = world.system.resource_manager_ids().at(0);

  // Cut the RM off (it stays alive, believing it still leads).
  world.system.network().isolate({old_rm});
  world.system.run_for(util::seconds(20));
  {
    // The majority side elects the backup; the isolated RM notices it lost
    // every member to failure detection and demotes itself, so the split
    // brain is short-lived even while the partition holds.
    const auto rms = world.system.resource_manager_ids();
    ASSERT_GE(rms.size(), 1u);
    ASSERT_LE(rms.size(), 2u);
    bool majority_has_new_leader = false;
    for (const auto id : rms) majority_has_new_leader |= (id != old_rm);
    EXPECT_TRUE(majority_has_new_leader);
  }
  // Heal: the deposed RM's rejoin attempts now reach the network.
  world.system.network().heal_partition();
  world.system.run_for(util::seconds(20));
  const auto rms = world.system.resource_manager_ids();
  ASSERT_EQ(rms.size(), 1u) << "split brain must resolve to one RM";
  EXPECT_NE(rms[0], old_rm);
  // The old RM rejoined as a regular member of the domain.
  auto* node = world.system.peer(old_rm);
  EXPECT_TRUE(node->joined());
  EXPECT_EQ(node->current_rm(), rms[0]);
  auto* new_rm = world.system.peer(rms[0])->resource_manager();
  EXPECT_TRUE(new_rm->info().domain().has_member(old_rm));
}

TEST(Failover, OrphanedTasksAreGarbageCollected) {
  SystemConfig config = failover_config();
  config.task_gc_grace = util::seconds(5);
  World world(config);
  const auto ids = bootstrap_network(world.system, world.factory, 10);
  const auto rm_id = world.system.resource_manager_ids().at(0);
  auto* rm = world.system.peer(rm_id)->resource_manager();

  // Submit a task, then crash its sink so TaskCompleted never arrives.
  const auto& object = world.population.at(0);
  QoSRequirements q;
  q.object = object.id;
  q.acceptable_formats = {object.format};
  q.deadline = util::seconds(10);
  util::PeerId sink;
  for (const auto id : ids) {
    if (id != rm_id) sink = id;
  }
  const auto task = world.system.submit_task(sink, q);
  world.system.run_for(util::milliseconds(200));
  // Confirm the RM tracks it, then remove the sink silently... but a
  // detected sink failure already cleans up. Instead simulate a lost
  // completion: crash the sink *after* data is in flight but keep the RM
  // from detecting it quickly by using the member timeout. The GC must
  // reap the task within deadline + grace regardless of which mechanism
  // wins, leaving the info base empty.
  world.system.crash_peer(sink);
  world.system.run_for(util::seconds(40));
  EXPECT_EQ(rm->info().task(task), nullptr);
  EXPECT_EQ(rm->info().running_task_ids().size(), 0u);
}

TEST(Failover, NetworkSurvivesSustainedChurn) {
  World world;
  bootstrap_network(world.system, world.factory, 20);

  ChurnConfig churn_config;
  churn_config.mean_session_s = 30.0;
  churn_config.crash_fraction = 0.5;
  ChurnDriver churn(world.system, world.factory, churn_config);
  churn.track_all_alive();

  RequestConfig rc;
  RequestSynthesizer synth(world.catalog, world.population, rc);
  WorkloadDriver driver(world.system,
                        std::make_unique<PoissonArrivals>(0.3), synth);
  driver.start(world.system.simulator().now() + util::seconds(90));
  world.system.run_for(util::seconds(150));
  churn.stop();

  EXPECT_GT(churn.stats().departures, 5u);
  EXPECT_GT(world.system.alive_count(), 5u);
  // The network still functions: most joined peers follow a live RM.
  std::size_t with_rm = 0, joined = 0;
  for (const auto id : world.system.alive_peer_ids()) {
    auto* node = world.system.peer(id);
    if (!node->joined()) continue;
    ++joined;
    const auto rm = node->current_rm();
    auto* rm_node = world.system.peer(rm);
    if (rm_node != nullptr && rm_node->alive()) ++with_rm;
  }
  ASSERT_GT(joined, 0u);
  EXPECT_GE(static_cast<double>(with_rm) / static_cast<double>(joined), 0.8);
  // And some work still completes under churn.
  world.system.ledger().orphan_pending(world.system.simulator().now());
  EXPECT_GT(world.system.ledger().completed(), 0u);
}

TEST(Failover, BackupPromotionRacesDomainSplitUnderInvariants) {
  // The nastiest failover interleaving: the primary RM crashes for good
  // (backup must promote) and, while the promotion is still settling, a
  // partition isolates whoever leads next — a domain split racing the
  // takeover. Instead of hand-wiring the schedule, the scenario is expressed
  // as a fuzzer ScenarioSpec: the run executes under the full system-wide
  // invariant checker and the exact schedule is replayable from a one-line
  // repro string (printed on failure below).
  check::ScenarioSpec spec;
  spec.seed = 4242;
  spec.peers = 14;
  spec.max_domain_size = 8;
  spec.het = 1;
  spec.task_cap = 12;
  spec.arrival_rate = 0.6;
  spec.workload = util::seconds(24);
  spec.drain = util::seconds(80);
  // t=+6s: kill the primary permanently (down < 0 = never restarts).
  spec.crashes.push_back(check::CrashSpec{util::seconds(6), -1, true, 0});
  // t=+10s: isolate whoever is primary *now* — the freshly promoted backup —
  // for 8s, forcing a second takeover that must reconcile on heal.
  spec.partitions.push_back(
      check::PartitionSpec{util::seconds(10), util::seconds(8)});

  auto checker = check::InvariantChecker::with_defaults();
  std::size_t final_rm_count = 0;
  std::size_t attached = 0, joined = 0;
  const check::RunResult result = check::run_scenario(
      spec, checker, util::seconds(2), [&](core::System& system) {
        final_rm_count = system.resource_manager_ids().size();
        for (const auto id : system.alive_peer_ids()) {
          auto* node = system.peer(id);
          if (node == nullptr || !node->joined()) continue;
          ++joined;
          auto* rm_node = system.peer(node->current_rm());
          if (rm_node != nullptr && rm_node->alive()) ++attached;
        }
      });

  for (const auto& v : result.violations) {
    ADD_FAILURE() << v.invariant << " @" << v.at << ": " << v.message
                  << "\n  repro: " << spec.repro();
  }
  // The promotion succeeded: leadership exists and every joined peer follows
  // a live RM after the split healed and the system quiesced.
  EXPECT_GE(final_rm_count, 1u);
  ASSERT_GT(joined, 0u);
  EXPECT_EQ(attached, joined);
  // Work kept flowing through both takeovers.
  EXPECT_GT(result.submitted, 0u);
  EXPECT_GT(result.completed, 0u);
}

}  // namespace
}  // namespace p2prm

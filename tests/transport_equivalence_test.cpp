// Sim-vs-loopback equivalence (the tentpole proof obligation of the
// transport redesign, see docs/TRANSPORT.md).
//
// The same DeploymentPlan runs twice — once on the deterministic sim
// Network, once over real loopback TCP — and must reach the same steady
// state at the ledger level. The claim is deliberately about terminal
// counts, not timing: socket delivery order across peer pairs is
// scheduling-dependent, so byte-level digests would not be stable, but
// the workload's outcome is.
//
// Three fault profiles per seed (docs/FAULT_MODEL.md), with a layered
// contract:
//   benign     — byte-identical terminal ledgers: identical admission
//                decisions (structural rejections included) and every
//                admitted task completes on both transports.
//   loss       — 3% uniform frame loss on every link. The injectors draw
//                from different RNG streams per transport (message-level
//                RNG vs per-frame hash shim), so they drop *different*
//                traffic and exact completion counts may differ; what must
//                hold on both: loss demonstrably fired, every task still
//                got an admission decision (retried control plane), and
//                nothing was orphaned.
//   partition  — the bootstrap RM is cut off for 3 s mid-workload and
//                healed long before the drain ends; both transports must
//                blackhole traffic during the window, then reconverge to a
//                decided, orphan-free ledger.
//
// Labelled `long fault`: each combo runs a full (accelerated) realtime
// deployment of ~28 sim-seconds at time_scale 0.05.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "workload/deployment.hpp"

namespace {

using namespace p2prm;

enum class Profile { Benign, Loss, Partition };

const char* profile_name(Profile p) {
  switch (p) {
    case Profile::Benign: return "Benign";
    case Profile::Loss: return "Loss";
    case Profile::Partition: return "Partition";
  }
  return "?";
}

workload::DeploymentConfig config_for(std::uint64_t seed, Profile profile,
                                      std::uint16_t base_port) {
  workload::DeploymentConfig c =
      workload::DeploymentConfig::benign(seed, /*peers=*/10);
  // Compact timeline: ~28 sim-seconds; at time_scale 0.05 a socket run
  // takes ~1.5 wall-seconds. The drain stays generous relative to the
  // pipelines in flight (clips are 2-6 media-seconds).
  c.workload = util::seconds(8);
  c.drain = util::seconds(15);
  c.task_cap = 10;
  c.base_port = base_port;
  c.time_scale = 0.05;
  switch (profile) {
    case Profile::Benign:
      break;
    case Profile::Loss:
      c.fault_loss = 0.03;
      break;
    case Profile::Partition:
      c.partition_at = util::seconds(2);
      c.partition_hold = util::seconds(3);
      break;
  }
  return c;
}

using Combo = std::tuple<std::uint64_t, Profile>;

class TransportEquivalence : public ::testing::TestWithParam<Combo> {};

TEST_P(TransportEquivalence, PlanReachesTheSameSteadyState) {
  const auto [seed, profile] = GetParam();
  // Distinct port range per combo: ctest may run suites concurrently.
  const auto index = static_cast<std::uint16_t>(
      (seed - 1) * 3 + static_cast<std::uint16_t>(profile));
  const auto base_port = static_cast<std::uint16_t>(25000 + 100 * index);
  const workload::DeploymentConfig config =
      config_for(seed, profile, base_port);
  const workload::DeploymentPlan plan = workload::DeploymentPlan::build(config);
  ASSERT_GT(plan.submissions.size(), 0u) << "degenerate plan for seed " << seed;
  ASSERT_EQ(config.faulty(), profile != Profile::Benign);

  const workload::DeploymentOutcome sim =
      plan.run(core::TransportKind::Sim);
  const workload::DeploymentOutcome socket =
      plan.run(core::TransportKind::Socket);

  const auto dump = [](const char* label,
                       const workload::DeploymentOutcome& o) {
    std::cout << "  " << label << ": submitted=" << o.submitted
              << " admitted=" << o.admitted << " completed=" << o.completed
              << " rejected=" << o.rejected << " failed=" << o.failed
              << " orphaned=" << o.orphaned << " pending=" << o.pending
              << "\n";
  };
  dump("sim   ", sim);
  dump("socket", socket);

  // Every profile: both transports executed the full plan, the retried
  // control plane gave every task an admission decision despite the
  // faults, and nothing was orphaned (no peer actually died).
  EXPECT_EQ(sim.submitted, plan.submissions.size());
  EXPECT_EQ(socket.submitted, plan.submissions.size());
  EXPECT_EQ(sim.admitted + sim.rejected, sim.submitted)
      << "sim run stranded a task without an admission decision";
  EXPECT_EQ(socket.admitted + socket.rejected, socket.submitted)
      << "socket run stranded a task without an admission decision";
  EXPECT_EQ(sim.orphaned, 0u);
  EXPECT_EQ(socket.orphaned, 0u);

  switch (profile) {
    case Profile::Benign:
      // The strong claim: byte-identical terminal ledgers. Rejections are
      // allowed (admission control can structurally reject a plan's task)
      // but must be the *same* deterministic decision on both transports,
      // and everything admitted completes — nothing fails, stalls or
      // leaks.
      EXPECT_EQ(sim.admitted, socket.admitted);
      EXPECT_EQ(sim.completed, socket.completed);
      EXPECT_EQ(sim.rejected, socket.rejected);
      EXPECT_EQ(sim.completed, sim.admitted)
          << "sim run left admitted work unfinished";
      EXPECT_EQ(socket.completed, socket.admitted)
          << "socket run left admitted work unfinished";
      EXPECT_EQ(sim.failed, 0u);
      EXPECT_EQ(socket.failed, 0u);
      EXPECT_EQ(sim.pending, 0u);
      EXPECT_EQ(socket.pending, 0u);
      EXPECT_EQ(sim.fault_dropped, 0u);
      EXPECT_EQ(socket.fault_dropped, 0u);
      break;
    case Profile::Loss:
      // The two injectors draw from different RNG streams (message-level
      // vs per-frame hash), so they drop *different* traffic and a task
      // whose stream lost a frame may stall on one transport and not the
      // other. The equivalence claim is therefore about the fault layer
      // and the control plane, not exact completion counts: loss
      // demonstrably fired on both transports, and every decision above
      // still held.
      EXPECT_GT(sim.fault_dropped, 0u) << "sim injector never dropped";
      EXPECT_GT(socket.fault_dropped, 0u) << "socket shim never dropped";
      break;
    case Profile::Partition:
      // Both transports blackholed traffic during the window; after the
      // heal the control plane reconverged (admission decisions above).
      EXPECT_GT(sim.partitioned, 0u) << "sim partition never severed";
      EXPECT_GT(socket.partitioned, 0u) << "socket partition never severed";
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, TransportEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(Profile::Benign, Profile::Loss,
                                         Profile::Partition)),
    [](const ::testing::TestParamInfo<Combo>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             profile_name(std::get<1>(info.param));
    });

}  // namespace

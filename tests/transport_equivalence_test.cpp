// Sim-vs-loopback equivalence (the tentpole proof obligation of the
// transport redesign, see docs/TRANSPORT.md).
//
// The same benign DeploymentPlan runs twice — once on the deterministic sim
// Network, once over real loopback TCP — and must reach the *same steady
// state at the ledger level*: every planned submission submitted, admitted
// and completed, nothing rejected/failed/orphaned, on both transports. The
// claim is deliberately about terminal counts, not timing: socket delivery
// order across peer pairs is scheduling-dependent, so byte-level digests
// would not be stable, but a benign workload's outcome is.
//
// Labelled `long`: three seeds, each running a full (accelerated) realtime
// deployment of ~28 sim-seconds at time_scale 0.05.
#include <gtest/gtest.h>

#include <cstdint>

#include "workload/deployment.hpp"

namespace {

using namespace p2prm;

workload::DeploymentConfig config_for(std::uint64_t seed,
                                      std::uint16_t base_port) {
  workload::DeploymentConfig c =
      workload::DeploymentConfig::benign(seed, /*peers=*/10);
  // Compact timeline: ~28 sim-seconds; at time_scale 0.05 a socket run
  // takes ~1.5 wall-seconds. The drain stays generous relative to the
  // pipelines in flight (clips are 2-6 media-seconds).
  c.workload = util::seconds(8);
  c.drain = util::seconds(15);
  c.task_cap = 10;
  c.base_port = base_port;
  c.time_scale = 0.05;
  return c;
}

class TransportEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransportEquivalence, BenignPlanReachesTheSameSteadyState) {
  const std::uint64_t seed = GetParam();
  // Distinct port range per seed: ctest may run suites concurrently.
  const auto base_port = static_cast<std::uint16_t>(25000 + 100 * seed);
  const workload::DeploymentConfig config = config_for(seed, base_port);
  const workload::DeploymentPlan plan = workload::DeploymentPlan::build(config);
  ASSERT_GT(plan.submissions.size(), 0u) << "degenerate plan for seed " << seed;

  const workload::DeploymentOutcome sim =
      plan.run(core::TransportKind::Sim);
  const workload::DeploymentOutcome socket =
      plan.run(core::TransportKind::Socket);

  // Both transports executed the full plan...
  EXPECT_EQ(sim.submitted, plan.submissions.size());
  EXPECT_EQ(socket.submitted, plan.submissions.size());
  // ...and reached the identical benign steady state.
  EXPECT_EQ(sim.completed, sim.submitted) << "sim run left work unfinished";
  EXPECT_EQ(socket.completed, socket.submitted)
      << "socket run left work unfinished";
  EXPECT_EQ(sim.rejected, 0u);
  EXPECT_EQ(socket.rejected, 0u);
  EXPECT_EQ(sim.failed, 0u);
  EXPECT_EQ(socket.failed, 0u);
  EXPECT_EQ(sim.orphaned, 0u);
  EXPECT_EQ(socket.orphaned, 0u);
  EXPECT_EQ(sim.pending, 0u);
  EXPECT_EQ(socket.pending, 0u);

  EXPECT_EQ(sim.submitted, socket.submitted);
  EXPECT_EQ(sim.admitted, socket.admitted);
  EXPECT_EQ(sim.completed, socket.completed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportEquivalence,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace

// The scenario fuzzer's own test suite: spec generation and repro-string
// round-trips, invariant-checker mechanics, clean runs with digest
// determinism and ablation oracles, and the end-to-end acceptance path —
// a deliberately planted invariant violation must be caught, shrunk to a
// smaller spec, and replay from its repro string to the same failure.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/invariants.hpp"
#include "check/runner.hpp"
#include "check/scenario.hpp"
#include "check/shrink.hpp"
#include "core/system.hpp"

namespace p2prm::check {
namespace {

// Small, fault-free scenario: fast enough to run several times in one test.
ScenarioSpec small_clean_spec() {
  ScenarioSpec spec;
  spec.seed = 7;
  spec.peers = 8;
  spec.max_domain_size = 10;
  spec.het = 0;
  spec.task_cap = 5;
  spec.arrival_rate = 0.8;
  spec.workload = util::seconds(10);
  spec.drain = util::seconds(50);
  return spec;
}

// ---- ScenarioSpec ---------------------------------------------------------

TEST(ScenarioSpec, GenerateIsDeterministic) {
  for (std::uint64_t seed : {0ULL, 1ULL, 42ULL, 1234567ULL}) {
    EXPECT_EQ(ScenarioSpec::generate(seed), ScenarioSpec::generate(seed))
        << "seed " << seed;
  }
  EXPECT_NE(ScenarioSpec::generate(1), ScenarioSpec::generate(2));
}

TEST(ScenarioSpec, ReproRoundTripsEveryField) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const ScenarioSpec spec = ScenarioSpec::generate(seed);
    const auto parsed = ScenarioSpec::parse(spec.repro());
    ASSERT_TRUE(parsed.has_value()) << spec.repro();
    EXPECT_EQ(*parsed, spec) << spec.repro();
  }
}

TEST(ScenarioSpec, ReproRoundTripsHandCraftedFaults) {
  ScenarioSpec spec = small_clean_spec();
  spec.churn = true;
  spec.crash_fraction = 0.25;
  spec.link.loss = 0.01;
  spec.link.delay = util::milliseconds(7);
  spec.partitions.push_back({util::seconds(5), util::seconds(9)});
  spec.crashes.push_back({util::seconds(3), -1, true, 0});
  spec.crashes.push_back({util::seconds(8), util::seconds(6), false, 3});
  spec.spans = true;
  const auto parsed = ScenarioSpec::parse(spec.repro());
  ASSERT_TRUE(parsed.has_value()) << spec.repro();
  EXPECT_EQ(*parsed, spec);
}

TEST(ScenarioSpec, GenerateStreamRoundTripsAndKeepsBaseScenario) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const ScenarioSpec spec = ScenarioSpec::generate_stream(seed);
    EXPECT_TRUE(spec.stream);
    EXPECT_GE(spec.stream_channels, 1u);
    EXPECT_GE(spec.stream_viewers, 1u);
    EXPECT_LE(spec.stream_alloc, 2u);
    // Shrinker-compatible: the one-line repro reproduces the whole spec.
    const auto parsed = ScenarioSpec::parse(spec.repro());
    ASSERT_TRUE(parsed.has_value()) << spec.repro();
    EXPECT_EQ(*parsed, spec) << spec.repro();
    // The streaming overlay rides a dedicated rng stream: the base scenario
    // the seed names is byte-identical with and without it.
    ScenarioSpec base = spec;
    base.stream = false;
    base.stream_channels = ScenarioSpec{}.stream_channels;
    base.stream_viewers = ScenarioSpec{}.stream_viewers;
    base.stream_flash = ScenarioSpec{}.stream_flash;
    base.stream_chunk_ms = ScenarioSpec{}.stream_chunk_ms;
    base.stream_alloc = ScenarioSpec{}.stream_alloc;
    EXPECT_EQ(base, ScenarioSpec::generate(seed)) << "seed " << seed;
  }
}

TEST(ScenarioSpec, ParseRejectsInvalidStreamFields) {
  ScenarioSpec spec = ScenarioSpec::generate_stream(3);
  spec.stream_alloc = 7;  // only {0, 1, 2} name placement policies
  EXPECT_FALSE(ScenarioSpec::parse(spec.repro()).has_value());
  spec = ScenarioSpec::generate_stream(3);
  spec.stream_chunk_ms = 0;
  EXPECT_FALSE(ScenarioSpec::parse(spec.repro()).has_value());
}

TEST(ScenarioSpec, ParseRejectsGarbage) {
  EXPECT_FALSE(ScenarioSpec::parse("").has_value());
  EXPECT_FALSE(ScenarioSpec::parse("not-a-repro").has_value());
  EXPECT_FALSE(ScenarioSpec::parse("p2prm-fuzz/2;seed=1").has_value());
  // Unknown key: rejected rather than silently ignored, so stale repro
  // strings fail loudly instead of replaying a different scenario.
  const std::string good = small_clean_spec().repro();
  EXPECT_TRUE(ScenarioSpec::parse(good).has_value());
  EXPECT_FALSE(ScenarioSpec::parse(good + ";bogus=1").has_value());
}

// ---- InvariantChecker mechanics ------------------------------------------

TEST(InvariantChecker, DefaultSetIsComplete) {
  const auto checker = InvariantChecker::with_defaults();
  const auto names = checker.invariant_names();
  for (const char* expected :
       {"ledger.conservation", "net.conservation", "load_index.equivalence",
        "sched.lls_laxity", "rm.backup_convergence",
        "gossip.summary_superset", "core.cleanliness",
        "membership.attached"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing default invariant " << expected;
  }
}

TEST(InvariantChecker, EachInvariantFiresAtMostOnce) {
  InvariantChecker checker;
  int healthy_calls = 0;
  int failing_calls = 0;
  checker.add("test.healthy", false,
              [&](core::System&, CheckPhase) -> std::optional<std::string> {
                ++healthy_calls;
                return std::nullopt;
              });
  checker.add("test.always_fails", false,
              [&](core::System&, CheckPhase) -> std::optional<std::string> {
                ++failing_calls;
                return "boom";
              });
  const ScenarioSpec spec = small_clean_spec();
  const RunResult result = run_scenario(spec, checker);
  // A healthy invariant is evaluated at every boundary; one that fired is
  // retired for the rest of the run (reported exactly once, not re-run).
  EXPECT_GT(healthy_calls, 1);
  EXPECT_EQ(failing_calls, 1);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].invariant, "test.always_fails");
  EXPECT_EQ(result.violations[0].message, "boom");
}

TEST(InvariantChecker, QuiescentOnlyInvariantsSkipBoundaries) {
  InvariantChecker checker;
  std::vector<CheckPhase> phases;
  checker.add("test.quiescent_probe", true,
              [&](core::System&, CheckPhase phase) -> std::optional<std::string> {
                phases.push_back(phase);
                return std::nullopt;
              });
  run_scenario(small_clean_spec(), checker);
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0], CheckPhase::Quiescent);
}

// ---- clean runs, digest determinism, oracles ------------------------------

TEST(Runner, SmallCleanScenarioPassesAllInvariants) {
  const ScenarioSpec spec = small_clean_spec();
  const RunResult result = run_scenario(spec);
  for (const auto& v : result.violations) {
    ADD_FAILURE() << v.invariant << " @" << v.at << ": " << v.message
                  << "\n  repro: " << spec.repro();
  }
  EXPECT_GT(result.submitted, 0u);
  EXPECT_GT(result.completed, 0u);
  EXPECT_GE(result.alive, 8u);
}

TEST(Runner, DigestIsDeterministicAcrossRuns) {
  const ScenarioSpec spec = small_clean_spec();
  const RunResult a = run_scenario(spec);
  const RunResult b = run_scenario(spec);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.trace_events, b.trace_events);
  // A different seed is (overwhelmingly) a different behavior.
  ScenarioSpec other = spec;
  other.seed = 8;
  EXPECT_NE(run_scenario(other).digest, a.digest);
}

TEST(Runner, StreamScenarioChecksAccountingAndStaysDeterministic) {
  ScenarioSpec spec = small_clean_spec();
  spec.stream = true;
  spec.stream_channels = 2;
  spec.stream_viewers = 6;
  spec.stream_flash = 8;
  spec.stream_chunk_ms = 500;
  spec.stream_alloc = 2;  // det-stream

  auto checker = InvariantChecker::with_defaults();
  const RunResult a = run_scenario(spec, checker);
  for (const auto& v : a.violations) {
    ADD_FAILURE() << v.invariant << ": " << v.message;
  }
  // The streaming overlay registered its boundary invariant on the checker.
  const auto names = checker.invariant_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "stream.accounting"),
            names.end());

  // Deterministic, and distinguishable from the same base scenario without
  // the overlay (the digest folds every chunk outcome in).
  EXPECT_EQ(run_scenario(spec).digest, a.digest);
  ScenarioSpec base = spec;
  base.stream = false;
  EXPECT_NE(run_scenario(base).digest, a.digest);
}

TEST(Runner, AblationOraclesHoldOnCleanScenario) {
  // run_spec replays the scenario under determinism / cache-off / spans-on
  // oracles; any digest mismatch surfaces as an oracle.* violation.
  const SeedOutcome outcome = run_spec(small_clean_spec(), /*oracles=*/true);
  for (const auto& v : outcome.result.violations) {
    ADD_FAILURE() << v.invariant << ": " << v.message;
  }
}

// ---- the acceptance path: plant, catch, shrink, replay --------------------

// A planted invariant that is *guaranteed* to trip on any functioning
// scenario: it asserts no task ever completes. Registered alongside the real
// defaults it stands in for a freshly introduced system bug.
void register_planted(InvariantChecker& checker) {
  checker.add("planted.no_completions", false,
              [](core::System& system, CheckPhase) -> std::optional<std::string> {
                if (system.ledger().completed() == 0) return std::nullopt;
                return "a task completed (planted failure)";
              });
}

TEST(Shrinker, PlantedViolationIsCaughtShrunkAndReplays) {
  // 1) Catch: a busy scenario trips the planted invariant.
  ScenarioSpec failing = ScenarioSpec::generate(3);
  InvariantChecker checker;
  register_planted(checker);
  const RunResult caught = run_scenario(failing, checker);
  ASSERT_FALSE(caught.ok()) << "planted violation was not caught";
  ASSERT_EQ(caught.violations[0].invariant, "planted.no_completions");

  // 2) Shrink: minimize while the same invariant keeps firing.
  const FailPredicate still_fails = [](const ScenarioSpec& candidate) {
    InvariantChecker c;
    register_planted(c);
    const RunResult r = run_scenario(candidate, c);
    return std::any_of(r.violations.begin(), r.violations.end(),
                       [](const Violation& v) {
                         return v.invariant == "planted.no_completions";
                       });
  };
  const ShrinkResult shrunk = shrink(failing, still_fails, /*max_runs=*/60);
  EXPECT_GT(shrunk.steps, 0u) << "nothing was shrunk from a generated spec";
  EXPECT_LE(shrunk.minimal.task_cap, failing.task_cap);
  EXPECT_LE(shrunk.minimal.peers, failing.peers);
  EXPECT_LE(shrunk.minimal.crashes.size(), failing.crashes.size());

  // 3) Replay: the minimal spec round-trips through its repro string and
  //    still fails with the same invariant.
  const auto replayed = ScenarioSpec::parse(shrunk.minimal.repro());
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(*replayed, shrunk.minimal);
  EXPECT_TRUE(still_fails(*replayed))
      << "shrunk repro no longer reproduces: " << shrunk.minimal.repro();
}

TEST(Shrinker, CleanSpecIsReturnedUnchanged) {
  const ScenarioSpec spec = small_clean_spec();
  std::size_t calls = 0;
  const ShrinkResult result = shrink(
      spec, [&](const ScenarioSpec&) { ++calls; return false; }, 10);
  EXPECT_EQ(result.minimal, spec);
  EXPECT_EQ(result.steps, 0u);
  // One probe per first-level candidate, none accepted; the shrinker never
  // re-runs the input spec itself.
  EXPECT_GE(calls, 1u);
  EXPECT_EQ(result.runs, calls);
}

}  // namespace
}  // namespace p2prm::check

// BackoffPolicy arithmetic and the simulator-driven RetryOp loop
// (see docs/FAULT_MODEL.md for how protocols use them).
#include <gtest/gtest.h>

#include <vector>

#include "sim/retry.hpp"
#include "util/backoff.hpp"

namespace p2prm {
namespace {

using sim::RetryOp;
using sim::RetryStats;
using util::BackoffPolicy;

TEST(BackoffPolicy, ExponentialScheduleWithCap) {
  BackoffPolicy p;
  p.initial = util::milliseconds(100);
  p.multiplier = 2.0;
  p.max_delay = util::milliseconds(350);
  p.max_attempts = 5;
  EXPECT_EQ(p.delay(0), util::milliseconds(100));
  EXPECT_EQ(p.delay(1), util::milliseconds(200));
  EXPECT_EQ(p.delay(2), util::milliseconds(350));  // capped, not 400
  EXPECT_EQ(p.delay(3), util::milliseconds(350));
}

TEST(BackoffPolicy, ExhaustedCountsTheOriginalSend) {
  BackoffPolicy p;
  p.max_attempts = 3;  // original + 2 retries
  EXPECT_FALSE(p.exhausted(0));
  EXPECT_FALSE(p.exhausted(1));
  EXPECT_TRUE(p.exhausted(2));
}

TEST(BackoffPolicy, JitterStaysWithinFractionAndIsSeeded) {
  BackoffPolicy p;
  p.initial = util::milliseconds(1000);
  p.multiplier = 1.0;
  p.jitter_fraction = 0.2;
  util::Rng rng{7};
  for (int i = 0; i < 50; ++i) {
    const auto d = p.delay(0, &rng);
    EXPECT_GE(d, util::milliseconds(800));
    EXPECT_LE(d, util::milliseconds(1200));
  }
  // Same seed, same draws: the jittered schedule is reproducible.
  util::Rng a{42}, b{42};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(p.delay(i, &a), p.delay(i, &b));
  }
}

TEST(BackoffPolicy, TotalBudgetSumsAllDelays) {
  BackoffPolicy p;
  p.initial = util::milliseconds(100);
  p.multiplier = 2.0;
  p.max_delay = util::seconds(10);
  p.max_attempts = 4;  // waits of 100, 200, 400 (+ exhaustion wait)
  EXPECT_GE(p.total_budget(), util::milliseconds(700));
}

TEST(RetryOp, ResendsOnScheduleUntilExhausted) {
  sim::Simulator simulator{1};
  BackoffPolicy p;
  p.initial = util::milliseconds(100);
  p.multiplier = 2.0;
  p.max_attempts = 3;

  std::vector<std::pair<util::SimTime, int>> resends;
  bool exhausted = false;
  RetryStats stats;
  RetryOp op;
  op.arm(
      simulator, p, nullptr,
      [&](int attempt) { resends.emplace_back(simulator.now(), attempt); },
      [&] { exhausted = true; }, &stats);

  simulator.run_until(util::seconds(5));
  // Original at t=0 (not by the op), retry 1 at 100ms, retry 2 at 300ms.
  ASSERT_EQ(resends.size(), 2u);
  EXPECT_EQ(resends[0], (std::pair<util::SimTime, int>{
                            util::milliseconds(100), 1}));
  EXPECT_EQ(resends[1], (std::pair<util::SimTime, int>{
                            util::milliseconds(300), 2}));
  EXPECT_TRUE(exhausted);
  EXPECT_FALSE(op.active());
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.exhausted, 1u);
  EXPECT_EQ(stats.acked, 0u);
}

TEST(RetryOp, AckStopsTheLoop) {
  sim::Simulator simulator{1};
  BackoffPolicy p;
  p.initial = util::milliseconds(100);
  p.max_attempts = 5;

  int resends = 0;
  RetryStats stats;
  RetryOp op;
  op.arm(simulator, p, nullptr, [&](int) { ++resends; }, {}, &stats);
  simulator.schedule_after(util::milliseconds(150), [&] { op.ack(); });
  simulator.run_until(util::seconds(10));
  EXPECT_EQ(resends, 1);  // only the retry before the ack landed
  EXPECT_EQ(stats.acked, 1u);
  EXPECT_EQ(stats.exhausted, 0u);
  op.ack();  // idempotent
  EXPECT_EQ(stats.acked, 1u);
}

TEST(RetryOp, CancelStopsWithoutCountingAnAck) {
  sim::Simulator simulator{1};
  BackoffPolicy p;
  p.initial = util::milliseconds(100);
  p.max_attempts = 5;

  int resends = 0;
  RetryStats stats;
  RetryOp op;
  op.arm(simulator, p, nullptr, [&](int) { ++resends; }, {}, &stats);
  op.cancel();
  simulator.run_until(util::seconds(10));
  EXPECT_EQ(resends, 0);
  EXPECT_EQ(stats.acked, 0u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_FALSE(op.active());
}

TEST(RetryOp, RearmSupersedesPreviousSchedule) {
  sim::Simulator simulator{1};
  BackoffPolicy p;
  p.initial = util::milliseconds(100);
  p.max_attempts = 2;

  int first = 0, second = 0;
  RetryOp op;
  op.arm(simulator, p, nullptr, [&](int) { ++first; });
  op.arm(simulator, p, nullptr, [&](int) { ++second; });
  simulator.run_until(util::seconds(5));
  EXPECT_EQ(first, 0) << "superseded schedule must not fire";
  EXPECT_EQ(second, 1);
}

TEST(RetryOp, SingleAttemptPolicyDisablesRetries) {
  sim::Simulator simulator{1};
  BackoffPolicy p;
  p.max_attempts = 1;
  int resends = 0;
  bool exhausted = false;
  RetryOp op;
  op.arm(simulator, p, nullptr, [&](int) { ++resends; },
         [&] { exhausted = true; });
  simulator.run_until(util::seconds(60));
  EXPECT_EQ(resends, 0);
  EXPECT_FALSE(exhausted);
  EXPECT_FALSE(op.active());
}

}  // namespace
}  // namespace p2prm

#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "sim/event_fn.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace p2prm::sim {
namespace {

using util::milliseconds;
using util::seconds;

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> order;
  q.push(20, [&] { order.push_back(2); });
  q.push(10, [&] { order.push_back(1); });
  q.push(10, [&] { order.push_back(11); });  // same time, later insertion
  while (!q.empty()) {
    auto e = q.pop();
    e.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 11, 2}));
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  const auto id = q.push(10, [&] { ++fired; });
  q.push(20, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 20);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EmptyReportsInfinity) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), util::kTimeInfinity);
}

TEST(EventQueue, CompactionPreservesPopOrderAndDropsTombstones) {
  // Equivalence test for tombstone compaction: a cancel-heavy queue must
  // fire exactly the same surviving events, in exactly the same order, as
  // one that never compacts (few tombstones -> threshold never trips).
  util::Rng rng(31);
  std::vector<util::SimTime> times;
  for (int i = 0; i < 400; ++i) {
    times.push_back(static_cast<util::SimTime>(rng.below(10000)));
  }

  EventQueue heavy;  // cancels 3 of 4 -> compacts
  std::vector<std::pair<util::SimTime, int>> heavy_fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 400; ++i) {
    const int tag = i;
    ids.push_back(
        heavy.push(times[static_cast<std::size_t>(i)],
                   [&heavy_fired, tag] { heavy_fired.emplace_back(0, tag); }));
  }
  for (int i = 0; i < 400; ++i) {
    if (i % 4 != 0) {
      EXPECT_TRUE(heavy.cancel(ids[static_cast<std::size_t>(i)]));
    }
  }
  EXPECT_GT(heavy.stats().compactions, 0u);
  EXPECT_GT(heavy.stats().tombstones_compacted, 0u);
  while (!heavy.empty()) {
    auto e = heavy.pop();
    e.fn();
    heavy_fired.back().first = e.when;
  }

  // Reference: only the surviving events ever enter the queue.
  EventQueue reference;
  std::vector<std::pair<util::SimTime, int>> ref_fired;
  for (int i = 0; i < 400; i += 4) {
    const int tag = i;
    reference.push(times[static_cast<std::size_t>(i)],
                   [&ref_fired, tag] { ref_fired.emplace_back(0, tag); });
  }
  EXPECT_EQ(reference.stats().compactions, 0u);
  while (!reference.empty()) {
    auto e = reference.pop();
    e.fn();
    ref_fired.back().first = e.when;
  }

  // Same events, same times, same relative order: (when, insertion) is a
  // total order, so compaction cannot reorder anything.
  ASSERT_EQ(heavy_fired.size(), 100u);
  for (std::size_t i = 0; i < heavy_fired.size(); ++i) {
    EXPECT_EQ(heavy_fired[i].first, ref_fired[i].first) << i;
    EXPECT_EQ(heavy_fired[i].second, ref_fired[i].second) << i;
  }
}

TEST(EventQueue, CompactionBelowThresholdNeverTriggers) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 60; ++i) {
    ids.push_back(q.push(i, [] {}));
  }
  // All tombstones, but fewer than kCompactMinTombstones: stay lazy.
  for (int i = 0; i < 40; ++i) EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
  EXPECT_EQ(q.stats().compactions, 0u);
  EXPECT_EQ(q.tombstones(), 40u);
  std::size_t fired = 0;
  while (!q.empty()) {
    q.pop();
    ++fired;
  }
  EXPECT_EQ(fired, 20u);
}

TEST(EventFn, MoveOnlyCapturesStayInline) {
  // The event hot path must not heap-allocate for the typical capture
  // (a couple of pointers/ids) — including move-only ones.
  const auto before = EventFn::heap_constructions();
  auto owned = std::make_unique<int>(41);
  int result = 0;
  EventFn fn([p = std::move(owned), &result] { result = *p + 1; });
  EXPECT_TRUE(static_cast<bool>(fn));
  EventFn moved = std::move(fn);
  moved();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(EventFn::heap_constructions(), before);
}

TEST(EventFn, OversizedCapturesSpillToHeapAndStillRun) {
  const auto before = EventFn::heap_constructions();
  std::array<std::uint64_t, 16> big{};  // 128 bytes: exceeds the SBO buffer
  big[7] = 9;
  std::uint64_t seen = 0;
  EventFn fn([big, &seen] { seen = big[7]; });
  EXPECT_EQ(EventFn::heap_constructions(), before + 1);
  EventFn moved = std::move(fn);  // heap case moves the pointer, no realloc
  moved();
  EXPECT_EQ(seen, 9u);
  EXPECT_EQ(EventFn::heap_constructions(), before + 1);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<util::SimTime> stamps;
  sim.schedule_at(seconds(3), [&] { stamps.push_back(sim.now()); });
  sim.schedule_at(seconds(1), [&] { stamps.push_back(sim.now()); });
  sim.schedule_after(seconds(2), [&] { stamps.push_back(sim.now()); });
  sim.run_until();
  EXPECT_EQ(stamps, (std::vector<util::SimTime>{seconds(1), seconds(2), seconds(3)}));
}

TEST(Simulator, RunUntilHorizonStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(seconds(1), [&] { ++fired; });
  sim.schedule_at(seconds(10), [&] { ++fired; });
  sim.run_until(seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), seconds(5));
  sim.run_until(seconds(20));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.schedule_at(seconds(2), [] {});
  sim.run_until();
  EXPECT_EQ(sim.now(), seconds(2));
  EXPECT_THROW(sim.schedule_at(seconds(1), [] {}), std::logic_error);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(milliseconds(1), recurse);
  };
  sim.schedule_after(milliseconds(1), recurse);
  sim.run_until();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), milliseconds(5));
}

TEST(Simulator, StopInsideHandlerHalts) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(seconds(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(seconds(2), [&] { ++fired; });
  sim.run_until();
  EXPECT_EQ(fired, 1);
  sim.run_until();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunEventsBudget) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(seconds(i + 1), [&] { ++fired; });
  }
  EXPECT_EQ(sim.run_events(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(Timer, FiresPeriodicallyUntilCancelled) {
  Simulator sim;
  int ticks = 0;
  Timer t = sim.every(seconds(1), [&] { ++ticks; });
  sim.run_until(seconds(5));
  EXPECT_EQ(ticks, 5);
  t.cancel();
  EXPECT_FALSE(t.active());
  sim.run_until(seconds(10));
  EXPECT_EQ(ticks, 5);
}

TEST(Timer, InitialDelayIndependentOfPeriod) {
  Simulator sim;
  std::vector<util::SimTime> stamps;
  sim.every(milliseconds(500), seconds(2), [&] { stamps.push_back(sim.now()); });
  sim.run_until(seconds(5));
  ASSERT_GE(stamps.size(), 2u);
  EXPECT_EQ(stamps[0], milliseconds(500));
  EXPECT_EQ(stamps[1], milliseconds(2500));
}

TEST(Timer, CallbackMayCancelItself) {
  Simulator sim;
  int ticks = 0;
  Timer t;
  t = sim.every(seconds(1), [&] {
    if (++ticks == 3) t.cancel();
  });
  sim.run_until(seconds(10));
  EXPECT_EQ(ticks, 3);
}

TEST(Timer, ZeroPeriodRejected) {
  Simulator sim;
  EXPECT_THROW(sim.every(0, [] {}), std::invalid_argument);
}

TEST(Simulator, DeterministicEventCountAcrossRuns) {
  auto run = [] {
    Simulator sim(5);
    int sum = 0;
    for (int i = 0; i < 100; ++i) {
      sim.schedule_after(static_cast<util::SimDuration>(sim.rng().below(1000) + 1),
                         [&sum, &sim, i] { sum += i * static_cast<int>(sim.now() % 97); });
    }
    sim.run_until();
    return sum;
  };
  EXPECT_EQ(run(), run());
}

TEST(EventQueue, CancelAfterPopIsHarmless) {
  EventQueue q;
  const auto id = q.push(5, [] {});
  auto e = q.pop();
  e.fn();
  // The event already ran; cancelling its id must not corrupt the queue.
  q.push(7, [] {});
  q.cancel(id);
  EXPECT_GE(q.size(), 0u);
  EXPECT_LE(q.next_time(), util::kTimeInfinity);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  int fired = 0;
  const auto id = sim.schedule_at(seconds(1), [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_until();
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace p2prm::sim

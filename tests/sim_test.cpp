#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace p2prm::sim {
namespace {

using util::milliseconds;
using util::seconds;

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> order;
  q.push(20, [&] { order.push_back(2); });
  q.push(10, [&] { order.push_back(1); });
  q.push(10, [&] { order.push_back(11); });  // same time, later insertion
  while (!q.empty()) {
    auto e = q.pop();
    e.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 11, 2}));
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  const auto id = q.push(10, [&] { ++fired; });
  q.push(20, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 20);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EmptyReportsInfinity) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), util::kTimeInfinity);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<util::SimTime> stamps;
  sim.schedule_at(seconds(3), [&] { stamps.push_back(sim.now()); });
  sim.schedule_at(seconds(1), [&] { stamps.push_back(sim.now()); });
  sim.schedule_after(seconds(2), [&] { stamps.push_back(sim.now()); });
  sim.run_until();
  EXPECT_EQ(stamps, (std::vector<util::SimTime>{seconds(1), seconds(2), seconds(3)}));
}

TEST(Simulator, RunUntilHorizonStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(seconds(1), [&] { ++fired; });
  sim.schedule_at(seconds(10), [&] { ++fired; });
  sim.run_until(seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), seconds(5));
  sim.run_until(seconds(20));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.schedule_at(seconds(2), [] {});
  sim.run_until();
  EXPECT_EQ(sim.now(), seconds(2));
  EXPECT_THROW(sim.schedule_at(seconds(1), [] {}), std::logic_error);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(milliseconds(1), recurse);
  };
  sim.schedule_after(milliseconds(1), recurse);
  sim.run_until();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), milliseconds(5));
}

TEST(Simulator, StopInsideHandlerHalts) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(seconds(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(seconds(2), [&] { ++fired; });
  sim.run_until();
  EXPECT_EQ(fired, 1);
  sim.run_until();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunEventsBudget) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(seconds(i + 1), [&] { ++fired; });
  }
  EXPECT_EQ(sim.run_events(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(Timer, FiresPeriodicallyUntilCancelled) {
  Simulator sim;
  int ticks = 0;
  Timer t = sim.every(seconds(1), [&] { ++ticks; });
  sim.run_until(seconds(5));
  EXPECT_EQ(ticks, 5);
  t.cancel();
  EXPECT_FALSE(t.active());
  sim.run_until(seconds(10));
  EXPECT_EQ(ticks, 5);
}

TEST(Timer, InitialDelayIndependentOfPeriod) {
  Simulator sim;
  std::vector<util::SimTime> stamps;
  sim.every(milliseconds(500), seconds(2), [&] { stamps.push_back(sim.now()); });
  sim.run_until(seconds(5));
  ASSERT_GE(stamps.size(), 2u);
  EXPECT_EQ(stamps[0], milliseconds(500));
  EXPECT_EQ(stamps[1], milliseconds(2500));
}

TEST(Timer, CallbackMayCancelItself) {
  Simulator sim;
  int ticks = 0;
  Timer t;
  t = sim.every(seconds(1), [&] {
    if (++ticks == 3) t.cancel();
  });
  sim.run_until(seconds(10));
  EXPECT_EQ(ticks, 3);
}

TEST(Timer, ZeroPeriodRejected) {
  Simulator sim;
  EXPECT_THROW(sim.every(0, [] {}), std::invalid_argument);
}

TEST(Simulator, DeterministicEventCountAcrossRuns) {
  auto run = [] {
    Simulator sim(5);
    int sum = 0;
    for (int i = 0; i < 100; ++i) {
      sim.schedule_after(static_cast<util::SimDuration>(sim.rng().below(1000) + 1),
                         [&sum, &sim, i] { sum += i * static_cast<int>(sim.now() % 97); });
    }
    sim.run_until();
    return sum;
  };
  EXPECT_EQ(run(), run());
}

TEST(EventQueue, CancelAfterPopIsHarmless) {
  EventQueue q;
  const auto id = q.push(5, [] {});
  auto e = q.pop();
  e.fn();
  // The event already ran; cancelling its id must not corrupt the queue.
  q.push(7, [] {});
  q.cancel(id);
  EXPECT_GE(q.size(), 0u);
  EXPECT_LE(q.next_time(), util::kTimeInfinity);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  int fired = 0;
  const auto id = sim.schedule_at(seconds(1), [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_until();
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace p2prm::sim

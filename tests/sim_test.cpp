#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics_registry.hpp"
#include "sim/event_fn.hpp"
#include "sim/event_queue.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace p2prm::sim {
namespace {

using util::milliseconds;
using util::seconds;

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> order;
  q.push(20, [&] { order.push_back(2); });
  q.push(10, [&] { order.push_back(1); });
  q.push(10, [&] { order.push_back(11); });  // same time, later insertion
  while (!q.empty()) {
    auto e = q.pop();
    e.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 11, 2}));
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  const auto id = q.push(10, [&] { ++fired; });
  q.push(20, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 20);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EmptyReportsInfinity) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), util::kTimeInfinity);
}

TEST(EventQueue, CompactionPreservesPopOrderAndDropsTombstones) {
  // Equivalence test for tombstone compaction: a cancel-heavy queue must
  // fire exactly the same surviving events, in exactly the same order, as
  // one that never compacts (few tombstones -> threshold never trips).
  util::Rng rng(31);
  std::vector<util::SimTime> times;
  for (int i = 0; i < 400; ++i) {
    times.push_back(static_cast<util::SimTime>(rng.below(10000)));
  }

  EventQueue heavy;  // cancels 3 of 4 -> compacts
  std::vector<std::pair<util::SimTime, int>> heavy_fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 400; ++i) {
    const int tag = i;
    ids.push_back(
        heavy.push(times[static_cast<std::size_t>(i)],
                   [&heavy_fired, tag] { heavy_fired.emplace_back(0, tag); }));
  }
  for (int i = 0; i < 400; ++i) {
    if (i % 4 != 0) {
      EXPECT_TRUE(heavy.cancel(ids[static_cast<std::size_t>(i)]));
    }
  }
  EXPECT_GT(heavy.stats().compactions, 0u);
  EXPECT_GT(heavy.stats().tombstones_compacted, 0u);
  while (!heavy.empty()) {
    auto e = heavy.pop();
    e.fn();
    heavy_fired.back().first = e.when;
  }

  // Reference: only the surviving events ever enter the queue.
  EventQueue reference;
  std::vector<std::pair<util::SimTime, int>> ref_fired;
  for (int i = 0; i < 400; i += 4) {
    const int tag = i;
    reference.push(times[static_cast<std::size_t>(i)],
                   [&ref_fired, tag] { ref_fired.emplace_back(0, tag); });
  }
  EXPECT_EQ(reference.stats().compactions, 0u);
  while (!reference.empty()) {
    auto e = reference.pop();
    e.fn();
    ref_fired.back().first = e.when;
  }

  // Same events, same times, same relative order: (when, insertion) is a
  // total order, so compaction cannot reorder anything.
  ASSERT_EQ(heavy_fired.size(), 100u);
  for (std::size_t i = 0; i < heavy_fired.size(); ++i) {
    EXPECT_EQ(heavy_fired[i].first, ref_fired[i].first) << i;
    EXPECT_EQ(heavy_fired[i].second, ref_fired[i].second) << i;
  }
}

TEST(EventQueue, CompactionBelowThresholdNeverTriggers) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 60; ++i) {
    ids.push_back(q.push(i, [] {}));
  }
  // All tombstones, but fewer than kCompactMinTombstones: stay lazy.
  for (int i = 0; i < 40; ++i) EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
  EXPECT_EQ(q.stats().compactions, 0u);
  EXPECT_EQ(q.tombstones(), 40u);
  std::size_t fired = 0;
  while (!q.empty()) {
    q.pop();
    ++fired;
  }
  EXPECT_EQ(fired, 20u);
}

TEST(EventFn, MoveOnlyCapturesStayInline) {
  // The event hot path must not heap-allocate for the typical capture
  // (a couple of pointers/ids) — including move-only ones.
  const auto before = EventFn::heap_constructions();
  auto owned = std::make_unique<int>(41);
  int result = 0;
  EventFn fn([p = std::move(owned), &result] { result = *p + 1; });
  EXPECT_TRUE(static_cast<bool>(fn));
  EventFn moved = std::move(fn);
  moved();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(EventFn::heap_constructions(), before);
}

TEST(EventFn, OversizedCapturesSpillToHeapAndStillRun) {
  const auto before = EventFn::heap_constructions();
  std::array<std::uint64_t, 16> big{};  // 128 bytes: exceeds the SBO buffer
  big[7] = 9;
  std::uint64_t seen = 0;
  EventFn fn([big, &seen] { seen = big[7]; });
  EXPECT_EQ(EventFn::heap_constructions(), before + 1);
  EventFn moved = std::move(fn);  // heap case moves the pointer, no realloc
  moved();
  EXPECT_EQ(seen, 9u);
  EXPECT_EQ(EventFn::heap_constructions(), before + 1);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<util::SimTime> stamps;
  sim.schedule_at(seconds(3), [&] { stamps.push_back(sim.now()); });
  sim.schedule_at(seconds(1), [&] { stamps.push_back(sim.now()); });
  sim.schedule_after(seconds(2), [&] { stamps.push_back(sim.now()); });
  sim.run_until();
  EXPECT_EQ(stamps, (std::vector<util::SimTime>{seconds(1), seconds(2), seconds(3)}));
}

TEST(Simulator, RunUntilHorizonStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(seconds(1), [&] { ++fired; });
  sim.schedule_at(seconds(10), [&] { ++fired; });
  sim.run_until(seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), seconds(5));
  sim.run_until(seconds(20));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.schedule_at(seconds(2), [] {});
  sim.run_until();
  EXPECT_EQ(sim.now(), seconds(2));
  EXPECT_THROW(sim.schedule_at(seconds(1), [] {}), std::logic_error);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(milliseconds(1), recurse);
  };
  sim.schedule_after(milliseconds(1), recurse);
  sim.run_until();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), milliseconds(5));
}

TEST(Simulator, StopInsideHandlerHalts) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(seconds(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(seconds(2), [&] { ++fired; });
  sim.run_until();
  EXPECT_EQ(fired, 1);
  sim.run_until();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunEventsBudget) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(seconds(i + 1), [&] { ++fired; });
  }
  EXPECT_EQ(sim.run_events(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(Timer, FiresPeriodicallyUntilCancelled) {
  Simulator sim;
  int ticks = 0;
  Timer t = sim.every(seconds(1), [&] { ++ticks; });
  sim.run_until(seconds(5));
  EXPECT_EQ(ticks, 5);
  t.cancel();
  EXPECT_FALSE(t.active());
  sim.run_until(seconds(10));
  EXPECT_EQ(ticks, 5);
}

TEST(Timer, InitialDelayIndependentOfPeriod) {
  Simulator sim;
  std::vector<util::SimTime> stamps;
  sim.every(milliseconds(500), seconds(2), [&] { stamps.push_back(sim.now()); });
  sim.run_until(seconds(5));
  ASSERT_GE(stamps.size(), 2u);
  EXPECT_EQ(stamps[0], milliseconds(500));
  EXPECT_EQ(stamps[1], milliseconds(2500));
}

TEST(Timer, CallbackMayCancelItself) {
  Simulator sim;
  int ticks = 0;
  Timer t;
  t = sim.every(seconds(1), [&] {
    if (++ticks == 3) t.cancel();
  });
  sim.run_until(seconds(10));
  EXPECT_EQ(ticks, 3);
}

TEST(Timer, ZeroPeriodRejected) {
  Simulator sim;
  EXPECT_THROW(sim.every(0, [] {}), std::invalid_argument);
}

TEST(Simulator, DeterministicEventCountAcrossRuns) {
  auto run = [] {
    Simulator sim(5);
    int sum = 0;
    for (int i = 0; i < 100; ++i) {
      sim.schedule_after(static_cast<util::SimDuration>(sim.rng().below(1000) + 1),
                         [&sum, &sim, i] { sum += i * static_cast<int>(sim.now() % 97); });
    }
    sim.run_until();
    return sum;
  };
  EXPECT_EQ(run(), run());
}

TEST(EventQueue, CancelAfterPopIsHarmless) {
  EventQueue q;
  const auto id = q.push(5, [] {});
  auto e = q.pop();
  e.fn();
  // The event already ran; cancelling its id must not corrupt the queue.
  q.push(7, [] {});
  q.cancel(id);
  EXPECT_GE(q.size(), 0u);
  EXPECT_LE(q.next_time(), util::kTimeInfinity);
}

TEST(EventQueue, PushBulkMatchesIndividualPushes) {
  // The mailbox merge inserts externally-id'd events either by k sift-ups
  // or, for large batches, one append + re-heapify. Both paths must yield
  // the exact pop order of individual pushes — (time, id) is a total order,
  // so the three queues below are indistinguishable on drain.
  util::Rng rng(99);
  std::vector<EventQueue::Popped> events;
  for (EventId id = 0; id < 500; ++id) {
    events.push_back({static_cast<util::SimTime>(rng.below(64)), id, [] {}});
  }

  EventQueue individual;
  for (const auto& e : events) individual.push_with_id(e.when, e.id, [] {});

  // Small tail batch: 5 events against a ~495-entry heap -> sift-up path.
  EventQueue small_batch;
  for (std::size_t i = 0; i < events.size() - 5; ++i) {
    small_batch.push_with_id(events[i].when, events[i].id, [] {});
  }
  std::vector<EventQueue::Popped> tail;
  for (std::size_t i = events.size() - 5; i < events.size(); ++i) {
    tail.push_back({events[i].when, events[i].id, [] {}});
  }
  small_batch.push_bulk(tail);
  EXPECT_TRUE(tail.empty());  // consumed

  // Large batch: 400 events against a 100-entry heap -> heapify path.
  EventQueue large_batch;
  for (std::size_t i = 0; i < 100; ++i) {
    large_batch.push_with_id(events[i].when, events[i].id, [] {});
  }
  std::vector<EventQueue::Popped> bulk;
  for (std::size_t i = 100; i < events.size(); ++i) {
    bulk.push_back({events[i].when, events[i].id, [] {}});
  }
  large_batch.push_bulk(bulk);

  ASSERT_EQ(individual.size(), 500u);
  ASSERT_EQ(small_batch.size(), 500u);
  ASSERT_EQ(large_batch.size(), 500u);
  while (!individual.empty()) {
    const auto a = individual.pop();
    const auto b = small_batch.pop();
    const auto c = large_batch.pop();
    EXPECT_EQ(a.when, b.when);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.when, c.when);
    EXPECT_EQ(a.id, c.id);
  }
  EXPECT_TRUE(small_batch.empty());
  EXPECT_TRUE(large_batch.empty());
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  int fired = 0;
  const auto id = sim.schedule_at(seconds(1), [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_until();
  EXPECT_EQ(fired, 0);
}

// ---------------------------------------------------------------------------
// Parallel engine (docs/PARALLELISM.md)

// A mixed workload — affinity-routed chains, cancellations triggered from
// other events, a self-cancelling timer — that records every handler
// invocation as (now, tag). Identical drivers on both engines must produce
// identical logs.
void chain_step(Simulator& sim, std::vector<std::int64_t>& log, int peer,
                int i) {
  log.push_back(sim.now() * 100 + peer * 10 + i % 10);
  if (i >= 30) return;
  sim.schedule_after(
      milliseconds(peer + 1) + i * 137,
      [&sim, &log, peer, i] { chain_step(sim, log, peer, i + 1); },
      util::PeerId{static_cast<std::uint64_t>(peer)});
}

std::pair<std::vector<std::int64_t>, std::uint64_t> drive_mixed_workload(
    Simulator& sim) {
  std::vector<std::int64_t> log;
  for (int p = 0; p < 6; ++p) {
    sim.schedule_after(
        milliseconds(1) + p, [&sim, &log, p] { chain_step(sim, log, p, 0); },
        util::PeerId{static_cast<std::uint64_t>(p)});
  }
  // Doomed events, each cancelled by an event on a *different* peer's shard.
  for (int k = 0; k < 120; ++k) {
    const EventId id = sim.schedule_at(
        seconds(1) + k, [&log] { log.push_back(-1); },
        util::PeerId{static_cast<std::uint64_t>(k % 6)});
    sim.schedule_at(
        milliseconds(500) + k, [&sim, id] { sim.cancel(id); },
        util::PeerId{static_cast<std::uint64_t>((k + 1) % 6)});
  }
  Timer timer = sim.every(milliseconds(50), [&log] { log.push_back(777); });
  sim.schedule_at(milliseconds(430), [timer]() mutable { timer.cancel(); });
  sim.run_until(seconds(2));
  return {log, sim.events_executed()};
}

TEST(ParallelEngine, OrderedCommitMatchesSequentialExecution) {
  Simulator seq(7);
  const auto seq_out = drive_mixed_workload(seq);

  Simulator par(7);
  ParallelConfig pc;
  pc.threads = 4;
  pc.lookahead = milliseconds(1);
  pc.mode = ParallelMode::OrderedCommit;
  par.enable_parallel(pc);
  par.set_shard_router(
      [](util::PeerId p) { return static_cast<ShardId>(p.value() % 4); });
  const auto par_out = drive_mixed_workload(par);

  EXPECT_EQ(seq_out.first, par_out.first);
  EXPECT_EQ(seq_out.second, par_out.second);
  EXPECT_EQ(seq.now(), par.now());

  // Conservation: per-shard sums equal the global totals, and more than one
  // shard did real work (the router is not degenerate).
  const auto* engine = par.parallel_engine();
  ASSERT_NE(engine, nullptr);
  std::uint64_t executed = 0, scheduled = 0;
  std::size_t active = 0;
  for (ShardId s = 0; s < engine->shards(); ++s) {
    executed += engine->shard_counters(s).executed;
    scheduled += engine->shard_counters(s).scheduled;
    if (engine->shard_counters(s).executed > 0) ++active;
  }
  EXPECT_EQ(executed, par.events_executed());
  EXPECT_EQ(scheduled, par.events_scheduled());
  EXPECT_GT(active, 1u);
}

TEST(ParallelEngine, MirrorCountersMatchSequentialPublish) {
  // Identical schedule/cancel sequences on both engines; the published
  // sim.event_queue.* series (scheduled / compactions / tombstones / live)
  // must be byte-identical, compaction trigger included.
  const auto drive = [](Simulator& sim) {
    std::vector<EventId> ids;
    for (int i = 0; i < 200; ++i) {
      ids.push_back(sim.schedule_at(
          milliseconds(10 + i), [] {},
          util::PeerId{static_cast<std::uint64_t>(i % 2)}));
    }
    for (int i = 0; i < 200; ++i) {
      if (i % 4 != 3) {
        EXPECT_TRUE(sim.cancel(ids[static_cast<std::size_t>(i)]));
      }
    }
    obs::MetricsRegistry before;
    sim.publish_queue(before);
    sim.run_until(seconds(1));
    obs::MetricsRegistry after;
    sim.publish_queue(after);
    return std::pair{obs::to_json(before), obs::to_json(after)};
  };

  Simulator seq(3);
  const auto seq_snapshots = drive(seq);

  Simulator par(3);
  ParallelConfig pc;
  pc.threads = 2;
  pc.mode = ParallelMode::OrderedCommit;
  par.enable_parallel(pc);
  par.set_shard_router(
      [](util::PeerId p) { return static_cast<ShardId>(p.value() % 2); });
  const auto par_snapshots = drive(par);

  EXPECT_EQ(seq_snapshots.first, par_snapshots.first);
  EXPECT_EQ(seq_snapshots.second, par_snapshots.second);

  // 150 cancellations against 200 events must have fired the global
  // compaction at the sequential threshold, and the physical sweep runs on
  // every shard in lockstep with the global counter.
  const auto* engine = par.parallel_engine();
  ASSERT_NE(engine, nullptr);
  EXPECT_GE(engine->stats().compactions, 1u);
  for (ShardId s = 0; s < engine->shards(); ++s) {
    EXPECT_EQ(engine->shard_counters(s).compactions,
              engine->stats().compactions)
        << "shard " << s;
  }
  EXPECT_EQ(engine->live(), engine->physical_live());
  EXPECT_GE(engine->tombstones(), engine->physical_tombstones());
}

TEST(ParallelEngine, EnableParallelAfterSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(1, [] {});
  EXPECT_THROW(sim.enable_parallel(ParallelConfig{}), std::logic_error);
}

TEST(ParallelEngine, ShardConcurrentWindowsRespectLookahead) {
  ParallelConfig pc;
  pc.threads = 4;
  pc.lookahead = milliseconds(1);
  pc.mode = ParallelMode::ShardConcurrent;
  ParallelEngine eng(pc);

  // Each shard runs a local chain and relays a token to the next shard at
  // exactly now + lookahead — the tightest legal cross-shard delay.
  std::array<std::vector<std::int64_t>, 4> logs;
  struct Relay {
    ParallelEngine& eng;
    std::array<std::vector<std::int64_t>, 4>& logs;
    util::SimDuration lookahead;
    void operator()(ShardId shard, util::SimTime now, int hops) const {
      logs[shard].push_back(now);
      if (hops >= 64) return;
      const ShardId next = (shard + 1) % 4;
      auto self = *this;
      eng.post(shard, next, now + lookahead,
               [self, next, now, hops, la = lookahead] {
                 self(next, now + la, hops + 1);
               });
    }
  };
  const Relay relay{eng, logs, pc.lookahead};
  for (ShardId s = 0; s < 4; ++s) {
    eng.schedule(s, milliseconds(s), [relay, s] {
      relay(s, milliseconds(s), 0);
    });
  }
  eng.run_windows_until(seconds(1));

  EXPECT_EQ(eng.stats().lookahead_violations, 0u);
  EXPECT_GT(eng.stats().windows, 0u);
  EXPECT_GT(eng.stats().cross_shard_messages, 0u);
  EXPECT_EQ(eng.stats().merged_messages, eng.stats().cross_shard_messages);
  std::uint64_t posts_out = 0, posts_in = 0, executed = 0;
  for (ShardId s = 0; s < 4; ++s) {
    posts_out += eng.shard_counters(s).posts_out;
    posts_in += eng.shard_counters(s).posts_in;
    executed += eng.shard_counters(s).executed;
    EXPECT_LE(eng.shard_now(s), seconds(1));
    EXPECT_FALSE(logs[s].empty());
  }
  EXPECT_EQ(posts_out, eng.stats().cross_shard_messages);
  EXPECT_EQ(posts_in, eng.stats().cross_shard_messages);
  EXPECT_EQ(executed, 4u * 65u);
}

TEST(ParallelEngine, PerPairLookaheadWidensWindows) {
  // Identical local workloads run under the scalar lookahead and under a
  // per-pair matrix that promises 100x the cross-shard delay bound. The
  // wider promise must collapse the barrier count (windows extend to the
  // peer's next_time + L(src, dst)) while executing exactly the same
  // events — the matrix is a scheduling hint, never a behavior change.
  const auto run = [](util::SimDuration pair_bound) {
    ParallelConfig pc;
    pc.threads = 2;
    pc.lookahead = milliseconds(1);
    pc.mode = ParallelMode::ShardConcurrent;
    ParallelEngine eng(pc);
    if (pair_bound > 0) {
      eng.set_pair_lookahead(std::vector<util::SimDuration>{
          0, pair_bound,  // L(0 -> 0) ignored, L(0 -> 1)
          pair_bound, 0,  // L(1 -> 0), L(1 -> 1) ignored
      });
      EXPECT_EQ(eng.pair_lookahead(0, 1), pair_bound);
      EXPECT_EQ(eng.pair_lookahead(1, 0), pair_bound);
    }
    struct Chain {
      ParallelEngine& eng;
      void operator()(ShardId shard, util::SimTime now, int i) const {
        if (i >= 63) return;
        auto self = *this;
        eng.schedule(shard, now + milliseconds(1),
                     [self, shard, now, i] {
                       self(shard, now + milliseconds(1), i + 1);
                     });
      }
    };
    const Chain chain{eng};
    for (ShardId s = 0; s < 2; ++s) {
      eng.schedule(s, milliseconds(1), [chain, s] {
        chain(s, milliseconds(1), 0);
      });
    }
    eng.run_windows_until(seconds(1));
    // Handlers run concurrently across shards, so count executions via the
    // engine's per-shard counters rather than shared test state.
    std::uint64_t executed = 0;
    for (ShardId s = 0; s < 2; ++s) executed += eng.shard_counters(s).executed;
    EXPECT_EQ(executed, 128u);
    EXPECT_EQ(eng.stats().lookahead_violations, 0u);
    return eng.stats().windows;
  };

  const auto narrow = run(0);  // scalar config lookahead only
  const auto wide = run(milliseconds(100));
  EXPECT_GT(narrow, wide)
      << "a 100x wider delay bound did not reduce barrier count";
}

TEST(ParallelEngine, ShardConcurrentCountsLookaheadViolations) {
  ParallelConfig pc;
  pc.threads = 2;
  pc.lookahead = milliseconds(1);
  pc.mode = ParallelMode::ShardConcurrent;
  ParallelEngine eng(pc);

  int delivered = 0;
  eng.schedule(0, milliseconds(5), [&eng, &delivered] {
    // Posting for "now" lands inside the current window — a violation of
    // the conservative contract. It is delivered anyway, and counted.
    eng.post(0, 1, milliseconds(5), [&delivered] { ++delivered; });
  });
  eng.run_windows_until(seconds(1));

  EXPECT_EQ(eng.stats().lookahead_violations, 1u);
  EXPECT_EQ(delivered, 1);
}

TEST(ParallelEngine, EmptyShardRoundTripStaysCausal) {
  // Regression for the unsound per-head window plan: shard 0 holds a long
  // local chain while shard 1 starts empty. An empty peer used to impose
  // no bound, so shard 0 drained its entire chain in one window; its first
  // handler's post then round-tripped through shard 1 and the reply
  // executed far below shard 0's clock — out-of-order, with no rollback.
  // The closure bound (next[0] + shortest feedback cycle) must keep shard
  // 0's execution monotone and slot the reply in timestamp order.
  ParallelConfig pc;
  pc.threads = 2;
  pc.lookahead = milliseconds(1);
  pc.mode = ParallelMode::ShardConcurrent;
  ParallelEngine eng(pc);

  std::vector<util::SimTime> log0;  // touched only by shard 0's handlers
  for (int i = 0; i < 20; ++i) {
    const util::SimTime t = milliseconds(100 + 100 * i);
    eng.schedule(0, t, [&log0, t] { log0.push_back(t); });
  }
  // The chain's first instant also kicks off a ping-pong at the tightest
  // legal delays: 0 -> 1 arriving 101ms, reply 1 -> 0 arriving 102ms.
  eng.schedule(0, milliseconds(100), [&eng, &log0] {
    eng.post(0, 1, milliseconds(101), [&eng, &log0] {
      eng.post(1, 0, milliseconds(102),
               [&log0] { log0.push_back(milliseconds(102)); });
    });
  });
  eng.run_windows_until(seconds(3));

  EXPECT_EQ(eng.stats().lookahead_violations, 0u);
  EXPECT_EQ(eng.stats().causality_violations, 0u);
  ASSERT_EQ(log0.size(), 21u);
  EXPECT_TRUE(std::is_sorted(log0.begin(), log0.end()))
      << "shard 0 executed events out of local time order";
  EXPECT_EQ(log0[1], milliseconds(102)) << "reply not slotted after 100ms";
}

TEST(ParallelEngine, PairClosureAccountsForRelaysAndFeedback) {
  ParallelConfig pc;
  pc.threads = 3;
  pc.lookahead = milliseconds(1);
  pc.mode = ParallelMode::ShardConcurrent;
  ParallelEngine eng(pc);
  // Scalar matrix: every direct hop 1ms, every feedback cycle 2ms.
  EXPECT_EQ(eng.pair_closure(0, 1), milliseconds(1));
  EXPECT_EQ(eng.pair_closure(0, 0), milliseconds(2));

  eng.set_pair_lookahead(std::vector<util::SimDuration>{
      0, milliseconds(1), milliseconds(100),    // 0->0 (ignored), 0->1, 0->2
      milliseconds(50), 0, milliseconds(1),     // 1->0, 1->1 (ignored), 1->2
      milliseconds(100), milliseconds(100), 0,  // 2->0, 2->1, 2->2 (ignored)
  });
  // A relay chain cheaper than the direct promise caps the bound: 0->1->2
  // costs 2ms although the direct 0->2 entry says 100ms.
  EXPECT_EQ(eng.pair_closure(0, 2), milliseconds(2));
  // Diagonal = shortest feedback cycle through other shards, never the
  // (ignored) diagonal input entry.
  EXPECT_EQ(eng.pair_closure(0, 0), milliseconds(51));   // 0->1->0
  EXPECT_EQ(eng.pair_closure(2, 2), milliseconds(101));  // 2->1->2
  // Direct edges that no relay can beat pass through unchanged.
  EXPECT_EQ(eng.pair_closure(1, 0), milliseconds(50));
  EXPECT_EQ(eng.pair_closure(2, 1), milliseconds(100));
}

TEST(ParallelEngine, MailboxMergeOrderIndependentOfWorkerDelays) {
  // Shards 0 and 1 both stream tagged messages to shard 2; an artificial
  // sleep slows one producer's worker. The delivery log on shard 2 must not
  // depend on which worker finishes its window first.
  const auto run = [](int slow_shard) {
    ParallelConfig pc;
    pc.threads = 3;
    pc.lookahead = milliseconds(1);
    pc.mode = ParallelMode::ShardConcurrent;
    ParallelEngine eng(pc);

    std::vector<int> delivered;  // touched only by shard 2's handlers
    struct Producer {
      ParallelEngine& eng;
      std::vector<int>& delivered;
      int slow_shard;
      void operator()(ShardId shard, util::SimTime now, int i) const {
        if (shard == static_cast<ShardId>(slow_shard)) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        const int tag = static_cast<int>(shard) * 1000 + i;
        eng.post(shard, 2, now + milliseconds(1),
                 [this_ = *this, tag] { this_.delivered.push_back(tag); });
        if (i >= 19) return;
        auto self = *this;
        eng.schedule(shard, now + milliseconds(1),
                     [self, shard, now, i] {
                       self(shard, now + milliseconds(1), i + 1);
                     });
      }
    };
    const Producer producer{eng, delivered, slow_shard};
    for (ShardId s = 0; s < 2; ++s) {
      eng.schedule(s, milliseconds(1), [producer, s] {
        producer(s, milliseconds(1), 0);
      });
    }
    eng.run_windows_until(seconds(1));
    EXPECT_EQ(eng.stats().lookahead_violations, 0u);
    return delivered;
  };

  const auto baseline = run(-1);
  ASSERT_EQ(baseline.size(), 40u);
  EXPECT_EQ(baseline, run(0));
  EXPECT_EQ(baseline, run(1));
}

}  // namespace
}  // namespace p2prm::sim

// Peer-side session mechanics: the execution of service-graph hops
// (Fig. 2 step C) on a deterministic, hand-built domain.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "media/catalog.hpp"

namespace p2prm {
namespace {

using namespace core;

// A minimal world: RM, source with one object, two transcoder hosts for the
// same conversion, and a sink.
struct MiniWorld {
  SystemConfig config;
  System system;
  media::Figure1Catalog fig = media::figure1_catalog();
  media::MediaObject object;
  util::PeerId rm, source, host_e1, host_e2, sink;

  explicit MiniWorld(std::uint64_t seed = 3)
      : config([seed] {
          SystemConfig c;
          c.seed = seed;
          return c;
        }()),
        system(config) {
    util::Rng rng(seed);
    object = media::make_object(system.next_object_id(), fig.v1, 10.0, rng);
    rm = add({}, {});
    core::PeerInventory lib;
    lib.objects = {object};
    source = add(std::move(lib), {});
    host_e1 = add({}, {{system.next_service_id(), fig.edges[0]}});  // v1->v2
    host_e2 = add({}, {{system.next_service_id(), fig.edges[1]}});  // v2->v3
    sink = add({}, {});
    system.run_for(util::seconds(2));
  }

  util::PeerId add(PeerInventory inv, std::vector<ServiceOffering> services) {
    for (auto& s : services) inv.services.push_back(s);
    overlay::PeerSpec spec;
    spec.capacity_ops_per_s = 100e6;
    spec.online_since = -util::minutes(60);
    const auto id = system.add_peer(spec, std::move(inv));
    system.run_for(util::milliseconds(50));
    return id;
  }

  util::TaskId request_v3() {
    QoSRequirements q;
    q.object = object.id;
    q.acceptable_formats = {fig.v3};
    q.deadline = util::minutes(2);
    return system.submit_task(sink, q);
  }
};

TEST(PeerSession, TwoHopPipelineExecutesOnTheRightPeers) {
  MiniWorld world;
  const auto task = world.request_v3();
  world.system.run_for(util::minutes(3));

  const auto* record = world.system.ledger().record(task);
  ASSERT_EQ(record->status, TaskStatus::Completed);
  EXPECT_EQ(world.system.peer(world.host_e1)->stats().hops_executed, 1u);
  EXPECT_EQ(world.system.peer(world.host_e2)->stats().hops_executed, 1u);
  // The source forwarded one stream; each hop forwarded its output.
  EXPECT_EQ(world.system.peer(world.source)->stats().streams_forwarded, 1u);
  // All sessions cleaned up.
  for (const auto id : world.system.alive_peer_ids()) {
    EXPECT_EQ(world.system.peer(id)->active_sessions(), 0u) << "peer " << id;
    EXPECT_EQ(world.system.peer(id)->buffered_early_data(), 0u);
  }
}

TEST(PeerSession, ProfilerLearnsExecutionTimes) {
  MiniWorld world;
  const auto task = world.request_v3();
  world.system.run_for(util::minutes(3));
  ASSERT_EQ(world.system.ledger().record(task)->status, TaskStatus::Completed);
  // The e1 host recorded an execution sample for its conversion type.
  auto& profiler = world.system.peer(world.host_e1)->profiler();
  const auto* stats = profiler.execution_stats(world.fig.edges[0].type_key());
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count(), 1u);
  EXPECT_GT(stats->mean(), 0.0);
  // And the RM learned it through the next profiler report.
  world.system.run_for(util::seconds(2));
  auto* rm = world.system.peer(world.rm)->resource_manager();
  EXPECT_GT(rm->info().measured_execution_s(world.host_e1,
                                            world.fig.edges[0].type_key()),
            0.0);
}

TEST(PeerSession, RepeatedTasksReuseThePipeline) {
  MiniWorld world;
  std::vector<util::TaskId> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(world.request_v3());
    world.system.run_for(util::seconds(30));
  }
  world.system.run_for(util::minutes(3));
  for (const auto task : tasks) {
    EXPECT_EQ(world.system.ledger().record(task)->status,
              TaskStatus::Completed);
  }
  EXPECT_EQ(world.system.peer(world.host_e1)->stats().hops_executed, 4u);
}

TEST(PeerSession, HopCancelStopsWorkAndCleansUp) {
  MiniWorld world;
  const auto task = world.request_v3();
  // Let the pipeline start, then let the RM fail the task by killing the
  // only v2->v3 host: the e1 host's remaining session must be cancelled via
  // HopCancel or consumed; either way nothing leaks.
  world.system.run_for(util::milliseconds(300));
  world.system.crash_peer(world.host_e2);
  world.system.run_for(util::minutes(2));

  const auto* record = world.system.ledger().record(task);
  EXPECT_EQ(record->status, TaskStatus::Failed);
  for (const auto id : world.system.alive_peer_ids()) {
    EXPECT_EQ(world.system.peer(id)->active_sessions(), 0u) << "peer " << id;
  }
  EXPECT_EQ(world.system.peer(world.host_e1)->processor().queue_length(), 0u);
}

TEST(PeerSession, ConnectionsOpenDuringStreamingAndClose) {
  MiniWorld world;
  const auto task = world.request_v3();
  world.system.run_for(util::minutes(3));
  ASSERT_EQ(world.system.ledger().record(task)->status, TaskStatus::Completed);
  // Streaming links are closed after the hop; only the control link to the
  // RM remains.
  auto& conns = world.system.peer(world.host_e1)->connections();
  EXPECT_LE(conns.connection_count(), 1u);
  EXPECT_GE(conns.total_opened(), 2u);  // prev + next were opened
}

}  // namespace
}  // namespace p2prm

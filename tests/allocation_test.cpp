// Unit tests for the Fig. 3 allocation algorithm and its baselines,
// exercised directly against an InfoBase (no live overlay needed).
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "core/allocation.hpp"
#include "media/catalog.hpp"

namespace p2prm::core {
namespace {

using util::PeerId;
using util::ServiceId;
using util::seconds;

struct Fixture {
  sim::Simulator sim{1};
  net::Topology topo{};
  net::Network net{sim, topo};
  SystemConfig config{};
  util::Rng rng{42};
  media::Figure1Catalog cat = media::figure1_catalog();
  InfoBase info{util::DomainId{0}, PeerId{1}};
  media::MediaObject object;

  static constexpr std::uint64_t kSource = 10;
  static constexpr std::uint64_t kSink = 20;

  Fixture() {
    // Peers 1..8 host e1..e8; 10 is the source, 20 the sink.
    for (std::uint64_t p : std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8,
                                                      kSource, kSink}) {
      overlay::PeerSpec spec;
      spec.id = PeerId{p};
      spec.capacity_ops_per_s = 50e6;
      topo.place_at(spec.id, {static_cast<double>(p), 0.0});
      info.add_member(spec, 0);
    }
    PeerAnnounce announce;
    announce.spec.id = PeerId{kSource};
    object = media::make_object(util::ObjectId{1}, cat.v1, 10.0, rng);
    announce.objects = {object};
    info.add_inventory(announce);
    for (std::size_t i = 0; i < cat.edges.size(); ++i) {
      PeerAnnounce svc;
      svc.spec.id = PeerId{i + 1};
      svc.services = {ServiceOffering{ServiceId{i + 1}, cat.edges[i]}};
      info.add_inventory(svc);
    }
  }

  AllocationRequest request(util::SimDuration deadline = seconds(60)) {
    AllocationRequest r;
    r.task = util::TaskId{1};
    r.q.object = object.id;
    r.q.acceptable_formats = {cat.v3};
    r.q.deadline = deadline;
    r.sink = PeerId{kSink};
    r.now = 0;
    r.submitted_at = 0;
    return r;
  }

  void set_load(std::uint64_t peer, double load_ops, double backlog_s = 0.0) {
    ProfilerReport report;
    report.sample.smoothed_load_ops = load_ops;
    report.sample.backlog_seconds = backlog_s;
    report.sample.smoothed_utilization = load_ops / 50e6;
    info.record_report(PeerId{peer}, report, 0);
  }

  AllocationResult run(AllocatorKind kind,
                       util::SimDuration deadline = seconds(60)) {
    return make_allocator(kind)->allocate(info, net, config, request(deadline),
                                          rng);
  }
};

TEST(Allocation, PaperBfsFindsConsistentServiceGraph) {
  Fixture fx;
  const auto result = fx.run(AllocatorKind::PaperBfs);
  ASSERT_TRUE(result.found) << result.failure_reason;
  EXPECT_TRUE(result.sg.chain_consistent());
  EXPECT_EQ(result.sg.source_peer(), PeerId{Fixture::kSource});
  EXPECT_EQ(result.sg.sink_peer(), PeerId{Fixture::kSink});
  EXPECT_EQ(result.sg.source_format(), fx.cat.v1);
  EXPECT_EQ(result.sg.target_format(), fx.cat.v3);
  // Three candidates as in the paper's example.
  EXPECT_EQ(result.candidates_considered, 3u);
  EXPECT_GT(result.estimated_execution, 0);
}

TEST(Allocation, FairnessSteersAwayFromLoadedPeer) {
  // Note: with everyone idle, fairness maximization legitimately prefers
  // the 4-hop path (it spreads load over more peers). The property under
  // test is only that a hot peer is avoided when an alternative exists.
  for (const std::uint64_t hot : {2ull, 3ull}) {
    Fixture fx;
    fx.set_load(hot, 40e6);
    const auto result = fx.run(AllocatorKind::PaperBfs);
    ASSERT_TRUE(result.found);
    for (const auto& hop : result.sg.hops()) {
      EXPECT_NE(hop.peer, PeerId{hot});
    }
  }
}

TEST(Allocation, FairnessPrefersSpreadingOverFewHops) {
  // The paper's objective is fairness, not efficiency: on an idle domain
  // the 4-hop chain {e1,e4,e5,e8} loads four peers lightly and wins over
  // the 2-hop chains that load two peers heavily.
  Fixture fx;
  const auto result = fx.run(AllocatorKind::PaperBfs);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.sg.hop_count(), 4u);
  const auto min_hop = fx.run(AllocatorKind::MinHop);
  ASSERT_TRUE(min_hop.found);
  EXPECT_LE(min_hop.fairness_after, result.fairness_after + 1e-12);
}

TEST(Allocation, ReturnsMaxFairnessAmongFeasible) {
  Fixture fx;
  graph::SearchStats stats;
  const auto candidates = enumerate_candidates(fx.info, fx.net, fx.config,
                                               fx.request(), false, &stats);
  ASSERT_EQ(candidates.size(), 3u);
  const auto result = fx.run(AllocatorKind::PaperBfs);
  ASSERT_TRUE(result.found);
  for (const auto& c : candidates) {
    if (c.feasible) {
      EXPECT_GE(result.fairness_after, c.fairness_after - 1e-12);
    }
  }
}

TEST(Allocation, ImpossibleDeadlineReportsDeadline) {
  Fixture fx;
  const auto result = fx.run(AllocatorKind::PaperBfs, util::milliseconds(1));
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.failure_reason, "deadline");
}

TEST(Allocation, UnknownObjectReportsNoObject) {
  Fixture fx;
  auto req = fx.request();
  req.q.object = util::ObjectId{777};
  const auto result = make_allocator(AllocatorKind::PaperBfs)
                          ->allocate(fx.info, fx.net, fx.config, req, fx.rng);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.failure_reason, "no-object");
}

TEST(Allocation, UnreachableTargetReportsNoPath) {
  Fixture fx;
  auto req = fx.request();
  // A format nobody can produce.
  req.q.acceptable_formats = {
      media::MediaFormat{media::Codec::MJPEG, media::kRes176x144, 16}};
  const auto result = make_allocator(AllocatorKind::PaperBfs)
                          ->allocate(fx.info, fx.net, fx.config, req, fx.rng);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.failure_reason, "no-path");
}

TEST(Allocation, DirectDeliveryWhenSourceFormatAcceptable) {
  Fixture fx;
  auto req = fx.request();
  req.q.acceptable_formats = {fx.cat.v1};
  const auto result = make_allocator(AllocatorKind::PaperBfs)
                          ->allocate(fx.info, fx.net, fx.config, req, fx.rng);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.sg.hop_count(), 0u);
  EXPECT_TRUE(result.sg.chain_consistent());
}

TEST(Allocation, MinHopPrefersShortestChain) {
  Fixture fx;
  const auto result = fx.run(AllocatorKind::MinHop);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.sg.hop_count(), 2u);  // never the 4-hop path
}

TEST(Allocation, LeastLoadedMinimizesPeakUtilization) {
  Fixture fx;
  fx.set_load(2, 45e6);
  const auto result = fx.run(AllocatorKind::LeastLoaded);
  ASSERT_TRUE(result.found);
  for (const auto& hop : result.sg.hops()) {
    EXPECT_NE(hop.peer, PeerId{2});
  }
}

TEST(Allocation, RandomIsDeterministicGivenSeedAndFeasible) {
  Fixture fx1, fx2;
  const auto a = fx1.run(AllocatorKind::Random);
  const auto b = fx2.run(AllocatorKind::Random);
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  ASSERT_EQ(a.sg.hop_count(), b.sg.hop_count());
  for (std::size_t i = 0; i < a.sg.hop_count(); ++i) {
    EXPECT_EQ(a.sg.hops()[i].peer, b.sg.hops()[i].peer);
  }
}

TEST(Allocation, ExhaustiveNeverWorseThanPaperBfs) {
  Fixture fx;
  const auto bfs = fx.run(AllocatorKind::PaperBfs);
  const auto full = fx.run(AllocatorKind::Exhaustive);
  ASSERT_TRUE(bfs.found);
  ASSERT_TRUE(full.found);
  EXPECT_GE(full.fairness_after, bfs.fairness_after - 1e-12);
  EXPECT_GE(full.candidates_considered, bfs.candidates_considered);
}

TEST(Allocation, EstimateComputeTimeShape) {
  Fixture fx;
  const double ops = 50e6;  // one second of work on an idle 50 Mops peer
  const auto idle = estimate_compute_time(fx.info, fx.config, PeerId{4}, ops);
  EXPECT_EQ(idle, seconds(1));
  fx.set_load(4, 25e6, 2.0);  // half loaded + 2s backlog
  const auto loaded = estimate_compute_time(fx.info, fx.config, PeerId{4}, ops);
  EXPECT_EQ(loaded, seconds(4));  // 2s backlog + ops at 25 Mops spare
  EXPECT_EQ(estimate_compute_time(fx.info, fx.config, PeerId{99}, ops),
            util::kTimeInfinity);
}

TEST(Allocation, SpareCapacityFloorPreventsDivergence) {
  Fixture fx;
  fx.set_load(4, 50e6);  // fully loaded
  const auto t = estimate_compute_time(fx.info, fx.config, PeerId{4}, 50e6);
  // Floor: 10% of capacity -> 10 seconds, not infinity.
  EXPECT_EQ(t, seconds(10));
}

TEST(Allocation, MeasuredExecutionTimesRaiseEstimates) {
  Fixture fx;
  const std::uint64_t key = fx.cat.edges[0].type_key();
  const double ops = 50e6;  // 1s model estimate on the idle 50 Mops peer 1
  const auto model =
      estimate_service_time(fx.info, fx.config, PeerId{1}, ops, key);
  EXPECT_EQ(model, seconds(1));
  // The profiler reports this conversion actually takes 4s on peer 1.
  ProfilerReport report;
  report.measured_exec_s = {{key, 4.0}};
  fx.info.record_report(PeerId{1}, report, 0);
  EXPECT_EQ(estimate_service_time(fx.info, fx.config, PeerId{1}, ops, key),
            seconds(4));
  // Measurements *below* the model never lower the estimate (max-blend).
  ProfilerReport optimistic;
  optimistic.measured_exec_s = {{key, 0.1}};
  fx.info.record_report(PeerId{1}, optimistic, 0);
  EXPECT_EQ(estimate_service_time(fx.info, fx.config, PeerId{1}, ops, key),
            seconds(1));
  // Ablation flag: off -> pure model.
  ProfilerReport slow;
  slow.measured_exec_s = {{key, 4.0}};
  fx.info.record_report(PeerId{1}, slow, 0);
  auto config = fx.config;
  config.use_measured_execution_times = false;
  EXPECT_EQ(estimate_service_time(fx.info, config, PeerId{1}, ops, key),
            seconds(1));
}

TEST(Allocation, CommittedLoadVisibleToNextAllocation) {
  Fixture fx;
  const auto first = fx.run(AllocatorKind::PaperBfs);
  ASSERT_TRUE(first.found);
  // Commit the first allocation's loads as the RM would.
  for (const auto& [peer, rate] : first.load_deltas) {
    fx.info.commit_load(peer, rate);
  }
  const auto second = fx.run(AllocatorKind::PaperBfs);
  ASSERT_TRUE(second.found);
  // The second allocation must steer around the peers the first loaded
  // wherever alternatives exist: peer 1 (e1) is unavoidable, but the
  // downstream hops have disjoint alternatives.
  std::set<std::uint64_t> first_peers, second_peers;
  for (std::size_t i = 1; i < first.sg.hop_count(); ++i) {
    first_peers.insert(first.sg.hops()[i].peer.value());
  }
  for (std::size_t i = 1; i < second.sg.hop_count(); ++i) {
    second_peers.insert(second.sg.hops()[i].peer.value());
  }
  for (const auto p : second_peers) {
    EXPECT_FALSE(first_peers.count(p)) << "peer " << p << " reused";
  }
}

TEST(Allocation, AllocatorNameRoundTripsForEveryKind) {
  for (const AllocatorKind kind :
       {AllocatorKind::PaperBfs, AllocatorKind::Exhaustive,
        AllocatorKind::MinHop, AllocatorKind::Random, AllocatorKind::LeastLoaded,
        AllocatorKind::MaxUtil, AllocatorKind::DetStream}) {
    EXPECT_EQ(allocator_from_name(allocator_name(kind)), kind);
    const auto allocator = make_allocator(kind);
    ASSERT_NE(allocator, nullptr);
    EXPECT_EQ(allocator->kind(), kind);
  }
}

TEST(Allocation, UnknownAllocatorNameListsValidNames) {
  try {
    (void)allocator_from_name("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
    for (const char* name : {"paper-bfs", "exhaustive", "min-hop", "random",
                             "least-loaded", "max-util", "det-stream"}) {
      EXPECT_NE(msg.find(name), std::string::npos)
          << "error message does not list valid name " << name << ": " << msg;
    }
  }
}

TEST(Allocation, StreamingPoliciesFeasibleOnFigure1) {
  for (const AllocatorKind kind :
       {AllocatorKind::MaxUtil, AllocatorKind::DetStream}) {
    Fixture fx;
    const auto result = fx.run(kind);
    ASSERT_TRUE(result.found) << result.failure_reason;
    EXPECT_TRUE(result.sg.chain_consistent());
    EXPECT_EQ(result.sg.source_format(), fx.cat.v1);
    EXPECT_EQ(result.sg.target_format(), fx.cat.v3);
    EXPECT_GT(result.estimated_execution, 0);
  }
}

TEST(Allocation, MaxUtilConsolidatesOntoLoadedPeer) {
  // e2 (peer 2) and e3 (peer 3) are the same conversion; with peer 2 hot,
  // fairness avoids it but max-util deliberately packs onto it, keeping the
  // idle peers' capacity in one piece.
  Fixture fx;
  fx.set_load(2, 40e6);
  const auto result = fx.run(AllocatorKind::MaxUtil);
  ASSERT_TRUE(result.found);
  bool through_hot = false;
  for (const auto& hop : result.sg.hops()) {
    through_hot = through_hot || hop.peer == PeerId{2};
  }
  EXPECT_TRUE(through_hot);
}

TEST(Allocation, DetStreamMinimizesCompletionTime) {
  Fixture fx;
  const auto det = fx.run(AllocatorKind::DetStream);
  ASSERT_TRUE(det.found);
  for (const AllocatorKind other :
       {AllocatorKind::PaperBfs, AllocatorKind::MinHop,
        AllocatorKind::LeastLoaded}) {
    const auto result = fx.run(other);
    ASSERT_TRUE(result.found);
    EXPECT_LE(det.estimated_execution, result.estimated_execution)
        << allocator_name(other);
  }
  // Deterministic without consuming the rng: two fresh fixtures agree.
  Fixture fx2;
  const auto again = fx2.run(AllocatorKind::DetStream);
  ASSERT_TRUE(again.found);
  ASSERT_EQ(det.sg.hop_count(), again.sg.hop_count());
  for (std::size_t i = 0; i < det.sg.hop_count(); ++i) {
    EXPECT_EQ(det.sg.hops()[i].peer, again.sg.hops()[i].peer);
  }
}

TEST(Allocation, PicksLessLoadedReplicaOfSameObject) {
  Fixture fx;
  // Second replica of the object on peer 6, already in the target format.
  PeerAnnounce announce;
  announce.spec.id = PeerId{6};
  auto replica = fx.object;
  replica.format = fx.cat.v3;
  announce.objects = {replica};
  fx.info.add_inventory(announce);

  const auto result = fx.run(AllocatorKind::PaperBfs);
  ASSERT_TRUE(result.found);
  // Direct delivery from the v3 replica adds zero load: maximum fairness.
  EXPECT_EQ(result.sg.hop_count(), 0u);
  EXPECT_EQ(result.sg.source_peer(), PeerId{6});
}

}  // namespace
}  // namespace p2prm::core

// The structured tracer: buffer semantics and the events the middleware
// actually emits during a run.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "core/trace.hpp"
#include "media/catalog.hpp"
#include "workload/heterogeneity.hpp"

namespace p2prm::core {
namespace {

TraceEvent make_event(util::SimTime at, TraceKind kind, std::uint64_t task) {
  TraceEvent e;
  e.at = at;
  e.kind = kind;
  e.peer = util::PeerId{1};
  e.task = util::TaskId{task};
  return e;
}

TEST(Tracer, RecordsAndFilters) {
  Tracer tracer;
  tracer.record(make_event(1, TraceKind::TaskSubmitted, 7));
  tracer.record(make_event(2, TraceKind::TaskAdmitted, 7));
  tracer.record(make_event(3, TraceKind::TaskSubmitted, 8));
  tracer.record(make_event(4, TraceKind::TaskCompleted, 7));

  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.count_of(TraceKind::TaskSubmitted), 2u);
  const auto timeline = tracer.task_timeline(util::TaskId{7});
  ASSERT_EQ(timeline.size(), 3u);
  EXPECT_EQ(timeline.front().kind, TraceKind::TaskSubmitted);
  EXPECT_EQ(timeline.back().kind, TraceKind::TaskCompleted);
  EXPECT_EQ(tracer.of_kind(TraceKind::TaskAdmitted).size(), 1u);
}

TEST(Tracer, BoundedBufferDropsOldest) {
  Tracer tracer(16);
  for (std::uint64_t i = 0; i < 100; ++i) {
    tracer.record(make_event(static_cast<util::SimTime>(i),
                             TraceKind::TaskSubmitted, i));
  }
  EXPECT_LE(tracer.size(), 16u);
  EXPECT_EQ(tracer.total_recorded(), 100u);
  EXPECT_TRUE(tracer.dropped_any());
  // The newest event survives.
  EXPECT_EQ(tracer.events().back().task, util::TaskId{99});
}

TEST(Tracer, TableRendersAndClearResets) {
  Tracer tracer;
  tracer.record(make_event(1, TraceKind::RmPromoted, 0));
  const auto table = tracer.to_table();
  EXPECT_EQ(table.rows(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.total_recorded(), 0u);
}

TEST(Tracer, KindNamesAreStable) {
  EXPECT_EQ(trace_kind_name(TraceKind::TaskSubmitted), "task.submitted");
  EXPECT_EQ(trace_kind_name(TraceKind::RmTakeover), "rm.takeover");
  EXPECT_EQ(trace_kind_name(TraceKind::PeerFailed), "peer.failed");
}

TEST(TracerIntegration, CapturesTaskLifecycleAndMembership) {
  SystemConfig config;
  config.seed = 4;
  System system(config);
  Tracer tracer;
  system.set_tracer(&tracer);

  media::Catalog catalog = media::ladder_catalog();
  util::Rng rng(4);
  workload::PopulationConfig pop;
  workload::ObjectPopulation population(catalog, pop, system, rng);
  auto factory = workload::make_peer_factory(
      catalog, population, workload::HeterogeneityConfig{},
      workload::ProvisionConfig{}, system, rng);
  const auto ids = workload::bootstrap_network(system, factory, 8);

  // Founding RM promotion + 7 joins.
  EXPECT_EQ(tracer.count_of(TraceKind::RmPromoted), 1u);
  EXPECT_EQ(tracer.count_of(TraceKind::PeerJoined), 7u);

  const auto& object = population.at(0);
  QoSRequirements q;
  q.object = object.id;
  q.acceptable_formats = {object.format};
  q.deadline = util::minutes(2);
  const auto task = system.submit_task(ids.back(), q);
  system.run_for(util::minutes(3));

  const auto timeline = tracer.task_timeline(task);
  ASSERT_GE(timeline.size(), 3u);
  EXPECT_EQ(timeline[0].kind, TraceKind::TaskSubmitted);
  EXPECT_EQ(timeline[1].kind, TraceKind::TaskAdmitted);
  EXPECT_EQ(timeline.back().kind, TraceKind::TaskCompleted);
  EXPECT_EQ(timeline.back().detail, "on-time");

  // Failover leaves a takeover trace.
  const auto rm = system.resource_manager_ids().at(0);
  system.run_for(util::seconds(5));
  system.crash_peer(rm);
  system.run_for(util::seconds(15));
  EXPECT_EQ(tracer.count_of(TraceKind::RmTakeover), 1u);
  EXPECT_GE(tracer.count_of(TraceKind::PeerFailed), 1u);
}

TEST(TracerIntegration, NoTracerMeansNoOverheadOrCrash) {
  SystemConfig config;
  config.seed = 5;
  System system(config);  // no tracer attached
  media::Catalog catalog = media::ladder_catalog();
  util::Rng rng(5);
  workload::PopulationConfig pop;
  workload::ObjectPopulation population(catalog, pop, system, rng);
  auto factory = workload::make_peer_factory(
      catalog, population, workload::HeterogeneityConfig{},
      workload::ProvisionConfig{}, system, rng);
  workload::bootstrap_network(system, factory, 4);
  SUCCEED();
}

}  // namespace
}  // namespace p2prm::core

// The structured tracer: buffer semantics and the events the middleware
// actually emits during a run — plus the golden-trace determinism gate.
//
// Golden trace: TracerGolden.QuickstartScenarioMatchesCommittedTrace runs
// the examples/quickstart scenario twice, serializes every trace event and
// compares the result to tests/golden/quickstart_trace.txt. When a change
// legitimately alters control-plane behaviour, regenerate the file with
//
//   ./build/tests/trace_test --update-golden
//
// and commit the diff alongside the change that caused it. This binary
// links its own main() (NO_MAIN in tests/CMakeLists.txt) to parse the flag.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string_view>

#include "core/system.hpp"
#include "core/trace.hpp"
#include "media/catalog.hpp"
#include "workload/heterogeneity.hpp"

namespace p2prm::core {

// Set by this binary's main() on --update-golden (needs external linkage).
bool g_update_golden = false;

namespace {

TraceEvent make_event(util::SimTime at, TraceKind kind, std::uint64_t task) {
  TraceEvent e;
  e.at = at;
  e.kind = kind;
  e.peer = util::PeerId{1};
  e.task = util::TaskId{task};
  return e;
}

TEST(Tracer, RecordsAndFilters) {
  Tracer tracer;
  tracer.record(make_event(1, TraceKind::TaskSubmitted, 7));
  tracer.record(make_event(2, TraceKind::TaskAdmitted, 7));
  tracer.record(make_event(3, TraceKind::TaskSubmitted, 8));
  tracer.record(make_event(4, TraceKind::TaskCompleted, 7));

  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.count_of(TraceKind::TaskSubmitted), 2u);
  const auto timeline = tracer.task_timeline(util::TaskId{7});
  ASSERT_EQ(timeline.size(), 3u);
  EXPECT_EQ(timeline.front().kind, TraceKind::TaskSubmitted);
  EXPECT_EQ(timeline.back().kind, TraceKind::TaskCompleted);
  EXPECT_EQ(tracer.of_kind(TraceKind::TaskAdmitted).size(), 1u);
}

TEST(Tracer, BoundedBufferDropsOldest) {
  Tracer tracer(16);
  for (std::uint64_t i = 0; i < 100; ++i) {
    tracer.record(make_event(static_cast<util::SimTime>(i),
                             TraceKind::TaskSubmitted, i));
  }
  EXPECT_LE(tracer.size(), 16u);
  EXPECT_EQ(tracer.total_recorded(), 100u);
  EXPECT_TRUE(tracer.dropped_any());
  // The newest event survives.
  EXPECT_EQ(tracer.events().back().task, util::TaskId{99});
}

TEST(Tracer, TableRendersAndClearResets) {
  Tracer tracer;
  tracer.record(make_event(1, TraceKind::RmPromoted, 0));
  const auto table = tracer.to_table();
  EXPECT_EQ(table.rows(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.total_recorded(), 0u);
}

TEST(Tracer, KindNamesAreStable) {
  EXPECT_EQ(trace_kind_name(TraceKind::TaskSubmitted), "task.submitted");
  EXPECT_EQ(trace_kind_name(TraceKind::RmTakeover), "rm.takeover");
  EXPECT_EQ(trace_kind_name(TraceKind::PeerFailed), "peer.failed");
}

TEST(TracerIntegration, CapturesTaskLifecycleAndMembership) {
  SystemConfig config;
  config.seed = 4;
  System system(config);
  Tracer tracer;
  system.set_tracer(&tracer);

  media::Catalog catalog = media::ladder_catalog();
  util::Rng rng(4);
  workload::PopulationConfig pop;
  workload::ObjectPopulation population(catalog, pop, system, rng);
  auto factory = workload::make_peer_factory(
      catalog, population, workload::HeterogeneityConfig{},
      workload::ProvisionConfig{}, system, rng);
  const auto ids = workload::bootstrap_network(system, factory, 8);

  // Founding RM promotion + 7 joins.
  EXPECT_EQ(tracer.count_of(TraceKind::RmPromoted), 1u);
  EXPECT_EQ(tracer.count_of(TraceKind::PeerJoined), 7u);

  const auto& object = population.at(0);
  QoSRequirements q;
  q.object = object.id;
  q.acceptable_formats = {object.format};
  q.deadline = util::minutes(2);
  const auto task = system.submit_task(ids.back(), q);
  system.run_for(util::minutes(3));

  const auto timeline = tracer.task_timeline(task);
  ASSERT_GE(timeline.size(), 3u);
  EXPECT_EQ(timeline[0].kind, TraceKind::TaskSubmitted);
  EXPECT_EQ(timeline[1].kind, TraceKind::TaskAdmitted);
  EXPECT_EQ(timeline.back().kind, TraceKind::TaskCompleted);
  EXPECT_EQ(timeline.back().detail, "on-time");

  // Failover leaves a takeover trace.
  const auto rm = system.resource_manager_ids().at(0);
  system.run_for(util::seconds(5));
  system.crash_peer(rm);
  system.run_for(util::seconds(15));
  EXPECT_EQ(tracer.count_of(TraceKind::RmTakeover), 1u);
  EXPECT_GE(tracer.count_of(TraceKind::PeerFailed), 1u);
}

// ---- Golden trace --------------------------------------------------------

// The examples/quickstart scenario, traced: five peers (RM, library,
// two transcoders, user), one MPEG2 -> MPEG4 task, two minutes of run.
std::string run_quickstart_trace() {
  SystemConfig config;
  config.seed = 2026;
  System system(config);
  Tracer tracer;
  system.set_tracer(&tracer);

  const media::MediaFormat source{media::Codec::MPEG2, media::kRes800x600,
                                  512};
  const media::MediaFormat target{media::Codec::MPEG4, media::kRes640x480,
                                  256};
  auto add_peer = [&](double capacity_mops, PeerInventory inventory) {
    overlay::PeerSpec spec;
    spec.capacity_ops_per_s = capacity_mops * 1e6;
    spec.online_since = -util::minutes(60);
    const auto id = system.add_peer(spec, std::move(inventory));
    system.run_for(util::milliseconds(100));
    return id;
  };

  add_peer(120, {});  // founds the domain, becomes RM
  util::Rng rng(1);
  const auto movie =
      media::make_object(system.next_object_id(), source, 15.0, rng);
  PeerInventory library;
  library.objects = {movie};
  add_peer(60, std::move(library));
  PeerInventory transcoder_a;
  transcoder_a.services = {
      {system.next_service_id(), media::TranscoderType{source, target}}};
  add_peer(80, std::move(transcoder_a));
  PeerInventory transcoder_b;
  transcoder_b.services = {
      {system.next_service_id(), media::TranscoderType{source, target}}};
  add_peer(40, std::move(transcoder_b));
  const auto user = add_peer(50, {});
  system.run_for(util::seconds(2));

  QoSRequirements q;
  q.object = movie.id;
  q.acceptable_formats = {target};
  q.deadline = util::seconds(60);
  q.importance = 5.0;
  system.submit_task(user, q);
  system.run_for(util::minutes(2));

  // One line per event, every field included: any behavioural drift in the
  // control plane shows up as a text diff against the committed golden.
  std::ostringstream out;
  for (const auto& e : tracer.events()) {
    out << e.at << ' ' << trace_kind_name(e.kind) << " peer="
        << util::to_string(e.peer) << " task=" << util::to_string(e.task)
        << " domain=" << util::to_string(e.domain) << " detail=" << e.detail
        << '\n';
  }
  return out.str();
}

TEST(TracerGolden, QuickstartScenarioMatchesCommittedTrace) {
  const std::string first = run_quickstart_trace();
  const std::string second = run_quickstart_trace();
  // Same seed, same scenario, fresh System: the trace must be identical.
  ASSERT_EQ(first, second) << "quickstart scenario is nondeterministic";
  ASSERT_FALSE(first.empty());

  const std::string path =
      std::string(P2PRM_GOLDEN_DIR) + "/quickstart_trace.txt";
  if (g_update_golden) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << first;
    GTEST_SKIP() << "golden updated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — regenerate with: trace_test --update-golden";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(first, want.str())
      << "trace diverged from " << path
      << " — if the behaviour change is intended, rerun with "
         "--update-golden and commit the new file";
}

// The fault scenario, traced: the quickstart topology plus a standby peer,
// where the RM crashes mid-task (backup takeover) and a transcoder crashes
// right after (task recovery), then the system drains. Covers the failure
// paths the quickstart golden never exercises: peer.failed, rm.takeover,
// task recovery and re-composition.
std::string run_fault_trace() {
  SystemConfig config;
  config.seed = 2027;
  System system(config);
  Tracer tracer;
  system.set_tracer(&tracer);

  const media::MediaFormat source{media::Codec::MPEG2, media::kRes800x600,
                                  512};
  const media::MediaFormat target{media::Codec::MPEG4, media::kRes640x480,
                                  256};
  auto add_peer = [&](double capacity_mops, PeerInventory inventory) {
    overlay::PeerSpec spec;
    spec.capacity_ops_per_s = capacity_mops * 1e6;
    spec.online_since = -util::minutes(60);
    const auto id = system.add_peer(spec, std::move(inventory));
    system.run_for(util::milliseconds(100));
    return id;
  };

  const auto rm = add_peer(120, {});  // founds the domain, becomes RM
  util::Rng rng(2);
  const auto movie =
      media::make_object(system.next_object_id(), source, 15.0, rng);
  PeerInventory library;
  library.objects = {movie};
  add_peer(60, std::move(library));
  PeerInventory transcoder_a;
  transcoder_a.services = {
      {system.next_service_id(), media::TranscoderType{source, target}}};
  const auto worker_a = add_peer(80, std::move(transcoder_a));
  PeerInventory transcoder_b;
  transcoder_b.services = {
      {system.next_service_id(), media::TranscoderType{source, target}}};
  add_peer(40, std::move(transcoder_b));
  const auto user = add_peer(50, {});
  add_peer(90, {});  // standby: becomes the backup / takeover candidate
  system.run_for(util::seconds(5));  // backup sync settles

  QoSRequirements q;
  q.object = movie.id;
  q.acceptable_formats = {target};
  q.deadline = util::minutes(3);
  q.importance = 5.0;
  system.submit_task(user, q);
  system.run_for(util::seconds(1));

  system.crash_peer(rm);  // backup must take over mid-task
  system.run_for(util::seconds(20));
  system.crash_peer(worker_a);  // if it carried the hop: recovery kicks in
  system.run_for(util::minutes(3));

  std::ostringstream out;
  for (const auto& e : tracer.events()) {
    out << e.at << ' ' << trace_kind_name(e.kind) << " peer="
        << util::to_string(e.peer) << " task=" << util::to_string(e.task)
        << " domain=" << util::to_string(e.domain) << " detail=" << e.detail
        << '\n';
  }
  return out.str();
}

TEST(TracerGolden, FaultScenarioMatchesCommittedTrace) {
  const std::string first = run_fault_trace();
  const std::string second = run_fault_trace();
  ASSERT_EQ(first, second) << "fault scenario is nondeterministic";
  ASSERT_FALSE(first.empty());
  // The scenario actually exercised the failure machinery.
  ASSERT_NE(first.find("rm.takeover"), std::string::npos);
  ASSERT_NE(first.find("peer.failed"), std::string::npos);

  const std::string path = std::string(P2PRM_GOLDEN_DIR) + "/fault_trace.txt";
  if (g_update_golden) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << first;
    GTEST_SKIP() << "golden updated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — regenerate with: trace_test --update-golden";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(first, want.str())
      << "trace diverged from " << path
      << " — if the behaviour change is intended, rerun with "
         "--update-golden and commit the new file";
}

TEST(TracerIntegration, NoTracerMeansNoOverheadOrCrash) {
  SystemConfig config;
  config.seed = 5;
  System system(config);  // no tracer attached
  media::Catalog catalog = media::ladder_catalog();
  util::Rng rng(5);
  workload::PopulationConfig pop;
  workload::ObjectPopulation population(catalog, pop, system, rng);
  auto factory = workload::make_peer_factory(
      catalog, population, workload::HeterogeneityConfig{},
      workload::ProvisionConfig{}, system, rng);
  workload::bootstrap_network(system, factory, 4);
  SUCCEED();
}

}  // namespace
}  // namespace p2prm::core

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--update-golden") {
      p2prm::core::g_update_golden = true;
    }
  }
  return RUN_ALL_TESTS();
}

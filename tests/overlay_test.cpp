#include <gtest/gtest.h>

#include "overlay/connection_manager.hpp"
#include "overlay/domain.hpp"
#include "overlay/membership.hpp"
#include "overlay/peer.hpp"

namespace p2prm::overlay {
namespace {

using util::PeerId;
using util::seconds;

PeerSpec make_spec(std::uint64_t id, double capacity = 100e6,
                   double link = 1.25e7, util::SimTime online_since = 0) {
  PeerSpec spec;
  spec.id = PeerId{id};
  spec.capacity_ops_per_s = capacity;
  spec.link.uplink_bytes_per_s = link;
  spec.link.downlink_bytes_per_s = link;
  spec.online_since = online_since;
  return spec;
}

// ---- qualification ------------------------------------------------------------

TEST(Qualification, RequiresAllThreeThresholds) {
  const QualificationConfig config;
  const util::SimTime now = seconds(3600);
  EXPECT_TRUE(qualifies_for_rm(make_spec(1), now, config));
  // i) insufficient bandwidth
  EXPECT_FALSE(qualifies_for_rm(make_spec(1, 100e6, 1e3), now, config));
  // ii) insufficient processing power
  EXPECT_FALSE(qualifies_for_rm(make_spec(1, 1e6), now, config));
  // iii) insufficient uptime
  EXPECT_FALSE(
      qualifies_for_rm(make_spec(1, 100e6, 1.25e7, now - seconds(1)), now, config));
}

TEST(Qualification, ScoreOrdersByAffluence) {
  const QualificationConfig config;
  const util::SimTime now = seconds(3600);
  const double strong = rm_score(make_spec(1, 200e6, 1.25e7), now, config);
  const double weak = rm_score(make_spec(2, 40e6, 1e6), now, config);
  EXPECT_GT(strong, weak);
}

TEST(Qualification, ScoreSaturates) {
  const QualificationConfig config;
  const util::SimTime now = seconds(36000);
  const double huge = rm_score(make_spec(1, 1e12, 1e12), now, config);
  EXPECT_LE(huge, config.weight_bandwidth + config.weight_capacity +
                      config.weight_uptime + 1e-9);
}

// ---- join decision --------------------------------------------------------------

TEST(JoinDecision, PaperRule) {
  // Room in the domain -> accept.
  EXPECT_EQ(decide_join({5, 10, false, false, false}), JoinOutcome::Accept);
  EXPECT_EQ(decide_join({5, 10, true, true, true}), JoinOutcome::Accept);
  // Full + qualifies -> promote to new RM.
  EXPECT_EQ(decide_join({10, 10, true, false, false}), JoinOutcome::Promote);
  // Full + does not qualify + other RMs known -> redirect.
  EXPECT_EQ(decide_join({10, 10, false, true, false}), JoinOutcome::Redirect);
  // Nowhere to go -> elastic overflow: absorb rather than strand the peer
  // (a weak peer can never qualify for RM, so Reject would loop forever).
  EXPECT_EQ(decide_join({10, 10, false, false, false}), JoinOutcome::Accept);
}

TEST(JoinDecision, UnderfullDomainBeatsPromotion) {
  // A qualified newcomer is still redirected when gossip shows another
  // domain with spare slots — prevents domain fragmentation.
  EXPECT_EQ(decide_join({10, 10, true, true, true}), JoinOutcome::Redirect);
  EXPECT_EQ(decide_join({10, 10, false, true, true}), JoinOutcome::Redirect);
}

// ---- connection manager ------------------------------------------------------------

TEST(ConnectionManager, RefCountsByPurpose) {
  ConnectionManager cm(4);
  EXPECT_TRUE(cm.open(PeerId{1}, ConnectionPurpose::Control));
  EXPECT_TRUE(cm.open(PeerId{1}, ConnectionPurpose::Streaming));
  EXPECT_EQ(cm.connection_count(), 1u);  // one link, two purposes
  cm.close(PeerId{1}, ConnectionPurpose::Control);
  EXPECT_TRUE(cm.connected(PeerId{1}));
  cm.close(PeerId{1}, ConnectionPurpose::Streaming);
  EXPECT_FALSE(cm.connected(PeerId{1}));
}

TEST(ConnectionManager, EnforcesLimit) {
  ConnectionManager cm(2);
  EXPECT_TRUE(cm.open(PeerId{1}, ConnectionPurpose::Streaming));
  EXPECT_TRUE(cm.open(PeerId{2}, ConnectionPurpose::Streaming));
  EXPECT_FALSE(cm.open(PeerId{3}, ConnectionPurpose::Streaming));
  EXPECT_TRUE(cm.full());
  EXPECT_EQ(cm.total_rejected(), 1u);
  // Existing connections can still gain refs.
  EXPECT_TRUE(cm.open(PeerId{2}, ConnectionPurpose::Control));
}

TEST(ConnectionManager, DropAll) {
  ConnectionManager cm(8);
  cm.open(PeerId{1}, ConnectionPurpose::Streaming);
  cm.open(PeerId{2}, ConnectionPurpose::Streaming);
  cm.drop_all_to(PeerId{1});
  EXPECT_FALSE(cm.connected(PeerId{1}));
  cm.drop_everything();
  EXPECT_EQ(cm.connection_count(), 0u);
}

TEST(ConnectionManager, CloseUnknownIsNoop) {
  ConnectionManager cm(2);
  cm.close(PeerId{9}, ConnectionPurpose::Control);
  EXPECT_EQ(cm.connection_count(), 0u);
}

// ---- domain -------------------------------------------------------------------------

profile::LoadSample sample_with(double load, double util = 0.5) {
  profile::LoadSample s;
  s.smoothed_load_ops = load;
  s.smoothed_utilization = util;
  return s;
}

TEST(Domain, MembershipBasics) {
  Domain d(util::DomainId{1}, PeerId{100});
  d.add_member(make_spec(100), 0);
  d.add_member(make_spec(1), 0);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_TRUE(d.has_member(PeerId{1}));
  EXPECT_TRUE(d.remove_member(PeerId{1}));
  EXPECT_FALSE(d.remove_member(PeerId{1}));
  EXPECT_EQ(d.member_ids(), (std::vector<PeerId>{PeerId{100}}));
}

TEST(Domain, BackupIsHighestScoringEligible) {
  Domain d(util::DomainId{1}, PeerId{100});
  d.add_member(make_spec(100), 0);
  d.add_member(make_spec(1), 0);
  d.add_member(make_spec(2), 0);
  d.record_report(PeerId{1}, sample_with(0), seconds(1), true, 1.5);
  d.record_report(PeerId{2}, sample_with(0), seconds(1), true, 2.5);
  ASSERT_TRUE(d.backup().has_value());
  EXPECT_EQ(*d.backup(), PeerId{2});
  EXPECT_EQ(d.eligible_ranked(), (std::vector<PeerId>{PeerId{2}, PeerId{1}}));
}

TEST(Domain, RmIsNeverItsOwnBackup) {
  Domain d(util::DomainId{1}, PeerId{100});
  d.add_member(make_spec(100), 0);
  d.record_report(PeerId{100}, sample_with(0), seconds(1), true, 9.0);
  EXPECT_FALSE(d.backup().has_value());
}

TEST(Domain, StaleMemberDetection) {
  Domain d(util::DomainId{1}, PeerId{100});
  d.add_member(make_spec(100), 0);
  d.add_member(make_spec(1), 0);
  d.add_member(make_spec(2), 0);
  d.record_report(PeerId{1}, sample_with(0), seconds(10), true, 1.0);
  // Peer 2 never reported after joining at t=0.
  const auto stale = d.stale_members(seconds(12), seconds(5));
  EXPECT_EQ(stale, (std::vector<PeerId>{PeerId{2}}));
}

TEST(Domain, AggregatesAndLoadVector) {
  Domain d(util::DomainId{1}, PeerId{100});
  d.add_member(make_spec(100, 100e6), 0);
  d.add_member(make_spec(1, 50e6), 0);
  d.record_report(PeerId{100}, sample_with(30e6), seconds(1), false, 0);
  d.record_report(PeerId{1}, sample_with(10e6), seconds(1), false, 0);
  EXPECT_DOUBLE_EQ(d.total_capacity_ops(), 150e6);
  EXPECT_DOUBLE_EQ(d.total_load_ops(), 40e6);
  const auto lv = d.load_vector();
  ASSERT_EQ(lv.size(), 2u);
  EXPECT_EQ(lv[0].first, PeerId{1});
  EXPECT_DOUBLE_EQ(lv[0].second, 10e6);
}

TEST(Domain, EpochBumping) {
  Domain d(util::DomainId{1}, PeerId{100});
  EXPECT_EQ(d.epoch(), 0u);
  d.bump_epoch();
  EXPECT_EQ(d.epoch(), 1u);
  d.set_epoch(9);
  EXPECT_EQ(d.epoch(), 9u);
}

}  // namespace
}  // namespace p2prm::overlay

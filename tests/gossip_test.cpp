#include <gtest/gtest.h>

#include "gossip/gossip_engine.hpp"
#include "gossip/summary.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"

namespace p2prm::gossip {
namespace {

using util::DomainId;
using util::PeerId;

DomainSummary make_summary(std::uint64_t domain, std::uint64_t rm,
                           std::uint64_t version, double util = 0.5) {
  DomainSummary s;
  s.domain = DomainId{domain};
  s.resource_manager = PeerId{rm};
  s.version = version;
  s.peer_count = 4;
  s.total_capacity_ops = 100.0;
  s.total_load_ops = util * 100.0;
  s.objects = bloom::BloomFilter({512, 3});
  s.services = bloom::BloomFilter({512, 3});
  return s;
}

TEST(Reconcile, FreshestWins) {
  std::vector<DomainSummary> mine{make_summary(1, 10, 3)};
  const std::vector<DomainSummary> theirs{make_summary(1, 11, 5),
                                          make_summary(2, 20, 1)};
  EXPECT_EQ(reconcile(mine, theirs), 2u);
  ASSERT_EQ(mine.size(), 2u);
  EXPECT_EQ(mine[0].version, 5u);
  EXPECT_EQ(mine[0].resource_manager, PeerId{11});  // failover learned
}

TEST(Reconcile, StaleIncomingIgnored) {
  std::vector<DomainSummary> mine{make_summary(1, 10, 7)};
  const std::vector<DomainSummary> theirs{make_summary(1, 10, 2)};
  EXPECT_EQ(reconcile(mine, theirs), 0u);
  EXPECT_EQ(mine[0].version, 7u);
}

struct GossipRig {
  sim::Simulator sim{1};
  net::Topology topo{};
  net::Network net{sim, topo};
  std::vector<std::unique_ptr<GossipEngine>> engines;
  std::vector<PeerId> rms;

  explicit GossipRig(std::size_t n, GossipConfig config = {}) {
    for (std::uint64_t i = 0; i < n; ++i) {
      const PeerId id{i + 1};
      rms.push_back(id);
      topo.place_at(id, {static_cast<double>(i * 10), 0});
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      const PeerId id{i + 1};
      auto engine = std::make_unique<GossipEngine>(
          sim, net, id, config, [this] { return rms; });
      engines.push_back(std::move(engine));
      GossipEngine* raw = engines.back().get();
      net.attach(id, {}, [raw](PeerId from, const net::Message& m) {
        if (const auto* g = net::message_as<GossipMessage>(m)) {
          raw->handle_message(from, *g);
        }
      });
      engines.back()->set_local_summary(make_summary(i + 1, i + 1, 1));
      engines.back()->start();
    }
  }
};

TEST(GossipEngine, AllSummariesConverge) {
  GossipRig rig(8);
  rig.sim.run_until(util::seconds(30));
  for (const auto& engine : rig.engines) {
    EXPECT_EQ(engine->known().size(), 8u);
  }
}

TEST(GossipEngine, VersionBumpPropagates) {
  GossipRig rig(6);
  rig.sim.run_until(util::seconds(20));
  // Domain 1 changes (peer joined): bump version with a new load picture.
  rig.engines[0]->set_local_summary(make_summary(1, 1, 2, 0.9));
  rig.sim.run_until(util::seconds(50));
  for (const auto& engine : rig.engines) {
    const auto* s = engine->summary_of(DomainId{1});
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->version, 2u);
    EXPECT_NEAR(s->utilization(), 0.9, 1e-9);
  }
}

TEST(GossipEngine, ServiceQueryFiltersAndSortsByUtilization) {
  sim::Simulator sim{1};
  net::Topology topo;
  net::Network net{sim, topo};
  topo.place_at(PeerId{1}, {0, 0});
  GossipEngine engine(sim, net, PeerId{1}, {}, [] {
    return std::vector<PeerId>{};
  });

  auto hot = make_summary(2, 20, 1, 0.9);
  hot.services.insert(std::uint64_t{777});
  auto cold = make_summary(3, 30, 1, 0.1);
  cold.services.insert(std::uint64_t{777});
  auto without = make_summary(4, 40, 1, 0.0);
  engine.set_local_summary(make_summary(1, 1, 1));
  engine.handle_message(PeerId{20}, [&] {
    GossipMessage m;
    m.sender = PeerId{20};
    m.summaries = {hot, cold, without};
    return m;
  }());

  const auto hits = engine.domains_with_service(777, DomainId{1});
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0]->domain, DomainId{3});  // least utilized first
  EXPECT_EQ(hits[1]->domain, DomainId{2});
}

TEST(GossipEngine, ObjectQueryExcludesOwnDomain) {
  sim::Simulator sim{1};
  net::Topology topo;
  net::Network net{sim, topo};
  topo.place_at(PeerId{1}, {0, 0});
  GossipEngine engine(sim, net, PeerId{1}, {}, [] {
    return std::vector<PeerId>{};
  });
  auto own = make_summary(1, 1, 1);
  own.objects.insert(util::ObjectId{5});
  engine.set_local_summary(own);
  const auto hits = engine.domains_with_object(util::ObjectId{5}, DomainId{1});
  EXPECT_TRUE(hits.empty());
}

TEST(GossipEngine, ChangeCallbackFires) {
  sim::Simulator sim{1};
  net::Topology topo;
  net::Network net{sim, topo};
  topo.place_at(PeerId{1}, {0, 0});
  GossipEngine engine(sim, net, PeerId{1}, {}, [] {
    return std::vector<PeerId>{};
  });
  std::size_t changes = 0;
  engine.set_on_change([&](std::size_t n) { changes += n; });
  GossipMessage m;
  m.sender = PeerId{2};
  m.summaries = {make_summary(7, 70, 1)};
  engine.handle_message(PeerId{2}, m);
  EXPECT_EQ(changes, 1u);
  engine.handle_message(PeerId{2}, m);  // same version: no change
  EXPECT_EQ(changes, 1u);
}

TEST(GossipEngine, StopHaltsRounds) {
  GossipRig rig(3);
  rig.sim.run_until(util::seconds(10));
  const auto rounds = rig.engines[0]->rounds();
  EXPECT_GT(rounds, 0u);
  for (auto& e : rig.engines) e->stop();
  rig.sim.run_until(util::seconds(20));
  EXPECT_EQ(rig.engines[0]->rounds(), rounds);
}

TEST(GossipEngine, TrafficScalesWithFanoutNotPopulation) {
  // Per round each RM sends exactly `fanout` messages. Anti-entropy is off
  // (it adds targeted extra pushes to silent partners — tested separately).
  GossipConfig config;
  config.fanout = 2;
  config.period = util::seconds(1);
  config.partner_silence_timeout = 0;
  GossipRig rig(10, config);
  rig.sim.run_until(util::seconds(10) + util::milliseconds(1));
  const auto& stats = rig.net.stats();
  // 10 engines x 10 rounds x 2 fanout.
  EXPECT_EQ(stats.per_type_count.at("gossip.summaries"), 200u);
}

TEST(GossipEngine, AntiEntropyPushesTargetSilentPartners) {
  // With a large population and tiny fanout, random pushes alone leave some
  // partners unheard-from for long stretches; the silence window triggers
  // extra targeted pushes at them.
  GossipConfig config;
  config.fanout = 1;
  config.period = util::seconds(1);
  config.partner_silence_timeout = util::seconds(3);
  config.max_anti_entropy_pushes = 2;
  GossipRig rig(12, config);
  rig.sim.run_until(util::seconds(30));
  std::uint64_t anti_entropy = 0;
  for (const auto& engine : rig.engines) {
    anti_entropy += engine->stats().anti_entropy_pushes;
  }
  EXPECT_GT(anti_entropy, 0u);
  // Bounded: at most max_anti_entropy_pushes extra sends per round.
  std::uint64_t rounds = 0, pushes = 0;
  for (const auto& engine : rig.engines) {
    rounds += engine->stats().rounds;
    pushes += engine->stats().pushes + engine->stats().anti_entropy_pushes;
  }
  EXPECT_LE(pushes, rounds * (config.fanout + config.max_anti_entropy_pushes));
}

}  // namespace
}  // namespace p2prm::gossip

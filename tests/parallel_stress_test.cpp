// ThreadSanitizer stress workload for the parallel engine (ctest label
// tsan-stress; see docs/PARALLELISM.md and docs/TESTING.md).
//
// Two hammers:
//   * a high-churn, fault-enabled fuzz scenario at 8 threads through the
//     full System stack (OrderedCommit mode: exercises the worker pool,
//     lockstep compaction fan-out and the mirror accounting under the
//     invariant checker), sized by P2PRM_STRESS_PEERS — small by default so
//     plain ctest stays quick, 5000 in CI's TSan job;
//   * a ShardConcurrent hammer where 8 workers genuinely execute handlers
//     concurrently, scheduling locally and posting cross-shard every window
//     — the path where TSan can observe real data races if the mailbox or
//     barrier protocol is wrong.
//
// On failure the scenario test prints the spec's repro string so CI can
// upload it as an artifact and developers can replay it with
// `p2prm_fuzz --repro=...`.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "check/runner.hpp"
#include "check/scenario.hpp"
#include "sim/parallel.hpp"
#include "util/time.hpp"

namespace p2prm::check {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

TEST(ParallelStress, HighChurnFaultScenarioAtEightThreads) {
  ScenarioSpec spec = ScenarioSpec::generate(42);
  spec.peers = static_cast<std::uint32_t>(env_u64("P2PRM_STRESS_PEERS", 400));
  spec.max_domain_size = 16;  // many domains -> all shards stay busy
  spec.task_cap = spec.peers;
  spec.arrival_rate = 4.0;
  spec.churn = true;
  spec.mean_session_s = 20.0;
  spec.crash_fraction = 0.5;
  spec.link.loss = 0.02;
  spec.link.delay = util::milliseconds(5);
  spec.link.jitter = util::milliseconds(2);

  // The workload is deliberately hostile, and P2PRM_STRESS_PEERS reshapes
  // it, so a violation-free run is not guaranteed at every size. What IS
  // guaranteed — and what this hammer checks while TSan watches the 8-thread
  // run — is exact equivalence with the sequential execution: same digest,
  // same violations (if any), and a clean parallel.counters snapshot.
  auto seq_checker = InvariantChecker::with_defaults();
  const RunResult seq =
      run_scenario(spec, seq_checker, util::seconds(2), {}, /*threads=*/1);
  auto par_checker = InvariantChecker::with_defaults();
  const RunResult par =
      run_scenario(spec, par_checker, util::seconds(2), {}, /*threads=*/8);

  EXPECT_EQ(seq.digest, par.digest) << "repro: " << spec.repro();
  EXPECT_EQ(seq.end_time, par.end_time);
  EXPECT_EQ(seq.submitted, par.submitted);
  EXPECT_EQ(seq.trace_events, par.trace_events);
  ASSERT_EQ(seq.violations.size(), par.violations.size())
      << "violation sets diverge; first parallel-only: "
      << (par.violations.empty()
              ? std::string("none")
              : par.violations.front().invariant + ": " +
                    par.violations.front().message)
      << "\n  repro: " << spec.repro();
  for (std::size_t i = 0; i < seq.violations.size(); ++i) {
    EXPECT_EQ(seq.violations[i].invariant, par.violations[i].invariant);
    EXPECT_EQ(seq.violations[i].message, par.violations[i].message);
    EXPECT_EQ(seq.violations[i].at, par.violations[i].at);
  }
  // parallel.counters is phase-checked inside the parallel run; a violation
  // there would have shown up above as a parallel-only extra.
  EXPECT_GT(par.submitted, 0u);
}

TEST(ParallelStress, ShardConcurrentHammer) {
  constexpr sim::ShardId kShards = 8;
  sim::ParallelConfig pc;
  pc.threads = kShards;
  pc.lookahead = util::milliseconds(1);
  pc.mode = sim::ParallelMode::ShardConcurrent;
  sim::ParallelEngine eng(pc);

  // Per-shard state only its own handlers touch; workers run concurrently.
  std::array<std::uint64_t, kShards> local_work{};
  std::array<std::vector<int>, kShards> inbox;

  struct Pump {
    sim::ParallelEngine& eng;
    std::array<std::uint64_t, kShards>& local_work;
    std::array<std::vector<int>, kShards>& inbox;
    void operator()(sim::ShardId shard, util::SimTime now, int round) const {
      // Local burst: several same-window events per round.
      for (int j = 0; j < 4; ++j) {
        eng.schedule(shard, now + j, [&w = local_work[shard]] { ++w; });
      }
      // Fan out to every other shard at the conservative bound.
      for (sim::ShardId dst = 0; dst < kShards; ++dst) {
        if (dst == shard) continue;
        const int tag = static_cast<int>(shard) * 10000 + round;
        eng.post(shard, dst, now + util::milliseconds(1),
                 [&box = inbox[dst], tag] { box.push_back(tag); });
      }
      if (round >= 199) return;
      auto self = *this;
      eng.schedule(shard, now + util::milliseconds(1),
                   [self, shard, now, round] {
                     self(shard, now + util::milliseconds(1), round + 1);
                   });
    }
  };
  const Pump pump{eng, local_work, inbox};
  for (sim::ShardId s = 0; s < kShards; ++s) {
    eng.schedule(s, util::milliseconds(1),
                 [pump, s] { pump(s, util::milliseconds(1), 0); });
  }
  eng.run_windows_until(util::seconds(1));

  EXPECT_EQ(eng.stats().lookahead_violations, 0u);
  constexpr std::uint64_t kRounds = 200;
  for (sim::ShardId s = 0; s < kShards; ++s) {
    EXPECT_EQ(local_work[s], kRounds * 4) << "shard " << s;
    EXPECT_EQ(inbox[s].size(), kRounds * (kShards - 1)) << "shard " << s;
  }
  EXPECT_EQ(eng.stats().cross_shard_messages, kRounds * kShards * (kShards - 1));
  EXPECT_EQ(eng.stats().merged_messages, eng.stats().cross_shard_messages);
}

}  // namespace
}  // namespace p2prm::check

// Streaming battery: deadline/continuity semantics of stream::StreamEngine
// under the competing placement policies (docs/STREAMING.md).
//
//   - accounting identity: delivered + late + dropped (+ in flight) always
//     equals generated, globally and per viewer, at every boundary
//   - upload-bandwidth cap: a peer's uplink serializes transmissions, so
//     bytes_sent == capacity * busy_time and saturation never exceeds 1
//   - chain rebuild: killing every transcode host mid-stream releases the
//     chain, fails placements during the blackout, and re-places on revival
//   - allocator differential: paper-bfs, max-util and det-stream all place
//     feasible chains on the same plan and see the same generated count
//   - byte determinism: identical (plan, pool) runs produce identical
//     digests and stats; a different plan seed produces a different digest
#include <gtest/gtest.h>

#include <set>

#include "media/catalog.hpp"
#include "net/network.hpp"
#include "stream/engine.hpp"
#include "workload/streaming.hpp"

namespace p2prm::stream {
namespace {

using util::PeerId;

struct World {
  sim::Simulator sim{1};
  net::Topology topo{};
  net::Network net{sim, topo};
  core::SystemConfig config{};
  media::Catalog catalog = media::ladder_catalog();
};

// Pool mirroring the E10 bench: heterogeneous capacities, a fixed uplink,
// every catalog conversion hosted by several peers (round-robin), so chain
// feasibility is a policy question, not a lottery.
void build_pool(World& w, StreamEngine& engine, std::size_t peers,
                double uplink_bytes_per_s, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto& conversions = w.catalog.conversions();
  std::uint64_t service_id = 1;
  for (std::size_t p = 0; p < peers; ++p) {
    overlay::PeerSpec spec;
    spec.id = PeerId{p};
    spec.capacity_ops_per_s = rng.uniform(30e6, 90e6);
    spec.link.uplink_bytes_per_s = uplink_bytes_per_s;
    spec.link.downlink_bytes_per_s = uplink_bytes_per_s;
    w.topo.place_at(spec.id, {rng.uniform(0, 1000), rng.uniform(0, 1000)});
    std::vector<core::ServiceOffering> services;
    for (std::size_t s = 0; s < 6; ++s) {
      services.push_back(core::ServiceOffering{
          util::ServiceId{service_id++},
          conversions[(p * 6 + s) % conversions.size()]});
    }
    engine.add_peer(spec, services);
  }
}

workload::StreamPlan make_plan(const World& w, std::uint64_t seed,
                               std::uint32_t viewers, std::uint32_t flash) {
  workload::StreamingConfig scfg;
  scfg.seed = seed;
  scfg.channels = 3;
  scfg.viewers = viewers;
  scfg.flash_crowd = flash;
  std::vector<PeerId> sources{PeerId{0}, PeerId{1}, PeerId{2}};
  std::vector<PeerId> sinks;
  for (std::uint32_t v = 0; v < viewers + flash; ++v) {
    sinks.push_back(PeerId{1000 + v});
  }
  return workload::StreamingScenario(w.catalog, scfg).build(sources, sinks);
}

void place_sinks(World& w, const workload::StreamPlan& plan) {
  util::Rng rng(4242);
  for (const workload::ViewerPlan& v : plan.viewers) {
    w.topo.place_at(v.sink, {rng.uniform(0, 1000), rng.uniform(0, 1000)});
  }
}

// Runs until at least `at_least`, then keeps going until every in-flight
// outcome has committed (horizon() can grow while draining).
void drain(World& w, StreamEngine& engine, util::SimTime at_least) {
  w.sim.run_until(at_least);
  while (w.sim.now() <= engine.horizon()) {
    w.sim.run_until(engine.horizon() + 1);
  }
}

TEST(Streaming, AccountingIdentityHoldsAtEveryBoundary) {
  World w;
  w.config.allocator = core::AllocatorKind::PaperBfs;
  const workload::StreamPlan plan = make_plan(w, 11, 14, 10);
  StreamEngine engine(w.sim, w.net, w.config, plan);
  build_pool(w, engine, 20, 4e6, 11);
  place_sinks(w, plan);
  engine.start();

  const util::SimTime end = plan.config.live_window +
                            plan.config.chunk_deadline +
                            plan.config.late_grace + util::seconds(10);
  for (util::SimTime t = 0; t < end; t += util::milliseconds(500)) {
    w.sim.run_until(t);
    ASSERT_EQ(engine.accounting_error(), std::nullopt) << "at t=" << t;
  }
  drain(w, engine, end);

  const StreamStats& s = engine.stats();
  EXPECT_GT(s.chunks_generated, 0u);
  EXPECT_EQ(s.chunks_in_flight, 0u);
  EXPECT_EQ(s.chunks_delivered + s.chunks_late + s.chunks_dropped,
            s.chunks_generated);
  EXPECT_EQ(engine.accounting_error(), std::nullopt);
  EXPECT_GE(engine.continuity_index(), 0.0);
  EXPECT_LE(engine.continuity_index(), 1.0);
  EXPECT_GE(engine.deadline_miss_rate(), 0.0);
  EXPECT_LE(engine.deadline_miss_rate(), 1.0);
}

TEST(Streaming, UploadCapHoldsUnderFlashCrowd) {
  World w;
  w.config.allocator = core::AllocatorKind::PaperBfs;
  // Deliberately starved uplinks, and a hand-built plan in which the whole
  // flash crowd wants the same (channel, format): one chain, one last-hop
  // uplink fanning out 30+ copies per chunk — that link must saturate, and
  // the cap must still hold.
  constexpr double kUplink = 250e3;
  const media::TranscoderType conv = w.catalog.conversions().front();
  workload::StreamPlan plan;
  plan.config.seed = 5;
  plan.config.live_window = util::seconds(20);
  workload::ChannelPlan ch;
  ch.id = 0;
  ch.source = PeerId{0};
  ch.object = util::ObjectId{1};
  ch.source_format = conv.input;
  ch.start = 0;
  ch.chunk_count = 40;
  plan.channels.push_back(ch);
  std::uint32_t viewer_id = 0;
  const auto add_viewer = [&](util::SimTime join, bool flash) {
    workload::ViewerPlan vp;
    vp.id = viewer_id;
    vp.channel = 0;
    vp.sink = PeerId{1000 + viewer_id};
    vp.target = conv.output;
    vp.join = join;
    vp.leave = util::seconds(20);
    vp.flash = flash;
    plan.viewers.push_back(vp);
    ++viewer_id;
  };
  for (int v = 0; v < 4; ++v) add_viewer(util::milliseconds(100), false);
  for (int v = 0; v < 30; ++v) {
    add_viewer(util::seconds(8) + util::milliseconds(10 * v), true);
  }
  ASSERT_NO_THROW(workload::StreamingScenario::validate(w.catalog, plan));

  StreamEngine engine(w.sim, w.net, w.config, plan);
  util::Rng rng(5);
  const auto add_peer = [&](std::uint64_t id,
                            std::vector<core::ServiceOffering> services) {
    overlay::PeerSpec spec;
    spec.id = PeerId{id};
    spec.capacity_ops_per_s = 80e6;
    spec.link.uplink_bytes_per_s = kUplink;
    spec.link.downlink_bytes_per_s = kUplink;
    w.topo.place_at(spec.id, {rng.uniform(0, 100), rng.uniform(0, 100)});
    engine.add_peer(spec, std::move(services));
  };
  add_peer(0, {});
  add_peer(1, {core::ServiceOffering{util::ServiceId{1}, conv}});
  add_peer(2, {core::ServiceOffering{util::ServiceId{2}, conv}});
  for (const workload::ViewerPlan& vp : plan.viewers) {
    w.topo.place_at(vp.sink, {rng.uniform(0, 100), rng.uniform(0, 100)});
  }
  engine.start();
  drain(w, engine, plan.config.live_window + plan.config.chunk_deadline +
                       plan.config.late_grace + util::seconds(10));

  ASSERT_EQ(engine.accounting_error(), std::nullopt);
  const double elapsed = util::to_seconds(w.sim.now());
  double hottest = 0.0;
  for (const auto& [id, acct] : engine.upload_accounts()) {
    EXPECT_DOUBLE_EQ(acct.capacity_bytes_per_s, kUplink);
    // The uplink serializes: every byte took its 1/capacity share of
    // busy_time (up to one ns of rounding per reservation).
    EXPECT_NEAR(acct.bytes_sent,
                acct.capacity_bytes_per_s * util::to_seconds(acct.busy_time),
                1.0 + 1e-6 * acct.bytes_sent)
        << "peer " << id.value();
    // A link cannot be busy for longer than the run it was busy in.
    EXPECT_LE(util::to_seconds(acct.busy_time), elapsed + 1e-9)
        << "peer " << id.value();
    hottest = std::max(hottest, util::to_seconds(acct.busy_time) / elapsed);
  }
  EXPECT_LE(engine.max_upload_saturation(), 1.0 + 1e-9);
  // The test must bite: the starved pool actually saturates and misses.
  EXPECT_GT(hottest, 0.5);
  EXPECT_GT(engine.stats().chunks_late + engine.stats().chunks_dropped, 0u);
}

TEST(Streaming, ChainRebuildsAfterHostCrashAndRecovers) {
  World w;
  w.config.allocator = core::AllocatorKind::PaperBfs;
  // Hand-built plan: one channel whose viewers all need one transcode, so
  // every chain crosses a host peer we can kill.
  const media::TranscoderType conv = w.catalog.conversions().front();
  workload::StreamPlan plan;
  plan.config.seed = 7;
  plan.config.live_window = util::seconds(20);
  workload::ChannelPlan ch;
  ch.id = 0;
  ch.source = PeerId{0};
  ch.object = util::ObjectId{1};
  ch.source_format = conv.input;
  ch.start = 0;
  ch.chunk_count = 40;
  plan.channels.push_back(ch);
  for (std::uint32_t v = 0; v < 4; ++v) {
    workload::ViewerPlan vp;
    vp.id = v;
    vp.channel = 0;
    vp.sink = PeerId{100 + v};
    vp.target = conv.output;
    vp.join = util::milliseconds(100);
    vp.leave = util::seconds(20);
    plan.viewers.push_back(vp);
  }
  ASSERT_NO_THROW(workload::StreamingScenario::validate(w.catalog, plan));

  StreamEngine engine(w.sim, w.net, w.config, plan);
  util::Rng rng(7);
  const auto add = [&](std::uint64_t id,
                       std::vector<core::ServiceOffering> services) {
    overlay::PeerSpec spec;
    spec.id = PeerId{id};
    spec.capacity_ops_per_s = 60e6;
    spec.link.uplink_bytes_per_s = 10e6;
    spec.link.downlink_bytes_per_s = 10e6;
    w.topo.place_at(spec.id, {rng.uniform(0, 100), rng.uniform(0, 100)});
    engine.add_peer(spec, std::move(services));
  };
  add(0, {});  // source hosts nothing: the transcode hop is never peer 0
  for (std::uint64_t h = 1; h <= 3; ++h) {
    add(h, {core::ServiceOffering{util::ServiceId{h}, conv}});
  }
  for (const workload::ViewerPlan& vp : plan.viewers) {
    w.topo.place_at(vp.sink, {rng.uniform(0, 100), rng.uniform(0, 100)});
  }

  std::set<std::uint64_t> dead;
  engine.set_alive_probe(
      [&dead](PeerId p) { return dead.count(p.value()) == 0; });
  engine.start();

  std::uint64_t delivered_before_revival = 0;
  w.sim.schedule_at(util::seconds(8), [&] { dead = {1, 2, 3}; });
  w.sim.schedule_at(util::seconds(12), [&] {
    delivered_before_revival = engine.stats().chunks_delivered;
    dead.clear();
  });
  drain(w, engine, util::seconds(30));

  const StreamStats& s = engine.stats();
  ASSERT_EQ(engine.accounting_error(), std::nullopt);
  EXPECT_GE(s.chain_rebuilds, 1u);          // the placed chain lost its host
  EXPECT_GT(s.placement_failures, 0u);      // blackout: nothing to place on
  EXPECT_GT(s.chunks_dropped, 0u);          // blackout chunks were lost
  EXPECT_GT(delivered_before_revival, 0u);  // streamed fine before the crash
  // After the hosts revive, the chain is re-placed and delivery resumes.
  EXPECT_GT(s.chunks_delivered, delivered_before_revival);
}

TEST(Streaming, AllAllocatorsFeasibleOnSamePlan) {
  const core::AllocatorKind kinds[] = {core::AllocatorKind::PaperBfs,
                                       core::AllocatorKind::MaxUtil,
                                       core::AllocatorKind::DetStream};
  std::uint64_t generated[3] = {};
  for (std::size_t k = 0; k < 3; ++k) {
    World w;
    w.config.allocator = kinds[k];
    const workload::StreamPlan plan = make_plan(w, 42, 12, 8);
    StreamEngine engine(w.sim, w.net, w.config, plan);
    build_pool(w, engine, 24, 5e6, 42);
    place_sinks(w, plan);
    engine.start();
    drain(w, engine, plan.config.live_window + plan.config.chunk_deadline +
                         plan.config.late_grace + util::seconds(10));

    const StreamStats& s = engine.stats();
    ASSERT_EQ(engine.accounting_error(), std::nullopt)
        << core::allocator_name(kinds[k]);
    EXPECT_GT(s.chains_built, 0u) << core::allocator_name(kinds[k]);
    EXPECT_GT(s.chunks_delivered, 0u) << core::allocator_name(kinds[k]);
    EXPECT_EQ(s.placement_failures, 0u) << core::allocator_name(kinds[k]);
    generated[k] = s.chunks_generated;
  }
  // Generation is plan-driven (subscriber counts at each tick), so every
  // policy owes exactly the same chunk copies.
  EXPECT_EQ(generated[0], generated[1]);
  EXPECT_EQ(generated[1], generated[2]);
}

TEST(Streaming, ByteDeterministicPerSeed) {
  const auto run = [](std::uint64_t plan_seed) {
    World w;
    w.config.allocator = core::AllocatorKind::DetStream;
    const workload::StreamPlan plan = make_plan(w, plan_seed, 10, 12);
    StreamEngine engine(w.sim, w.net, w.config, plan);
    build_pool(w, engine, 16, 3e6, 99);
    place_sinks(w, plan);
    engine.start();
    drain(w, engine, plan.config.live_window + plan.config.chunk_deadline +
                         plan.config.late_grace + util::seconds(10));
    return std::pair<std::uint64_t, StreamStats>(engine.digest(),
                                                 engine.stats());
  };

  const auto [d1, s1] = run(123);
  const auto [d2, s2] = run(123);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(s1.chunks_generated, s2.chunks_generated);
  EXPECT_EQ(s1.chunks_delivered, s2.chunks_delivered);
  EXPECT_EQ(s1.chunks_late, s2.chunks_late);
  EXPECT_EQ(s1.chunks_dropped, s2.chunks_dropped);
  EXPECT_EQ(s1.chains_built, s2.chains_built);
  EXPECT_EQ(s1.chain_rebuilds, s2.chain_rebuilds);
  EXPECT_EQ(s1.placement_failures, s2.placement_failures);

  const auto [d3, s3] = run(124);
  EXPECT_NE(d1, d3);  // a different plan seed is a different stream
}

}  // namespace
}  // namespace p2prm::stream

// PR-7 scale battery (docs/SCALING.md): locks in the three mechanisms the
// million-peer ceiling rests on.
//
//   1. Flat per-peer state — an idle (lazy) peer costs registry rows only,
//      under the documented 128 B/peer budget, and a materialize/demote
//      round trip preserves identity, placement and inventory.
//   2. Capability slice index — RM-election and backup-selection answers
//      from the incrementally maintained order are identical to the legacy
//      collect-and-sort under arbitrary membership/report churn (the
//      comparator is a strict total order, so equality is exact, not
//      probabilistic).
//   3. Hierarchical info base — admission through the per-domain aggregate
//      is bit-identical to the per-peer path (the aggregate copies the
//      LoadIndex scalars verbatim), unit-level across seeds 1..50 and
//      end-to-end on full simulations.
//
// Sized by env vars so the tier-1 run stays fast: P2PRM_SCALE_PEERS (lazy
// rows, default 100000) and P2PRM_SCALE_FULL=1 (widens the end-to-end
// differential to 1000 peers; CI's nightly scale job sets it).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <tuple>

#include "check/runner.hpp"
#include "check/scenario.hpp"
#include "core/admission.hpp"
#include "core/system.hpp"
#include "media/catalog.hpp"
#include "net/network.hpp"
#include "overlay/domain.hpp"
#include "workload/arrivals.hpp"
#include "workload/heterogeneity.hpp"
#include "workload/requests.hpp"

namespace p2prm {
namespace {

using namespace core;
using namespace workload;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

SystemConfig small_config(std::uint64_t seed = 7) {
  SystemConfig config;
  config.seed = seed;
  config.max_domain_size = 16;
  return config;
}

struct SmallWorld {
  media::Catalog catalog = media::ladder_catalog();
  System system;
  util::Rng rng{123};
  ObjectPopulation population;
  PeerFactory factory;

  explicit SmallWorld(SystemConfig config = small_config())
      : system(config),
        population(catalog, {}, system, rng),
        factory(make_peer_factory(catalog, population, {}, {}, system, rng)) {}
};

// --- 1. flat state & lazy lifecycle -----------------------------------------

TEST(ScaleLazy, HundredThousandLazyRowsUnderBudget) {
  const auto lazy_rows = env_u64("P2PRM_SCALE_PEERS", 100000);
  SmallWorld world;
  bootstrap_network(world.system, world.factory, 16);

  world.system.reserve_peers(lazy_rows + 16);
  util::Rng spec_rng(41);
  for (std::uint64_t i = 0; i < lazy_rows; ++i) {
    const auto spec = draw_peer_spec({}, spec_rng, world.system.simulator().now());
    world.system.add_lazy_peer(spec, {});
  }
  const auto& reg = world.system.peer_registry();
  EXPECT_EQ(reg.size(), lazy_rows + 16);
  EXPECT_EQ(reg.materialized(), 16u);

  // The documented idle budget (docs/SCALING.md budget table): flat rows
  // plus the id->row map, at current capacity, never exceed 128 B/peer.
  const double bytes_per_peer =
      static_cast<double>(reg.footprint_bytes()) /
      static_cast<double>(reg.size());
  EXPECT_LE(bytes_per_peer, 128.0)
      << "idle bytes/peer over documented budget";

  // Lazy rows must not inflate O(materialized) structures.
  EXPECT_EQ(world.system.alive_peer_ids().size(), 16u);
  EXPECT_EQ(world.system.materialized_peer_ids().size(), 16u);
}

TEST(ScaleLazy, MaterializeDemoteRoundTripPreservesIdentity) {
  SmallWorld world;
  bootstrap_network(world.system, world.factory, 8);

  // Lazy peer with a real provisioned inventory: the stash must survive
  // the round trip. Tiny capability keeps it out of RM/backup election —
  // a designated backup is never quiescent, so it could not demote.
  auto [spec, inventory] = world.factory();
  spec.capacity_ops_per_s = 1e3;
  const std::size_t objects = inventory.objects.size();
  const auto id = world.system.add_lazy_peer(spec, std::move(inventory));
  EXPECT_EQ(world.system.peer(id), nullptr);

  ASSERT_TRUE(world.system.materialize_peer(id));
  world.system.run_for(util::seconds(3));
  auto* node = world.system.peer(id);
  ASSERT_NE(node, nullptr);
  EXPECT_TRUE(node->joined());
  EXPECT_EQ(node->inventory().objects.size(), objects);
  const auto coords_live = world.system.topology().coordinates(id);

  // Idle since start -> demotable once quiescent.
  const std::size_t demoted =
      world.system.demote_idle_peers(util::seconds(1));
  EXPECT_GE(demoted, 1u);
  EXPECT_EQ(world.system.peer(id), nullptr);
  EXPECT_FALSE(world.system.topology().contains(id));

  // Round trip again: same id, same placement, inventory restored.
  ASSERT_TRUE(world.system.materialize_peer(id));
  world.system.run_for(util::seconds(3));
  node = world.system.peer(id);
  ASSERT_NE(node, nullptr);
  EXPECT_TRUE(node->joined());
  EXPECT_EQ(node->spec().id, id);
  EXPECT_EQ(node->inventory().objects.size(), objects);
  const auto coords_again = world.system.topology().coordinates(id);
  EXPECT_EQ(coords_live.x, coords_again.x);
  EXPECT_EQ(coords_live.y, coords_again.y);
}

TEST(ScaleLazy, DemotionRefusesBusyAndRmPeers) {
  SmallWorld world;
  const auto ids = bootstrap_network(world.system, world.factory, 8);
  const auto rms = world.system.resource_manager_ids();
  ASSERT_FALSE(rms.empty());
  // The RM holds the domain: never demotable, however idle.
  EXPECT_FALSE(world.system.demote_peer(rms.front()));
  // Unknown / lazy ids are refused too.
  EXPECT_FALSE(world.system.demote_peer(util::PeerId{999999}));
}

TEST(ScaleLazy, SubmitTaskMaterializesLazyOrigin) {
  SmallWorld world;
  bootstrap_network(world.system, world.factory, 16);
  auto [spec, inventory] = world.factory();
  const auto id = world.system.add_lazy_peer(spec, std::move(inventory));
  ASSERT_EQ(world.system.peer(id), nullptr);

  RequestSynthesizer synthesizer(world.catalog, world.population, {});
  world.system.submit_task(id, synthesizer.draw(world.rng));
  // First touch: the origin now exists and is joining (cold-start
  // semantics — the first task itself may be rejected while the join
  // handshake runs; docs/SCALING.md).
  EXPECT_NE(world.system.peer(id), nullptr);
  world.system.run_for(util::seconds(3));
  EXPECT_TRUE(world.system.peer(id)->joined());
}

// --- 2. slice index vs full scan --------------------------------------------

TEST(ScaleSlice, RankedElectionMatchesFullScanUnderChurn) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(seed);
    overlay::Domain domain(util::DomainId{1}, util::PeerId{1});
    std::vector<util::PeerId> members;

    for (int step = 0; step < 400; ++step) {
      const double roll = rng.uniform(0.0, 1.0);
      if (roll < 0.35 || members.size() < 3) {
        overlay::PeerSpec spec;
        spec.id = util::PeerId{seed * 100000 + static_cast<std::uint64_t>(step)};
        spec.capacity_ops_per_s = rng.uniform(1e6, 100e6);
        domain.add_member(spec, step);
        members.push_back(spec.id);
      } else if (roll < 0.55) {
        const auto victim = members[rng.below(members.size())];
        domain.remove_member(victim);
        members.erase(std::find(members.begin(), members.end(), victim));
      } else {
        const auto peer = members[rng.below(members.size())];
        profile::LoadSample sample;
        sample.smoothed_load_ops = rng.uniform(0.0, 50e6);
        // Coarse scores on purpose: ties exercise the id tie-break.
        const double score = std::floor(rng.uniform(0.0, 8.0));
        domain.record_report(peer, sample, step, rng.bernoulli(0.7), score);
      }
      ASSERT_EQ(domain.eligible_ranked(), domain.eligible_ranked_scan())
          << "seed " << seed << " step " << step;
      const auto ranked = domain.eligible_ranked_scan();
      const auto backup = domain.backup();
      if (ranked.empty()) {
        EXPECT_FALSE(backup.has_value());
      } else {
        ASSERT_TRUE(backup.has_value());
        EXPECT_EQ(*backup, ranked.front());
      }
    }
  }
}

TEST(ScaleSlice, SliceQueriesFollowCapabilityOrder) {
  overlay::SliceIndex idx;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    idx.upsert(util::PeerId{i}, static_cast<double>(i), true);
  }
  // Highest score ranks first.
  EXPECT_EQ(idx.rank_of(util::PeerId{10}), std::size_t{0});
  EXPECT_EQ(idx.rank_of(util::PeerId{1}), std::size_t{9});
  // Two slices: top half vs bottom half.
  EXPECT_EQ(idx.slice_of(util::PeerId{10}, 2), std::size_t{0});
  EXPECT_EQ(idx.slice_of(util::PeerId{1}, 2), std::size_t{1});
}

// --- 3. hierarchical aggregate vs legacy ------------------------------------

TEST(ScaleHierarchical, AdmissionBitExactAcrossFiftySeeds) {
  SystemConfig legacy;
  SystemConfig hier;
  hier.enable_hierarchical_infobase = true;

  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    util::Rng rng(seed);
    InfoBase info(util::DomainId{1}, util::PeerId{1});
    for (int step = 0; step < 200; ++step) {
      const std::uint64_t peer = 1 + rng.below(32);
      if (!info.domain().has_member(util::PeerId{peer})) {
        overlay::PeerSpec spec;
        spec.id = util::PeerId{peer};
        spec.capacity_ops_per_s = rng.uniform(1e6, 100e6);
        info.add_member(spec, step);
      }
      ProfilerReport report;
      report.sample.smoothed_load_ops = rng.uniform(0.0, 120e6);
      info.record_report(util::PeerId{peer}, report, step);
      if (rng.bernoulli(0.3)) {
        info.commit_load(util::PeerId{peer}, rng.uniform(0.0, 10e6), step);
      }

      // Bit-exact, not approximately equal: the aggregate copies the
      // LoadIndex scalars verbatim.
      const auto agg = info.build_aggregate();
      ASSERT_EQ(agg.min_utilization, info.load_index().min_utilization());
      ASSERT_EQ(agg.total_load_ops, info.load_index().total_load());
      ASSERT_EQ(agg.total_capacity_ops, info.load_index().total_capacity());
      ASSERT_EQ(agg.mean_utilization(), info.load_index().mean_utilization());
      ASSERT_EQ(agg.peer_count, info.load_index().size());

      ASSERT_EQ(domain_overloaded(info, hier), domain_overloaded(info, legacy))
          << "seed " << seed << " step " << step;
      ASSERT_EQ(mean_domain_utilization(info, hier),
                mean_domain_utilization(info, legacy));
      const double importance = rng.uniform(0.0, 1.0);
      const auto a = check_admission(info, hier, importance);
      const auto b = check_admission(info, legacy, importance);
      ASSERT_EQ(a.admit, b.admit);
      ASSERT_EQ(a.domain_overloaded, b.domain_overloaded);
      ASSERT_EQ(a.reason, b.reason);
    }
  }
}

TEST(ScaleHierarchical, AggregateHistogramsAreConsistent) {
  InfoBase info(util::DomainId{1}, util::PeerId{1});
  util::Rng rng(5);
  for (std::uint64_t peer = 1; peer <= 24; ++peer) {
    overlay::PeerSpec spec;
    spec.id = util::PeerId{peer};
    spec.capacity_ops_per_s = rng.uniform(1e6, 100e6);
    info.add_member(spec, 0);
    ProfilerReport report;
    report.sample.smoothed_load_ops = rng.uniform(0.0, 80e6);
    info.record_report(util::PeerId{peer}, report, 0);
  }
  const auto agg = info.build_aggregate();
  std::uint32_t cap_total = 0;
  std::uint32_t load_total = 0;
  for (std::size_t i = 0; i < gossip::DomainAggregate::kBuckets; ++i) {
    cap_total += agg.capability_hist[i];
    load_total += agg.load_hist[i];
  }
  EXPECT_EQ(cap_total, agg.peer_count);
  EXPECT_EQ(load_total, agg.peer_count);
  EXPECT_GE(agg.max_utilization, agg.min_utilization);
  // Quantile sketch brackets the extremes.
  EXPECT_GE(agg.load_quantile(1.0), agg.load_quantile(0.0));
  // Merge of two halves equals the whole (counts and totals).
  gossip::DomainAggregate a;
  gossip::DomainAggregate b;
  info.load_index().for_each(
      [&](util::PeerId peer, double load, double cap, double util) {
        (peer.value() % 2 == 0 ? a : b).add_peer(cap, load, util);
      });
  a.merge(b);
  EXPECT_EQ(a.peer_count, agg.peer_count);
  EXPECT_EQ(a.capability_hist, agg.capability_hist);
  EXPECT_EQ(a.load_hist, agg.load_hist);
}

TEST(ScaleHierarchical, EndToEndDecisionsMatchLegacy) {
  const bool full = env_u64("P2PRM_SCALE_FULL", 0) != 0;
  const std::size_t peers = full ? 1000 : 128;
  const std::uint64_t max_seed = full ? 50 : 5;

  for (std::uint64_t seed = 1; seed <= max_seed; ++seed) {
    auto run = [&](bool hierarchical) {
      SystemConfig config = small_config(seed);
      config.enable_hierarchical_infobase = hierarchical;
      config.max_domain_size = 32;
      SmallWorld world(config);
      bootstrap_network(world.system, world.factory, peers);
      RequestSynthesizer synthesizer(world.catalog, world.population, {});
      WorkloadDriver driver(
          world.system,
          std::make_unique<PoissonArrivals>(0.05 * static_cast<double>(peers)),
          synthesizer);
      driver.start(world.system.simulator().now() + util::seconds(20));
      world.system.run_for(util::seconds(30));
      const auto& ledger = world.system.ledger();
      return std::tuple{ledger.submitted(), ledger.admitted(),
                        ledger.rejected(), ledger.completed(),
                        ledger.missed(),
                        world.system.resource_manager_ids(),
                        world.system.domains().size()};
    };
    // Same seed, knob flipped: the decision knob is timing-neutral (it
    // does not touch the wire — that is gossip_domain_aggregates), so the
    // whole deterministic run must be identical, completions included.
    ASSERT_EQ(run(false), run(true)) << "seed " << seed;
  }
}

// --- 4. lazy-scale fuzz scenarios -------------------------------------------

TEST(ScaleFuzz, LazyWaveScenarioRoundTripsAndHoldsInvariants) {
  const auto lazy = static_cast<std::uint32_t>(
      env_u64("P2PRM_SCALE_PEERS", 100000));
  const auto spec = check::ScenarioSpec::generate_scale(1, lazy);
  EXPECT_EQ(spec.lazy_peers, lazy);
  EXPECT_GE(spec.wave_peers, 64u);
  // The scale fields ride the same single-line repro contract as the rest
  // of the spec.
  const auto parsed = check::ScenarioSpec::parse(spec.repro());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, spec);

  // One full run under invariant checking, plus the determinism oracle
  // (same spec, same digest). The heavier ablation oracles run in the
  // nightly p2prm_fuzz --scale sweep, not here.
  auto checker = check::InvariantChecker::with_defaults();
  const auto result = check::run_scenario(spec, checker);
  for (const auto& v : result.violations) {
    ADD_FAILURE() << v.invariant << ": " << v.message;
  }
  EXPECT_GT(result.submitted, 0u);
  auto checker2 = check::InvariantChecker::with_defaults();
  const auto replay = check::run_scenario(spec, checker2);
  EXPECT_EQ(replay.digest, result.digest) << "scale scenario must replay"
                                             " byte-identically";
}

TEST(ScaleHierarchical, AggregateGossipCarriesBytesAndStaysHealthy) {
  // gossip_domain_aggregates is the wire half of the hierarchical mode:
  // summaries grow by DomainAggregate::wire_size() and the system must
  // stay healthy. Run the same seeded world with and without it.
  auto run = [](bool aggregates) {
    SystemConfig config = small_config(11);
    config.gossip_domain_aggregates = aggregates;
    config.enable_hierarchical_infobase = aggregates;
    SmallWorld world(config);
    bootstrap_network(world.system, world.factory, 48);
    RequestSynthesizer synthesizer(world.catalog, world.population, {});
    WorkloadDriver driver(world.system,
                          std::make_unique<PoissonArrivals>(2.0), synthesizer);
    driver.start(world.system.simulator().now() + util::seconds(15));
    world.system.run_for(util::seconds(25));
    return std::tuple{world.system.network().stats().bytes_sent,
                      world.system.ledger().submitted(),
                      world.system.ledger().admitted(),
                      world.system.domains().size()};
  };
  const auto [bytes_off, sub_off, adm_off, dom_off] = run(false);
  const auto [bytes_on, sub_on, adm_on, dom_on] = run(true);
  EXPECT_GT(bytes_on, bytes_off) << "summaries should carry aggregate bytes";
  EXPECT_GT(sub_on, 0u);
  EXPECT_GT(adm_on, 0u);
  EXPECT_GE(dom_on, 2u);
  // The workload itself is seed-identical; admissions may differ slightly
  // (timing shifts), but not collapse.
  EXPECT_EQ(sub_on, sub_off);
  EXPECT_GE(adm_on * 10, adm_off * 9);
}

}  // namespace
}  // namespace p2prm

// Whole-system conservation and cleanliness invariants, checked across
// randomized seeds on a churning, loaded network. These are the checks that
// catch protocol leaks (sessions that never close, load commitments that
// never release, ledger double counting) regardless of scenario specifics.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "media/catalog.hpp"
#include "metrics/collectors.hpp"
#include "workload/arrivals.hpp"
#include "workload/churn.hpp"
#include "workload/heterogeneity.hpp"

namespace p2prm {
namespace {

using namespace core;
using namespace workload;

class SystemInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SystemInvariants, HoldAfterChurnAndLoad) {
  const std::uint64_t seed = GetParam();
  SystemConfig config;
  config.seed = seed;
  config.max_domain_size = 16;
  config.task_gc_grace = util::seconds(20);
  media::Catalog catalog = media::ladder_catalog();
  System system(config);
  util::Rng rng(seed * 31 + 5);
  ObjectPopulation population(catalog, PopulationConfig{}, system, rng);
  auto factory = make_peer_factory(catalog, population, HeterogeneityConfig{},
                                   ProvisionConfig{}, system, rng);
  bootstrap_network(system, factory, 20);

  ChurnConfig churn_config;
  churn_config.mean_session_s = 90.0;
  churn_config.crash_fraction = 0.5;
  ChurnDriver churn(system, factory, churn_config);
  churn.track_all_alive();

  RequestConfig rc;
  RequestSynthesizer synth(catalog, population, rc);
  WorkloadDriver driver(system, std::make_unique<PoissonArrivals>(0.8), synth);
  driver.start(system.simulator().now() + util::seconds(90));

  system.run_for(util::seconds(90));
  churn.stop();
  // Drain: enough for pipelines to finish and the RM GC to reap strays.
  system.run_for(util::minutes(8));
  system.ledger().orphan_pending(system.simulator().now());

  const auto& ledger = system.ledger();

  // --- Ledger conservation -------------------------------------------------
  EXPECT_EQ(ledger.submitted(),
            ledger.completed() + ledger.rejected() + ledger.failed() +
                ledger.orphaned() + ledger.pending());
  EXPECT_EQ(ledger.pending(), 0u);
  EXPECT_GE(ledger.completed(), 1u) << "workload must have produced work";
  EXPECT_GE(ledger.on_time_ratio(), 0.0);
  EXPECT_LE(ledger.on_time_ratio(), 1.0);

  // Every terminal record is self-consistent.
  for (std::uint64_t id = 0;; ++id) {
    const auto* r = ledger.record(util::TaskId{id});
    if (r == nullptr) break;
    if (r->status == TaskStatus::Completed) {
      EXPECT_GE(r->finished, r->submitted);
      EXPECT_EQ(r->missed_deadline,
                r->finished > r->submitted + r->deadline);
    }
    if (r->status == TaskStatus::Rejected || r->status == TaskStatus::Failed) {
      EXPECT_FALSE(r->reason.empty());
    }
  }

  // --- Network conservation --------------------------------------------------
  const auto& net_stats = system.network().stats();
  EXPECT_LE(net_stats.messages_delivered + net_stats.messages_dropped +
                net_stats.messages_partitioned +
                net_stats.messages_undeliverable,
            net_stats.messages_sent);
  EXPECT_GT(net_stats.messages_delivered, 0u);
  EXPECT_EQ(net_stats.messages_dropped, 0u);  // no loss configured
  EXPECT_EQ(net_stats.messages_partitioned, 0u);

  // --- Peer-local cleanliness -----------------------------------------------
  const util::SimDuration elapsed = system.simulator().now();
  for (const auto id : system.alive_peer_ids()) {
    auto* node = system.peer(id);
    // After the drain every session, buffer and queue is empty.
    EXPECT_EQ(node->active_sessions(), 0u) << "peer " << id;
    EXPECT_EQ(node->buffered_early_data(), 0u) << "peer " << id;
    EXPECT_EQ(node->processor().queue_length(), 0u) << "peer " << id;
    // Physics: a CPU cannot be busy longer than wall time.
    EXPECT_LE(node->processor().busy_time(), elapsed);
  }

  // --- RM-side cleanliness -----------------------------------------------------
  std::size_t rms = 0;
  for (const auto id : system.resource_manager_ids()) {
    ++rms;
    auto* rm = system.peer(id)->resource_manager();
    // No running tasks left; all loads released.
    EXPECT_TRUE(rm->info().running_task_ids().empty()) << "RM " << id;
    for (const auto member : rm->info().domain().member_ids()) {
      // Effective load contains no stale commitments (reported load may be
      // nonzero only from EWMA tails).
      rm->info().purge_commitments(system.simulator().now());
      EXPECT_LT(rm->info().effective_load(member),
                rm->info().domain().member(member)->spec.capacity_ops_per_s)
          << "member " << member;
    }
    // Fairness index in bounds.
    const double f = rm->info().current_fairness();
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0 + 1e-9);
  }
  EXPECT_GE(rms, 1u);

  // --- Membership sanity ----------------------------------------------------------
  std::size_t joined = 0;
  for (const auto id : system.alive_peer_ids()) {
    auto* node = system.peer(id);
    if (!node->joined()) continue;
    ++joined;
    const auto rm = node->current_rm();
    auto* rm_node = system.peer(rm);
    EXPECT_TRUE(rm_node != nullptr && rm_node->alive()) << "peer " << id;
  }
  EXPECT_GE(joined, system.alive_count() * 8 / 10)
      << "most survivors should be attached to a live domain";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemInvariants,
                         ::testing::Range<std::uint64_t>(1, 9));

// Same conservation/cleanliness checks with 1 % random message loss: the
// protocol must stay leak-free (timeouts, watchdogs and GC absorb losses)
// even though individual tasks may fail or expire.
class LossyInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LossyInvariants, HoldUnderMessageLoss) {
  const std::uint64_t seed = GetParam();
  SystemConfig config;
  config.seed = seed;
  config.message_drop_probability = 0.01;
  config.task_gc_grace = util::seconds(20);
  media::Catalog catalog = media::ladder_catalog();
  System system(config);
  util::Rng rng(seed * 17 + 3);
  ObjectPopulation population(catalog, PopulationConfig{}, system, rng);
  auto factory = make_peer_factory(catalog, population, HeterogeneityConfig{},
                                   ProvisionConfig{}, system, rng);
  bootstrap_network(system, factory, 16, util::seconds(10));

  RequestConfig rc;
  RequestSynthesizer synth(catalog, population, rc);
  WorkloadDriver driver(system, std::make_unique<PoissonArrivals>(0.6), synth);
  driver.start(system.simulator().now() + util::seconds(60));
  system.run_for(util::seconds(60));
  system.run_for(util::minutes(8));  // drain + GC
  system.ledger().orphan_pending(system.simulator().now());

  const auto& ledger = system.ledger();
  EXPECT_EQ(ledger.pending(), 0u);
  EXPECT_EQ(ledger.submitted(),
            ledger.completed() + ledger.rejected() + ledger.failed() +
                ledger.orphaned());
  // Losses happened, and the system still got most work through.
  EXPECT_GT(system.network().stats().messages_dropped, 0u);
  if (ledger.submitted() > 10) {
    EXPECT_GT(ledger.goodput(), 0.5)
        << "1% loss should not collapse goodput; completed="
        << ledger.completed() << " failed=" << ledger.failed()
        << " orphaned=" << ledger.orphaned();
  }
  // No leaked sessions or queued work anywhere.
  for (const auto id : system.alive_peer_ids()) {
    auto* node = system.peer(id);
    EXPECT_EQ(node->active_sessions(), 0u) << "peer " << id;
    EXPECT_EQ(node->buffered_early_data(), 0u) << "peer " << id;
    EXPECT_EQ(node->processor().queue_length(), 0u) << "peer " << id;
  }
  for (const auto id : system.resource_manager_ids()) {
    auto* rm = system.peer(id)->resource_manager();
    EXPECT_TRUE(rm->info().running_task_ids().empty()) << "RM " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossyInvariants,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace p2prm

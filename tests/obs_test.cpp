// The observability stack end to end: JsonWriter, MetricsRegistry,
// exporters (JSON v2 round-trip, Prometheus text), derive_detail, span
// trees, and byte-determinism of everything under a fixed seed.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "core/trace.hpp"
#include "media/catalog.hpp"
#include "metrics/publish.hpp"
#include "metrics/report.hpp"
#include "obs/export.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/span.hpp"
#include "util/json_writer.hpp"

namespace p2prm {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser for the round-trip test. Numbers keep their raw text
// so integer counters compare exactly and doubles go through strtod (which
// inverts the exporter's shortest-round-trip to_chars rendering).

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  std::string text;  // number (raw) or string (unescaped)
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> members;

  [[nodiscard]] double as_double() const {
    return std::strtod(text.c_str(), nullptr);
  }
  [[nodiscard]] std::uint64_t as_u64() const {
    return std::strtoull(text.c_str(), nullptr, 10);
  }
  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    const auto it = members.find(key);
    EXPECT_NE(it, members.end()) << "missing key " << key;
    static const JsonValue null_value;
    return it == members.end() ? null_value : it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return members.count(key) > 0;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view s) : s_(s) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    EXPECT_EQ(pos_, s_.size()) << "trailing garbage after JSON value";
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    EXPECT_LT(pos_, s_.size()) << "unexpected end of JSON";
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  void expect(char c) {
    EXPECT_EQ(peek(), c);
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
      case 'f': return bool_value();
      case 'n': return null_value();
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::Object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = string_value();
      expect(':');
      v.members[key.text] = value();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::Array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    expect('"');
    JsonValue v;
    v.type = JsonValue::Type::String;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u':
            // Exporters only emit \u00XX for control bytes.
            c = static_cast<char>(
                std::strtol(std::string(s_.substr(pos_, 4)).c_str(), nullptr,
                            16));
            pos_ += 4;
            break;
          default: c = esc;
        }
      }
      v.text += c;
    }
    expect('"');
    return v;
  }

  JsonValue bool_value() {
    JsonValue v;
    v.type = JsonValue::Type::Bool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else {
      EXPECT_EQ(s_.compare(pos_, 5, "false"), 0);
      pos_ += 5;
    }
    return v;
  }

  JsonValue null_value() {
    EXPECT_EQ(s_.compare(pos_, 4, "null"), 0);
    pos_ += 4;
    JsonValue v;
    return v;
  }

  JsonValue number() {
    JsonValue v;
    v.type = JsonValue::Type::Number;
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    EXPECT_GT(pos_, start) << "expected a number";
    v.text = std::string(s_.substr(start, pos_ - start));
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// JsonWriter

TEST(JsonWriter, ObjectLayoutMatchesHouseStyle) {
  std::ostringstream out;
  util::JsonWriter w(out);
  w.begin_object();
  w.field("alpha", 1);
  w.field("beta", "two");
  w.key("nested").begin_object();
  w.field("gamma", true);
  w.end_object();
  w.key("list").begin_array();
  w.value(1).value(2);
  w.end_array();
  w.end_object();
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"alpha\": 1,\n"
            "  \"beta\": \"two\",\n"
            "  \"nested\": {\n"
            "    \"gamma\": true\n"
            "  },\n"
            "  \"list\": [\n"
            "    1,\n"
            "    2\n"
            "  ]\n"
            "}");
  EXPECT_TRUE(w.done());
}

TEST(JsonWriter, EscapesStrings) {
  std::ostringstream out;
  util::JsonWriter w(out);
  w.begin_object();
  w.field("k", "a\"b\\c\nd\te");
  w.end_object();
  EXPECT_NE(out.str().find("a\\\"b\\\\c\\nd\\te"), std::string::npos);
}

TEST(JsonWriter, EmptyContainers) {
  std::ostringstream out;
  util::JsonWriter w(out);
  w.begin_object();
  w.key("o").begin_object();
  w.end_object();
  w.key("a").begin_array();
  w.end_array();
  w.end_object();
  EXPECT_EQ(out.str(), "{\n  \"o\": {},\n  \"a\": []\n}");
}

TEST(JsonWriter, DoublesRoundTripThroughStrtod) {
  for (const double x : {0.1, 1.0 / 3.0, 123456.789, 1e-300, -2.5e17}) {
    std::ostringstream out;
    util::JsonWriter w(out);
    w.begin_array();
    w.value(x);
    w.end_array();
    const JsonValue parsed = JsonParser(out.str()).parse();
    ASSERT_EQ(parsed.items.size(), 1u);
    EXPECT_EQ(parsed.items[0].as_double(), x);
  }
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  std::ostringstream out;
  util::JsonWriter w(out);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_NE(out.str().find("null"), std::string::npos);
}

TEST(JsonWriter, FormattedValueUsesPrintfFormat) {
  std::ostringstream out;
  util::JsonWriter w(out);
  w.begin_object();
  w.field_fmt("x", 0.123456789, "%.6g");
  w.end_object();
  EXPECT_NE(out.str().find("0.123457"), std::string::npos);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistry, CountersGaugesAndLookupStability) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").inc();
  reg.counter("a.count").inc(4);
  reg.gauge("a.level").set(2.5);
  reg.gauge("a.level").add(0.5);
  EXPECT_EQ(reg.counter("a.count").value(), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge("a.level").value(), 3.0);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, LabelSetsAreDistinctSeriesAndSortedOnIntern) {
  obs::MetricsRegistry reg;
  reg.counter("x.n", {{"b", "2"}, {"a", "1"}}).set(7);
  // Same set in a different spelling order must resolve to the same series.
  reg.counter("x.n", {{"a", "1"}, {"b", "2"}}).inc();
  reg.counter("x.n", {{"a", "other"}}).set(1);
  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].labels,
            (obs::Labels{{"a", "1"}, {"b", "2"}}));
  EXPECT_EQ(samples[0].counter_value, 8u);
}

TEST(MetricsRegistry, SnapshotSortedByNameThenLabels) {
  obs::MetricsRegistry reg;
  reg.counter("z.last").set(1);
  reg.counter("a.first", {{"peer", "2"}}).set(1);
  reg.counter("a.first", {{"peer", "1"}}).set(1);
  reg.gauge("m.middle").set(0);
  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "a.first");
  EXPECT_EQ(samples[0].labels, (obs::Labels{{"peer", "1"}}));
  EXPECT_EQ(samples[1].labels, (obs::Labels{{"peer", "2"}}));
  EXPECT_EQ(samples[2].name, "m.middle");
  EXPECT_EQ(samples[3].name, "z.last");
}

TEST(MetricsRegistry, HistogramBucketsAndOverflow) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("h.lat", {0.1, 1.0, 10.0});
  h.observe(0.05);   // bucket 0
  h.observe(0.1);    // bucket 0 (le is inclusive)
  h.observe(0.5);    // bucket 1
  h.observe(100.0);  // +Inf overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 100.65);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 0u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(MetricsRegistry, ValidatesDottedLowercaseNames) {
  EXPECT_TRUE(obs::MetricsRegistry::valid_name("rm.tasks_admitted"));
  EXPECT_TRUE(obs::MetricsRegistry::valid_name("a.b.c_d2"));
  EXPECT_FALSE(obs::MetricsRegistry::valid_name(""));
  EXPECT_FALSE(obs::MetricsRegistry::valid_name("2starts.with.digit"));
  EXPECT_FALSE(obs::MetricsRegistry::valid_name("Upper.Case"));
  EXPECT_FALSE(obs::MetricsRegistry::valid_name("spaces bad"));
}

// ---------------------------------------------------------------------------
// Exporters

obs::MetricsRegistry sample_registry() {
  obs::MetricsRegistry reg;
  reg.counter("rm.tasks_admitted", {{"domain", "0"}}).set(42);
  reg.counter("rm.tasks_admitted", {{"domain", "1"}}).set(7);
  reg.gauge("tasks.goodput").set(0.875);
  auto& h = reg.histogram("tasks.response_time_s", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);
  return reg;
}

TEST(JsonExporter, SchemaAndRoundTrip) {
  const obs::MetricsRegistry reg = sample_registry();
  const std::string json = obs::to_json(reg);
  const JsonValue doc = JsonParser(json).parse();

  EXPECT_EQ(doc.at("schema").text, std::string(obs::kMetricsSchemaV2));
  EXPECT_EQ(doc.at("schema_version").as_u64(), 2u);

  const auto samples = reg.snapshot();
  const auto& metrics = doc.at("metrics").items;
  ASSERT_EQ(metrics.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& m = metrics[i];
    const auto& s = samples[i];
    EXPECT_EQ(m.at("name").text, s.name);
    EXPECT_EQ(m.at("kind").text,
              std::string(obs::metric_kind_name(s.kind)));
    obs::Labels labels;
    for (const auto& [k, v] : m.at("labels").members) {
      labels.emplace_back(k, v.text);
    }
    EXPECT_EQ(labels, s.labels);
    switch (s.kind) {
      case obs::MetricKind::Counter:
        EXPECT_EQ(m.at("value").as_u64(), s.counter_value);
        break;
      case obs::MetricKind::Gauge:
        EXPECT_EQ(m.at("value").as_double(), s.gauge_value);
        break;
      case obs::MetricKind::Histogram: {
        EXPECT_EQ(m.at("count").as_u64(), s.count);
        EXPECT_EQ(m.at("sum").as_double(), s.sum);
        // JSON v2 buckets are per-bucket counts (the Prometheus exporter
        // is the one that accumulates, per that format's convention).
        const auto& buckets = m.at("buckets").items;
        ASSERT_EQ(buckets.size(), s.bucket_counts.size());
        for (std::size_t b = 0; b < buckets.size(); ++b) {
          EXPECT_EQ(buckets[b].at("count").as_u64(), s.bucket_counts[b]);
          if (b + 1 == buckets.size()) {
            EXPECT_EQ(buckets[b].at("le").text, "+Inf");
          } else {
            EXPECT_EQ(buckets[b].at("le").as_double(), s.bounds[b]);
          }
        }
        break;
      }
    }
  }
}

TEST(PrometheusExporter, NameManglingAndFormat) {
  EXPECT_EQ(obs::prometheus_name("rm.tasks_admitted"),
            "p2prm_rm_tasks_admitted");
  EXPECT_EQ(obs::prometheus_name("graph.path_cache.hits"),
            "p2prm_graph_path_cache_hits");

  const std::string text = obs::to_prometheus(sample_registry());
  EXPECT_NE(text.find("# TYPE p2prm_rm_tasks_admitted counter"),
            std::string::npos);
  // One TYPE line per family even with two labelled series.
  const auto first = text.find("# TYPE p2prm_rm_tasks_admitted");
  EXPECT_EQ(text.find("# TYPE p2prm_rm_tasks_admitted", first + 1),
            std::string::npos);
  EXPECT_NE(text.find("p2prm_rm_tasks_admitted{domain=\"0\"} 42"),
            std::string::npos);
  EXPECT_NE(text.find("p2prm_rm_tasks_admitted{domain=\"1\"} 7"),
            std::string::npos);
  // Histogram expands to cumulative buckets + sum + count.
  EXPECT_NE(text.find("p2prm_tasks_response_time_s_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("p2prm_tasks_response_time_s_count 3"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// derive_detail: typed attrs must reproduce the legacy strings exactly.

TEST(DeriveDetail, ReproducesLegacyStrings) {
  using core::TraceKind;
  using core::derive_detail;
  EXPECT_EQ(derive_detail(TraceKind::RmPromoted, {{"epoch", 1}}), "epoch 1");
  EXPECT_EQ(derive_detail(TraceKind::TaskAdmitted,
                          {{"hops", 1}, {"fairness", 0.2}}),
            "1 hops, fairness 0.200");
  EXPECT_EQ(derive_detail(TraceKind::TaskRedirected,
                          {{"target_rm", "4"}, {"reason", "overloaded"}}),
            "to RM 4 (overloaded)");
  EXPECT_EQ(derive_detail(TraceKind::TaskRejected, {{"reason", "rpc-timeout"}}),
            "rpc-timeout");
  EXPECT_EQ(derive_detail(TraceKind::TaskCompleted, {{"outcome", "on-time"}}),
            "on-time");
  EXPECT_EQ(derive_detail(TraceKind::TaskRecovered, {{"cause", "peer-failed"}}),
            "peer-failed");
  EXPECT_EQ(derive_detail(TraceKind::RmDemoted, {{"successor", "9"}}),
            "abdicated to 9");
  EXPECT_EQ(derive_detail(TraceKind::RmDemoted,
                          {{"reason", "lost all members"}}),
            "lost all members");
  EXPECT_EQ(derive_detail(TraceKind::PeerJoined, {{"reason", "restarted"}}),
            "restarted");
  EXPECT_EQ(derive_detail(TraceKind::PeerJoined, {}), "");
  // Unknown kind/attr combinations fall back to "k=v" pairs.
  EXPECT_EQ(derive_detail(TraceKind::HopCompleted, {{"hop", 2}, {"late", 0}}),
            "hop=2 late=0");
}

// ---------------------------------------------------------------------------
// Full-system scenario: spans + determinism + publish_all.

struct ScenarioResult {
  std::string metrics_v1;
  std::string metrics_v2;
  std::string prometheus;
  std::string span_text;
  std::vector<obs::TaskSpan> spans;
};

ScenarioResult run_scenario(std::uint64_t seed) {
  core::SystemConfig config;
  config.seed = seed;
  config.enable_spans = true;
  core::System system(config);
  core::Tracer tracer;
  system.set_tracer(&tracer);

  const media::MediaFormat source{media::Codec::MPEG2, media::kRes800x600,
                                  512};
  const media::MediaFormat target{media::Codec::MPEG4, media::kRes640x480,
                                  256};
  auto add_peer = [&](double capacity_mops, core::PeerInventory inventory) {
    overlay::PeerSpec spec;
    spec.capacity_ops_per_s = capacity_mops * 1e6;
    spec.online_since = -util::minutes(60);
    const auto id = system.add_peer(spec, std::move(inventory));
    system.run_for(util::milliseconds(100));
    return id;
  };
  add_peer(120, {});
  util::Rng rng(1);
  const auto movie =
      media::make_object(system.next_object_id(), source, 15.0, rng);
  core::PeerInventory library;
  library.objects = {movie};
  add_peer(60, std::move(library));
  core::PeerInventory transcoder;
  transcoder.services = {
      {system.next_service_id(), media::TranscoderType{source, target}}};
  add_peer(80, std::move(transcoder));
  const auto user = add_peer(50, {});
  system.run_for(util::seconds(2));

  core::QoSRequirements q;
  q.object = movie.id;
  q.acceptable_formats = {target};
  q.deadline = util::seconds(60);
  q.importance = 5.0;
  system.submit_task(user, q);
  system.run_for(util::minutes(2));

  ScenarioResult r;
  r.metrics_v1 = metrics::metrics_json(system);
  r.metrics_v2 = metrics::metrics_json_v2(system);
  r.prometheus = metrics::metrics_prometheus(system);
  r.spans = obs::build_task_spans(tracer);
  r.span_text = obs::to_text(r.spans);
  return r;
}

void check_nesting(const obs::Span& parent) {
  for (const obs::Span& child : parent.children) {
    EXPECT_GE(child.start, parent.start) << parent.name << "/" << child.name;
    EXPECT_LE(child.end, parent.end) << parent.name << "/" << child.name;
    EXPECT_LE(child.start, child.end) << child.name;
    check_nesting(child);
  }
}

TEST(TaskSpans, TreeInvariantsAndCriticalPath) {
  const ScenarioResult r = run_scenario(2026);
  ASSERT_EQ(r.spans.size(), 1u);
  const obs::TaskSpan& ts = r.spans.front();
  EXPECT_EQ(ts.outcome, obs::SpanOutcome::Completed);
  EXPECT_EQ(ts.root.name, "task");
  EXPECT_LE(ts.root.start, ts.root.end);
  check_nesting(ts.root);

  // submit -> admission -> execution with at least one executed hop.
  ASSERT_EQ(ts.root.children.size(), 2u);
  const obs::Span& admission = ts.root.children[0];
  const obs::Span& execution = ts.root.children[1];
  EXPECT_EQ(admission.name, "admission");
  EXPECT_EQ(execution.name, "execution");
  EXPECT_EQ(admission.start, ts.root.start);
  EXPECT_EQ(admission.end, execution.start);
  EXPECT_EQ(execution.end, ts.root.end);
  bool saw_hop = false;
  for (const obs::Span& c : execution.children) {
    if (c.name == "hop") {
      saw_hop = true;
      EXPECT_GT(obs::attr_double(c.attrs, "exec_s"), 0.0);
    }
  }
  EXPECT_TRUE(saw_hop);

  // The critical path partitions the whole task interval: segment durations
  // sum exactly to the root duration.
  const auto path = critical_path(ts);
  ASSERT_GE(path.size(), 2u);
  util::SimDuration total = 0;
  for (const auto& seg : path) {
    EXPECT_GE(seg.duration, 0);
    total += seg.duration;
  }
  EXPECT_EQ(total, ts.root.duration());
}

TEST(Determinism, IdenticalSeedsProduceByteIdenticalExports) {
  const ScenarioResult a = run_scenario(2026);
  const ScenarioResult b = run_scenario(2026);
  EXPECT_EQ(a.metrics_v1, b.metrics_v1);
  EXPECT_EQ(a.metrics_v2, b.metrics_v2);
  EXPECT_EQ(a.prometheus, b.prometheus);
  EXPECT_EQ(a.span_text, b.span_text);

  // And a different seed genuinely changes the output (guards against the
  // exporters accidentally ignoring the run).
  const ScenarioResult c = run_scenario(7);
  EXPECT_NE(a.metrics_v2, c.metrics_v2);
}

TEST(PublishAll, RegistryMatchesComponentStats) {
  core::SystemConfig config;
  config.seed = 2026;
  core::System system(config);
  overlay::PeerSpec spec;
  spec.capacity_ops_per_s = 1e8;
  spec.online_since = -util::minutes(60);
  system.add_peer(spec, {});
  system.run_for(util::seconds(1));

  obs::MetricsRegistry reg;
  metrics::publish_all(system, reg);
  EXPECT_EQ(reg.counter("net.messages_sent").value(),
            system.network().stats().messages_sent);
  EXPECT_EQ(reg.counter("tasks.submitted").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("system.peers_alive").value(), 1.0);
  // The founding peer is an RM: its domain series must be present.
  EXPECT_EQ(
      reg.counter("rm.joins_accepted", {{"domain", "0"}}).value(),
      system.peer(util::PeerId{0})->resource_manager()->stats().joins_accepted);
  // Every published name follows the naming convention.
  for (const auto& s : reg.snapshot()) {
    EXPECT_TRUE(obs::MetricsRegistry::valid_name(s.name)) << s.name;
  }
}

TEST(PublishStreamed, ChunkedEqualsMonolithicForAnyChunkSize) {
  core::SystemConfig config;
  config.seed = 2027;
  core::System system(config);
  for (int i = 0; i < 6; ++i) {
    overlay::PeerSpec spec;
    spec.capacity_ops_per_s = 1e8;
    system.add_peer(spec, {});
    system.run_for(util::seconds(1));
  }
  system.run_for(util::seconds(3));

  obs::MetricsRegistry mono;
  metrics::publish_all(system, mono);
  const auto expected = mono.snapshot();
  ASSERT_FALSE(expected.empty());

  const auto key = [](const obs::MetricsRegistry::Sample& s) {
    return std::pair{s.name, s.labels};
  };
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{2},
                                  std::size_t{5}, std::size_t{100}}) {
    std::vector<obs::MetricsRegistry::Sample> streamed;
    metrics::publish_streamed(
        system, chunk,
        [&](const obs::MetricsRegistry::Sample& s) { streamed.push_back(s); });
    // Streaming changes only the global interleaving; once re-sorted the
    // series must match the monolithic snapshot exactly.
    std::sort(streamed.begin(), streamed.end(),
              [&](const auto& a, const auto& b) { return key(a) < key(b); });
    ASSERT_EQ(streamed.size(), expected.size()) << "chunk " << chunk;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(key(streamed[i]), key(expected[i]));
      EXPECT_EQ(streamed[i].kind, expected[i].kind);
      EXPECT_EQ(streamed[i].counter_value, expected[i].counter_value);
      EXPECT_EQ(streamed[i].gauge_value, expected[i].gauge_value);
      EXPECT_EQ(streamed[i].bounds, expected[i].bounds);
      EXPECT_EQ(streamed[i].bucket_counts, expected[i].bucket_counts);
      EXPECT_EQ(streamed[i].sum, expected[i].sum);
      EXPECT_EQ(streamed[i].count, expected[i].count);
    }
  }
}

TEST(MetricsJsonV1, KeepsLegacyShapeWithSchemaVersion) {
  core::SystemConfig config;
  config.seed = 1;
  core::System system(config);
  const std::string json = metrics::metrics_json(system);
  const JsonValue doc = JsonParser(json).parse();
  EXPECT_EQ(doc.at("schema_version").as_u64(), 1u);
  // The flat keys CI consumers read must all be present.
  for (const char* key :
       {"tasks_submitted", "tasks_admitted", "goodput", "miss_ratio",
        "messages_sent", "query_retries", "gossip_anti_entropy_pushes"}) {
    EXPECT_TRUE(doc.has(key)) << key;
  }
  EXPECT_EQ(json.back(), '\n');
}

}  // namespace
}  // namespace p2prm

#include <gtest/gtest.h>

#include "fairness/fairness.hpp"
#include "util/rng.hpp"

namespace p2prm::fairness {
namespace {

using util::PeerId;

TEST(JainIndex, EqualLoadsAreTotallyFair) {
  const std::vector<double> loads{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_index(loads), 1.0);
}

TEST(JainIndex, SinglePeerCarryingEverythingGivesOneOverN) {
  const std::vector<double> loads{10.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(loads), 0.25);
}

TEST(JainIndex, PaperInterpretationTenPercent) {
  // "A value of 0.1 indicates the system to be fair to only 10% of the
  // users": one loaded peer among ten.
  std::vector<double> loads(10, 0.0);
  loads[0] = 7.0;
  EXPECT_DOUBLE_EQ(jain_index(loads), 0.1);
}

TEST(JainIndex, EmptyAndAllZeroAreFair) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(zeros), 1.0);
}

TEST(JainIndex, NegativeLoadRejected) {
  const std::vector<double> loads{1.0, -0.5};
  EXPECT_THROW((void)jain_index(loads), std::invalid_argument);
}

TEST(JainIndex, ScaleInvariance) {
  util::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> loads;
    for (int i = 0; i < 8; ++i) loads.push_back(rng.uniform(0.0, 100.0));
    const double f1 = jain_index(loads);
    for (auto& l : loads) l *= 37.5;
    EXPECT_NEAR(jain_index(loads), f1, 1e-12);
  }
}

TEST(JainIndex, BoundedInZeroOne) {
  util::Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> loads;
    const int n = 1 + static_cast<int>(rng.below(20));
    for (int i = 0; i < n; ++i) loads.push_back(rng.uniform(0.0, 10.0));
    const double f = jain_index(loads);
    EXPECT_GE(f, 1.0 / n - 1e-12);
    EXPECT_LE(f, 1.0 + 1e-12);
  }
}

TEST(BestLoad, MaximizerIsSumsqOverSumOfOthers) {
  // Solving dF/dx = 0 for Eq. 1 gives l_best = (sum l_j^2) / (sum l_j)
  // over the other peers.
  const std::vector<double> loads{2.0, 4.0, 6.0, 100.0};
  const double best = best_load(loads, 3);
  EXPECT_DOUBLE_EQ(best, 56.0 / 12.0);
  // Index at l_best beats nearby perturbations (the paper's l_best claim).
  auto with = [&](double x) {
    auto copy = loads;
    copy[3] = x;
    return jain_index(copy);
  };
  EXPECT_GT(with(best), with(best + 1.0));
  EXPECT_GT(with(best), with(best - 1.0));
}

TEST(BestLoad, NonMonotonicityAroundBest) {
  // Fairness increases while approaching l_best and decreases beyond it.
  const std::vector<double> loads{10.0, 10.0, 0.0};
  auto with = [&](double x) {
    auto copy = loads;
    copy[2] = x;
    return jain_index(copy);
  };
  EXPECT_LT(with(0.0), with(5.0));
  EXPECT_LT(with(5.0), with(10.0));   // climbing toward l_best = 10
  EXPECT_GT(with(10.0), with(20.0));  // past it, fairness falls again
}

TEST(IncrementalFairness, MatchesBatchComputation) {
  util::Rng rng(7);
  IncrementalFairness inc;
  std::vector<double> loads;
  for (std::uint64_t i = 0; i < 12; ++i) {
    const double l = rng.uniform(0.0, 50.0);
    loads.push_back(l);
    inc.set(PeerId{i}, l);
  }
  EXPECT_NEAR(inc.index(), jain_index(loads), 1e-12);
  // Update a few and re-check.
  for (std::uint64_t i = 0; i < 6; ++i) {
    const double l = rng.uniform(0.0, 50.0);
    loads[i * 2] = l;
    inc.set(PeerId{i * 2}, l);
  }
  EXPECT_NEAR(inc.index(), jain_index(loads), 1e-12);
}

TEST(IncrementalFairness, RemovePeer) {
  IncrementalFairness inc;
  inc.set(PeerId{1}, 10.0);
  inc.set(PeerId{2}, 10.0);
  inc.set(PeerId{3}, 0.0);
  inc.remove(PeerId{3});
  EXPECT_DOUBLE_EQ(inc.index(), 1.0);
  EXPECT_EQ(inc.size(), 2u);
  inc.remove(PeerId{99});  // no-op
  EXPECT_EQ(inc.size(), 2u);
}

TEST(IncrementalFairness, HypotheticalDeltas) {
  IncrementalFairness inc;
  inc.set(PeerId{1}, 10.0);
  inc.set(PeerId{2}, 0.0);
  // Loading the idle peer to parity should yield 1.0 without mutating.
  const std::vector<std::pair<PeerId, double>> deltas{{PeerId{2}, 10.0}};
  EXPECT_DOUBLE_EQ(inc.index_with(deltas), 1.0);
  EXPECT_DOUBLE_EQ(inc.load(PeerId{2}), 0.0);  // unchanged
  EXPECT_DOUBLE_EQ(inc.index(), 0.5);
}

TEST(IncrementalFairness, RepeatedDeltasAccumulate) {
  IncrementalFairness inc;
  inc.set(PeerId{1}, 10.0);
  inc.set(PeerId{2}, 0.0);
  const std::vector<std::pair<PeerId, double>> deltas{{PeerId{2}, 4.0},
                                                      {PeerId{2}, 6.0}};
  EXPECT_DOUBLE_EQ(inc.index_with(deltas), 1.0);
}

TEST(IncrementalFairness, DeltaOnUnknownPeerJoins) {
  IncrementalFairness inc;
  inc.set(PeerId{1}, 10.0);
  const std::vector<std::pair<PeerId, double>> deltas{{PeerId{2}, 10.0}};
  EXPECT_DOUBLE_EQ(inc.index_with(deltas), 1.0);
}

TEST(IncrementalFairness, RebuildFixesDrift) {
  IncrementalFairness inc;
  util::Rng rng(8);
  for (std::uint64_t i = 0; i < 64; ++i) inc.set(PeerId{i}, rng.uniform(0, 1));
  for (int round = 0; round < 10000; ++round) {
    inc.set(PeerId{rng.below(64)}, rng.uniform(0.0, 1.0));
  }
  const double before = inc.index();
  inc.rebuild();
  EXPECT_NEAR(inc.index(), before, 1e-9);
}

TEST(IncrementalFairness, MeanAndTotal) {
  IncrementalFairness inc;
  inc.set(PeerId{1}, 4.0);
  inc.set(PeerId{2}, 8.0);
  EXPECT_DOUBLE_EQ(inc.total_load(), 12.0);
  EXPECT_DOUBLE_EQ(inc.mean_load(), 6.0);
}

}  // namespace
}  // namespace p2prm::fairness

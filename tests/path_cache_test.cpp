// Property test for the epoch-invalidated path cache: under randomized
// interleavings of load updates, edge insertions/removals and queries, a
// cached answer must be indistinguishable from a fresh uncached search —
// same candidate paths, same order, same edges — after every invalidation
// point. Runs seeds 1..10.
#include <gtest/gtest.h>

#include <vector>

#include "graph/path_cache.hpp"
#include "graph/path_search.hpp"
#include "media/catalog.hpp"
#include "util/rng.hpp"

namespace p2prm::graph {
namespace {

std::vector<std::vector<util::ServiceId>> id_sequences(
    const std::vector<EdgePath>& paths) {
  std::vector<std::vector<util::ServiceId>> out;
  out.reserve(paths.size());
  for (const auto& path : paths) {
    std::vector<util::ServiceId> seq;
    seq.reserve(path.size());
    for (const ServiceEdge* e : path) seq.push_back(e->id);
    out.push_back(std::move(seq));
  }
  return out;
}

TEST(PathCacheProperty, MatchesFreshSearchUnderRandomInterleavings) {
  const media::Catalog catalog = media::ladder_catalog();
  const auto& conversions = catalog.conversions();
  const auto& formats = catalog.formats();

  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    util::Rng rng(seed);
    ResourceGraph gr;
    PathCache cache;
    std::vector<util::ServiceId> live;
    std::uint64_t next_id = 0;

    // Seed the graph so early queries have something to find.
    for (int i = 0; i < 24; ++i) {
      const util::ServiceId id{next_id++};
      gr.add_service(id, util::PeerId{rng.below(8)},
                     conversions[rng.below(conversions.size())]);
      live.push_back(id);
    }

    std::size_t queries = 0;
    for (int step = 0; step < 300; ++step) {
      const std::uint64_t roll = rng.below(100);
      if (roll < 40) {
        // Query a random (start, goal) pair through the cache and compare
        // with an uncached search — order-sensitive, edge for edge.
        const auto start =
            gr.find_state(formats[rng.below(formats.size())]);
        const auto goal = gr.find_state(formats[rng.below(formats.size())]);
        if (!start || !goal) continue;
        ++queries;
        SearchStats cached_stats;
        const auto cached =
            cache.bfs_paths(gr, *start, *goal, &cached_stats);
        const auto fresh = graph::bfs_paths(gr, *start, *goal);
        ASSERT_EQ(cached, fresh)
            << "cached " << cached.size() << " paths vs fresh "
            << fresh.size() << " at step " << step;
        ASSERT_EQ(id_sequences(cached), id_sequences(fresh));
        EXPECT_EQ(cached_stats.cache_hits + cached_stats.cache_misses, 1u);
      } else if (roll < 70 && !live.empty()) {
        // Load update: bumps the epoch only when the value changes.
        gr.set_service_load(live[rng.below(live.size())],
                            rng.uniform(0.0, 10.0));
      } else if (roll < 90) {
        const util::ServiceId id{next_id++};
        gr.add_service(id, util::PeerId{rng.below(8)},
                       conversions[rng.below(conversions.size())]);
        live.push_back(id);
      } else if (!live.empty()) {
        const std::size_t victim = rng.below(live.size());
        gr.remove_service(live[victim]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      }
    }

    // Every query was either a hit or a miss, and the mutation mix must
    // have produced both invalidations and (within stable windows) hits.
    EXPECT_EQ(cache.stats().hits + cache.stats().misses, queries);
    EXPECT_GT(cache.stats().invalidations, 0u);
    EXPECT_GT(queries, 50u);
  }
}

TEST(PathCache, HitServesWithoutTraversalAndLoadUpdateInvalidates) {
  const media::Catalog catalog = media::ladder_catalog();
  ResourceGraph gr;
  for (std::uint64_t e = 0; e < 16; ++e) {
    gr.add_service(util::ServiceId{e}, util::PeerId{e % 4},
                   catalog.conversions()[e % catalog.conversions().size()]);
  }
  // Endpoints of the first conversion are guaranteed to exist as states
  // (edge 0 uses conversions()[0]); a one-hop path always connects them.
  const auto start = gr.find_state(catalog.conversions().front().input);
  const auto goal = gr.find_state(catalog.conversions().front().output);
  ASSERT_TRUE(start && goal);

  PathCache cache;
  SearchStats miss_stats;
  const auto first = cache.bfs_paths(gr, *start, *goal, &miss_stats);
  EXPECT_EQ(miss_stats.cache_misses, 1u);

  SearchStats hit_stats;
  const auto second = cache.bfs_paths(gr, *start, *goal, &hit_stats);
  EXPECT_EQ(hit_stats.cache_hits, 1u);
  // The whole point: a hit answers without popping a single vertex.
  EXPECT_EQ(hit_stats.vertices_popped, 0u);
  EXPECT_EQ(first, second);

  // A no-op load write must NOT invalidate; a real change must.
  const auto any = gr.all_services().front()->id;
  gr.set_service_load(any, gr.service(any).load);
  SearchStats still_hit;
  (void)cache.bfs_paths(gr, *start, *goal, &still_hit);
  EXPECT_EQ(still_hit.cache_hits, 1u);

  gr.set_service_load(any, gr.service(any).load + 1.0);
  SearchStats refilled;
  const auto after = cache.bfs_paths(gr, *start, *goal, &refilled);
  EXPECT_EQ(refilled.cache_misses, 1u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  // Rematerialized hits see the fresh load on the same edges.
  EXPECT_EQ(after, graph::bfs_paths(gr, *start, *goal));
}

}  // namespace
}  // namespace p2prm::graph

// Property-based suites: invariants checked across randomized sweeps using
// parameterized gtest (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include "bloom/bloom_filter.hpp"
#include "core/allocation.hpp"
#include "fairness/fairness.hpp"
#include "graph/path_search.hpp"
#include "media/catalog.hpp"
#include "sched/processor.hpp"
#include "sim/simulator.hpp"

namespace p2prm {
namespace {

// ---- fairness properties over random load vectors -----------------------------

class FairnessProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FairnessProperty, BoundsScaleInvarianceAndPermutation) {
  util::Rng rng(GetParam());
  const std::size_t n = 1 + rng.below(30);
  std::vector<double> loads;
  for (std::size_t i = 0; i < n; ++i) loads.push_back(rng.uniform(0.0, 1000.0));

  const double f = fairness::jain_index(loads);
  // Bounds: 1/n <= F <= 1.
  EXPECT_GE(f, 1.0 / static_cast<double>(n) - 1e-12);
  EXPECT_LE(f, 1.0 + 1e-12);
  // Scale invariance.
  auto scaled = loads;
  const double c = rng.uniform(0.001, 100.0);
  for (auto& l : scaled) l *= c;
  EXPECT_NEAR(fairness::jain_index(scaled), f, 1e-9);
  // Permutation invariance.
  auto shuffled = loads;
  rng.shuffle(shuffled.begin(), shuffled.end());
  EXPECT_NEAR(fairness::jain_index(shuffled), f, 1e-12);
  // Equalizing transfer (Pigou-Dalton): moving load from the most to the
  // least loaded peer never decreases fairness.
  if (n >= 2) {
    auto transferred = loads;
    auto hi = std::max_element(transferred.begin(), transferred.end());
    auto lo = std::min_element(transferred.begin(), transferred.end());
    if (hi != lo && *hi > *lo) {
      const double amount = (*hi - *lo) * 0.25;
      *hi -= amount;
      *lo += amount;
      EXPECT_GE(fairness::jain_index(transferred), f - 1e-9);
    }
  }
}

TEST_P(FairnessProperty, IncrementalAgreesWithBatchUnderRandomOps) {
  util::Rng rng(GetParam() * 977 + 3);
  fairness::IncrementalFairness inc;
  std::unordered_map<std::uint64_t, double> reference;
  for (int op = 0; op < 300; ++op) {
    const std::uint64_t peer = rng.below(20);
    if (rng.bernoulli(0.85)) {
      const double load = rng.uniform(0.0, 10.0);
      inc.set(util::PeerId{peer}, load);
      reference[peer] = load;
    } else {
      inc.remove(util::PeerId{peer});
      reference.erase(peer);
    }
    std::vector<double> loads;
    for (const auto& [_, l] : reference) loads.push_back(l);
    EXPECT_NEAR(inc.index(), fairness::jain_index(loads), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FairnessProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---- Bloom filter properties -------------------------------------------------------

class BloomProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(BloomProperty, NoFalseNegativesAndFppWithinTheory) {
  const auto [bits_per_element, n] = GetParam();
  util::Rng rng(bits_per_element * 31 + n);
  bloom::BloomParameters params;
  params.bits = bits_per_element * n;
  params.hashes = bloom::optimal_hash_count(params.bits, n);
  bloom::BloomFilter bf(params);

  std::vector<std::uint64_t> keys;
  for (std::size_t i = 0; i < n; ++i) keys.push_back(rng.next());
  for (auto k : keys) bf.insert(k);
  for (auto k : keys) ASSERT_TRUE(bf.possibly_contains(k));

  std::size_t fp = 0;
  const std::size_t probes = 5000;
  for (std::size_t i = 0; i < probes; ++i) {
    if (bf.possibly_contains(rng.next())) ++fp;
  }
  const double measured = static_cast<double>(fp) / probes;
  const double theory = bloom::expected_fpp(params.bits, params.hashes, n);
  EXPECT_LE(measured, std::max(theory * 2.5, 0.01))
      << "bits/elem=" << bits_per_element << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, BloomProperty,
    ::testing::Combine(::testing::Values<std::size_t>(4, 8, 12, 16),
                       ::testing::Values<std::size_t>(100, 1000)));

// ---- scheduling properties ---------------------------------------------------------

struct SchedCase {
  std::uint64_t seed;
  double load_factor;
};

class SchedulerProperty : public ::testing::TestWithParam<SchedCase> {};

TEST_P(SchedulerProperty, WorkConservationAndNoLostJobs) {
  const auto param = GetParam();
  util::Rng rng(param.seed);
  sim::Simulator sim(param.seed);
  std::size_t finished = 0;
  double total_ops = 0.0;
  sched::Processor cpu(sim, {.ops_per_second = 1e6,
                             .policy = sched::Policy::LeastLaxity},
                       [&](const sched::Job&, sched::JobStatus) { ++finished; });
  const int jobs = 100;
  util::SimTime t = 0;
  for (int i = 0; i < jobs; ++i) {
    t += util::from_seconds(rng.exponential(1.0 / param.load_factor));
    sched::Job j;
    j.id = util::JobId{static_cast<std::uint64_t>(i)};
    j.release = t;
    j.total_ops = rng.uniform(0.2e6, 1.8e6);
    j.remaining_ops = j.total_ops;
    j.absolute_deadline = t + util::from_seconds(rng.uniform(1.0, 6.0));
    total_ops += j.total_ops;
    sim.schedule_at(t, [&cpu, j] { cpu.submit(j); });
  }
  sim.run_until();
  // Every job finishes exactly once (none lost to preemption bookkeeping).
  EXPECT_EQ(finished, static_cast<std::size_t>(jobs));
  // Work conservation: busy time equals total work at unit speed.
  EXPECT_NEAR(util::to_seconds(cpu.busy_time()), total_ops / 1e6, 0.01);
  EXPECT_EQ(cpu.queue_length(), 0u);
}

TEST_P(SchedulerProperty, LlsNeverMissesWhenFeasibleScheduleTrivial) {
  // Jobs released together with generous non-overlapping slack must all
  // meet deadlines under LLS (sanity bound, not a general feasibility
  // claim).
  const auto param = GetParam();
  util::Rng rng(param.seed + 999);
  sim::Simulator sim(1);
  std::size_t missed = 0;
  sched::Processor cpu(sim, {.ops_per_second = 1e6,
                             .policy = sched::Policy::LeastLaxity},
                       [&](const sched::Job&, sched::JobStatus s) {
                         if (s != sched::JobStatus::Completed) ++missed;
                       });
  double cumulative_s = 0.0;
  for (int i = 0; i < 20; ++i) {
    sched::Job j;
    j.id = util::JobId{static_cast<std::uint64_t>(i)};
    j.release = 0;
    j.total_ops = rng.uniform(0.5e6, 1.5e6);
    j.remaining_ops = j.total_ops;
    cumulative_s += j.total_ops / 1e6;
    // Deadline far beyond the total backlog: trivially feasible under EDF
    // order, hence under LLS too.
    j.absolute_deadline = util::from_seconds(cumulative_s * 2.0 + 5.0);
    cpu.submit(j);
  }
  sim.run_until();
  EXPECT_EQ(missed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerProperty,
    ::testing::Values(SchedCase{1, 0.5}, SchedCase{2, 0.9}, SchedCase{3, 1.2},
                      SchedCase{4, 1.5}, SchedCase{5, 0.7}, SchedCase{6, 2.0}));

// ---- allocation properties over random resource graphs -------------------------------

class AllocationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocationProperty, WinnerFeasibleChainConsistentAndFairnessMaximal) {
  util::Rng rng(GetParam() * 7919);
  sim::Simulator sim(1);
  net::Topology topo;
  net::Network net(sim, topo);
  core::SystemConfig config;
  const media::Catalog catalog = media::ladder_catalog();
  core::InfoBase info(util::DomainId{0}, util::PeerId{0});

  // Random membership with random service placement.
  const std::size_t peers = 6 + rng.below(10);
  for (std::uint64_t p = 0; p < peers; ++p) {
    overlay::PeerSpec spec;
    spec.id = util::PeerId{p};
    spec.capacity_ops_per_s = rng.uniform(20e6, 120e6);
    topo.place_at(spec.id, {rng.uniform(0, 500), rng.uniform(0, 500)});
    info.add_member(spec, 0);
    core::PeerAnnounce announce;
    announce.spec = spec;
    const std::size_t services = 2 + rng.below(6);
    for (std::size_t s = 0; s < services; ++s) {
      announce.services.push_back(core::ServiceOffering{
          util::ServiceId{p * 100 + s},
          catalog.conversions()[rng.below(catalog.conversions().size())]});
    }
    core::ProfilerReport report;
    report.sample.smoothed_load_ops = rng.uniform(0.0, 0.5) *
                                      spec.capacity_ops_per_s;
    info.add_inventory(announce);
    info.record_report(spec.id, report, 0);
  }
  // One object on peer 0 in a top-rung format.
  const auto object = media::make_object(
      util::ObjectId{1},
      media::MediaFormat{media::Codec::MPEG2, media::kRes800x600, 512}, 8.0,
      rng);
  core::PeerAnnounce src;
  src.spec.id = util::PeerId{0};
  src.objects = {object};
  info.add_inventory(src);

  core::AllocationRequest request;
  request.task = util::TaskId{1};
  request.q.object = object.id;
  request.q.acceptable_formats = {
      media::MediaFormat{media::Codec::MPEG4, media::kRes640x480, 256},
      media::MediaFormat{media::Codec::MPEG2, media::kRes640x480, 256}};
  request.q.deadline = util::seconds(120);
  request.sink = util::PeerId{peers - 1};

  graph::SearchStats stats;
  const auto candidates =
      core::enumerate_candidates(info, net, config, request, false, &stats);
  const auto result = core::make_allocator(core::AllocatorKind::PaperBfs)
                          ->allocate(info, net, config, request, rng);

  if (!result.found) {
    // Then no candidate can be feasible.
    for (const auto& c : candidates) EXPECT_FALSE(c.feasible);
    return;
  }
  EXPECT_TRUE(result.sg.chain_consistent());
  // Deadline honored by the estimate.
  EXPECT_LE(result.estimated_execution, request.q.deadline);
  // Fairness-maximal among feasible candidates.
  for (const auto& c : candidates) {
    if (c.feasible) {
      EXPECT_GE(result.fairness_after, c.fairness_after - 1e-9);
    }
  }
  // All hops reference services the info base actually has, hosted by the
  // peer the hop claims.
  for (const auto& hop : result.sg.hops()) {
    ASSERT_TRUE(info.resource_graph().has_service(hop.service));
    EXPECT_EQ(info.resource_graph().service(hop.service).peer, hop.peer);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllocationProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

// ---- BFS vs exhaustive relationship ---------------------------------------------------

class SearchProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SearchProperty, BfsPathsAreSubsetOfSimplePathsOnRandomGraphs) {
  util::Rng rng(GetParam() * 104729);
  const media::Catalog catalog = media::ladder_catalog();
  graph::ResourceGraph gr;
  const std::size_t edges = 10 + rng.below(40);
  for (std::uint64_t e = 0; e < edges; ++e) {
    gr.add_service(util::ServiceId{e}, util::PeerId{rng.below(8)},
                   catalog.conversions()[rng.below(catalog.conversions().size())]);
  }
  if (gr.state_count() < 2) return;
  const graph::StateIndex start = rng.below(gr.state_count());
  const graph::StateIndex goal = rng.below(gr.state_count());
  if (start == goal) return;

  auto ids = [](const graph::EdgePath& p) {
    std::vector<std::uint64_t> v;
    for (const auto* e : p) v.push_back(e->id.value());
    return v;
  };
  std::set<std::vector<std::uint64_t>> all;
  for (const auto& p : graph::all_simple_paths(gr, start, goal, 16)) {
    all.insert(ids(p));
  }
  for (const auto& p : graph::bfs_paths(gr, start, goal)) {
    // Every BFS result is a genuine simple path of the graph.
    EXPECT_TRUE(all.count(ids(p))) << "BFS produced a non-simple path";
  }
  // Consistency with reachability.
  EXPECT_EQ(!all.empty(), graph::reachable(gr, start, goal));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SearchProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace p2prm

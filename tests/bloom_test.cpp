#include <gtest/gtest.h>

#include <unordered_map>

#include "bloom/bloom_filter.hpp"
#include "bloom/counting_bloom.hpp"
#include "core/config.hpp"
#include "util/rng.hpp"

namespace p2prm::bloom {
namespace {

TEST(Hash, DeterministicAndSeedSensitive) {
  const auto a = hash_key("hello");
  const auto b = hash_key("hello");
  const auto c = hash_key("hello", 1);
  const auto d = hash_key("hellp");
  EXPECT_EQ(a.h1, b.h1);
  EXPECT_EQ(a.h2, b.h2);
  EXPECT_NE(a.h1, c.h1);
  EXPECT_NE(a.h1, d.h1);
  EXPECT_EQ(hash_key("hello").h2 & 1, 1u);  // h2 forced odd
}

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf({4096, 4});
  for (std::uint64_t k = 0; k < 200; ++k) bf.insert(k * 7919);
  for (std::uint64_t k = 0; k < 200; ++k) {
    EXPECT_TRUE(bf.possibly_contains(k * 7919)) << k;
  }
}

TEST(BloomFilter, FalsePositiveRateNearTheory) {
  const std::size_t n = 1000;
  BloomFilter bf = BloomFilter::for_capacity(n, 0.01);
  for (std::uint64_t k = 0; k < n; ++k) bf.insert(k);
  std::size_t fp = 0;
  const std::size_t probes = 20000;
  for (std::uint64_t k = 0; k < probes; ++k) {
    if (bf.possibly_contains(k + 1'000'000)) ++fp;
  }
  const double rate = static_cast<double>(fp) / probes;
  EXPECT_LT(rate, 0.02);  // within 2x of the 1% target
}

TEST(BloomFilter, ObservedFprWithinTwiceAnalyticBoundAtConfiguredGeometry) {
  // Statistical gate at the geometry the middleware actually deploys
  // (SystemConfig's gossip summaries): insert a realistic object
  // population, probe 100k keys known to be absent, and require the
  // observed false-positive rate to stay within 2x the analytic
  // (1 - e^{-kn/m})^k bound. Fixed seed: deterministic, not flaky.
  const core::SystemConfig config;
  BloomFilter bf({config.bloom_bits, config.bloom_hashes});
  const std::size_t n = 500;
  util::Rng rng(12);
  std::vector<std::uint64_t> members;
  members.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Top bit set: disjoint from the probe universe below.
    members.push_back(rng.next() | (1ULL << 63));
    bf.insert(members.back());
  }

  const std::size_t probes = 100000;
  std::size_t fp = 0;
  for (std::uint64_t k = 0; k < probes; ++k) {
    if (bf.possibly_contains(k)) ++fp;  // k has top bit clear: never inserted
  }
  const double observed = static_cast<double>(fp) / probes;
  const double analytic =
      expected_fpp(config.bloom_bits, config.bloom_hashes, n);
  EXPECT_LE(observed, 2.0 * analytic)
      << "observed FP rate " << observed << " over " << probes
      << " probes exceeds 2x the analytic bound " << analytic << " for (m="
      << config.bloom_bits << ", k=" << config.bloom_hashes << ", n=" << n
      << ")";
  // And the filter is not trivially empty/degenerate: some positives occur.
  EXPECT_GT(analytic, 0.0);
}

TEST(BloomFilter, StringsAndIdsSupported) {
  BloomFilter bf({1024, 3});
  bf.insert("object-a");
  bf.insert(util::ObjectId{17});
  EXPECT_TRUE(bf.possibly_contains("object-a"));
  EXPECT_TRUE(bf.possibly_contains(util::ObjectId{17}));
  EXPECT_FALSE(bf.possibly_contains("object-b"));
}

TEST(BloomFilter, MergeIsUnion) {
  BloomFilter a({2048, 4}), b({2048, 4});
  a.insert(std::uint64_t{1});
  b.insert(std::uint64_t{2});
  a.merge(b);
  EXPECT_TRUE(a.possibly_contains(std::uint64_t{1}));
  EXPECT_TRUE(a.possibly_contains(std::uint64_t{2}));
  BloomFilter c({1024, 4});
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(BloomFilter, CardinalityEstimate) {
  BloomFilter bf({16384, 4});
  for (std::uint64_t k = 0; k < 500; ++k) bf.insert(k);
  EXPECT_NEAR(bf.estimated_cardinality(), 500.0, 50.0);
}

TEST(BloomFilter, ClearResets) {
  BloomFilter bf({512, 3});
  bf.insert(std::uint64_t{5});
  bf.clear();
  EXPECT_EQ(bf.set_bits(), 0u);
  EXPECT_FALSE(bf.possibly_contains(std::uint64_t{5}));
}

TEST(BloomFilter, OptimalParametersSane) {
  EXPECT_EQ(optimal_hash_count(9585, 1000), 7u);  // ln2 * m/n
  EXPECT_LT(expected_fpp(9585, 7, 1000), 0.011);
  EXPECT_GT(expected_fpp(100, 3, 1000), 0.5);
}

TEST(BloomFilter, RejectsZeroGeometry) {
  EXPECT_THROW(BloomFilter({0, 3}), std::invalid_argument);
  EXPECT_THROW(BloomFilter({64, 0}), std::invalid_argument);
  EXPECT_THROW(BloomFilter::for_capacity(10, 0.0), std::invalid_argument);
}

TEST(CountingBloom, InsertEraseRoundTrip) {
  CountingBloomFilter cbf({2048, 4});
  cbf.insert(std::uint64_t{10});
  cbf.insert(std::uint64_t{11});
  EXPECT_TRUE(cbf.possibly_contains(std::uint64_t{10}));
  EXPECT_TRUE(cbf.erase(std::uint64_t{10}));
  EXPECT_FALSE(cbf.possibly_contains(std::uint64_t{10}));
  EXPECT_TRUE(cbf.possibly_contains(std::uint64_t{11}));
}

TEST(CountingBloom, EraseOfAbsentKeyIsRejected) {
  CountingBloomFilter cbf({2048, 4});
  EXPECT_FALSE(cbf.erase(std::uint64_t{99}));
}

TEST(CountingBloom, DuplicateInsertsNeedMatchingErases) {
  CountingBloomFilter cbf({2048, 4});
  cbf.insert("x");
  cbf.insert("x");
  EXPECT_TRUE(cbf.erase("x"));
  EXPECT_TRUE(cbf.possibly_contains("x"));
  EXPECT_TRUE(cbf.erase("x"));
  EXPECT_FALSE(cbf.possibly_contains("x"));
}

TEST(CountingBloom, RandomChurnNeverFalseNegative) {
  // Property: under any interleaving of insert / erase / re-insert, every key
  // the reference multiset says is present must be reported present. (False
  // *positives* are allowed by construction; false negatives would make
  // gossip summaries drop live objects from routing — the one failure the
  // counting variant exists to prevent across deletions.)
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    CountingBloomFilter cbf({8192, 4});
    util::Rng rng(seed * 101 + 7);
    std::unordered_map<std::uint64_t, std::size_t> reference;
    const std::size_t universe = 64;  // small: forces heavy re-add traffic
    for (std::size_t step = 0; step < 4000; ++step) {
      const std::uint64_t key = rng.below(universe) * 0x9e3779b9ULL + 1;
      const auto it = reference.find(key);
      const bool present = it != reference.end() && it->second > 0;
      if (present && rng.below(2) == 0) {
        EXPECT_TRUE(cbf.erase(key)) << "seed " << seed << " step " << step;
        --reference[key];
      } else {
        cbf.insert(key);
        ++reference[key];
      }
      if (step % 97 != 0) continue;  // full sweep every ~100 steps
      for (const auto& [k, count] : reference) {
        if (count == 0) continue;
        EXPECT_TRUE(cbf.possibly_contains(k))
            << "false negative for key " << k << " (count " << count
            << ") at seed " << seed << " step " << step;
      }
    }
    // Drain everything: the filter must empty out exactly.
    for (auto& [k, count] : reference) {
      for (; count > 0; --count) EXPECT_TRUE(cbf.erase(k));
    }
    EXPECT_EQ(cbf.nonzero_counters(), 0u) << "seed " << seed;
  }
}

TEST(CountingBloom, ProjectionMatchesMembership) {
  CountingBloomFilter cbf({4096, 4});
  util::Rng rng(3);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 100; ++i) keys.push_back(rng.next());
  for (auto k : keys) cbf.insert(k);
  const BloomFilter bf = cbf.to_bloom();
  for (auto k : keys) EXPECT_TRUE(bf.possibly_contains(k));
  EXPECT_EQ(bf.set_bits(), cbf.nonzero_counters());
}

}  // namespace
}  // namespace p2prm::bloom

#include <gtest/gtest.h>

#include "metrics/collectors.hpp"
#include "metrics/report.hpp"
#include "workload/heterogeneity.hpp"

namespace p2prm::metrics {
namespace {

using core::System;
using core::SystemConfig;
using core::TaskRecord;

TEST(TaskLedger, CountsAndRatios) {
  core::TaskLedger ledger;
  auto submit = [&](std::uint64_t id) {
    TaskRecord r;
    r.id = util::TaskId{id};
    r.submitted = 0;
    r.deadline = util::seconds(10);
    ledger.on_submitted(r);
  };
  for (std::uint64_t i = 0; i < 5; ++i) submit(i);
  ledger.on_completed(util::TaskId{0}, util::seconds(5), false);
  ledger.on_completed(util::TaskId{1}, util::seconds(15), true);
  ledger.on_rejected(util::TaskId{2}, "nope");
  ledger.on_failed(util::TaskId{3}, "dead");
  ledger.orphan_pending(util::seconds(20));

  EXPECT_EQ(ledger.submitted(), 5u);
  EXPECT_EQ(ledger.completed(), 2u);
  EXPECT_EQ(ledger.completed_on_time(), 1u);
  EXPECT_EQ(ledger.missed(), 1u);
  EXPECT_EQ(ledger.rejected(), 1u);
  EXPECT_EQ(ledger.failed(), 1u);
  EXPECT_EQ(ledger.orphaned(), 1u);
  EXPECT_EQ(ledger.pending(), 0u);
  EXPECT_DOUBLE_EQ(ledger.on_time_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(ledger.goodput(), 0.2);
  EXPECT_DOUBLE_EQ(ledger.miss_ratio(), 0.8);
}

TEST(TaskLedger, DoubleTerminalEventsIgnored) {
  core::TaskLedger ledger;
  TaskRecord r;
  r.id = util::TaskId{1};
  r.deadline = util::seconds(10);
  ledger.on_submitted(r);
  ledger.on_completed(util::TaskId{1}, util::seconds(1), false);
  ledger.on_failed(util::TaskId{1}, "late news");
  ledger.on_completed(util::TaskId{1}, util::seconds(2), true);
  EXPECT_EQ(ledger.completed(), 1u);
  EXPECT_EQ(ledger.failed(), 0u);
  EXPECT_EQ(ledger.record(util::TaskId{1})->status,
            core::TaskStatus::Completed);
}

TEST(TaskLedger, UnknownTaskEventsIgnored) {
  core::TaskLedger ledger;
  ledger.on_completed(util::TaskId{42}, 0, false);
  EXPECT_EQ(ledger.completed(), 0u);
}

TEST(TrafficSplit, SeparatesStreamData) {
  net::NetworkStats stats;
  stats.per_type_count["core.stream_data"] = 3;
  stats.per_type_bytes["core.stream_data"] = 3000;
  stats.per_type_count["core.task_query"] = 2;
  stats.per_type_bytes["core.task_query"] = 200;
  const auto split = split_traffic(stats);
  EXPECT_EQ(split.data_messages, 3u);
  EXPECT_EQ(split.data_bytes, 3000u);
  EXPECT_EQ(split.control_messages, 2u);
  EXPECT_EQ(split.control_bytes, 200u);
}

TEST(LoadProbe, MeasuresTrueFairnessOfIdleSystem) {
  media::Catalog catalog = media::ladder_catalog();
  System system{SystemConfig{}};
  util::Rng rng{5};
  workload::PopulationConfig pop;
  workload::ObjectPopulation population(catalog, pop, system, rng);
  auto factory = workload::make_peer_factory(
      catalog, population, workload::HeterogeneityConfig{},
      workload::ProvisionConfig{}, system, rng);
  workload::bootstrap_network(system, factory, 6);

  LoadProbe probe(system, util::milliseconds(500));
  probe.start();
  system.run_for(util::seconds(10));
  probe.stop();

  ASSERT_GT(probe.fairness_series().count(), 5u);
  // Idle peers -> all-zero loads -> Jain index 1.
  EXPECT_NEAR(probe.fairness_series().last(), 1.0, 1e-9);
  EXPECT_NEAR(probe.mean_utilization(0.0, 10.0), 0.0, 0.02);
}

TEST(LoadProbe, DetectsActivity) {
  media::Catalog catalog = media::ladder_catalog();
  System system{SystemConfig{}};
  util::Rng rng{6};
  workload::PopulationConfig pop;
  workload::ObjectPopulation population(catalog, pop, system, rng);
  auto factory = workload::make_peer_factory(
      catalog, population, workload::HeterogeneityConfig{},
      workload::ProvisionConfig{}, system, rng);
  const auto ids = workload::bootstrap_network(system, factory, 8);

  // Guarantee a host for the exact conversion we will request, so the test
  // does not depend on random provisioning.
  const auto& object = population.at(0);
  media::MediaFormat target = object.format;
  target.bitrate_kbps = object.format.bitrate_kbps / 2;
  overlay::PeerSpec spec;
  spec.capacity_ops_per_s = 60e6;
  core::PeerInventory inv;
  inv.services = {{system.next_service_id(),
                   media::TranscoderType{object.format, target}}};
  system.add_peer(spec, std::move(inv));
  system.run_for(util::seconds(2));

  LoadProbe probe(system, util::milliseconds(500));
  probe.start();
  core::QoSRequirements q;
  q.object = object.id;
  q.acceptable_formats = {target};
  q.deadline = util::minutes(2);
  system.submit_task(ids.front(), q);
  system.run_for(util::seconds(20));
  probe.stop();

  double peak = 0.0;
  for (std::size_t i = 0; i < probe.max_utilization_series().count(); ++i) {
    peak = std::max(peak, probe.max_utilization_series().value_at(i));
  }
  EXPECT_GT(peak, 0.5);  // someone actually transcoded
}

TEST(Reports, TablesRenderWithoutCrashing) {
  media::Catalog catalog = media::ladder_catalog();
  System system{SystemConfig{}};
  util::Rng rng{7};
  workload::PopulationConfig pop;
  workload::ObjectPopulation population(catalog, pop, system, rng);
  auto factory = workload::make_peer_factory(
      catalog, population, workload::HeterogeneityConfig{},
      workload::ProvisionConfig{}, system, rng);
  workload::bootstrap_network(system, factory, 5);

  const auto tasks = task_table(system.ledger());
  EXPECT_GT(tasks.rows(), 5u);
  const auto traffic = traffic_table(system.network().stats());
  EXPECT_GT(traffic.rows(), 2u);
  const auto domains = domain_table(system);
  EXPECT_EQ(domains.rows(), 1u);
  const auto agg = aggregate_rm_stats(system);
  EXPECT_EQ(agg.domains, 1u);
}

}  // namespace
}  // namespace p2prm::metrics

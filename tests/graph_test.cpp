#include <gtest/gtest.h>

#include <set>

#include "graph/path_search.hpp"
#include "graph/resource_graph.hpp"
#include "graph/service_graph.hpp"
#include "media/catalog.hpp"

namespace p2prm::graph {
namespace {

using util::PeerId;
using util::ServiceId;

// Builds the Figure 1 resource graph: e1..e8 hosted on distinct peers
// (except e2/e3 which share a type but live on peers 2 and 3).
struct Fig1 {
  media::Figure1Catalog cat = media::figure1_catalog();
  ResourceGraph gr;
  StateIndex v1, v3;

  Fig1() {
    for (std::size_t i = 0; i < cat.edges.size(); ++i) {
      gr.add_service(ServiceId{i + 1}, PeerId{i + 1}, cat.edges[i]);
    }
    v1 = *gr.find_state(cat.v1);
    v3 = *gr.find_state(cat.v3);
  }
};

std::set<std::vector<std::uint64_t>> path_ids(const std::vector<EdgePath>& paths) {
  std::set<std::vector<std::uint64_t>> out;
  for (const auto& p : paths) {
    std::vector<std::uint64_t> ids;
    for (const auto* e : p) ids.push_back(e->id.value());
    out.insert(ids);
  }
  return out;
}

TEST(ResourceGraph, StatesAreDeduplicated) {
  ResourceGraph gr;
  const media::MediaFormat f{media::Codec::MPEG2, media::kRes800x600, 512};
  const auto a = gr.add_state(f);
  const auto b = gr.add_state(f);
  EXPECT_EQ(a, b);
  EXPECT_EQ(gr.state_count(), 1u);
  EXPECT_EQ(gr.state(a), f);
}

TEST(ResourceGraph, AddRemoveService) {
  Fig1 fig;
  EXPECT_EQ(fig.gr.service_count(), 8u);
  EXPECT_TRUE(fig.gr.has_service(ServiceId{1}));
  EXPECT_TRUE(fig.gr.remove_service(ServiceId{1}));
  EXPECT_FALSE(fig.gr.remove_service(ServiceId{1}));
  EXPECT_EQ(fig.gr.service_count(), 7u);
  EXPECT_THROW((void)fig.gr.service(ServiceId{1}), std::out_of_range);
}

TEST(ResourceGraph, DuplicateServiceIdRejected) {
  Fig1 fig;
  EXPECT_THROW(fig.gr.add_service(ServiceId{1}, PeerId{9}, fig.cat.edges[0]),
               std::logic_error);
}

TEST(ResourceGraph, RemovePeerRemovesItsEdges) {
  Fig1 fig;
  // Peer 2 hosts e2 only.
  EXPECT_EQ(fig.gr.remove_peer(PeerId{2}), 1u);
  EXPECT_FALSE(fig.gr.has_service(ServiceId{2}));
  EXPECT_EQ(fig.gr.remove_peer(PeerId{2}), 0u);
}

TEST(ResourceGraph, EdgeLoadAnnotations) {
  Fig1 fig;
  fig.gr.set_service_load(ServiceId{4}, 2.5);
  EXPECT_DOUBLE_EQ(fig.gr.service(ServiceId{4}).load, 2.5);
  EXPECT_THROW(fig.gr.set_service_load(ServiceId{99}, 1.0), std::out_of_range);
}

TEST(ResourceGraph, ServicesOfPeerSorted) {
  ResourceGraph gr;
  const media::Figure1Catalog cat = media::figure1_catalog();
  gr.add_service(ServiceId{5}, PeerId{1}, cat.edges[0]);
  gr.add_service(ServiceId{2}, PeerId{1}, cat.edges[1]);
  const auto services = gr.services_of(PeerId{1});
  ASSERT_EQ(services.size(), 2u);
  EXPECT_EQ(services[0]->id, ServiceId{2});
  EXPECT_EQ(services[1]->id, ServiceId{5});
}

// ---- Figure 3 BFS -----------------------------------------------------------

TEST(PathSearch, Figure1YieldsExactlyThePaperPaths) {
  Fig1 fig;
  SearchStats stats;
  const auto paths = bfs_paths(fig.gr, fig.v1, fig.v3, {}, &stats);
  // "we can follow any of the {e1,e2}, {e1,e3} or {e1,e4,e5,e8}" (§4.3)
  const auto ids = path_ids(paths);
  EXPECT_EQ(ids, (std::set<std::vector<std::uint64_t>>{
                     {1, 2}, {1, 3}, {1, 4, 5, 8}}));
  EXPECT_EQ(stats.candidates_found, 3u);
}

TEST(PathSearch, BfsFindsShortestFirst) {
  Fig1 fig;
  const auto paths = bfs_paths(fig.gr, fig.v1, fig.v3);
  ASSERT_GE(paths.size(), 3u);
  EXPECT_EQ(paths.front().size(), 2u);
  EXPECT_EQ(paths.back().size(), 4u);
}

TEST(PathSearch, PruningCutsLongSequences) {
  Fig1 fig;
  SearchStats stats;
  const auto paths = bfs_paths(
      fig.gr, fig.v1, fig.v3,
      [](const EdgePath& partial) { return partial.size() <= 2; }, &stats);
  EXPECT_EQ(path_ids(paths),
            (std::set<std::vector<std::uint64_t>>{{1, 2}, {1, 3}}));
  EXPECT_GT(stats.pruned, 0u);
}

TEST(PathSearch, UnreachableGoal) {
  Fig1 fig;
  // v1 has no incoming path from v3 except via e6 (v2 -> v1): v3 -> v1 is
  // unreachable because v3 has no outgoing edges.
  const auto paths = bfs_paths(fig.gr, fig.v3, fig.v1);
  EXPECT_TRUE(paths.empty());
  EXPECT_FALSE(reachable(fig.gr, fig.v3, fig.v1));
  EXPECT_TRUE(reachable(fig.gr, fig.v1, fig.v3));
}

TEST(PathSearch, ExhaustiveMatchesBfsOnFigure1) {
  // Figure 1 has no cross-branch simple paths the BFS's visited-pruning
  // would miss, so both enumerations agree exactly.
  Fig1 fig;
  const auto bfs = path_ids(bfs_paths(fig.gr, fig.v1, fig.v3));
  const auto all = path_ids(all_simple_paths(fig.gr, fig.v1, fig.v3, 8));
  EXPECT_EQ(bfs, all);
}

TEST(PathSearch, ExhaustiveFindsPathsBfsPrunes) {
  // Diamond with a second entry into the middle vertex: BFS expands the
  // middle once, the exhaustive search keeps both simple paths.
  ResourceGraph gr;
  media::MediaFormat a{media::Codec::MPEG2, media::kRes800x600, 512};
  media::MediaFormat b{media::Codec::MPEG4, media::kRes800x600, 512};
  media::MediaFormat c{media::Codec::MPEG4, media::kRes640x480, 512};
  media::MediaFormat d{media::Codec::MPEG4, media::kRes640x480, 256};
  gr.add_service(ServiceId{1}, PeerId{1}, {a, b});  // a->b
  gr.add_service(ServiceId{2}, PeerId{2}, {a, c});  // a->c
  gr.add_service(ServiceId{3}, PeerId{3}, {b, c});  // b->c
  gr.add_service(ServiceId{4}, PeerId{4}, {c, d});  // c->d
  const auto va = *gr.find_state(a);
  const auto vd = *gr.find_state(d);
  const auto bfs = path_ids(bfs_paths(gr, va, vd));
  const auto all = path_ids(all_simple_paths(gr, va, vd, 8));
  EXPECT_EQ(all, (std::set<std::vector<std::uint64_t>>{{1, 3, 4}, {2, 4}}));
  // Fig. 3's visited rule: c is expanded once (first arrival via a->c at
  // depth 1), so the deeper arrival via b cannot re-expand it.
  EXPECT_EQ(bfs, (std::set<std::vector<std::uint64_t>>{{2, 4}}));
}

TEST(PathSearch, MaxHopsBoundsExhaustive) {
  Fig1 fig;
  const auto short_only = all_simple_paths(fig.gr, fig.v1, fig.v3, 2);
  EXPECT_EQ(path_ids(short_only),
            (std::set<std::vector<std::uint64_t>>{{1, 2}, {1, 3}}));
}

// ---- ServiceGraph -------------------------------------------------------------

ServiceHop make_hop(std::uint64_t service, std::uint64_t peer,
                    media::TranscoderType type) {
  ServiceHop hop;
  hop.service = ServiceId{service};
  hop.peer = PeerId{peer};
  hop.type = type;
  return hop;
}

TEST(ServiceGraph, ChainConsistency) {
  const auto cat = media::figure1_catalog();
  ServiceGraph sg(util::TaskId{1}, PeerId{10}, util::ObjectId{5}, PeerId{20},
                  cat.v1, cat.v3);
  EXPECT_FALSE(sg.chain_consistent());  // no hops yet but v1 != v3
  sg.add_hop(make_hop(1, 1, cat.edges[0]));  // v1->v2
  sg.add_hop(make_hop(2, 2, cat.edges[1]));  // v2->v3
  EXPECT_TRUE(sg.chain_consistent());
  EXPECT_EQ(sg.hop_count(), 2u);
}

TEST(ServiceGraph, ParticipantsAndInvolvement) {
  const auto cat = media::figure1_catalog();
  ServiceGraph sg(util::TaskId{1}, PeerId{10}, util::ObjectId{5}, PeerId{20},
                  cat.v1, cat.v3);
  sg.add_hop(make_hop(1, 1, cat.edges[0]));
  sg.add_hop(make_hop(2, 2, cat.edges[1]));
  EXPECT_EQ(sg.participants(),
            (std::vector<PeerId>{PeerId{10}, PeerId{1}, PeerId{2}, PeerId{20}}));
  EXPECT_TRUE(sg.involves(PeerId{1}));
  EXPECT_TRUE(sg.involves(PeerId{10}));
  EXPECT_FALSE(sg.involves(PeerId{99}));
  EXPECT_EQ(sg.hops_on(PeerId{2}), (std::vector<std::size_t>{1}));
}

TEST(ServiceGraph, SubstituteHopRequiresSameConversion) {
  const auto cat = media::figure1_catalog();
  ServiceGraph sg(util::TaskId{1}, PeerId{10}, util::ObjectId{5}, PeerId{20},
                  cat.v2, cat.v3);
  sg.add_hop(make_hop(2, 2, cat.edges[1]));
  // e3 offers the same conversion on another peer: valid substitute.
  sg.substitute_hop(0, make_hop(3, 3, cat.edges[2]));
  EXPECT_EQ(sg.hops()[0].peer, PeerId{3});
  EXPECT_TRUE(sg.chain_consistent());
  EXPECT_THROW(sg.substitute_hop(0, make_hop(4, 4, cat.edges[3])),
               std::invalid_argument);
  EXPECT_THROW(sg.substitute_hop(9, make_hop(3, 3, cat.edges[2])),
               std::out_of_range);
}

TEST(ServiceGraph, EstimatedExecutionSumsHops) {
  const auto cat = media::figure1_catalog();
  ServiceGraph sg(util::TaskId{1}, PeerId{10}, util::ObjectId{5}, PeerId{20},
                  cat.v1, cat.v3);
  auto h1 = make_hop(1, 1, cat.edges[0]);
  h1.estimated_compute_time = util::seconds(2);
  h1.estimated_transfer_time = util::seconds(1);
  auto h2 = make_hop(2, 2, cat.edges[1]);
  h2.estimated_compute_time = util::seconds(3);
  sg.add_hop(h1);
  sg.add_hop(h2);
  EXPECT_EQ(sg.estimated_execution_time(), util::seconds(6));
}

TEST(ServiceGraph, ZeroHopPassthrough) {
  const auto cat = media::figure1_catalog();
  ServiceGraph sg(util::TaskId{1}, PeerId{10}, util::ObjectId{5}, PeerId{20},
                  cat.v1, cat.v1);
  EXPECT_TRUE(sg.chain_consistent());
  EXPECT_EQ(sg.estimated_execution_time(), 0);
}

}  // namespace
}  // namespace p2prm::graph

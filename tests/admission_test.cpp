#include <gtest/gtest.h>

#include "core/admission.hpp"

namespace p2prm::core {
namespace {

using util::PeerId;

InfoBase make_info(std::initializer_list<std::pair<std::uint64_t, double>>
                       peer_utilizations) {
  InfoBase info(util::DomainId{0}, PeerId{1});
  for (const auto& [id, utilization] : peer_utilizations) {
    overlay::PeerSpec spec;
    spec.id = PeerId{id};
    spec.capacity_ops_per_s = 100e6;
    info.add_member(spec, 0);
    ProfilerReport report;
    report.sample.smoothed_utilization = utilization;
    report.sample.smoothed_load_ops = utilization * 100e6;
    info.record_report(PeerId{id}, report, 0);
  }
  return info;
}

TEST(Admission, AdmitsWhenAnyPeerHasHeadroom) {
  const auto info = make_info({{1, 0.95}, {2, 0.95}, {3, 0.2}});
  SystemConfig config;
  const auto d = check_admission(info, config);
  EXPECT_TRUE(d.admit);
  EXPECT_FALSE(d.domain_overloaded);
}

TEST(Admission, RefusesWhenAllPeersOverloaded) {
  const auto info = make_info({{1, 0.95}, {2, 0.97}, {3, 0.99}});
  SystemConfig config;
  const auto d = check_admission(info, config);
  EXPECT_FALSE(d.admit);
  EXPECT_TRUE(d.domain_overloaded);
  EXPECT_EQ(d.reason, "domain-overloaded");
}

TEST(Admission, DisabledAdmissionAlwaysAdmits) {
  const auto info = make_info({{1, 0.99}});
  SystemConfig config;
  config.admission_control = false;
  EXPECT_TRUE(check_admission(info, config).admit);
}

TEST(Admission, EmptyDomainCountsAsOverloaded) {
  const InfoBase info(util::DomainId{0}, PeerId{1});
  SystemConfig config;
  EXPECT_TRUE(domain_overloaded(info, config));
}

TEST(Admission, ThresholdIsConfigurable) {
  const auto info = make_info({{1, 0.8}, {2, 0.85}});
  SystemConfig config;
  config.overload_utilization = 0.75;
  EXPECT_FALSE(check_admission(info, config).admit);
}

TEST(Admission, CommittedLoadCountsTowardOverload) {
  auto info = make_info({{1, 0.85}});
  SystemConfig config;
  EXPECT_TRUE(check_admission(info, config).admit);
  info.commit_load(PeerId{1}, 10e6);  // pushes utilization to 0.95
  EXPECT_FALSE(check_admission(info, config).admit);
}

TEST(Admission, MeanUtilizationAggregates) {
  const auto info = make_info({{1, 0.2}, {2, 0.6}});
  EXPECT_NEAR(mean_domain_utilization(info), 0.4, 1e-9);
  const InfoBase empty(util::DomainId{0}, PeerId{1});
  EXPECT_DOUBLE_EQ(mean_domain_utilization(empty), 1.0);
}

TEST(Admission, ImportanceGateOnlyWhenBusy) {
  SystemConfig config;
  config.min_importance_when_busy = 5.0;
  config.busy_utilization = 0.75;
  {
    // Idle domain: low-importance tasks sail through.
    const auto info = make_info({{1, 0.2}, {2, 0.2}});
    EXPECT_TRUE(check_admission(info, config, 1.0).admit);
  }
  {
    // Busy domain: low importance is turned away, high admitted.
    const auto info = make_info({{1, 0.8}, {2, 0.85}});
    const auto low = check_admission(info, config, 1.0);
    EXPECT_FALSE(low.admit);
    EXPECT_EQ(low.reason, "low-importance-while-busy");
    EXPECT_FALSE(low.domain_overloaded);  // redirectable, not hopeless
    EXPECT_TRUE(check_admission(info, config, 9.0).admit);
  }
}

TEST(Admission, ImportanceGateDisabledByDefault) {
  SystemConfig config;  // min_importance_when_busy == 0
  const auto info = make_info({{1, 0.85}});
  EXPECT_TRUE(check_admission(info, config, 0.001).admit);
}

TEST(OverloadDetector, NeedsConsecutiveReports) {
  OverloadDetector det(0.9, 3);
  EXPECT_FALSE(det.record(PeerId{1}, 0.95));
  EXPECT_FALSE(det.record(PeerId{1}, 0.95));
  EXPECT_TRUE(det.record(PeerId{1}, 0.95));
  EXPECT_TRUE(det.overloaded(PeerId{1}));
  EXPECT_EQ(det.overloaded_count(), 1u);
}

TEST(OverloadDetector, DipResetsStreak) {
  OverloadDetector det(0.9, 3);
  det.record(PeerId{1}, 0.95);
  det.record(PeerId{1}, 0.95);
  det.record(PeerId{1}, 0.5);  // blip below threshold
  EXPECT_FALSE(det.record(PeerId{1}, 0.95));
  EXPECT_FALSE(det.overloaded(PeerId{1}));
}

TEST(OverloadDetector, ForgetClearsState) {
  OverloadDetector det(0.9, 1);
  det.record(PeerId{1}, 1.0);
  EXPECT_TRUE(det.overloaded(PeerId{1}));
  det.forget(PeerId{1});
  EXPECT_FALSE(det.overloaded(PeerId{1}));
}

TEST(OverloadDetector, TracksPeersIndependently) {
  OverloadDetector det(0.9, 2);
  det.record(PeerId{1}, 0.95);
  det.record(PeerId{2}, 0.95);
  det.record(PeerId{1}, 0.95);
  EXPECT_TRUE(det.overloaded(PeerId{1}));
  EXPECT_FALSE(det.overloaded(PeerId{2}));
}

}  // namespace
}  // namespace p2prm::core

#include <gtest/gtest.h>

#include "profile/ewma.hpp"
#include "profile/profiler.hpp"

namespace p2prm::profile {
namespace {

using util::milliseconds;
using util::seconds;

TEST(Ewma, FirstValueInitializes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value_or(7.0), 7.0);
  e.update(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesTowardConstantInput) {
  Ewma e(0.3);
  e.update(0.0);
  for (int i = 0; i < 50; ++i) e.update(4.0);
  EXPECT_NEAR(e.value(), 4.0, 1e-6);
}

TEST(Ewma, AlphaOneTracksExactly) {
  Ewma e(1.0);
  e.update(1.0);
  e.update(9.0);
  EXPECT_DOUBLE_EQ(e.value(), 9.0);
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(Ewma(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma(1.5), std::invalid_argument);
}

TEST(Ewma, Reset) {
  Ewma e(0.5);
  e.update(3.0);
  e.reset();
  EXPECT_FALSE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
}

TEST(Profiler, FirstSampleIsBaseline) {
  Profiler prof(10e6);
  const auto s = prof.sample(seconds(1), seconds(0), 0, 0, 0.0);
  EXPECT_DOUBLE_EQ(s.utilization, 0.0);
  EXPECT_DOUBLE_EQ(s.load_ops, 0.0);
}

TEST(Profiler, UtilizationFromBusyDelta) {
  Profiler prof(10e6);
  prof.sample(seconds(0), 0, 0, 0, 0.0);
  // 500ms busy over a 1s period -> 50% utilization, load = 5 Mops.
  const auto s = prof.sample(seconds(1), milliseconds(500), 0, 2, 1.5);
  EXPECT_NEAR(s.utilization, 0.5, 1e-9);
  EXPECT_NEAR(s.load_ops, 5e6, 1.0);
  EXPECT_EQ(s.queue_length, 2u);
  EXPECT_DOUBLE_EQ(s.backlog_seconds, 1.5);
}

TEST(Profiler, PaperLoadMetricIsCapacityTimesUtilization) {
  // "current processor load l_i ... expressed as the product of processing
  // power with current utilization" (§3.1 item 3).
  Profiler fast(100e6), slow(10e6);
  fast.sample(seconds(0), 0, 0, 0, 0);
  slow.sample(seconds(0), 0, 0, 0, 0);
  const auto f = fast.sample(seconds(1), milliseconds(500), 0, 0, 0);
  const auto s = slow.sample(seconds(1), milliseconds(500), 0, 0, 0);
  EXPECT_NEAR(f.utilization, s.utilization, 1e-9);
  EXPECT_NEAR(f.load_ops / s.load_ops, 10.0, 1e-6);
}

TEST(Profiler, BandwidthFromByteDelta) {
  Profiler prof(10e6);
  prof.sample(seconds(0), 0, 0, 0, 0.0);
  const auto s = prof.sample(seconds(2), 0, 2'000'000, 0, 0.0);
  EXPECT_NEAR(s.bandwidth_bytes_per_s, 1e6, 1.0);
}

TEST(Profiler, SmoothingDampsSpikes) {
  Profiler prof(10e6, {.ewma_alpha = 0.2});
  prof.sample(seconds(0), 0, 0, 0, 0.0);
  util::SimDuration busy = 0;
  // Steady 10% load...
  for (int t = 1; t <= 10; ++t) {
    busy += milliseconds(100);
    prof.sample(seconds(t), busy, 0, 0, 0.0);
  }
  // ...then one fully-busy second.
  busy += seconds(1);
  const auto s = prof.sample(seconds(11), busy, 0, 0, 0.0);
  EXPECT_DOUBLE_EQ(s.utilization, 1.0);
  EXPECT_LT(s.smoothed_utilization, 0.35);  // spike damped
  EXPECT_GT(s.smoothed_utilization, 0.2);
}

TEST(Profiler, ExecutionRecordsImproveEstimates) {
  Profiler prof(10e6);
  const std::uint64_t key = 12345;
  EXPECT_EQ(prof.estimated_execution(key, seconds(9)), seconds(9));  // fallback
  prof.record_execution(key, seconds(2));
  prof.record_execution(key, seconds(4));
  EXPECT_EQ(prof.estimated_execution(key, seconds(9)), seconds(3));
  const auto* stats = prof.execution_stats(key);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count(), 2u);
}

TEST(Profiler, CommunicationRecordsPerNeighbour) {
  Profiler prof(10e6);
  const util::PeerId a{1}, b{2};
  prof.record_communication(a, milliseconds(10));
  prof.record_communication(a, milliseconds(10));
  EXPECT_EQ(prof.estimated_communication(a, seconds(1)), milliseconds(10));
  EXPECT_EQ(prof.estimated_communication(b, seconds(1)), seconds(1));
}

TEST(Profiler, RejectsNonPositiveCapacity) {
  EXPECT_THROW(Profiler(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace p2prm::profile

#include <gtest/gtest.h>

#include <stdexcept>

#include "media/catalog.hpp"
#include "media/format.hpp"
#include "media/transcoder.hpp"
#include "workload/streaming.hpp"

namespace p2prm::media {
namespace {

TEST(Format, EqualityAndToString) {
  const MediaFormat a{Codec::MPEG2, kRes800x600, 512};
  const MediaFormat b{Codec::MPEG2, kRes800x600, 512};
  const MediaFormat c{Codec::MPEG4, kRes800x600, 512};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.to_string(), "800x600 MPEG-2 512kbps");
}

TEST(Format, ObjectSizeFromBitrateAndDuration) {
  MediaObject obj;
  obj.format = MediaFormat{Codec::MPEG2, kRes640x480, 512};
  obj.duration_s = 10.0;
  EXPECT_EQ(obj.size_bytes(), 640000u);  // 512kbps * 10s / 8
}

TEST(Transcoder, AspectsDetected) {
  const TranscoderType codec_change{{Codec::MPEG2, kRes800x600, 512},
                                    {Codec::MPEG4, kRes800x600, 512}};
  EXPECT_TRUE(has_aspect(codec_change.aspects(), TranscodeAspect::CodecChange));
  EXPECT_FALSE(has_aspect(codec_change.aspects(), TranscodeAspect::Downscale));

  const TranscoderType shrink{{Codec::MPEG4, kRes800x600, 512},
                              {Codec::MPEG4, kRes320x240, 64}};
  EXPECT_TRUE(has_aspect(shrink.aspects(), TranscodeAspect::Downscale));
  EXPECT_TRUE(has_aspect(shrink.aspects(), TranscodeAspect::BitrateReduce));
}

TEST(Transcoder, CostScalesWithPixelsAndCodec) {
  const TranscoderType small{{Codec::MPEG2, kRes320x240, 256},
                             {Codec::MPEG2, kRes320x240, 128}};
  const TranscoderType large{{Codec::MPEG2, kRes800x600, 256},
                             {Codec::MPEG2, kRes800x600, 128}};
  EXPECT_LT(transcode_ops_per_media_second(small),
            transcode_ops_per_media_second(large));

  const TranscoderType mpeg4{{Codec::MPEG4, kRes800x600, 256},
                             {Codec::MPEG4, kRes800x600, 128}};
  EXPECT_LT(transcode_ops_per_media_second(large),
            transcode_ops_per_media_second(mpeg4));
}

TEST(Transcoder, BitrateOnlyShapingIsCheaperThanFullReencode) {
  const TranscoderType shaping{{Codec::MPEG4, kRes640x480, 512},
                               {Codec::MPEG4, kRes640x480, 256}};
  const TranscoderType reencode{{Codec::MPEG2, kRes640x480, 512},
                                {Codec::MPEG4, kRes640x480, 256}};
  EXPECT_LT(transcode_ops_per_media_second(shaping),
            transcode_ops_per_media_second(reencode));
}

TEST(Transcoder, OutputBandwidthFollowsTargetBitrate) {
  const TranscoderType t{{Codec::MPEG2, kRes640x480, 512},
                         {Codec::MPEG4, kRes640x480, 64}};
  EXPECT_DOUBLE_EQ(output_bytes_per_media_second(t), 8000.0);
}

TEST(Transcoder, SensibleConversionRules) {
  const MediaFormat hi{Codec::MPEG2, kRes800x600, 512};
  const MediaFormat lo{Codec::MPEG4, kRes640x480, 128};
  EXPECT_TRUE(is_sensible_conversion(hi, lo));
  EXPECT_FALSE(is_sensible_conversion(lo, hi));  // no upscaling
  EXPECT_FALSE(is_sensible_conversion(hi, hi));  // no identity
}

TEST(Transcoder, TypeKeyDistinguishesConversions) {
  const TranscoderType a{{Codec::MPEG2, kRes800x600, 512},
                         {Codec::MPEG4, kRes800x600, 512}};
  const TranscoderType b{{Codec::MPEG2, kRes800x600, 512},
                         {Codec::MPEG4, kRes640x480, 512}};
  EXPECT_NE(a.type_key(), b.type_key());
  EXPECT_EQ(a.type_key(), TranscoderType{a}.type_key());
}

TEST(Catalog, AddAndLookup) {
  Catalog cat;
  const MediaFormat f{Codec::MPEG2, kRes800x600, 512};
  const auto i = cat.add_format(f);
  EXPECT_EQ(cat.add_format(f), i);  // idempotent
  EXPECT_TRUE(cat.has_format(f));
  EXPECT_EQ(cat.index_of(f), i);
  EXPECT_EQ(cat.format(i), f);
  EXPECT_THROW((void)cat.index_of(MediaFormat{}), std::out_of_range);
}

TEST(Catalog, ConversionRequiresKnownFormats) {
  Catalog cat;
  const MediaFormat a{Codec::MPEG2, kRes800x600, 512};
  cat.add_format(a);
  EXPECT_THROW(cat.add_conversion(a, MediaFormat{Codec::MPEG4, kRes640x480, 64}),
               std::logic_error);
}

TEST(Figure1, ExactStructure) {
  const Figure1Catalog fig = figure1_catalog();
  EXPECT_EQ(fig.catalog.format_count(), 5u);
  ASSERT_EQ(fig.edges.size(), 8u);
  // e1 converts the source codec; e2 == e3 (two providers).
  EXPECT_EQ(fig.edges[0].input, fig.v1);
  EXPECT_EQ(fig.edges[0].output, fig.v2);
  EXPECT_EQ(fig.edges[1], fig.edges[2]);
  EXPECT_EQ(fig.edges[7].input, fig.v5);
  EXPECT_EQ(fig.edges[7].output, fig.v3);
  // The §4.3 narrative formats.
  EXPECT_EQ(fig.v1.to_string(), "800x600 MPEG-2 512kbps");
  EXPECT_EQ(fig.v3.to_string(), "640x480 MPEG-4 64kbps");
}

TEST(LadderCatalog, AdjacencyAndSensibility) {
  const Catalog cat = ladder_catalog();
  EXPECT_EQ(cat.format_count(), 24u);  // 2 codecs x 3 res x 4 bitrates
  EXPECT_FALSE(cat.conversions().empty());
  for (const auto& c : cat.conversions()) {
    EXPECT_TRUE(is_sensible_conversion(c.input, c.output)) << c.to_string();
  }
  // Adjacent-steps-only: no conversion skips a bitrate rung.
  for (const auto& c : cat.conversions()) {
    const double ratio = static_cast<double>(c.input.bitrate_kbps) /
                         std::max(1u, c.output.bitrate_kbps);
    EXPECT_LE(ratio, 2.01) << c.to_string();
  }
}

TEST(LadderCatalog, EveryNonBottomFormatHasAnOutgoingConversion) {
  const Catalog cat = ladder_catalog();
  for (const auto& f : cat.formats()) {
    const bool bottom = f.bitrate_kbps == 64 &&
                        f.resolution.pixels() == kRes320x240.pixels() &&
                        f.codec == Codec::MPEG4;
    if (!bottom) {
      EXPECT_FALSE(cat.conversions_from(f).empty()) << f.to_string();
    }
  }
}

TEST(Catalog, StreamReachabilityMatchesFigure1Edges) {
  const Figure1Catalog fig = figure1_catalog();
  using workload::StreamingScenario;
  // The paper's three v1->v3 paths make v3 reachable from v1.
  EXPECT_TRUE(StreamingScenario::format_reachable(fig.catalog, fig.v1, fig.v3));
  // Reachability is reflexive without needing an edge.
  EXPECT_TRUE(StreamingScenario::format_reachable(fig.catalog, fig.v3, fig.v3));
  // e7: v5 -> v4, multi-hop v1 -> v4 via e1,e4.
  EXPECT_TRUE(StreamingScenario::format_reachable(fig.catalog, fig.v5, fig.v4));
  EXPECT_TRUE(StreamingScenario::format_reachable(fig.catalog, fig.v1, fig.v4));
  // v3 is a sink: no outgoing conversions, so nothing else is reachable.
  EXPECT_FALSE(StreamingScenario::format_reachable(fig.catalog, fig.v3, fig.v1));
  EXPECT_FALSE(StreamingScenario::format_reachable(fig.catalog, fig.v3, fig.v2));
  // Unknown formats are unreachable, not a crash.
  const MediaFormat alien{Codec::MPEG4, kRes320x240, 999};
  EXPECT_FALSE(StreamingScenario::format_reachable(fig.catalog, alien, fig.v3));
  EXPECT_FALSE(StreamingScenario::format_reachable(fig.catalog, fig.v1, alien));
}

TEST(Catalog, NoPathViewerRejectedAtScenarioBuild) {
  // A viewer whose target has no conversion path from the channel feed is a
  // plan-construction error (std::invalid_argument naming the viewer), not
  // a mid-run placement failure.
  const Figure1Catalog fig = figure1_catalog();
  workload::StreamPlan plan;
  workload::ChannelPlan ch;
  ch.id = 0;
  ch.source = util::PeerId{1};
  ch.object = util::ObjectId{1};
  ch.source_format = fig.v3;  // dead end: v3 has no outgoing conversions
  ch.start = 0;
  ch.chunk_count = 4;
  plan.channels.push_back(ch);
  workload::ViewerPlan v;
  v.id = 0;
  v.channel = 0;
  v.sink = util::PeerId{2};
  v.target = fig.v1;
  v.join = 0;
  v.leave = util::seconds(1);
  plan.viewers.push_back(v);
  EXPECT_THROW(workload::StreamingScenario::validate(fig.catalog, plan),
               std::invalid_argument);
  // Same-format viewing needs no conversion path at all.
  plan.viewers[0].target = fig.v3;
  EXPECT_NO_THROW(workload::StreamingScenario::validate(fig.catalog, plan));
  // A viewer naming a channel the plan does not have is also a build error.
  plan.viewers[0].channel = 3;
  EXPECT_THROW(workload::StreamingScenario::validate(fig.catalog, plan),
               std::invalid_argument);
}

TEST(MakeObject, PopulatesMetadata) {
  util::Rng rng(5);
  const MediaFormat f{Codec::MPEG2, kRes800x600, 512};
  const auto obj = make_object(util::ObjectId{7}, f, 12.0, rng);
  EXPECT_EQ(obj.id, util::ObjectId{7});
  EXPECT_EQ(obj.format, f);
  EXPECT_DOUBLE_EQ(obj.duration_s, 12.0);
  EXPECT_NE(obj.content_hash, 0u);
  EXPECT_EQ(obj.name, "object-7");
}

}  // namespace
}  // namespace p2prm::media

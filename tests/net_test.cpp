#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace p2prm::net {
namespace {

using util::PeerId;

struct Ping final : Message {
  int payload = 0;
  std::size_t bytes = 100;
  static constexpr WireType kType = WireType::TestBase;
  std::size_t wire_size() const override { return bytes; }
  std::string_view type_name() const override { return "test.ping"; }
  WireType wire_type() const override { return kType; }
  void encode_body(Writer& w) const override {
    w.i64(payload);
    if (bytes > kFrameHeaderBytes + 8) w.zeros(bytes - kFrameHeaderBytes - 8);
  }
};

struct Rig {
  sim::Simulator sim{1};
  TopologyConfig tc{};
  Topology topo{tc};
  Network net{sim, topo};

  PeerId attach(PeerId id, Coordinates at, Network::Handler handler,
                LinkCapacity link = {}) {
    topo.place_at(id, at);
    net.attach(id, link, std::move(handler));
    return id;
  }
};

TEST(Topology, LatencyGrowsWithDistance) {
  Topology topo;
  topo.place_at(PeerId{1}, {0, 0});
  topo.place_at(PeerId{2}, {100, 0});
  topo.place_at(PeerId{3}, {500, 0});
  EXPECT_LT(topo.latency(PeerId{1}, PeerId{2}),
            topo.latency(PeerId{1}, PeerId{3}));
  EXPECT_EQ(topo.latency(PeerId{1}, PeerId{1}), 0);
  // symmetric
  EXPECT_EQ(topo.latency(PeerId{1}, PeerId{3}),
            topo.latency(PeerId{3}, PeerId{1}));
}

TEST(Topology, UnknownPeerThrows) {
  Topology topo;
  EXPECT_THROW((void)topo.coordinates(PeerId{9}), std::out_of_range);
}

TEST(Topology, JitterPerturbsWithinBounds) {
  TopologyConfig tc;
  tc.jitter_fraction = 0.2;
  Topology topo(tc);
  topo.place_at(PeerId{1}, {0, 0});
  topo.place_at(PeerId{2}, {500, 0});
  const auto base = topo.latency(PeerId{1}, PeerId{2});
  util::Rng rng(9);
  bool varied = false;
  util::SimDuration prev = -1;
  for (int i = 0; i < 200; ++i) {
    const auto l = topo.latency_jittered(PeerId{1}, PeerId{2}, rng);
    EXPECT_GE(l, static_cast<util::SimDuration>(base * 0.79));
    EXPECT_LE(l, static_cast<util::SimDuration>(base * 1.21));
    if (prev >= 0 && l != prev) varied = true;
    prev = l;
  }
  EXPECT_TRUE(varied);
}

TEST(Topology, NoJitterIsDeterministic) {
  Topology topo;  // jitter_fraction == 0
  topo.place_at(PeerId{1}, {0, 0});
  topo.place_at(PeerId{2}, {100, 0});
  util::Rng rng(9);
  EXPECT_EQ(topo.latency_jittered(PeerId{1}, PeerId{2}, rng),
            topo.latency(PeerId{1}, PeerId{2}));
}

TEST(Topology, ClusteredPlacementStaysInWorld) {
  TopologyConfig tc;
  tc.cluster_count = 4;
  Topology topo(tc);
  util::Rng rng(3);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto c = topo.place(PeerId{i}, rng);
    EXPECT_GE(c.x, 0.0);
    EXPECT_LE(c.x, tc.world_size);
    EXPECT_GE(c.y, 0.0);
    EXPECT_LE(c.y, tc.world_size);
  }
}

TEST(Network, DeliversWithLatency) {
  Rig rig;
  int got = 0;
  util::SimTime delivered_at = 0;
  rig.attach(PeerId{1}, {0, 0}, [](PeerId, const Message&) {});
  rig.attach(PeerId{2}, {1000, 0}, [&](PeerId from, const Message& m) {
    EXPECT_EQ(from, PeerId{1});
    got = message_as<Ping>(m)->payload;
    delivered_at = rig.sim.now();
  });
  auto ping = std::make_unique<Ping>();
  ping->payload = 42;
  rig.net.send(PeerId{1}, PeerId{2}, std::move(ping));
  rig.sim.run_until();
  EXPECT_EQ(got, 42);
  // >= propagation latency (1ms base + 2ms distance)
  EXPECT_GE(delivered_at, util::milliseconds(3));
}

TEST(Network, TransmissionDelayScalesWithSize) {
  Rig rig;
  util::SimTime small_at = 0, big_at = 0;
  rig.attach(PeerId{1}, {0, 0}, [](PeerId, const Message&) {});
  rig.attach(PeerId{2}, {0, 1}, [&](PeerId, const Message& m) {
    if (message_as<Ping>(m)->payload == 1) small_at = rig.sim.now();
    else big_at = rig.sim.now();
  });
  auto small = std::make_unique<Ping>();
  small->payload = 1;
  small->bytes = 100;
  auto big = std::make_unique<Ping>();
  big->payload = 2;
  big->bytes = 1'000'000;
  rig.net.send(PeerId{1}, PeerId{2}, std::move(small));
  rig.net.send(PeerId{1}, PeerId{2}, std::move(big));
  rig.sim.run_until();
  EXPECT_GT(big_at, small_at + util::milliseconds(100));
}

TEST(Network, SelfSendDeliversAsynchronouslyAndFast) {
  Rig rig;
  bool inline_delivery = true;
  bool delivered = false;
  rig.attach(PeerId{1}, {0, 0}, [&](PeerId, const Message&) {
    delivered = true;
  });
  rig.net.send(PeerId{1}, PeerId{1}, std::make_unique<Ping>());
  inline_delivery = delivered;  // must not have run synchronously
  rig.sim.run_until();
  EXPECT_FALSE(inline_delivery);
  EXPECT_TRUE(delivered);
}

TEST(Network, DetachedReceiverDropsInFlight) {
  Rig rig;
  int got = 0;
  rig.attach(PeerId{1}, {0, 0}, [](PeerId, const Message&) {});
  rig.attach(PeerId{2}, {500, 0}, [&](PeerId, const Message&) { ++got; });
  rig.net.send(PeerId{1}, PeerId{2}, std::make_unique<Ping>());
  rig.net.detach(PeerId{2});  // message already in flight
  rig.sim.run_until();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(rig.net.stats().messages_undeliverable, 1u);
}

TEST(Network, SendToNeverAttachedCountsUndeliverable) {
  Rig rig;
  rig.attach(PeerId{1}, {0, 0}, [](PeerId, const Message&) {});
  rig.net.send(PeerId{1}, PeerId{99}, std::make_unique<Ping>());
  rig.sim.run_until();
  EXPECT_EQ(rig.net.stats().messages_undeliverable, 1u);
  EXPECT_EQ(rig.net.stats().messages_delivered, 0u);
}

TEST(Network, ReattachInvalidatesOldEpoch) {
  Rig rig;
  int old_handler = 0, new_handler = 0;
  rig.attach(PeerId{1}, {0, 0}, [](PeerId, const Message&) {});
  rig.attach(PeerId{2}, {500, 0}, [&](PeerId, const Message&) { ++old_handler; });
  rig.net.send(PeerId{1}, PeerId{2}, std::make_unique<Ping>());
  // Crash + rejoin while the message is in flight.
  rig.net.detach(PeerId{2});
  rig.net.attach(PeerId{2}, {}, [&](PeerId, const Message&) { ++new_handler; });
  rig.sim.run_until();
  EXPECT_EQ(old_handler, 0);
  EXPECT_EQ(new_handler, 0);  // the in-flight message belonged to the old epoch
}

TEST(Network, StatsPerType) {
  Rig rig;
  rig.attach(PeerId{1}, {0, 0}, [](PeerId, const Message&) {});
  rig.attach(PeerId{2}, {10, 0}, [](PeerId, const Message&) {});
  rig.net.send(PeerId{1}, PeerId{2}, std::make_unique<Ping>());
  rig.net.send(PeerId{1}, PeerId{2}, std::make_unique<Ping>());
  rig.sim.run_until();
  EXPECT_EQ(rig.net.stats().per_type_count.at("test.ping"), 2u);
  EXPECT_EQ(rig.net.stats().messages_delivered, 2u);
  EXPECT_GT(rig.net.stats().bytes_sent, 200u);
}

TEST(Network, RandomLossDropsRoughlyTheConfiguredFraction) {
  sim::Simulator sim(7);
  Topology topo;
  Network net(sim, topo, 0.3);
  topo.place_at(PeerId{1}, {0, 0});
  topo.place_at(PeerId{2}, {1, 0});
  int got = 0;
  net.attach(PeerId{1}, {}, [](PeerId, const Message&) {});
  net.attach(PeerId{2}, {}, [&](PeerId, const Message&) { ++got; });
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    net.send(PeerId{1}, PeerId{2}, std::make_unique<Ping>());
  }
  sim.run_until();
  EXPECT_NEAR(static_cast<double>(got) / n, 0.7, 0.05);
}

TEST(Network, DropProbabilityOneIsLegalAndDropsEverything) {
  sim::Simulator sim(7);
  Topology topo;
  Network net(sim, topo, 1.0);
  topo.place_at(PeerId{1}, {0, 0});
  topo.place_at(PeerId{2}, {1, 0});
  int got = 0;
  net.attach(PeerId{1}, {}, [](PeerId, const Message&) {});
  net.attach(PeerId{2}, {}, [&](PeerId, const Message&) { ++got; });
  for (int i = 0; i < 100; ++i) {
    net.send(PeerId{1}, PeerId{2}, std::make_unique<Ping>());
  }
  sim.run_until();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net.stats().messages_dropped, 100u);
  EXPECT_EQ(net.stats().messages_delivered, 0u);
}

TEST(Network, DropProbabilityOutsideUnitIntervalThrows) {
  sim::Simulator sim(7);
  Topology topo;
  EXPECT_THROW((Network{sim, topo, 1.0001}), std::invalid_argument);
  EXPECT_THROW((Network{sim, topo, -0.1}), std::invalid_argument);
}

TEST(Network, UplinkSerializesConcurrentStreams) {
  Rig rig;
  util::SimTime first_at = 0, second_at = 0;
  LinkCapacity slow{10000, 1e9};  // 10 KB/s up, fat down
  rig.attach(PeerId{1}, {0, 0}, [](PeerId, const Message&) {}, slow);
  rig.attach(PeerId{2}, {0, 1}, [&](PeerId, const Message& m) {
    if (message_as<Ping>(m)->payload == 1) first_at = rig.sim.now();
    else second_at = rig.sim.now();
  });
  // Two 10 KB messages sent back to back: each needs ~1s on the wire, so
  // the second must arrive ~1s after the first (serialized), not together.
  for (int i = 1; i <= 2; ++i) {
    auto p = std::make_unique<Ping>();
    p->payload = i;
    p->bytes = 10000;
    rig.net.send(PeerId{1}, PeerId{2}, std::move(p));
  }
  rig.sim.run_until();
  EXPECT_GT(second_at - first_at, util::milliseconds(900));
}

TEST(Network, IdleUplinkAddsNoQueueing) {
  Rig rig;
  std::vector<util::SimTime> at;
  rig.attach(PeerId{1}, {0, 0}, [](PeerId, const Message&) {});
  rig.attach(PeerId{2}, {0, 1}, [&](PeerId, const Message&) {
    at.push_back(rig.sim.now());
  });
  rig.net.send(PeerId{1}, PeerId{2}, std::make_unique<Ping>());
  rig.sim.run_until();
  const auto t1 = at.at(0);
  // A second message sent long after the first drains sees the same delay.
  const auto sent2_at = rig.sim.now() + util::seconds(10);
  rig.sim.schedule_after(util::seconds(10), [&] {
    rig.net.send(PeerId{1}, PeerId{2}, std::make_unique<Ping>());
  });
  rig.sim.run_until();
  EXPECT_EQ(at.at(1) - sent2_at, t1);
}

TEST(Network, PartitionBlocksCrossIslandTraffic) {
  Rig rig;
  int got12 = 0, got13 = 0;
  rig.attach(PeerId{1}, {0, 0}, [](PeerId, const Message&) {});
  rig.attach(PeerId{2}, {10, 0}, [&](PeerId, const Message&) { ++got12; });
  rig.attach(PeerId{3}, {20, 0}, [&](PeerId, const Message&) { ++got13; });
  rig.net.isolate({PeerId{3}});
  EXPECT_TRUE(rig.net.partition_active());
  EXPECT_TRUE(rig.net.can_reach(PeerId{1}, PeerId{2}));
  EXPECT_FALSE(rig.net.can_reach(PeerId{1}, PeerId{3}));
  rig.net.send(PeerId{1}, PeerId{2}, std::make_unique<Ping>());
  rig.net.send(PeerId{1}, PeerId{3}, std::make_unique<Ping>());
  rig.sim.run_until();
  EXPECT_EQ(got12, 1);
  EXPECT_EQ(got13, 0);
  EXPECT_EQ(rig.net.stats().messages_partitioned, 1u);

  rig.net.heal_partition();
  rig.net.send(PeerId{1}, PeerId{3}, std::make_unique<Ping>());
  rig.sim.run_until();
  EXPECT_EQ(got13, 1);
}

TEST(Network, MultiGroupPartition) {
  Rig rig;
  int delivered = 0;
  for (std::uint64_t p = 1; p <= 4; ++p) {
    rig.attach(PeerId{p}, {static_cast<double>(p), 0},
               [&](PeerId, const Message&) { ++delivered; });
  }
  rig.net.set_partition({{PeerId{1}, PeerId{2}}, {PeerId{3}}});
  // Same island.
  rig.net.send(PeerId{1}, PeerId{2}, std::make_unique<Ping>());
  // Cross island (1 vs 2).
  rig.net.send(PeerId{1}, PeerId{3}, std::make_unique<Ping>());
  // Unlisted peer 4 is island 0: unreachable from island 1.
  rig.net.send(PeerId{1}, PeerId{4}, std::make_unique<Ping>());
  // Self-reach always allowed.
  rig.net.send(PeerId{4}, PeerId{4}, std::make_unique<Ping>());
  rig.sim.run_until();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(rig.net.stats().messages_partitioned, 2u);
}

TEST(Network, EstimateDelayMatchesShape) {
  Rig rig;
  LinkCapacity slow{1000, 1000};  // 1 KB/s
  rig.attach(PeerId{1}, {0, 0}, [](PeerId, const Message&) {}, slow);
  rig.attach(PeerId{2}, {0, 0}, [](PeerId, const Message&) {}, slow);
  const auto d = rig.net.estimate_delay(PeerId{1}, PeerId{2}, 1000);
  // ~1s transmission + ~1ms base latency
  EXPECT_GT(d, util::milliseconds(900));
  EXPECT_EQ(rig.net.estimate_delay(PeerId{1}, PeerId{1}, 1000), 0);
}

}  // namespace
}  // namespace p2prm::net

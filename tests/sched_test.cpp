#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "sched/processor.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace p2prm::sched {
namespace {

using util::milliseconds;
using util::seconds;

Job make_job(std::uint64_t id, util::SimTime release, util::SimTime deadline,
             double ops, double importance = 1.0) {
  Job j;
  j.id = util::JobId{id};
  j.task = util::TaskId{id};
  j.release = release;
  j.absolute_deadline = deadline;
  j.total_ops = ops;
  j.remaining_ops = ops;
  j.importance = importance;
  return j;
}

TEST(Job, RemainingTimeAndLaxity) {
  const Job j = make_job(1, 0, seconds(10), 5e6);
  EXPECT_EQ(remaining_time(j, 1e6), seconds(5));
  EXPECT_EQ(laxity(j, seconds(2), 1e6), seconds(3));
  EXPECT_LT(laxity(j, seconds(6), 1e6), 0);  // deadline unreachable
}

TEST(Policy, NamesRoundTrip) {
  for (Policy p : {Policy::LeastLaxity, Policy::EarliestDeadline, Policy::Fifo,
                   Policy::StaticImportance}) {
    EXPECT_EQ(policy_from_name(policy_name(p)), p);
  }
  EXPECT_THROW((void)policy_from_name("nope"), std::invalid_argument);
}

TEST(Policy, LlsSelectsMinimumLaxity) {
  auto policy = make_policy(Policy::LeastLaxity);
  // Same deadline; job with more remaining work has less laxity.
  std::vector<Job> ready{make_job(1, 0, seconds(10), 1e6),
                         make_job(2, 0, seconds(10), 8e6)};
  EXPECT_EQ(policy->select(ready, 0, 1e6), 1u);
}

TEST(Policy, EdfSelectsEarliestDeadline) {
  auto policy = make_policy(Policy::EarliestDeadline);
  std::vector<Job> ready{make_job(1, 0, seconds(10), 1e6),
                         make_job(2, 0, seconds(5), 1e6)};
  EXPECT_EQ(policy->select(ready, 0, 1e6), 1u);
}

TEST(Policy, FifoSelectsEarliestRelease) {
  auto policy = make_policy(Policy::Fifo);
  std::vector<Job> ready{make_job(1, seconds(2), seconds(10), 1e6),
                         make_job(2, seconds(1), seconds(50), 1e6)};
  EXPECT_EQ(policy->select(ready, seconds(3), 1e6), 1u);
}

TEST(Policy, WeightedLaxityTradesSlackForValue) {
  auto policy = make_policy(Policy::WeightedLaxity);
  // Job 1: laxity 4s, importance 1 -> key 4. Job 2: laxity 8s, importance
  // 4 -> key 2: the important job runs first despite more slack.
  std::vector<Job> ready{make_job(1, 0, seconds(5), 1e6, 1.0),
                         make_job(2, 0, seconds(9), 1e6, 4.0)};
  EXPECT_EQ(policy->select(ready, 0, 1e6), 1u);
  // With equal importance it degrades to plain LLS ordering.
  ready[1].importance = 1.0;
  EXPECT_EQ(policy->select(ready, 0, 1e6), 0u);
}

TEST(Policy, WeightedLaxityCrossoverIsFinite) {
  auto policy = make_policy(Policy::WeightedLaxity);
  const Job running = make_job(1, 0, seconds(20), 1e6, 1.0);
  const std::vector<Job> waiting{make_job(2, 0, seconds(22), 1e6, 2.0)};
  const auto check = policy->next_preemption_check(running, waiting, 0, 1e6);
  EXPECT_GT(check, 0);
  EXPECT_LT(check, seconds(30));
}

TEST(Processor, WeightedLaxityProtectsImportantUnderOverload) {
  // 130% load; importance split 1 vs 10. WLLS should miss far fewer of the
  // important jobs than plain LLS.
  auto run = [](Policy policy) {
    sim::Simulator sim(11);
    std::size_t important_missed = 0, important_total = 0;
    Processor cpu(sim, {.ops_per_second = 1e6, .policy = policy},
                  [&](const Job& j, JobStatus s) {
                    if (j.importance > 5.0) {
                      ++important_total;
                      if (s != JobStatus::Completed) ++important_missed;
                    }
                  });
    util::Rng rng(23);
    util::SimTime t = 0;
    for (int i = 0; i < 400; ++i) {
      t += util::from_seconds(rng.exponential(1.0 / 1.3));
      Job j = make_job(static_cast<std::uint64_t>(i), t,
                       t + util::from_seconds(rng.uniform(1.5, 6.0)),
                       rng.uniform(0.4e6, 1.6e6),
                       rng.bernoulli(0.3) ? 10.0 : 1.0);
      sim.schedule_at(t, [&cpu, j] { cpu.submit(j); });
    }
    sim.run_until();
    return important_total
               ? static_cast<double>(important_missed) / important_total
               : 0.0;
  };
  EXPECT_LT(run(Policy::WeightedLaxity), run(Policy::LeastLaxity));
}

TEST(Policy, StaticImportancePrefersImportant) {
  auto policy = make_policy(Policy::StaticImportance);
  std::vector<Job> ready{make_job(1, 0, seconds(5), 1e6, 1.0),
                         make_job(2, 0, seconds(50), 1e6, 9.0)};
  EXPECT_EQ(policy->select(ready, 0, 1e6), 1u);
}

TEST(Policy, LlsPredictsCrossover) {
  auto policy = make_policy(Policy::LeastLaxity);
  // Running job: deadline 20s, 1s work left at t=0 -> laxity 19s.
  const Job running = make_job(1, 0, seconds(20), 1e6);
  // Waiting: deadline 22s, 1s work -> laxity 21s now, crosses at t=2s.
  const std::vector<Job> waiting{make_job(2, 0, seconds(22), 1e6)};
  const auto check = policy->next_preemption_check(running, waiting, 0, 1e6);
  EXPECT_GE(check, seconds(2));
  EXPECT_LE(check, seconds(2) + milliseconds(2));
}

// ---- Processor -----------------------------------------------------------------

struct Collected {
  std::vector<std::pair<util::JobId, JobStatus>> finished;
};

struct Rig {
  sim::Simulator sim{1};
  Collected out;
  std::unique_ptr<Processor> cpu;

  explicit Rig(ProcessorConfig config = {}) {
    cpu = std::make_unique<Processor>(
        sim, config, [this](const Job& j, JobStatus s) {
          out.finished.emplace_back(j.id, s);
        });
  }
};

TEST(Processor, RunsSingleJobToCompletion) {
  Rig rig({.ops_per_second = 1e6, .policy = Policy::Fifo});
  rig.cpu->submit(make_job(1, 0, seconds(10), 2e6));
  rig.sim.run_until();
  ASSERT_EQ(rig.out.finished.size(), 1u);
  EXPECT_EQ(rig.out.finished[0].second, JobStatus::Completed);
  EXPECT_EQ(rig.sim.now(), seconds(2));
  EXPECT_EQ(rig.cpu->stats().completed_on_time, 1u);
  EXPECT_EQ(rig.cpu->busy_time(), seconds(2));
}

TEST(Processor, LateCompletionIsFlagged) {
  Rig rig({.ops_per_second = 1e6, .policy = Policy::Fifo});
  rig.cpu->submit(make_job(1, 0, seconds(1), 5e6));  // needs 5s, deadline 1s
  rig.sim.run_until();
  ASSERT_EQ(rig.out.finished.size(), 1u);
  EXPECT_EQ(rig.out.finished[0].second, JobStatus::CompletedLate);
  EXPECT_DOUBLE_EQ(rig.cpu->stats().miss_ratio(), 1.0);
}

TEST(Processor, EdfOrdersByDeadline) {
  Rig rig({.ops_per_second = 1e6, .policy = Policy::EarliestDeadline});
  rig.cpu->submit(make_job(1, 0, seconds(100), 1e6));
  rig.cpu->submit(make_job(2, 0, seconds(5), 1e6));
  rig.sim.run_until();
  ASSERT_EQ(rig.out.finished.size(), 2u);
  EXPECT_EQ(rig.out.finished[0].first, util::JobId{2});
  EXPECT_EQ(rig.out.finished[1].first, util::JobId{1});
}

TEST(Processor, PreemptionOnUrgentArrival) {
  Rig rig({.ops_per_second = 1e6, .policy = Policy::EarliestDeadline});
  rig.cpu->submit(make_job(1, 0, seconds(100), 10e6));  // long, lax
  rig.sim.schedule_at(seconds(1), [&] {
    rig.cpu->submit(make_job(2, seconds(1), seconds(3), 1e6));  // urgent
  });
  rig.sim.run_until();
  ASSERT_EQ(rig.out.finished.size(), 2u);
  EXPECT_EQ(rig.out.finished[0].first, util::JobId{2});
  EXPECT_EQ(rig.out.finished[0].second, JobStatus::Completed);
  // The long job resumed and finished with its full work done: 1+1+9 = 11s.
  EXPECT_EQ(rig.sim.now(), seconds(11));
}

TEST(Processor, LlsPreemptsAtLaxityCrossover) {
  Rig rig({.ops_per_second = 1e6, .policy = Policy::LeastLaxity});
  // A: 10s work, deadline 30 -> laxity 20. Runs first (lower laxity than B).
  // B: 1s work, deadline 22 -> laxity 21 at t=0, decays while waiting;
  // crosses A's constant 20 at t=1, so B must preempt and complete well
  // before its deadline even though A started first.
  rig.cpu->submit(make_job(1, 0, seconds(30), 10e6));
  rig.cpu->submit(make_job(2, 0, seconds(22), 1e6));
  rig.sim.run_until();
  ASSERT_EQ(rig.out.finished.size(), 2u);
  EXPECT_EQ(rig.out.finished[0].first, util::JobId{2});
  EXPECT_EQ(rig.out.finished[0].second, JobStatus::Completed);
  EXPECT_EQ(rig.out.finished[1].second, JobStatus::Completed);
  EXPECT_GT(rig.cpu->stats().preemptions, 0u);
}

TEST(Processor, FifoDoesNotPreempt) {
  Rig rig({.ops_per_second = 1e6, .policy = Policy::Fifo});
  rig.cpu->submit(make_job(1, 0, seconds(100), 10e6));
  rig.sim.schedule_at(seconds(1), [&] {
    rig.cpu->submit(make_job(2, seconds(1), seconds(3), 1e6));
  });
  rig.sim.run_until();
  ASSERT_EQ(rig.out.finished.size(), 2u);
  EXPECT_EQ(rig.out.finished[0].first, util::JobId{1});
  EXPECT_EQ(rig.out.finished[1].second, JobStatus::CompletedLate);
}

TEST(Processor, CancelQueuedAndRunning) {
  Rig rig({.ops_per_second = 1e6, .policy = Policy::Fifo});
  rig.cpu->submit(make_job(1, 0, seconds(100), 10e6));
  rig.cpu->submit(make_job(2, 0, seconds(100), 1e6));
  rig.sim.schedule_at(seconds(1), [&] {
    EXPECT_TRUE(rig.cpu->cancel(util::JobId{1}));   // running
    EXPECT_FALSE(rig.cpu->cancel(util::JobId{99})); // unknown
  });
  rig.sim.run_until();
  // Only job 2 finishes; no callback for the cancelled job.
  ASSERT_EQ(rig.out.finished.size(), 1u);
  EXPECT_EQ(rig.out.finished[0].first, util::JobId{2});
  EXPECT_EQ(rig.cpu->stats().cancelled, 1u);
  EXPECT_EQ(rig.sim.now(), seconds(2));  // 1s of job1 + 1s of job2
}

TEST(Processor, CancelAllSilences) {
  Rig rig({.ops_per_second = 1e6, .policy = Policy::Fifo});
  rig.cpu->submit(make_job(1, 0, seconds(10), 5e6));
  rig.cpu->submit(make_job(2, 0, seconds(10), 5e6));
  rig.sim.schedule_at(seconds(1), [&] { rig.cpu->cancel_all(); });
  rig.sim.run_until();
  EXPECT_TRUE(rig.out.finished.empty());
  EXPECT_EQ(rig.cpu->stats().cancelled, 2u);
}

TEST(Processor, DropHopelessMode) {
  Rig rig({.ops_per_second = 1e6,
           .policy = Policy::EarliestDeadline,
           .drop_hopeless_jobs = true});
  rig.cpu->submit(make_job(1, 0, seconds(10), 5e6));
  // Hopeless on arrival behind job 1: 5s queue + 6s work > 8s deadline.
  rig.cpu->submit(make_job(2, 0, seconds(8), 6e6));
  rig.sim.run_until();
  ASSERT_EQ(rig.out.finished.size(), 2u);
  bool saw_drop = false;
  for (const auto& [id, status] : rig.out.finished) {
    if (status == JobStatus::Dropped) saw_drop = true;
  }
  EXPECT_TRUE(saw_drop);
}

TEST(Processor, BacklogAndEstimates) {
  Rig rig({.ops_per_second = 1e6, .policy = Policy::Fifo});
  rig.cpu->submit(make_job(1, 0, seconds(100), 3e6));
  rig.cpu->submit(make_job(2, 0, seconds(100), 2e6));
  EXPECT_NEAR(rig.cpu->backlog_seconds(), 5.0, 1e-6);
  EXPECT_EQ(rig.cpu->queue_length(), 2u);
  const auto eta = rig.cpu->estimate_completion(1e6);
  EXPECT_EQ(eta, seconds(6));
  rig.sim.run_until(seconds(1));
  EXPECT_NEAR(rig.cpu->backlog_seconds(), 4.0, 1e-6);
}

TEST(Processor, UtilizationSweepMissRatioOrdering) {
  // Near saturation (but not hopelessly beyond it), deadline-aware policies
  // must beat FIFO on miss ratio.
  auto run = [](Policy policy) {
    sim::Simulator sim(3);
    std::size_t missed = 0;
    Processor cpu(sim, {.ops_per_second = 1e6, .policy = policy},
                  [&](const Job&, JobStatus s) {
                    if (s != JobStatus::Completed) ++missed;
                  });
    util::Rng rng(17);
    std::uint64_t id = 0;
    // ~70% load with a wide deadline spread: queues form transiently and
    // ordering decides which of the queued jobs make their deadlines.
    util::SimTime t = 0;
    for (int i = 0; i < 400; ++i) {
      t += util::from_seconds(rng.exponential(1.0 / 0.7));
      Job j = make_job(++id, t, t + util::from_seconds(rng.uniform(1.0, 8.0)),
                       rng.uniform(0.4e6, 1.6e6));
      sim.schedule_at(t, [&cpu, j] { cpu.submit(j); });
    }
    sim.run_until();
    return static_cast<double>(missed) / 400.0;
  };
  const double fifo = run(Policy::Fifo);
  const double edf = run(Policy::EarliestDeadline);
  const double lls = run(Policy::LeastLaxity);
  EXPECT_LT(edf, fifo);
  EXPECT_LT(lls, fifo);
}

TEST(Processor, SetPolicyMidStreamReordersQueue) {
  Rig rig({.ops_per_second = 1e6, .policy = Policy::Fifo});
  rig.cpu->submit(make_job(1, 0, seconds(100), 5e6));  // first in FIFO order
  rig.cpu->submit(make_job(2, 0, seconds(3), 1e6));    // urgent
  rig.sim.schedule_at(seconds(1), [&] {
    rig.cpu->set_policy(Policy::EarliestDeadline);
    EXPECT_EQ(rig.cpu->policy(), Policy::EarliestDeadline);
  });
  rig.sim.run_until();
  ASSERT_EQ(rig.out.finished.size(), 2u);
  // After the switch the urgent job jumps the queue and makes its deadline.
  EXPECT_EQ(rig.out.finished[0].first, util::JobId{2});
  EXPECT_EQ(rig.out.finished[0].second, JobStatus::Completed);
}

// ---- LLS vs exhaustive-ordering oracle -----------------------------------

// Does any of the n! non-preemptive orderings meet every deadline? Uses the
// same nanosecond rounding as the Processor (remaining_time) so the oracle
// and the executed schedule agree on completion instants.
bool some_ordering_feasible(const std::vector<Job>& jobs,
                            double ops_per_second) {
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  do {
    util::SimTime t = 0;
    bool ok = true;
    for (const std::size_t i : order) {
      t += remaining_time(jobs[i], ops_per_second);
      if (t > jobs[i].absolute_deadline) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  } while (std::next_permutation(order.begin(), order.end()));
  return false;
}

TEST(Policy, LlsMeetsDeadlinesWheneverSomeOrderingDoes) {
  // Optimality check against a brute-force oracle: for every random job
  // set (n <= 8, all released at t=0) where SOME ordering meets all
  // deadlines, preemptive LLS on the Processor must miss none. Job sizes
  // and deadlines are whole milliseconds so the 1 ms laxity-hysteresis
  // quantum cannot flip a feasible schedule into a miss.
  constexpr double kOps = 1e6;  // 1000 ops == 1 ms
  std::size_t feasible_sets = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    util::Rng rng(seed);
    const std::size_t n = 2 + rng.below(7);  // 2..8 jobs
    std::vector<Job> jobs;
    for (std::size_t i = 0; i < n; ++i) {
      // 10..200 ms of work, deadline 50 ms..2 s.
      jobs.push_back(make_job(i, 0,
                              util::milliseconds(50 + rng.below(1950)),
                              static_cast<double>(10 + rng.below(190)) * 1e3));
    }
    if (!some_ordering_feasible(jobs, kOps)) continue;
    ++feasible_sets;

    sim::Simulator sim(seed);
    std::size_t missed = 0;
    Processor cpu(sim, {.ops_per_second = kOps, .policy = Policy::LeastLaxity},
                  [&](const Job&, JobStatus s) {
                    if (s != JobStatus::Completed) ++missed;
                  });
    for (const auto& j : jobs) cpu.submit(j);
    sim.run_until();
    EXPECT_EQ(missed, 0u) << "seed " << seed << ": oracle found a feasible "
                          << n << "-job ordering but LLS missed " << missed;
  }
  // The generator must actually exercise the property.
  EXPECT_GE(feasible_sets, 10u);
}

TEST(Policy, LlsSelectionMinimizesLaxityAtEveryDispatch) {
  // Laxity-ordering invariant: at every dispatch instant the selected job's
  // laxity is within the hysteresis quantum (1 ms) of the ready-set
  // minimum. Driven as a non-preemptive run-to-completion loop so each
  // selection is observable.
  constexpr double kOps = 1e6;
  const auto policy = make_policy(Policy::LeastLaxity);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(seed);
    const std::size_t n = 2 + rng.below(7);
    std::vector<Job> ready;
    for (std::size_t i = 0; i < n; ++i) {
      ready.push_back(make_job(i, 0,
                               util::milliseconds(50 + rng.below(1950)),
                               static_cast<double>(10 + rng.below(190)) * 1e3));
    }
    util::SimTime now = 0;
    while (!ready.empty()) {
      const std::size_t pick = policy->select(ready, now, kOps);
      ASSERT_LT(pick, ready.size());
      util::SimDuration min_laxity = laxity(ready[0], now, kOps);
      for (const auto& j : ready) {
        min_laxity = std::min(min_laxity, laxity(j, now, kOps));
      }
      EXPECT_LE(laxity(ready[pick], now, kOps),
                min_laxity + util::milliseconds(1))
          << "seed " << seed << " at t=" << now;
      now += remaining_time(ready[pick], kOps);
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
}

}  // namespace
}  // namespace p2prm::sched

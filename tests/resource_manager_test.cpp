// Resource Manager behaviour through a live (but tiny) System: join
// decisions and domain consolidation, backup designation, redirect
// targeting via gossip summaries, reassignment bounds and importance-gated
// admission.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "media/catalog.hpp"
#include "workload/arrivals.hpp"
#include "workload/heterogeneity.hpp"

namespace p2prm {
namespace {

using namespace core;
using namespace workload;

struct World {
  media::Catalog catalog = media::ladder_catalog();
  System system;
  util::Rng rng{55};
  ObjectPopulation population;
  PeerFactory factory;

  explicit World(SystemConfig config)
      : system(config),
        population(catalog, PopulationConfig{}, system, rng),
        factory(make_peer_factory(catalog, population, HeterogeneityConfig{},
                                  ProvisionConfig{}, system, rng)) {}
};

SystemConfig base_config() {
  SystemConfig config;
  config.seed = 5;
  return config;
}

TEST(ResourceManager, DomainsConsolidateInsteadOfFragmenting) {
  auto config = base_config();
  config.max_domain_size = 10;
  config.gossip.period = util::seconds(1);
  World world(config);
  bootstrap_network(world.system, world.factory, 35, util::seconds(10));
  const auto domains = world.system.domains();
  // 35 peers at max 10/domain: ideally 4 domains; tolerate one extra from
  // gossip lag, but not the one-domain-per-qualified-joiner explosion.
  EXPECT_GE(domains.size(), 4u);
  EXPECT_LE(domains.size(), 6u);
  for (const auto& d : domains) EXPECT_LE(d.members, 10u);
}

TEST(ResourceManager, HeartbeatsCarryBackupDesignation) {
  World world(base_config());
  const auto ids = bootstrap_network(world.system, world.factory, 8);
  world.system.run_for(util::seconds(3));
  const auto rm_id = world.system.resource_manager_ids().at(0);
  auto* rm = world.system.peer(rm_id)->resource_manager();
  const auto backup = rm->info().domain().backup();
  ASSERT_TRUE(backup.has_value());
  // Every member learned the same designated backup via heartbeats: the
  // backup itself holds a snapshot copy.
  std::size_t with_copy = 0;
  for (const auto id : ids) {
    if (id == *backup) ++with_copy;
  }
  EXPECT_EQ(with_copy, 1u);
}

TEST(ResourceManager, JoinStatsAccount) {
  auto config = base_config();
  config.max_domain_size = 6;
  World world(config);
  bootstrap_network(world.system, world.factory, 14, util::seconds(8));
  std::uint64_t accepted = 0, promoted = 0, redirected = 0;
  for (const auto id : world.system.resource_manager_ids()) {
    const auto& s = world.system.peer(id)->resource_manager()->stats();
    accepted += s.joins_accepted;
    promoted += s.joins_promoted;
    redirected += s.joins_redirected;
  }
  // Every peer entered the overlay exactly one way: accepted into an
  // existing domain, promoted to found one, or the original founder.
  EXPECT_EQ(accepted + promoted + 1 /*founder*/, 14u);
  EXPECT_GE(accepted, 10u);
  EXPECT_GE(promoted + redirected, 1u);
}

TEST(ResourceManager, RedirectTargetsDomainHoldingTheObject) {
  auto config = base_config();
  config.max_domain_size = 6;
  config.gossip.period = util::seconds(1);
  World world(config);
  bootstrap_network(world.system, world.factory, 18, util::seconds(12));
  const auto domains = world.system.domains();
  ASSERT_GE(domains.size(), 2u);

  auto* rm0 = world.system.peer(domains[0].rm)->resource_manager();
  auto* rm1 = world.system.peer(domains[1].rm)->resource_manager();
  // An object domain 1 has and domain 0 lacks.
  util::ObjectId remote = util::ObjectId::invalid();
  for (const auto obj : rm1->info().all_objects()) {
    if (rm0->info().locations(obj) == nullptr) {
      remote = obj;
      break;
    }
  }
  ASSERT_TRUE(remote.valid());
  const auto* locs = rm1->info().locations(remote);
  util::PeerId requester = util::PeerId::invalid();
  for (const auto id : rm0->info().domain().member_ids()) {
    if (id != domains[0].rm) requester = id;
  }

  QoSRequirements q;
  q.object = remote;
  q.acceptable_formats = {locs->front().object.format};
  q.deadline = util::minutes(3);
  const auto task = world.system.submit_task(requester, q);
  world.system.run_for(util::minutes(4));

  const auto* record = world.system.ledger().record(task);
  EXPECT_EQ(record->status, TaskStatus::Completed)
      << "reason: " << record->reason;
  EXPECT_GE(rm0->stats().redirects_out, 1u);
  EXPECT_GE(rm1->stats().queries_redirected_in, 1u);
}

TEST(ResourceManager, ReassignmentBoundedPerTask) {
  auto config = base_config();
  config.max_reassignments_per_task = 2;
  World world(config);
  bootstrap_network(world.system, world.factory, 16);
  RequestConfig rc;
  RequestSynthesizer synth(world.catalog, world.population, rc);
  WorkloadDriver driver(world.system,
                        std::make_unique<PoissonArrivals>(1.5), synth);
  driver.start(world.system.simulator().now() + util::seconds(60));
  world.system.run_for(util::seconds(150));
  // No task may exceed the reassignment cap.
  for (const auto id : world.system.resource_manager_ids()) {
    auto* rm = world.system.peer(id)->resource_manager();
    for (const auto tid : rm->info().running_task_ids()) {
      const auto* t = rm->info().task(tid);
      EXPECT_LE(t->recompositions, 2 + 1)  // +1 possible failure recovery
          << "task " << tid;
    }
  }
}

TEST(ResourceManager, ImportanceGateRejectsCheapTasksWhenBusy) {
  auto config = base_config();
  config.min_importance_when_busy = 5.0;
  config.busy_utilization = 0.0;  // gate always armed (test determinism)
  config.redirect_across_domains = false;
  World world(config);
  const auto ids = bootstrap_network(world.system, world.factory, 8);

  const auto& object = world.population.at(0);
  QoSRequirements low;
  low.object = object.id;
  low.acceptable_formats = {object.format};
  low.deadline = util::minutes(2);
  low.importance = 1.0;
  const auto rejected_task = world.system.submit_task(ids.back(), low);

  QoSRequirements high = low;
  high.importance = 9.0;
  const auto admitted_task = world.system.submit_task(ids.back(), high);

  world.system.run_for(util::minutes(3));
  EXPECT_EQ(world.system.ledger().record(rejected_task)->status,
            TaskStatus::Rejected);
  EXPECT_EQ(world.system.ledger().record(admitted_task)->status,
            TaskStatus::Completed);
}

TEST(ResourceManager, QosRelaxationRescuesALateTask) {
  // §4.5: "they may ... relax their deadlines to cope with congested
  // networks". A task submitted with an unmeetable deadline gets relaxed
  // mid-flight; delivery is then judged against the new deadline.
  auto config = base_config();
  config.admission_control = false;  // let the doomed plan through
  World world(config);
  const auto ids = bootstrap_network(world.system, world.factory, 8);

  const auto& object = world.population.at(0);
  QoSRequirements q;
  q.object = object.id;
  q.acceptable_formats = {object.format};
  // Tight but not allocator-infeasible: direct delivery estimate is small,
  // so the plan is accepted, then reality (transfer time) makes it late.
  q.deadline = util::milliseconds(600);
  const auto task = world.system.submit_task(ids.back(), q);
  world.system.run_for(util::milliseconds(150));
  ASSERT_TRUE(world.system.update_task_deadline(task, util::minutes(2)));
  world.system.run_for(util::minutes(3));

  const auto* record = world.system.ledger().record(task);
  ASSERT_EQ(record->status, TaskStatus::Completed);
  EXPECT_FALSE(record->missed_deadline)
      << "the relaxed deadline should govern the verdict";
  EXPECT_EQ(record->deadline, util::minutes(2));
}

TEST(ResourceManager, QosTighteningTriggersReplanAttempt) {
  World world(base_config());
  const auto ids = bootstrap_network(world.system, world.factory, 8);
  const auto rm_id = world.system.resource_manager_ids().at(0);

  const auto& object = world.population.at(0);
  QoSRequirements q;
  q.object = object.id;
  q.acceptable_formats = {object.format};
  q.deadline = util::minutes(5);
  const auto task = world.system.submit_task(ids.back(), q);
  world.system.run_for(util::milliseconds(100));
  ASSERT_TRUE(world.system.update_task_deadline(task, util::minutes(1)));
  world.system.run_for(util::seconds(2));

  auto* rm = world.system.peer(rm_id)->resource_manager();
  EXPECT_GE(rm->stats().qos_updates, 1u);
  // The RM's record carries the tightened deadline (if still running) or
  // the task already finished under it.
  const auto* active = rm->info().task(task);
  if (active != nullptr) {
    EXPECT_EQ(active->q.deadline, util::minutes(1));
  }
  world.system.run_for(util::minutes(3));
  EXPECT_EQ(world.system.ledger().record(task)->status, TaskStatus::Completed);
}

TEST(ResourceManager, AdaptiveReportPeriodFollowsDeadlines) {
  // §4.4: "The application QoS requirements determine the appropriate
  // update frequency." With a tight-deadline task running, heartbeats
  // announce a short report period and members actually report faster.
  auto config = base_config();
  config.adaptive_report_period = true;
  config.report_period = util::seconds(2);
  config.report_period_min = util::milliseconds(100);
  config.member_failure_timeout = util::seconds(10);
  World world(config);
  const auto ids = bootstrap_network(world.system, world.factory, 6);

  auto member_period = [&]() -> util::SimDuration {
    for (const auto id : ids) {
      auto* node = world.system.peer(id);
      if (node->resource_manager() == nullptr) {
        return node->current_report_period();
      }
    }
    return -1;
  };

  // Idle: members sit at the configured default.
  world.system.run_for(util::seconds(5));
  EXPECT_EQ(member_period(), util::seconds(2));

  // A running task with a 30 s deadline: as it executes, headroom shrinks
  // and the RM announces progressively faster reporting.
  const auto& object = world.population.at(0);
  QoSRequirements q;
  q.object = object.id;
  q.acceptable_formats = {object.format};
  q.deadline = util::seconds(30);
  const auto task = world.system.submit_task(ids.back(), q);
  world.system.run_for(util::seconds(3));
  if (world.system.ledger().record(task)->status == TaskStatus::Pending) {
    const auto during = member_period();
    EXPECT_LT(during, util::seconds(2));
    EXPECT_GE(during, util::milliseconds(100));
  }
  // After completion the RM relaxes back to the default.
  world.system.run_for(util::minutes(2));
  EXPECT_EQ(member_period(), util::seconds(2));
}

TEST(ResourceManager, QosUpdateForUnknownTaskIgnored) {
  World world(base_config());
  bootstrap_network(world.system, world.factory, 4);
  EXPECT_FALSE(
      world.system.update_task_deadline(util::TaskId{999}, util::minutes(1)));
}

TEST(ResourceManager, EstimateReachesLedger) {
  World world(base_config());
  const auto ids = bootstrap_network(world.system, world.factory, 8);
  // Force a real transcode (a 0-hop local delivery legitimately estimates
  // ~0): add a dedicated host for the exact conversion.
  const auto& object = world.population.at(0);
  media::MediaFormat target = object.format;
  target.bitrate_kbps = object.format.bitrate_kbps / 2;
  overlay::PeerSpec spec;
  spec.capacity_ops_per_s = 60e6;
  PeerInventory inv;
  inv.services = {{world.system.next_service_id(),
                   media::TranscoderType{object.format, target}}};
  world.system.add_peer(spec, std::move(inv));
  world.system.run_for(util::seconds(2));

  QoSRequirements q;
  q.object = object.id;
  q.acceptable_formats = {target};
  q.deadline = util::minutes(2);
  const auto task = world.system.submit_task(ids.front(), q);
  world.system.run_for(util::minutes(3));
  const auto* record = world.system.ledger().record(task);
  ASSERT_EQ(record->status, TaskStatus::Completed);
  EXPECT_GT(record->estimated_execution, 0);
  // The estimate is an honest forecast: same order of magnitude as the
  // realized response time.
  const double ratio =
      static_cast<double>(record->response_time()) /
      static_cast<double>(record->estimated_execution);
  EXPECT_GT(ratio, 0.1);
  EXPECT_LT(ratio, 10.0);
}

}  // namespace
}  // namespace p2prm

#include <gtest/gtest.h>

#include <set>

#include "core/system.hpp"
#include "media/catalog.hpp"
#include "workload/arrivals.hpp"
#include "workload/churn.hpp"
#include "workload/heterogeneity.hpp"
#include "workload/requests.hpp"
#include "workload/streaming.hpp"

namespace p2prm::workload {
namespace {

using core::System;
using core::SystemConfig;

struct Ctx {
  media::Catalog catalog = media::ladder_catalog();
  System system{SystemConfig{}};
  util::Rng rng{77};
};

TEST(Heterogeneity, HomogeneousIsConstant) {
  Ctx ctx;
  HeterogeneityConfig config;
  config.distribution = CapacityDistribution::Homogeneous;
  for (int i = 0; i < 10; ++i) {
    const auto spec = draw_peer_spec(config, ctx.rng, 0);
    EXPECT_DOUBLE_EQ(spec.capacity_ops_per_s, config.mean_capacity_ops);
  }
}

TEST(Heterogeneity, DistributionsHitTargetMean) {
  Ctx ctx;
  for (auto dist : {CapacityDistribution::Uniform, CapacityDistribution::Bimodal,
                    CapacityDistribution::Pareto}) {
    HeterogeneityConfig config;
    config.distribution = dist;
    util::RunningStats stats;
    for (int i = 0; i < 50000; ++i) {
      stats.add(draw_peer_spec(config, ctx.rng, 0).capacity_ops_per_s);
    }
    EXPECT_NEAR(stats.mean() / config.mean_capacity_ops, 1.0, 0.12)
        << capacity_distribution_name(dist);
    EXPECT_GE(stats.min(), config.min_capacity_ops);
  }
}

TEST(Heterogeneity, ParetoIsHeavierTailedThanUniform) {
  Ctx ctx;
  auto p99 = [&](CapacityDistribution dist) {
    HeterogeneityConfig config;
    config.distribution = dist;
    util::Samples s;
    for (int i = 0; i < 20000; ++i) {
      s.add(draw_peer_spec(config, ctx.rng, 0).capacity_ops_per_s);
    }
    return s.quantile(0.99);
  };
  EXPECT_GT(p99(CapacityDistribution::Pareto),
            p99(CapacityDistribution::Uniform) * 1.5);
}

TEST(Heterogeneity, UptimeHistoryInThePast) {
  Ctx ctx;
  HeterogeneityConfig config;
  const auto spec = draw_peer_spec(config, ctx.rng, util::seconds(100));
  EXPECT_LE(spec.online_since, util::seconds(100));
}

TEST(Population, CoverageThenReplication) {
  Ctx ctx;
  PopulationConfig pop;
  pop.object_count = 10;
  ObjectPopulation population(ctx.catalog, pop, ctx.system, ctx.rng);
  EXPECT_EQ(population.size(), 10u);
  // First 10 unhosted draws cover every object exactly once.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10; ++i) {
    const auto* obj = population.next_unhosted();
    ASSERT_NE(obj, nullptr);
    seen.insert(obj->id.value());
  }
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(population.next_unhosted(), nullptr);
}

TEST(Population, SourceFormatsRespectMinimumBitrate) {
  Ctx ctx;
  PopulationConfig pop;
  pop.source_min_bitrate_kbps = 512;
  ObjectPopulation population(ctx.catalog, pop, ctx.system, ctx.rng);
  for (std::size_t i = 0; i < population.size(); ++i) {
    EXPECT_GE(population.at(i).format.bitrate_kbps, 512u);
  }
}

TEST(Provision, InventoryHasDistinctServices) {
  Ctx ctx;
  PopulationConfig pop;
  ObjectPopulation population(ctx.catalog, pop, ctx.system, ctx.rng);
  ProvisionConfig prov;
  prov.services_per_peer = 6;
  const auto inv =
      provision_inventory(ctx.catalog, population, prov, ctx.system, ctx.rng);
  EXPECT_EQ(inv.services.size(), 6u);
  std::set<std::pair<media::MediaFormat, media::MediaFormat>> types;
  for (const auto& s : inv.services) {
    types.insert({s.type.input, s.type.output});
  }
  EXPECT_EQ(types.size(), 6u);  // no duplicate conversion types
}

TEST(Requests, AcceptableFormatsAreSensibleAndNearby) {
  Ctx ctx;
  PopulationConfig pop;
  ObjectPopulation population(ctx.catalog, pop, ctx.system, ctx.rng);
  RequestConfig rc;
  rc.passthrough_probability = 0.0;
  RequestSynthesizer synth(ctx.catalog, population, rc);
  for (int i = 0; i < 200; ++i) {
    const auto q = synth.draw(ctx.rng);
    ASSERT_FALSE(q.acceptable_formats.empty());
    ASSERT_LE(q.acceptable_formats.size(), rc.max_acceptable_formats);
    const auto* locs = [&]() -> const media::MediaObject* {
      for (std::size_t j = 0; j < population.size(); ++j) {
        if (population.at(j).id == q.object) return &population.at(j);
      }
      return nullptr;
    }();
    ASSERT_NE(locs, nullptr);
    for (const auto& f : q.acceptable_formats) {
      EXPECT_TRUE(media::is_sensible_conversion(locs->format, f) ||
                  f == locs->format);
    }
    EXPECT_GT(q.deadline, 0);
    EXPECT_GE(q.importance, rc.min_importance);
    EXPECT_LE(q.importance, rc.max_importance);
  }
}

TEST(Requests, DeadlineScalesWithTightness) {
  Ctx ctx;
  PopulationConfig pop;
  ObjectPopulation population(ctx.catalog, pop, ctx.system, ctx.rng);
  RequestConfig tight;
  tight.min_deadline_tightness = 1.0;
  tight.max_deadline_tightness = 1.0;
  RequestConfig loose;
  loose.min_deadline_tightness = 10.0;
  loose.max_deadline_tightness = 10.0;
  RequestSynthesizer tight_synth(ctx.catalog, population, tight);
  RequestSynthesizer loose_synth(ctx.catalog, population, loose);
  const auto& obj = population.at(0);
  const auto qt = tight_synth.draw_for(obj, ctx.rng);
  const auto ql = loose_synth.draw_for(obj, ctx.rng);
  EXPECT_NEAR(static_cast<double>(ql.deadline) / static_cast<double>(qt.deadline),
              10.0, 0.01);
}

TEST(Arrivals, PoissonMeanRate) {
  PoissonArrivals arrivals(4.0);
  util::Rng rng(5);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += arrivals.next_interarrival(rng);
  EXPECT_NEAR(total / n, 0.25, 0.01);
  EXPECT_THROW(PoissonArrivals(0.0), std::invalid_argument);
}

TEST(Arrivals, MmppMeanBetweenPhases) {
  MmppArrivals arrivals(1.0, 10.0, 10.0, 10.0);
  util::Rng rng(6);
  double total = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) total += arrivals.next_interarrival(rng);
  const double rate = n / total;
  EXPECT_GT(rate, 1.5);  // faster than calm alone
  EXPECT_LT(rate, 9.0);  // slower than burst alone
}

TEST(Arrivals, MmppIsBurstier) {
  // Coefficient of variation of interarrivals must exceed Poisson's 1.0.
  MmppArrivals mmpp(0.5, 20.0, 5.0, 1.0);
  util::Rng rng(7);
  util::RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(mmpp.next_interarrival(rng));
  const double cv = stats.stddev() / stats.mean();
  EXPECT_GT(cv, 1.2);
}

TEST(Churn, StatsTrackDepartures) {
  media::Catalog catalog = media::ladder_catalog();
  System system{SystemConfig{}};
  util::Rng rng{3};
  PopulationConfig pop;
  ObjectPopulation population(catalog, pop, system, rng);
  auto factory = make_peer_factory(catalog, population, HeterogeneityConfig{},
                                   ProvisionConfig{}, system, rng);
  bootstrap_network(system, factory, 10);

  ChurnConfig config;
  config.mean_session_s = 10.0;
  config.respawn = true;
  config.mean_offline_s = 5.0;
  ChurnDriver churn(system, factory, config);
  churn.track_all_alive();
  system.run_for(util::seconds(60));
  churn.stop();
  EXPECT_GT(churn.stats().departures, 3u);
  EXPECT_GT(churn.stats().respawns, 0u);
  EXPECT_GT(system.alive_count(), 2u);
}

TEST(Streaming, PlanIsDeterministicPerSeed) {
  const media::Catalog catalog = media::ladder_catalog();
  StreamingConfig cfg;
  cfg.seed = 31;
  cfg.channels = 3;
  cfg.viewers = 15;
  cfg.flash_crowd = 12;
  const std::vector<util::PeerId> sources{util::PeerId{1}, util::PeerId{2}};
  std::vector<util::PeerId> sinks;
  for (std::uint64_t i = 0; i < 10; ++i) sinks.push_back(util::PeerId{100 + i});

  const StreamPlan a = StreamingScenario(catalog, cfg).build(sources, sinks);
  const StreamPlan b = StreamingScenario(catalog, cfg).build(sources, sinks);
  EXPECT_EQ(a, b);  // full plan: channels, viewers, timings
  EXPECT_EQ(a.digest(), b.digest());

  // The chunk schedule is part of the plan: same seed, same schedule.
  ASSERT_EQ(a.channels.size(), cfg.channels);
  for (const ChannelPlan& ch : a.channels) {
    EXPECT_EQ(ch.chunk_count,
              static_cast<std::uint32_t>(cfg.live_window / cfg.chunk_period));
    EXPECT_EQ(ch.start, 0);
  }

  StreamingConfig other = cfg;
  other.seed = 32;
  const StreamPlan c = StreamingScenario(catalog, other).build(sources, sinks);
  EXPECT_NE(a.digest(), c.digest());
}

TEST(Streaming, GeneratedPlansAreFeasibleAndFlashCrowdIsSeeded) {
  const media::Catalog catalog = media::ladder_catalog();
  StreamingConfig cfg;
  cfg.seed = 9;
  cfg.channels = 2;
  cfg.viewers = 20;
  cfg.flash_crowd = 16;
  const std::vector<util::PeerId> sources{util::PeerId{5}};
  const std::vector<util::PeerId> sinks{util::PeerId{50}, util::PeerId{51}};
  const StreamPlan plan = StreamingScenario(catalog, cfg).build(sources, sinks);

  // build() validates: every viewer target is reachable from its channel
  // feed, so no-path pairs cannot leave the generator.
  EXPECT_NO_THROW(StreamingScenario::validate(catalog, plan));
  for (const ViewerPlan& v : plan.viewers) {
    EXPECT_TRUE(StreamingScenario::format_reachable(
        catalog, plan.channels[v.channel].source_format, v.target));
    EXPECT_LT(v.join, v.leave);
    EXPECT_LE(v.leave, cfg.live_window);
  }

  // The flash crowd: exactly flash_crowd extra viewers, all on one hot
  // channel, joining within [flash_at, flash_at + flash_spread).
  std::uint32_t flash = 0;
  std::set<std::uint32_t> flash_channels;
  for (const ViewerPlan& v : plan.viewers) {
    if (!v.flash) continue;
    ++flash;
    flash_channels.insert(v.channel);
    EXPECT_GE(v.join, cfg.flash_at);
    EXPECT_LT(v.join, cfg.flash_at + cfg.flash_spread);
  }
  EXPECT_EQ(flash, cfg.flash_crowd);
  EXPECT_EQ(flash_channels.size(), 1u);
  EXPECT_EQ(plan.viewers.size(), std::size_t{cfg.viewers} + cfg.flash_crowd);
}

}  // namespace
}  // namespace p2prm::workload

// Codec round-trip property test over the production wire registry.
//
// For every entry in core::wire_registry() a randomized generator builds
// message instances, and the test pins the three codec contracts the
// socket transport depends on:
//
//   1. encode_frame() output size == Message::wire_size() +
//      kFrameCrcBytes exactly (the sim Network charges transmission for
//      wire_size() bytes — the CRC-32C trailer is a socket-wire concern
//      that rides inside the envelope allowance; see net/wire.hpp),
//   2. decode(encode(m)) re-encodes byte-identically (lossless codec),
//   3. truncated bodies decode to nullptr, never UB (a corrupt or hostile
//      stream drops frames instead of taking the process down),
//   4. corrupting any 1-4 bits/bytes of a valid frame is rejected by a
//      receiver-side gate (length sanity or CRC) before any decode runs.
//
// The generator table is keyed by WireType and checked for completeness
// against the registry, so adding a message type without a generator here
// fails the suite instead of silently shipping an unfuzzed codec.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/info_base.hpp"
#include "core/messages.hpp"
#include "core/wire_registry.hpp"
#include "gossip/gossip_engine.hpp"
#include "gossip/summary.hpp"
#include "net/message.hpp"
#include "net/wire.hpp"
#include "overlay/domain.hpp"
#include "overlay/membership.hpp"
#include "util/rng.hpp"

namespace {

using namespace p2prm;

// ---- randomized field builders ---------------------------------------------

media::MediaFormat rnd_format(util::Rng& rng) {
  static constexpr media::Resolution kLadder[] = {
      media::kRes800x600, media::kRes640x480, media::kRes320x240,
      media::kRes176x144};
  media::MediaFormat f;
  f.codec = static_cast<media::Codec>(rng.below(4));
  f.resolution = kLadder[rng.below(4)];
  f.bitrate_kbps = static_cast<std::uint32_t>(rng.uniform_int(16, 2048));
  return f;
}

media::TranscoderType rnd_transcoder(util::Rng& rng) {
  return media::TranscoderType{rnd_format(rng), rnd_format(rng)};
}

media::MediaObject rnd_object(util::Rng& rng) {
  media::MediaObject o;
  o.id = util::ObjectId{rng.below(1u << 20)};
  o.name = "obj-" + std::to_string(rng.below(1000));
  o.format = rnd_format(rng);
  o.duration_s = rng.uniform(0.5, 30.0);
  o.content_hash = rng.next();
  return o;
}

overlay::PeerSpec rnd_spec(util::Rng& rng) {
  overlay::PeerSpec s;
  s.id = util::PeerId{rng.below(1u << 16)};
  s.capacity_ops_per_s = rng.uniform(10e6, 200e6);
  s.link.uplink_bytes_per_s = rng.uniform(1e5, 1e7);
  s.link.downlink_bytes_per_s = rng.uniform(1e5, 1e7);
  s.online_since = rng.uniform_int(-3600, 3600) * util::seconds(1);
  return s;
}

std::vector<overlay::RmInfo> rnd_rms(util::Rng& rng) {
  std::vector<overlay::RmInfo> rms(rng.below(5));
  for (auto& r : rms) {
    r.domain = util::DomainId{rng.below(64)};
    r.rm = util::PeerId{rng.below(1u << 16)};
  }
  return rms;
}

core::QoSRequirements rnd_qos(util::Rng& rng) {
  core::QoSRequirements q;
  q.object = util::ObjectId{rng.below(1u << 20)};
  q.acceptable_formats.resize(1 + rng.below(4));
  for (auto& f : q.acceptable_formats) f = rnd_format(rng);
  q.deadline = util::seconds(static_cast<std::int64_t>(rng.uniform_int(1, 300)));
  q.importance = rng.uniform(0.1, 10.0);
  return q;
}

core::HopSpec rnd_hop_spec(util::Rng& rng) {
  core::HopSpec h;
  h.task = util::TaskId{rng.below(1u << 20)};
  h.hop_index = rng.below(4);
  h.service = util::ServiceId{rng.below(1u << 20)};
  h.type = rnd_transcoder(rng);
  h.rm = util::PeerId{rng.below(1u << 16)};
  h.prev_peer = util::PeerId{rng.below(1u << 16)};
  h.next_peer = util::PeerId{rng.below(1u << 16)};
  h.next_is_sink = rng.bernoulli(0.5);
  h.object = util::ObjectId{rng.below(1u << 20)};
  h.media_seconds = rng.uniform(1.0, 30.0);
  h.absolute_deadline = rng.uniform_int(0, 1000) * util::seconds(1);
  h.importance = rng.uniform(0.1, 10.0);
  return h;
}

gossip::DomainSummary rnd_summary(util::Rng& rng) {
  gossip::DomainSummary s;
  s.domain = util::DomainId{rng.below(64)};
  s.resource_manager = util::PeerId{rng.below(1u << 16)};
  s.version = rng.next();
  s.peer_count = rng.below(100);
  s.total_capacity_ops = rng.uniform(1e6, 1e9);
  s.total_load_ops = rng.uniform(0.0, 1e9);
  for (std::uint64_t i = rng.below(8); i > 0; --i) s.objects.insert(rng.next());
  for (std::uint64_t i = rng.below(8); i > 0; --i) s.services.insert(rng.next());
  if (rng.bernoulli(0.5)) {
    gossip::DomainAggregate agg;
    for (std::uint64_t i = 1 + rng.below(6); i > 0; --i) {
      const double cap = rng.uniform(10e6, 200e6);
      const double load = rng.uniform(0.0, cap);
      agg.add_peer(cap, load, load / cap);
    }
    s.aggregate = agg;
  }
  return s;
}

core::InfoBaseSnapshot rnd_snapshot(util::Rng& rng) {
  core::InfoBaseSnapshot snap;
  snap.domain = overlay::Domain(util::DomainId{rng.below(64)},
                                util::PeerId{rng.below(256)});
  for (std::uint64_t i = rng.below(4); i > 0; --i) {
    snap.domain.add_member(rnd_spec(rng),
                           rng.uniform_int(0, 100) * util::seconds(1));
  }
  for (std::uint64_t i = rng.below(3); i > 0; --i) {
    std::vector<media::MediaObject> objs(1 + rng.below(2));
    for (auto& o : objs) o = rnd_object(rng);
    snap.objects.emplace_back(util::PeerId{rng.below(256)}, std::move(objs));
  }
  for (std::uint64_t i = rng.below(3); i > 0; --i) {
    std::vector<core::ServiceOffering> svcs(1 + rng.below(2));
    for (auto& s : svcs) {
      s.id = util::ServiceId{rng.below(1u << 20)};
      s.type = rnd_transcoder(rng);
    }
    snap.services.emplace_back(util::PeerId{rng.below(256)}, std::move(svcs));
  }
  for (std::uint64_t i = rng.below(2); i > 0; --i) {
    core::ActiveTask t;
    const media::MediaFormat src = rnd_format(rng);
    const media::MediaFormat dst = rnd_format(rng);
    t.sg = graph::ServiceGraph(util::TaskId{rng.below(1u << 20)},
                               util::PeerId{rng.below(256)},
                               util::ObjectId{rng.below(1u << 20)},
                               util::PeerId{rng.below(256)}, src, dst);
    graph::ServiceHop hop;
    hop.service = util::ServiceId{rng.below(1u << 20)};
    hop.peer = util::PeerId{rng.below(256)};
    hop.type = media::TranscoderType{src, dst};
    hop.estimated_ops = rng.uniform(1e6, 1e9);
    hop.estimated_compute_time = rng.uniform_int(1, 100) * util::milliseconds(1);
    hop.estimated_transfer_time = rng.uniform_int(1, 100) * util::milliseconds(1);
    t.sg.add_hop(hop);
    t.sg.state = graph::TaskState::Running;
    t.q = rnd_qos(rng);
    t.origin = util::PeerId{rng.below(256)};
    t.submitted_at = rng.uniform_int(0, 100) * util::seconds(1);
    t.absolute_deadline = rng.uniform_int(100, 400) * util::seconds(1);
    t.hop_done = {rng.bernoulli(0.5)};
    t.recompositions = static_cast<int>(rng.below(3));
    t.estimated_execution = rng.uniform_int(1, 60) * util::seconds(1);
    snap.tasks.push_back(std::move(t));
  }
  snap.summary_version = rng.next();
  return snap;
}

// ---- per-type generators -----------------------------------------------------

using Generator = std::function<net::MessagePtr(util::Rng&)>;

std::map<net::WireType, Generator> make_generators() {
  std::map<net::WireType, Generator> g;
  g[net::WireType::JoinRequest] = [](util::Rng& rng) {
    auto m = std::make_unique<overlay::JoinRequest>();
    m->spec = rnd_spec(rng);
    return m;
  };
  g[net::WireType::JoinRedirect] = [](util::Rng& rng) {
    auto m = std::make_unique<overlay::JoinRedirect>();
    m->target_rm = util::PeerId{rng.below(1u << 16)};
    return m;
  };
  g[net::WireType::JoinAccept] = [](util::Rng& rng) {
    auto m = std::make_unique<overlay::JoinAccept>();
    m->domain = util::DomainId{rng.below(64)};
    m->rm = util::PeerId{rng.below(1u << 16)};
    m->epoch = rng.next();
    return m;
  };
  g[net::WireType::JoinPromote] = [](util::Rng& rng) {
    auto m = std::make_unique<overlay::JoinPromote>();
    m->new_domain = util::DomainId{rng.below(64)};
    m->known_rms = rnd_rms(rng);
    return m;
  };
  g[net::WireType::LeaveNotice] = [](util::Rng&) {
    return std::make_unique<overlay::LeaveNotice>();
  };
  g[net::WireType::RmHeartbeat] = [](util::Rng& rng) {
    auto m = std::make_unique<overlay::RmHeartbeat>();
    m->domain = util::DomainId{rng.below(64)};
    m->epoch = rng.next();
    m->backup = rng.bernoulli(0.8) ? util::PeerId{rng.below(1u << 16)}
                                   : util::PeerId{};
    m->report_period = rng.uniform_int(0, 10) * util::seconds(1);
    return m;
  };
  g[net::WireType::RmTakeover] = [](util::Rng& rng) {
    auto m = std::make_unique<overlay::RmTakeover>();
    m->domain = util::DomainId{rng.below(64)};
    m->epoch = rng.next();
    return m;
  };
  g[net::WireType::RmPeerIntro] = [](util::Rng& rng) {
    auto m = std::make_unique<overlay::RmPeerIntro>();
    m->rms = rnd_rms(rng);
    return m;
  };
  g[net::WireType::PeerAnnounce] = [](util::Rng& rng) {
    auto m = std::make_unique<core::PeerAnnounce>();
    m->spec = rnd_spec(rng);
    m->objects.resize(rng.below(3));
    for (auto& o : m->objects) o = rnd_object(rng);
    m->services.resize(rng.below(3));
    for (auto& s : m->services) {
      s.id = util::ServiceId{rng.below(1u << 20)};
      s.type = rnd_transcoder(rng);
    }
    return m;
  };
  g[net::WireType::TaskQuery] = [](util::Rng& rng) {
    auto m = std::make_unique<core::TaskQuery>();
    m->task = util::TaskId{rng.below(1u << 20)};
    m->origin = util::PeerId{rng.below(1u << 16)};
    m->q = rnd_qos(rng);
    m->submitted_at = rng.uniform_int(0, 1000) * util::seconds(1);
    m->redirect_count = static_cast<int>(rng.below(4));
    return m;
  };
  g[net::WireType::TaskReject] = [](util::Rng& rng) {
    auto m = std::make_unique<core::TaskReject>();
    m->task = util::TaskId{rng.below(1u << 20)};
    m->reason = std::string(rng.below(40), 'r');
    return m;
  };
  g[net::WireType::TaskAccept] = [](util::Rng& rng) {
    auto m = std::make_unique<core::TaskAccept>();
    m->task = util::TaskId{rng.below(1u << 20)};
    m->serving_rm = util::PeerId{rng.below(1u << 16)};
    m->estimated_execution = rng.uniform_int(1, 120) * util::seconds(1);
    return m;
  };
  g[net::WireType::GraphCompose] = [](util::Rng& rng) {
    auto m = std::make_unique<core::GraphCompose>();
    m->hop = rnd_hop_spec(rng);
    return m;
  };
  g[net::WireType::SourceStart] = [](util::Rng& rng) {
    auto m = std::make_unique<core::SourceStart>();
    m->task = util::TaskId{rng.below(1u << 20)};
    m->object = util::ObjectId{rng.below(1u << 20)};
    m->first_hop = util::PeerId{rng.below(1u << 16)};
    m->first_is_sink = rng.bernoulli(0.5);
    m->media_seconds = rng.uniform(1.0, 30.0);
    m->format = rnd_format(rng);
    m->absolute_deadline = rng.uniform_int(0, 1000) * util::seconds(1);
    m->rm = util::PeerId{rng.below(1u << 16)};
    return m;
  };
  g[net::WireType::StreamData] = [](util::Rng& rng) {
    auto m = std::make_unique<core::StreamData>();
    m->task = util::TaskId{rng.below(1u << 20)};
    m->dest_hop_index = rng.below(4);
    m->for_sink = rng.bernoulli(0.5);
    m->object = util::ObjectId{rng.below(1u << 20)};
    // Keep the modelled payload small: the frame genuinely carries
    // payload_bytes() of zeros, and the property only needs a few of them.
    m->format = rnd_format(rng);
    m->format.bitrate_kbps = static_cast<std::uint32_t>(rng.uniform_int(8, 64));
    m->media_seconds = rng.uniform(0.01, 0.2);
    m->pipeline_started_at = rng.uniform_int(0, 1000) * util::seconds(1);
    m->sent_at = rng.uniform_int(0, 1000) * util::seconds(1);
    return m;
  };
  g[net::WireType::HopDone] = [](util::Rng& rng) {
    auto m = std::make_unique<core::HopDone>();
    m->task = util::TaskId{rng.below(1u << 20)};
    m->hop_index = rng.below(4);
    m->execution_time = rng.uniform_int(1, 10000) * util::milliseconds(1);
    m->missed_local_deadline = rng.bernoulli(0.2);
    return m;
  };
  g[net::WireType::TaskCompleted] = [](util::Rng& rng) {
    auto m = std::make_unique<core::TaskCompleted>();
    m->task = util::TaskId{rng.below(1u << 20)};
    m->completed_at = rng.uniform_int(0, 1000) * util::seconds(1);
    m->missed_deadline = rng.bernoulli(0.2);
    return m;
  };
  g[net::WireType::TaskFailed] = [](util::Rng& rng) {
    auto m = std::make_unique<core::TaskFailedMsg>();
    m->task = util::TaskId{rng.below(1u << 20)};
    m->reason = std::string(rng.below(40), 'f');
    return m;
  };
  g[net::WireType::HopFailed] = [](util::Rng& rng) {
    auto m = std::make_unique<core::HopFailed>();
    m->task = util::TaskId{rng.below(1u << 20)};
    m->hop_index = rng.below(4);
    m->reason = std::string(rng.below(40), 'h');
    return m;
  };
  g[net::WireType::ProfilerReport] = [](util::Rng& rng) {
    auto m = std::make_unique<core::ProfilerReport>();
    m->sample.at = rng.uniform_int(0, 1000) * util::seconds(1);
    m->sample.utilization = rng.uniform01();
    m->sample.load_ops = rng.uniform(0.0, 1e8);
    m->sample.bandwidth_bytes_per_s = rng.uniform(0.0, 1e7);
    m->sample.queue_length = rng.below(16);
    m->sample.backlog_seconds = rng.uniform(0.0, 30.0);
    m->sample.smoothed_utilization = rng.uniform01();
    m->sample.smoothed_load_ops = rng.uniform(0.0, 1e8);
    m->sample.smoothed_bandwidth = rng.uniform(0.0, 1e7);
    m->eligible_rm = rng.bernoulli(0.5);
    m->rm_score = rng.uniform(0.0, 3.0);
    m->active_hops = rng.below(8);
    m->measured_exec_s.resize(rng.below(4));
    for (auto& [key, secs] : m->measured_exec_s) {
      key = rng.next();
      secs = rng.uniform(0.1, 60.0);
    }
    m->seq = rng.next();
    return m;
  };
  g[net::WireType::ReportAck] = [](util::Rng& rng) {
    auto m = std::make_unique<core::ReportAck>();
    m->seq = rng.next();
    return m;
  };
  g[net::WireType::HopCancel] = [](util::Rng& rng) {
    auto m = std::make_unique<core::HopCancel>();
    m->task = util::TaskId{rng.below(1u << 20)};
    m->hop_index = rng.below(4);
    return m;
  };
  g[net::WireType::TaskQosUpdate] = [](util::Rng& rng) {
    auto m = std::make_unique<core::TaskQosUpdate>();
    m->task = util::TaskId{rng.below(1u << 20)};
    m->new_deadline = rng.uniform_int(1, 300) * util::seconds(1);
    m->new_acceptable_formats.resize(rng.below(3));
    for (auto& f : m->new_acceptable_formats) f = rnd_format(rng);
    return m;
  };
  g[net::WireType::BackupSync] = [](util::Rng& rng) {
    auto m = std::make_unique<core::BackupSync>();
    m->snapshot = rnd_snapshot(rng);
    m->known_rms = rnd_rms(rng);
    m->seq = rng.next();
    return m;
  };
  g[net::WireType::BackupSyncAck] = [](util::Rng& rng) {
    auto m = std::make_unique<core::BackupSyncAck>();
    m->seq = rng.next();
    return m;
  };
  g[net::WireType::GossipSummaries] = [](util::Rng& rng) {
    auto m = std::make_unique<gossip::GossipMessage>();
    m->sender = util::PeerId{rng.below(1u << 16)};
    m->summaries.resize(rng.below(4));
    for (auto& s : m->summaries) s = rnd_summary(rng);
    return m;
  };
  return g;
}

// ---- the property ------------------------------------------------------------

std::vector<std::uint8_t> frame_of(const net::Message& m, util::PeerId from,
                                   util::PeerId to) {
  std::vector<std::uint8_t> buf;
  net::encode_frame(from, to, m, buf);
  return buf;
}

TEST(CodecRegistry, EveryEntryHasAGenerator) {
  const auto generators = make_generators();
  for (const auto& e : core::wire_registry()) {
    EXPECT_TRUE(generators.count(e.type))
        << "no codec_test generator for " << e.type_name
        << " — add one so the new message type gets fuzzed";
  }
  EXPECT_EQ(generators.size(), core::wire_registry().size());
}

TEST(CodecRegistry, RoundTripIsExactAndSized) {
  const auto generators = make_generators();
  util::Rng rng(0xc0dec);
  for (const auto& e : core::wire_registry()) {
    const auto it = generators.find(e.type);
    ASSERT_NE(it, generators.end()) << e.type_name;
    for (int iter = 0; iter < 50; ++iter) {
      const util::PeerId from{rng.below(1u << 16)};
      const util::PeerId to{rng.below(1u << 16)};
      const net::MessagePtr original = it->second(rng);
      ASSERT_EQ(original->wire_type(), e.type) << e.type_name;
      EXPECT_EQ(original->type_name(), e.type_name);

      const auto frame = frame_of(*original, from, to);
      // Contract 1: honest sizes — the frame occupies exactly wire_size()
      // plus the CRC trailer, and a pristine frame passes the CRC gate.
      ASSERT_EQ(frame.size(), original->wire_size() + net::kFrameCrcBytes)
          << e.type_name << " iter " << iter;
      ASSERT_TRUE(net::frame_crc_ok(frame.data() + 4, frame.size() - 4))
          << e.type_name << " iter " << iter;

      // Contract 2: decode is lossless; the re-encoded frame is identical.
      // The Reader spans the post-length region minus the trailer, exactly
      // as the socket transport slices it after the CRC check.
      const std::size_t span = frame.size() - 4 - net::kFrameCrcBytes;
      net::Reader r(frame.data() + 4, span);
      const net::FrameHeader header = net::read_frame_header(r);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(header.from, from);
      EXPECT_EQ(header.to, to);
      EXPECT_EQ(header.type, e.type);
      const net::MessagePtr decoded = e.decode(r);
      ASSERT_NE(decoded, nullptr) << e.type_name << " iter " << iter;
      EXPECT_EQ(frame_of(*decoded, from, to), frame)
          << e.type_name << " iter " << iter;

      // The tag-dispatch entry point resolves to the same decoder.
      net::Reader r2(frame.data() + 4, span);
      (void)net::read_frame_header(r2);
      EXPECT_NE(core::decode_message(e.type, r2), nullptr);
    }
  }
}

// Contract 3: any strict prefix of a valid body decodes to nullptr (the
// Reader latches failure or leaves the body unconsumed), never UB — what a
// hostile or corrupt stream produces after resynchronization.
TEST(CodecRegistry, TruncatedBodiesDecodeToNull) {
  const auto generators = make_generators();
  util::Rng rng(0x7c0b0dec);
  for (const auto& e : core::wire_registry()) {
    const auto it = generators.find(e.type);
    ASSERT_NE(it, generators.end()) << e.type_name;
    for (int iter = 0; iter < 10; ++iter) {
      const net::MessagePtr original = it->second(rng);
      std::vector<std::uint8_t> body;
      net::Writer w(body);
      original->encode_body(w);
      if (body.empty()) continue;  // nothing to truncate
      // A handful of cut points incl. the two ends; exhaustive would make
      // StreamData's zero-padded payload quadratic for no extra coverage.
      const std::size_t cuts[] = {0, 1, body.size() / 2, body.size() - 1};
      for (const std::size_t cut : cuts) {
        if (cut >= body.size()) continue;
        net::Reader r(body.data(), cut);
        EXPECT_EQ(e.decode(r), nullptr)
            << e.type_name << " decoded a " << cut << "-byte prefix of a "
            << body.size() << "-byte body";
      }
    }
  }
}

// Contract 4: frame corruption never reaches a decoder. Models the exact
// gate order of SocketTransport::read_frames()/deliver_frame(): the u32
// length prefix is checked for sanity and stream agreement first (a
// corrupted prefix desyncs framing and kills the connection), then the
// CRC-32C trailer is verified over everything after the prefix; only a
// frame that passes both is decoded. Every injected corruption — 1-4
// random bit flips or byte overwrites anywhere in the frame, length
// prefix included — must be caught by one of the two gates. Deterministic
// seeds: the corpus is fixed, so detection is 100%, not probabilistic.
TEST(CodecRegistry, CorruptedFramesAreAlwaysRejected) {
  const auto generators = make_generators();
  util::Rng rng(0xbadc4c);
  std::size_t injected = 0, caught_by_length = 0, caught_by_crc = 0;
  for (const auto& e : core::wire_registry()) {
    const auto it = generators.find(e.type);
    ASSERT_NE(it, generators.end()) << e.type_name;
    for (int iter = 0; iter < 200; ++iter) {
      const net::MessagePtr original = it->second(rng);
      const auto frame =
          frame_of(*original, util::PeerId{rng.below(1u << 16)},
                   util::PeerId{rng.below(1u << 16)});

      auto corrupted = frame;
      const std::uint64_t flips = 1 + rng.below(4);
      for (std::uint64_t f = 0; f < flips; ++f) {
        const std::size_t pos = rng.below(corrupted.size());
        if (rng.bernoulli(0.5)) {
          corrupted[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
        } else {
          corrupted[pos] ^=
              static_cast<std::uint8_t>(1 + rng.below(255));  // byte rewrite
        }
      }
      if (corrupted == frame) continue;  // XOR flips cancelled out
      ++injected;

      // Gate 1 — framing: the length prefix must both pass the sanity
      // bounds and agree with the bytes actually on the stream.
      net::Reader len_r(corrupted.data(), 4);
      const std::uint32_t len = len_r.u32();
      const bool framing_ok =
          len == corrupted.size() - 4 &&
          len >= net::kFrameHeaderBytes - 4 + net::kFrameCrcBytes &&
          len <= net::kMaxFrameBytes;
      if (!framing_ok) {
        ++caught_by_length;
        continue;
      }
      // Gate 2 — CRC: must reject before any decode is attempted.
      const bool crc_ok = net::frame_crc_ok(corrupted.data() + 4, len);
      EXPECT_FALSE(crc_ok) << e.type_name << " iter " << iter
                           << ": corruption slipped past both gates";
      caught_by_crc += !crc_ok;
    }
  }
  // The corpus is large and both gates fired: 26 types x 200 iters minus
  // the rare cancelled flips, split between prefix and post-prefix hits.
  EXPECT_EQ(injected, caught_by_length + caught_by_crc);
  EXPECT_GT(caught_by_length, 0u);
  EXPECT_GT(caught_by_crc, 0u);
}

TEST(CodecRegistry, UnknownTagDecodesToNull) {
  std::vector<std::uint8_t> empty;
  net::Reader r(empty.data(), 0);
  EXPECT_EQ(core::decode_message(net::WireType::TestBase, r), nullptr);
  net::Reader r2(empty.data(), 0);
  EXPECT_EQ(core::decode_message(net::WireType::Invalid, r2), nullptr);
}

}  // namespace

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/info_base.hpp"
#include "media/catalog.hpp"

namespace p2prm::core {
namespace {

using util::ObjectId;
using util::PeerId;
using util::ServiceId;
using util::TaskId;

struct Fixture {
  media::Figure1Catalog cat = media::figure1_catalog();
  InfoBase info{util::DomainId{3}, PeerId{1}};
  util::Rng rng{9};

  overlay::PeerSpec add_member(std::uint64_t id, double capacity = 50e6) {
    overlay::PeerSpec spec;
    spec.id = PeerId{id};
    spec.capacity_ops_per_s = capacity;
    info.add_member(spec, 0);
    return spec;
  }

  void announce(std::uint64_t peer, std::vector<media::MediaObject> objects,
                std::vector<ServiceOffering> services) {
    PeerAnnounce a;
    a.spec.id = PeerId{peer};
    a.objects = std::move(objects);
    a.services = std::move(services);
    info.add_inventory(a);
  }

  ActiveTask make_task(std::uint64_t id, std::uint64_t hop_peer) {
    ActiveTask t;
    t.sg = graph::ServiceGraph(TaskId{id}, PeerId{10}, ObjectId{1}, PeerId{20},
                               cat.v1, cat.v2);
    graph::ServiceHop hop;
    hop.service = ServiceId{1};
    hop.peer = PeerId{hop_peer};
    hop.type = cat.edges[0];
    t.sg.add_hop(hop);
    t.sg.state = graph::TaskState::Running;
    t.hop_done = {false};
    t.origin = PeerId{20};
    return t;
  }
};

TEST(InfoBase, InventoryIndexing) {
  Fixture fx;
  fx.add_member(5);
  const auto obj = media::make_object(ObjectId{1}, fx.cat.v1, 10.0, fx.rng);
  fx.announce(5, {obj}, {{ServiceId{1}, fx.cat.edges[0]}});
  const auto* locs = fx.info.locations(ObjectId{1});
  ASSERT_NE(locs, nullptr);
  ASSERT_EQ(locs->size(), 1u);
  EXPECT_EQ((*locs)[0].peer, PeerId{5});
  EXPECT_TRUE(fx.info.resource_graph().has_service(ServiceId{1}));
  EXPECT_EQ(fx.info.all_objects(), (std::vector<ObjectId>{ObjectId{1}}));
}

TEST(InfoBase, RemovePeerPurgesEverythingAndReportsAffectedTasks) {
  Fixture fx;
  fx.add_member(5);
  fx.add_member(6);
  const auto obj = media::make_object(ObjectId{1}, fx.cat.v1, 10.0, fx.rng);
  fx.announce(5, {obj}, {{ServiceId{1}, fx.cat.edges[0]}});
  fx.info.add_task(fx.make_task(100, 5));
  fx.info.add_task(fx.make_task(101, 6));

  const auto affected = fx.info.remove_peer(PeerId{5});
  EXPECT_EQ(affected, (std::vector<TaskId>{TaskId{100}}));
  EXPECT_EQ(fx.info.locations(ObjectId{1}), nullptr);
  EXPECT_FALSE(fx.info.resource_graph().has_service(ServiceId{1}));
  EXPECT_FALSE(fx.info.domain().has_member(PeerId{5}));
}

TEST(InfoBase, EffectiveLoadCombinesReportAndCommitments) {
  Fixture fx;
  fx.add_member(5, 100e6);
  ProfilerReport report;
  report.sample.smoothed_load_ops = 20e6;
  fx.info.record_report(PeerId{5}, report, 0);
  EXPECT_DOUBLE_EQ(fx.info.effective_load(PeerId{5}), 20e6);
  fx.info.commit_load(PeerId{5}, 30e6);
  EXPECT_DOUBLE_EQ(fx.info.effective_load(PeerId{5}), 50e6);
  fx.info.release_load(PeerId{5}, 10e6);
  EXPECT_DOUBLE_EQ(fx.info.effective_load(PeerId{5}), 40e6);
  // Commitments expire after their TTL, not on the next report (reports
  // can be more frequent than composition-to-execution latency).
  fx.info.record_report(PeerId{5}, report, util::seconds(1));
  EXPECT_DOUBLE_EQ(fx.info.effective_load(PeerId{5}), 40e6);
  fx.info.purge_commitments(util::seconds(10));
  EXPECT_DOUBLE_EQ(fx.info.effective_load(PeerId{5}), 20e6);
}

TEST(InfoBase, ReleaseConsumesEarliestCommitments) {
  Fixture fx;
  fx.add_member(5, 100e6);
  fx.info.commit_load(PeerId{5}, 10e6, 0, util::seconds(3));
  fx.info.commit_load(PeerId{5}, 20e6, util::seconds(1), util::seconds(3));
  fx.info.release_load(PeerId{5}, 15e6);  // eats the 10e6 + 5e6 of the 20e6
  EXPECT_DOUBLE_EQ(fx.info.effective_load(PeerId{5}), 15e6);
  // First commitment gone; the remainder expires with the second's TTL.
  fx.info.purge_commitments(util::seconds(3) + 1);
  EXPECT_DOUBLE_EQ(fx.info.effective_load(PeerId{5}), 15e6);
  fx.info.purge_commitments(util::seconds(4) + 1);
  EXPECT_DOUBLE_EQ(fx.info.effective_load(PeerId{5}), 0.0);
}

TEST(InfoBase, ReleaseBelowZeroClamps) {
  Fixture fx;
  fx.add_member(5);
  fx.info.commit_load(PeerId{5}, 10e6);
  fx.info.release_load(PeerId{5}, 50e6);
  EXPECT_DOUBLE_EQ(fx.info.effective_load(PeerId{5}), 0.0);
}

TEST(InfoBase, FairnessTracksEffectiveLoads) {
  Fixture fx;
  fx.add_member(1);
  fx.add_member(2);
  EXPECT_DOUBLE_EQ(fx.info.current_fairness(), 1.0);  // both idle
  fx.info.commit_load(PeerId{1}, 10e6);
  EXPECT_DOUBLE_EQ(fx.info.current_fairness(), 0.5);
  fx.info.commit_load(PeerId{2}, 10e6);
  EXPECT_DOUBLE_EQ(fx.info.current_fairness(), 1.0);
}

TEST(InfoBase, LoadIndexMatchesLinearRecomputation) {
  // Equivalence test for the incrementally maintained load index: after a
  // random mix of reports, commitments, releases, purges and membership
  // churn, min/mean utilization must equal a from-scratch linear pass over
  // the domain — the exact scan the index replaced in admission control.
  Fixture fx;
  util::Rng rng(77);
  std::vector<std::uint64_t> members;
  for (std::uint64_t id = 10; id < 18; ++id) {
    fx.add_member(id, rng.uniform(20e6, 120e6));
    members.push_back(id);
  }

  const auto check = [&] {
    // The exact aggregates the pre-index admission helpers computed with a
    // linear walk: per-member minimum utilization, and capacity-weighted
    // mean load (total effective load over total capacity).
    double min_util = std::numeric_limits<double>::infinity();
    double total_load = 0.0;
    double total_capacity = 0.0;
    std::size_t n = 0;
    for (const auto peer : fx.info.domain().member_ids()) {
      const auto* rec = fx.info.domain().member(peer);
      ASSERT_NE(rec, nullptr);
      const double cap = rec->spec.capacity_ops_per_s;
      const double load = fx.info.effective_load(peer);
      min_util = std::min(min_util, cap > 0.0 ? load / cap : 1.0);
      total_load += load;
      total_capacity += cap;
      ++n;
    }
    const auto& index = fx.info.load_index();
    ASSERT_EQ(index.size(), n);
    EXPECT_DOUBLE_EQ(index.min_utilization(), min_util);
    const double mean =
        total_capacity > 0.0 ? total_load / total_capacity : 1.0;
    EXPECT_NEAR(index.mean_utilization(), mean, 1e-9 * (1.0 + mean));
  };

  for (int step = 0; step < 200; ++step) {
    const std::uint64_t roll = rng.below(100);
    const std::uint64_t peer = members[rng.below(members.size())];
    if (roll < 35) {
      ProfilerReport report;
      report.sample.smoothed_load_ops = rng.uniform(0.0, 80e6);
      fx.info.record_report(PeerId{peer}, report, util::seconds(step));
    } else if (roll < 60) {
      fx.info.commit_load(PeerId{peer}, rng.uniform(1e6, 30e6),
                          util::seconds(step));
    } else if (roll < 80) {
      fx.info.release_load(PeerId{peer}, rng.uniform(1e6, 30e6));
    } else if (roll < 90) {
      fx.info.purge_commitments(util::seconds(step));
    } else if (members.size() > 2 && roll < 95) {
      const std::size_t victim = rng.below(members.size());
      fx.info.remove_peer(PeerId{members[victim]});
      members.erase(members.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      const std::uint64_t id = 100 + static_cast<std::uint64_t>(step);
      fx.add_member(id, rng.uniform(20e6, 120e6));
      members.push_back(id);
    }
    check();
    if (HasFatalFailure()) return;
  }
}

TEST(InfoBase, TaskLifecycle) {
  Fixture fx;
  fx.info.add_task(fx.make_task(7, 5));
  ASSERT_NE(fx.info.task(TaskId{7}), nullptr);
  EXPECT_EQ(fx.info.task_count(), 1u);
  EXPECT_EQ(fx.info.running_task_ids(), (std::vector<TaskId>{TaskId{7}}));
  EXPECT_EQ(fx.info.tasks_involving(PeerId{5}),
            (std::vector<TaskId>{TaskId{7}}));
  EXPECT_EQ(fx.info.tasks_involving(PeerId{20}),
            (std::vector<TaskId>{TaskId{7}}));  // sink counts
  fx.info.remove_task(TaskId{7});
  EXPECT_EQ(fx.info.task(TaskId{7}), nullptr);
}

TEST(InfoBase, ActiveTaskHopBookkeeping) {
  ActiveTask t;
  t.hop_done = {true, false, true};
  EXPECT_FALSE(t.all_hops_done());
  ASSERT_TRUE(t.first_pending_hop().has_value());
  EXPECT_EQ(*t.first_pending_hop(), 1u);
  t.hop_done[1] = true;
  EXPECT_TRUE(t.all_hops_done());
  EXPECT_FALSE(t.first_pending_hop().has_value());
}

TEST(InfoBase, ReAnnounceIsIdempotent) {
  Fixture fx;
  fx.add_member(5);
  const auto obj = media::make_object(ObjectId{1}, fx.cat.v1, 10.0, fx.rng);
  fx.announce(5, {obj}, {{ServiceId{1}, fx.cat.edges[0]}});
  // A peer re-announces after an RM failover: no duplicates, no throw.
  fx.announce(5, {obj}, {{ServiceId{1}, fx.cat.edges[0]}});
  EXPECT_EQ(fx.info.locations(ObjectId{1})->size(), 1u);
  EXPECT_EQ(fx.info.resource_graph().service_count(), 1u);
}

TEST(InfoBase, MeasuredExecutionTimesFromReports) {
  Fixture fx;
  fx.add_member(5);
  const std::uint64_t key = fx.cat.edges[0].type_key();
  EXPECT_LT(fx.info.measured_execution_s(PeerId{5}, key), 0.0);
  ProfilerReport report;
  report.measured_exec_s = {{key, 2.5}};
  fx.info.record_report(PeerId{5}, report, 0);
  EXPECT_DOUBLE_EQ(fx.info.measured_execution_s(PeerId{5}, key), 2.5);
  EXPECT_LT(fx.info.measured_execution_s(PeerId{6}, key), 0.0);
  // Gone with the peer.
  fx.info.remove_peer(PeerId{5});
  EXPECT_LT(fx.info.measured_execution_s(PeerId{5}, key), 0.0);
}

TEST(InfoBase, SummaryContainsObjectsAndServices) {
  Fixture fx;
  fx.add_member(5);
  const auto obj = media::make_object(ObjectId{42}, fx.cat.v1, 10.0, fx.rng);
  fx.announce(5, {obj}, {{ServiceId{1}, fx.cat.edges[0]}});
  const auto summary = fx.info.build_summary(2048, 4);
  EXPECT_EQ(summary.domain, util::DomainId{3});
  EXPECT_EQ(summary.resource_manager, PeerId{1});
  EXPECT_EQ(summary.peer_count, 1u);
  EXPECT_TRUE(summary.objects.possibly_contains(ObjectId{42}));
  EXPECT_TRUE(
      summary.services.possibly_contains(fx.cat.edges[0].type_key()));
  EXPECT_FALSE(summary.objects.possibly_contains(ObjectId{4242}));
}

TEST(InfoBase, SummaryVersionBumpsOnInventoryChange) {
  Fixture fx;
  fx.add_member(5);
  const auto v0 = fx.info.summary_version();
  fx.announce(5, {}, {{ServiceId{1}, fx.cat.edges[0]}});
  EXPECT_GT(fx.info.summary_version(), v0);
  const auto v1 = fx.info.summary_version();
  fx.info.remove_peer(PeerId{5});
  EXPECT_GT(fx.info.summary_version(), v1);
}

TEST(InfoBase, SnapshotRestoreRoundTrip) {
  Fixture fx;
  fx.add_member(5);
  fx.add_member(6);
  const auto obj = media::make_object(ObjectId{1}, fx.cat.v1, 10.0, fx.rng);
  fx.announce(5, {obj}, {{ServiceId{1}, fx.cat.edges[0]}});
  fx.announce(6, {}, {{ServiceId{2}, fx.cat.edges[1]}});
  fx.info.add_task(fx.make_task(9, 5));
  ProfilerReport report;
  report.sample.smoothed_load_ops = 10e6;
  fx.info.record_report(PeerId{5}, report, 0);

  const auto snap = fx.info.snapshot();
  EXPECT_GT(snap.wire_size(), 0u);

  InfoBase restored(util::DomainId{99}, PeerId{99});
  restored.restore(snap);
  EXPECT_EQ(restored.domain().id(), util::DomainId{3});
  EXPECT_TRUE(restored.domain().has_member(PeerId{5}));
  EXPECT_TRUE(restored.domain().has_member(PeerId{6}));
  ASSERT_NE(restored.locations(ObjectId{1}), nullptr);
  EXPECT_TRUE(restored.resource_graph().has_service(ServiceId{1}));
  EXPECT_TRUE(restored.resource_graph().has_service(ServiceId{2}));
  ASSERT_NE(restored.task(TaskId{9}), nullptr);
  EXPECT_EQ(restored.task(TaskId{9})->sg.hops()[0].peer, PeerId{5});
  EXPECT_DOUBLE_EQ(restored.effective_load(PeerId{5}), 10e6);
  EXPECT_EQ(restored.summary_version(), fx.info.summary_version());
}

TEST(InfoBase, RestoredBaseSupportsTakeoverEdits) {
  Fixture fx;
  fx.add_member(5);
  fx.announce(5, {}, {{ServiceId{1}, fx.cat.edges[0]}});
  const auto snap = fx.info.snapshot();

  InfoBase restored(util::DomainId{3}, PeerId{6});
  restored.restore(snap);
  restored.domain().set_resource_manager(PeerId{6});
  restored.domain().bump_epoch();
  const auto affected = restored.remove_peer(PeerId{1});  // dead old RM
  EXPECT_TRUE(affected.empty());
  EXPECT_EQ(restored.domain().resource_manager(), PeerId{6});
}

}  // namespace
}  // namespace p2prm::core

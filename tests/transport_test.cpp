// SocketTransport unit tests: real loopback TCP, single process.
//
// Each suite uses its own base_port so parallel ctest runs of this binary
// and the deployment suites never collide. Wall-clock loops are bounded by
// generous deadlines (seconds) but normally finish in milliseconds — every
// socket involved is on 127.0.0.1.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/messages.hpp"
#include "core/wire_registry.hpp"
#include "fault/fault_plan.hpp"
#include "fault/frame_shim.hpp"
#include "net/socket_transport.hpp"
#include "net/wire.hpp"
#include "util/ids.hpp"

namespace {

using namespace p2prm;
using Clock = std::chrono::steady_clock;

net::SocketConfig config_at(std::uint16_t base_port) {
  net::SocketConfig c;
  c.base_port = base_port;
  // Wall == sim for the backoff schedule; the tests pump with their own
  // wall deadlines and do not care about the mapping.
  c.time_scale = 1.0;
  c.connect.initial = util::milliseconds(5);
  c.connect.max_delay = util::milliseconds(50);
  return c;
}

std::unique_ptr<core::ReportAck> ack(std::uint64_t seq) {
  auto m = std::make_unique<core::ReportAck>();
  m->seq = seq;
  return m;
}

// Pumps until `done()` or the wall deadline; returns whether done() held.
template <typename Pred>
bool pump_until(net::SocketTransport& t, Pred done, int deadline_ms = 5000) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  while (!done()) {
    if (Clock::now() > deadline) return false;
    t.pump(/*timeout_ms=*/10);
  }
  return true;
}

TEST(SocketTransport, PortAssignmentFollowsPeerId) {
  net::SocketTransport t(config_at(24000), &core::decode_message);
  EXPECT_EQ(t.port_of(util::PeerId{0}), 24000);
  EXPECT_EQ(t.port_of(util::PeerId{7}), 24007);
}

TEST(SocketTransport, LoopbackDeliveryAndFifoOrder) {
  net::SocketTransport t(config_at(24100), &core::decode_message);
  std::vector<std::uint64_t> seen;
  util::PeerId seen_from{};
  t.attach(util::PeerId{0}, {}, [](util::PeerId, const net::Message&) {});
  t.attach(util::PeerId{1}, {},
           [&](util::PeerId from, const net::Message& m) {
             seen_from = from;
             const auto* a = net::message_as<core::ReportAck>(m);
             ASSERT_NE(a, nullptr);
             seen.push_back(a->seq);
           });
  ASSERT_TRUE(t.attached(util::PeerId{0}));
  ASSERT_TRUE(t.attached(util::PeerId{1}));

  for (std::uint64_t i = 0; i < 10; ++i) {
    t.send(util::PeerId{0}, util::PeerId{1}, ack(i));
  }
  // Delivery never happens inline with send().
  EXPECT_TRUE(seen.empty());

  ASSERT_TRUE(pump_until(t, [&] { return seen.size() == 10; }));
  EXPECT_EQ(seen_from, util::PeerId{0});
  // TCP gives per-connection ordering; the contract promises per-(from,to)
  // FIFO on top of it.
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(seen[i], i);

  EXPECT_EQ(t.stats().messages_sent, 10u);
  EXPECT_EQ(t.stats().messages_delivered, 10u);
  EXPECT_EQ(t.stats().per_type_count.at("core.report_ack"), 10u);
  EXPECT_TRUE(t.flushed());
}

TEST(SocketTransport, TwoTransportsAcrossRealConnections) {
  // Two transports in one process model two OS processes: frames cross a
  // real accepted TCP connection, not an in-process shortcut.
  net::SocketTransport a(config_at(24200), &core::decode_message);
  net::SocketTransport b(config_at(24200), &core::decode_message);
  std::vector<std::uint64_t> seen;
  a.attach(util::PeerId{0}, {}, [](util::PeerId, const net::Message&) {});
  b.attach(util::PeerId{1}, {},
           [&](util::PeerId, const net::Message& m) {
             seen.push_back(net::message_as<core::ReportAck>(m)->seq);
           });

  a.send(util::PeerId{0}, util::PeerId{1}, ack(42));
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (seen.empty() && Clock::now() < deadline) {
    a.pump(5);
    b.pump(5);
  }
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 42u);
  EXPECT_EQ(a.stats().messages_sent, 1u);
  EXPECT_EQ(b.stats().messages_delivered, 1u);
}

TEST(SocketTransport, UnreachablePeerCountsUndeliverable) {
  net::SocketTransport t(config_at(24300), &core::decode_message);
  t.attach(util::PeerId{0}, {}, [](util::PeerId, const net::Message&) {});
  // Peer 9 never attached anywhere: the connect is refused, the session
  // enters backoff, and the queued frame is dropped as undeliverable — the
  // silent-loss signal RM failure detection relies on.
  t.send(util::PeerId{0}, util::PeerId{9}, ack(1));
  ASSERT_TRUE(
      pump_until(t, [&] { return t.stats().messages_undeliverable >= 1; }));
  EXPECT_EQ(t.stats().messages_delivered, 0u);

  // Frames sent while the session sits in backoff are dropped immediately.
  t.send(util::PeerId{0}, util::PeerId{9}, ack(2));
  ASSERT_TRUE(
      pump_until(t, [&] { return t.stats().messages_undeliverable >= 2; }));
}

TEST(SocketTransport, DetachClosesTheEndpoint) {
  net::SocketTransport t(config_at(24400), &core::decode_message);
  std::size_t delivered = 0;
  t.attach(util::PeerId{0}, {}, [](util::PeerId, const net::Message&) {});
  t.attach(util::PeerId{1}, {},
           [&](util::PeerId, const net::Message&) { ++delivered; });
  t.detach(util::PeerId{1});
  EXPECT_FALSE(t.attached(util::PeerId{1}));

  // Messages toward the departed peer end up undeliverable, not delivered.
  t.send(util::PeerId{0}, util::PeerId{1}, ack(1));
  ASSERT_TRUE(
      pump_until(t, [&] { return t.stats().messages_undeliverable >= 1; }));
  EXPECT_EQ(delivered, 0u);
}

TEST(SocketTransport, AttachOnATakenPortThrows) {
  net::SocketTransport a(config_at(24500), &core::decode_message);
  net::SocketTransport b(config_at(24500), &core::decode_message);
  a.attach(util::PeerId{0}, {}, [](util::PeerId, const net::Message&) {});
  EXPECT_THROW(
      b.attach(util::PeerId{0}, {}, [](util::PeerId, const net::Message&) {}),
      std::runtime_error);
}

TEST(SocketTransport, EstimateDelayScalesWithBytes) {
  net::SocketTransport t(config_at(24600), &core::decode_message);
  const auto small = t.estimate_delay(util::PeerId{0}, util::PeerId{1}, 100);
  const auto large =
      t.estimate_delay(util::PeerId{0}, util::PeerId{1}, 10'000'000);
  EXPECT_GT(small, 0);
  EXPECT_GT(large, small);
}

// ---- frame fault shim (docs/FAULT_MODEL.md, docs/TRANSPORT.md) -------------

fault::FaultPlan mixed_plan(std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.default_link.drop_probability = 0.2;
  plan.default_link.duplicate_probability = 0.1;
  plan.default_link.reorder_probability = 0.1;
  plan.default_link.extra_delay = util::milliseconds(5);
  plan.default_link.delay_jitter = util::milliseconds(10);
  return plan;
}

bool same_verdict(const net::FrameFaultVerdict& a,
                  const net::FrameFaultVerdict& b) {
  return a.drop == b.drop && a.extra_delay == b.extra_delay &&
         a.duplicate_after == b.duplicate_after;
}

// The cross-process contract: two shims built from the same plan take the
// same decision for every frame, byte-for-byte (decision logs fingerprint
// identically), and a different seed diverges.
TEST(FrameShim, SameSeedSameDecisionsDifferentSeedDiverges) {
  fault::FrameShim a(mixed_plan(7));
  fault::FrameShim b(mixed_plan(7));
  fault::FrameShim c(mixed_plan(8));
  for (std::uint64_t from = 0; from < 4; ++from) {
    for (std::uint64_t to = 0; to < 4; ++to) {
      if (from == to) continue;
      for (std::uint64_t seq = 0; seq < 200; ++seq) {
        const auto va = a.on_frame(util::PeerId{from}, util::PeerId{to}, seq,
                                   256);
        const auto vb = b.on_frame(util::PeerId{from}, util::PeerId{to}, seq,
                                   256);
        (void)c.on_frame(util::PeerId{from}, util::PeerId{to}, seq, 256);
        ASSERT_TRUE(same_verdict(va, vb))
            << from << "->" << to << " seq " << seq;
      }
    }
  }
  EXPECT_FALSE(a.decisions().empty());
  EXPECT_EQ(a.decision_fingerprint(), b.decision_fingerprint());
  EXPECT_NE(a.decision_fingerprint(), c.decision_fingerprint());
}

// Decisions are a pure function of (plan, from, to, link_seq) — the order
// frames from different links reach the shim cannot matter, because two
// processes of one deployment see completely different interleavings.
TEST(FrameShim, DecisionsAreIndependentOfCallOrder) {
  fault::FrameShim forward(mixed_plan(9));
  fault::FrameShim reverse(mixed_plan(9));
  struct Key {
    std::uint64_t from, to, seq;
  };
  std::vector<Key> schedule;
  for (std::uint64_t from = 0; from < 3; ++from) {
    for (std::uint64_t to = 0; to < 3; ++to) {
      if (from == to) continue;
      for (std::uint64_t seq = 0; seq < 50; ++seq) {
        schedule.push_back({from, to, seq});
      }
    }
  }
  std::vector<net::FrameFaultVerdict> fwd(schedule.size());
  std::vector<net::FrameFaultVerdict> rev(schedule.size());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const Key& k = schedule[i];
    fwd[i] = forward.on_frame(util::PeerId{k.from}, util::PeerId{k.to}, k.seq,
                              256);
  }
  for (std::size_t i = schedule.size(); i-- > 0;) {
    const Key& k = schedule[i];
    rev[i] = reverse.on_frame(util::PeerId{k.from}, util::PeerId{k.to}, k.seq,
                              256);
  }
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_TRUE(same_verdict(fwd[i], rev[i])) << "schedule index " << i;
  }
}

TEST(FrameShim, PartitionSeversIslandsAndHeals) {
  fault::FrameShim shim(fault::FaultPlan{});
  EXPECT_EQ(shim.partition_epoch(), 0u);
  EXPECT_FALSE(shim.severed(util::PeerId{1}, util::PeerId{2}));

  // Peer 1 becomes island 1; unlisted peers share island 0 (the same
  // semantics as net::Network::set_partition).
  shim.start_partition({{util::PeerId{1}}}, util::seconds(1));
  EXPECT_EQ(shim.partition_epoch(), 1u);
  EXPECT_TRUE(shim.severed(util::PeerId{1}, util::PeerId{2}));
  EXPECT_TRUE(shim.severed(util::PeerId{2}, util::PeerId{1}));
  EXPECT_FALSE(shim.severed(util::PeerId{2}, util::PeerId{3}));
  EXPECT_FALSE(shim.severed(util::PeerId{1}, util::PeerId{1}));

  shim.heal_partition(util::seconds(2));
  EXPECT_EQ(shim.partition_epoch(), 2u);
  EXPECT_FALSE(shim.severed(util::PeerId{1}, util::PeerId{2}));
  // Both edges of the window are on the decision log.
  int starts = 0, heals = 0;
  for (const auto& e : shim.decisions()) {
    starts += e.action == fault::FaultAction::PartitionStart;
    heals += e.action == fault::FaultAction::PartitionHeal;
  }
  EXPECT_EQ(starts, 1);
  EXPECT_EQ(heals, 1);
}

// ---- shim wired into a live transport --------------------------------------

TEST(SocketTransportFault, ShimLossOfOneDropsEverythingAtSend) {
  net::SocketTransport t(config_at(24700), &core::decode_message);
  fault::FrameShim shim(fault::FaultPlan::uniform_loss(1.0, 3));
  t.set_fault_shim(&shim);
  std::size_t delivered = 0;
  t.attach(util::PeerId{0}, {}, [](util::PeerId, const net::Message&) {});
  t.attach(util::PeerId{1}, {},
           [&](util::PeerId, const net::Message&) { ++delivered; });
  for (std::uint64_t i = 0; i < 20; ++i) {
    t.send(util::PeerId{0}, util::PeerId{1}, ack(i));
  }
  // Dropped at send: nothing was ever queued, so the transport is flushed.
  EXPECT_EQ(t.stats().messages_fault_dropped, 20u);
  EXPECT_TRUE(t.flushed());
  for (int i = 0; i < 20; ++i) t.pump(1);
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(t.stats().messages_sent, 20u);
}

TEST(SocketTransportFault, ShimDelayHoldsThenDeliversAll) {
  net::SocketTransport t(config_at(24750), &core::decode_message);
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.default_link.extra_delay = util::milliseconds(30);
  fault::FrameShim shim(plan);
  t.set_fault_shim(&shim);
  std::size_t delivered = 0;
  t.attach(util::PeerId{0}, {}, [](util::PeerId, const net::Message&) {});
  t.attach(util::PeerId{1}, {},
           [&](util::PeerId, const net::Message&) { ++delivered; });
  for (std::uint64_t i = 0; i < 5; ++i) {
    t.send(util::PeerId{0}, util::PeerId{1}, ack(i));
  }
  // Held frames keep the transport un-flushed until released and written.
  EXPECT_EQ(t.stats().messages_delayed, 5u);
  EXPECT_FALSE(t.flushed());
  ASSERT_TRUE(pump_until(t, [&] { return delivered == 5; }));
}

TEST(SocketTransportFault, ShimDuplicateDeliversAnExtraCopy) {
  net::SocketTransport t(config_at(24780), &core::decode_message);
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.default_link.duplicate_probability = 1.0;
  fault::FrameShim shim(plan);
  t.set_fault_shim(&shim);
  std::size_t delivered = 0;
  t.attach(util::PeerId{0}, {}, [](util::PeerId, const net::Message&) {});
  t.attach(util::PeerId{1}, {},
           [&](util::PeerId, const net::Message&) { ++delivered; });
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.send(util::PeerId{0}, util::PeerId{1}, ack(i));
  }
  EXPECT_EQ(t.stats().messages_duplicated, 10u);
  ASSERT_TRUE(pump_until(t, [&] { return delivered == 20; }));
}

// A partition blackholes frames in both directions and resets the live
// sessions that cross the cut; healing restores delivery.
TEST(SocketTransportFault, PartitionBlackholesResetsThenHeals) {
  net::SocketTransport t(config_at(24800), &core::decode_message);
  fault::FrameShim shim(fault::FaultPlan{});
  t.set_fault_shim(&shim);
  std::size_t delivered = 0;
  t.attach(util::PeerId{0}, {}, [](util::PeerId, const net::Message&) {});
  t.attach(util::PeerId{1}, {},
           [&](util::PeerId, const net::Message&) { ++delivered; });

  t.send(util::PeerId{0}, util::PeerId{1}, ack(1));
  ASSERT_TRUE(pump_until(t, [&] { return delivered == 1; }));

  shim.start_partition({{util::PeerId{1}}}, 0);
  // pump() notices the epoch change and resets the crossing session.
  ASSERT_TRUE(pump_until(t, [&] { return t.stats().sessions_reset >= 1; }));
  t.send(util::PeerId{0}, util::PeerId{1}, ack(2));
  EXPECT_EQ(t.stats().messages_partitioned, 1u);
  for (int i = 0; i < 10; ++i) t.pump(1);
  EXPECT_EQ(delivered, 1u);

  shim.heal_partition(0);
  t.send(util::PeerId{0}, util::PeerId{1}, ack(3));
  ASSERT_TRUE(pump_until(t, [&] { return delivered == 2; }));
}

// A corrupted frame injected over a real TCP connection is rejected by the
// CRC gate, counted, and dropped — and the connection keeps working: a
// valid frame behind it on the same stream is still delivered.
TEST(SocketTransportFault, CorruptFrameIsCountedDroppedAndSessionSurvives) {
  net::SocketTransport t(config_at(24900), &core::decode_message);
  std::size_t delivered = 0;
  t.attach(util::PeerId{1}, {},
           [&](util::PeerId, const net::Message&) { ++delivered; });

  // A hand-rolled client connection to peer 1's listener.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(t.port_of(util::PeerId{1}));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ASSERT_LT(Clock::now(), deadline);
    t.pump(5);
  }

  std::vector<std::uint8_t> corrupt;
  net::encode_frame(util::PeerId{0}, util::PeerId{1}, *ack(7), corrupt);
  corrupt[10] ^= 0x40;  // one bit inside the post-length region
  std::vector<std::uint8_t> valid;
  net::encode_frame(util::PeerId{0}, util::PeerId{1}, *ack(8), valid);
  ASSERT_EQ(::write(fd, corrupt.data(), corrupt.size()),
            static_cast<ssize_t>(corrupt.size()));
  ASSERT_EQ(::write(fd, valid.data(), valid.size()),
            static_cast<ssize_t>(valid.size()));

  // The valid frame arrives; the corrupt one was counted and dropped.
  ASSERT_TRUE(pump_until(t, [&] { return delivered == 1; }));
  EXPECT_EQ(t.stats().frames_corrupt, 1u);
  EXPECT_EQ(t.stats().messages_delivered, 1u);
  ::close(fd);
}

}  // namespace

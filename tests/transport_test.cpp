// SocketTransport unit tests: real loopback TCP, single process.
//
// Each suite uses its own base_port so parallel ctest runs of this binary
// and the deployment suites never collide. Wall-clock loops are bounded by
// generous deadlines (seconds) but normally finish in milliseconds — every
// socket involved is on 127.0.0.1.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/messages.hpp"
#include "core/wire_registry.hpp"
#include "net/socket_transport.hpp"
#include "util/ids.hpp"

namespace {

using namespace p2prm;
using Clock = std::chrono::steady_clock;

net::SocketConfig config_at(std::uint16_t base_port) {
  net::SocketConfig c;
  c.base_port = base_port;
  // Wall == sim for the backoff schedule; the tests pump with their own
  // wall deadlines and do not care about the mapping.
  c.time_scale = 1.0;
  c.connect.initial = util::milliseconds(5);
  c.connect.max_delay = util::milliseconds(50);
  return c;
}

std::unique_ptr<core::ReportAck> ack(std::uint64_t seq) {
  auto m = std::make_unique<core::ReportAck>();
  m->seq = seq;
  return m;
}

// Pumps until `done()` or the wall deadline; returns whether done() held.
template <typename Pred>
bool pump_until(net::SocketTransport& t, Pred done, int deadline_ms = 5000) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  while (!done()) {
    if (Clock::now() > deadline) return false;
    t.pump(/*timeout_ms=*/10);
  }
  return true;
}

TEST(SocketTransport, PortAssignmentFollowsPeerId) {
  net::SocketTransport t(config_at(24000), &core::decode_message);
  EXPECT_EQ(t.port_of(util::PeerId{0}), 24000);
  EXPECT_EQ(t.port_of(util::PeerId{7}), 24007);
}

TEST(SocketTransport, LoopbackDeliveryAndFifoOrder) {
  net::SocketTransport t(config_at(24100), &core::decode_message);
  std::vector<std::uint64_t> seen;
  util::PeerId seen_from{};
  t.attach(util::PeerId{0}, {}, [](util::PeerId, const net::Message&) {});
  t.attach(util::PeerId{1}, {},
           [&](util::PeerId from, const net::Message& m) {
             seen_from = from;
             const auto* a = net::message_as<core::ReportAck>(m);
             ASSERT_NE(a, nullptr);
             seen.push_back(a->seq);
           });
  ASSERT_TRUE(t.attached(util::PeerId{0}));
  ASSERT_TRUE(t.attached(util::PeerId{1}));

  for (std::uint64_t i = 0; i < 10; ++i) {
    t.send(util::PeerId{0}, util::PeerId{1}, ack(i));
  }
  // Delivery never happens inline with send().
  EXPECT_TRUE(seen.empty());

  ASSERT_TRUE(pump_until(t, [&] { return seen.size() == 10; }));
  EXPECT_EQ(seen_from, util::PeerId{0});
  // TCP gives per-connection ordering; the contract promises per-(from,to)
  // FIFO on top of it.
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(seen[i], i);

  EXPECT_EQ(t.stats().messages_sent, 10u);
  EXPECT_EQ(t.stats().messages_delivered, 10u);
  EXPECT_EQ(t.stats().per_type_count.at("core.report_ack"), 10u);
  EXPECT_TRUE(t.flushed());
}

TEST(SocketTransport, TwoTransportsAcrossRealConnections) {
  // Two transports in one process model two OS processes: frames cross a
  // real accepted TCP connection, not an in-process shortcut.
  net::SocketTransport a(config_at(24200), &core::decode_message);
  net::SocketTransport b(config_at(24200), &core::decode_message);
  std::vector<std::uint64_t> seen;
  a.attach(util::PeerId{0}, {}, [](util::PeerId, const net::Message&) {});
  b.attach(util::PeerId{1}, {},
           [&](util::PeerId, const net::Message& m) {
             seen.push_back(net::message_as<core::ReportAck>(m)->seq);
           });

  a.send(util::PeerId{0}, util::PeerId{1}, ack(42));
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (seen.empty() && Clock::now() < deadline) {
    a.pump(5);
    b.pump(5);
  }
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 42u);
  EXPECT_EQ(a.stats().messages_sent, 1u);
  EXPECT_EQ(b.stats().messages_delivered, 1u);
}

TEST(SocketTransport, UnreachablePeerCountsUndeliverable) {
  net::SocketTransport t(config_at(24300), &core::decode_message);
  t.attach(util::PeerId{0}, {}, [](util::PeerId, const net::Message&) {});
  // Peer 9 never attached anywhere: the connect is refused, the session
  // enters backoff, and the queued frame is dropped as undeliverable — the
  // silent-loss signal RM failure detection relies on.
  t.send(util::PeerId{0}, util::PeerId{9}, ack(1));
  ASSERT_TRUE(
      pump_until(t, [&] { return t.stats().messages_undeliverable >= 1; }));
  EXPECT_EQ(t.stats().messages_delivered, 0u);

  // Frames sent while the session sits in backoff are dropped immediately.
  t.send(util::PeerId{0}, util::PeerId{9}, ack(2));
  ASSERT_TRUE(
      pump_until(t, [&] { return t.stats().messages_undeliverable >= 2; }));
}

TEST(SocketTransport, DetachClosesTheEndpoint) {
  net::SocketTransport t(config_at(24400), &core::decode_message);
  std::size_t delivered = 0;
  t.attach(util::PeerId{0}, {}, [](util::PeerId, const net::Message&) {});
  t.attach(util::PeerId{1}, {},
           [&](util::PeerId, const net::Message&) { ++delivered; });
  t.detach(util::PeerId{1});
  EXPECT_FALSE(t.attached(util::PeerId{1}));

  // Messages toward the departed peer end up undeliverable, not delivered.
  t.send(util::PeerId{0}, util::PeerId{1}, ack(1));
  ASSERT_TRUE(
      pump_until(t, [&] { return t.stats().messages_undeliverable >= 1; }));
  EXPECT_EQ(delivered, 0u);
}

TEST(SocketTransport, AttachOnATakenPortThrows) {
  net::SocketTransport a(config_at(24500), &core::decode_message);
  net::SocketTransport b(config_at(24500), &core::decode_message);
  a.attach(util::PeerId{0}, {}, [](util::PeerId, const net::Message&) {});
  EXPECT_THROW(
      b.attach(util::PeerId{0}, {}, [](util::PeerId, const net::Message&) {}),
      std::runtime_error);
}

TEST(SocketTransport, EstimateDelayScalesWithBytes) {
  net::SocketTransport t(config_at(24600), &core::decode_message);
  const auto small = t.estimate_delay(util::PeerId{0}, util::PeerId{1}, 100);
  const auto large =
      t.estimate_delay(util::PeerId{0}, util::PeerId{1}, 10'000'000);
  EXPECT_GT(small, 0);
  EXPECT_GT(large, small);
}

}  // namespace

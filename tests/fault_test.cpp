// FaultPlan / FaultInjector: stochastic link faults, scheduled partitions
// and crash-restarts, and the byte-for-byte determinism guarantee
// (docs/FAULT_MODEL.md).
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "media/catalog.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "workload/arrivals.hpp"
#include "workload/heterogeneity.hpp"
#include "workload/requests.hpp"

namespace p2prm {
namespace {

using util::PeerId;

struct Ping final : net::Message {
  static constexpr net::WireType kType = net::WireType::TestBase;
  std::size_t wire_size() const override { return 100; }
  std::string_view type_name() const override { return "test.ping"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override {
    w.zeros(100 - net::kFrameHeaderBytes);
  }
};

// Two peers, a counter on the receiver, and an injector running `plan`.
struct NetRig {
  sim::Simulator sim{1};
  net::Topology topo{};
  net::Network net{sim, topo};
  int received = 0;
  fault::FaultInjector injector;

  explicit NetRig(fault::FaultPlan plan, fault::FaultInjector::Hooks hooks = {})
      : injector(sim, net, std::move(plan), std::move(hooks)) {
    topo.place_at(PeerId{1}, {0, 0});
    topo.place_at(PeerId{2}, {10, 0});
    net.attach(PeerId{1}, {}, [](PeerId, const net::Message&) {});
    net.attach(PeerId{2}, {},
               [this](PeerId, const net::Message&) { ++received; });
    injector.arm();
  }

  void send_pings(int n) {
    for (int i = 0; i < n; ++i) {
      net.send(PeerId{1}, PeerId{2}, std::make_unique<Ping>());
    }
  }
};

TEST(FaultInjector, UniformLossDropsRoughlyTheConfiguredFraction) {
  NetRig rig(fault::FaultPlan::uniform_loss(0.25, 9));
  rig.send_pings(2000);
  rig.sim.run_until();
  EXPECT_NEAR(rig.received / 2000.0, 0.75, 0.05);
  EXPECT_EQ(rig.net.stats().messages_fault_dropped,
            2000u - static_cast<unsigned>(rig.received));
  for (const auto& e : rig.injector.trace()) {
    EXPECT_EQ(e.action, fault::FaultAction::Drop);
  }
}

TEST(FaultInjector, LossOfOneDropsEverything) {
  NetRig rig(fault::FaultPlan::uniform_loss(1.0, 9));
  rig.send_pings(50);
  rig.sim.run_until();
  EXPECT_EQ(rig.received, 0);
  EXPECT_EQ(rig.net.stats().messages_fault_dropped, 50u);
}

TEST(FaultInjector, DuplicationDeliversExtraCopies) {
  fault::FaultPlan plan;
  plan.seed = 4;
  plan.default_link.duplicate_probability = 1.0;
  NetRig rig(std::move(plan));
  rig.send_pings(20);
  rig.sim.run_until();
  EXPECT_EQ(rig.received, 40);
  EXPECT_EQ(rig.net.stats().messages_duplicated, 20u);
}

TEST(FaultInjector, ExtraDelayPostponesDelivery) {
  fault::FaultPlan plan;
  plan.seed = 4;
  plan.default_link.extra_delay = util::seconds(2);
  NetRig rig(std::move(plan));
  util::SimTime delivered_at = -1;
  rig.net.attach(PeerId{2}, {}, [&](PeerId, const net::Message&) {
    delivered_at = rig.sim.now();
  });
  rig.net.send(PeerId{1}, PeerId{2}, std::make_unique<Ping>());
  rig.sim.run_until();
  EXPECT_GE(delivered_at, util::seconds(2));
}

TEST(FaultInjector, PerLinkFaultsOverrideTheDefault) {
  fault::FaultPlan plan;
  plan.seed = 4;
  plan.default_link.drop_probability = 1.0;
  plan.per_link[{PeerId{1}, PeerId{2}}] = fault::LinkFaults{};  // clean link
  NetRig rig(std::move(plan));
  rig.send_pings(10);
  // The reverse direction uses the lossy default.
  for (int i = 0; i < 10; ++i) {
    rig.net.send(PeerId{2}, PeerId{1}, std::make_unique<Ping>());
  }
  rig.sim.run_until();
  EXPECT_EQ(rig.received, 10);
  EXPECT_EQ(rig.net.stats().messages_fault_dropped, 10u);
}

TEST(FaultInjector, PartitionWindowSplitsThenHeals) {
  fault::FaultPlan plan;
  plan.seed = 4;
  plan.add_partition(util::seconds(1), util::seconds(2),
                     {{PeerId{1}}, {PeerId{2}}});
  NetRig rig(std::move(plan));

  // Before the split: delivered. During: blocked. After heal: delivered.
  rig.sim.schedule_at(util::milliseconds(500), [&] { rig.send_pings(1); });
  rig.sim.schedule_at(util::milliseconds(1500), [&] { rig.send_pings(1); });
  rig.sim.schedule_at(util::milliseconds(2500), [&] { rig.send_pings(1); });
  rig.sim.run_until();

  EXPECT_EQ(rig.received, 2);
  EXPECT_EQ(rig.net.stats().messages_partitioned, 1u);
  EXPECT_FALSE(rig.net.partition_active());
  // The trace recorded both edges of the window.
  int starts = 0, heals = 0;
  for (const auto& e : rig.injector.trace()) {
    starts += e.action == fault::FaultAction::PartitionStart;
    heals += e.action == fault::FaultAction::PartitionHeal;
  }
  EXPECT_EQ(starts, 1);
  EXPECT_EQ(heals, 1);
}

TEST(FaultInjector, CrashRestartFiresHooksAtScheduledTimes) {
  fault::FaultPlan plan;
  plan.seed = 4;
  plan.crash_restart(PeerId{2}, util::seconds(1), util::seconds(3));

  std::vector<std::pair<util::SimTime, bool>> calls;  // (time, is_restart)
  fault::FaultInjector::Hooks hooks;
  NetRig* rig_ptr = nullptr;
  hooks.crash = [&](PeerId p) {
    EXPECT_EQ(p, PeerId{2});
    calls.emplace_back(rig_ptr->sim.now(), false);
  };
  hooks.restart = [&](PeerId p) {
    EXPECT_EQ(p, PeerId{2});
    calls.emplace_back(rig_ptr->sim.now(), true);
  };
  NetRig rig(std::move(plan), std::move(hooks));
  rig_ptr = &rig;
  rig.sim.run_until(util::seconds(10));

  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0], (std::pair<util::SimTime, bool>{util::seconds(1), false}));
  EXPECT_EQ(calls[1], (std::pair<util::SimTime, bool>{util::seconds(3), true}));
  int crashes = 0, restarts = 0;
  for (const auto& e : rig.injector.trace()) {
    crashes += e.action == fault::FaultAction::Crash;
    restarts += e.action == fault::FaultAction::Restart;
  }
  EXPECT_EQ(crashes, 1);
  EXPECT_EQ(restarts, 1);
}

// --- full-system determinism (the acceptance property) ----------------------

// Runs a complete middleware world under a composite fault plan and returns
// the injector's trace fingerprint plus a workload outcome digest.
struct RunResult {
  std::uint64_t fingerprint = 0;
  std::size_t trace_len = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
};

RunResult run_faulted_world(std::uint64_t plan_seed) {
  media::Catalog catalog = media::ladder_catalog();
  core::SystemConfig config;
  config.seed = 11;
  core::System system(config);
  util::Rng rng{321};
  workload::ObjectPopulation population(catalog, workload::PopulationConfig{},
                                        system, rng);
  auto factory = workload::make_peer_factory(
      catalog, population, workload::HeterogeneityConfig{},
      workload::ProvisionConfig{}, system, rng);
  workload::bootstrap_network(system, factory, 16);

  const util::SimTime t0 = system.simulator().now();
  fault::FaultPlan plan;
  plan.seed = plan_seed;
  plan.default_link.drop_probability = 0.1;
  plan.default_link.duplicate_probability = 0.02;
  plan.default_link.reorder_probability = 0.05;
  plan.isolate_primary_rm(t0 + util::seconds(10), t0 + util::seconds(15));
  plan.crash_restart_primary_rm(t0 + util::seconds(20), t0 + util::seconds(28));
  system.install_fault_plan(std::move(plan));
  auto& injector = *system.fault_injector();

  workload::RequestConfig rc;
  workload::RequestSynthesizer synth(catalog, population, rc);
  workload::WorkloadDriver driver(
      system, std::make_unique<workload::PoissonArrivals>(0.5), synth);
  driver.start(system.simulator().now() + util::seconds(40));
  system.run_for(util::seconds(70));

  RunResult r;
  r.fingerprint = injector.trace_fingerprint();
  r.trace_len = injector.trace().size();
  r.completed = system.ledger().completed();
  r.rejected = system.ledger().rejected();
  return r;
}

TEST(FaultDeterminism, IdenticalPlanAndSeedReproduceTheTraceExactly) {
  const RunResult a = run_faulted_world(77);
  const RunResult b = run_faulted_world(77);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.trace_len, b.trace_len);
  // Not just the faults: the whole run is bit-identical.
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_GT(a.trace_len, 0u);
}

TEST(FaultDeterminism, DifferentSeedsDiverge) {
  const RunResult a = run_faulted_world(77);
  const RunResult b = run_faulted_world(78);
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(FaultDeterminism, SystemSurvivesPrimaryRmCrashRestart) {
  // The composite plan kills and restarts the primary RM mid-run; after the
  // dust settles the domain has exactly one leader and peers follow it.
  media::Catalog catalog = media::ladder_catalog();
  core::SystemConfig config;
  config.seed = 11;
  core::System system(config);
  util::Rng rng{321};
  workload::ObjectPopulation population(catalog, workload::PopulationConfig{},
                                        system, rng);
  auto factory = workload::make_peer_factory(
      catalog, population, workload::HeterogeneityConfig{},
      workload::ProvisionConfig{}, system, rng);
  workload::bootstrap_network(system, factory, 12);

  const util::SimTime t0 = system.simulator().now();
  const auto old_rm = system.resource_manager_ids().at(0);
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.crash_restart_primary_rm(t0 + util::seconds(5), t0 + util::seconds(15));
  system.install_fault_plan(std::move(plan));
  system.run_for(util::seconds(40));

  // The restarted ex-RM is alive again and rejoined as a member.
  auto* node = system.peer(old_rm);
  ASSERT_NE(node, nullptr);
  EXPECT_TRUE(node->alive());
  EXPECT_TRUE(node->joined());
  const auto rms = system.resource_manager_ids();
  ASSERT_EQ(rms.size(), 1u);
  for (const auto id : system.alive_peer_ids()) {
    EXPECT_EQ(system.peer(id)->current_rm(), rms[0]) << "peer " << id;
  }
}

}  // namespace
}  // namespace p2prm

// Dynamic QoS renegotiation (§4.5): "Users may change QoS requirements
// dynamically. Specifically, they may reduce the requested bit-rate or
// relax their deadlines to cope with congested networks, or increase the
// QoS parameters if they assume resources are abundant."
//
// Two stories:
//   1. A task is admitted with a feasible deadline, then the transcoder
//      host gets hit by unexpected background load; the user relaxes the
//      deadline mid-stream, so the late delivery is judged against the
//      renegotiated requirement instead of counting as a miss.
//   2. A user tightens a lazy deadline; the RM re-plans the pipeline if a
//      faster assignment exists (and keeps the old one otherwise).
#include <iostream>

#include "core/system.hpp"
#include "core/trace.hpp"
#include "media/catalog.hpp"
#include "metrics/report.hpp"
#include "workload/heterogeneity.hpp"

using namespace p2prm;

int main() {
  core::SystemConfig config;
  config.seed = 31;
  config.admission_control = false;  // let optimistic plans through
  core::System system(config);
  core::Tracer tracer;
  system.set_tracer(&tracer);

  media::Catalog catalog = media::ladder_catalog();
  util::Rng rng(31);
  workload::PopulationConfig pop;
  workload::ObjectPopulation population(catalog, pop, system, rng);
  auto factory = workload::make_peer_factory(
      catalog, population, workload::HeterogeneityConfig{},
      workload::ProvisionConfig{}, system, rng);
  const auto ids = workload::bootstrap_network(system, factory, 10);

  // A dedicated (modest) host for the conversions we will request, so both
  // stories exercise a real transcode whose duration the deadlines bracket.
  const auto& object = population.at(0);
  media::MediaFormat target = object.format;
  target.bitrate_kbps = object.format.bitrate_kbps / 2;
  const auto& object2 = population.at(1);
  media::MediaFormat target2 = object2.format;
  target2.bitrate_kbps = object2.format.bitrate_kbps / 2;
  util::PeerId transcoder_host;
  {
    overlay::PeerSpec spec;
    spec.capacity_ops_per_s = 40e6;  // a transcode takes several seconds
    core::PeerInventory inv;
    inv.services = {
        {system.next_service_id(), media::TranscoderType{object.format, target}},
        {system.next_service_id(),
         media::TranscoderType{object2.format, target2}}};
    transcoder_host = system.add_peer(spec, std::move(inv));
    system.run_for(util::seconds(2));
  }

  const auto report = [&](const char* label, util::TaskId task) {
    const auto* r = system.ledger().record(task);
    std::cout << "  [" << label << "] "
              << core::task_status_name(r->status);
    if (r->finished >= 0) {
      std::cout << " in " << util::format_time(r->response_time())
                << " against a " << util::format_time(r->deadline)
                << " deadline -> "
                << (r->missed_deadline ? "MISSED" : "met");
    }
    std::cout << "\n";
  };

  // Story 1: the plan was feasible, then the world changed; the user
  // relaxes the deadline rather than losing the stream.
  {
    core::QoSRequirements q;
    q.object = object.id;
    q.acceptable_formats = {target};
    q.deadline = util::seconds(25);  // feasible at admission time
    const auto task = system.submit_task(ids.back(), q);
    std::cout << "task " << task << ": submitted with a 25 s deadline ("
              << util::format("%.0fs", object.duration_s)
              << " of media, one transcode hop)\n";
    system.run_for(util::milliseconds(300));
    // Unexpected background load lands on the only transcoder host.
    std::cout << "  ... background job slams the transcoder host\n";
    sched::Job background;
    background.id = system.next_job_id();
    background.total_ops = background.remaining_ops = 1200e6;  // ~30 s busy
    background.absolute_deadline = system.simulator().now() + util::minutes(10);
    system.peer(transcoder_host)->processor().submit(background);
    system.run_for(util::seconds(2));
    std::cout << "  ... user sees the stall and relaxes to 2 minutes\n";
    system.update_task_deadline(task, util::minutes(2));
    system.run_for(util::minutes(3));
    report("relaxed", task);
  }

  // Story 2: tighten a lazy deadline mid-flight.
  {
    core::QoSRequirements q;
    q.object = object2.id;
    q.acceptable_formats = {target2};
    q.deadline = util::minutes(10);
    const auto task = system.submit_task(ids.front(), q);
    std::cout << "task " << task << ": submitted with a lazy 10 min deadline\n";
    system.run_for(util::milliseconds(200));
    std::cout << "  ... user tightens to 1 minute; the RM re-plans if a "
                 "faster assignment exists\n";
    system.update_task_deadline(task, util::minutes(1));
    system.run_for(util::minutes(3));
    report("tightened", task);
  }

  std::cout << "\nRM-side renegotiation trace:\n";
  util::Table t({"time", "event", "task", "detail"});
  for (const auto& e : tracer.events()) {
    if (e.kind == core::TraceKind::TaskRecovered ||
        e.kind == core::TraceKind::TaskAdmitted) {
      t.cell(util::format_time(e.at))
          .cell(std::string(core::trace_kind_name(e.kind)))
          .cell(util::to_string(e.task))
          .cell(e.detail)
          .end_row();
    }
  }
  t.print(std::cout);

  const auto& ledger = system.ledger();
  return ledger.completed() == 2 && ledger.missed() == 0 ? 0 : 1;
}

// Quickstart: the smallest complete use of the p2prm middleware.
//
//   1. Create a System (simulator + network + configuration).
//   2. Add peers: they join through the Gnutella-0.6-style protocol and the
//      first becomes the domain's Resource Manager.
//   3. Give one peer a media object and others transcoder services.
//   4. Submit a user query (object + acceptable formats + deadline) and run.
//
// Build & run:  ./build/examples/quickstart
//
// Transport (docs/TRANSPORT.md): the same scenario can run over either
// control-plane backend —
//   --transport=sim       simulated network, deterministic (default)
//   --transport=socket    real loopback TCP inside this one process
//   --time-scale=S        socket only: wall-seconds per sim-second (0.05)
//   --base-port=P         socket only: peer N listens on P+N (19000)
//
// Observability (docs/OBSERVABILITY.md): exporter flags write machine-
// readable snapshots of the run —
//   --metrics-json=PATH      flat v1 summary (schema_version 1)
//   --metrics-json-v2=PATH   typed registry export ("p2prm-metrics/2")
//   --prometheus=PATH        Prometheus text exposition
//   --spans=PATH             per-task span trees (enables config.enable_spans)
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "core/system.hpp"
#include "media/catalog.hpp"
#include "metrics/report.hpp"
#include "obs/span.hpp"
#include "util/args.hpp"

using namespace p2prm;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::string metrics_v1_path = args.get("metrics-json", "");
  const std::string metrics_v2_path = args.get("metrics-json-v2", "");
  const std::string prometheus_path = args.get("prometheus", "");
  const std::string spans_path = args.get("spans", "");

  // 1. The system. One config object holds every knob; defaults implement
  //    the paper's design (LLS scheduling, fairness-maximizing allocation,
  //    admission control, backup RM, gossip).
  core::SystemConfig config;
  config.seed = 2026;
  // Span dumps need the per-hop trace events (off by default).
  config.enable_spans = !spans_path.empty();
  try {
    config.transport =
        core::transport_kind_from_name(args.get("transport", "sim"));
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (config.transport == core::TransportKind::Socket) {
    // 0.05 wall-seconds per sim-second: the ~2min scenario finishes in a
    // few wall seconds while leaving loopback ample room to keep up.
    config.socket.time_scale = args.get_double("time-scale", 0.05);
    config.socket.base_port = static_cast<std::uint16_t>(
        args.get_int("base-port", config.socket.base_port));
  }
  core::System system(config);
  core::Tracer tracer;
  if (!spans_path.empty()) system.set_tracer(&tracer);

  // 2. A tiny catalog: one source format, one target, one conversion.
  const media::MediaFormat source{media::Codec::MPEG2, media::kRes800x600, 512};
  const media::MediaFormat target{media::Codec::MPEG4, media::kRes640x480, 256};

  // Helper: add a peer with given inventory and let the overlay settle.
  auto add_peer = [&](double capacity_mops, core::PeerInventory inventory) {
    overlay::PeerSpec spec;
    spec.capacity_ops_per_s = capacity_mops * 1e6;
    spec.online_since = -util::minutes(60);  // uptime history: RM-eligible
    const auto id = system.add_peer(spec, std::move(inventory));
    system.run_for(util::milliseconds(100));
    return id;
  };

  // First peer founds the domain and becomes its Resource Manager.
  const auto rm = add_peer(120, {});

  // A peer storing the media object.
  util::Rng rng(1);
  const auto movie =
      media::make_object(system.next_object_id(), source, 15.0, rng);
  core::PeerInventory library;
  library.objects = {movie};
  const auto source_peer = add_peer(60, std::move(library));

  // Two peers offering the transcoding service (the RM will pick by
  // fairness).
  core::PeerInventory transcoder_a;
  transcoder_a.services = {{system.next_service_id(),
                            media::TranscoderType{source, target}}};
  add_peer(80, std::move(transcoder_a));
  core::PeerInventory transcoder_b;
  transcoder_b.services = {{system.next_service_id(),
                            media::TranscoderType{source, target}}};
  add_peer(40, std::move(transcoder_b));

  // The requesting user.
  const auto user = add_peer(50, {});
  system.run_for(util::seconds(2));  // profiler reports, backup election

  std::cout << "domain: " << system.domains().size() << " (RM peer " << rm
            << "), peers alive: " << system.alive_count() << "\n";

  // 3. Submit the query: "movie, any of {640x480 MPEG-4 256kbps}, within
  //    60 seconds".
  core::QoSRequirements q;
  q.object = movie.id;
  q.acceptable_formats = {target};
  q.deadline = util::seconds(60);
  q.importance = 5.0;
  const auto task = system.submit_task(user, q);
  std::cout << "submitted task " << task << " from peer " << user
            << " for object " << movie.id << " ("
            << movie.format.to_string() << " -> " << target.to_string()
            << ")\n";

  // 4. Run and inspect the outcome. The drain is a no-op in sim mode; over
  //    sockets it flushes whatever the kernel still has in flight.
  system.run_for(util::minutes(2));
  system.drain_transport(/*wall_ms=*/300);
  const auto* record = system.ledger().record(task);
  std::cout << "task status: " << core::task_status_name(record->status);
  if (record->finished >= 0) {
    std::cout << ", delivered after "
              << util::format_time(record->response_time())
              << (record->missed_deadline ? " (MISSED deadline)"
                                          : " (deadline met)");
  }
  std::cout << "\n\n";
  metrics::task_table(system.ledger()).print(std::cout);
  std::cout << "\nTraffic:\n";
  metrics::traffic_table(system.transport().stats()).print(std::cout);
  (void)source_peer;

  const auto write_or_die = [](const std::string& path, bool ok) {
    if (!ok) {
      std::cerr << "failed to write " << path << "\n";
      std::exit(2);
    }
    std::cout << "wrote " << path << "\n";
  };
  if (!metrics_v1_path.empty()) {
    write_or_die(metrics_v1_path,
                 metrics::write_metrics_json(system, metrics_v1_path));
  }
  if (!metrics_v2_path.empty()) {
    write_or_die(metrics_v2_path,
                 metrics::write_metrics_json_v2(system, metrics_v2_path));
  }
  if (!prometheus_path.empty()) {
    write_or_die(prometheus_path,
                 metrics::write_metrics_prometheus(system, prometheus_path));
  }
  if (!spans_path.empty()) {
    std::ofstream out(spans_path);
    obs::write_spans(obs::build_task_spans(tracer), out);
    write_or_die(spans_path, static_cast<bool>(out));
  }
  return record->status == core::TaskStatus::Completed ? 0 : 1;
}

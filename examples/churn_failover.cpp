// Churn & failover: the "dynamic environment" the paper targets (§1, §4.1).
//
// Demonstrates, with narration:
//   * sustained peer churn (graceful leaves + silent crashes) with live
//     task recovery by the Resource Manager, and
//   * a deliberate RM assassination, showing the backup RM take over from
//     its synchronized copy of the information base.
#include <iostream>

#include "core/system.hpp"
#include "core/trace.hpp"
#include "media/catalog.hpp"
#include "metrics/report.hpp"
#include "workload/arrivals.hpp"
#include "workload/churn.hpp"
#include "workload/heterogeneity.hpp"

using namespace p2prm;

int main() {
  core::SystemConfig config;
  config.seed = 13;
  core::System system(config);
  core::Tracer tracer;  // structured event log of the whole run
  system.set_tracer(&tracer);
  media::Catalog catalog = media::ladder_catalog();
  util::Rng rng(13);
  workload::PopulationConfig pop;
  workload::ObjectPopulation population(catalog, pop, system, rng);
  auto factory = workload::make_peer_factory(
      catalog, population, workload::HeterogeneityConfig{},
      workload::ProvisionConfig{}, system, rng);

  std::cout << "Bootstrapping 20 peers...\n";
  workload::bootstrap_network(system, factory, 20);
  const auto rm0 = system.resource_manager_ids().at(0);
  std::cout << "domain formed, RM is peer " << rm0 << "\n";

  // Background workload.
  workload::RequestConfig rc;
  workload::RequestSynthesizer synth(catalog, population, rc);
  workload::WorkloadDriver driver(
      system, std::make_unique<workload::PoissonArrivals>(0.6), synth);
  driver.start(system.simulator().now() + util::minutes(4));

  // Phase 1: churn.
  std::cout << "\nPhase 1: 60s of churn (mean session 45s, half crash)\n";
  workload::ChurnConfig churn_config;
  churn_config.mean_session_s = 45.0;
  churn_config.crash_fraction = 0.5;
  churn_config.churn_rms = false;  // save the RM for phase 2
  workload::ChurnDriver churn(system, factory, churn_config);
  churn.track_all_alive();
  system.run_for(util::minutes(1));
  churn.stop();

  auto* rm_node = system.peer(rm0);
  const auto& rm_stats = rm_node->resource_manager()->stats();
  std::cout << "  departures: " << churn.stats().departures << " ("
            << churn.stats().crashes << " crashes), respawns: "
            << churn.stats().respawns << "\n"
            << "  member failures detected by RM: "
            << rm_stats.member_failures << "\n"
            << "  task recoveries: " << rm_stats.recoveries_succeeded << "/"
            << rm_stats.recoveries_attempted << "\n";

  // Phase 2: kill the Resource Manager.
  std::cout << "\nPhase 2: crashing the Resource Manager (peer " << rm0
            << ") at t=" << util::format_time(system.simulator().now())
            << "\n";
  const auto backup =
      rm_node->resource_manager()->info().domain().backup();
  std::cout << "  designated backup: "
            << (backup ? util::to_string(*backup) : "none") << "\n";
  system.crash_peer(rm0);
  const auto crash_time = system.simulator().now();
  // Watch for the takeover.
  util::SimTime takeover_at = -1;
  while (system.simulator().now() < crash_time + util::seconds(30)) {
    system.run_for(util::milliseconds(200));
    const auto rms = system.resource_manager_ids();
    if (!rms.empty() && rms[0] != rm0) {
      takeover_at = system.simulator().now();
      std::cout << "  peer " << rms[0] << " took over after "
                << util::format_time(takeover_at - crash_time) << "\n";
      break;
    }
  }
  if (takeover_at < 0) std::cout << "  no takeover observed (!)\n";

  // Let the system settle and the workload drain.
  system.run_for(util::minutes(4));
  system.ledger().orphan_pending(system.simulator().now());

  std::cout << "\nFinal outcome (" << driver.submitted()
            << " tasks submitted through churn and failover):\n";
  metrics::task_table(system.ledger()).print(std::cout);
  std::cout << "\nDomains at end:\n";
  metrics::domain_table(system).print(std::cout);

  // The tracer gives the control-plane story of the run: who failed, who
  // took over, what got recovered.
  std::cout << "\nControl-plane trace (membership & role events):\n";
  util::Table events({"time", "event", "peer", "detail"});
  for (const auto& e : tracer.events()) {
    switch (e.kind) {
      case core::TraceKind::RmPromoted:
      case core::TraceKind::RmTakeover:
      case core::TraceKind::RmDemoted:
      case core::TraceKind::PeerFailed:
        events.cell(util::format_time(e.at))
            .cell(std::string(core::trace_kind_name(e.kind)))
            .cell(util::to_string(e.peer))
            .cell(e.detail)
            .end_row();
        break;
      default:
        break;
    }
  }
  events.print(std::cout);
  std::cout << "recoveries traced: "
            << tracer.count_of(core::TraceKind::TaskRecovered) << "\n";

  const double goodput = system.ledger().goodput();
  std::cout << "\ngoodput " << util::format("%.3f", goodput)
            << (goodput > 0.5 ? "  — the overlay survived" : "  — degraded")
            << "\n";
  return goodput > 0.3 ? 0 : 1;
}

// The paper's motivating scenario end to end (§1, §4.3, Figures 1-2):
// on-demand media streaming with multi-hop transcoding.
//
// Builds the exact Figure 1 service mesh (8 transcoder instances e1..e8 on
// 8 peers), stores an 800x600 MPEG-2 512kbps video, and serves a user who
// wants 640x480 MPEG-4 64kbps. Narrates each pipeline stage and shows how
// the RM's fairness objective picks between {e1,e2}, {e1,e3} and
// {e1,e4,e5,e8} as load shifts.
#include <iostream>

#include "core/system.hpp"
#include "media/catalog.hpp"
#include "metrics/report.hpp"
#include "util/logging.hpp"

using namespace p2prm;

int main() {
  util::Logger::instance().set_level(util::LogLevel::Info);

  core::SystemConfig config;
  config.seed = 7;
  core::System system(config);
  const auto fig = media::figure1_catalog();

  auto add_peer = [&](const std::string& who, core::PeerInventory inventory,
                      double capacity_mops = 80.0) {
    overlay::PeerSpec spec;
    spec.capacity_ops_per_s = capacity_mops * 1e6;
    spec.online_since = -util::minutes(90);
    const auto id = system.add_peer(spec, std::move(inventory));
    system.run_for(util::milliseconds(100));
    std::cout << "  peer " << id << ": " << who << "\n";
    return id;
  };

  std::cout << "Building the Figure 1 mesh:\n";
  add_peer("resource manager (founder)", {});
  util::Rng rng(3);
  const auto video =
      media::make_object(system.next_object_id(), fig.v1, 12.0, rng);
  core::PeerInventory library;
  library.objects = {video};
  add_peer("media library (source, " + fig.v1.to_string() + ")",
           std::move(library));

  std::vector<util::PeerId> transcoder_peers;
  for (std::size_t i = 0; i < fig.edges.size(); ++i) {
    core::PeerInventory inv;
    inv.services = {{system.next_service_id(), fig.edges[i]}};
    transcoder_peers.push_back(add_peer(
        "transcoder e" + std::to_string(i + 1) + " (" +
            fig.edges[i].to_string() + ")",
        std::move(inv)));
  }
  const auto viewer = add_peer("viewer (wants " + fig.v3.to_string() + ")", {});
  system.run_for(util::seconds(2));

  auto stream_once = [&](const char* label) {
    core::QoSRequirements q;
    q.object = video.id;
    q.acceptable_formats = {fig.v3};
    q.deadline = util::minutes(2);
    const auto task = system.submit_task(viewer, q);
    system.run_for(util::minutes(3));
    const auto* record = system.ledger().record(task);
    std::cout << "\n[" << label << "] task " << task << ": "
              << core::task_status_name(record->status);
    if (record->finished >= 0) {
      std::cout << " in " << util::format_time(record->response_time());
    }
    std::cout << "\n";
    return record->status == core::TaskStatus::Completed;
  };

  // First stream on an idle mesh: fairness prefers the path that spreads
  // the work across the most peers ({e1,e4,e5,e8}).
  bool ok = stream_once("idle mesh");

  // Saturate the 4-hop branch's peers with background jobs, then stream
  // again: the RM now picks one of the 2-hop paths through e2/e3.
  std::cout << "\nInjecting background load on the e4/e5/e8 hosts...\n";
  for (const std::size_t idx : {3u, 4u, 7u}) {
    auto* node = system.peer(transcoder_peers[idx]);
    sched::Job background;
    background.id = system.next_job_id();
    background.total_ops = background.remaining_ops = 600e6;  // ~7.5s busy
    background.absolute_deadline = system.simulator().now() + util::minutes(10);
    node->processor().submit(background);
  }
  system.run_for(util::seconds(2));  // let profiler reports reach the RM
  ok = stream_once("loaded 4-hop branch") && ok;

  std::cout << "\nFinal ledger:\n";
  metrics::task_table(system.ledger()).print(std::cout);
  std::cout << "\nPer-peer execution counts:\n";
  util::Table t({"peer", "hops executed", "streams forwarded"});
  for (const auto id : system.peer_ids()) {
    const auto* node = system.peer(id);
    if (node->stats().hops_executed == 0 &&
        node->stats().streams_forwarded == 0) {
      continue;
    }
    t.cell(util::to_string(id))
        .cell(node->stats().hops_executed)
        .cell(node->stats().streams_forwarded)
        .end_row();
  }
  t.print(std::cout);
  return ok ? 0 : 1;
}

// Multi-domain federation: domain splitting, Bloom-summary gossip between
// Resource Managers, and inter-domain query redirection (§3.1, §4.4, §4.5).
//
// Builds a network large enough to split into several domains, then issues
// a query for an object that exists only in a *remote* domain and follows
// the redirect chain that the gossiped SumO summaries steer.
#include <iostream>

#include "core/system.hpp"
#include "media/catalog.hpp"
#include "metrics/report.hpp"
#include "workload/heterogeneity.hpp"

using namespace p2prm;

int main() {
  core::SystemConfig config;
  config.seed = 21;
  config.max_domain_size = 12;  // split early so federation is visible
  config.gossip.period = util::seconds(1);
  core::System system(config);
  media::Catalog catalog = media::ladder_catalog();
  util::Rng rng(21);
  workload::PopulationConfig pop;
  pop.object_count = 60;
  workload::ObjectPopulation population(catalog, pop, system, rng);
  auto factory = workload::make_peer_factory(
      catalog, population, workload::HeterogeneityConfig{},
      workload::ProvisionConfig{}, system, rng);

  std::cout << "Bootstrapping 40 peers with max domain size "
            << config.max_domain_size << "...\n";
  workload::bootstrap_network(system, factory, 40, util::seconds(15));

  const auto domains = system.domains();
  std::cout << "\nDomain census:\n";
  metrics::domain_table(system).print(std::cout);
  if (domains.size() < 2) {
    std::cout << "expected multiple domains — aborting\n";
    return 1;
  }

  // Gossip visibility: what does each RM know about the federation?
  std::cout << "\nGossip state (each RM's view of the federation):\n";
  util::Table g({"rm peer", "own domain", "domains known", "peers known"});
  for (const auto& d : domains) {
    auto* rm = system.peer(d.rm)->resource_manager();
    std::size_t peers_known = 0;
    for (const auto& s : rm->gossip().known()) peers_known += s.peer_count;
    g.cell(util::to_string(d.rm))
        .cell(util::to_string(d.domain))
        .cell(rm->gossip().known().size())
        .cell(peers_known)
        .end_row();
  }
  g.print(std::cout);

  // Find an object hosted only by members of one domain, and a requester in
  // a different domain.
  auto* rm0 = system.peer(domains[0].rm)->resource_manager();
  auto* rm1 = system.peer(domains[1].rm)->resource_manager();
  util::ObjectId remote_object = util::ObjectId::invalid();
  for (const auto obj : rm1->info().all_objects()) {
    if (rm0->info().locations(obj) == nullptr) {
      remote_object = obj;
      break;
    }
  }
  if (!remote_object.valid()) {
    std::cout << "no domain-exclusive object found — aborting\n";
    return 1;
  }
  // A requester that lives in domain 0.
  util::PeerId requester = util::PeerId::invalid();
  for (const auto id : rm0->info().domain().member_ids()) {
    if (id != domains[0].rm) requester = id;
  }

  std::cout << "\nQuery: peer " << requester << " (domain "
            << domains[0].domain << ") asks for object " << remote_object
            << ", which only domain " << domains[1].domain << " stores.\n";

  // Locate the object's source format to pick a sensible target.
  const auto* locs = rm1->info().locations(remote_object);
  const auto source_format = locs->front().object.format;
  core::QoSRequirements q;
  q.object = remote_object;
  q.acceptable_formats = {source_format};  // passthrough across domains
  q.deadline = util::minutes(3);
  const auto before_redirects = rm0->stats().redirects_out;
  const auto task = system.submit_task(requester, q);
  system.run_for(util::minutes(4));

  const auto* record = system.ledger().record(task);
  std::cout << "outcome: " << core::task_status_name(record->status);
  if (record->finished >= 0) {
    std::cout << " in " << util::format_time(record->response_time());
  }
  std::cout << "\nredirects by domain " << domains[0].domain << "'s RM: "
            << (rm0->stats().redirects_out - before_redirects) << "\n";
  std::cout << "queries received by domain " << domains[1].domain
            << "'s RM: " << rm1->stats().queries_received << " ("
            << rm1->stats().queries_redirected_in << " redirected in)\n";

  std::cout << "\nTraffic (control plane shows gossip + redirect activity):\n";
  metrics::traffic_table(system.transport().stats()).print(std::cout);

  return record->status == core::TaskStatus::Completed ? 0 : 1;
}

#include "stream/engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "fairness/fairness.hpp"

namespace p2prm::stream {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

// Chunk copy outcomes (digest codes).
constexpr int kDelivered = 0;
constexpr int kLate = 1;
constexpr int kDropped = 2;

}  // namespace

StreamEngine::StreamEngine(sim::Simulator& sim, const net::Transport& network,
                           const core::SystemConfig& config,
                           workload::StreamPlan plan)
    : sim_(sim),
      network_(network),
      config_(config),
      plan_(std::move(plan)),
      allocator_(core::make_allocator(config.allocator)),
      info_(util::DomainId{0xE10}, util::PeerId{0}),
      rng_(plan_.config.seed * 0x2545f4914f6cdd1dULL + 0x5eed0e10ULL) {
  // The cache is pure memoization (path_cache_test proves equivalence);
  // chain (re)placements hit the same (start, goal) pairs constantly.
  config_.enable_path_cache = true;
}

void StreamEngine::add_peer(const overlay::PeerSpec& spec,
                            const std::vector<core::ServiceOffering>& services) {
  if (started_) {
    throw std::logic_error("StreamEngine::add_peer after start()");
  }
  PeerState st;
  st.spec = spec;
  st.announce.spec = spec;
  st.announce.services = services;
  st.upload.capacity_bytes_per_s = spec.link.uplink_bytes_per_s;
  info_.add_member(spec, sim_.now());
  info_.add_inventory(st.announce);
  peers_.emplace(spec.id, std::move(st));
  push_report(spec.id);
}

void StreamEngine::set_alive_probe(std::function<bool(util::PeerId)> probe) {
  alive_probe_ = std::move(probe);
}

bool StreamEngine::alive(util::PeerId peer) const {
  return alive_probe_ ? alive_probe_(peer) : true;
}

StreamEngine::PeerState* StreamEngine::peer_state(util::PeerId peer) {
  const auto it = peers_.find(peer);
  return it == peers_.end() ? nullptr : &it->second;
}

void StreamEngine::push_report(util::PeerId peer) {
  PeerState* st = peer_state(peer);
  if (st == nullptr || st->marked_dead) return;
  core::ProfilerReport report;
  report.sample.at = sim_.now();
  report.sample.smoothed_load_ops = st->committed_ops;
  report.seq = ++report_seq_;
  info_.record_report(peer, report, sim_.now());
}

void StreamEngine::apply_deltas(
    const std::vector<std::pair<util::PeerId, double>>& deltas, double sign) {
  for (const auto& [peer, rate] : deltas) {
    if (PeerState* st = peer_state(peer)) {
      st->committed_ops = std::max(0.0, st->committed_ops + sign * rate);
      push_report(peer);
    }
  }
}

void StreamEngine::sweep_liveness() {
  for (auto& [id, st] : peers_) {
    const bool a = alive(id);
    if (!a && !st.marked_dead) {
      st.marked_dead = true;
      (void)info_.remove_peer(id);
    } else if (a && st.marked_dead) {
      st.marked_dead = false;
      info_.add_member(st.spec, sim_.now());
      info_.add_inventory(st.announce);
      push_report(id);
    }
  }
}

void StreamEngine::start() {
  if (started_) throw std::logic_error("StreamEngine::start called twice");
  started_ = true;
  started_at_ = sim_.now();
  digest_ = plan_.digest();

  const double chunk_s = util::to_seconds(plan_.config.chunk_period);
  for (std::uint32_t c = 0; c < plan_.channels.size(); ++c) {
    const workload::ChannelPlan& ch = plan_.channels[c];
    PeerState* src = peer_state(ch.source);
    if (src == nullptr) {
      throw std::invalid_argument("stream engine: channel source peer " +
                                  std::to_string(ch.source.value()) +
                                  " is not a registered pool peer");
    }
    media::MediaObject obj;
    obj.id = ch.object;
    obj.name = "channel-" + std::to_string(ch.id);
    obj.format = ch.source_format;
    obj.duration_s = chunk_s;  // the allocation unit is one chunk
    obj.content_hash = ch.object.value();
    src->announce.objects.push_back(obj);
    core::PeerAnnounce a;
    a.spec.id = ch.source;
    a.objects = {obj};
    info_.add_inventory(a);

    // Self-rescheduling tick chain; one live event per channel at a time.
    const auto tick_at = [this, c](std::uint32_t k, const auto& self) -> void {
      const workload::ChannelPlan& chan = plan_.channels[c];
      if (k >= chan.chunk_count) return;
      sim_.schedule_at(
          started_at_ + chan.start +
              static_cast<util::SimDuration>(k) * plan_.config.chunk_period,
          [this, c, k, self] {
            on_tick(c, k);
            self(k + 1, self);
          });
    };
    tick_at(0, tick_at);
  }

  viewers_.assign(plan_.viewers.size(), ViewerState{});
  viewer_index_.assign(plan_.viewers.size(), 0);
  for (std::size_t i = 0; i < plan_.viewers.size(); ++i) {
    viewer_index_[plan_.viewers[i].id] = static_cast<std::uint32_t>(i);
  }
  for (std::size_t i = 0; i < plan_.viewers.size(); ++i) {
    const workload::ViewerPlan& v = plan_.viewers[i];
    sim_.schedule_at(started_at_ + v.join,
                     [this, i] { on_join(plan_.viewers[i]); });
    sim_.schedule_at(started_at_ + v.leave,
                     [this, i] { on_leave(plan_.viewers[i]); });
  }
}

bool StreamEngine::place_chain(Chain& chain, util::SimTime now) {
  const workload::ChannelPlan& ch = plan_.channels[chain.channel];
  core::AllocationRequest req;
  req.task = util::TaskId{next_task_++};
  req.q.object = ch.object;
  req.q.acceptable_formats = {chain.target};
  req.q.deadline = plan_.config.chunk_deadline + plan_.config.late_grace;
  // Representative sink: the earliest still-subscribed viewer.
  assert(!chain.subscribers.empty());
  req.sink = viewer_plan(chain.subscribers.front()).sink;
  req.now = req.submitted_at = now;

  const core::AllocationResult result =
      allocator_->allocate(info_, network_, config_, req, rng_);
  if (!result.found) {
    ++stats_.placement_failures;
    chain.placed = false;
    return false;
  }
  chain.hops = result.sg.hops();
  chain.load_deltas = result.load_deltas;
  apply_deltas(chain.load_deltas, +1.0);
  chain.placed = true;
  return true;
}

void StreamEngine::release_chain(Chain& chain) {
  if (!chain.placed) return;
  apply_deltas(chain.load_deltas, -1.0);
  chain.hops.clear();
  chain.load_deltas.clear();
  chain.placed = false;
}

double StreamEngine::chunk_bytes(const media::MediaFormat& f) const {
  return static_cast<double>(f.bitrate_kbps) * 1000.0 / 8.0 *
         util::to_seconds(plan_.config.chunk_period);
}

util::SimDuration StreamEngine::propagation(util::PeerId from,
                                            util::PeerId to) const {
  return network_.estimate_delay(from, to, 0);
}

util::SimTime StreamEngine::reserve_upload(util::PeerId sender,
                                           util::SimTime ready, double bytes) {
  PeerState& st = peers_.at(sender);
  const util::SimTime start = std::max(ready, st.busy_until);
  const util::SimDuration tx = util::from_seconds(
      bytes / std::max(st.upload.capacity_bytes_per_s, 1.0));
  st.busy_until = start + tx;
  st.upload.bytes_sent += bytes;
  st.upload.busy_time += tx;
  horizon_ = std::max(horizon_, st.busy_until);
  return st.busy_until;
}

void StreamEngine::commit_outcome(std::uint32_t viewer, util::SimTime at,
                                  int outcome) {
  assert(stats_.chunks_in_flight > 0);
  --stats_.chunks_in_flight;
  ViewerState& vs = viewers_[viewer];
  switch (outcome) {
    case kDelivered:
      ++stats_.chunks_delivered;
      ++vs.on_time;
      break;
    case kLate:
      ++stats_.chunks_late;
      ++vs.late;
      break;
    default:
      ++stats_.chunks_dropped;
      ++vs.dropped;
      break;
  }
  fnv_mix_u64(digest_, viewer);
  fnv_mix_u64(digest_, static_cast<std::uint64_t>(at));
  fnv_mix_u64(digest_, static_cast<std::uint64_t>(outcome));
}

void StreamEngine::on_join(const workload::ViewerPlan& v) {
  ++stats_.viewers_joined;
  viewers_[v.id].active = true;
  const ChainKey key{v.channel, v.target};
  auto it = chains_.find(key);
  if (it == chains_.end()) {
    Chain chain;
    chain.channel = v.channel;
    chain.target = v.target;
    chain.subscribers.push_back(v.id);
    ++stats_.chains_built;
    it = chains_.emplace(key, std::move(chain)).first;
    sweep_liveness();
    if (alive(plan_.channels[v.channel].source)) {
      place_chain(it->second, sim_.now());
    }
  } else {
    it->second.subscribers.push_back(v.id);
  }
}

void StreamEngine::on_leave(const workload::ViewerPlan& v) {
  ++stats_.viewers_left;
  viewers_[v.id].active = false;
  const ChainKey key{v.channel, v.target};
  const auto it = chains_.find(key);
  if (it == chains_.end()) return;
  auto& subs = it->second.subscribers;
  subs.erase(std::remove(subs.begin(), subs.end(), v.id), subs.end());
  if (subs.empty()) {
    release_chain(it->second);
    chains_.erase(it);
  }
}

void StreamEngine::on_tick(std::uint32_t channel, std::uint32_t /*chunk*/) {
  sweep_liveness();
  const util::SimTime tick = sim_.now();
  const workload::ChannelPlan& ch = plan_.channels[channel];
  const bool source_up = alive(ch.source);

  for (auto& [key, chain] : chains_) {
    if (key.first != channel || chain.subscribers.empty()) continue;

    if (!source_up) {
      // Channel dark: every subscriber's copy is lost at the source.
      for (const std::uint32_t viewer : chain.subscribers) {
        ++stats_.chunks_generated;
        ++stats_.chunks_in_flight;
        ++viewers_[viewer].expected;
        commit_outcome(viewer, tick, kDropped);
      }
      continue;
    }
    if (chain.placed) {
      for (const graph::ServiceHop& hop : chain.hops) {
        if (!alive(hop.peer)) {
          release_chain(chain);
          ++stats_.chain_rebuilds;
          break;
        }
      }
    }
    if (!chain.placed) place_chain(chain, tick);
    deliver_chunk(chain, tick);
  }
}

void StreamEngine::deliver_chunk(Chain& chain, util::SimTime tick) {
  const workload::ChannelPlan& ch = plan_.channels[chain.channel];
  const double chunk_s = util::to_seconds(plan_.config.chunk_period);
  const util::SimTime deadline = tick + plan_.config.chunk_deadline;
  const util::SimTime drop_horizon = deadline + plan_.config.late_grace;

  // Snapshot: copies are owed to the viewers subscribed at generation time.
  const std::vector<std::uint32_t> subscribers = chain.subscribers;
  const auto generate = [&](std::uint32_t viewer) {
    ++stats_.chunks_generated;
    ++stats_.chunks_in_flight;
    ++viewers_[viewer].expected;
  };

  if (!chain.placed) {
    // No feasible chain this period; the tick's copies are lost.
    for (const std::uint32_t viewer : subscribers) {
      generate(viewer);
      commit_outcome(viewer, tick, kDropped);
    }
    return;
  }

  // Walk the shared transcoding prefix once: source -> hop1 -> ... -> last.
  util::SimTime t = tick;
  util::PeerId prev = ch.source;
  bool lost = false;
  for (const graph::ServiceHop& hop : chain.hops) {
    PeerState& sender = peers_.at(prev);
    if (std::max(t, sender.busy_until) > drop_horizon) {
      // Head-of-line drop: transmission could not even begin in time, so
      // the chunk is discarded without consuming upload bandwidth.
      lost = true;
      break;
    }
    t = reserve_upload(prev, t, chunk_bytes(hop.type.input)) +
        propagation(prev, hop.peer);
    PeerState& hp = peers_.at(hop.peer);
    const double rate =
        media::transcode_ops_per_media_second(hop.type, config_.cost_model);
    const double cap = hp.spec.capacity_ops_per_s;
    // Spare CPU for this chain's own work: everything else committed on the
    // peer competes with it (same floor rule the allocator estimates with).
    const double spare =
        std::max(cap - (hp.committed_ops - rate),
                 cap * config_.min_spare_capacity_fraction);
    t += util::from_seconds(rate * chunk_s / spare);
    if (t > drop_horizon) {
      lost = true;
      break;
    }
    prev = hop.peer;
  }
  if (lost) {
    for (const std::uint32_t viewer : subscribers) {
      generate(viewer);
      commit_outcome(viewer, tick, kDropped);
    }
    return;
  }

  // Fan out one copy per subscriber from the last chain peer.
  const double out_bytes = chunk_bytes(chain.target);
  for (const std::uint32_t viewer : subscribers) {
    generate(viewer);
    const workload::ViewerPlan& vp = viewer_plan(viewer);
    if (!alive(vp.sink)) {
      commit_outcome(viewer, tick, kDropped);
      continue;
    }
    PeerState& sender = peers_.at(prev);
    if (std::max(t, sender.busy_until) > drop_horizon) {
      commit_outcome(viewer, tick, kDropped);
      continue;
    }
    const util::SimTime arrival =
        reserve_upload(prev, t, out_bytes) + propagation(prev, vp.sink);
    const int outcome = arrival <= deadline  ? kDelivered
                        : arrival <= drop_horizon ? kLate
                                                  : kDropped;
    horizon_ = std::max(horizon_, arrival);
    sim_.schedule_at(arrival, [this, viewer, arrival, outcome] {
      commit_outcome(viewer, arrival, outcome);
    });
  }
}

std::optional<std::string> StreamEngine::accounting_error() const {
  const std::uint64_t resolved =
      stats_.chunks_delivered + stats_.chunks_late + stats_.chunks_dropped;
  if (resolved + stats_.chunks_in_flight != stats_.chunks_generated) {
    return "stream.accounting: delivered(" +
           std::to_string(stats_.chunks_delivered) + ") + late(" +
           std::to_string(stats_.chunks_late) + ") + dropped(" +
           std::to_string(stats_.chunks_dropped) + ") + in_flight(" +
           std::to_string(stats_.chunks_in_flight) + ") != generated(" +
           std::to_string(stats_.chunks_generated) + ")";
  }
  std::uint64_t expected = 0, on_time = 0, late = 0, dropped = 0;
  for (const ViewerState& v : viewers_) {
    expected += v.expected;
    on_time += v.on_time;
    late += v.late;
    dropped += v.dropped;
  }
  if (expected != stats_.chunks_generated) {
    return "stream.accounting: per-viewer expected sum " +
           std::to_string(expected) + " != generated " +
           std::to_string(stats_.chunks_generated);
  }
  if (on_time != stats_.chunks_delivered || late != stats_.chunks_late ||
      dropped != stats_.chunks_dropped) {
    return "stream.accounting: per-viewer outcome sums (" +
           std::to_string(on_time) + "," + std::to_string(late) + "," +
           std::to_string(dropped) + ") diverge from totals (" +
           std::to_string(stats_.chunks_delivered) + "," +
           std::to_string(stats_.chunks_late) + "," +
           std::to_string(stats_.chunks_dropped) + ")";
  }
  return std::nullopt;
}

double StreamEngine::continuity_index() const {
  if (stats_.chunks_generated == 0) return 1.0;
  return static_cast<double>(stats_.chunks_delivered) /
         static_cast<double>(stats_.chunks_generated);
}

double StreamEngine::deadline_miss_rate() const {
  if (stats_.chunks_generated == 0) return 0.0;
  return static_cast<double>(stats_.chunks_late + stats_.chunks_dropped) /
         static_cast<double>(stats_.chunks_generated);
}

double StreamEngine::jain_upload_fairness() const {
  std::vector<double> bytes;
  bytes.reserve(peers_.size());
  double total = 0.0;
  for (const auto& [id, st] : peers_) {
    bytes.push_back(st.upload.bytes_sent);
    total += st.upload.bytes_sent;
  }
  if (bytes.empty() || total <= 0.0) return 1.0;
  return fairness::jain_index(bytes);
}

double StreamEngine::max_upload_saturation() const {
  const double elapsed =
      util::to_seconds(std::max<util::SimDuration>(sim_.now() - started_at_, 1));
  double max_sat = 0.0;
  for (const auto& [id, st] : peers_) {
    max_sat = std::max(max_sat, util::to_seconds(st.upload.busy_time) / elapsed);
  }
  return max_sat;
}

std::vector<std::pair<util::PeerId, UploadAccount>>
StreamEngine::upload_accounts() const {
  std::vector<std::pair<util::PeerId, UploadAccount>> out;
  out.reserve(peers_.size());
  for (const auto& [id, st] : peers_) out.emplace_back(id, st.upload);
  return out;
}

void StreamEngine::publish(obs::MetricsRegistry& reg) const {
  reg.counter("stream.chunks_generated").set(stats_.chunks_generated);
  reg.counter("stream.chunks_delivered").set(stats_.chunks_delivered);
  reg.counter("stream.chunks_late").set(stats_.chunks_late);
  reg.counter("stream.chunks_dropped").set(stats_.chunks_dropped);
  reg.gauge("stream.chunks_in_flight")
      .set(static_cast<double>(stats_.chunks_in_flight));
  reg.counter("stream.chains_built").set(stats_.chains_built);
  reg.counter("stream.chain_rebuilds").set(stats_.chain_rebuilds);
  reg.counter("stream.placement_failures").set(stats_.placement_failures);
  reg.counter("stream.viewers_joined").set(stats_.viewers_joined);
  reg.counter("stream.viewers_left").set(stats_.viewers_left);
  reg.gauge("stream.continuity_index").set(continuity_index());
  reg.gauge("stream.deadline_miss_rate").set(deadline_miss_rate());
  reg.gauge("stream.upload_fairness_jain").set(jain_upload_fairness());
  reg.gauge("stream.upload_saturation_max").set(max_upload_saturation());
  // Per-peer upload saturation distribution. Publish once per registry:
  // histograms accumulate observations.
  auto& h = reg.histogram("stream.upload_saturation",
                          {0.1, 0.25, 0.5, 0.75, 0.9, 1.0});
  const double elapsed =
      util::to_seconds(std::max<util::SimDuration>(sim_.now() - started_at_, 1));
  for (const auto& [id, st] : peers_) {
    h.observe(util::to_seconds(st.upload.busy_time) / elapsed);
  }
}

}  // namespace p2prm::stream

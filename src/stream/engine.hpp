// Continuous streaming execution engine (docs/STREAMING.md).
//
// Executes a workload::StreamPlan on a discrete-event simulator: channels
// emit chunks on a fixed period, viewers subscribe to per-(channel, target
// format) transcoding chains placed through a core::Allocator, and every
// chunk copy is walked hop by hop — inter-peer transfers serialize on the
// sending peer's bounded uplink, transcodes consume the hop peer's spare
// CPU — until it reaches each subscriber's sink on time (delivered), within
// the late grace (late), or not usefully at all (dropped).
//
// The engine keeps its own core::InfoBase (the RM's-eye view of the
// streaming pool: members, services, committed chain loads) so it can run
// standalone under a bench or share a System's simulator in the fuzzer,
// coupling to protocol-level faults only through an alive-probe callback.
// Everything it does is a deterministic function of (plan, registered
// peers, alive probe); digest() folds every chunk outcome into one value
// the byte-determinism tests compare.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/allocation.hpp"
#include "obs/metrics_registry.hpp"
#include "sim/simulator.hpp"
#include "workload/streaming.hpp"

namespace p2prm::stream {

struct StreamStats {
  // Chunk copies (one per subscribed viewer per generated chunk).
  std::uint64_t chunks_generated = 0;
  std::uint64_t chunks_delivered = 0;  // arrived within the deadline
  std::uint64_t chunks_late = 0;       // within deadline + late_grace
  std::uint64_t chunks_dropped = 0;    // never usefully arrived
  std::uint64_t chunks_in_flight = 0;  // generated, outcome not committed yet
  // Chains.
  std::uint64_t chains_built = 0;       // distinct (channel, target) chains
  std::uint64_t chain_rebuilds = 0;     // re-placements after a peer loss
  std::uint64_t placement_failures = 0; // allocator found no feasible chain
  // Viewers.
  std::uint64_t viewers_joined = 0;
  std::uint64_t viewers_left = 0;
};

// Per-peer upload-link accounting; the delivery-time bandwidth cap.
struct UploadAccount {
  double capacity_bytes_per_s = 0.0;
  double bytes_sent = 0.0;
  util::SimDuration busy_time = 0;  // total reserved transmission time
};

class StreamEngine {
 public:
  // `config.allocator` selects the placement policy; the engine forces the
  // path cache on (pure memoization, docs/CONFIGURATION.md).
  StreamEngine(sim::Simulator& sim, const net::Transport& network,
               const core::SystemConfig& config, workload::StreamPlan plan);

  // Registers a pool peer before start(). Channel source peers must be
  // registered; every registered peer's uplink (spec.link) becomes its
  // delivery-time upload cap.
  void add_peer(const overlay::PeerSpec& spec,
                const std::vector<core::ServiceOffering>& services);

  // Liveness oracle consulted at every chunk tick and placement. Defaults
  // to "always alive"; the fuzzer couples this to System peer state so
  // fault plans break chains.
  void set_alive_probe(std::function<bool(util::PeerId)> probe);

  // Schedules the whole plan (chunk ticks, viewer joins/leaves) on the
  // simulator. Call once, before running the simulator.
  void start();

  [[nodiscard]] const StreamStats& stats() const { return stats_; }

  // The stream.accounting invariant: generated == delivered + late +
  // dropped + in_flight, globally and per viewer. nullopt when it holds.
  [[nodiscard]] std::optional<std::string> accounting_error() const;

  // FNV-1a over the plan and every committed chunk outcome.
  [[nodiscard]] std::uint64_t digest() const { return digest_; }

  // On-time fraction of all generated chunk copies (1.0 when none).
  [[nodiscard]] double continuity_index() const;
  // (late + dropped) / generated (0.0 when none).
  [[nodiscard]] double deadline_miss_rate() const;
  // Jain fairness over per-peer uploaded bytes across the whole pool.
  [[nodiscard]] double jain_upload_fairness() const;
  // busy_time / elapsed per peer; the max is the pool's hottest uplink.
  [[nodiscard]] double max_upload_saturation() const;

  // Sorted per-peer upload accounts (tests assert the cap invariant).
  [[nodiscard]] std::vector<std::pair<util::PeerId, UploadAccount>>
  upload_accounts() const;

  // Publishes stream.* metrics (docs/OBSERVABILITY.md naming).
  void publish(obs::MetricsRegistry& reg) const;

  [[nodiscard]] std::size_t active_chains() const { return chains_.size(); }

  // Latest simulated time at which an outcome can still commit; running the
  // simulator past this drains every in-flight chunk.
  [[nodiscard]] util::SimTime horizon() const { return horizon_; }

 private:
  struct PeerState {
    overlay::PeerSpec spec;
    core::PeerAnnounce announce;  // kept for revival re-registration
    UploadAccount upload;
    util::SimTime busy_until = 0;  // uplink serialization point
    double committed_ops = 0.0;    // load of chains currently through it
    bool marked_dead = false;
  };

  using ChainKey = std::pair<std::uint32_t, media::MediaFormat>;
  struct Chain {
    std::uint32_t channel = 0;
    media::MediaFormat target{};
    std::vector<graph::ServiceHop> hops;
    std::vector<std::pair<util::PeerId, double>> load_deltas;
    bool placed = false;
    std::vector<std::uint32_t> subscribers;  // viewer ids, join order
  };

  struct ViewerState {
    std::uint64_t expected = 0;  // chunk copies generated while subscribed
    std::uint64_t on_time = 0;
    std::uint64_t late = 0;
    std::uint64_t dropped = 0;
    bool active = false;
  };

  [[nodiscard]] bool alive(util::PeerId peer) const;
  [[nodiscard]] const workload::ViewerPlan& viewer_plan(
      std::uint32_t id) const {
    return plan_.viewers[viewer_index_[id]];
  }
  PeerState* peer_state(util::PeerId peer);
  void sweep_liveness();
  void push_report(util::PeerId peer);
  void apply_deltas(const std::vector<std::pair<util::PeerId, double>>& deltas,
                    double sign);
  bool place_chain(Chain& chain, util::SimTime now);
  void release_chain(Chain& chain);
  void on_tick(std::uint32_t channel, std::uint32_t chunk);
  void on_join(const workload::ViewerPlan& v);
  void on_leave(const workload::ViewerPlan& v);
  void deliver_chunk(Chain& chain, util::SimTime tick);
  void commit_outcome(std::uint32_t viewer, util::SimTime at, int outcome);
  // Reserves `bytes` on `sender`'s uplink starting no earlier than `ready`;
  // returns the transmission-complete time (excluding propagation).
  util::SimTime reserve_upload(util::PeerId sender, util::SimTime ready,
                               double bytes);
  [[nodiscard]] util::SimDuration propagation(util::PeerId from,
                                              util::PeerId to) const;
  [[nodiscard]] double chunk_bytes(const media::MediaFormat& f) const;

  sim::Simulator& sim_;
  const net::Transport& network_;
  core::SystemConfig config_;
  workload::StreamPlan plan_;
  std::unique_ptr<core::Allocator> allocator_;
  core::InfoBase info_;
  util::Rng rng_;
  std::function<bool(util::PeerId)> alive_probe_;

  std::map<util::PeerId, PeerState> peers_;
  std::map<ChainKey, Chain> chains_;
  std::vector<ViewerState> viewers_;
  std::vector<std::uint32_t> viewer_index_;  // viewer id -> plan_.viewers index
  StreamStats stats_;
  std::uint64_t digest_ = 0;
  std::uint64_t next_task_ = 1;
  std::uint64_t report_seq_ = 0;
  util::SimTime started_at_ = 0;
  util::SimTime horizon_ = 0;  // time of the last possible outcome commit
  bool started_ = false;
};

}  // namespace p2prm::stream

#include "workload/streaming.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace p2prm::workload {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

void fnv_mix_format(std::uint64_t& h, const media::MediaFormat& f) {
  fnv_mix_u64(h, static_cast<std::uint64_t>(f.codec));
  fnv_mix_u64(h, f.resolution.pixels());
  fnv_mix_u64(h, f.bitrate_kbps);
}

}  // namespace

std::uint64_t StreamPlan::digest() const {
  std::uint64_t h = kFnvOffset;
  fnv_mix_u64(h, config.seed);
  fnv_mix_u64(h, static_cast<std::uint64_t>(config.chunk_period));
  fnv_mix_u64(h, static_cast<std::uint64_t>(config.chunk_deadline));
  fnv_mix_u64(h, static_cast<std::uint64_t>(config.late_grace));
  for (const ChannelPlan& ch : channels) {
    fnv_mix_u64(h, ch.id);
    fnv_mix_u64(h, ch.source.value());
    fnv_mix_u64(h, ch.object.value());
    fnv_mix_format(h, ch.source_format);
    // The derived chunk schedule, explicitly: start + k * period.
    for (std::uint32_t k = 0; k < ch.chunk_count; ++k) {
      fnv_mix_u64(h, static_cast<std::uint64_t>(
                         ch.start + static_cast<util::SimDuration>(k) *
                                        config.chunk_period));
    }
  }
  for (const ViewerPlan& v : viewers) {
    fnv_mix_u64(h, v.id);
    fnv_mix_u64(h, v.channel);
    fnv_mix_u64(h, v.sink.value());
    fnv_mix_format(h, v.target);
    fnv_mix_u64(h, static_cast<std::uint64_t>(v.join));
    fnv_mix_u64(h, static_cast<std::uint64_t>(v.leave));
    fnv_mix_u64(h, v.flash ? 1 : 0);
  }
  return h;
}

StreamingScenario::StreamingScenario(const media::Catalog& catalog,
                                     StreamingConfig config)
    : catalog_(catalog), config_(config) {}

bool StreamingScenario::format_reachable(const media::Catalog& catalog,
                                         const media::MediaFormat& from,
                                         const media::MediaFormat& to) {
  if (from == to) return true;
  if (!catalog.has_format(from) || !catalog.has_format(to)) return false;
  std::unordered_set<std::size_t> seen{catalog.index_of(from)};
  std::queue<media::MediaFormat> frontier;
  frontier.push(from);
  while (!frontier.empty()) {
    const media::MediaFormat f = frontier.front();
    frontier.pop();
    for (const media::TranscoderType& t : catalog.conversions_from(f)) {
      if (t.output == to) return true;
      const std::size_t idx = catalog.index_of(t.output);
      if (seen.insert(idx).second) frontier.push(t.output);
    }
  }
  return false;
}

void StreamingScenario::validate(const media::Catalog& catalog,
                                 const StreamPlan& plan) {
  for (const ViewerPlan& v : plan.viewers) {
    if (v.channel >= plan.channels.size()) {
      throw std::invalid_argument("stream plan: viewer " +
                                  std::to_string(v.id) +
                                  " references unknown channel " +
                                  std::to_string(v.channel));
    }
    const media::MediaFormat& src = plan.channels[v.channel].source_format;
    if (!format_reachable(catalog, src, v.target)) {
      throw std::invalid_argument(
          "stream plan: viewer " + std::to_string(v.id) + " wants " +
          v.target.to_string() + " but no conversion path exists from " +
          src.to_string() + " (channel " + std::to_string(v.channel) + ")");
    }
  }
}

StreamPlan StreamingScenario::build(
    const std::vector<util::PeerId>& sources,
    const std::vector<util::PeerId>& sinks) const {
  if (sources.empty() || sinks.empty()) {
    throw std::invalid_argument("stream plan: empty source or sink peer list");
  }
  // Channel feeds start from formats that can actually fan out: formats
  // with at least one outgoing conversion.
  std::vector<media::MediaFormat> feed_formats;
  for (const media::MediaFormat& f : catalog_.formats()) {
    if (!catalog_.conversions_from(f).empty()) feed_formats.push_back(f);
  }
  if (feed_formats.empty()) {
    throw std::invalid_argument(
        "stream plan: catalog has no format with outgoing conversions");
  }

  // Decorrelated stream so callers sharing a master seed with other
  // generators (the fuzzer does) keep those plans undisturbed.
  util::Rng rng(config_.seed * 0x9e3779b97f4a7c15ULL + 0x57e4457e4457e44ULL);
  StreamPlan plan;
  plan.config = config_;

  const auto chunk_count = static_cast<std::uint32_t>(
      config_.live_window / std::max<util::SimDuration>(config_.chunk_period, 1));
  for (std::uint32_t c = 0; c < config_.channels; ++c) {
    ChannelPlan ch;
    ch.id = c;
    ch.source = sources[c % sources.size()];
    ch.object = util::ObjectId{0x57AE0000ULL + c};
    ch.source_format = feed_formats[rng.below(feed_formats.size())];
    ch.start = 0;
    ch.chunk_count = chunk_count;
    plan.channels.push_back(ch);
  }

  // Per-channel reachable target sets (computed once; viewers draw from
  // them, so no-path pairs cannot be generated).
  std::vector<std::vector<media::MediaFormat>> targets(plan.channels.size());
  for (std::size_t c = 0; c < plan.channels.size(); ++c) {
    for (const media::MediaFormat& f : catalog_.formats()) {
      if (format_reachable(catalog_, plan.channels[c].source_format, f)) {
        targets[c].push_back(f);
      }
    }
  }

  const util::SimTime live_end = config_.live_window;
  std::uint32_t viewer_id = 0;
  const auto add_viewer = [&](std::uint32_t channel, util::SimTime join,
                              bool flash) {
    join = std::clamp<util::SimTime>(join, 0, live_end - 1);
    ViewerPlan v;
    v.id = viewer_id++;
    v.channel = channel;
    v.sink = sinks[rng.below(sinks.size())];
    v.target = targets[channel][rng.below(targets[channel].size())];
    v.join = join;
    v.leave = std::min<util::SimTime>(
        join + std::max<util::SimDuration>(
                   util::from_seconds(rng.exponential(config_.mean_watch_s)),
                   util::milliseconds(100)),
        live_end);
    v.flash = flash;
    plan.viewers.push_back(v);
  };

  for (std::uint32_t i = 0; i < config_.viewers; ++i) {
    const auto channel =
        static_cast<std::uint32_t>(rng.below(plan.channels.size()));
    const auto join = static_cast<util::SimTime>(
        config_.first_join +
        rng.below(static_cast<std::uint64_t>(
            std::max<util::SimTime>(live_end - config_.first_join, 1))));
    add_viewer(channel, join, /*flash=*/false);
  }
  if (config_.flash_crowd > 0) {
    const auto hot =
        static_cast<std::uint32_t>(rng.below(plan.channels.size()));
    for (std::uint32_t i = 0; i < config_.flash_crowd; ++i) {
      const auto jitter = static_cast<util::SimTime>(rng.below(
          static_cast<std::uint64_t>(
              std::max<util::SimDuration>(config_.flash_spread, 1))));
      add_viewer(hot, config_.flash_at + jitter, /*flash=*/true);
    }
  }

  std::sort(plan.viewers.begin(), plan.viewers.end(),
            [](const ViewerPlan& a, const ViewerPlan& b) {
              return a.join != b.join ? a.join < b.join : a.id < b.id;
            });
  validate(catalog_, plan);
  return plan;
}

}  // namespace p2prm::workload

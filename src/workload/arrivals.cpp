#include "workload/arrivals.hpp"

#include <stdexcept>

namespace p2prm::workload {

PoissonArrivals::PoissonArrivals(double rate_per_s) : mean_(1.0 / rate_per_s) {
  if (rate_per_s <= 0.0) {
    throw std::invalid_argument("PoissonArrivals: rate must be positive");
  }
}

double PoissonArrivals::next_interarrival(util::Rng& rng) {
  return rng.exponential(mean_);
}

MmppArrivals::MmppArrivals(double calm_rate_per_s, double burst_rate_per_s,
                           double mean_calm_s, double mean_burst_s)
    : calm_mean_(1.0 / calm_rate_per_s),
      burst_mean_(1.0 / burst_rate_per_s),
      mean_calm_s_(mean_calm_s),
      mean_burst_s_(mean_burst_s) {
  if (calm_rate_per_s <= 0.0 || burst_rate_per_s <= 0.0 || mean_calm_s <= 0.0 ||
      mean_burst_s <= 0.0) {
    throw std::invalid_argument("MmppArrivals: all parameters must be positive");
  }
}

double MmppArrivals::next_interarrival(util::Rng& rng) {
  double waited = 0.0;
  while (true) {
    if (phase_left_s_ <= 0.0) {
      phase_left_s_ =
          rng.exponential(bursting_ ? mean_burst_s_ : mean_calm_s_);
    }
    const double gap = rng.exponential(bursting_ ? burst_mean_ : calm_mean_);
    if (gap <= phase_left_s_) {
      phase_left_s_ -= gap;
      return waited + gap;
    }
    // Phase ends before the next arrival: cross into the other phase.
    waited += phase_left_s_;
    phase_left_s_ = 0.0;
    bursting_ = !bursting_;
  }
}

WorkloadDriver::WorkloadDriver(core::System& system,
                               std::unique_ptr<ArrivalProcess> process,
                               RequestSynthesizer& synthesizer)
    : system_(system),
      process_(std::move(process)),
      synthesizer_(synthesizer),
      rng_(system.workload_rng().fork()) {}

WorkloadDriver::~WorkloadDriver() { stop(); }

void WorkloadDriver::start(util::SimTime until) {
  until_ = until;
  running_ = true;
  arm_next();
}

void WorkloadDriver::stop() { running_ = false; }

void WorkloadDriver::arm_next() {
  if (!running_) return;
  const double gap_s = process_->next_interarrival(rng_);
  const util::SimTime when = system_.simulator().now() + util::from_seconds(gap_s);
  if (when > until_) {
    running_ = false;
    return;
  }
  system_.simulator().schedule_at(when, [this] {
    if (!running_) return;
    const auto origin = system_.random_alive_peer(util::PeerId::invalid());
    if (origin) {
      auto q = synthesizer_.draw(rng_);
      const auto task = system_.submit_task(*origin, std::move(q));
      ++submitted_;
      if (on_submit) on_submit(task);
    }
    arm_next();
  });
}

}  // namespace p2prm::workload

// Request synthesis: turns the object population into the user queries of
// §4.3 ("a peer might ask for a media object by name, also specifying a set
// of acceptable bitrates, resolutions and codecs").
#pragma once

#include "core/messages.hpp"
#include "media/catalog.hpp"
#include "workload/heterogeneity.hpp"

namespace p2prm::workload {

struct RequestConfig {
  // How many alternative target formats a user lists (uniform in range).
  std::size_t min_acceptable_formats = 1;
  std::size_t max_acceptable_formats = 3;
  // Deadline = tightness x (pipeline lower bound); tightness drawn
  // uniformly from [min, max]. Values near 1 are hard; >> 1 is relaxed.
  double min_deadline_tightness = 2.0;
  double max_deadline_tightness = 6.0;
  // A crude lower bound for one transcode chain used to scale deadlines:
  // the object's duration (a realtime transcoder needs about that long)
  // times this many expected hops, plus a transfer allowance.
  double assumed_hops = 2.0;
  double transfer_allowance_s = 2.0;
  double min_importance = 1.0;
  double max_importance = 10.0;
  // Probability that the request accepts the source format unchanged
  // (pure delivery, no transcoding).
  double passthrough_probability = 0.05;
  // Targets further than this many ladder steps (codec change + resolution
  // rungs + bitrate rungs) from the source are not requested: users ask for
  // presentations the service mesh can plausibly produce in a few hops.
  int max_target_steps = 3;
};

class RequestSynthesizer {
 public:
  RequestSynthesizer(const media::Catalog& catalog,
                     ObjectPopulation& population, RequestConfig config);

  // Draws a complete requirement set for a random (Zipf-popular) object.
  [[nodiscard]] core::QoSRequirements draw(util::Rng& rng);
  // Same, for a specific object.
  [[nodiscard]] core::QoSRequirements draw_for(const media::MediaObject& object,
                                               util::Rng& rng);

 private:
  const media::Catalog& catalog_;
  ObjectPopulation& population_;
  RequestConfig config_;
};

}  // namespace p2prm::workload

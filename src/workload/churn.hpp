// Churn: "nodes may connect, disconnect or fail unexpectedly" (§1).
//
// Every tracked peer gets an exponential session lifetime; on expiry it
// either leaves gracefully or crashes (no goodbye). When respawn is on, a
// statistically identical replacement joins after an exponential offline
// gap, keeping the population roughly stationary — the standard churn
// model for P2P evaluations.
#pragma once

#include <unordered_set>

#include "core/system.hpp"
#include "workload/heterogeneity.hpp"

namespace p2prm::workload {

struct ChurnConfig {
  double mean_session_s = 300.0;
  double crash_fraction = 0.5;  // else graceful leave
  bool respawn = true;
  double mean_offline_s = 20.0;
  // When false, peers currently acting as RM are spared (ablation: isolate
  // member churn from RM failover).
  bool churn_rms = true;
};

struct ChurnStats {
  std::size_t departures = 0;
  std::size_t crashes = 0;
  std::size_t rm_departures = 0;
  std::size_t respawns = 0;
};

class ChurnDriver {
 public:
  ChurnDriver(core::System& system, PeerFactory factory, ChurnConfig config);

  // Schedules a departure for an existing peer.
  void track(util::PeerId peer);
  void track_all_alive();
  void stop() { running_ = false; }

  [[nodiscard]] const ChurnStats& stats() const { return stats_; }

 private:
  void schedule_departure(util::PeerId peer);
  void depart(util::PeerId peer);
  void schedule_respawn();

  core::System& system_;
  PeerFactory factory_;
  ChurnConfig config_;
  util::Rng rng_;
  bool running_ = true;
  ChurnStats stats_;
};

}  // namespace p2prm::workload

// Arrival processes driving task submission.
//
// Poisson arrivals model independent users; the MMPP (Markov-modulated
// Poisson process) variant adds bursty phases, the "unpredictability in the
// arrival times of the application execution" the paper calls out (§1).
#pragma once

#include <functional>
#include <memory>

#include "core/system.hpp"
#include "sim/simulator.hpp"
#include "workload/requests.hpp"

namespace p2prm::workload {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  // Seconds until the next arrival.
  [[nodiscard]] virtual double next_interarrival(util::Rng& rng) = 0;
};

class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate_per_s);
  double next_interarrival(util::Rng& rng) override;

 private:
  double mean_;
};

// Two-state MMPP: alternates between a calm and a burst phase, each with
// exponential dwell times and its own Poisson rate.
class MmppArrivals final : public ArrivalProcess {
 public:
  MmppArrivals(double calm_rate_per_s, double burst_rate_per_s,
               double mean_calm_s, double mean_burst_s);
  double next_interarrival(util::Rng& rng) override;

 private:
  double calm_mean_, burst_mean_;
  double mean_calm_s_, mean_burst_s_;
  bool bursting_ = false;
  double phase_left_s_ = 0.0;
};

// Drives a System: on each arrival, submits a synthesized request from a
// uniformly random alive peer. Stops at the horizon or when stop() is
// called.
class WorkloadDriver {
 public:
  WorkloadDriver(core::System& system, std::unique_ptr<ArrivalProcess> process,
                 RequestSynthesizer& synthesizer);
  ~WorkloadDriver();

  void start(util::SimTime until);
  void stop();

  [[nodiscard]] std::size_t submitted() const { return submitted_; }
  // Optional hook called with each submitted task id.
  std::function<void(util::TaskId)> on_submit;

 private:
  void arm_next();

  core::System& system_;
  std::unique_ptr<ArrivalProcess> process_;
  RequestSynthesizer& synthesizer_;
  util::Rng rng_;
  util::SimTime until_ = 0;
  bool running_ = false;
  std::size_t submitted_ = 0;
};

}  // namespace p2prm::workload

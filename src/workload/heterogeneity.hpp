// Heterogeneous peer synthesis.
//
// The paper stresses "the heterogeneity of the peers, in terms of
// processing power, network connectivity, and available software" (§1).
// This generator draws peer capacities from configurable distributions
// (uniform / bimodal / Pareto), link speeds, uptime histories (which decide
// RM eligibility), and provisions each peer with media objects and
// transcoder services ("available software").
#pragma once

#include <functional>
#include <vector>

#include "core/peer_node.hpp"
#include "core/system.hpp"
#include "media/catalog.hpp"
#include "overlay/peer.hpp"
#include "util/rng.hpp"

namespace p2prm::workload {

enum class CapacityDistribution { Homogeneous, Uniform, Bimodal, Pareto };
[[nodiscard]] std::string_view capacity_distribution_name(
    CapacityDistribution d);

struct HeterogeneityConfig {
  CapacityDistribution distribution = CapacityDistribution::Uniform;
  double mean_capacity_ops = 50e6;
  double min_capacity_ops = 10e6;
  // Uniform: capacity in [min, 2*mean - min].
  // Bimodal: a strong minority and a weak majority.
  double bimodal_strong_fraction = 0.2;
  double bimodal_strong_multiplier = 4.0;
  // Pareto: heavy tail with this shape (scale set to match the mean).
  double pareto_alpha = 1.8;
  // Links: uniform in [min, max].
  double min_link_bytes_per_s = 6.25e5;   // 5 Mbit/s
  double max_link_bytes_per_s = 1.25e7;   // 100 Mbit/s
  // Prior uptime (exponential mean); decides initial RM eligibility.
  double mean_prior_uptime_s = 3600.0;
};

// Draws one peer spec (id left invalid: the System assigns it).
[[nodiscard]] overlay::PeerSpec draw_peer_spec(const HeterogeneityConfig& config,
                                               util::Rng& rng,
                                               util::SimTime now);

// --- media object population -------------------------------------------------

struct PopulationConfig {
  std::size_t object_count = 40;
  double zipf_skew = 0.8;  // request popularity
  double min_duration_s = 5.0;
  double max_duration_s = 30.0;
  // Objects are stored in "source grade" formats: at least this bitrate.
  std::uint32_t source_min_bitrate_kbps = 512;
};

// The universe of media objects experiments draw from. Each object has one
// canonical source format; peers host replicas.
class ObjectPopulation {
 public:
  ObjectPopulation(const media::Catalog& catalog, const PopulationConfig& config,
                   core::System& system, util::Rng& rng);

  [[nodiscard]] std::size_t size() const { return objects_.size(); }
  [[nodiscard]] const media::MediaObject& at(std::size_t i) const {
    return objects_.at(i);
  }
  // Zipf-popular draw (rank 0 most popular).
  [[nodiscard]] const media::MediaObject& sample(util::Rng& rng);

  // Provisioning support: the next object no peer hosts yet (round-robin
  // coverage before replication), or nullptr once all are hosted.
  [[nodiscard]] const media::MediaObject* next_unhosted();

 private:
  std::vector<media::MediaObject> objects_;
  util::ZipfDistribution zipf_;
  std::size_t next_unhosted_ = 0;
};

// --- per-peer provisioning -------------------------------------------------------

struct ProvisionConfig {
  // Replicas: each peer hosts this many distinct objects (uniform draw over
  // the population — replication emerges from collisions).
  std::size_t objects_per_peer = 4;
  // Each peer offers this many distinct transcoder services (sampled
  // without replacement from the catalog's conversions).
  std::size_t services_per_peer = 8;
};

[[nodiscard]] core::PeerInventory provision_inventory(
    const media::Catalog& catalog, ObjectPopulation& population,
    const ProvisionConfig& config, core::System& system, util::Rng& rng);

// Convenience: a factory closure that churn and bootstrap share, so that
// respawned peers are statistically identical to the original population.
using PeerFactory =
    std::function<std::pair<overlay::PeerSpec, core::PeerInventory>()>;

[[nodiscard]] PeerFactory make_peer_factory(
    const media::Catalog& catalog, ObjectPopulation& population,
    const HeterogeneityConfig& het, const ProvisionConfig& prov,
    core::System& system, util::Rng& rng);

// Bootstraps a network of `count` peers through the join protocol and runs
// the simulator long enough for domains to settle. Returns the peer ids.
std::vector<util::PeerId> bootstrap_network(core::System& system,
                                            const PeerFactory& factory,
                                            std::size_t count,
                                            util::SimDuration settle =
                                                util::seconds(5));

}  // namespace p2prm::workload

#include "workload/requests.hpp"

#include <algorithm>

namespace p2prm::workload {

namespace {
// Ladder distance between two formats: codec change + resolution rungs +
// bitrate rungs, with rung indices derived from the catalog's distinct
// values sorted descending.
int ladder_steps(const media::Catalog& catalog, const media::MediaFormat& a,
                 const media::MediaFormat& b) {
  std::vector<std::uint32_t> pixels;
  std::vector<std::uint32_t> bitrates;
  for (const auto& f : catalog.formats()) {
    pixels.push_back(f.resolution.pixels());
    bitrates.push_back(f.bitrate_kbps);
  }
  auto uniq_desc = [](std::vector<std::uint32_t>& v) {
    std::sort(v.begin(), v.end(), std::greater<>());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  uniq_desc(pixels);
  uniq_desc(bitrates);
  auto index_of = [](const std::vector<std::uint32_t>& v, std::uint32_t x) {
    return static_cast<int>(std::find(v.begin(), v.end(), x) - v.begin());
  };
  int steps = a.codec != b.codec ? 1 : 0;
  steps += std::abs(index_of(pixels, a.resolution.pixels()) -
                    index_of(pixels, b.resolution.pixels()));
  steps += std::abs(index_of(bitrates, a.bitrate_kbps) -
                    index_of(bitrates, b.bitrate_kbps));
  return steps;
}
}  // namespace

RequestSynthesizer::RequestSynthesizer(const media::Catalog& catalog,
                                       ObjectPopulation& population,
                                       RequestConfig config)
    : catalog_(catalog), population_(population), config_(config) {}

core::QoSRequirements RequestSynthesizer::draw(util::Rng& rng) {
  return draw_for(population_.sample(rng), rng);
}

core::QoSRequirements RequestSynthesizer::draw_for(
    const media::MediaObject& object, util::Rng& rng) {
  core::QoSRequirements q;
  q.object = object.id;

  if (rng.bernoulli(config_.passthrough_probability)) {
    q.acceptable_formats.push_back(object.format);
  } else {
    // Candidate targets: strictly "smaller" formats than the source (the
    // receiver is a constrained device, §1's transcoding motivation).
    std::vector<media::MediaFormat> candidates;
    for (const auto& f : catalog_.formats()) {
      if (media::is_sensible_conversion(object.format, f) &&
          ladder_steps(catalog_, object.format, f) <= config_.max_target_steps) {
        candidates.push_back(f);
      }
    }
    if (candidates.empty()) {
      q.acceptable_formats.push_back(object.format);
    } else {
      rng.shuffle(candidates.begin(), candidates.end());
      const std::size_t want = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(config_.min_acceptable_formats),
          static_cast<std::int64_t>(config_.max_acceptable_formats)));
      const std::size_t n = std::min(want, candidates.size());
      q.acceptable_formats.assign(candidates.begin(),
                                  candidates.begin() +
                                      static_cast<std::ptrdiff_t>(n));
    }
  }

  const double tightness = rng.uniform(config_.min_deadline_tightness,
                                       config_.max_deadline_tightness);
  const double bound_s =
      object.duration_s * config_.assumed_hops + config_.transfer_allowance_s;
  q.deadline = util::from_seconds(tightness * bound_s);
  q.importance = rng.uniform(config_.min_importance, config_.max_importance);
  return q;
}

}  // namespace p2prm::workload

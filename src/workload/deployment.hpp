// Deterministic deployment plans for the socket transport
// (docs/TRANSPORT.md).
//
// A DeploymentPlan is the complete description of one multi-process run:
// every peer's spec and inventory, and the full submission schedule. It is
// a pure function of DeploymentConfig (everything derives from the seed),
// so each process of a deployment rebuilds the *identical* plan locally
// and instantiates only its own slice — no coordinator, no config files,
// just `p2prm_peer --seed=S --peers=N --peer-index=K` on N command lines.
//
// The same plan also runs entirely in-process, either on the simulated
// network or on loopback sockets; tests/transport_equivalence_test.cpp
// uses that to check the two transports reach the same steady state.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/messages.hpp"
#include "core/peer_node.hpp"
#include "core/system.hpp"
#include "fault/fault_plan.hpp"
#include "workload/heterogeneity.hpp"
#include "workload/requests.hpp"

namespace p2prm::workload {

struct DeploymentConfig {
  std::uint64_t seed = 1;
  std::uint32_t peers = 16;
  std::size_t max_domain_size = 8;

  // --- timeline (per process, from its local t = 0) -------------------------
  // Peers are injected staggered (peer i at i * stagger) so joins do not
  // stampede the contact peer; submissions start after the last join has
  // had `warmup` to settle, and the run drains for `drain` afterwards.
  util::SimDuration stagger = util::milliseconds(20);
  util::SimDuration warmup = util::seconds(5);
  util::SimDuration workload = util::seconds(20);
  util::SimDuration drain = util::seconds(25);

  // --- workload -------------------------------------------------------------
  std::uint32_t task_cap = 24;
  double arrival_rate = 0.6;  // tasks/s across the whole deployment

  // --- socket-mode knobs (ignored by the sim transport) -----------------------
  std::uint16_t base_port = 19000;  // peer i listens on base_port + i
  double time_scale = 1.0;          // wall-seconds per sim-second

  // --- fault injection (both transports; docs/FAULT_MODEL.md) ---------------
  // A non-trivial block makes DeploymentPlan::fault_plan() non-empty; the
  // plan is a pure function of this config, so every process of a
  // deployment rebuilds the identical plan and shims its frames the same
  // way (the per-frame decisions hash (fault_seed, from, to, link_seq)).
  std::uint64_t fault_seed = 0;         // 0 = derive from `seed`
  double fault_loss = 0.0;              // uniform drop probability, [0,1]
  double fault_duplicate = 0.0;         // deliver one extra copy
  double fault_reorder = 0.0;           // hold back, let later sends overtake
  util::SimDuration fault_delay = 0;    // fixed extra one-way delay
  util::SimDuration fault_jitter = 0;   // plus U[0, jitter] per message
  // Partition: cut peer 0 (the bootstrap RM) off from everyone for
  // [partition_at, partition_at + partition_hold), relative to workload
  // start. hold == 0 disables the partition.
  util::SimDuration partition_at = util::seconds(2);
  util::SimDuration partition_hold = 0;

  [[nodiscard]] bool faulty() const {
    return fault_loss > 0.0 || fault_duplicate > 0.0 || fault_reorder > 0.0 ||
           fault_delay > 0 || fault_jitter > 0 || partition_hold > 0;
  }

  HeterogeneityConfig het{};
  PopulationConfig population{};
  ProvisionConfig provision{};
  RequestConfig requests{};

  // The deployment's equivalence claim is about steady state, not exact
  // timing, so default requests are benign: generous deadlines and light
  // load mean every task should complete on either transport.
  [[nodiscard]] static DeploymentConfig benign(std::uint64_t seed,
                                               std::uint32_t peers);

  [[nodiscard]] util::SimDuration workload_start() const {
    return stagger * peers + warmup;
  }
  [[nodiscard]] util::SimDuration total_duration() const {
    return workload_start() + workload + drain;
  }
};

struct PlannedPeer {
  overlay::PeerSpec spec;  // spec.id == PeerId{index in plan}
  core::PeerInventory inventory;
};

struct PlannedSubmission {
  util::SimDuration at = 0;  // relative to workload start
  std::uint32_t origin = 0;  // peer index
  core::QoSRequirements qos;
};

// Terminal ledger counts of one run (or one process's share of it).
struct DeploymentOutcome {
  std::size_t submitted = 0;
  std::size_t admitted = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t failed = 0;
  std::size_t orphaned = 0;
  std::size_t pending = 0;

  // Transport-level fault evidence (filled by run(), zero in from()):
  // proves an injected plan actually fired rather than silently no-opping.
  std::uint64_t fault_dropped = 0;  // frames/messages dropped by the plan
  std::uint64_t partitioned = 0;    // blackholed by an active partition

  [[nodiscard]] static DeploymentOutcome from(const core::TaskLedger& ledger);
};

struct DeploymentPlan {
  DeploymentConfig config;
  std::vector<PlannedPeer> peers;
  std::vector<PlannedSubmission> submissions;

  // Builds the full plan. Deterministic: two processes calling this with
  // equal configs get byte-identical plans (object and service ids
  // included — they are minted by a throwaway System seeded from the
  // config, never by the live one).
  [[nodiscard]] static DeploymentPlan build(const DeploymentConfig& config);

  // The deployment's fault plan (empty when !config.faulty()). Seed-pure
  // and built from explicit peer ids only — never "the current primary RM",
  // which a process hosting a non-RM slice could not resolve — so every
  // process of the deployment installs a byte-identical plan.
  [[nodiscard]] fault::FaultPlan fault_plan() const;

  // SystemConfig for the process hosting peers [first, last) of this plan.
  // Socket mode gives each process a disjoint id space derived from
  // `first` so task/job ids never collide across the wire.
  [[nodiscard]] core::SystemConfig system_config(
      core::TransportKind transport, std::uint32_t first_peer_index) const;

  // Schedules peers [first, last) into `system`: injection (staggered by
  // global index), then every submission originating in the range. Peer 0
  // founds the domain; everyone else joins through PeerId{0}.
  void schedule(core::System& system, std::uint32_t first,
                std::uint32_t last) const;

  // Runs the whole plan in one process on the chosen transport and
  // returns the final ledger counts.
  [[nodiscard]] DeploymentOutcome run(core::TransportKind transport) const;
};

}  // namespace p2prm::workload

#include "workload/churn.hpp"

namespace p2prm::workload {

ChurnDriver::ChurnDriver(core::System& system, PeerFactory factory,
                         ChurnConfig config)
    : system_(system),
      factory_(std::move(factory)),
      config_(config),
      rng_(system.workload_rng().fork()) {}

void ChurnDriver::track(util::PeerId peer) { schedule_departure(peer); }

void ChurnDriver::track_all_alive() {
  for (const auto id : system_.alive_peer_ids()) schedule_departure(id);
}

void ChurnDriver::schedule_departure(util::PeerId peer) {
  const double session_s = rng_.exponential(config_.mean_session_s);
  system_.simulator().schedule_after(util::from_seconds(session_s),
                                     [this, peer] { depart(peer); });
}

void ChurnDriver::depart(util::PeerId peer) {
  if (!running_) return;
  auto* node = system_.peer(peer);
  if (node == nullptr || !node->alive()) return;
  if (!config_.churn_rms && node->resource_manager() != nullptr) {
    // Spared this time; try again after another session.
    schedule_departure(peer);
    return;
  }
  if (node->resource_manager() != nullptr) ++stats_.rm_departures;
  ++stats_.departures;
  if (rng_.bernoulli(config_.crash_fraction)) {
    ++stats_.crashes;
    system_.crash_peer(peer);
  } else {
    system_.leave_peer(peer);
  }
  if (config_.respawn) schedule_respawn();
}

void ChurnDriver::schedule_respawn() {
  const double offline_s = rng_.exponential(config_.mean_offline_s);
  system_.simulator().schedule_after(util::from_seconds(offline_s), [this] {
    if (!running_) return;
    auto [spec, inv] = factory_();
    const auto id = system_.add_peer(spec, std::move(inv));
    ++stats_.respawns;
    schedule_departure(id);
  });
}

}  // namespace p2prm::workload

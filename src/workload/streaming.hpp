// Continuous live-streaming workload (docs/STREAMING.md).
//
// The paper's motivating application is live media distribution with
// in-network transcoding, but the request/response workloads elsewhere in
// src/workload only exercise one-shot tasks. StreamingScenario synthesizes
// the missing shape: channels that emit chunks on a fixed period for a
// live window, viewers that join and leave (plus an optional flash crowd),
// and per-viewer target formats that require multi-hop transcoding chains
// through the media::Catalog.
//
// The scenario is a *plan*: a pure, deterministic value derived from
// (catalog, config, peer lists). The stream::StreamEngine executes plans;
// tests compare them structurally and via digest().
#pragma once

#include <cstdint>
#include <vector>

#include "media/catalog.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace p2prm::workload {

struct ChannelPlan {
  std::uint32_t id = 0;
  util::PeerId source;                // peer hosting the live feed
  util::ObjectId object;              // id of the channel's media object
  media::MediaFormat source_format{};
  util::SimTime start = 0;            // first chunk generated here
  std::uint32_t chunk_count = 0;      // chunks emitted over the live window

  friend bool operator==(const ChannelPlan&, const ChannelPlan&) = default;
};

struct ViewerPlan {
  std::uint32_t id = 0;
  std::uint32_t channel = 0;
  util::PeerId sink;                  // where chunks are delivered
  media::MediaFormat target{};        // desired presentation format
  util::SimTime join = 0;
  util::SimTime leave = 0;            // always > join
  bool flash = false;                 // part of the seeded flash crowd

  friend bool operator==(const ViewerPlan&, const ViewerPlan&) = default;
};

struct StreamingConfig {
  std::uint64_t seed = 1;
  std::uint32_t channels = 3;
  std::uint32_t viewers = 18;         // steady-state viewers over the run
  // Flash crowd: this many extra viewers join one hot channel within
  // `flash_spread` of `flash_at`. 0 disables the burst.
  std::uint32_t flash_crowd = 0;
  util::SimTime flash_at = util::seconds(8);
  util::SimDuration flash_spread = util::milliseconds(200);
  util::SimTime first_join = util::seconds(1);
  util::SimDuration live_window = util::seconds(20);  // channel air time
  util::SimDuration chunk_period = util::milliseconds(500);
  // Per-chunk delivery budget after generation; `late_grace` past it the
  // chunk still counts as late rather than dropped.
  util::SimDuration chunk_deadline = util::milliseconds(2000);
  util::SimDuration late_grace = util::milliseconds(1000);
  double mean_watch_s = 8.0;          // exponential viewer session length

  friend bool operator==(const StreamingConfig&,
                         const StreamingConfig&) = default;
};

struct StreamPlan {
  StreamingConfig config{};
  std::vector<ChannelPlan> channels;
  std::vector<ViewerPlan> viewers;    // sorted by (join, id)

  // FNV-1a over every schedule-determining field, including the derived
  // per-channel chunk times; equal plans <=> equal digests in practice.
  [[nodiscard]] std::uint64_t digest() const;

  friend bool operator==(const StreamPlan&, const StreamPlan&) = default;
};

// Builds deterministic StreamPlans from a catalog and a seeded config.
class StreamingScenario {
 public:
  StreamingScenario(const media::Catalog& catalog, StreamingConfig config);

  // Same (catalog, config, sources, sinks) -> structurally identical plan.
  // Channels pick source peers round-robin from `sources`; viewer sinks are
  // drawn from `sinks`. Throws std::invalid_argument when the catalog has
  // no format with outgoing conversions or either peer list is empty.
  // The returned plan always passes validate().
  [[nodiscard]] StreamPlan build(const std::vector<util::PeerId>& sources,
                                 const std::vector<util::PeerId>& sinks) const;

  // True when `to` is reachable from `from` through the catalog's
  // conversion graph (zero hops included: from == to).
  [[nodiscard]] static bool format_reachable(const media::Catalog& catalog,
                                             const media::MediaFormat& from,
                                             const media::MediaFormat& to);

  // Rejects no-path (channel source format -> viewer target) pairs up
  // front — at scenario build, not mid-run. Throws std::invalid_argument
  // naming the first offending viewer.
  static void validate(const media::Catalog& catalog, const StreamPlan& plan);

 private:
  const media::Catalog& catalog_;
  StreamingConfig config_;
};

}  // namespace p2prm::workload

#include "workload/heterogeneity.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace p2prm::workload {

std::string_view capacity_distribution_name(CapacityDistribution d) {
  switch (d) {
    case CapacityDistribution::Homogeneous: return "homogeneous";
    case CapacityDistribution::Uniform: return "uniform";
    case CapacityDistribution::Bimodal: return "bimodal";
    case CapacityDistribution::Pareto: return "pareto";
  }
  return "?";
}

overlay::PeerSpec draw_peer_spec(const HeterogeneityConfig& config,
                                 util::Rng& rng, util::SimTime now) {
  overlay::PeerSpec spec;
  switch (config.distribution) {
    case CapacityDistribution::Homogeneous:
      spec.capacity_ops_per_s = config.mean_capacity_ops;
      break;
    case CapacityDistribution::Uniform: {
      const double hi = 2.0 * config.mean_capacity_ops - config.min_capacity_ops;
      spec.capacity_ops_per_s = rng.uniform(config.min_capacity_ops, hi);
      break;
    }
    case CapacityDistribution::Bimodal: {
      // Solve weak so that the mix hits the configured mean.
      const double f = config.bimodal_strong_fraction;
      const double m = config.bimodal_strong_multiplier;
      const double weak =
          config.mean_capacity_ops / (f * m + (1.0 - f));
      spec.capacity_ops_per_s =
          rng.bernoulli(f) ? weak * m : weak;
      break;
    }
    case CapacityDistribution::Pareto: {
      // E[X] = alpha*x_m/(alpha-1)  ->  x_m = mean*(alpha-1)/alpha.
      const double alpha = config.pareto_alpha;
      const double x_m = config.mean_capacity_ops * (alpha - 1.0) / alpha;
      spec.capacity_ops_per_s = rng.pareto(x_m, alpha);
      break;
    }
  }
  spec.capacity_ops_per_s =
      std::max(spec.capacity_ops_per_s, config.min_capacity_ops);

  const double link =
      rng.uniform(config.min_link_bytes_per_s, config.max_link_bytes_per_s);
  spec.link.uplink_bytes_per_s = link;
  spec.link.downlink_bytes_per_s = link;

  const double prior_uptime = rng.exponential(config.mean_prior_uptime_s);
  spec.online_since = now - util::from_seconds(prior_uptime);
  return spec;
}

// ---------------------------------------------------------------------------

ObjectPopulation::ObjectPopulation(const media::Catalog& catalog,
                                   const PopulationConfig& config,
                                   core::System& system, util::Rng& rng)
    : zipf_(std::max<std::size_t>(config.object_count, 1), config.zipf_skew) {
  std::vector<media::MediaFormat> source_formats;
  for (const auto& f : catalog.formats()) {
    if (f.bitrate_kbps >= config.source_min_bitrate_kbps) {
      source_formats.push_back(f);
    }
  }
  if (source_formats.empty()) {
    throw std::invalid_argument(
        "ObjectPopulation: no catalog format reaches source_min_bitrate_kbps");
  }
  objects_.reserve(config.object_count);
  for (std::size_t i = 0; i < config.object_count; ++i) {
    const auto& fmt = source_formats[rng.below(source_formats.size())];
    const double duration =
        rng.uniform(config.min_duration_s, config.max_duration_s);
    objects_.push_back(
        media::make_object(system.next_object_id(), fmt, duration, rng));
  }
}

const media::MediaObject& ObjectPopulation::sample(util::Rng& rng) {
  return objects_[zipf_(rng)];
}

const media::MediaObject* ObjectPopulation::next_unhosted() {
  if (next_unhosted_ >= objects_.size()) return nullptr;
  return &objects_[next_unhosted_++];
}

// ---------------------------------------------------------------------------

core::PeerInventory provision_inventory(const media::Catalog& catalog,
                                        ObjectPopulation& population,
                                        const ProvisionConfig& config,
                                        core::System& system, util::Rng& rng) {
  core::PeerInventory inv;
  // Cover the population first (every object should exist somewhere in the
  // network), then add Zipf-weighted replicas — popular objects end up on
  // more peers, as in real content distributions.
  std::unordered_set<std::uint64_t> have_obj;
  for (std::size_t i = 0; i < config.objects_per_peer && population.size() > 0;
       ++i) {
    const media::MediaObject* obj = population.next_unhosted();
    if (obj == nullptr) {
      const auto& replica = population.sample(rng);
      if (!have_obj.insert(replica.id.value()).second) continue;
      inv.objects.push_back(replica);
      continue;
    }
    if (have_obj.insert(obj->id.value()).second) inv.objects.push_back(*obj);
  }
  // Sample service types without replacement so a peer really offers
  // `services_per_peer` distinct conversions.
  const auto& conversions = catalog.conversions();
  std::vector<std::size_t> picks(conversions.size());
  for (std::size_t i = 0; i < picks.size(); ++i) picks[i] = i;
  rng.shuffle(picks.begin(), picks.end());
  const std::size_t n = std::min(config.services_per_peer, picks.size());
  for (std::size_t i = 0; i < n; ++i) {
    inv.services.push_back(core::ServiceOffering{system.next_service_id(),
                                                 conversions[picks[i]]});
  }
  return inv;
}

PeerFactory make_peer_factory(const media::Catalog& catalog,
                              ObjectPopulation& population,
                              const HeterogeneityConfig& het,
                              const ProvisionConfig& prov, core::System& system,
                              util::Rng& rng) {
  // The factory shares one RNG stream so respawned peers continue the same
  // statistical population.
  auto shared_rng = std::make_shared<util::Rng>(rng.fork());
  return [&catalog, &population, het, prov, &system, shared_rng] {
    auto spec = draw_peer_spec(het, *shared_rng, system.simulator().now());
    auto inv =
        provision_inventory(catalog, population, prov, system, *shared_rng);
    return std::make_pair(spec, std::move(inv));
  };
}

std::vector<util::PeerId> bootstrap_network(core::System& system,
                                            const PeerFactory& factory,
                                            std::size_t count,
                                            util::SimDuration settle) {
  std::vector<util::PeerId> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto [spec, inv] = factory();
    ids.push_back(system.add_peer(spec, std::move(inv)));
    // Small spacing keeps join traffic from synchronizing pathologically.
    system.run_for(util::milliseconds(20));
  }
  system.run_for(settle);
  return ids;
}

}  // namespace p2prm::workload

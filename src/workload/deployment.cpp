#include "workload/deployment.hpp"

#include <utility>

#include "media/catalog.hpp"

namespace p2prm::workload {

DeploymentConfig DeploymentConfig::benign(std::uint64_t seed,
                                          std::uint32_t peers) {
  DeploymentConfig c;
  c.seed = seed;
  c.peers = peers;
  // Light load, generous deadlines: the steady state is "everything
  // completes", which both transports must reproduce exactly.
  c.arrival_rate = 0.5;
  c.task_cap = 20;
  // Short clips: a realtime transcode takes about the object's duration,
  // and every pipeline must finish inside the drain window.
  c.population.min_duration_s = 2.0;
  c.population.max_duration_s = 6.0;
  // A small, fully hosted object universe: provisioning covers objects
  // round-robin before replicating, so object_count <= peers *
  // objects_per_peer guarantees every request has a source somewhere.
  c.population.object_count = 12;
  c.requests.min_deadline_tightness = 6.0;
  c.requests.max_deadline_tightness = 12.0;
  c.requests.max_target_steps = 2;
  return c;
}

DeploymentOutcome DeploymentOutcome::from(const core::TaskLedger& ledger) {
  DeploymentOutcome o;
  o.submitted = ledger.submitted();
  o.admitted = ledger.admitted();
  o.completed = ledger.completed();
  o.rejected = ledger.rejected();
  o.failed = ledger.failed();
  o.orphaned = ledger.orphaned();
  o.pending = ledger.pending();
  return o;
}

DeploymentPlan DeploymentPlan::build(const DeploymentConfig& config) {
  DeploymentPlan plan;
  plan.config = config;

  const media::Catalog catalog = media::ladder_catalog();
  // The population and provisioning helpers mint object/service ids from a
  // System. Minting from the *live* System would diverge across processes
  // (each runs with a different id_base), so a throwaway sim-mode System —
  // same seed everywhere, simulator never run — supplies the generators.
  core::SystemConfig mint_config;
  mint_config.seed = config.seed;
  core::System mint(mint_config);

  util::Rng rng{config.seed ^ 0xde91074b1eULL};
  ObjectPopulation population(catalog, config.population, mint, rng);

  plan.peers.reserve(config.peers);
  for (std::uint32_t i = 0; i < config.peers; ++i) {
    PlannedPeer p;
    p.spec = draw_peer_spec(config.het, rng, /*now=*/0);
    p.spec.id = util::PeerId{i};
    p.inventory =
        provision_inventory(catalog, population, config.provision, mint, rng);
    plan.peers.push_back(std::move(p));
  }

  RequestSynthesizer synth(catalog, population, config.requests);
  double t_s = 0.0;
  const double mean_gap_s =
      config.arrival_rate > 0.0 ? 1.0 / config.arrival_rate : 1.0;
  while (plan.submissions.size() < config.task_cap) {
    t_s += rng.exponential(mean_gap_s);
    const auto at = static_cast<util::SimDuration>(t_s * 1e9);
    if (at > config.workload) break;
    PlannedSubmission s;
    s.at = at;
    s.origin = static_cast<std::uint32_t>(rng.below(config.peers));
    s.qos = synth.draw(rng);
    plan.submissions.push_back(std::move(s));
  }
  return plan;
}

fault::FaultPlan DeploymentPlan::fault_plan() const {
  fault::FaultPlan plan;
  plan.seed = config.fault_seed != 0 ? config.fault_seed
                                     : config.seed * 1000003 + 7;
  plan.default_link.drop_probability = config.fault_loss;
  plan.default_link.duplicate_probability = config.fault_duplicate;
  plan.default_link.reorder_probability = config.fault_reorder;
  plan.default_link.extra_delay = config.fault_delay;
  plan.default_link.delay_jitter = config.fault_jitter;
  if (config.partition_hold > 0 && config.peers > 1) {
    // Isolate the bootstrap RM (peer 0) by explicit id: it becomes island 1
    // and every unlisted peer stays on island 0. isolate_primary_rm would
    // resolve the victim from the local RM table at fire time, which a
    // process hosting a non-RM slice of the deployment cannot do.
    const util::SimTime at = config.workload_start() + config.partition_at;
    plan.add_partition(at, at + config.partition_hold, {{util::PeerId{0}}});
  }
  return plan;
}

core::SystemConfig DeploymentPlan::system_config(
    core::TransportKind transport, std::uint32_t first_peer_index) const {
  core::SystemConfig sc;
  sc.seed = config.seed;
  sc.max_domain_size = config.max_domain_size;
  sc.transport = transport;
  if (transport == core::TransportKind::Socket) {
    // Disjoint per-process id spaces: process k's tasks/jobs/services can
    // cross the wire without colliding with anyone else's. (The plan's own
    // object/service ids are below any base: they came from the shared
    // minting System.)
    sc.id_base =
        (static_cast<std::uint64_t>(first_peer_index) + 1) << 32;
    sc.socket.base_port = config.base_port;
    sc.socket.time_scale = config.time_scale;
  }
  return sc;
}

void DeploymentPlan::schedule(core::System& system, std::uint32_t first,
                              std::uint32_t last) const {
  auto& sim = system.simulator();
  for (std::uint32_t i = first; i < last && i < peers.size(); ++i) {
    const PlannedPeer& p = peers[i];
    // Peers join staggered by *global* index, so a multi-process
    // deployment and the single-process replay order joins the same way.
    const util::SimTime at = config.stagger * i;
    const std::optional<util::PeerId> contact =
        i == 0 ? std::nullopt : std::optional<util::PeerId>(util::PeerId{0});
    sim.schedule_at(at, [&system, p, contact] {
      system.add_peer(p.spec, p.inventory, std::nullopt, contact);
    });
  }
  const util::SimTime start = config.workload_start();
  for (const PlannedSubmission& s : submissions) {
    if (s.origin < first || s.origin >= last) continue;
    sim.schedule_at(start + s.at, [&system, s] {
      system.submit_task(util::PeerId{s.origin}, s.qos);
    });
  }
}

DeploymentOutcome DeploymentPlan::run(core::TransportKind transport) const {
  core::System system(system_config(transport, 0));
  if (config.faulty()) system.install_fault_plan(fault_plan());
  schedule(system, 0, static_cast<std::uint32_t>(peers.size()));
  system.run_for(config.total_duration());
  system.drain_transport(/*wall_ms=*/500);
  DeploymentOutcome outcome = DeploymentOutcome::from(system.ledger());
  outcome.fault_dropped = system.transport().stats().messages_fault_dropped;
  outcome.partitioned = system.transport().stats().messages_partitioned;
  return outcome;
}

}  // namespace p2prm::workload

#include "gossip/gossip_engine.hpp"

#include <algorithm>

namespace p2prm::gossip {

void GossipMessage::encode_body(net::Writer& w) const {
  w.id(sender);
  w.count(summaries.size());
  for (const auto& s : summaries) s.encode(w);
}

GossipMessage GossipMessage::decode_body(net::Reader& r) {
  GossipMessage m;
  m.sender = r.id<util::PeerIdTag>();
  // Smallest summary: six 8-byte scalars + two empty-ish blooms + flag.
  const std::size_t n = r.count(8 * 6 + 1);
  m.summaries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) m.summaries.push_back(DomainSummary::decode(r));
  return m;
}

GossipEngine::GossipEngine(sim::Simulator& simulator, net::Transport& transport,
                           util::PeerId self, GossipConfig config,
                           PeerProvider rm_peers)
    : sim_(simulator),
      net_(transport),
      self_(self),
      config_(config),
      rm_peers_(std::move(rm_peers)),
      rng_(simulator.rng().fork()) {}

GossipEngine::~GossipEngine() { stop(); }

void GossipEngine::start() {
  if (timer_.active()) return;
  timer_ = sim_.every(config_.period, [this] { round(); });
}

void GossipEngine::stop() { timer_.cancel(); }

void GossipEngine::set_local_summary(DomainSummary summary) {
  local_domain_ = summary.domain;
  refreshed_at_[summary.domain] = sim_.now();
  std::vector<DomainSummary> one{std::move(summary)};
  // Local summaries always win ties: force version-monotonic callers, but
  // replace equal versions too (contents may have been rebuilt).
  const auto it = std::find_if(summaries_.begin(), summaries_.end(),
                               [&](const DomainSummary& s) {
                                 return s.domain == one[0].domain;
                               });
  if (it == summaries_.end()) {
    summaries_.push_back(std::move(one[0]));
  } else if (one[0].version >= it->version) {
    *it = std::move(one[0]);
  }
}

void GossipEngine::handle_message(util::PeerId from, const GossipMessage& msg) {
  const util::PeerId sender = msg.sender.valid() ? msg.sender : from;
  last_heard_[sender] = sim_.now();
  const std::size_t changed = reconcile(summaries_, msg.summaries);
  // Freshness attestation. Only the domain's own RM can vouch for its
  // domain: third-party copies carry content (freshest-wins above) but must
  // not extend a dead domain's lifetime by bouncing its frozen summary
  // around. A domain we had never seen gets one grace window to attest
  // itself first-hand.
  for (const auto& s : msg.summaries) {
    if (s.resource_manager == sender || !refreshed_at_.count(s.domain)) {
      refreshed_at_[s.domain] = sim_.now();
    }
  }
  if (changed && on_change_) on_change_(changed);
}

bool GossipEngine::is_fresh(util::DomainId domain) const {
  if (domain == local_domain_) return true;
  if (config_.stale_after <= 0) return summary_of(domain) != nullptr;
  const auto it = refreshed_at_.find(domain);
  if (it == refreshed_at_.end()) return false;
  return sim_.now() - it->second <= config_.stale_after;
}

void GossipEngine::push_to(util::PeerId peer) {
  auto msg = std::make_unique<GossipMessage>();
  msg->sender = self_;
  msg->summaries = summaries_;
  net_.send(self_, peer, std::move(msg));
}

void GossipEngine::round() {
  ++stats_.rounds;
  if (summaries_.empty()) return;
  std::vector<util::PeerId> peers = rm_peers_();
  peers.erase(std::remove(peers.begin(), peers.end(), self_), peers.end());
  if (peers.empty()) return;
  rng_.shuffle(peers.begin(), peers.end());
  const std::size_t n = std::min(config_.fanout, peers.size());
  for (std::size_t i = 0; i < n; ++i) {
    push_to(peers[i]);
    ++stats_.pushes;
  }

  // Anti-entropy: partners we have not heard from within the silence window
  // get a targeted push beyond the random fanout, so lossy links and healed
  // partitions reconverge promptly instead of waiting on random selection.
  if (config_.partner_silence_timeout <= 0) return;
  const util::SimTime now = sim_.now();
  std::size_t extra = 0;
  for (std::size_t i = n;
       i < peers.size() && extra < config_.max_anti_entropy_pushes; ++i) {
    const auto it = last_heard_.find(peers[i]);
    const util::SimTime heard = it == last_heard_.end() ? 0 : it->second;
    if (now - heard < config_.partner_silence_timeout) continue;
    push_to(peers[i]);
    ++stats_.anti_entropy_pushes;
    ++extra;
    // Reset the clock so one silent partner is not hammered every round
    // while the silence window is still open.
    last_heard_[peers[i]] = now;
  }
}

const DomainSummary* GossipEngine::summary_of(util::DomainId domain) const {
  const auto it = std::find_if(summaries_.begin(), summaries_.end(),
                               [&](const DomainSummary& s) {
                                 return s.domain == domain;
                               });
  return it == summaries_.end() ? nullptr : &*it;
}

namespace {
template <typename Pred, typename Fresh>
std::vector<const DomainSummary*> filter_sorted(
    const std::vector<DomainSummary>& all, util::DomainId exclude, Pred pred,
    Fresh fresh) {
  std::vector<const DomainSummary*> out;
  for (const auto& s : all) {
    if (s.domain == exclude) continue;
    if (!fresh(s.domain)) continue;
    if (pred(s)) out.push_back(&s);
  }
  std::sort(out.begin(), out.end(),
            [](const DomainSummary* a, const DomainSummary* b) {
              if (a->utilization() != b->utilization()) {
                return a->utilization() < b->utilization();
              }
              return a->domain < b->domain;
            });
  return out;
}
}  // namespace

std::vector<const DomainSummary*> GossipEngine::domains_with_service(
    std::uint64_t key, util::DomainId exclude) const {
  return filter_sorted(
      summaries_, exclude,
      [&](const DomainSummary& s) { return s.services.possibly_contains(key); },
      [&](util::DomainId d) { return is_fresh(d); });
}

std::vector<const DomainSummary*> GossipEngine::domains_with_object(
    util::ObjectId object, util::DomainId exclude) const {
  return filter_sorted(
      summaries_, exclude,
      [&](const DomainSummary& s) { return s.objects.possibly_contains(object); },
      [&](util::DomainId d) { return is_fresh(d); });
}

}  // namespace p2prm::gossip

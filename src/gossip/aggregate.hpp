// Per-domain gossip aggregate — the hierarchical InfoBase row (§3.1, §4.4).
//
// At million-peer scale an RM cannot gossip (or store) per-peer rows for
// remote domains: the info base must stay O(domains), not O(peers). The
// aggregate is the fixed-size domain digest that replaces the per-peer
// view for everything inter-domain admission and redirection actually
// read: member count, capacity/load totals, the utilization extremes, a
// log-bucketed capability histogram and a coarse utilization-quantile
// sketch (after the slicing papers' "answer rank queries from maintained
// order" idea, collapsed to fixed buckets so the row is constant-size).
//
// Exactness contract: InfoBase::build_aggregate() copies peer_count,
// totals and min_utilization verbatim from the incrementally maintained
// LoadIndex — the same cached values legacy admission reads — so decisions
// made through the aggregate are bit-identical to the per-peer path
// (tests/scale_test.cpp proves this on seeds 1..50). Only the histograms
// are derived per build.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "net/codec.hpp"

namespace p2prm::gossip {

struct DomainAggregate {
  // Histogram geometry. Capability buckets are log2-spaced starting at
  // kCapBase ops/s (bucket i covers [kCapBase*2^i, kCapBase*2^(i+1)),
  // clamped at both ends). Load buckets are the utilization bands the
  // adaptation thresholds live in; the final band catches >= 1.0.
  static constexpr std::size_t kBuckets = 8;
  static constexpr double kCapBase = 64.0;
  static constexpr std::array<double, kBuckets> kLoadEdges = {
      0.25, 0.50, 0.70, 0.80, 0.90, 0.95, 1.00,
      std::numeric_limits<double>::infinity()};

  std::uint32_t peer_count = 0;
  double total_capacity_ops = 0.0;
  double total_load_ops = 0.0;
  double min_utilization = std::numeric_limits<double>::infinity();
  double max_utilization = -std::numeric_limits<double>::infinity();
  std::array<std::uint32_t, kBuckets> capability_hist{};
  std::array<std::uint32_t, kBuckets> load_hist{};

  [[nodiscard]] static std::size_t capability_bucket(double capacity_ops);
  [[nodiscard]] static std::size_t load_bucket(double utilization);

  // Folds one member in. Commutative in every field, so fold order does
  // not matter. `utilization` is passed explicitly to inherit LoadIndex's
  // zero-capacity convention (counts as fully utilized).
  void add_peer(double capacity_ops, double load_ops, double utilization);

  // Element-wise union of two domain digests (gossip reconciliation of
  // partial views). Commutative and associative.
  void merge(const DomainAggregate& other);

  // total_load / total_capacity, or 1.0 when the domain has no capacity —
  // LoadIndex::mean_utilization()'s convention, NOT DomainSummary's
  // (which returns 0.0); callers choosing between the two paths must pick
  // one convention and stick to it.
  [[nodiscard]] double mean_utilization() const;

  // Upper edge of the utilization band containing the q-th quantile peer
  // (q in [0,1]); the sketch answer, exact to one band. Empty aggregate
  // or q over the top band: max_utilization (or 0 when empty).
  [[nodiscard]] double load_quantile(double q) const;

  [[nodiscard]] bool empty() const { return peer_count == 0; }

  // 4 scalar counts/totals/extremes (8B each, count padded) + two u32
  // histograms.
  [[nodiscard]] std::size_t wire_size() const {
    return 8 * 5 + 2 * kBuckets * 4;
  }

  void encode(net::Writer& w) const;
  [[nodiscard]] static DomainAggregate decode(net::Reader& r);
};

}  // namespace p2prm::gossip

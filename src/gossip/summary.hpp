// Versioned domain summaries exchanged between Resource Managers.
//
// §3.1: each RM stores, per remote domain, "a summary of the available
// application objects SumO_k and the available services SumS_k", obtained
// with Bloom filters. §4.4: summaries "have to be updated only when peers
// join or leave the system", so they carry a version the gossip layer uses
// for freshest-wins reconciliation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "gossip/aggregate.hpp"
#include "net/codec.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace p2prm::gossip {

// Bloom filter wire codec (bloom sits below net in the layering, so the
// codec lives here with its only wire consumer): geometry + insert count +
// the raw bitmap words.
[[nodiscard]] std::size_t bloom_wire_size(const bloom::BloomFilter& f);
void encode_bloom(net::Writer& w, const bloom::BloomFilter& f);
[[nodiscard]] bloom::BloomFilter decode_bloom(net::Reader& r);

struct DomainSummary {
  util::DomainId domain;
  util::PeerId resource_manager;
  std::uint64_t version = 0;

  // Aggregates used for inter-domain redirection decisions (§4.5: redirect
  // "to the appropriate domain" with capacity to spare).
  std::size_t peer_count = 0;
  double total_capacity_ops = 0.0;
  double total_load_ops = 0.0;

  bloom::BloomFilter objects{};   // SumO_k
  bloom::BloomFilter services{};  // SumS_k  (keyed by TranscoderType::type_key)

  // Hierarchical digest of the domain (histograms + utilization extremes),
  // populated only when SystemConfig::gossip_domain_aggregates is on;
  // absent summaries cost exactly the legacy wire bytes, so golden traces
  // with the knob off are unchanged.
  std::optional<DomainAggregate> aggregate;

  [[nodiscard]] double utilization() const {
    return total_capacity_ops > 0.0 ? total_load_ops / total_capacity_ops : 0.0;
  }
  [[nodiscard]] std::size_t wire_size() const {
    return 8 * 6 + bloom_wire_size(objects) + bloom_wire_size(services) + 1 +
           (aggregate ? aggregate->wire_size() : 0);
  }

  void encode(net::Writer& w) const;
  [[nodiscard]] static DomainSummary decode(net::Reader& r);
};

// Freshest-wins merge of summary sets: for each domain keep the higher
// version. Returns how many entries of `into` were created or replaced.
std::size_t reconcile(std::vector<DomainSummary>& into,
                      const std::vector<DomainSummary>& from);

}  // namespace p2prm::gossip

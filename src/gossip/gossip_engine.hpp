// Lazy inter-domain dissemination (§4.4, "Inter-Domain Propagation").
//
// "A gossiping protocol (similar for example to the one used in [29 —
// Astrolabe]) should suffice for lazily propagating changes among the
// Resource Managers."
//
// Push gossip with freshest-wins reconciliation: every period each RM picks
// `fanout` random RM peers and pushes all summaries it knows (domain count
// is small — one summary per domain, kilobytes each). Receivers keep newer
// versions and learn of domains they had never heard of. Anti-entropy in
// both directions comes for free because every RM pushes.
#pragma once

#include <functional>
#include <vector>

#include "gossip/summary.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"

namespace p2prm::gossip {

struct GossipMessage final : net::Message {
  util::PeerId sender;
  std::vector<DomainSummary> summaries;

  static constexpr net::WireType kType = net::WireType::GossipSummaries;
  [[nodiscard]] std::size_t wire_size() const override {
    std::size_t n = net::kFrameHeaderBytes + 8 + 4;
    for (const auto& s : summaries) n += s.wire_size();
    return n;
  }
  [[nodiscard]] std::string_view type_name() const override {
    return "gossip.summaries";
  }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static GossipMessage decode_body(net::Reader& r);
};

struct GossipConfig {
  util::SimDuration period = util::seconds(2);
  std::size_t fanout = 2;
  // Anti-entropy retry: an RM peer we have not heard from for this long is
  // pushed to *in addition to* the random fanout each round, so a silent
  // partner (lossy link, healed partition) reconverges instead of waiting
  // on random selection. 0 disables the mechanism.
  util::SimDuration partner_silence_timeout = util::seconds(6);
  // Bound on extra targeted pushes per round (keeps overhead predictable
  // when many partners go silent at once, e.g. during a partition).
  std::size_t max_anti_entropy_pushes = 2;
  // A foreign summary turns *stale* when its own RM has not attested it
  // (by pushing to us first-hand) for this long. Stale summaries are kept
  // and still gossiped — heals reconverge — but is_fresh() reports false,
  // and routing decisions (join steering, inter-domain task redirect) must
  // ignore them: a dead domain's frozen summary otherwise misroutes joiners
  // to a dead RM forever (found by the scenario fuzzer). 0 disables.
  util::SimDuration stale_after = util::seconds(12);
};

struct GossipStats {
  std::uint64_t rounds = 0;
  std::uint64_t pushes = 0;               // random-fanout sends
  std::uint64_t anti_entropy_pushes = 0;  // targeted silent-partner sends
};

class GossipEngine {
 public:
  // `rm_peers` yields the RM's current view of other domains' RM addresses
  // (it changes as domains form and RMs fail over).
  using PeerProvider = std::function<std::vector<util::PeerId>()>;
  // Invoked whenever reconciliation changed at least one summary.
  using ChangeFn = std::function<void(std::size_t changed)>;

  GossipEngine(sim::Simulator& simulator, net::Transport& transport,
               util::PeerId self, GossipConfig config, PeerProvider rm_peers);
  ~GossipEngine();

  GossipEngine(const GossipEngine&) = delete;
  GossipEngine& operator=(const GossipEngine&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return timer_.active(); }

  // Publishes/refreshes this RM's own domain summary (version must be
  // bumped by the caller when membership changed).
  void set_local_summary(DomainSummary summary);

  // Owner's message dispatcher routes gossip messages here.
  void handle_message(util::PeerId from, const GossipMessage& msg);

  void set_on_change(ChangeFn fn) { on_change_ = std::move(fn); }

  // --- Queries (used for inter-domain redirection, §4.5) ------------------
  [[nodiscard]] const std::vector<DomainSummary>& known() const {
    return summaries_;
  }
  [[nodiscard]] const DomainSummary* summary_of(util::DomainId domain) const;
  // False when the summary is only a stale third-party copy (its RM has not
  // attested it within stale_after). Unknown domains are not fresh; our own
  // domain always is.
  [[nodiscard]] bool is_fresh(util::DomainId domain) const;
  // Domains (excluding `exclude`) whose service summary may contain `key`,
  // least-utilized first. Stale domains are excluded — their RM is possibly
  // gone and redirecting work there strands it.
  [[nodiscard]] std::vector<const DomainSummary*> domains_with_service(
      std::uint64_t key, util::DomainId exclude) const;
  [[nodiscard]] std::vector<const DomainSummary*> domains_with_object(
      util::ObjectId object, util::DomainId exclude) const;

  [[nodiscard]] std::uint64_t rounds() const { return stats_.rounds; }
  [[nodiscard]] const GossipStats& stats() const { return stats_; }

 private:
  void round();
  void push_to(util::PeerId peer);

  sim::Simulator& sim_;
  net::Transport& net_;
  util::PeerId self_;
  GossipConfig config_;
  PeerProvider rm_peers_;
  ChangeFn on_change_;
  util::Rng rng_;
  sim::Timer timer_;
  util::DomainId local_domain_;  // set by set_local_summary
  std::vector<DomainSummary> summaries_;  // includes our own
  // Last first-party attestation per domain (see GossipConfig::stale_after).
  std::unordered_map<util::DomainId, util::SimTime> refreshed_at_;
  // Last time a GossipMessage arrived from each RM peer (anti-entropy).
  std::unordered_map<util::PeerId, util::SimTime> last_heard_;
  GossipStats stats_;
};

}  // namespace p2prm::gossip

#include "gossip/aggregate.hpp"

#include <algorithm>
#include <cmath>

namespace p2prm::gossip {

std::size_t DomainAggregate::capability_bucket(double capacity_ops) {
  if (!(capacity_ops > kCapBase)) return 0;
  const double b = std::floor(std::log2(capacity_ops / kCapBase));
  return std::min<std::size_t>(kBuckets - 1, static_cast<std::size_t>(b));
}

std::size_t DomainAggregate::load_bucket(double utilization) {
  for (std::size_t i = 0; i + 1 < kBuckets; ++i) {
    if (utilization < kLoadEdges[i]) return i;
  }
  return kBuckets - 1;
}

void DomainAggregate::add_peer(double capacity_ops, double load_ops,
                               double utilization) {
  ++peer_count;
  total_capacity_ops += capacity_ops;
  total_load_ops += load_ops;
  min_utilization = std::min(min_utilization, utilization);
  max_utilization = std::max(max_utilization, utilization);
  ++capability_hist[capability_bucket(capacity_ops)];
  ++load_hist[load_bucket(utilization)];
}

void DomainAggregate::merge(const DomainAggregate& other) {
  peer_count += other.peer_count;
  total_capacity_ops += other.total_capacity_ops;
  total_load_ops += other.total_load_ops;
  min_utilization = std::min(min_utilization, other.min_utilization);
  max_utilization = std::max(max_utilization, other.max_utilization);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    capability_hist[i] += other.capability_hist[i];
    load_hist[i] += other.load_hist[i];
  }
}

double DomainAggregate::mean_utilization() const {
  return total_capacity_ops > 0.0 ? total_load_ops / total_capacity_ops : 1.0;
}

double DomainAggregate::load_quantile(double q) const {
  if (peer_count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the quantile peer, 1-based: ceil(q * n), at least 1.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * peer_count)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += load_hist[i];
    if (cum >= rank) {
      // The top band has no finite upper edge; report the tracked max.
      if (i + 1 == kBuckets) return max_utilization;
      return kLoadEdges[i];
    }
  }
  return max_utilization;
}

void DomainAggregate::encode(net::Writer& w) const {
  w.u64(peer_count);  // padded to 8 so the row stays 8-aligned (wire_size)
  w.f64(total_capacity_ops);
  w.f64(total_load_ops);
  w.f64(min_utilization);
  w.f64(max_utilization);
  for (const auto v : capability_hist) w.u32(v);
  for (const auto v : load_hist) w.u32(v);
}

DomainAggregate DomainAggregate::decode(net::Reader& r) {
  DomainAggregate a;
  a.peer_count = static_cast<std::uint32_t>(r.u64());
  a.total_capacity_ops = r.f64();
  a.total_load_ops = r.f64();
  a.min_utilization = r.f64();
  a.max_utilization = r.f64();
  for (auto& v : a.capability_hist) v = r.u32();
  for (auto& v : a.load_hist) v = r.u32();
  return a;
}

}  // namespace p2prm::gossip

#include "gossip/aggregate.hpp"

#include <algorithm>
#include <cmath>

namespace p2prm::gossip {

std::size_t DomainAggregate::capability_bucket(double capacity_ops) {
  if (!(capacity_ops > kCapBase)) return 0;
  const double b = std::floor(std::log2(capacity_ops / kCapBase));
  return std::min<std::size_t>(kBuckets - 1, static_cast<std::size_t>(b));
}

std::size_t DomainAggregate::load_bucket(double utilization) {
  for (std::size_t i = 0; i + 1 < kBuckets; ++i) {
    if (utilization < kLoadEdges[i]) return i;
  }
  return kBuckets - 1;
}

void DomainAggregate::add_peer(double capacity_ops, double load_ops,
                               double utilization) {
  ++peer_count;
  total_capacity_ops += capacity_ops;
  total_load_ops += load_ops;
  min_utilization = std::min(min_utilization, utilization);
  max_utilization = std::max(max_utilization, utilization);
  ++capability_hist[capability_bucket(capacity_ops)];
  ++load_hist[load_bucket(utilization)];
}

void DomainAggregate::merge(const DomainAggregate& other) {
  peer_count += other.peer_count;
  total_capacity_ops += other.total_capacity_ops;
  total_load_ops += other.total_load_ops;
  min_utilization = std::min(min_utilization, other.min_utilization);
  max_utilization = std::max(max_utilization, other.max_utilization);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    capability_hist[i] += other.capability_hist[i];
    load_hist[i] += other.load_hist[i];
  }
}

double DomainAggregate::mean_utilization() const {
  return total_capacity_ops > 0.0 ? total_load_ops / total_capacity_ops : 1.0;
}

double DomainAggregate::load_quantile(double q) const {
  if (peer_count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the quantile peer, 1-based: ceil(q * n), at least 1.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * peer_count)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += load_hist[i];
    if (cum >= rank) {
      // The top band has no finite upper edge; report the tracked max.
      if (i + 1 == kBuckets) return max_utilization;
      return kLoadEdges[i];
    }
  }
  return max_utilization;
}

}  // namespace p2prm::gossip

#include "gossip/summary.hpp"

#include <algorithm>

namespace p2prm::gossip {

std::size_t bloom_wire_size(const bloom::BloomFilter& f) {
  return 4 + 4 + 8 + f.words().size() * 8;
}

void encode_bloom(net::Writer& w, const bloom::BloomFilter& f) {
  w.u32(static_cast<std::uint32_t>(f.bit_count()));
  w.u32(static_cast<std::uint32_t>(f.hash_count()));
  w.u64(f.inserted());
  for (const auto word : f.words()) w.u64(word);
}

bloom::BloomFilter decode_bloom(net::Reader& r) {
  bloom::BloomParameters params;
  params.bits = r.u32();
  params.hashes = r.u32();
  const std::uint64_t inserted = r.u64();
  const std::size_t nwords = (params.bits + 63) / 64;
  // Corrupt/truncated geometry (a legit encode always has bits and hashes
  // > 0): latch the failure instead of ballooning an allocation or letting
  // the BloomFilter constructor throw out of a frame decoder.
  if (!r.ok() || params.bits == 0 || params.hashes == 0 ||
      nwords * 8 > r.remaining()) {
    r.skip(r.remaining() + 1);
    return bloom::BloomFilter{};
  }
  std::vector<std::uint64_t> words(nwords);
  for (auto& word : words) word = r.u64();
  bloom::BloomFilter f(params);
  f.adopt_words(std::move(words), static_cast<std::size_t>(inserted));
  return f;
}

void DomainSummary::encode(net::Writer& w) const {
  w.id(domain);
  w.id(resource_manager);
  w.u64(version);
  w.u64(peer_count);
  w.f64(total_capacity_ops);
  w.f64(total_load_ops);
  encode_bloom(w, objects);
  encode_bloom(w, services);
  w.boolean(aggregate.has_value());
  if (aggregate) aggregate->encode(w);
}

DomainSummary DomainSummary::decode(net::Reader& r) {
  DomainSummary s;
  s.domain = r.id<util::DomainIdTag>();
  s.resource_manager = r.id<util::PeerIdTag>();
  s.version = r.u64();
  s.peer_count = static_cast<std::size_t>(r.u64());
  s.total_capacity_ops = r.f64();
  s.total_load_ops = r.f64();
  s.objects = decode_bloom(r);
  s.services = decode_bloom(r);
  if (r.boolean()) s.aggregate = DomainAggregate::decode(r);
  return s;
}

std::size_t reconcile(std::vector<DomainSummary>& into,
                      const std::vector<DomainSummary>& from) {
  std::size_t changed = 0;
  for (const auto& incoming : from) {
    const auto it = std::find_if(into.begin(), into.end(),
                                 [&](const DomainSummary& s) {
                                   return s.domain == incoming.domain;
                                 });
    if (it == into.end()) {
      into.push_back(incoming);
      ++changed;
    } else if (incoming.version > it->version) {
      *it = incoming;
      ++changed;
    }
  }
  return changed;
}

}  // namespace p2prm::gossip

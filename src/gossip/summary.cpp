#include "gossip/summary.hpp"

#include <algorithm>

namespace p2prm::gossip {

std::size_t reconcile(std::vector<DomainSummary>& into,
                      const std::vector<DomainSummary>& from) {
  std::size_t changed = 0;
  for (const auto& incoming : from) {
    const auto it = std::find_if(into.begin(), into.end(),
                                 [&](const DomainSummary& s) {
                                   return s.domain == incoming.domain;
                                 });
    if (it == into.end()) {
      into.push_back(incoming);
      ++changed;
    } else if (incoming.version > it->version) {
      *it = incoming;
      ++changed;
    }
  }
  return changed;
}

}  // namespace p2prm::gossip

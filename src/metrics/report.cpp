#include "metrics/report.hpp"

namespace p2prm::metrics {

util::Table task_table(const core::TaskLedger& ledger) {
  util::Table t({"metric", "value"});
  t.cell("tasks submitted").cell(ledger.submitted()).end_row();
  t.cell("completed on time").cell(ledger.completed_on_time()).end_row();
  t.cell("completed late").cell(ledger.missed()).end_row();
  t.cell("rejected").cell(ledger.rejected()).end_row();
  t.cell("failed").cell(ledger.failed()).end_row();
  t.cell("orphaned").cell(ledger.orphaned()).end_row();
  t.cell("pending").cell(ledger.pending()).end_row();
  t.cell("goodput").cell(ledger.goodput(), 4).end_row();
  t.cell("miss ratio").cell(ledger.miss_ratio(), 4).end_row();
  const auto& rt = ledger.response_times_s();
  if (!rt.empty()) {
    t.cell("response time p50 (s)").cell(rt.quantile(0.5), 3).end_row();
    t.cell("response time p95 (s)").cell(rt.quantile(0.95), 3).end_row();
  }
  return t;
}

util::Table traffic_table(const net::NetworkStats& stats) {
  util::Table t({"message type", "count", "bytes"});
  for (const auto& [type, count] : stats.per_type_count) {
    t.cell(type).cell(count).cell(stats.per_type_bytes.at(type)).end_row();
  }
  const auto split = split_traffic(stats);
  t.cell("TOTAL control").cell(split.control_messages).cell(split.control_bytes)
      .end_row();
  t.cell("TOTAL data").cell(split.data_messages).cell(split.data_bytes)
      .end_row();
  return t;
}

util::Table domain_table(const core::System& system) {
  util::Table t({"domain", "rm peer", "members", "admitted", "rejected",
                 "redirects out", "recoveries"});
  for (const auto id : system.peer_ids()) {
    const auto* node = system.peer(id);
    if (node == nullptr || !node->alive()) continue;
    const auto* rm = node->resource_manager();
    if (rm == nullptr) continue;
    const auto& s = rm->stats();
    t.cell(util::to_string(rm->info().domain().id()))
        .cell(util::to_string(id))
        .cell(rm->info().domain().size())
        .cell(s.tasks_admitted)
        .cell(s.tasks_rejected)
        .cell(s.redirects_out)
        .cell(s.recoveries_succeeded)
        .end_row();
  }
  return t;
}

}  // namespace p2prm::metrics

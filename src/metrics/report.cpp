#include "metrics/report.hpp"

#include <fstream>
#include <sstream>

#include "metrics/publish.hpp"
#include "obs/export.hpp"
#include "util/json_writer.hpp"

namespace p2prm::metrics {

util::Table task_table(const core::TaskLedger& ledger) {
  util::Table t({"metric", "value"});
  t.cell("tasks submitted").cell(ledger.submitted()).end_row();
  t.cell("completed on time").cell(ledger.completed_on_time()).end_row();
  t.cell("completed late").cell(ledger.missed()).end_row();
  t.cell("rejected").cell(ledger.rejected()).end_row();
  t.cell("failed").cell(ledger.failed()).end_row();
  t.cell("orphaned").cell(ledger.orphaned()).end_row();
  t.cell("pending").cell(ledger.pending()).end_row();
  t.cell("goodput").cell(ledger.goodput(), 4).end_row();
  t.cell("miss ratio").cell(ledger.miss_ratio(), 4).end_row();
  const auto& rt = ledger.response_times_s();
  if (!rt.empty()) {
    t.cell("response time p50 (s)").cell(rt.quantile(0.5), 3).end_row();
    t.cell("response time p95 (s)").cell(rt.quantile(0.95), 3).end_row();
  }
  return t;
}

util::Table traffic_table(const net::NetworkStats& stats) {
  util::Table t({"message type", "count", "bytes"});
  for (const auto& [type, count] : stats.per_type_count) {
    t.cell(type).cell(count).cell(stats.per_type_bytes.at(type)).end_row();
  }
  const auto split = split_traffic(stats);
  t.cell("TOTAL control").cell(split.control_messages).cell(split.control_bytes)
      .end_row();
  t.cell("TOTAL data").cell(split.data_messages).cell(split.data_bytes)
      .end_row();
  if (stats.messages_fault_dropped + stats.messages_duplicated +
          stats.messages_delayed >
      0) {
    t.cell("FAULT dropped").cell(stats.messages_fault_dropped).cell(0).end_row();
    t.cell("FAULT duplicated").cell(stats.messages_duplicated).cell(0).end_row();
    t.cell("FAULT delayed").cell(stats.messages_delayed).cell(0).end_row();
  }
  return t;
}

util::Table domain_table(const core::System& system) {
  util::Table t({"domain", "rm peer", "members", "admitted", "rejected",
                 "redirects out", "recoveries"});
  for (const auto id : system.peer_ids()) {
    const auto* node = system.peer(id);
    if (node == nullptr || !node->alive()) continue;
    const auto* rm = node->resource_manager();
    if (rm == nullptr) continue;
    const auto& s = rm->stats();
    t.cell(util::to_string(rm->info().domain().id()))
        .cell(util::to_string(id))
        .cell(rm->info().domain().size())
        .cell(s.tasks_admitted)
        .cell(s.tasks_rejected)
        .cell(s.redirects_out)
        .cell(s.recoveries_succeeded)
        .end_row();
  }
  return t;
}

util::Table retry_table(const core::System& system) {
  const RetryAggregate agg = aggregate_retry_stats(system);
  util::Table t({"retry metric", "value"});
  t.cell("task-query retries").cell(agg.query_retries).end_row();
  t.cell("task-query acked").cell(agg.query_acked).end_row();
  t.cell("task-query exhausted").cell(agg.query_exhausted).end_row();
  t.cell("report retries").cell(agg.report_retries).end_row();
  t.cell("backup-sync retries").cell(agg.backup_sync_retries).end_row();
  t.cell("join retries").cell(agg.join_retries).end_row();
  t.cell("duplicate queries suppressed").cell(agg.duplicate_queries).end_row();
  t.cell("duplicate reports suppressed").cell(agg.duplicate_reports).end_row();
  t.cell("gossip anti-entropy pushes")
      .cell(agg.gossip_anti_entropy_pushes)
      .end_row();
  return t;
}

std::string metrics_json(const core::System& system) {
  const auto& ledger = system.ledger();
  const auto& net = system.transport().stats();
  const RetryAggregate retry = aggregate_retry_stats(system);
  const RmAggregate rm = aggregate_rm_stats(system);

  // v1: the flat key/value object CI consumers (bench gate, fault matrix)
  // parse. Numbers keep the historical %.6g rendering; `schema_version`
  // distinguishes it from the self-describing v2 (metrics_json_v2).
  std::ostringstream out;
  util::JsonWriter w(out);
  w.begin_object();
  w.field("schema_version", 1);
  const auto field = [&w](const char* key, double value) {
    w.field_fmt(key, value, "%.6g");
  };
  field("tasks_submitted", static_cast<double>(ledger.submitted()));
  field("tasks_admitted", static_cast<double>(ledger.admitted()));
  field("tasks_completed", static_cast<double>(ledger.completed()));
  field("tasks_completed_on_time",
        static_cast<double>(ledger.completed_on_time()));
  field("tasks_rejected", static_cast<double>(ledger.rejected()));
  field("tasks_failed", static_cast<double>(ledger.failed()));
  field("tasks_orphaned", static_cast<double>(ledger.orphaned()));
  field("goodput", ledger.goodput());
  field("miss_ratio", ledger.miss_ratio());
  field("rm_queries", static_cast<double>(rm.queries));
  field("rm_admitted", static_cast<double>(rm.admitted));
  field("rm_rejected", static_cast<double>(rm.rejected));
  field("rm_recoveries_succeeded",
        static_cast<double>(rm.recoveries_succeeded));
  field("search_vertices_popped",
        static_cast<double>(rm.search_vertices_popped));
  field("path_cache_hits", static_cast<double>(rm.path_cache_hits));
  field("path_cache_misses", static_cast<double>(rm.path_cache_misses));
  field("domains", static_cast<double>(rm.domains));
  field("messages_sent", static_cast<double>(net.messages_sent));
  field("messages_delivered", static_cast<double>(net.messages_delivered));
  field("messages_dropped", static_cast<double>(net.messages_dropped));
  field("messages_partitioned", static_cast<double>(net.messages_partitioned));
  field("fault_dropped", static_cast<double>(net.messages_fault_dropped));
  field("fault_duplicated", static_cast<double>(net.messages_duplicated));
  field("fault_delayed", static_cast<double>(net.messages_delayed));
  field("query_retries", static_cast<double>(retry.query_retries));
  field("query_acked", static_cast<double>(retry.query_acked));
  field("query_exhausted", static_cast<double>(retry.query_exhausted));
  field("report_retries", static_cast<double>(retry.report_retries));
  field("backup_sync_retries",
        static_cast<double>(retry.backup_sync_retries));
  field("join_retries", static_cast<double>(retry.join_retries));
  field("duplicate_queries", static_cast<double>(retry.duplicate_queries));
  field("duplicate_reports", static_cast<double>(retry.duplicate_reports));
  field("gossip_anti_entropy_pushes",
        static_cast<double>(retry.gossip_anti_entropy_pushes));
  w.end_object();
  out << '\n';
  return out.str();
}

bool write_metrics_json(const core::System& system, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << metrics_json(system);
  return static_cast<bool>(out);
}

std::string metrics_json_v2(const core::System& system) {
  obs::MetricsRegistry registry;
  publish_all(system, registry);
  return obs::to_json(registry);
}

bool write_metrics_json_v2(const core::System& system,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << metrics_json_v2(system);
  return static_cast<bool>(out);
}

std::string metrics_prometheus(const core::System& system) {
  obs::MetricsRegistry registry;
  publish_all(system, registry);
  return obs::to_prometheus(registry);
}

bool write_metrics_prometheus(const core::System& system,
                              const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << metrics_prometheus(system);
  return static_cast<bool>(out);
}

}  // namespace p2prm::metrics

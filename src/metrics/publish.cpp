#include "metrics/publish.hpp"

#include <algorithm>

namespace p2prm::metrics {

void publish_system(const core::System& system,
                    obs::MetricsRegistry& registry) {
  const core::TaskLedger& ledger = system.ledger();
  registry.counter("tasks.submitted").set(ledger.submitted());
  registry.counter("tasks.admitted").set(ledger.admitted());
  registry.counter("tasks.completed").set(ledger.completed());
  registry.counter("tasks.completed_on_time").set(ledger.completed_on_time());
  registry.counter("tasks.missed_deadline").set(ledger.missed());
  registry.counter("tasks.rejected").set(ledger.rejected());
  registry.counter("tasks.failed").set(ledger.failed());
  registry.counter("tasks.orphaned").set(ledger.orphaned());
  registry.gauge("tasks.pending").set(static_cast<double>(ledger.pending()));
  registry.gauge("tasks.on_time_ratio").set(ledger.on_time_ratio());
  registry.gauge("tasks.miss_ratio").set(ledger.miss_ratio());
  registry.gauge("tasks.goodput").set(ledger.goodput());
  auto& response = registry.histogram("tasks.response_time_s",
                                      obs::default_latency_bounds_s());
  for (double s : ledger.response_times_s().values()) response.observe(s);

  registry.gauge("system.peers_alive")
      .set(static_cast<double>(system.alive_count()));
  registry.gauge("system.domains")
      .set(static_cast<double>(system.domains().size()));
  registry.gauge("system.now_s")
      .set(util::to_seconds(system.simulator().now()));

  system.transport().publish(registry);
  // Engine-aware: a parallel run emits the byte-identical sim.event_queue.*
  // values its sequential twin would (sim.parallel.* stays out of the
  // snapshot for the same reason; publish it explicitly if needed).
  system.simulator().publish_queue(registry);
  system.peer_registry().publish(registry);
}

void publish_all(const core::System& system, obs::MetricsRegistry& registry) {
  publish_system(system, registry);
  // Materialized ids only: lazy rows have no node and therefore no series,
  // so skipping them is output-identical and O(materialized) not O(peers).
  for (util::PeerId id : system.materialized_peer_ids()) {
    const core::PeerNode* node = system.peer(id);
    if (node != nullptr && node->alive()) node->publish(registry);
  }
}

void publish_streamed(const core::System& system, std::size_t chunk_peers,
                      const SampleSink& sink) {
  if (chunk_peers == 0) chunk_peers = 1;
  obs::MetricsRegistry scratch;
  publish_system(system, scratch);
  scratch.for_each_sample(sink);

  const auto ids = system.materialized_peer_ids();
  for (std::size_t begin = 0; begin < ids.size(); begin += chunk_peers) {
    scratch.clear();
    const std::size_t end = std::min(begin + chunk_peers, ids.size());
    for (std::size_t i = begin; i < end; ++i) {
      const core::PeerNode* node = system.peer(ids[i]);
      if (node != nullptr && node->alive()) node->publish(scratch);
    }
    scratch.for_each_sample(sink);
  }
}

}  // namespace p2prm::metrics

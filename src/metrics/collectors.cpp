#include "metrics/collectors.hpp"

#include <algorithm>

namespace p2prm::metrics {

LoadProbe::LoadProbe(core::System& system, util::SimDuration period)
    : system_(system), period_(period) {}

LoadProbe::~LoadProbe() { stop(); }

void LoadProbe::start() {
  if (timer_.active()) return;
  prev_time_ = system_.simulator().now();
  primed_ = false;
  baseline_busy_.clear();
  for (const auto id : system_.alive_peer_ids()) {
    if (auto* node = system_.peer(id)) {
      baseline_busy_[id] = node->processor().busy_time();
    }
  }
  timer_ = system_.simulator().every(period_, [this] { tick(); });
}

double LoadProbe::cumulative_fairness() const {
  std::vector<double> loads;
  for (const auto id : system_.alive_peer_ids()) {
    auto* node = system_.peer(id);
    if (node == nullptr) continue;
    util::SimDuration busy = node->processor().busy_time();
    const auto it = baseline_busy_.find(id);
    if (it != baseline_busy_.end()) busy -= it->second;
    // Work done, weighted by capacity: the time-integral of the paper's
    // l_i = capacity x utilization.
    loads.push_back(util::to_seconds(busy) * node->spec().capacity_ops_per_s);
  }
  return fairness::jain_index(loads);
}

void LoadProbe::stop() { timer_.cancel(); }

void LoadProbe::tick() {
  const util::SimTime now = system_.simulator().now();
  const double period_s = util::to_seconds(now - prev_time_);
  std::vector<double> loads;
  double util_sum = 0.0;
  double util_max = 0.0;
  std::size_t n = 0;

  for (const auto id : system_.alive_peer_ids()) {
    auto* node = system_.peer(id);
    if (node == nullptr) continue;
    const util::SimDuration busy = node->processor().busy_time();
    const auto it = prev_busy_.find(id);
    double utilization = 0.0;
    if (it != prev_busy_.end() && period_s > 0.0) {
      utilization = std::clamp(
          util::to_seconds(busy - it->second) / period_s, 0.0, 1.0);
    }
    prev_busy_[id] = busy;
    if (primed_) {
      loads.push_back(utilization * node->spec().capacity_ops_per_s);
      util_sum += utilization;
      util_max = std::max(util_max, utilization);
      ++n;
    }
  }
  prev_time_ = now;
  if (primed_ && n > 0) {
    const double t = util::to_seconds(now);
    fairness_.add(t, fairness::jain_index(loads));
    mean_util_.add(t, util_sum / static_cast<double>(n));
    max_util_.add(t, util_max);
  }
  primed_ = true;
}

RmAggregate aggregate_rm_stats(const core::System& system) {
  RmAggregate agg;
  for (const auto id : system.peer_ids()) {
    const auto* node = system.peer(id);
    if (node == nullptr || !node->alive()) continue;
    const auto* rm = node->resource_manager();
    if (rm == nullptr) continue;
    const auto& s = rm->stats();
    agg.queries += s.queries_received;
    agg.admitted += s.tasks_admitted;
    agg.rejected += s.tasks_rejected;
    agg.redirects_out += s.redirects_out;
    agg.reassignments += s.reassignments;
    agg.recoveries_attempted += s.recoveries_attempted;
    agg.recoveries_succeeded += s.recoveries_succeeded;
    agg.member_failures += s.member_failures;
    agg.search_vertices_popped += s.search_vertices_popped;
    agg.path_cache_hits += s.path_cache_hits;
    agg.path_cache_misses += s.path_cache_misses;
    ++agg.domains;
  }
  return agg;
}

RetryAggregate aggregate_retry_stats(const core::System& system) {
  RetryAggregate agg;
  for (const auto id : system.peer_ids()) {
    const auto* node = system.peer(id);
    if (node == nullptr) continue;
    const auto& s = node->stats();
    agg.query_retries += s.query_retry.retries;
    agg.query_acked += s.query_retry.acked;
    agg.query_exhausted += s.query_retry.exhausted;
    agg.report_retries += s.report_retry.retries;
    agg.report_acked += s.report_retry.acked;
    agg.join_retries += s.join_retries;
    const auto* rm = node->resource_manager();
    if (rm == nullptr || !node->alive()) continue;
    agg.backup_sync_retries += rm->stats().backup_sync_retry.retries;
    agg.backup_sync_acked += rm->stats().backup_sync_retry.acked;
    agg.duplicate_queries += rm->stats().duplicate_queries;
    agg.duplicate_reports += rm->stats().duplicate_reports;
    agg.gossip_anti_entropy_pushes += rm->gossip().stats().anti_entropy_pushes;
  }
  return agg;
}

TrafficSplit split_traffic(const net::NetworkStats& stats) {
  TrafficSplit split;
  for (const auto& [type, count] : stats.per_type_count) {
    const auto bytes = stats.per_type_bytes.at(type);
    if (type == "core.stream_data") {
      split.data_messages += count;
      split.data_bytes += bytes;
    } else {
      split.control_messages += count;
      split.control_bytes += bytes;
    }
  }
  return split;
}

}  // namespace p2prm::metrics

// One-call snapshot of every stat source into a MetricsRegistry.
//
// This is the composition root of the pull-based metrics API: each
// component owns its publish(MetricsRegistry&) method (satellite of
// docs/OBSERVABILITY.md), and publish_all() walks the system wiring them
// together — ledger outcomes, network traffic, event-queue health, every
// peer (and through it each RM's domain metrics). Call it at the moment
// you want a snapshot; nothing is accumulated between calls.
#pragma once

#include "core/system.hpp"
#include "obs/metrics_registry.hpp"

namespace p2prm::metrics {

void publish_all(const core::System& system, obs::MetricsRegistry& registry);

}  // namespace p2prm::metrics

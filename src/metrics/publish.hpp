// One-call snapshot of every stat source into a MetricsRegistry.
//
// This is the composition root of the pull-based metrics API: each
// component owns its publish(MetricsRegistry&) method (satellite of
// docs/OBSERVABILITY.md), and publish_all() walks the system wiring them
// together — ledger outcomes, network traffic, event-queue health, every
// peer (and through it each RM's domain metrics). Call it at the moment
// you want a snapshot; nothing is accumulated between calls.
//
// publish_streamed() is the million-peer variant: the same series, but
// drained to a sink in chunks of peers so peak exporter memory is
// O(system series + chunk), never O(peers). obs_test.cpp proves the
// streamed sample set equals the monolithic snapshot for any chunk size.
#pragma once

#include <cstddef>
#include <functional>

#include "core/system.hpp"
#include "obs/metrics_registry.hpp"

namespace p2prm::metrics {

void publish_all(const core::System& system, obs::MetricsRegistry& registry);

// System-wide series only (ledger, network, event queue, peer registry
// gauges) — publish_all minus the per-peer loop.
void publish_system(const core::System& system, obs::MetricsRegistry& registry);

using SampleSink = std::function<void(const obs::MetricsRegistry::Sample&)>;

// Streams the full publish_all() series to `sink` without ever holding
// them all: system-wide series first (sorted), then materialized peers in
// ascending id order, `chunk_peers` at a time, each chunk's series sorted
// within itself. The emitted multiset of samples is identical to
// snapshotting publish_all(); only the global interleaving differs.
void publish_streamed(const core::System& system, std::size_t chunk_peers,
                      const SampleSink& sink);

}  // namespace p2prm::metrics

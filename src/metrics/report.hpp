// Standard report tables shared by examples and experiment binaries.
#pragma once

#include "core/system.hpp"
#include "metrics/collectors.hpp"
#include "util/table.hpp"

namespace p2prm::metrics {

// Task outcome summary (submitted / completed / on-time / ...).
[[nodiscard]] util::Table task_table(const core::TaskLedger& ledger);

// Per-message-type traffic with a control/data split footer and, when any
// fault injection happened, the injected drop/duplicate/delay counts.
[[nodiscard]] util::Table traffic_table(const net::NetworkStats& stats);

// One row per live domain: RM, members, admitted, rejected, redirects.
[[nodiscard]] util::Table domain_table(const core::System& system);

// Retry/timeout hardening counters (see docs/FAULT_MODEL.md).
[[nodiscard]] util::Table retry_table(const core::System& system);

// Machine-readable run summary for CI artifacts: task outcomes, retry
// aggregates and network/fault counters as a flat JSON object
// ("schema_version": 1 — the legacy format the bench gate and fault
// matrix parse; see docs/OBSERVABILITY.md for the v1 -> v2 migration).
[[nodiscard]] std::string metrics_json(const core::System& system);
// Convenience: write metrics_json to `path` (returns false on I/O error).
bool write_metrics_json(const core::System& system, const std::string& path);

// v2 ("p2prm-metrics/2"): the full typed registry — every component's
// publish() output as a self-describing sample list, byte-deterministic
// under a fixed seed. Validated by scripts/check_metrics_schema.py.
[[nodiscard]] std::string metrics_json_v2(const core::System& system);
bool write_metrics_json_v2(const core::System& system,
                           const std::string& path);

// Prometheus text exposition of the same registry snapshot.
[[nodiscard]] std::string metrics_prometheus(const core::System& system);
bool write_metrics_prometheus(const core::System& system,
                              const std::string& path);

}  // namespace p2prm::metrics

// Standard report tables shared by examples and experiment binaries.
#pragma once

#include "core/system.hpp"
#include "metrics/collectors.hpp"
#include "util/table.hpp"

namespace p2prm::metrics {

// Task outcome summary (submitted / completed / on-time / ...).
[[nodiscard]] util::Table task_table(const core::TaskLedger& ledger);

// Per-message-type traffic with a control/data split footer.
[[nodiscard]] util::Table traffic_table(const net::NetworkStats& stats);

// One row per live domain: RM, members, admitted, rejected, redirects.
[[nodiscard]] util::Table domain_table(const core::System& system);

}  // namespace p2prm::metrics

// Ground-truth measurement probes for experiments.
//
// RMs act on *reported* (profiler-smoothed, possibly stale) loads; the
// experiment harness must not grade them with their own estimates. The
// LoadProbe therefore samples the actual processors directly — busy-time
// deltas per period — and derives the true utilization and the true Jain
// fairness of the paper's load metric l_i = capacity x utilization.
#pragma once

#include <unordered_map>

#include "core/system.hpp"
#include "fairness/fairness.hpp"
#include "util/stats.hpp"

namespace p2prm::metrics {

class LoadProbe {
 public:
  LoadProbe(core::System& system, util::SimDuration period);
  ~LoadProbe();

  void start();
  void stop();

  // Jain index over all alive peers' true loads, per sample period.
  [[nodiscard]] const util::TimeSeries& fairness_series() const {
    return fairness_;
  }
  [[nodiscard]] const util::TimeSeries& mean_utilization_series() const {
    return mean_util_;
  }
  [[nodiscard]] const util::TimeSeries& max_utilization_series() const {
    return max_util_;
  }
  // Mean fairness over a time window (seconds).
  [[nodiscard]] double mean_fairness(double t0_s, double t1_s) const {
    return fairness_.mean_over(t0_s, t1_s);
  }
  [[nodiscard]] double mean_utilization(double t0_s, double t1_s) const {
    return mean_util_.mean_over(t0_s, t1_s);
  }

  // Jain fairness of *cumulative* work: per-peer busy time since the probe
  // started, weighted by capacity (the paper's l_i), over peers alive now.
  // Instantaneous fairness is inherently spiky when jobs are store-and-
  // forward batches; the cumulative view answers "was the total work spread
  // evenly", which is what load balancing is after.
  [[nodiscard]] double cumulative_fairness() const;

 private:
  void tick();

  core::System& system_;
  util::SimDuration period_;
  sim::Timer timer_;
  std::unordered_map<util::PeerId, util::SimDuration> prev_busy_;
  std::unordered_map<util::PeerId, util::SimDuration> baseline_busy_;
  util::SimTime prev_time_ = 0;
  bool primed_ = false;
  util::TimeSeries fairness_;
  util::TimeSeries mean_util_;
  util::TimeSeries max_util_;
};

// Aggregate of every live RM's counters (domains come and go; this sums
// across whoever currently holds the role).
struct RmAggregate {
  std::uint64_t queries = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t redirects_out = 0;
  std::uint64_t reassignments = 0;
  std::uint64_t recoveries_attempted = 0;
  std::uint64_t recoveries_succeeded = 0;
  std::uint64_t member_failures = 0;
  // Control-plane hot-path work: Figure 3 search effort and path-cache
  // effectiveness across all allocations.
  std::uint64_t search_vertices_popped = 0;
  std::uint64_t path_cache_hits = 0;
  std::uint64_t path_cache_misses = 0;
  std::size_t domains = 0;
};
[[nodiscard]] RmAggregate aggregate_rm_stats(const core::System& system);

// Control-plane vs data-plane traffic split (data plane = stream payloads).
struct TrafficSplit {
  std::uint64_t control_messages = 0;
  std::uint64_t control_bytes = 0;
  std::uint64_t data_messages = 0;
  std::uint64_t data_bytes = 0;
};
[[nodiscard]] TrafficSplit split_traffic(const net::NetworkStats& stats);

// Retry/timeout-hardening counters summed over every peer that still holds
// its stats (a restarted peer starts fresh) and every live RM.
struct RetryAggregate {
  std::uint64_t query_retries = 0;
  std::uint64_t query_acked = 0;
  std::uint64_t query_exhausted = 0;
  std::uint64_t report_retries = 0;
  std::uint64_t report_acked = 0;
  std::uint64_t backup_sync_retries = 0;
  std::uint64_t backup_sync_acked = 0;
  std::uint64_t join_retries = 0;
  std::uint64_t duplicate_queries = 0;   // RM-side suppressed duplicates
  std::uint64_t duplicate_reports = 0;
  std::uint64_t gossip_anti_entropy_pushes = 0;
};
[[nodiscard]] RetryAggregate aggregate_retry_stats(const core::System& system);

}  // namespace p2prm::metrics

#include "bloom/counting_bloom.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace p2prm::bloom {

CountingBloomFilter::CountingBloomFilter(BloomParameters params)
    : params_(params) {
  if (params_.bits == 0 || params_.hashes == 0) {
    throw std::invalid_argument("CountingBloomFilter: bits/hashes must be > 0");
  }
  counters_.assign(params_.bits, 0);
}

void CountingBloomFilter::bump(Hash128 h) {
  for (std::size_t i = 0; i < params_.hashes; ++i) {
    auto& c = counters_[(h.h1 + i * h.h2) % params_.bits];
    if (c < std::numeric_limits<std::uint16_t>::max()) ++c;
  }
}

bool CountingBloomFilter::all_positive(Hash128 h) const {
  for (std::size_t i = 0; i < params_.hashes; ++i) {
    if (counters_[(h.h1 + i * h.h2) % params_.bits] == 0) return false;
  }
  return true;
}

bool CountingBloomFilter::drop(Hash128 h) {
  if (!all_positive(h)) return false;
  for (std::size_t i = 0; i < params_.hashes; ++i) {
    --counters_[(h.h1 + i * h.h2) % params_.bits];
  }
  return true;
}

void CountingBloomFilter::insert(std::string_view key) { bump(hash_key(key)); }
void CountingBloomFilter::insert(std::uint64_t key) { bump(hash_key(key)); }

bool CountingBloomFilter::erase(std::string_view key) {
  return drop(hash_key(key));
}
bool CountingBloomFilter::erase(std::uint64_t key) { return drop(hash_key(key)); }

bool CountingBloomFilter::possibly_contains(std::string_view key) const {
  return all_positive(hash_key(key));
}
bool CountingBloomFilter::possibly_contains(std::uint64_t key) const {
  return all_positive(hash_key(key));
}

BloomFilter CountingBloomFilter::to_bloom() const {
  BloomFilter bf(params_);
  std::vector<std::uint64_t> words((params_.bits + 63) / 64, 0);
  for (std::size_t i = 0; i < params_.bits; ++i) {
    if (counters_[i] > 0) words[i / 64] |= (std::uint64_t{1} << (i % 64));
  }
  bf.adopt_words(std::move(words), nonzero_counters());
  return bf;
}

void CountingBloomFilter::clear() { counters_.assign(counters_.size(), 0); }

std::size_t CountingBloomFilter::nonzero_counters() const {
  return static_cast<std::size_t>(
      std::count_if(counters_.begin(), counters_.end(),
                    [](std::uint16_t c) { return c > 0; }));
}

std::uint16_t CountingBloomFilter::max_counter() const {
  return counters_.empty()
             ? std::uint16_t{0}
             : *std::max_element(counters_.begin(), counters_.end());
}

}  // namespace p2prm::bloom

// Bloom filters for inter-domain object/service summaries (§3.1: "The
// summaries can be obtained using Bloom Filters").
//
// Classic partitioned-by-double-hashing design (Kirsch–Mitzenmitzer):
// k index functions derived from two 64-bit hashes, so inserting a key is
// 1 hash + k probes. Filters of identical geometry can be merged (bitwise
// OR), which is what a Resource Manager does when a domain's summary is
// assembled from many peers.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/ids.hpp"

namespace p2prm::bloom {

// 128-bit hash of arbitrary bytes (xxhash-style mixing, not cryptographic).
struct Hash128 {
  std::uint64_t h1;
  std::uint64_t h2;
};
[[nodiscard]] Hash128 hash_bytes(const void* data, std::size_t len,
                                 std::uint64_t seed = 0);
[[nodiscard]] Hash128 hash_key(std::string_view key, std::uint64_t seed = 0);
[[nodiscard]] Hash128 hash_key(std::uint64_t key, std::uint64_t seed = 0);

struct BloomParameters {
  std::size_t bits = 1024;  // m
  std::size_t hashes = 4;   // k
};

// Optimal k for m bits / n expected elements, and expected false-positive
// probability — used by E7 to sweep bits-per-element.
[[nodiscard]] std::size_t optimal_hash_count(std::size_t bits,
                                             std::size_t expected_elements);
[[nodiscard]] double expected_fpp(std::size_t bits, std::size_t hashes,
                                  std::size_t elements);

class BloomFilter {
 public:
  explicit BloomFilter(BloomParameters params = {});
  // Geometry chosen for a target false-positive probability.
  static BloomFilter for_capacity(std::size_t expected_elements,
                                  double target_fpp);

  void insert(std::string_view key);
  void insert(std::uint64_t key);
  template <typename Tag>
  void insert(util::StrongId<Tag> id) {
    insert(id.value());
  }

  [[nodiscard]] bool possibly_contains(std::string_view key) const;
  [[nodiscard]] bool possibly_contains(std::uint64_t key) const;
  template <typename Tag>
  [[nodiscard]] bool possibly_contains(util::StrongId<Tag> id) const {
    return possibly_contains(id.value());
  }

  // Bitwise union; both filters must share geometry.
  void merge(const BloomFilter& other);

  void clear();
  [[nodiscard]] std::size_t bit_count() const { return params_.bits; }
  [[nodiscard]] std::size_t hash_count() const { return params_.hashes; }
  [[nodiscard]] std::size_t set_bits() const;
  [[nodiscard]] std::size_t inserted() const { return inserted_; }
  // Maximum-likelihood estimate of distinct elements from bit density.
  [[nodiscard]] double estimated_cardinality() const;
  // FPP estimate from the actual fill ratio.
  [[nodiscard]] double fill_ratio_fpp() const;
  // Wire size when shipped inside a gossip digest.
  [[nodiscard]] std::size_t wire_size() const { return (params_.bits + 7) / 8; }

  [[nodiscard]] bool same_geometry(const BloomFilter& other) const {
    return params_.bits == other.params_.bits &&
           params_.hashes == other.params_.hashes;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& words() const { return words_; }

  // Replaces the bitmap wholesale (deserialization, counting-filter
  // projection). `words` must have exactly ceil(bits/64) entries.
  void adopt_words(std::vector<std::uint64_t> words, std::size_t inserted);

 private:
  void set_bit(std::size_t i);
  [[nodiscard]] bool test_bit(std::size_t i) const;
  void insert_hash(Hash128 h);
  [[nodiscard]] bool contains_hash(Hash128 h) const;

  BloomParameters params_;
  std::vector<std::uint64_t> words_;
  std::size_t inserted_ = 0;
};

}  // namespace p2prm::bloom

#include "bloom/bloom_filter.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace p2prm::bloom {

namespace {
constexpr std::uint64_t kPrime1 = 0x9e3779b185ebca87ULL;
constexpr std::uint64_t kPrime2 = 0xc2b2ae3d27d4eb4fULL;

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

Hash128 hash_bytes(const void* data, std::size_t len, std::uint64_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h1 = seed ^ (len * kPrime1);
  std::uint64_t h2 = seed ^ kPrime2;
  while (len >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    h1 = mix(h1 ^ word) * kPrime1;
    h2 = mix(h2 + word) * kPrime2;
    p += 8;
    len -= 8;
  }
  std::uint64_t tail = 0;
  for (std::size_t i = 0; i < len; ++i) {
    tail |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  h1 = mix(h1 ^ tail);
  h2 = mix(h2 + tail + (h1 >> 17));
  return Hash128{h1, h2 | 1};  // odd h2 -> all k indices distinct mod 2^w
}

Hash128 hash_key(std::string_view key, std::uint64_t seed) {
  return hash_bytes(key.data(), key.size(), seed);
}

Hash128 hash_key(std::uint64_t key, std::uint64_t seed) {
  return hash_bytes(&key, sizeof key, seed);
}

std::size_t optimal_hash_count(std::size_t bits, std::size_t expected_elements) {
  if (expected_elements == 0) return 1;
  const double k = std::log(2.0) * static_cast<double>(bits) /
                   static_cast<double>(expected_elements);
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::lround(k)));
}

double expected_fpp(std::size_t bits, std::size_t hashes, std::size_t elements) {
  if (bits == 0) return 1.0;
  const double exponent = -static_cast<double>(hashes) *
                          static_cast<double>(elements) /
                          static_cast<double>(bits);
  return std::pow(1.0 - std::exp(exponent), static_cast<double>(hashes));
}

BloomFilter::BloomFilter(BloomParameters params) : params_(params) {
  if (params_.bits == 0 || params_.hashes == 0) {
    throw std::invalid_argument("BloomFilter: bits and hashes must be > 0");
  }
  words_.assign((params_.bits + 63) / 64, 0);
}

BloomFilter BloomFilter::for_capacity(std::size_t expected_elements,
                                      double target_fpp) {
  if (expected_elements == 0) expected_elements = 1;
  if (target_fpp <= 0.0 || target_fpp >= 1.0) {
    throw std::invalid_argument("BloomFilter: target_fpp must be in (0,1)");
  }
  const double ln2 = std::log(2.0);
  const double m = -static_cast<double>(expected_elements) *
                   std::log(target_fpp) / (ln2 * ln2);
  BloomParameters p;
  p.bits = std::max<std::size_t>(64, static_cast<std::size_t>(std::ceil(m)));
  p.hashes = optimal_hash_count(p.bits, expected_elements);
  return BloomFilter(p);
}

void BloomFilter::set_bit(std::size_t i) {
  words_[i / 64] |= (std::uint64_t{1} << (i % 64));
}

bool BloomFilter::test_bit(std::size_t i) const {
  return (words_[i / 64] >> (i % 64)) & 1;
}

void BloomFilter::insert_hash(Hash128 h) {
  for (std::size_t i = 0; i < params_.hashes; ++i) {
    set_bit((h.h1 + i * h.h2) % params_.bits);
  }
  ++inserted_;
}

bool BloomFilter::contains_hash(Hash128 h) const {
  for (std::size_t i = 0; i < params_.hashes; ++i) {
    if (!test_bit((h.h1 + i * h.h2) % params_.bits)) return false;
  }
  return true;
}

void BloomFilter::insert(std::string_view key) { insert_hash(hash_key(key)); }
void BloomFilter::insert(std::uint64_t key) { insert_hash(hash_key(key)); }

bool BloomFilter::possibly_contains(std::string_view key) const {
  return contains_hash(hash_key(key));
}
bool BloomFilter::possibly_contains(std::uint64_t key) const {
  return contains_hash(hash_key(key));
}

void BloomFilter::merge(const BloomFilter& other) {
  if (!same_geometry(other)) {
    throw std::invalid_argument("BloomFilter::merge: geometry mismatch");
  }
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  inserted_ += other.inserted_;
}

void BloomFilter::clear() {
  words_.assign(words_.size(), 0);
  inserted_ = 0;
}

void BloomFilter::adopt_words(std::vector<std::uint64_t> words,
                              std::size_t inserted) {
  if (words.size() != words_.size()) {
    throw std::invalid_argument("BloomFilter::adopt_words: size mismatch");
  }
  words_ = std::move(words);
  inserted_ = inserted;
}

std::size_t BloomFilter::set_bits() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

double BloomFilter::estimated_cardinality() const {
  const auto m = static_cast<double>(params_.bits);
  const auto k = static_cast<double>(params_.hashes);
  const auto x = static_cast<double>(set_bits());
  if (x >= m) return m;  // saturated
  return -(m / k) * std::log(1.0 - x / m);
}

double BloomFilter::fill_ratio_fpp() const {
  const double fill =
      static_cast<double>(set_bits()) / static_cast<double>(params_.bits);
  return std::pow(fill, static_cast<double>(params_.hashes));
}

}  // namespace p2prm::bloom

// Counting Bloom filter: supports deletion.
//
// Domain summaries must shrink when peers leave and take their objects and
// services with them (§4.1: the RM "update[s] the available data objects
// and services in the system to include the change"). A plain Bloom filter
// cannot remove keys, so Resource Managers maintain a counting filter
// internally and export its plain-bitmap projection in gossip digests.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "bloom/bloom_filter.hpp"

namespace p2prm::bloom {

class CountingBloomFilter {
 public:
  explicit CountingBloomFilter(BloomParameters params = {});

  void insert(std::string_view key);
  void insert(std::uint64_t key);
  // Removes one occurrence. Returns false (and changes nothing) if any
  // counter is already zero — the key was provably never inserted.
  bool erase(std::string_view key);
  bool erase(std::uint64_t key);

  [[nodiscard]] bool possibly_contains(std::string_view key) const;
  [[nodiscard]] bool possibly_contains(std::uint64_t key) const;

  template <typename Tag>
  void insert(util::StrongId<Tag> id) {
    insert(id.value());
  }
  template <typename Tag>
  bool erase(util::StrongId<Tag> id) {
    return erase(id.value());
  }
  template <typename Tag>
  [[nodiscard]] bool possibly_contains(util::StrongId<Tag> id) const {
    return possibly_contains(id.value());
  }

  // Plain-bitmap snapshot with identical geometry (counter > 0 -> bit set),
  // suitable for shipping in a gossip digest.
  [[nodiscard]] BloomFilter to_bloom() const;

  void clear();
  [[nodiscard]] std::size_t bit_count() const { return params_.bits; }
  [[nodiscard]] std::size_t hash_count() const { return params_.hashes; }
  [[nodiscard]] std::size_t nonzero_counters() const;
  [[nodiscard]] std::uint16_t max_counter() const;

 private:
  void bump(Hash128 h);
  [[nodiscard]] bool all_positive(Hash128 h) const;
  bool drop(Hash128 h);

  BloomParameters params_;
  std::vector<std::uint16_t> counters_;
};

}  // namespace p2prm::bloom

// Peer descriptors and Resource-Manager qualification (§4.1).
//
// "A peer must demonstrate that it has sufficient resources and stability
// before it can qualify for becoming a Resource Manager ... i) Sufficient
// bandwidth, ii) Sufficient processing power, iii) Sufficient uptime.
// According to how affluent a peer is in those resources, it is assigned a
// score, that determines its position in the list of peers in the domain
// that are eligible for becoming Resource Managers."
#pragma once

#include <string>

#include "net/network.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace p2prm::overlay {

enum class PeerRole { Regular, ResourceManager };

// Static description of a peer's resources (assigned by the heterogeneity
// generator; announced during join).
struct PeerSpec {
  util::PeerId id;
  double capacity_ops_per_s = 50e6;
  net::LinkCapacity link{};
  util::SimTime online_since = 0;

  [[nodiscard]] double bandwidth_bytes_per_s() const {
    return std::min(link.uplink_bytes_per_s, link.downlink_bytes_per_s);
  }
};

struct QualificationConfig {
  // Minimum requirements (thresholds i-iii).
  double min_bandwidth_bytes_per_s = 6.25e5;  // 5 Mbit/s
  double min_capacity_ops_per_s = 30e6;
  util::SimDuration min_uptime = util::seconds(30);
  // Score weights; normalization scales map resources to ~[0,1].
  double weight_bandwidth = 1.0;
  double weight_capacity = 1.0;
  double weight_uptime = 0.5;
  double norm_bandwidth = 1.25e7;   // 100 Mbit/s -> 1.0
  double norm_capacity = 200e6;     // 200 Mops/s -> 1.0
  util::SimDuration norm_uptime = util::minutes(30);
};

// True when the peer meets all three minimum requirements at time `now`.
[[nodiscard]] bool qualifies_for_rm(const PeerSpec& spec, util::SimTime now,
                                    const QualificationConfig& config);

// The eligibility score (higher = better backup / RM candidate).
[[nodiscard]] double rm_score(const PeerSpec& spec, util::SimTime now,
                              const QualificationConfig& config);

}  // namespace p2prm::overlay

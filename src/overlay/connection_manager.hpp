// The per-peer Connection Manager (§2).
//
// "The Connection Manager is responsible for managing the peer connections;
// that is, establishing or destroying connections of the processor to other
// peers. The number of connections is typically limited by the resources at
// the peer."
//
// Connections are refcounted by purpose: the control link to the RM stays
// up for the peer's domain lifetime, while streaming links open per task
// hop and close when the hop finishes. open() fails when the table is full
// — allocation treats that peer pair as unusable for a new session.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "util/ids.hpp"

namespace p2prm::overlay {

enum class ConnectionPurpose : std::uint8_t { Control, Streaming };

class ConnectionManager {
 public:
  explicit ConnectionManager(std::size_t max_connections = 32);

  // Opens (or refs) a connection to `peer`. Returns false iff a brand-new
  // connection is needed but the table is full.
  bool open(util::PeerId peer, ConnectionPurpose purpose);
  // Unrefs; the connection closes when both purposes drop to zero refs.
  void close(util::PeerId peer, ConnectionPurpose purpose);
  // Drops every connection to `peer` (peer failed/left).
  void drop_all_to(util::PeerId peer);
  void drop_everything();

  [[nodiscard]] bool connected(util::PeerId peer) const;
  [[nodiscard]] std::size_t connection_count() const { return table_.size(); }
  [[nodiscard]] std::size_t capacity() const { return max_connections_; }
  [[nodiscard]] bool full() const { return table_.size() >= max_connections_; }

  [[nodiscard]] std::uint64_t total_opened() const { return total_opened_; }
  [[nodiscard]] std::uint64_t total_rejected() const { return total_rejected_; }

 private:
  struct Refs {
    std::uint32_t control = 0;
    std::uint32_t streaming = 0;
    [[nodiscard]] bool empty() const { return control == 0 && streaming == 0; }
  };

  std::size_t max_connections_;
  std::unordered_map<util::PeerId, Refs> table_;
  std::uint64_t total_opened_ = 0;
  std::uint64_t total_rejected_ = 0;
};

}  // namespace p2prm::overlay

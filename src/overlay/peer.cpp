#include "overlay/peer.hpp"

#include <algorithm>

namespace p2prm::overlay {

bool qualifies_for_rm(const PeerSpec& spec, util::SimTime now,
                      const QualificationConfig& config) {
  if (spec.bandwidth_bytes_per_s() < config.min_bandwidth_bytes_per_s) {
    return false;
  }
  if (spec.capacity_ops_per_s < config.min_capacity_ops_per_s) return false;
  const util::SimDuration uptime = now - spec.online_since;
  return uptime >= config.min_uptime;
}

double rm_score(const PeerSpec& spec, util::SimTime now,
                const QualificationConfig& config) {
  const double bw = std::min(
      spec.bandwidth_bytes_per_s() / config.norm_bandwidth, 1.0);
  const double cpu =
      std::min(spec.capacity_ops_per_s / config.norm_capacity, 1.0);
  const double up = std::min(
      static_cast<double>(now - spec.online_since) /
          static_cast<double>(std::max<util::SimDuration>(config.norm_uptime, 1)),
      1.0);
  return config.weight_bandwidth * bw + config.weight_capacity * cpu +
         config.weight_uptime * up;
}

}  // namespace p2prm::overlay

#include "overlay/connection_manager.hpp"

namespace p2prm::overlay {

ConnectionManager::ConnectionManager(std::size_t max_connections)
    : max_connections_(max_connections) {}

bool ConnectionManager::open(util::PeerId peer, ConnectionPurpose purpose) {
  auto it = table_.find(peer);
  if (it == table_.end()) {
    if (full()) {
      ++total_rejected_;
      return false;
    }
    it = table_.emplace(peer, Refs{}).first;
    ++total_opened_;
  }
  if (purpose == ConnectionPurpose::Control) {
    ++it->second.control;
  } else {
    ++it->second.streaming;
  }
  return true;
}

void ConnectionManager::close(util::PeerId peer, ConnectionPurpose purpose) {
  const auto it = table_.find(peer);
  if (it == table_.end()) return;
  auto& refs = it->second;
  if (purpose == ConnectionPurpose::Control) {
    if (refs.control > 0) --refs.control;
  } else {
    if (refs.streaming > 0) --refs.streaming;
  }
  if (refs.empty()) table_.erase(it);
}

void ConnectionManager::drop_all_to(util::PeerId peer) { table_.erase(peer); }

void ConnectionManager::drop_everything() { table_.clear(); }

bool ConnectionManager::connected(util::PeerId peer) const {
  return table_.count(peer) != 0;
}

}  // namespace p2prm::overlay

// Capability-ordered slice index (after "Distributed Slicing in Dynamic
// Systems", PAPERS.md).
//
// The slicing papers' observation: to pick "the most capable peers" under
// churn you do not need to re-sort the population per query — maintain the
// capability order incrementally as reports arrive and answer rank/slice
// queries from the maintained order. Domains are bounded (max_domain_size),
// so the maintained order is a small sorted vector: updates are O(domain)
// memmoves, and RM-election / backup-selection queries become a filtered
// scan of an already-ordered sequence instead of a collect-and-sort per
// call. The order is the strict total order (score desc, id asc) — exactly
// the comparator the legacy full scan sorts by, which is what makes the
// slice-vs-scan differential (tests/scale_test.cpp, seeds 1..20) exact.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "util/ids.hpp"

namespace p2prm::overlay {

class SliceIndex {
 public:
  struct Entry {
    double score = 0.0;
    util::PeerId id;
    bool eligible = false;
  };

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  // Inserts or repositions `id` at its (score, id) rank.
  void upsert(util::PeerId id, double score, bool eligible);
  bool remove(util::PeerId id);
  [[nodiscard]] const Entry* find(util::PeerId id) const;

  // Eligible ids in capability order (score desc, ties id asc), skipping
  // `exclude` (the current RM). The head is the backup candidate.
  [[nodiscard]] std::vector<util::PeerId> ranked(
      util::PeerId exclude = util::PeerId::invalid()) const;
  [[nodiscard]] std::optional<util::PeerId> top(
      util::PeerId exclude = util::PeerId::invalid()) const;

  // Slicing-paper queries: the 0-based rank of `id` in the capability
  // order, and the slice (0 = most capable) it falls in when the
  // population is cut into `slices` equal groups.
  [[nodiscard]] std::optional<std::size_t> rank_of(util::PeerId id) const;
  [[nodiscard]] std::optional<std::size_t> slice_of(util::PeerId id,
                                                    std::size_t slices) const;

  // Whole order, most capable first (aggregation histograms iterate it).
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

 private:
  // Sorted by (score desc, id asc) — a strict total order, so the layout
  // is unique regardless of update sequence.
  std::vector<Entry> entries_;

  [[nodiscard]] std::size_t lower_bound(double score, util::PeerId id) const;
};

}  // namespace p2prm::overlay

#include "overlay/domain.hpp"

#include <algorithm>

namespace p2prm::overlay {

Domain::Domain(util::DomainId id, util::PeerId resource_manager)
    : id_(id), rm_(resource_manager) {}

void Domain::add_member(const PeerSpec& spec, util::SimTime now) {
  MemberRecord rec;
  rec.spec = spec;
  rec.joined_at = now;
  rec.last_report = now;
  members_[spec.id] = rec;
  slices_.upsert(spec.id, rec.score, rec.eligible_rm);
}

bool Domain::remove_member(util::PeerId peer) {
  slices_.remove(peer);
  return members_.erase(peer) > 0;
}

bool Domain::has_member(util::PeerId peer) const {
  return members_.count(peer) != 0;
}

const MemberRecord* Domain::member(util::PeerId peer) const {
  const auto it = members_.find(peer);
  return it == members_.end() ? nullptr : &it->second;
}

std::vector<util::PeerId> Domain::member_ids() const {
  std::vector<util::PeerId> out;
  out.reserve(members_.size());
  for (const auto& [id, _] : members_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

void Domain::record_report(util::PeerId peer, const profile::LoadSample& sample,
                           util::SimTime now, bool eligible, double score) {
  const auto it = members_.find(peer);
  if (it == members_.end()) return;
  it->second.last_sample = sample;
  it->second.last_report = now;
  it->second.eligible_rm = eligible;
  it->second.score = score;
  slices_.upsert(peer, score, eligible);
}

std::vector<util::PeerId> Domain::stale_members(
    util::SimTime now, util::SimDuration timeout) const {
  std::vector<util::PeerId> out;
  for (const auto& [id, rec] : members_) {
    if (id == rm_) continue;  // the RM does not report to itself
    if (now - rec.last_report > timeout) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<util::PeerId> Domain::eligible_ranked() const {
  return slices_.ranked(rm_);
}

std::vector<util::PeerId> Domain::eligible_ranked_scan() const {
  std::vector<std::pair<double, util::PeerId>> ranked;
  for (const auto& [id, rec] : members_) {
    if (id == rm_ || !rec.eligible_rm) continue;
    ranked.emplace_back(rec.score, id);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<util::PeerId> out;
  out.reserve(ranked.size());
  for (const auto& [_, id] : ranked) out.push_back(id);
  return out;
}

std::optional<util::PeerId> Domain::backup() const {
  return slices_.top(rm_);
}

double Domain::total_capacity_ops() const {
  double sum = 0.0;
  for (const auto& [_, rec] : members_) sum += rec.spec.capacity_ops_per_s;
  return sum;
}

double Domain::total_load_ops() const {
  double sum = 0.0;
  for (const auto& [_, rec] : members_) sum += rec.last_sample.smoothed_load_ops;
  return sum;
}

std::vector<std::pair<util::PeerId, double>> Domain::load_vector() const {
  std::vector<std::pair<util::PeerId, double>> out;
  out.reserve(members_.size());
  for (const auto& [id, rec] : members_) {
    out.emplace_back(id, rec.last_sample.smoothed_load_ops);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace p2prm::overlay

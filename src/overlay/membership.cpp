#include "overlay/membership.hpp"

namespace p2prm::overlay {

JoinOutcome decide_join(const JoinDecisionInput& input) {
  if (input.domain_size < input.max_domain_size) return JoinOutcome::Accept;
  if (input.underfull_domain_known) return JoinOutcome::Redirect;
  if (input.newcomer_qualifies) return JoinOutcome::Promote;
  if (input.other_rms_known) return JoinOutcome::Redirect;
  // Elastic overflow: the domain is full, no underfull domain is reachable,
  // the newcomer cannot found a domain of its own (weak peers never satisfy
  // the RM qualification thresholds) and we know of no live RM to redirect
  // to. Turning the peer away here strands it forever — it would retry into
  // the same dead end. max_domain_size is a sizing target, not an admission
  // guarantee, so absorb the joiner; later splits rebalance the overflow.
  return JoinOutcome::Accept;
}

}  // namespace p2prm::overlay

#include "overlay/membership.hpp"

namespace p2prm::overlay {

JoinOutcome decide_join(const JoinDecisionInput& input) {
  if (input.domain_size < input.max_domain_size) return JoinOutcome::Accept;
  if (input.underfull_domain_known) return JoinOutcome::Redirect;
  if (input.newcomer_qualifies) return JoinOutcome::Promote;
  if (input.other_rms_known) return JoinOutcome::Redirect;
  return JoinOutcome::Reject;
}

}  // namespace p2prm::overlay

#include "overlay/membership.hpp"

#include "overlay/wire_fields.hpp"

namespace p2prm::overlay {

// ---- codecs -----------------------------------------------------------------

void JoinRequest::encode_body(net::Writer& w) const { wire::encode(w, spec); }
JoinRequest JoinRequest::decode_body(net::Reader& r) {
  JoinRequest m;
  m.spec = wire::decode_peer_spec(r);
  return m;
}

void JoinRedirect::encode_body(net::Writer& w) const { w.id(target_rm); }
JoinRedirect JoinRedirect::decode_body(net::Reader& r) {
  JoinRedirect m;
  m.target_rm = r.id<util::PeerIdTag>();
  return m;
}

void JoinAccept::encode_body(net::Writer& w) const {
  w.id(domain);
  w.id(rm);
  w.u64(epoch);
}
JoinAccept JoinAccept::decode_body(net::Reader& r) {
  JoinAccept m;
  m.domain = r.id<util::DomainIdTag>();
  m.rm = r.id<util::PeerIdTag>();
  m.epoch = r.u64();
  return m;
}

void JoinPromote::encode_body(net::Writer& w) const {
  w.id(new_domain);
  w.count(known_rms.size());
  for (const auto& i : known_rms) wire::encode(w, i);
}
JoinPromote JoinPromote::decode_body(net::Reader& r) {
  JoinPromote m;
  m.new_domain = r.id<util::DomainIdTag>();
  const std::size_t n = r.count(wire::kRmInfoBytes);
  m.known_rms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) m.known_rms.push_back(wire::decode_rm_info(r));
  return m;
}

void LeaveNotice::encode_body(net::Writer&) const {}
LeaveNotice LeaveNotice::decode_body(net::Reader&) { return {}; }

void RmHeartbeat::encode_body(net::Writer& w) const {
  w.id(domain);
  w.u64(epoch);
  w.id(backup);
  w.time(report_period);
}
RmHeartbeat RmHeartbeat::decode_body(net::Reader& r) {
  RmHeartbeat m;
  m.domain = r.id<util::DomainIdTag>();
  m.epoch = r.u64();
  m.backup = r.id<util::PeerIdTag>();
  m.report_period = r.time();
  return m;
}

void RmTakeover::encode_body(net::Writer& w) const {
  w.id(domain);
  w.u64(epoch);
}
RmTakeover RmTakeover::decode_body(net::Reader& r) {
  RmTakeover m;
  m.domain = r.id<util::DomainIdTag>();
  m.epoch = r.u64();
  return m;
}

void RmPeerIntro::encode_body(net::Writer& w) const {
  w.count(rms.size());
  for (const auto& i : rms) wire::encode(w, i);
}
RmPeerIntro RmPeerIntro::decode_body(net::Reader& r) {
  RmPeerIntro m;
  const std::size_t n = r.count(wire::kRmInfoBytes);
  m.rms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) m.rms.push_back(wire::decode_rm_info(r));
  return m;
}

JoinOutcome decide_join(const JoinDecisionInput& input) {
  if (input.domain_size < input.max_domain_size) return JoinOutcome::Accept;
  if (input.underfull_domain_known) return JoinOutcome::Redirect;
  if (input.newcomer_qualifies) return JoinOutcome::Promote;
  if (input.other_rms_known) return JoinOutcome::Redirect;
  // Elastic overflow: the domain is full, no underfull domain is reachable,
  // the newcomer cannot found a domain of its own (weak peers never satisfy
  // the RM qualification thresholds) and we know of no live RM to redirect
  // to. Turning the peer away here strands it forever — it would retry into
  // the same dead end. max_domain_size is a sizing target, not an admission
  // guarantee, so absorb the joiner; later splits rebalance the overflow.
  return JoinOutcome::Accept;
}

}  // namespace p2prm::overlay

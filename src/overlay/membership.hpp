// Join / leave / RM-succession protocol messages and decision rules (§4.1).
//
// "The protocol used for connecting to the network is analogous to the
// ultrapeer negotiation utilized in Gnutella 0.6. When a new peer joins the
// network, it connects to the Resource Manager of its geographical domain,
// or to a random peer who redirects it to the Resource Manager. If the
// Resource Manager has available bandwidth and processing power, it accepts
// the processor in its domain ... If the Resource Manager has reached the
// maximum number of processors it can support, it accepts the newcomer as a
// new Resource Manager if it qualifies, otherwise it redirects it to a
// Resource Manager of another domain."
#pragma once

#include <vector>

#include "net/message.hpp"
#include "overlay/peer.hpp"
#include "util/ids.hpp"

namespace p2prm::overlay {

struct RmInfo {
  util::DomainId domain;
  util::PeerId rm;
};

// ---- messages ---------------------------------------------------------------

struct JoinRequest final : net::Message {
  PeerSpec spec;
  std::size_t wire_size() const override { return 48; }
  std::string_view type_name() const override { return "overlay.join_request"; }
};

// A non-RM contact (or an RM that cannot take the peer) points the joiner
// at another Resource Manager.
struct JoinRedirect final : net::Message {
  util::PeerId target_rm;
  std::size_t wire_size() const override { return 16; }
  std::string_view type_name() const override { return "overlay.join_redirect"; }
};

struct JoinAccept final : net::Message {
  util::DomainId domain;
  util::PeerId rm;
  std::uint64_t epoch = 0;
  std::size_t wire_size() const override { return 32; }
  std::string_view type_name() const override { return "overlay.join_accept"; }
};

// Domain full and the joiner qualifies: it becomes the RM of a fresh
// domain, seeded with the RMs the promoting RM knows about.
struct JoinPromote final : net::Message {
  util::DomainId new_domain;
  std::vector<RmInfo> known_rms;
  std::size_t wire_size() const override { return 16 + known_rms.size() * 16; }
  std::string_view type_name() const override { return "overlay.join_promote"; }
};

struct LeaveNotice final : net::Message {
  std::size_t wire_size() const override { return 8; }
  std::string_view type_name() const override { return "overlay.leave"; }
};

// RM -> members, periodic. Absence of heartbeats is how members (and above
// all the backup) "sense the withdrawn connection" of a failed RM.
struct RmHeartbeat final : net::Message {
  util::DomainId domain;
  std::uint64_t epoch = 0;
  util::PeerId backup;  // invalid when no eligible backup exists
  // §4.4 adaptive feedback frequency: the period members should report at
  // (0 = keep whatever you are doing).
  util::SimDuration report_period = 0;
  std::size_t wire_size() const override { return 40; }
  std::string_view type_name() const override { return "overlay.rm_heartbeat"; }
};

// Backup -> members after RM failure: "I am the Resource Manager now".
struct RmTakeover final : net::Message {
  util::DomainId domain;
  std::uint64_t epoch = 0;  // already bumped past the dead RM's epoch
  std::size_t wire_size() const override { return 24; }
  std::string_view type_name() const override { return "overlay.rm_takeover"; }
};

// RM <-> RM introduction when a new domain is created or an RM changes.
struct RmPeerIntro final : net::Message {
  std::vector<RmInfo> rms;
  std::size_t wire_size() const override { return 8 + rms.size() * 16; }
  std::string_view type_name() const override { return "overlay.rm_intro"; }
};

// ---- join decision rule -------------------------------------------------------

enum class JoinOutcome { Accept, Promote, Redirect, Reject };

struct JoinDecisionInput {
  std::size_t domain_size = 0;
  std::size_t max_domain_size = 0;
  bool newcomer_qualifies = false;
  bool other_rms_known = false;
  // Gossip summaries show another domain with spare membership slots. When
  // one exists, a full RM redirects there instead of promoting — otherwise
  // every qualified newcomer hitting a full domain would found a fresh
  // domain and the network would fragment into singleton domains.
  bool underfull_domain_known = false;
};

// The §4.1 rule, with one liveness amendment: when the domain is full, the
// newcomer does not qualify, and no other live domain is known, the RM
// *accepts* anyway (elastic overflow) rather than rejecting — a rejected
// weak peer has no move left and would retry into the same dead end
// forever (a stranding the scenario fuzzer demonstrated under churn).
// JoinOutcome::Reject survives in the enum for the wire protocol's
// invalid-target redirect, but decide_join no longer returns it.
[[nodiscard]] JoinOutcome decide_join(const JoinDecisionInput& input);

}  // namespace p2prm::overlay

// Join / leave / RM-succession protocol messages and decision rules (§4.1).
//
// "The protocol used for connecting to the network is analogous to the
// ultrapeer negotiation utilized in Gnutella 0.6. When a new peer joins the
// network, it connects to the Resource Manager of its geographical domain,
// or to a random peer who redirects it to the Resource Manager. If the
// Resource Manager has available bandwidth and processing power, it accepts
// the processor in its domain ... If the Resource Manager has reached the
// maximum number of processors it can support, it accepts the newcomer as a
// new Resource Manager if it qualifies, otherwise it redirects it to a
// Resource Manager of another domain."
#pragma once

#include <vector>

#include "net/message.hpp"
#include "overlay/peer.hpp"
#include "util/ids.hpp"

namespace p2prm::overlay {

struct RmInfo {
  util::DomainId domain;
  util::PeerId rm;
};

// ---- messages ---------------------------------------------------------------

struct JoinRequest final : net::Message {
  PeerSpec spec;

  static constexpr net::WireType kType = net::WireType::JoinRequest;
  std::size_t wire_size() const override { return net::kFrameHeaderBytes + 40; }
  std::string_view type_name() const override { return "overlay.join_request"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static JoinRequest decode_body(net::Reader& r);
};

// A non-RM contact (or an RM that cannot take the peer) points the joiner
// at another Resource Manager.
struct JoinRedirect final : net::Message {
  util::PeerId target_rm;

  static constexpr net::WireType kType = net::WireType::JoinRedirect;
  std::size_t wire_size() const override { return net::kFrameHeaderBytes + 8; }
  std::string_view type_name() const override { return "overlay.join_redirect"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static JoinRedirect decode_body(net::Reader& r);
};

struct JoinAccept final : net::Message {
  util::DomainId domain;
  util::PeerId rm;
  std::uint64_t epoch = 0;

  static constexpr net::WireType kType = net::WireType::JoinAccept;
  std::size_t wire_size() const override { return net::kFrameHeaderBytes + 24; }
  std::string_view type_name() const override { return "overlay.join_accept"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static JoinAccept decode_body(net::Reader& r);
};

// Domain full and the joiner qualifies: it becomes the RM of a fresh
// domain, seeded with the RMs the promoting RM knows about.
struct JoinPromote final : net::Message {
  util::DomainId new_domain;
  std::vector<RmInfo> known_rms;

  static constexpr net::WireType kType = net::WireType::JoinPromote;
  std::size_t wire_size() const override {
    return net::kFrameHeaderBytes + 12 + known_rms.size() * 16;
  }
  std::string_view type_name() const override { return "overlay.join_promote"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static JoinPromote decode_body(net::Reader& r);
};

struct LeaveNotice final : net::Message {
  static constexpr net::WireType kType = net::WireType::LeaveNotice;
  std::size_t wire_size() const override { return net::kFrameHeaderBytes; }
  std::string_view type_name() const override { return "overlay.leave"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static LeaveNotice decode_body(net::Reader& r);
};

// RM -> members, periodic. Absence of heartbeats is how members (and above
// all the backup) "sense the withdrawn connection" of a failed RM.
struct RmHeartbeat final : net::Message {
  util::DomainId domain;
  std::uint64_t epoch = 0;
  util::PeerId backup;  // invalid when no eligible backup exists
  // §4.4 adaptive feedback frequency: the period members should report at
  // (0 = keep whatever you are doing).
  util::SimDuration report_period = 0;

  static constexpr net::WireType kType = net::WireType::RmHeartbeat;
  std::size_t wire_size() const override { return net::kFrameHeaderBytes + 32; }
  std::string_view type_name() const override { return "overlay.rm_heartbeat"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static RmHeartbeat decode_body(net::Reader& r);
};

// Backup -> members after RM failure: "I am the Resource Manager now".
struct RmTakeover final : net::Message {
  util::DomainId domain;
  std::uint64_t epoch = 0;  // already bumped past the dead RM's epoch

  static constexpr net::WireType kType = net::WireType::RmTakeover;
  std::size_t wire_size() const override { return net::kFrameHeaderBytes + 16; }
  std::string_view type_name() const override { return "overlay.rm_takeover"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static RmTakeover decode_body(net::Reader& r);
};

// RM <-> RM introduction when a new domain is created or an RM changes.
struct RmPeerIntro final : net::Message {
  std::vector<RmInfo> rms;

  static constexpr net::WireType kType = net::WireType::RmPeerIntro;
  std::size_t wire_size() const override {
    return net::kFrameHeaderBytes + 4 + rms.size() * 16;
  }
  std::string_view type_name() const override { return "overlay.rm_intro"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static RmPeerIntro decode_body(net::Reader& r);
};

// ---- join decision rule -------------------------------------------------------

enum class JoinOutcome { Accept, Promote, Redirect, Reject };

struct JoinDecisionInput {
  std::size_t domain_size = 0;
  std::size_t max_domain_size = 0;
  bool newcomer_qualifies = false;
  bool other_rms_known = false;
  // Gossip summaries show another domain with spare membership slots. When
  // one exists, a full RM redirects there instead of promoting — otherwise
  // every qualified newcomer hitting a full domain would found a fresh
  // domain and the network would fragment into singleton domains.
  bool underfull_domain_known = false;
};

// The §4.1 rule, with one liveness amendment: when the domain is full, the
// newcomer does not qualify, and no other live domain is known, the RM
// *accepts* anyway (elastic overflow) rather than rejecting — a rejected
// weak peer has no move left and would retry into the same dead end
// forever (a stranding the scenario fuzzer demonstrated under churn).
// JoinOutcome::Reject survives in the enum for the wire protocol's
// invalid-target redirect, but decide_join no longer returns it.
[[nodiscard]] JoinOutcome decide_join(const JoinDecisionInput& input);

}  // namespace p2prm::overlay

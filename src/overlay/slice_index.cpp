#include "overlay/slice_index.hpp"

#include <algorithm>

namespace p2prm::overlay {

namespace {
// The capability order: higher score first, ties broken by lower id.
[[nodiscard]] bool precedes(double score_a, util::PeerId id_a, double score_b,
                            util::PeerId id_b) {
  if (score_a != score_b) return score_a > score_b;
  return id_a < id_b;
}
}  // namespace

std::size_t SliceIndex::lower_bound(double score, util::PeerId id) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), std::pair{score, id},
      [](const Entry& e, const std::pair<double, util::PeerId>& key) {
        return precedes(e.score, e.id, key.first, key.second);
      });
  return static_cast<std::size_t>(it - entries_.begin());
}

void SliceIndex::upsert(util::PeerId id, double score, bool eligible) {
  remove(id);
  Entry e{score, id, eligible};
  entries_.insert(entries_.begin() +
                      static_cast<std::ptrdiff_t>(lower_bound(score, id)),
                  e);
}

bool SliceIndex::remove(util::PeerId id) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].id == id) {
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

const SliceIndex::Entry* SliceIndex::find(util::PeerId id) const {
  for (const Entry& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

std::vector<util::PeerId> SliceIndex::ranked(util::PeerId exclude) const {
  std::vector<util::PeerId> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    if (e.eligible && e.id != exclude) out.push_back(e.id);
  }
  return out;
}

std::optional<util::PeerId> SliceIndex::top(util::PeerId exclude) const {
  for (const Entry& e : entries_) {
    if (e.eligible && e.id != exclude) return e.id;
  }
  return std::nullopt;
}

std::optional<std::size_t> SliceIndex::rank_of(util::PeerId id) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].id == id) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> SliceIndex::slice_of(util::PeerId id,
                                                std::size_t slices) const {
  const auto rank = rank_of(id);
  if (!rank || slices == 0 || entries_.empty()) return std::nullopt;
  return std::min(slices - 1, *rank * slices / entries_.size());
}

}  // namespace p2prm::overlay

// Wire codecs for the nested value types messages embed.
//
// Lives in overlay (the lowest layer that sees net, media and profile at
// once) under the cross-module p2prm::wire namespace. Each type gets the
// trio encode / decode / wire_sizeof; message codecs in overlay, gossip
// and core compose these. Sizes are exact: the codec round-trip test pins
// wire_sizeof against the encoder's actual output.
#pragma once

#include "media/format.hpp"
#include "media/transcoder.hpp"
#include "net/codec.hpp"
#include "overlay/membership.hpp"
#include "overlay/peer.hpp"
#include "profile/profiler.hpp"

namespace p2prm::wire {

// ---- media::MediaFormat (9 bytes) -----------------------------------------

inline constexpr std::size_t kMediaFormatBytes = 1 + 2 + 2 + 4;

inline void encode(net::Writer& w, const media::MediaFormat& f) {
  w.u8(static_cast<std::uint8_t>(f.codec));
  w.u16(f.resolution.width);
  w.u16(f.resolution.height);
  w.u32(f.bitrate_kbps);
}
inline media::MediaFormat decode_media_format(net::Reader& r) {
  media::MediaFormat f;
  f.codec = static_cast<media::Codec>(r.u8());
  f.resolution.width = r.u16();
  f.resolution.height = r.u16();
  f.bitrate_kbps = r.u32();
  return f;
}

// ---- media::TranscoderType (18 bytes) -------------------------------------

inline constexpr std::size_t kTranscoderTypeBytes = 2 * kMediaFormatBytes;

inline void encode(net::Writer& w, const media::TranscoderType& t) {
  encode(w, t.input);
  encode(w, t.output);
}
inline media::TranscoderType decode_transcoder_type(net::Reader& r) {
  media::TranscoderType t;
  t.input = decode_media_format(r);
  t.output = decode_media_format(r);
  return t;
}

// ---- media::MediaObject (37 + name bytes) ---------------------------------

inline std::size_t wire_sizeof(const media::MediaObject& o) {
  return 8 + (4 + o.name.size()) + kMediaFormatBytes + 8 + 8;
}
inline void encode(net::Writer& w, const media::MediaObject& o) {
  w.id(o.id);
  w.str(o.name);
  encode(w, o.format);
  w.f64(o.duration_s);
  w.u64(o.content_hash);
}
inline media::MediaObject decode_media_object(net::Reader& r) {
  media::MediaObject o;
  o.id = r.id<util::ObjectIdTag>();
  o.name = r.str();
  o.format = decode_media_format(r);
  o.duration_s = r.f64();
  o.content_hash = r.u64();
  return o;
}

// ---- overlay::PeerSpec (40 bytes) -----------------------------------------

inline constexpr std::size_t kPeerSpecBytes = 8 + 8 + 8 + 8 + 8;

inline void encode(net::Writer& w, const overlay::PeerSpec& s) {
  w.id(s.id);
  w.f64(s.capacity_ops_per_s);
  w.f64(s.link.uplink_bytes_per_s);
  w.f64(s.link.downlink_bytes_per_s);
  w.time(s.online_since);
}
inline overlay::PeerSpec decode_peer_spec(net::Reader& r) {
  overlay::PeerSpec s;
  s.id = r.id<util::PeerIdTag>();
  s.capacity_ops_per_s = r.f64();
  s.link.uplink_bytes_per_s = r.f64();
  s.link.downlink_bytes_per_s = r.f64();
  s.online_since = r.time();
  return s;
}

// ---- profile::LoadSample (72 bytes) ---------------------------------------

inline constexpr std::size_t kLoadSampleBytes = 9 * 8;

inline void encode(net::Writer& w, const profile::LoadSample& s) {
  w.time(s.at);
  w.f64(s.utilization);
  w.f64(s.load_ops);
  w.f64(s.bandwidth_bytes_per_s);
  w.u64(s.queue_length);
  w.f64(s.backlog_seconds);
  w.f64(s.smoothed_utilization);
  w.f64(s.smoothed_load_ops);
  w.f64(s.smoothed_bandwidth);
}
inline profile::LoadSample decode_load_sample(net::Reader& r) {
  profile::LoadSample s;
  s.at = r.time();
  s.utilization = r.f64();
  s.load_ops = r.f64();
  s.bandwidth_bytes_per_s = r.f64();
  s.queue_length = static_cast<std::size_t>(r.u64());
  s.backlog_seconds = r.f64();
  s.smoothed_utilization = r.f64();
  s.smoothed_load_ops = r.f64();
  s.smoothed_bandwidth = r.f64();
  return s;
}

// ---- overlay::RmInfo (16 bytes) -------------------------------------------

inline constexpr std::size_t kRmInfoBytes = 8 + 8;

inline void encode(net::Writer& w, const overlay::RmInfo& i) {
  w.id(i.domain);
  w.id(i.rm);
}
inline overlay::RmInfo decode_rm_info(net::Reader& r) {
  overlay::RmInfo i;
  i.domain = r.id<util::DomainIdTag>();
  i.rm = r.id<util::PeerIdTag>();
  return i;
}

}  // namespace p2prm::wire

// RM-side domain membership bookkeeping (§2, §4.1).
//
// A domain is "a single Resource Manager for the domain and Connection
// Managers, Profilers and Schedulers for each of the processors in the
// domain". This class is the RM's membership table: who is in the domain,
// their specs, their freshest profiler reports, and the ranked list of
// peers eligible to become Resource Managers (whose head is the backup RM).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "overlay/peer.hpp"
#include "overlay/slice_index.hpp"
#include "profile/profiler.hpp"
#include "util/ids.hpp"

namespace p2prm::overlay {

struct MemberRecord {
  PeerSpec spec;
  util::SimTime joined_at = 0;
  util::SimTime last_report = 0;
  profile::LoadSample last_sample{};
  bool eligible_rm = false;
  double score = 0.0;
};

class Domain {
 public:
  Domain() = default;
  Domain(util::DomainId id, util::PeerId resource_manager);

  [[nodiscard]] util::DomainId id() const { return id_; }
  [[nodiscard]] util::PeerId resource_manager() const { return rm_; }
  void set_resource_manager(util::PeerId rm) { rm_ = rm; }
  // Epoch bumps on every RM change; stale-epoch messages are ignored.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  void bump_epoch() { ++epoch_; }
  void set_epoch(std::uint64_t e) { epoch_ = e; }

  // --- membership -----------------------------------------------------------
  void add_member(const PeerSpec& spec, util::SimTime now);
  bool remove_member(util::PeerId peer);
  [[nodiscard]] bool has_member(util::PeerId peer) const;
  [[nodiscard]] const MemberRecord* member(util::PeerId peer) const;
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  // Member ids sorted ascending (deterministic iteration).
  [[nodiscard]] std::vector<util::PeerId> member_ids() const;

  // --- profiler feedback ------------------------------------------------------
  void record_report(util::PeerId peer, const profile::LoadSample& sample,
                     util::SimTime now, bool eligible, double score);
  // Members whose last report is older than `timeout` (failure suspects).
  [[nodiscard]] std::vector<util::PeerId> stale_members(
      util::SimTime now, util::SimDuration timeout) const;

  // --- RM succession ---------------------------------------------------------
  // Eligible members ranked by score desc (ties by id asc), excluding the
  // current RM. The head is the backup Resource Manager. Served from the
  // incrementally maintained capability slice index; eligible_ranked_scan()
  // is the legacy collect-and-sort, kept as the differential oracle
  // (tests/scale_test.cpp proves both identical on seeds 1..20 — the
  // comparator is a strict total order, so the result is unique).
  [[nodiscard]] std::vector<util::PeerId> eligible_ranked() const;
  [[nodiscard]] std::vector<util::PeerId> eligible_ranked_scan() const;
  [[nodiscard]] std::optional<util::PeerId> backup() const;
  [[nodiscard]] const SliceIndex& slices() const { return slices_; }

  // --- aggregates -------------------------------------------------------------
  [[nodiscard]] double total_capacity_ops() const;
  [[nodiscard]] double total_load_ops() const;
  // (peer, load) pairs for the fairness index, sorted by peer id.
  [[nodiscard]] std::vector<std::pair<util::PeerId, double>> load_vector() const;

 private:
  util::DomainId id_;
  util::PeerId rm_;
  std::uint64_t epoch_ = 0;
  std::unordered_map<util::PeerId, MemberRecord> members_;
  // Capability order maintained under membership/report churn.
  SliceIndex slices_;
};

}  // namespace p2prm::overlay

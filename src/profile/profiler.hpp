// The per-peer Profiler (§2, §3.2, §4.4).
//
// "The Profiler on the processor is responsible for measuring the current
// processor and network load of the peer and monitoring the computation
// and communication times of the applications as they execute."
//
// The profiler converts raw counters (cumulative busy time, cumulative
// bytes sent) into periodic LoadSamples — utilization, the paper's load
// metric l_i = processing_power x utilization, and used bandwidth bw_i —
// and keeps per-service execution-time and per-neighbour communication-time
// statistics that feed the RM's execution-time estimates.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "profile/ewma.hpp"
#include "util/ids.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace p2prm::profile {

struct LoadSample {
  util::SimTime at = 0;
  double utilization = 0.0;         // busy fraction over the last period
  double load_ops = 0.0;            // l_i = capacity x utilization (paper §3.1)
  double bandwidth_bytes_per_s = 0; // bw_i over the last period
  std::size_t queue_length = 0;
  double backlog_seconds = 0.0;
  // Smoothed values (what the RM should use for decisions).
  double smoothed_utilization = 0.0;
  double smoothed_load_ops = 0.0;
  double smoothed_bandwidth = 0.0;
};

struct ProfilerConfig {
  double ewma_alpha = 0.3;
};

class Profiler {
 public:
  Profiler(double capacity_ops_per_s, ProfilerConfig config = {});

  // Produces the sample for the period ending at `now` given cumulative
  // counters. Counters must be monotone; the first call establishes the
  // baseline and reports zeros.
  LoadSample sample(util::SimTime now, util::SimDuration cumulative_busy,
                    std::uint64_t cumulative_bytes_sent,
                    std::size_t queue_length, double backlog_seconds);

  // --- execution / communication time records -----------------------------
  void record_execution(std::uint64_t service_type_key,
                        util::SimDuration measured);
  void record_communication(util::PeerId neighbour, util::SimDuration measured);

  // Mean measured execution time for a service type; fallback when unseen.
  [[nodiscard]] util::SimDuration estimated_execution(
      std::uint64_t service_type_key, util::SimDuration fallback) const;
  [[nodiscard]] util::SimDuration estimated_communication(
      util::PeerId neighbour, util::SimDuration fallback) const;

  [[nodiscard]] const util::RunningStats* execution_stats(
      std::uint64_t service_type_key) const;
  // All per-service-type execution records (propagated to the RM, §4.4).
  [[nodiscard]] const std::unordered_map<std::uint64_t, util::RunningStats>&
  execution_records() const {
    return exec_;
  }

  [[nodiscard]] double capacity() const { return capacity_ops_per_s_; }
  [[nodiscard]] const LoadSample& last_sample() const { return last_; }

 private:
  double capacity_ops_per_s_;
  ProfilerConfig config_;

  bool has_baseline_ = false;
  util::SimTime prev_time_ = 0;
  util::SimDuration prev_busy_ = 0;
  std::uint64_t prev_bytes_ = 0;

  Ewma util_ewma_;
  Ewma load_ewma_;
  Ewma bw_ewma_;
  LoadSample last_;

  std::unordered_map<std::uint64_t, util::RunningStats> exec_;
  std::unordered_map<util::PeerId, Ewma> comm_;
};

}  // namespace p2prm::profile

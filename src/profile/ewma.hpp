// Exponentially-weighted moving averages for load smoothing.
#pragma once

#include <stdexcept>

namespace p2prm::profile {

// Classic fixed-alpha EWMA. First observation initializes the average.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.3) : alpha_(alpha) {
    if (alpha <= 0.0 || alpha > 1.0) {
      throw std::invalid_argument("Ewma: alpha must be in (0, 1]");
    }
  }

  void update(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }

  [[nodiscard]] bool initialized() const { return initialized_; }
  [[nodiscard]] double value() const { return initialized_ ? value_ : 0.0; }
  [[nodiscard]] double value_or(double fallback) const {
    return initialized_ ? value_ : fallback;
  }
  [[nodiscard]] double alpha() const { return alpha_; }
  void reset() { initialized_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace p2prm::profile

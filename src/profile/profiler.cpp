#include "profile/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace p2prm::profile {

Profiler::Profiler(double capacity_ops_per_s, ProfilerConfig config)
    : capacity_ops_per_s_(capacity_ops_per_s),
      config_(config),
      util_ewma_(config.ewma_alpha),
      load_ewma_(config.ewma_alpha),
      bw_ewma_(config.ewma_alpha) {
  if (capacity_ops_per_s <= 0.0) {
    throw std::invalid_argument("Profiler: capacity must be positive");
  }
}

LoadSample Profiler::sample(util::SimTime now, util::SimDuration cumulative_busy,
                            std::uint64_t cumulative_bytes_sent,
                            std::size_t queue_length, double backlog_seconds) {
  LoadSample s;
  s.at = now;
  s.queue_length = queue_length;
  s.backlog_seconds = backlog_seconds;

  if (has_baseline_ && now > prev_time_) {
    const double period_s = util::to_seconds(now - prev_time_);
    const double busy_s = util::to_seconds(
        std::max<util::SimDuration>(cumulative_busy - prev_busy_, 0));
    s.utilization = std::clamp(busy_s / period_s, 0.0, 1.0);
    s.load_ops = s.utilization * capacity_ops_per_s_;
    const double bytes =
        static_cast<double>(cumulative_bytes_sent - prev_bytes_);
    s.bandwidth_bytes_per_s = bytes / period_s;

    util_ewma_.update(s.utilization);
    load_ewma_.update(s.load_ops);
    bw_ewma_.update(s.bandwidth_bytes_per_s);
  }
  has_baseline_ = true;
  prev_time_ = now;
  prev_busy_ = cumulative_busy;
  prev_bytes_ = cumulative_bytes_sent;

  s.smoothed_utilization = util_ewma_.value();
  s.smoothed_load_ops = load_ewma_.value();
  s.smoothed_bandwidth = bw_ewma_.value();
  last_ = s;
  return s;
}

void Profiler::record_execution(std::uint64_t service_type_key,
                                util::SimDuration measured) {
  exec_[service_type_key].add(util::to_seconds(measured));
}

void Profiler::record_communication(util::PeerId neighbour,
                                    util::SimDuration measured) {
  auto [it, inserted] = comm_.try_emplace(neighbour, config_.ewma_alpha);
  it->second.update(util::to_seconds(measured));
}

util::SimDuration Profiler::estimated_execution(
    std::uint64_t service_type_key, util::SimDuration fallback) const {
  const auto it = exec_.find(service_type_key);
  if (it == exec_.end() || it->second.count() == 0) return fallback;
  return util::from_seconds(it->second.mean());
}

util::SimDuration Profiler::estimated_communication(
    util::PeerId neighbour, util::SimDuration fallback) const {
  const auto it = comm_.find(neighbour);
  if (it == comm_.end() || !it->second.initialized()) return fallback;
  return util::from_seconds(it->second.value());
}

const util::RunningStats* Profiler::execution_stats(
    std::uint64_t service_type_key) const {
  const auto it = exec_.find(service_type_key);
  return it == exec_.end() ? nullptr : &it->second;
}

}  // namespace p2prm::profile

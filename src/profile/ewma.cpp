// Ewma is header-only; this TU anchors the target.
#include "profile/ewma.hpp"

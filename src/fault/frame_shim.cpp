#include "fault/frame_shim.hpp"

#include <stdexcept>

#include "net/socket_transport.hpp"
#include "util/rng.hpp"

namespace p2prm::fault {

namespace {

// Decorrelation constants for the per-frame hash (odd 64-bit mixers).
constexpr std::uint64_t kFromSalt = 0xA24BAED4963EE407ULL;
constexpr std::uint64_t kToSalt = 0x9FB21C651E98DF25ULL;
constexpr std::uint64_t kSeqSalt = 0x2545F4914F6CDD1DULL;

}  // namespace

FrameShim::FrameShim(FaultPlan plan) : plan_(std::move(plan)) {}

net::FrameFaultVerdict FrameShim::on_frame(util::PeerId from, util::PeerId to,
                                           std::uint64_t link_seq,
                                           std::size_t /*bytes*/) {
  const LinkFaults& link = plan_.link(from, to);
  net::FrameFaultVerdict v;
  if (link.trivial()) return v;

  // A private RNG per frame, seeded by (plan seed, from, to, link_seq):
  // decisions are a pure function of the frame's identity, never of what
  // other links transmitted first.
  std::uint64_t state = plan_.seed ^ (from.value() * kFromSalt) ^
                        (to.value() * kToSalt) ^ (link_seq * kSeqSalt);
  util::Rng rng(util::splitmix64(state));

  const auto record = [&](FaultAction action, util::SimDuration delay = 0) {
    log_.push_back(FaultEvent{static_cast<util::SimTime>(link_seq), action,
                              from, to, delay});
  };

  // Same decision order as the sim FaultInjector::on_send, so a LinkFaults
  // config means the same thing on both transports.
  if (link.drop_probability > 0.0 && rng.bernoulli(link.drop_probability)) {
    v.drop = true;
    record(FaultAction::Drop);
    return v;
  }
  if (link.extra_delay > 0 || link.delay_jitter > 0) {
    v.extra_delay = link.extra_delay;
    if (link.delay_jitter > 0) {
      v.extra_delay += static_cast<util::SimDuration>(
          rng.below(static_cast<std::uint64_t>(link.delay_jitter) + 1));
    }
    if (v.extra_delay > 0) record(FaultAction::Delay, v.extra_delay);
  }
  if (link.reorder_probability > 0.0 &&
      rng.bernoulli(link.reorder_probability)) {
    v.extra_delay += link.reorder_delay;
    record(FaultAction::Reorder, link.reorder_delay);
  }
  if (link.duplicate_probability > 0.0 &&
      rng.bernoulli(link.duplicate_probability)) {
    v.duplicate_after =
        util::milliseconds(1) +
        static_cast<util::SimDuration>(rng.below(util::milliseconds(10)));
    record(FaultAction::Duplicate, v.duplicate_after);
  }
  return v;
}

bool FrameShim::severed(util::PeerId a, util::PeerId b) const {
  if (islands_.empty() || a == b) return false;
  const auto ia = islands_.find(a.value());
  const auto ib = islands_.find(b.value());
  const int ga = ia == islands_.end() ? 0 : ia->second;
  const int gb = ib == islands_.end() ? 0 : ib->second;
  return ga != gb;
}

void FrameShim::start_partition(
    const std::vector<std::vector<util::PeerId>>& groups, util::SimTime at) {
  islands_.clear();
  int island = 1;
  for (const auto& group : groups) {
    for (const auto peer : group) islands_[peer.value()] = island;
    ++island;
  }
  if (islands_.empty()) return;  // set_partition({}) reads as a no-op
  ++epoch_;
  util::PeerId first;
  if (!groups.empty() && !groups.front().empty()) first = groups.front().front();
  log_.push_back(FaultEvent{at, FaultAction::PartitionStart, first,
                            util::PeerId::invalid(), 0});
}

void FrameShim::heal_partition(util::SimTime at) {
  if (islands_.empty()) return;
  islands_.clear();
  ++epoch_;
  log_.push_back(FaultEvent{at, FaultAction::PartitionHeal,
                            util::PeerId::invalid(), util::PeerId::invalid(),
                            0});
}

void FrameShim::note(FaultAction action, util::PeerId victim,
                     util::SimTime at) {
  log_.push_back(
      FaultEvent{at, action, victim, util::PeerId::invalid(), 0});
}

std::uint64_t FrameShim::decision_fingerprint() const {
  return fingerprint_events(log_);
}

SocketFaultInjector::SocketFaultInjector(sim::Simulator& simulator,
                                         net::SocketTransport& transport,
                                         FaultPlan plan, Hooks hooks)
    : sim_(simulator),
      transport_(transport),
      hooks_(std::move(hooks)),
      shim_(std::move(plan)) {}

SocketFaultInjector::~SocketFaultInjector() {
  if (transport_.fault_shim() == &shim_) transport_.set_fault_shim(nullptr);
}

void SocketFaultInjector::arm() {
  if (armed_) throw std::logic_error("SocketFaultInjector::arm: already armed");
  armed_ = true;
  transport_.set_fault_shim(&shim_);

  for (const auto& p : shim_.plan().partitions) {
    sim_.schedule_at(p.at, [this, &p] {
      auto groups = p.groups;
      if (p.isolate_primary_rm) {
        const util::PeerId rm =
            hooks_.primary_rm ? hooks_.primary_rm() : util::PeerId::invalid();
        if (!rm.valid()) return;  // nobody to isolate; skip
        groups = {{rm}};
      }
      shim_.start_partition(groups, sim_.now());
    });
    if (p.heal_at != util::kTimeInfinity) {
      sim_.schedule_at(p.heal_at,
                       [this] { shim_.heal_partition(sim_.now()); });
    }
  }

  for (const auto& c : shim_.plan().crashes) {
    sim_.schedule_at(c.at, [this, &c] {
      util::PeerId victim = c.peer;
      if (c.target_primary_rm) {
        victim =
            hooks_.primary_rm ? hooks_.primary_rm() : util::PeerId::invalid();
      }
      if (!victim.valid() || !hooks_.crash) return;
      hooks_.crash(victim);
      shim_.note(FaultAction::Crash, victim, sim_.now());
      if (c.restart_at != util::kTimeInfinity) {
        sim_.schedule_at(c.restart_at, [this, victim] {
          if (!hooks_.restart) return;
          hooks_.restart(victim);
          shim_.note(FaultAction::Restart, victim, sim_.now());
        });
      }
    });
  }
}

}  // namespace p2prm::fault

// Executes a FaultPlan against a Network/Simulator pair.
//
// The injector is the net::FaultHook the Network consults on every send
// (stochastic link faults) and the scheduler of the plan's timed events
// (partitions, crashes, restarts). Crash/restart and "who is the primary
// RM right now" are delegated to caller-supplied hooks so this module
// depends only on net/sim — core::System wires itself in via
// System::install_fault_plan().
//
// Determinism: all randomness comes from one RNG seeded by the plan, and
// every decision is appended to an event trace. Two runs of the same
// (plan, workload, seed) produce identical traces — a property the test
// suite asserts — so any failing fault run reproduces from its seed.
#pragma once

#include <functional>
#include <vector>

#include "fault/fault_plan.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace p2prm::fault {

class FaultInjector final : public net::FaultHook {
 public:
  struct Hooks {
    // Crash a peer abruptly / restart a previously crashed peer. Either may
    // be empty when the plan contains no crash events.
    std::function<void(util::PeerId)> crash;
    std::function<void(util::PeerId)> restart;
    // Resolve the current primary RM (invalid id = none); used by events
    // with target_primary_rm / isolate_primary_rm.
    std::function<util::PeerId()> primary_rm;
  };

  FaultInjector(sim::Simulator& simulator, net::Network& network,
                FaultPlan plan, Hooks hooks = {});
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Installs the hook on the network and schedules every timed event.
  // Call exactly once, before running the simulation past the plan's
  // earliest event.
  void arm();

  // net::FaultHook: one verdict per message send.
  net::FaultDecision on_send(util::PeerId from, util::PeerId to,
                             std::size_t bytes,
                             std::string_view type) override;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const std::vector<FaultEvent>& trace() const { return trace_; }
  // Order-sensitive 64-bit digest of the trace; equal across two runs of
  // the same plan+seed iff the traces are identical.
  [[nodiscard]] std::uint64_t trace_fingerprint() const;

 private:
  void record(FaultAction action, util::PeerId a, util::PeerId b,
              util::SimDuration delay = 0);

  sim::Simulator& sim_;
  net::Network& net_;
  FaultPlan plan_;
  Hooks hooks_;
  util::Rng rng_;
  bool armed_ = false;
  std::vector<FaultEvent> trace_;
};

}  // namespace p2prm::fault

// Declarative fault plans for resilience experiments.
//
// A FaultPlan composes everything the paper's "dynamic environments" claim
// must survive: per-link message loss, delay/jitter, duplication,
// reordering, scheduled network partitions (split/heal), and peer or RM
// crash-restart events. A plan is pure data; the FaultInjector executes it
// against a Network/Simulator pair using a single RNG forked from the
// plan's seed, so any run — including every fault decision — reproduces
// byte-for-byte from (plan, seed). See docs/FAULT_MODEL.md.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace p2prm::fault {

// Stochastic message-level faults applied to traffic on one link (ordered
// sender -> receiver pair) or, via FaultPlan::default_link, to all links.
struct LinkFaults {
  double drop_probability = 0.0;       // uniform loss, [0,1]
  double duplicate_probability = 0.0;  // deliver one extra copy
  // Extra one-way delay: fixed component plus U[0, jitter] per message.
  util::SimDuration extra_delay = 0;
  util::SimDuration delay_jitter = 0;
  // Reordering: with this probability a message is additionally held back
  // by reorder_delay, letting later sends overtake it.
  double reorder_probability = 0.0;
  util::SimDuration reorder_delay = util::milliseconds(50);

  [[nodiscard]] bool trivial() const {
    return drop_probability == 0.0 && duplicate_probability == 0.0 &&
           extra_delay == 0 && delay_jitter == 0 && reorder_probability == 0.0;
  }
};

// Split the network at `at`: each group becomes an island, unlisted peers
// form island 0 (see net::Network::set_partition). Heals at `heal_at`
// unless another partition event replaced it first.
struct PartitionEvent {
  util::SimTime at = 0;
  util::SimTime heal_at = util::kTimeInfinity;  // infinity = never heals
  std::vector<std::vector<util::PeerId>> groups;
  // When set, the groups are ignored and the peer currently acting as the
  // primary RM (resolved at fire time) is isolated from everyone else.
  bool isolate_primary_rm = false;
};

// Crash a peer at `at`; restart the same peer (same id, spec, inventory)
// at `restart_at` unless it is infinity.
struct CrashEvent {
  util::SimTime at = 0;
  util::SimTime restart_at = util::kTimeInfinity;
  util::PeerId peer;  // ignored when target_primary_rm is set
  // Resolve the victim at fire time: whoever leads the first domain then.
  bool target_primary_rm = false;
};

struct FaultPlan {
  // Seed for every stochastic decision the plan makes. Two runs of the same
  // plan with the same seed produce identical fault-event traces.
  std::uint64_t seed = 1;
  LinkFaults default_link{};
  // Ordered (from, to) overrides; a listed link ignores default_link.
  std::map<std::pair<util::PeerId, util::PeerId>, LinkFaults> per_link;
  std::vector<PartitionEvent> partitions;
  std::vector<CrashEvent> crashes;

  [[nodiscard]] const LinkFaults& link(util::PeerId from,
                                       util::PeerId to) const {
    const auto it = per_link.find({from, to});
    return it == per_link.end() ? default_link : it->second;
  }

  // --- convenience builders used by benches and tests ----------------------
  [[nodiscard]] static FaultPlan uniform_loss(double p, std::uint64_t seed);
  FaultPlan& add_partition(util::SimTime at, util::SimTime heal_at,
                           std::vector<std::vector<util::PeerId>> groups);
  FaultPlan& isolate_primary_rm(util::SimTime at, util::SimTime heal_at);
  FaultPlan& crash_restart(util::PeerId peer, util::SimTime at,
                           util::SimTime restart_at);
  FaultPlan& crash_restart_primary_rm(util::SimTime at,
                                      util::SimTime restart_at);
};

// One entry of the deterministic event trace the injector records.
enum class FaultAction {
  Drop,
  Duplicate,
  Delay,
  Reorder,
  PartitionStart,
  PartitionHeal,
  Crash,
  Restart,
};
[[nodiscard]] std::string_view fault_action_name(FaultAction a);

struct FaultEvent {
  util::SimTime at = 0;
  FaultAction action{};
  util::PeerId a;  // sender / victim
  util::PeerId b;  // receiver (invalid for non-link events)
  util::SimDuration delay = 0;  // extra delay for Delay/Duplicate/Reorder

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};
[[nodiscard]] std::string to_string(const FaultEvent& e);

// Order-sensitive FNV-1a digest of an event sequence; equal across two
// runs iff the sequences are identical. Shared by the sim FaultInjector's
// trace_fingerprint() and the socket FrameShim's decision_fingerprint() so
// the two artifacts digest identically.
[[nodiscard]] std::uint64_t fingerprint_events(
    const std::vector<FaultEvent>& events);

}  // namespace p2prm::fault

#include "fault/fault_injector.hpp"

#include <stdexcept>

namespace p2prm::fault {

FaultInjector::FaultInjector(sim::Simulator& simulator, net::Network& network,
                             FaultPlan plan, Hooks hooks)
    : sim_(simulator),
      net_(network),
      plan_(std::move(plan)),
      hooks_(std::move(hooks)),
      rng_(plan_.seed) {}

FaultInjector::~FaultInjector() {
  if (net_.fault_hook() == this) net_.set_fault_hook(nullptr);
}

void FaultInjector::record(FaultAction action, util::PeerId a, util::PeerId b,
                           util::SimDuration delay) {
  trace_.push_back(FaultEvent{sim_.now(), action, a, b, delay});
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("FaultInjector::arm: already armed");
  armed_ = true;
  net_.set_fault_hook(this);

  for (const auto& p : plan_.partitions) {
    sim_.schedule_at(p.at, [this, &p] {
      auto groups = p.groups;
      if (p.isolate_primary_rm) {
        const util::PeerId rm =
            hooks_.primary_rm ? hooks_.primary_rm() : util::PeerId::invalid();
        if (!rm.valid()) return;  // nobody to isolate; skip (still recorded)
        groups = {{rm}};
      }
      net_.set_partition(groups);
      util::PeerId first;
      if (!groups.empty() && !groups.front().empty()) {
        first = groups.front().front();
      }
      record(FaultAction::PartitionStart, first, util::PeerId::invalid());
    });
    if (p.heal_at != util::kTimeInfinity) {
      sim_.schedule_at(p.heal_at, [this] {
        net_.heal_partition();
        record(FaultAction::PartitionHeal, util::PeerId::invalid(),
               util::PeerId::invalid());
      });
    }
  }

  for (const auto& c : plan_.crashes) {
    sim_.schedule_at(c.at, [this, &c] {
      util::PeerId victim = c.peer;
      if (c.target_primary_rm) {
        victim =
            hooks_.primary_rm ? hooks_.primary_rm() : util::PeerId::invalid();
      }
      if (!victim.valid() || !hooks_.crash) return;
      hooks_.crash(victim);
      record(FaultAction::Crash, victim, util::PeerId::invalid());
      if (c.restart_at != util::kTimeInfinity) {
        sim_.schedule_at(c.restart_at, [this, victim] {
          if (!hooks_.restart) return;
          hooks_.restart(victim);
          record(FaultAction::Restart, victim, util::PeerId::invalid());
        });
      }
    });
  }
}

net::FaultDecision FaultInjector::on_send(util::PeerId from, util::PeerId to,
                                          std::size_t /*bytes*/,
                                          std::string_view /*type*/) {
  const LinkFaults& link = plan_.link(from, to);
  net::FaultDecision d;
  if (link.trivial()) return d;

  if (link.drop_probability > 0.0 && rng_.bernoulli(link.drop_probability)) {
    d.drop = true;
    record(FaultAction::Drop, from, to);
    return d;
  }
  if (link.extra_delay > 0 || link.delay_jitter > 0) {
    d.extra_delay = link.extra_delay;
    if (link.delay_jitter > 0) {
      d.extra_delay += static_cast<util::SimDuration>(
          rng_.below(static_cast<std::uint64_t>(link.delay_jitter) + 1));
    }
    if (d.extra_delay > 0) {
      record(FaultAction::Delay, from, to, d.extra_delay);
    }
  }
  if (link.reorder_probability > 0.0 &&
      rng_.bernoulli(link.reorder_probability)) {
    // Hold this message back past its natural slot so later traffic on the
    // same link overtakes it.
    d.extra_delay += link.reorder_delay;
    record(FaultAction::Reorder, from, to, link.reorder_delay);
  }
  if (link.duplicate_probability > 0.0 &&
      rng_.bernoulli(link.duplicate_probability)) {
    // The copy trails the original by a small deterministic-from-seed gap.
    d.duplicate_after =
        util::milliseconds(1) +
        static_cast<util::SimDuration>(rng_.below(util::milliseconds(10)));
    record(FaultAction::Duplicate, from, to, d.duplicate_after);
  }
  return d;
}

std::uint64_t FaultInjector::trace_fingerprint() const {
  return fingerprint_events(trace_);
}

}  // namespace p2prm::fault

// Socket-mode execution of a FaultPlan (docs/TRANSPORT.md).
//
// Two pieces:
//
//   FrameShim — the net::FrameFaultShim the SocketTransport consults on
//   every frame. Stochastic link faults (drop/delay/jitter/reorder/
//   duplicate) are decided per frame by a *stateless* hash of
//   (plan seed, from, to, link_seq): unlike the sim FaultInjector's single
//   RNG stream, no decision depends on traffic interleaving across links,
//   so every process of a multi-process deployment — each seeing only its
//   own outbound frames — shims identically, and two runs of one seed make
//   identical decisions for identical frame sequences. Partition state
//   (islands as in net::Network::set_partition) is mutated by scheduled
//   events and exposed to the transport via severed()/partition_epoch().
//
//   SocketFaultInjector — the scheduler: installs the shim on the
//   transport and schedules the plan's timed events (partition start/heal,
//   crash/restart) on the simulator, resolving isolate_primary_rm /
//   target_primary_rm at fire time through the same Hooks contract as the
//   sim-mode FaultInjector. core::System wires itself in via
//   System::install_fault_plan(), which picks the injector matching the
//   active transport.
//
// Decision log: every verdict and scheduled event is appended to a
// FaultEvent trace. Frame decisions record the link sequence number in
// `at` (wall time would break reproducibility); scheduled events record
// sim time. decision_fingerprint() digests the log for the CI determinism
// check.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "net/fault_shim.hpp"
#include "sim/simulator.hpp"

namespace p2prm::net {
class SocketTransport;
}

namespace p2prm::fault {

class FrameShim final : public net::FrameFaultShim {
 public:
  explicit FrameShim(FaultPlan plan);

  // --- net::FrameFaultShim ---------------------------------------------------
  net::FrameFaultVerdict on_frame(util::PeerId from, util::PeerId to,
                                  std::uint64_t link_seq,
                                  std::size_t bytes) override;
  [[nodiscard]] bool severed(util::PeerId a, util::PeerId b) const override;
  [[nodiscard]] std::uint64_t partition_epoch() const override {
    return epoch_;
  }

  // --- partition control (scheduled events, or tests directly) ---------------
  void start_partition(const std::vector<std::vector<util::PeerId>>& groups,
                       util::SimTime at);
  void heal_partition(util::SimTime at);

  // Appends a scheduled (non-link) event to the decision log.
  void note(FaultAction action, util::PeerId victim, util::SimTime at);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const std::vector<FaultEvent>& decisions() const {
    return log_;
  }
  // Order-sensitive FNV-1a digest of the decision log; equal across two
  // runs iff the logs are identical (same digest primitive as
  // FaultInjector::trace_fingerprint).
  [[nodiscard]] std::uint64_t decision_fingerprint() const;

 private:
  FaultPlan plan_;
  std::uint64_t epoch_ = 0;
  // peer -> island id; empty = no active partition, unlisted peers are
  // island 0 (net::Network::set_partition semantics).
  std::map<std::uint64_t, int> islands_;
  std::vector<FaultEvent> log_;
};

class SocketFaultInjector {
 public:
  // Same crash/restart/primary-RM delegation contract as the sim injector.
  using Hooks = FaultInjector::Hooks;

  SocketFaultInjector(sim::Simulator& simulator,
                      net::SocketTransport& transport, FaultPlan plan,
                      Hooks hooks = {});
  ~SocketFaultInjector();

  SocketFaultInjector(const SocketFaultInjector&) = delete;
  SocketFaultInjector& operator=(const SocketFaultInjector&) = delete;

  // Installs the shim on the transport and schedules every timed event.
  // Call exactly once, before running past the plan's earliest event.
  void arm();

  [[nodiscard]] FrameShim& shim() { return shim_; }
  [[nodiscard]] const FrameShim& shim() const { return shim_; }
  [[nodiscard]] const FaultPlan& plan() const { return shim_.plan(); }

 private:
  sim::Simulator& sim_;
  net::SocketTransport& transport_;
  Hooks hooks_;
  FrameShim shim_;
  bool armed_ = false;
};

}  // namespace p2prm::fault

#include "fault/fault_plan.hpp"

#include <cstdio>

namespace p2prm::fault {

FaultPlan FaultPlan::uniform_loss(double p, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.default_link.drop_probability = p;
  return plan;
}

FaultPlan& FaultPlan::add_partition(
    util::SimTime at, util::SimTime heal_at,
    std::vector<std::vector<util::PeerId>> groups) {
  PartitionEvent e;
  e.at = at;
  e.heal_at = heal_at;
  e.groups = std::move(groups);
  partitions.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::isolate_primary_rm(util::SimTime at,
                                         util::SimTime heal_at) {
  PartitionEvent e;
  e.at = at;
  e.heal_at = heal_at;
  e.isolate_primary_rm = true;
  partitions.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::crash_restart(util::PeerId peer, util::SimTime at,
                                    util::SimTime restart_at) {
  CrashEvent e;
  e.at = at;
  e.restart_at = restart_at;
  e.peer = peer;
  crashes.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::crash_restart_primary_rm(util::SimTime at,
                                               util::SimTime restart_at) {
  CrashEvent e;
  e.at = at;
  e.restart_at = restart_at;
  e.target_primary_rm = true;
  crashes.push_back(e);
  return *this;
}

std::string_view fault_action_name(FaultAction a) {
  switch (a) {
    case FaultAction::Drop: return "drop";
    case FaultAction::Duplicate: return "duplicate";
    case FaultAction::Delay: return "delay";
    case FaultAction::Reorder: return "reorder";
    case FaultAction::PartitionStart: return "partition-start";
    case FaultAction::PartitionHeal: return "partition-heal";
    case FaultAction::Crash: return "crash";
    case FaultAction::Restart: return "restart";
  }
  return "?";
}

std::string to_string(const FaultEvent& e) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%lld %s %llu->%llu +%lld",
                static_cast<long long>(e.at),
                std::string(fault_action_name(e.action)).c_str(),
                static_cast<unsigned long long>(e.a.value()),
                static_cast<unsigned long long>(e.b.value()),
                static_cast<long long>(e.delay));
  return buf;
}

std::uint64_t fingerprint_events(const std::vector<FaultEvent>& events) {
  // FNV-1a over the packed event fields; order-sensitive by construction.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (const auto& e : events) {
    mix(static_cast<std::uint64_t>(e.at));
    mix(static_cast<std::uint64_t>(e.action));
    mix(e.a.value());
    mix(e.b.value());
    mix(static_cast<std::uint64_t>(e.delay));
  }
  return h;
}

}  // namespace p2prm::fault

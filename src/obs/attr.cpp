#include "obs/attr.hpp"

#include <cstdio>

namespace p2prm::obs {

std::string to_string(const AttrValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", *d);
    return buf;
  }
  return std::get<std::string>(v);
}

const AttrValue* find_attr(const Attrs& attrs, std::string_view key) {
  for (const auto& a : attrs) {
    if (a.key == key) return &a.value;
  }
  return nullptr;
}

std::int64_t attr_int(const Attrs& attrs, std::string_view key,
                      std::int64_t fallback) {
  const auto* v = find_attr(attrs, key);
  if (v == nullptr) return fallback;
  const auto* i = std::get_if<std::int64_t>(v);
  return i != nullptr ? *i : fallback;
}

double attr_double(const Attrs& attrs, std::string_view key, double fallback) {
  const auto* v = find_attr(attrs, key);
  if (v == nullptr) return fallback;
  const auto* d = std::get_if<double>(v);
  return d != nullptr ? *d : fallback;
}

std::string attr_string(const Attrs& attrs, std::string_view key,
                        std::string_view fallback) {
  const auto* v = find_attr(attrs, key);
  if (v == nullptr) return std::string(fallback);
  const auto* s = std::get_if<std::string>(v);
  return s != nullptr ? *s : std::string(fallback);
}

}  // namespace p2prm::obs

// Typed metrics registry: the single sink every stat source publishes into.
//
// The paper's RM adapts on continuously profiled state (`l_i`, `bw_i`,
// per-service times, §3/§4.4); the repo's own introspection now follows the
// same discipline. Components keep their cheap `*Stats` structs on the hot
// path and implement `publish(MetricsRegistry&) const`, copying current
// values into named metrics at snapshot time — the registry is pull-based
// and costs nothing between snapshots (the PR-2 bench gate enforces that).
//
// Naming convention (docs/OBSERVABILITY.md): dotted lowercase
// `<subsystem>.<metric>` (e.g. "rm.tasks_admitted", "net.messages_sent"),
// with identity carried by labels ("domain", "peer", "type") rather than
// baked into the name. Iteration order is sorted by (name, labels), so
// exporter output is byte-deterministic under fixed seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace p2prm::obs {

// Sorted-by-key label set; sorted on intern so equal sets compare equal.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { Counter, Gauge, Histogram };
[[nodiscard]] std::string_view metric_kind_name(MetricKind kind);

// Monotonic count. Publishers usually set() the current value of their
// internal counter; incremental users may inc().
class Counter {
 public:
  void inc(std::uint64_t d = 1) { value_ += d; }
  void set(std::uint64_t v) { value_ = v; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// Point-in-time measurement (utilization, queue depth, cache size).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Cumulative-bucket histogram over fixed upper bounds (Prometheus model):
// bucket i counts observations <= bounds[i]; one implicit +Inf bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket (non-cumulative) counts; size = bounds().size() + 1, the
  // last entry being the +Inf overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
    return counts_;
  }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }

 private:
  std::vector<double> bounds_;  // sorted ascending
  std::vector<std::uint64_t> counts_;
  double sum_ = 0.0;
  std::uint64_t count_ = 0;
};

// Default latency bounds (seconds) used by the task response-time and hop
// execution histograms: 10ms .. 5min, roughly x3 per step.
[[nodiscard]] const std::vector<double>& default_latency_bounds_s();

class MetricsRegistry {
 public:
  // Fetch-or-create. The kind of a name+labels pair is fixed by its first
  // registration; re-registering with a different kind is a programming
  // error (asserted in debug builds, first registration wins otherwise).
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       Labels labels = {});

  // One exported time series. Exactly one of the value groups is
  // meaningful, selected by `kind`.
  struct Sample {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::Counter;
    std::uint64_t counter_value = 0;
    double gauge_value = 0.0;
    std::vector<double> bounds;                 // histogram only
    std::vector<std::uint64_t> bucket_counts;   // histogram only
    double sum = 0.0;                           // histogram only
    std::uint64_t count = 0;                    // histogram only
  };
  // Sorted by (name, labels) — the deterministic exporter order.
  [[nodiscard]] std::vector<Sample> snapshot() const;

  // Streaming snapshot: calls fn(const Sample&) per series in the same
  // (name, labels) order, without materializing the whole vector. The
  // million-peer exporter path (metrics::publish_streamed) drains scratch
  // registries through this, keeping peak exporter memory O(chunk).
  void for_each_sample(
      const std::function<void(const Sample&)>& fn) const;

  [[nodiscard]] std::size_t size() const { return metrics_.size(); }
  [[nodiscard]] bool empty() const { return metrics_.empty(); }
  void clear() { metrics_.clear(); }

  // Dotted lowercase [a-z0-9_.], starting with a letter.
  [[nodiscard]] static bool valid_name(std::string_view name);

 private:
  struct Metric {
    MetricKind kind;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
  };
  using Key = std::pair<std::string, Labels>;

  Metric& intern(std::string_view name, Labels labels, MetricKind kind);

  std::map<Key, Metric> metrics_;
};

}  // namespace p2prm::obs

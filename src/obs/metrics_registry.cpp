#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <cassert>

namespace p2prm::obs {

std::string_view metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  sum_ += x;
  ++count_;
}

const std::vector<double>& default_latency_bounds_s() {
  static const std::vector<double> bounds = {0.01, 0.03, 0.1, 0.3,  1.0,
                                             3.0,  10.0, 30.0, 100.0, 300.0};
  return bounds;
}

bool MetricsRegistry::valid_name(std::string_view name) {
  if (name.empty()) return false;
  if (!(name.front() >= 'a' && name.front() <= 'z')) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

MetricsRegistry::Metric& MetricsRegistry::intern(std::string_view name,
                                                 Labels labels,
                                                 MetricKind kind) {
  assert(valid_name(name) && "metric names are dotted lowercase");
  std::sort(labels.begin(), labels.end());
  auto [it, inserted] = metrics_.try_emplace(
      Key{std::string(name), std::move(labels)});
  if (inserted) {
    it->second.kind = kind;
  } else {
    assert(it->second.kind == kind && "metric re-registered as another kind");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  return intern(name, std::move(labels), MetricKind::Counter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  return intern(name, std::move(labels), MetricKind::Gauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      Labels labels) {
  Metric& m = intern(name, std::move(labels), MetricKind::Histogram);
  if (!m.histogram) m.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *m.histogram;
}

void MetricsRegistry::for_each_sample(
    const std::function<void(const Sample&)>& fn) const {
  for (const auto& [key, metric] : metrics_) {
    Sample s;
    s.name = key.first;
    s.labels = key.second;
    s.kind = metric.kind;
    switch (metric.kind) {
      case MetricKind::Counter:
        s.counter_value = metric.counter.value();
        break;
      case MetricKind::Gauge:
        s.gauge_value = metric.gauge.value();
        break;
      case MetricKind::Histogram:
        if (metric.histogram) {
          s.bounds = metric.histogram->bounds();
          s.bucket_counts = metric.histogram->bucket_counts();
          s.sum = metric.histogram->sum();
          s.count = metric.histogram->count();
        }
        break;
    }
    fn(s);
  }  // std::map iteration is already (name, labels)-sorted
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  std::vector<Sample> out;
  out.reserve(metrics_.size());
  for_each_sample([&](const Sample& s) { out.push_back(s); });
  return out;
}

}  // namespace p2prm::obs

#include "obs/span.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

namespace p2prm::obs {

std::string_view span_outcome_name(SpanOutcome o) {
  switch (o) {
    case SpanOutcome::Pending: return "pending";
    case SpanOutcome::Completed: return "completed";
    case SpanOutcome::Rejected: return "rejected";
    case SpanOutcome::Failed: return "failed";
  }
  return "?";
}

namespace {

using core::TraceEvent;
using core::TraceKind;

void clamp_into(Span& child, const Span& parent) {
  child.start = std::clamp(child.start, parent.start, parent.end);
  child.end = std::clamp(child.end, child.start, parent.end);
}

Span point_span(std::string name, const TraceEvent& e) {
  Span s;
  s.name = std::move(name);
  s.start = s.end = e.at;
  s.peer = e.peer;
  s.attrs = e.attrs;
  return s;
}

// Builds one task's tree from its events (already in time order).
TaskSpan build_one(util::TaskId task, const std::vector<const TraceEvent*>& evs) {
  TaskSpan out;
  out.task = task;

  const TraceEvent* submitted = nullptr;
  const TraceEvent* admitted = nullptr;
  const TraceEvent* terminal = nullptr;
  for (const TraceEvent* e : evs) {
    switch (e->kind) {
      case TraceKind::TaskSubmitted:
        if (submitted == nullptr) submitted = e;
        break;
      case TraceKind::TaskAdmitted:
        if (admitted == nullptr) admitted = e;
        break;
      case TraceKind::TaskCompleted:
      case TraceKind::TaskRejected:
      case TraceKind::TaskFailed:
        if (terminal == nullptr) {
          terminal = e;
          out.outcome = e->kind == TraceKind::TaskCompleted
                            ? SpanOutcome::Completed
                            : (e->kind == TraceKind::TaskRejected
                                   ? SpanOutcome::Rejected
                                   : SpanOutcome::Failed);
        }
        break;
      default:
        break;
    }
  }
  // Caller guarantees a TaskSubmitted anchor.
  out.root.name = "task";
  out.root.peer = submitted->peer;
  out.root.start = submitted->at;
  out.root.end = terminal != nullptr ? terminal->at : evs.back()->at;
  if (terminal != nullptr) out.root.attrs = terminal->attrs;

  // Admission: submission up to the admit decision (or, when the task never
  // got admitted, up to its terminal event — the whole life was admission).
  Span admission;
  admission.name = "admission";
  admission.start = submitted->at;
  admission.end = admitted != nullptr ? admitted->at : out.root.end;
  admission.peer = admitted != nullptr ? admitted->peer : submitted->peer;
  if (admitted != nullptr) admission.attrs = admitted->attrs;
  for (const TraceEvent* e : evs) {
    if (e->kind == TraceKind::TaskRedirected && e->at <= admission.end) {
      admission.children.push_back(point_span("redirect", *e));
    }
  }

  Span execution;
  bool have_execution = admitted != nullptr;
  if (have_execution) {
    execution.name = "execution";
    execution.start = admitted->at;
    execution.end = out.root.end;
    execution.peer = admitted->peer;
    // Pair HopStarted/HopCompleted by hop index; a re-planned task can run
    // the same hop more than once, so each start opens a fresh slot.
    std::vector<Span> open;
    for (const TraceEvent* e : evs) {
      if (e->kind == TraceKind::HopStarted) {
        Span h = point_span("hop", *e);
        open.push_back(std::move(h));
      } else if (e->kind == TraceKind::HopCompleted) {
        const std::int64_t hop = attr_int(e->attrs, "hop", -1);
        auto match = std::find_if(open.begin(), open.end(), [&](const Span& s) {
          return attr_int(s.attrs, "hop", -2) == hop;
        });
        Span h;
        if (match != open.end()) {
          h = std::move(*match);
          open.erase(match);
        } else {
          // Completion without a recorded start (evicted or spans enabled
          // mid-run): degrade to a point span.
          h.name = "hop";
          h.start = e->at;
          h.peer = e->peer;
        }
        h.end = e->at;
        h.attrs = e->attrs;  // completion attrs carry exec_s / late too
        execution.children.push_back(std::move(h));
      } else if (e->kind == TraceKind::TaskRecovered) {
        execution.children.push_back(point_span("recovery", *e));
      }
    }
    // Hops still open at the end of the trace ran past the last event.
    for (Span& h : open) {
      h.end = execution.end;
      execution.children.push_back(std::move(h));
    }
    std::sort(execution.children.begin(), execution.children.end(),
              [](const Span& a, const Span& b) {
                if (a.start != b.start) return a.start < b.start;
                return attr_int(a.attrs, "hop") < attr_int(b.attrs, "hop");
              });
  }

  clamp_into(admission, out.root);
  for (Span& c : admission.children) clamp_into(c, admission);
  out.root.children.push_back(std::move(admission));
  if (have_execution) {
    clamp_into(execution, out.root);
    for (Span& c : execution.children) clamp_into(c, execution);
    out.root.children.push_back(std::move(execution));
  }
  return out;
}

}  // namespace

std::vector<TaskSpan> build_task_spans(const core::Tracer& tracer) {
  std::map<util::TaskId, std::vector<const TraceEvent*>> by_task;
  for (const TraceEvent& e : tracer.events()) {
    if (e.task.valid()) by_task[e.task].push_back(&e);
  }
  std::vector<TaskSpan> out;
  out.reserve(by_task.size());
  for (const auto& [task, evs] : by_task) {
    const bool anchored =
        std::any_of(evs.begin(), evs.end(), [](const TraceEvent* e) {
          return e->kind == TraceKind::TaskSubmitted;
        });
    if (!anchored) continue;  // root evicted from the ring
    out.push_back(build_one(task, evs));
  }
  return out;
}

std::vector<PathSegment> critical_path(const TaskSpan& span) {
  std::vector<PathSegment> out;
  const Span* execution = nullptr;
  for (const Span& c : span.root.children) {
    if (c.name == "admission") {
      out.push_back({"admission", c.duration()});
    } else if (c.name == "execution") {
      execution = &c;
    }
  }
  if (execution == nullptr) return out;
  // Sweep the execution window: service time goes to its hop, everything
  // between (queueing, stream transfer, RM messaging) to "coordination".
  util::SimTime cursor = execution->start;
  for (const Span& h : execution->children) {
    if (h.name != "hop") continue;
    if (h.start > cursor) {
      out.push_back({"coordination", h.start - cursor});
      cursor = h.start;
    }
    if (h.end > cursor) {
      out.push_back({"hop " + std::to_string(attr_int(h.attrs, "hop")),
                     h.end - cursor});
      cursor = h.end;
    }
  }
  if (cursor < execution->end) {
    out.push_back({"coordination", execution->end - cursor});
  }
  return out;
}

namespace {

void write_span(const Span& s, int depth, std::ostream& out) {
  for (int i = 0; i < depth; ++i) out << "  ";
  out << s.name << " [" << util::format_time(s.start) << " .. "
      << util::format_time(s.end) << "]";
  if (s.peer.valid()) out << " peer=" << util::to_string(s.peer);
  for (const Attr& a : s.attrs) {
    out << ' ' << a.key << '=' << to_string(a.value);
  }
  out << '\n';
  for (const Span& c : s.children) write_span(c, depth + 1, out);
}

}  // namespace

void write_spans(const std::vector<TaskSpan>& spans, std::ostream& out) {
  for (const TaskSpan& ts : spans) {
    out << "task " << util::to_string(ts.task) << " ["
        << util::format_time(ts.root.start) << " .. "
        << util::format_time(ts.root.end)
        << "] outcome=" << span_outcome_name(ts.outcome) << '\n';
    for (const Span& c : ts.root.children) write_span(c, 1, out);
  }
}

std::string to_text(const std::vector<TaskSpan>& spans) {
  std::ostringstream os;
  write_spans(spans, os);
  return os.str();
}

}  // namespace p2prm::obs

// Typed key/value attributes for traces and spans.
//
// Replaces the free-form `detail` strings that used to ride on TraceEvent:
// an attribute is a key plus a string / int / double value, so tooling can
// filter and aggregate ("fairness > 0.9", "hops == 3") without parsing
// prose. The legacy `detail` rendering is *derived* from these (see
// core/trace.cpp), keeping the golden trace stable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

namespace p2prm::obs {

using AttrValue = std::variant<std::int64_t, double, std::string>;

struct Attr {
  std::string key;
  AttrValue value;

  Attr(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}
  Attr(std::string k, std::string_view v)
      : key(std::move(k)), value(std::string(v)) {}
  Attr(std::string k, const char* v)
      : key(std::move(k)), value(std::string(v)) {}
  Attr(std::string k, double v) : key(std::move(k)), value(v) {}
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Attr(std::string k, T v)
      : key(std::move(k)), value(static_cast<std::int64_t>(v)) {}
};

using Attrs = std::vector<Attr>;

// Deterministic rendering: ints as decimal, doubles as %.6g, strings as-is.
[[nodiscard]] std::string to_string(const AttrValue& v);

// First attribute with `key`, or nullptr.
[[nodiscard]] const AttrValue* find_attr(const Attrs& attrs,
                                         std::string_view key);

// Typed lookups with fallbacks (no coercion across types).
[[nodiscard]] std::int64_t attr_int(const Attrs& attrs, std::string_view key,
                                    std::int64_t fallback = 0);
[[nodiscard]] double attr_double(const Attrs& attrs, std::string_view key,
                                 double fallback = 0.0);
[[nodiscard]] std::string attr_string(const Attrs& attrs, std::string_view key,
                                      std::string_view fallback = {});

}  // namespace p2prm::obs

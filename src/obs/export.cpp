#include "obs/export.hpp"

#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/json_writer.hpp"

namespace p2prm::obs {

namespace {

void write_labels_object(util::JsonWriter& w, const Labels& labels) {
  w.begin_object();
  for (const auto& [k, v] : labels) w.field(k, v);
  w.end_object();
}

// Shortest round-trip double for Prometheus lines (JSON side uses
// JsonWriter::value(double) which does the same).
std::string render_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, static_cast<std::size_t>(res.ptr - buf));
}

void write_prometheus_label_value(std::ostream& out, std::string_view v) {
  out << '"';
  for (const char c : v) {
    switch (c) {
      case '\\': out << "\\\\"; break;
      case '"': out << "\\\""; break;
      case '\n': out << "\\n"; break;
      default: out << c;
    }
  }
  out << '"';
}

// {a="x",b="y"} — with `extra` (e.g. le="0.1") appended last.
void write_prometheus_labels(std::ostream& out, const Labels& labels,
                             std::string_view extra_key = {},
                             std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return;
  out << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ',';
    first = false;
    out << k << '=';
    write_prometheus_label_value(out, v);
  }
  if (!extra_key.empty()) {
    if (!first) out << ',';
    out << extra_key << '=';
    write_prometheus_label_value(out, extra_value);
  }
  out << '}';
}

}  // namespace

void write_json(const MetricsRegistry& registry, std::ostream& out) {
  util::JsonWriter w(out);
  w.begin_object();
  w.field("schema", kMetricsSchemaV2);
  w.field("schema_version", 2);
  w.key("metrics");
  w.begin_array();
  for (const auto& s : registry.snapshot()) {
    w.begin_object();
    w.field("name", s.name);
    w.field("kind", metric_kind_name(s.kind));
    w.key("labels");
    write_labels_object(w, s.labels);
    switch (s.kind) {
      case MetricKind::Counter:
        w.field("value", s.counter_value);
        break;
      case MetricKind::Gauge:
        w.field("value", s.gauge_value);
        break;
      case MetricKind::Histogram: {
        w.key("buckets");
        w.begin_array();
        for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
          w.begin_object();
          if (i < s.bounds.size()) {
            w.field("le", s.bounds[i]);
          } else {
            w.field("le", "+Inf");
          }
          w.field("count", s.bucket_counts[i]);
          w.end_object();
        }
        w.end_array();
        w.field("sum", s.sum);
        w.field("count", s.count);
        break;
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

std::string to_json(const MetricsRegistry& registry) {
  std::ostringstream out;
  write_json(registry, out);
  return out.str();
}

std::string prometheus_name(std::string_view name) {
  std::string out = "p2prm_";
  for (const char c : name) {
    out += (c == '.' || c == '-') ? '_' : c;
  }
  return out;
}

void write_prometheus(const MetricsRegistry& registry, std::ostream& out) {
  std::string last_typed;  // one # TYPE line per metric family
  for (const auto& s : registry.snapshot()) {
    const std::string name = prometheus_name(s.name);
    if (name != last_typed) {
      out << "# TYPE " << name << ' ' << metric_kind_name(s.kind) << '\n';
      last_typed = name;
    }
    switch (s.kind) {
      case MetricKind::Counter:
        out << name;
        write_prometheus_labels(out, s.labels);
        out << ' ' << s.counter_value << '\n';
        break;
      case MetricKind::Gauge:
        out << name;
        write_prometheus_labels(out, s.labels);
        out << ' ' << render_double(s.gauge_value) << '\n';
        break;
      case MetricKind::Histogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
          cumulative += s.bucket_counts[i];
          const std::string le =
              i < s.bounds.size() ? render_double(s.bounds[i]) : "+Inf";
          out << name << "_bucket";
          write_prometheus_labels(out, s.labels, "le", le);
          out << ' ' << cumulative << '\n';
        }
        out << name << "_sum";
        write_prometheus_labels(out, s.labels);
        out << ' ' << render_double(s.sum) << '\n';
        out << name << "_count";
        write_prometheus_labels(out, s.labels);
        out << ' ' << s.count << '\n';
        break;
      }
    }
  }
}

std::string to_prometheus(const MetricsRegistry& registry) {
  std::ostringstream out;
  write_prometheus(registry, out);
  return out.str();
}

}  // namespace p2prm::obs

// Task span trees: the tracing side of the observability API.
//
// A task's lifecycle crosses several peers (origin, RM, every hop executor).
// The Tracer already captures the individual events; build_task_spans()
// stitches them into one tree per task —
//
//   task <id>                      TaskSubmitted .. terminal event
//     admission                    TaskSubmitted .. TaskAdmitted
//       redirect (point)           each TaskRedirected along the way
//     execution                    TaskAdmitted .. terminal event
//       hop <i>                    HopStarted .. HopCompleted (enable_spans)
//       recovery (point)           each TaskRecovered re-plan
//
// — so "where did the time go?" is one query (critical_path()) instead of a
// trace-scrape. Child intervals are clamped into their parent, and the root
// is always anchored at the TaskSubmitted event (span_tree_invariants in
// tests/obs_test.cpp pins both properties).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/trace.hpp"
#include "obs/attr.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace p2prm::obs {

struct Span {
  std::string name;           // "task" / "admission" / "execution" / "hop" ...
  util::SimTime start = 0;
  util::SimTime end = 0;      // == start for point spans
  util::PeerId peer;          // acting peer, when known
  Attrs attrs;                // typed payload copied from the trace events
  std::vector<Span> children;

  [[nodiscard]] util::SimDuration duration() const { return end - start; }
};

// Terminal state of a task span, mirroring the lifecycle trace events.
enum class SpanOutcome { Pending, Completed, Rejected, Failed };
[[nodiscard]] std::string_view span_outcome_name(SpanOutcome o);

struct TaskSpan {
  util::TaskId task;
  SpanOutcome outcome = SpanOutcome::Pending;
  Span root;  // name "task", start == TaskSubmitted.at
};

// One tree per task seen in the trace, sorted by task id. Tasks whose
// TaskSubmitted event was evicted from the ring are skipped (a span tree
// without its root anchor would violate the invariants).
[[nodiscard]] std::vector<TaskSpan> build_task_spans(const core::Tracer& tracer);

// Where the task's wall-clock went: contiguous, non-overlapping segments
// covering [root.start, root.end]. Hop service time is attributed to its
// hop; the remainder of the execution window (queueing, transfer, RM
// messaging) lands in "coordination".
struct PathSegment {
  std::string name;
  util::SimDuration duration = 0;
};
[[nodiscard]] std::vector<PathSegment> critical_path(const TaskSpan& span);

// Deterministic indented text dump (one line per span), for artifacts and
// the golden-free determinism test.
void write_spans(const std::vector<TaskSpan>& spans, std::ostream& out);
[[nodiscard]] std::string to_text(const std::vector<TaskSpan>& spans);

}  // namespace p2prm::obs

// Exporters over a MetricsRegistry snapshot.
//
// Two formats, both byte-deterministic under fixed seeds (samples are
// iterated in the registry's sorted order and doubles are rendered with
// shortest-round-trip to_chars):
//  * JSON v2 ("p2prm-metrics/2"): self-describing sample list — name,
//    kind, labels, value (or buckets/sum/count for histograms). Validated
//    in CI by scripts/check_metrics_schema.py.
//  * Prometheus text exposition: names mangled to [a-z0-9_] with a
//    "p2prm_" prefix, histograms expanded to cumulative _bucket/_sum/_count.
// Schema details and the v1 -> v2 migration table: docs/OBSERVABILITY.md.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics_registry.hpp"

namespace p2prm::obs {

inline constexpr std::string_view kMetricsSchemaV2 = "p2prm-metrics/2";

void write_json(const MetricsRegistry& registry, std::ostream& out);
[[nodiscard]] std::string to_json(const MetricsRegistry& registry);

void write_prometheus(const MetricsRegistry& registry, std::ostream& out);
[[nodiscard]] std::string to_prometheus(const MetricsRegistry& registry);

// "rm.tasks_admitted" -> "p2prm_rm_tasks_admitted".
[[nodiscard]] std::string prometheus_name(std::string_view name);

}  // namespace p2prm::obs

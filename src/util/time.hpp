// Simulated-time primitives.
//
// All timestamps inside the middleware are integer nanoseconds since the
// start of the simulation. Integer time keeps the event queue exactly
// deterministic (no FP associativity surprises) while still being fine
// enough to express sub-millisecond network latencies.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

namespace p2prm::util {

// Nanoseconds since simulation start. Signed so durations subtract safely.
using SimTime = std::int64_t;
using SimDuration = std::int64_t;

inline constexpr SimTime kTimeZero = 0;
inline constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::max();

[[nodiscard]] constexpr SimDuration nanoseconds(std::int64_t n) { return n; }
[[nodiscard]] constexpr SimDuration microseconds(std::int64_t us) {
  return us * 1'000;
}
[[nodiscard]] constexpr SimDuration milliseconds(std::int64_t ms) {
  return ms * 1'000'000;
}
[[nodiscard]] constexpr SimDuration seconds(std::int64_t s) {
  return s * 1'000'000'000;
}
[[nodiscard]] constexpr SimDuration minutes(std::int64_t m) {
  return seconds(m * 60);
}

// Fractional seconds -> SimDuration, rounded to the nearest nanosecond
// (workloads are parameterized in seconds).
[[nodiscard]] constexpr SimDuration from_seconds(double s) {
  const double ns = s * 1e9;
  return static_cast<SimDuration>(ns >= 0.0 ? ns + 0.5 : ns - 0.5);
}
[[nodiscard]] constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) * 1e-9;
}
[[nodiscard]] constexpr double to_milliseconds(SimDuration d) {
  return static_cast<double>(d) * 1e-6;
}

template <typename Rep, typename Period>
[[nodiscard]] constexpr SimDuration from_chrono(
    std::chrono::duration<Rep, Period> d) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
}

// "12.345s" style rendering for logs and tables.
[[nodiscard]] inline std::string format_time(SimTime t) {
  if (t == kTimeInfinity) return "inf";
  const double s = to_seconds(t);
  char buf[32];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3fs", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fus", s * 1e6);
  }
  return buf;
}

}  // namespace p2prm::util

// Size-classed pool allocation for the simulator's churny small objects.
//
// Two tools live here:
//
//  * Pool — a size-classed freelist for raw allocations that are created and
//    destroyed millions of times per run (EventFn heap spills). Freed blocks
//    go onto a thread-local freelist for their size class and are handed
//    back on the next allocation of that class, so steady-state costs two
//    pointer moves instead of a malloc/free round trip. Blocks freed on a
//    different thread than they were allocated on simply migrate to the
//    freeing thread's list; every cached block is released by the
//    thread-local cache destructor, so ASan sees no leaks.
//
//  * SlotPool<T> — chunked, index-addressed object storage with a free-slot
//    list. Slots are pointer-stable for the lifetime of the object (chunks
//    are never moved or reallocated), which is what InfoBase needs for
//    ActiveTask: callers hold ActiveTask* across unrelated insertions.
//
// Neither tool is a general allocator: Pool serves blocks up to
// kMaxPooledSize with fundamental alignment and falls through to operator
// new beyond that; SlotPool never shrinks.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace p2prm::util {

class Pool {
 public:
  // Size classes in bytes. Every class is a multiple of
  // alignof(std::max_align_t), and operator new provides fundamental
  // alignment, so pooled blocks satisfy any type with
  // alignof(T) <= alignof(std::max_align_t).
  static constexpr std::size_t kClassSizes[] = {64, 128, 256, 512, 1024};
  static constexpr std::size_t kNumClasses =
      sizeof(kClassSizes) / sizeof(kClassSizes[0]);
  static constexpr std::size_t kMaxPooledSize =
      kClassSizes[kNumClasses - 1];

  // Rounds `bytes` up to its size class and returns a block, reusing a
  // freed one when the calling thread has one cached. Sizes above
  // kMaxPooledSize come straight from operator new.
  [[nodiscard]] static void* allocate(std::size_t bytes) {
    const std::size_t cls = class_of(bytes);
    if (cls == kNumClasses) {
      stats_oversize_.fetch_add(1, std::memory_order_relaxed);
      return ::operator new(bytes);
    }
    Cache& cache = local_cache();
    if (void* block = cache.pop(cls)) {
      stats_reused_.fetch_add(1, std::memory_order_relaxed);
      return block;
    }
    stats_fresh_.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(kClassSizes[cls]);
  }

  // Returns a block obtained from allocate(bytes'). `bytes` must round to
  // the same size class as the allocating call (callers pass sizeof(T),
  // which trivially satisfies this).
  static void deallocate(void* p, std::size_t bytes) {
    if (p == nullptr) return;
    const std::size_t cls = class_of(bytes);
    if (cls == kNumClasses) {
      ::operator delete(p);
      return;
    }
    local_cache().push(cls, p);
  }

  // Size class index for `bytes`, or kNumClasses when it exceeds the
  // largest class.
  [[nodiscard]] static std::size_t class_of(std::size_t bytes) {
    for (std::size_t i = 0; i < kNumClasses; ++i) {
      if (bytes <= kClassSizes[i]) return i;
    }
    return kNumClasses;
  }

  struct Stats {
    std::uint64_t fresh = 0;     // operator new calls for pooled classes
    std::uint64_t reused = 0;    // allocations served from a freelist
    std::uint64_t oversize = 0;  // allocations beyond kMaxPooledSize
  };

  // Process-wide, relaxed-atomic counters. Monotonic; benches snapshot
  // around a workload and diff.
  [[nodiscard]] static Stats stats() {
    return {stats_fresh_.load(std::memory_order_relaxed),
            stats_reused_.load(std::memory_order_relaxed),
            stats_oversize_.load(std::memory_order_relaxed)};
  }

 private:
  // Freed blocks are chained through their own first word.
  struct FreeNode {
    FreeNode* next;
  };

  struct Cache {
    FreeNode* heads[kNumClasses] = {};

    void push(std::size_t cls, void* p) {
      auto* node = static_cast<FreeNode*>(p);
      node->next = heads[cls];
      heads[cls] = node;
    }

    void* pop(std::size_t cls) {
      FreeNode* node = heads[cls];
      if (node == nullptr) return nullptr;
      heads[cls] = node->next;
      return node;
    }

    ~Cache() {
      for (auto*& head : heads) {
        while (head != nullptr) {
          FreeNode* next = head->next;
          ::operator delete(static_cast<void*>(head));
          head = next;
        }
      }
    }
  };

  static Cache& local_cache() {
    thread_local Cache cache;
    return cache;
  }

  inline static std::atomic<std::uint64_t> stats_fresh_{0};
  inline static std::atomic<std::uint64_t> stats_reused_{0};
  inline static std::atomic<std::uint64_t> stats_oversize_{0};
};

// Allocates a T from the pool. Pair with pool_delete.
template <typename T, typename... Args>
[[nodiscard]] T* pool_new(Args&&... args) {
  if constexpr (alignof(T) > alignof(std::max_align_t)) {
    return new T(std::forward<Args>(args)...);  // pool can't over-align
  } else {
    void* mem = Pool::allocate(sizeof(T));
    try {
      return ::new (mem) T(std::forward<Args>(args)...);
    } catch (...) {
      Pool::deallocate(mem, sizeof(T));
      throw;
    }
  }
}

template <typename T>
void pool_delete(T* p) {
  if (p == nullptr) return;
  if constexpr (alignof(T) > alignof(std::max_align_t)) {
    delete p;
  } else {
    p->~T();
    Pool::deallocate(static_cast<void*>(p), sizeof(T));
  }
}

// Chunked object pool addressed by dense uint32 slots. Object addresses are
// stable until erase(slot): chunks are allocated once and never moved.
// Freed slots are recycled LIFO. Not thread-safe.
template <typename T>
class SlotPool {
 public:
  static constexpr std::uint32_t kChunkSize = 64;

  SlotPool() = default;
  SlotPool(SlotPool&&) noexcept = default;
  SlotPool& operator=(SlotPool&&) noexcept = default;
  SlotPool(const SlotPool&) = delete;
  SlotPool& operator=(const SlotPool&) = delete;

  ~SlotPool() { clear(); }

  // Constructs a T and returns its slot index.
  template <typename... Args>
  std::uint32_t emplace(Args&&... args) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(live_.size());
      if (slot / kChunkSize == chunks_.size()) {
        chunks_.push_back(std::make_unique<Storage[]>(kChunkSize));
      }
      live_.push_back(0);
    }
    ::new (address(slot)) T(std::forward<Args>(args)...);
    live_[slot] = 1;
    ++size_;
    return slot;
  }

  [[nodiscard]] T& get(std::uint32_t slot) {
    assert(slot < live_.size() && live_[slot]);
    return *std::launder(reinterpret_cast<T*>(address(slot)));
  }
  [[nodiscard]] const T& get(std::uint32_t slot) const {
    assert(slot < live_.size() && live_[slot]);
    return *std::launder(reinterpret_cast<const T*>(address(slot)));
  }

  void erase(std::uint32_t slot) {
    assert(slot < live_.size() && live_[slot]);
    get(slot).~T();
    live_[slot] = 0;
    free_.push_back(slot);
    --size_;
  }

  void clear() {
    for (std::uint32_t s = 0; s < live_.size(); ++s) {
      if (live_[s]) get(s).~T();
    }
    live_.clear();
    free_.clear();
    chunks_.clear();
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  struct alignas(alignof(T)) Storage {
    unsigned char bytes[sizeof(T)];
  };

  [[nodiscard]] void* address(std::uint32_t slot) {
    return &chunks_[slot / kChunkSize][slot % kChunkSize];
  }
  [[nodiscard]] const void* address(std::uint32_t slot) const {
    return &chunks_[slot / kChunkSize][slot % kChunkSize];
  }

  std::vector<std::unique_ptr<Storage[]>> chunks_;
  std::vector<std::uint8_t> live_;   // slot occupancy
  std::vector<std::uint32_t> free_;  // recyclable slots, LIFO
  std::size_t size_ = 0;
};

}  // namespace p2prm::util

// Strongly-typed identifiers used throughout the middleware.
//
// The paper identifies processors by "a unique ID (such as the pair
// <IP_i, port_i> or a randomly generated number)" (§3.1). We use 64-bit
// integral ids wrapped in distinct types so that a PeerId can never be
// accidentally passed where a DomainId is expected.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace p2prm::util {

// CRTP-free strong id: Tag makes each instantiation a distinct type.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint64_t;

  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying_type v) : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  // An id that never names a real entity.
  static constexpr StrongId invalid() { return StrongId{kInvalid}; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value_;
  }

 private:
  static constexpr underlying_type kInvalid = ~underlying_type{0};
  underlying_type value_ = kInvalid;
};

struct PeerIdTag {};
struct DomainIdTag {};
struct TaskIdTag {};
struct ServiceIdTag {};
struct ObjectIdTag {};
struct SessionIdTag {};
struct JobIdTag {};

using PeerId = StrongId<PeerIdTag>;        // a processor in the overlay
using DomainId = StrongId<DomainIdTag>;    // a geographical domain
using TaskId = StrongId<TaskIdTag>;        // an application task (user query)
using ServiceId = StrongId<ServiceIdTag>;  // a service instance on a peer
using ObjectId = StrongId<ObjectIdTag>;    // an application/media object
using SessionId = StrongId<SessionIdTag>;  // a running service session
using JobId = StrongId<JobIdTag>;          // a unit of work on one processor

// Monotonic id factory. Each entity family typically owns one.
template <typename Id>
class IdGenerator {
 public:
  constexpr IdGenerator() = default;
  constexpr explicit IdGenerator(typename Id::underlying_type first)
      : next_(first) {}

  Id next() { return Id{next_++}; }
  [[nodiscard]] typename Id::underlying_type issued() const { return next_; }

 private:
  typename Id::underlying_type next_ = 0;
};

template <typename Tag>
[[nodiscard]] inline std::string to_string(StrongId<Tag> id) {
  return id.valid() ? std::to_string(id.value()) : std::string("<invalid>");
}

}  // namespace p2prm::util

template <typename Tag>
struct std::hash<p2prm::util::StrongId<Tag>> {
  std::size_t operator()(p2prm::util::StrongId<Tag> id) const noexcept {
    // splitmix64 finalizer: ids are sequential, spread them.
    std::uint64_t x = id.value();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

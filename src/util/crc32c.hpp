// CRC-32C (Castagnoli) — the frame integrity checksum of the socket
// transport (net/wire.hpp, docs/TRANSPORT.md).
//
// Software, table-driven, no hardware dependency: the control plane's
// frame rate is a few thousand frames per second, so a byte-at-a-time
// table walk is far from any hot path. The Castagnoli polynomial
// (0x1EDC6F41, reflected 0x82F63B78) is the iSCSI/ext4 choice: Hamming
// distance 4 up to 2^31-1 bits, so every 1-3 bit error in any frame the
// transport will ever carry is detected, and random corruption slips
// through with probability ~2^-32.
#pragma once

#include <cstddef>
#include <cstdint>

namespace p2prm::util {

// Running CRC: pass the previous return value as `seed` to extend a
// checksum over discontiguous buffers. The single-shot call is
// crc32c(data, len).
[[nodiscard]] std::uint32_t crc32c(const std::uint8_t* data, std::size_t len,
                                   std::uint32_t seed = 0);

}  // namespace p2prm::util

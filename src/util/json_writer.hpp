// Minimal streaming JSON writer.
//
// Every machine-readable artifact this repo emits (metrics JSON v1/v2, the
// bench gate files, span dumps) must be byte-deterministic under a fixed
// seed: CI diffs two runs with cmp(1). Hand-concatenated strings made that
// easy to break — a writer centralizes escaping, comma placement and number
// formatting. Layout matches the house style the v1 metrics JSON
// established: two-space indent, one key per line, closing brace on its own
// line.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <type_traits>
#include <vector>

namespace p2prm::util {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, int indent_width = 2)
      : out_(out), indent_width_(indent_width) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Key of the next member (objects only).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  // Funnel the remaining integer widths through the 64-bit overloads
  // (separate named overloads would collide where int64_t is `long`).
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool> &&
                                 !std::is_same_v<T, std::int64_t> &&
                                 !std::is_same_v<T, std::uint64_t>,
                             int> = 0>
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>) {
      return value(static_cast<std::int64_t>(v));
    } else {
      return value(static_cast<std::uint64_t>(v));
    }
  }
  // Shortest round-trip representation (std::to_chars): a parser reads back
  // the exact double, which the exporter round-trip test depends on.
  JsonWriter& value(double v);
  // printf-formatted number (e.g. "%.6g" for the v1-compatible metrics
  // JSON). `fmt` must produce a valid JSON number for finite inputs.
  JsonWriter& value_fmt(double v, const char* fmt);
  JsonWriter& null();

  // key(k) + value(v) in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T&& v) {
    key(k);
    return value(static_cast<T&&>(v));
  }
  JsonWriter& field_fmt(std::string_view k, double v, const char* fmt) {
    key(k);
    return value_fmt(v, fmt);
  }

  // True once the root container has been closed.
  [[nodiscard]] bool done() const { return depth() == 0 && started_; }

  static void write_escaped(std::ostream& out, std::string_view s);

 private:
  struct Frame {
    bool is_object = false;
    std::size_t members = 0;
    bool key_pending = false;  // object: key written, value outstanding
  };

  [[nodiscard]] std::size_t depth() const { return stack_.size(); }
  void newline_indent(std::size_t levels);
  // Positions the stream for the next value/key; writes separators.
  void before_value();
  void after_value();
  void open(bool is_object, char brace);
  void close(bool is_object, char brace);

  std::ostream& out_;
  int indent_width_;
  bool started_ = false;
  std::vector<Frame> stack_;
};

}  // namespace p2prm::util

// Minimal leveled logging.
//
// Off (Warn) by default so tests and benches stay quiet; examples flip it
// to Info/Debug to narrate protocol activity. The singleton is shared by
// every shard worker under the parallel engine, so the level is an atomic
// (the hot enabled() check stays lock-free) and each write is serialized
// under a mutex — interleaved but never torn lines.
#pragma once

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>

namespace p2prm::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= this->level(); }

  // `sim_now_seconds` < 0 means "no simulated clock available".
  void write(LogLevel level, const std::string& component,
             const std::string& message, double sim_now_seconds = -1.0);

  // Benches/tests can capture output instead of printing. Call only while
  // no shard worker is running (setup/teardown).
  void set_sink(std::ostream* sink) {
    std::lock_guard<std::mutex> lock(mu_);
    sink_ = sink;
  }

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::Warn};
  std::ostream* sink_ = nullptr;  // guarded by mu_
  std::mutex mu_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string component, double now)
      : level_(level), component_(std::move(component)), now_(now) {}
  ~LogLine() { Logger::instance().write(level_, component_, os_.str(), now_); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  double now_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace p2prm::util

// Usage: P2PRM_LOG(Info, "rm", now_s) << "peer " << id << " joined";
#define P2PRM_LOG(level, component, now_s)                                \
  if (!::p2prm::util::Logger::instance().enabled(                        \
          ::p2prm::util::LogLevel::level)) {                             \
  } else                                                                 \
    ::p2prm::util::detail::LogLine(::p2prm::util::LogLevel::level,       \
                                   (component), (now_s))

// Deterministic random number generation.
//
// Every stochastic element of the middleware (workloads, churn, topology,
// gossip partner choice) draws from an Rng seeded by the experiment, so a
// run is exactly reproducible from (code, seed). The generator is
// xoshiro256** seeded via splitmix64 — fast, high quality, and trivially
// forkable so independent subsystems get decorrelated streams.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace p2prm::util {

[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // UniformRandomBitGenerator interface (usable with <random> distributions).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  // A generator whose stream is independent of this one's future output.
  [[nodiscard]] Rng fork();

  // Uniform integer in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t below(std::uint64_t bound);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Uniform double in [0, 1).
  double uniform01();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // True with probability p (clamped to [0,1]).
  bool bernoulli(double p);
  // Exponential with given mean (> 0).
  double exponential(double mean);
  // Normal via Box-Muller.
  double normal(double mean, double stddev);
  // Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed capacities).
  double pareto(double x_m, double alpha);
  // Log-normal parameterized by the mean/stddev of the *underlying* normal.
  double lognormal(double mu, double sigma);

  // Random index from non-negative weights (at least one positive).
  std::size_t weighted_index(const std::vector<double>& weights);

  template <typename It>
  void shuffle(It first, It last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      std::swap(first[i - 1], first[below(i)]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_;
};

// Zipf(s, n) sampler over {0, ..., n-1} using the rejection-inversion
// method of Hörmann & Derflinger; O(1) per sample after O(1) setup.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  std::size_t operator()(Rng& rng);

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] double s() const { return s_; }

 private:
  [[nodiscard]] double h(double x) const;
  [[nodiscard]] double h_integral(double x) const;
  [[nodiscard]] double h_integral_inverse(double x) const;

  std::size_t n_;
  double s_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_over_;
};

}  // namespace p2prm::util

#include "util/table.hpp"

#include <algorithm>
#include <cstdarg>
#include <sstream>
#include <stdexcept>

namespace p2prm::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

Table& Table::cell(std::string value) {
  pending_.push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return cell(std::string(buf));
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::end_row() {
  if (pending_.size() != headers_.size()) {
    throw std::logic_error("Table: row has " + std::to_string(pending_.size()) +
                           " cells, expected " + std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(pending_));
  pending_.clear();
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  if (!pending_.empty()) throw std::logic_error("Table: pending cells before row()");
  pending_ = std::move(cells);
  return end_row();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c ? 2 : 0);
  os << std::string(rule, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace p2prm::util

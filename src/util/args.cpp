#include "util/args.hpp"

#include <stdexcept>

namespace p2prm::util {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "1";
    }
  }
}

bool Args::has(const std::string& key) const {
  touched_[key] = true;
  return kv_.count(key) != 0;
}

std::string Args::get(const std::string& key, const std::string& fallback) const {
  touched_[key] = true;
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& key, std::int64_t fallback) const {
  touched_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return std::stoll(it->second);
}

double Args::get_double(const std::string& key, double fallback) const {
  touched_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return std::stod(it->second);
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  touched_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> out;
  for (const auto& [k, _] : kv_) {
    if (!touched_.count(k)) out.push_back(k);
  }
  return out;
}

}  // namespace p2prm::util

// Streaming statistics used by profilers and the experiment harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace p2prm::util {

// Welford's online mean/variance plus min/max. O(1) space.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores samples; exact quantiles on demand. For experiment-scale sample
// counts (<= millions) this is simpler and more trustworthy than sketches.
class Samples {
 public:
  void add(double x) { data_.push_back(x); }
  void reserve(std::size_t n) { data_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  // Linear-interpolated quantile, q in [0, 1]. Sorts lazily.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] const std::vector<double>& values() const { return data_; }

 private:
  mutable std::vector<double> data_;
  mutable bool sorted_ = false;
};

// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
// edge buckets. Used for latency/laxity distributions in reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_low(std::size_t i) const;
  [[nodiscard]] double bucket_high(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  // ASCII rendering, one line per non-empty bucket.
  [[nodiscard]] std::string render(std::size_t max_width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// A time series of (t_seconds, value) pairs with downsampled rendering.
class TimeSeries {
 public:
  void add(double t_seconds, double value);
  [[nodiscard]] std::size_t count() const { return points_.size(); }
  [[nodiscard]] double value_at(std::size_t i) const { return points_[i].second; }
  [[nodiscard]] double time_at(std::size_t i) const { return points_[i].first; }
  // Mean of values with t in [t0, t1).
  [[nodiscard]] double mean_over(double t0, double t1) const;
  [[nodiscard]] double last() const;

 private:
  std::vector<std::pair<double, double>> points_;
};

}  // namespace p2prm::util

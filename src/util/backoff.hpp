// Generic retry/timeout/exponential-backoff policy.
//
// Every unreliable RPC in the middleware (task queries, profiler reports,
// backup-RM sync, join attempts) retries on a schedule described by one of
// these. The policy itself is pure arithmetic — deterministic given the
// attempt number and an optional Rng for jitter — so retry behaviour is
// exactly reproducible from the run seed. The simulator-bound driver that
// consumes a policy lives in sim/retry.hpp.
#pragma once

#include "util/rng.hpp"
#include "util/time.hpp"

namespace p2prm::util {

struct BackoffPolicy {
  // Delay before the first retry (== the per-message-class ack timeout).
  SimDuration initial = milliseconds(500);
  // Each subsequent delay is the previous one times this factor.
  double multiplier = 2.0;
  // Ceiling on any single delay.
  SimDuration max_delay = seconds(10);
  // Total attempts including the original send; <= 1 disables retries.
  int max_attempts = 4;
  // Symmetric jitter applied to each delay: d * U[1-j, 1+j]. Zero keeps the
  // schedule exactly periodic (and consumes no randomness).
  double jitter_fraction = 0.0;

  // Delay to wait after attempt number `attempt` (0-based: attempt 0 is the
  // original send). Exponential with cap; jittered when an Rng is supplied
  // and jitter_fraction > 0.
  [[nodiscard]] SimDuration delay(int attempt, Rng* rng = nullptr) const;

  // True when `attempt` (0-based) was the last allowed one.
  [[nodiscard]] bool exhausted(int attempt) const {
    return attempt + 1 >= max_attempts;
  }

  // Upper bound on the total time from first send to giving up (no jitter).
  [[nodiscard]] SimDuration total_budget() const;
};

}  // namespace p2prm::util

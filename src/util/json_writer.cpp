#include "util/json_writer.hpp"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace p2prm::util {

void JsonWriter::write_escaped(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void JsonWriter::newline_indent(std::size_t levels) {
  out_ << '\n';
  for (std::size_t i = 0; i < levels * static_cast<std::size_t>(indent_width_);
       ++i) {
    out_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    assert(!started_ && "only one root value");
    return;
  }
  Frame& top = stack_.back();
  if (top.is_object) {
    assert(top.key_pending && "object members need key() first");
    return;  // key() already positioned the stream
  }
  if (top.members > 0) out_ << ',';
  newline_indent(depth());
}

void JsonWriter::after_value() {
  started_ = true;
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  ++top.members;
  top.key_pending = false;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!stack_.empty() && stack_.back().is_object && "key() outside object");
  Frame& top = stack_.back();
  assert(!top.key_pending && "two keys in a row");
  if (top.members > 0) out_ << ',';
  newline_indent(depth());
  write_escaped(out_, k);
  out_ << ": ";
  top.key_pending = true;
  return *this;
}

void JsonWriter::open(bool is_object, char brace) {
  before_value();
  out_ << brace;
  stack_.push_back(Frame{is_object, 0, false});
}

void JsonWriter::close(bool is_object, char brace) {
  assert(!stack_.empty() && stack_.back().is_object == is_object);
  assert(!stack_.back().key_pending && "dangling key");
  const Frame closed = stack_.back();
  stack_.pop_back();
  if (closed.members > 0) newline_indent(depth());
  out_ << brace;
  after_value();
}

JsonWriter& JsonWriter::begin_object() {
  open(true, '{');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close(true, '}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  open(false, '[');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close(false, ']');
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  write_escaped(out_, v);
  after_value();
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
  after_value();
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
  after_value();
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
  after_value();
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; null is the least-surprising encoding.
    out_ << "null";
  } else {
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    out_ << std::string_view(buf, static_cast<std::size_t>(res.ptr - buf));
  }
  after_value();
  return *this;
}

JsonWriter& JsonWriter::value_fmt(double v, const char* fmt) {
  before_value();
  if (!std::isfinite(v)) {
    out_ << "null";
  } else {
    char buf[64];
    std::snprintf(buf, sizeof buf, fmt, v);
    out_ << buf;
  }
  after_value();
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  after_value();
  return *this;
}

}  // namespace p2prm::util

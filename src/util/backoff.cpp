#include "util/backoff.hpp"

#include <algorithm>
#include <cmath>

namespace p2prm::util {

SimDuration BackoffPolicy::delay(int attempt, Rng* rng) const {
  const double base = static_cast<double>(std::max<SimDuration>(initial, 1));
  const double factor = std::pow(std::max(multiplier, 1.0),
                                 static_cast<double>(std::max(attempt, 0)));
  double d = std::min(base * factor, static_cast<double>(max_delay));
  if (rng != nullptr && jitter_fraction > 0.0) {
    d *= rng->uniform(1.0 - jitter_fraction, 1.0 + jitter_fraction);
  }
  return std::max<SimDuration>(from_seconds(d * 1e-9), 1);
}

SimDuration BackoffPolicy::total_budget() const {
  SimDuration total = 0;
  for (int a = 0; a < max_attempts; ++a) total += delay(a);
  return total;
}

}  // namespace p2prm::util

#include "util/logging.hpp"

#include <cstdio>
#include <iostream>

namespace p2prm::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message, double sim_now_seconds) {
  if (!enabled(level)) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::ostream& os = sink_ ? *sink_ : std::clog;
  char prefix[64];
  if (sim_now_seconds >= 0.0) {
    std::snprintf(prefix, sizeof prefix, "[%10.6f] %s %-8s ", sim_now_seconds,
                  level_name(level), component.c_str());
  } else {
    std::snprintf(prefix, sizeof prefix, "[   ------  ] %s %-8s ",
                  level_name(level), component.c_str());
  }
  os << prefix << message << '\n';
}

}  // namespace p2prm::util

// Open-addressing hash containers for the control-plane hot paths.
//
// `std::unordered_map` pays one heap node per element and a pointer chase
// per probe; the simulator's hottest lookups (event-id routing, cancelled-id
// checks, object/service/coordinate tables) are all small-key -> small-value
// maps that want contiguous storage. FlatMap/FlatSet store keys, values and
// occupancy flags in three parallel vectors (struct-of-arrays), probe
// linearly from a splitmix64-mixed bucket, and erase by backward-shift so
// there are no tombstones to skip on the next lookup.
//
// Semantics differences from std::unordered_map callers must respect:
//  * references/pointers into the table are invalidated by insertion
//    (rehash) and erasure (backward shift) — do not hold them across
//    mutations;
//  * iteration order is slot order: deterministic for a fixed insertion
//    sequence (same keys, same order -> same layout on every run and
//    platform), but not insertion order — iterate-then-sort, or keep a
//    side order vector, where ordering is observable;
//  * erasing while iterating is not supported — collect keys first.
//
// Keys are hashed with the same splitmix64 finalizer std::hash<StrongId>
// uses, so sequential ids spread uniformly.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace p2prm::util {

namespace detail {

inline std::uint64_t mix_u64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Extracts the 64-bit payload of either a raw integer or a util::StrongId
// (anything with a .value() returning an integral).
template <typename K>
std::uint64_t key_bits(const K& k) {
  if constexpr (std::is_integral_v<K>) {
    return static_cast<std::uint64_t>(k);
  } else {
    return static_cast<std::uint64_t>(k.value());
  }
}

}  // namespace detail

// FlatMap<K, V>: open-addressing, linear-probing hash map. K must be an
// integral type or a StrongId; V must be default-constructible and
// move-assignable.
template <typename K, typename V>
class FlatMap {
 public:
  FlatMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    keys_.clear();
    values_.clear();
    used_.clear();
    size_ = 0;
  }

  void reserve(std::size_t n) {
    // Grow so that n elements stay under the 7/8 load ceiling.
    std::size_t cap = kMinCapacity;
    while (cap - cap / 8 < n) cap <<= 1;
    if (cap > capacity()) rehash(cap);
  }

  // Pointer to the mapped value, or nullptr. Invalidated by mutation.
  [[nodiscard]] V* find(const K& key) {
    if (size_ == 0) return nullptr;
    const std::size_t i = find_slot(key);
    return i != kNone ? &values_[i] : nullptr;
  }
  [[nodiscard]] const V* find(const K& key) const {
    if (size_ == 0) return nullptr;
    const std::size_t i = find_slot(key);
    return i != kNone ? &values_[i] : nullptr;
  }
  [[nodiscard]] bool contains(const K& key) const {
    return size_ != 0 && find_slot(key) != kNone;
  }

  V& operator[](const K& key) {
    maybe_grow();
    const std::size_t i = insert_slot(key);
    if (!used_[i]) {
      used_[i] = 1;
      keys_[i] = key;
      values_[i] = V{};
      ++size_;
    }
    return values_[i];
  }

  // Returns (value pointer, inserted?). Existing entries are left untouched.
  std::pair<V*, bool> try_emplace(const K& key, V value = V{}) {
    maybe_grow();
    const std::size_t i = insert_slot(key);
    if (used_[i]) return {&values_[i], false};
    used_[i] = 1;
    keys_[i] = key;
    values_[i] = std::move(value);
    ++size_;
    return {&values_[i], true};
  }

  void insert_or_assign(const K& key, V value) {
    maybe_grow();
    const std::size_t i = insert_slot(key);
    if (!used_[i]) {
      used_[i] = 1;
      keys_[i] = key;
      ++size_;
    }
    values_[i] = std::move(value);
  }

  // True when the key was present. Backward-shift deletion: no tombstones.
  bool erase(const K& key) {
    if (size_ == 0) return false;
    std::size_t i = find_slot(key);
    if (i == kNone) return false;
    const std::size_t mask = capacity() - 1;
    std::size_t hole = i;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      if (!used_[j]) break;
      const std::size_t ideal = bucket_of(keys_[j]);
      // keys_[j] may fill the hole iff its ideal bucket is not cyclically
      // inside (hole, j] — i.e. the probe from `ideal` passes through the
      // hole on its way to j.
      const bool movable = (j > hole) ? (ideal <= hole || ideal > j)
                                      : (ideal <= hole && ideal > j);
      if (movable) {
        keys_[hole] = keys_[j];
        values_[hole] = std::move(values_[j]);
        hole = j;
      }
    }
    used_[hole] = 0;
    values_[hole] = V{};  // release owned resources eagerly
    --size_;
    return true;
  }

  // Calls fn(const K&, V&) (or const V& in the const overload) for every
  // entry, in slot order. Do not mutate the table from fn.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < capacity(); ++i) {
      if (used_[i]) fn(keys_[i], values_[i]);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < capacity(); ++i) {
      if (used_[i]) fn(keys_[i], values_[i]);
    }
  }

  // Bucket count of the open-addressing table (memory accounting: the
  // table owns capacity() * (sizeof(K) + sizeof(V) + 1) bytes).
  [[nodiscard]] std::size_t capacity() const { return used_.size(); }

  // Probe length the key currently needs (1 = home slot). 0 when absent.
  // Deterministic given the insertion sequence; the bench_micro map
  // benchmark reports the mean as its structural work counter.
  [[nodiscard]] std::size_t probe_length(const K& key) const {
    if (size_ == 0) return 0;
    const std::size_t mask = capacity() - 1;
    std::size_t i = bucket_of(key);
    for (std::size_t n = 1; n <= capacity(); ++n) {
      if (!used_[i]) return 0;
      if (keys_[i] == key) return n;
      i = (i + 1) & mask;
    }
    return 0;
  }

 private:
  static constexpr std::size_t kMinCapacity = 8;
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t bucket_of(const K& key) const {
    return static_cast<std::size_t>(detail::mix_u64(detail::key_bits(key))) &
           (capacity() - 1);
  }

  // Slot holding `key`, or kNone.
  [[nodiscard]] std::size_t find_slot(const K& key) const {
    const std::size_t mask = capacity() - 1;
    std::size_t i = bucket_of(key);
    for (;;) {
      if (!used_[i]) return kNone;
      if (keys_[i] == key) return i;
      i = (i + 1) & mask;
    }
  }

  // First slot where `key` lives or may be inserted (capacity must allow).
  [[nodiscard]] std::size_t insert_slot(const K& key) const {
    const std::size_t mask = capacity() - 1;
    std::size_t i = bucket_of(key);
    for (;;) {
      if (!used_[i] || keys_[i] == key) return i;
      i = (i + 1) & mask;
    }
  }

  void maybe_grow() {
    if (capacity() == 0) {
      rehash(kMinCapacity);
    } else if (size_ + 1 > capacity() - capacity() / 8) {
      rehash(capacity() * 2);
    }
  }

  void rehash(std::size_t new_cap) {
    std::vector<K> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    keys_.assign(new_cap, K{});
    // resize (not assign) so V only needs default + move construction —
    // move-only values (unique_ptr slots) are supported.
    values_.clear();
    values_.resize(new_cap);
    used_.assign(new_cap, 0);
    const std::size_t n = size_;
    size_ = 0;
    for (std::size_t i = 0; i < old_used.size(); ++i) {
      if (!old_used[i]) continue;
      const std::size_t slot = insert_slot(old_keys[i]);
      assert(!used_[slot]);
      used_[slot] = 1;
      keys_[slot] = old_keys[i];
      values_[slot] = std::move(old_values[i]);
      ++size_;
    }
    assert(size_ == n);
    (void)n;
  }

  std::vector<K> keys_;
  std::vector<V> values_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
};

// FlatSet<K>: the key-only twin, used where unordered_set of ids sits on a
// hot path (EventQueue's cancelled-id table).
template <typename K>
class FlatSet {
 public:
  FlatSet() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    keys_.clear();
    used_.clear();
    size_ = 0;
  }

  [[nodiscard]] bool contains(const K& key) const {
    if (size_ == 0) return false;
    const std::size_t mask = capacity() - 1;
    std::size_t i = bucket_of(key);
    for (;;) {
      if (!used_[i]) return false;
      if (keys_[i] == key) return true;
      i = (i + 1) & mask;
    }
  }

  // True when newly inserted (mirrors unordered_set::insert().second).
  bool insert(const K& key) {
    maybe_grow();
    const std::size_t mask = capacity() - 1;
    std::size_t i = bucket_of(key);
    for (;;) {
      if (!used_[i]) break;
      if (keys_[i] == key) return false;
      i = (i + 1) & mask;
    }
    used_[i] = 1;
    keys_[i] = key;
    ++size_;
    return true;
  }

  bool erase(const K& key) {
    if (size_ == 0) return false;
    const std::size_t mask = capacity() - 1;
    std::size_t hole = bucket_of(key);
    for (;;) {
      if (!used_[hole]) return false;
      if (keys_[hole] == key) break;
      hole = (hole + 1) & mask;
    }
    std::size_t j = hole;
    for (;;) {
      j = (j + 1) & mask;
      if (!used_[j]) break;
      const std::size_t ideal = bucket_of(keys_[j]);
      const bool movable = (j > hole) ? (ideal <= hole || ideal > j)
                                      : (ideal <= hole && ideal > j);
      if (movable) {
        keys_[hole] = keys_[j];
        hole = j;
      }
    }
    used_[hole] = 0;
    --size_;
    return true;
  }

 private:
  static constexpr std::size_t kMinCapacity = 8;

  [[nodiscard]] std::size_t capacity() const { return used_.size(); }

  [[nodiscard]] std::size_t bucket_of(const K& key) const {
    return static_cast<std::size_t>(detail::mix_u64(detail::key_bits(key))) &
           (capacity() - 1);
  }

  void maybe_grow() {
    if (capacity() == 0) {
      rehash(kMinCapacity);
    } else if (size_ + 1 > capacity() - capacity() / 8) {
      rehash(capacity() * 2);
    }
  }

  void rehash(std::size_t new_cap) {
    std::vector<K> old_keys = std::move(keys_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    keys_.assign(new_cap, K{});
    used_.assign(new_cap, 0);
    size_ = 0;
    for (std::size_t i = 0; i < old_used.size(); ++i) {
      if (old_used[i]) insert(old_keys[i]);
    }
  }

  std::vector<K> keys_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
};

}  // namespace p2prm::util

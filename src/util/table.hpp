// Console table / CSV rendering for experiment output.
//
// Every bench binary prints paper-style tables through this facility so all
// experiments share one output format (and EXPERIMENTS.md can quote them
// verbatim).
#pragma once

#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

namespace p2prm::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Row-building: add cells one at a time, then end_row(), or push a whole
  // row at once.
  Table& cell(std::string value);
  Table& cell(const char* value) { return cell(std::string(value)); }
  Table& cell(double value, int precision = 3);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);
  Table& cell(int value) { return cell(static_cast<std::int64_t>(value)); }
  Table& cell(unsigned value) { return cell(static_cast<std::uint64_t>(value)); }
  Table& end_row();
  Table& row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  // Pretty-prints with aligned columns and a header rule.
  void print(std::ostream& os) const;
  // RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
};

// printf-style helper producing std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace p2prm::util

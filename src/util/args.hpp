// Tiny command-line parser for benches and examples.
//
// All binaries must run with zero arguments (CI runs them bare); flags only
// override experiment defaults, e.g.  --peers=128 --seed=7 --csv.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace p2prm::util {

class Args {
 public:
  // Accepts --key=value, --key value, and bare --flag (value "1").
  // Throws std::invalid_argument on malformed input (e.g. positional args).
  Args(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::string& program() const { return program_; }

  // Keys that were provided but never queried — typo detection for users.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
  mutable std::map<std::string, bool> touched_;
};

}  // namespace p2prm::util

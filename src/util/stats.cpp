#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace p2prm::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

// ---------------------------------------------------------------------------

double Samples::mean() const {
  if (data_.empty()) return 0.0;
  double s = 0.0;
  for (double x : data_) s += x;
  return s / static_cast<double>(data_.size());
}

double Samples::stddev() const {
  if (data_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : data_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(data_.size()));
}

double Samples::min() const {
  if (data_.empty()) return 0.0;
  return *std::min_element(data_.begin(), data_.end());
}

double Samples::max() const {
  if (data_.empty()) return 0.0;
  return *std::max_element(data_.begin(), data_.end());
}

double Samples::quantile(double q) const {
  if (data_.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  if (!sorted_) {
    std::sort(data_.begin(), data_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(data_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= data_.size()) return data_.back();
  return data_[lo] * (1.0 - frac) + data_[lo + 1] * frac;
}

// ---------------------------------------------------------------------------

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (!(lo < hi) || buckets == 0) {
    throw std::invalid_argument("Histogram: need lo < hi and buckets > 0");
  }
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span *
                                         static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_high(std::size_t i) const { return bucket_low(i + 1); }

std::string Histogram::render(std::size_t max_width) const {
  std::ostringstream os;
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  if (peak == 0) return "(empty histogram)\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    char label[64];
    std::snprintf(label, sizeof label, "[%9.3g, %9.3g) %8llu ",
                  bucket_low(i), bucket_high(i),
                  static_cast<unsigned long long>(counts_[i]));
    os << label << std::string(std::max<std::size_t>(bar, 1), '#') << '\n';
  }
  return os.str();
}

// ---------------------------------------------------------------------------

void TimeSeries::add(double t_seconds, double value) {
  assert(points_.empty() || t_seconds >= points_.back().first);
  points_.emplace_back(t_seconds, value);
}

double TimeSeries::mean_over(double t0, double t1) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [t, v] : points_) {
    if (t >= t0 && t < t1) {
      sum += v;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double TimeSeries::last() const {
  return points_.empty() ? 0.0 : points_.back().second;
}

}  // namespace p2prm::util

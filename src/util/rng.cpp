#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace p2prm::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork() {
  // Seeding a child from two draws keeps the streams decorrelated without
  // implementing the full jump() polynomial.
  const std::uint64_t a = next();
  const std::uint64_t b = next();
  return Rng(a ^ rotl(b, 31) ^ 0xd1b54a32d192ed03ULL);
}

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
}

double Rng::uniform01() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform01();
  } while (u1 == 0.0);
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::pareto(double x_m, double alpha) {
  assert(x_m > 0.0 && alpha > 0.0);
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("weighted_index: all weights are zero");
  }
  double r = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: return last positive
}

// ---------------------------------------------------------------------------
// ZipfDistribution: rejection-inversion sampling (Hörmann & Derflinger 1996),
// the same scheme used by Apache Commons' RejectionInversionZipfSampler.

ZipfDistribution::ZipfDistribution(std::size_t n, double s) : n_(n), s_(s) {
  if (n == 0) throw std::invalid_argument("Zipf: n must be >= 1");
  if (s <= 0.0) throw std::invalid_argument("Zipf: s must be > 0");
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
  s_over_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfDistribution::h(double x) const { return std::exp(-s_ * std::log(x)); }

double ZipfDistribution::h_integral(double x) const {
  const double log_x = std::log(x);
  // helper: (exp(x*t)-1)/x, stable near x == 0.
  const double t = log_x * (1.0 - s_);
  double v;
  if (std::abs(t) > 1e-8) {
    v = (std::exp(t) - 1.0) / (1.0 - s_);
  } else {
    v = log_x * (1.0 + t * (0.5 + t / 6.0));
  }
  return v;
}

double ZipfDistribution::h_integral_inverse(double x) const {
  double t = x * (1.0 - s_);
  if (t < -1.0) t = -1.0;  // numeric guard
  double log_res;
  if (std::abs(t) > 1e-8) {
    log_res = std::log1p(t) / (1.0 - s_);
  } else {
    log_res = x * (1.0 - t * (0.5 - t / 3.0));
  }
  return std::exp(log_res);
}

std::size_t ZipfDistribution::operator()(Rng& rng) {
  while (true) {
    const double u =
        h_integral_n_ + rng.uniform01() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    if (k - x <= s_over_ || u >= h_integral(k + 0.5) - h(k)) {
      return static_cast<std::size_t>(k) - 1;  // 0-based rank
    }
  }
}

}  // namespace p2prm::util

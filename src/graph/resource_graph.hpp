// The resource graph G_r (§3.4).
//
// "Each vertex v of G_r represents an application state, while each edge e
// represents a service, accompanied by its current load."
//
// Vertices are media formats (application states); edges are *service
// instances*: a transcoder type hosted by a concrete peer, annotated with
// that service's current load. Parallel edges are real and meaningful —
// Figure 1's e2 and e3 are the same conversion offered by different peers.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "media/catalog.hpp"
#include "media/transcoder.hpp"
#include "util/arena.hpp"
#include "util/flat_map.hpp"
#include "util/ids.hpp"

namespace p2prm::graph {

using StateIndex = std::size_t;
inline constexpr StateIndex kNoState = static_cast<StateIndex>(-1);

struct ServiceEdge {
  util::ServiceId id;
  util::PeerId peer;
  media::TranscoderType type;
  StateIndex from = kNoState;
  StateIndex to = kNoState;
  // Current load on this service: number of active sessions weighted by
  // their CPU demand, kept fresh by profiler reports.
  double load = 0.0;
};

class ResourceGraph {
 public:
  // --- States -------------------------------------------------------------
  StateIndex add_state(const media::MediaFormat& format);
  [[nodiscard]] std::optional<StateIndex> find_state(
      const media::MediaFormat& format) const;
  [[nodiscard]] const media::MediaFormat& state(StateIndex i) const;
  [[nodiscard]] std::size_t state_count() const { return states_.size(); }

  // --- Service edges --------------------------------------------------------
  // Adds a service instance; creates endpoint states as needed.
  void add_service(util::ServiceId id, util::PeerId peer,
                   const media::TranscoderType& type);
  bool remove_service(util::ServiceId id);
  // Removes every service hosted by `peer` (§4.1: on disconnect the RM
  // removes "the edges that were referring to the services offered by the
  // particular peer"). Returns how many were removed.
  std::size_t remove_peer(util::PeerId peer);

  [[nodiscard]] bool has_service(util::ServiceId id) const;
  [[nodiscard]] const ServiceEdge& service(util::ServiceId id) const;
  [[nodiscard]] std::size_t service_count() const {
    return edge_index_.size();
  }

  void set_service_load(util::ServiceId id, double load);

  // Mutation epoch: bumped by every change that could alter a path query's
  // outcome — edge insertion/removal and service-load updates. PathCache
  // entries are valid exactly while the epoch they were computed under
  // still matches (§ control-plane hot path).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  // Outgoing service edges of a state, in insertion order (deterministic).
  [[nodiscard]] std::vector<const ServiceEdge*> edges_from(StateIndex v) const;
  [[nodiscard]] std::vector<const ServiceEdge*> services_of(
      util::PeerId peer) const;
  [[nodiscard]] std::vector<const ServiceEdge*> all_services() const;

 private:
  [[nodiscard]] const ServiceEdge& edge_at(util::ServiceId id) const;

  std::vector<media::MediaFormat> states_;
  // Keyed by a composite format value, not an integral id, so this one map
  // stays std::unordered_map (FlatMap only hashes ids). It is also cold:
  // touched on state creation, not per query.
  std::unordered_map<media::MediaFormat, StateIndex> state_index_;
  // Edges live in a SlotPool so edges_from()/services_of() can hand out
  // pointers that — like the old node-based map's — survive unrelated
  // insertions; the FlatMap only resolves id -> slot. Every path query in
  // the Figure 3 BFS probes this index, which is why it is open-addressing.
  util::SlotPool<ServiceEdge> edge_pool_;
  util::FlatMap<util::ServiceId, std::uint32_t> edge_index_;
  // adjacency: state -> service ids (kept sorted by insertion sequence).
  std::vector<std::vector<util::ServiceId>> out_;
  // secondary index: hosting peer -> service ids, so services_of() and
  // remove_peer() are proportional to the peer's own offerings instead of
  // a scan over every edge in the domain.
  util::FlatMap<util::PeerId, std::vector<util::ServiceId>> by_peer_;
  std::uint64_t epoch_ = 0;
};

}  // namespace p2prm::graph

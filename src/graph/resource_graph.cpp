#include "graph/resource_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace p2prm::graph {

StateIndex ResourceGraph::add_state(const media::MediaFormat& format) {
  const auto it = state_index_.find(format);
  if (it != state_index_.end()) return it->second;
  const StateIndex idx = states_.size();
  states_.push_back(format);
  state_index_[format] = idx;
  out_.emplace_back();
  return idx;
}

std::optional<StateIndex> ResourceGraph::find_state(
    const media::MediaFormat& format) const {
  const auto it = state_index_.find(format);
  if (it == state_index_.end()) return std::nullopt;
  return it->second;
}

const media::MediaFormat& ResourceGraph::state(StateIndex i) const {
  return states_.at(i);
}

void ResourceGraph::add_service(util::ServiceId id, util::PeerId peer,
                                const media::TranscoderType& type) {
  if (edge_index_.contains(id)) {
    throw std::logic_error("ResourceGraph: duplicate service id " +
                           util::to_string(id));
  }
  ServiceEdge edge;
  edge.id = id;
  edge.peer = peer;
  edge.type = type;
  edge.from = add_state(type.input);
  edge.to = add_state(type.output);
  out_[edge.from].push_back(id);
  by_peer_[peer].push_back(id);
  const std::uint32_t slot = edge_pool_.emplace(std::move(edge));
  edge_index_.try_emplace(id, slot);
  ++epoch_;
}

bool ResourceGraph::remove_service(util::ServiceId id) {
  const std::uint32_t* found = edge_index_.find(id);
  if (found == nullptr) return false;
  const std::uint32_t slot = *found;
  const ServiceEdge& edge = edge_pool_.get(slot);
  auto& adj = out_[edge.from];
  adj.erase(std::remove(adj.begin(), adj.end(), id), adj.end());
  if (auto* owned = by_peer_.find(edge.peer)) {
    owned->erase(std::remove(owned->begin(), owned->end(), id), owned->end());
    if (owned->empty()) by_peer_.erase(edge.peer);
  }
  edge_pool_.erase(slot);
  edge_index_.erase(id);
  ++epoch_;
  return true;
}

std::size_t ResourceGraph::remove_peer(util::PeerId peer) {
  const auto* owned = by_peer_.find(peer);
  if (owned == nullptr) return 0;
  // Copy: remove_service() edits the indexed vector we are walking.
  const std::vector<util::ServiceId> doomed = *owned;
  for (auto id : doomed) remove_service(id);
  return doomed.size();
}

bool ResourceGraph::has_service(util::ServiceId id) const {
  return edge_index_.contains(id);
}

const ServiceEdge& ResourceGraph::edge_at(util::ServiceId id) const {
  const std::uint32_t* slot = edge_index_.find(id);
  if (slot == nullptr) {
    throw std::out_of_range("ResourceGraph: unknown service " +
                            util::to_string(id));
  }
  return edge_pool_.get(*slot);
}

const ServiceEdge& ResourceGraph::service(util::ServiceId id) const {
  return edge_at(id);
}

void ResourceGraph::set_service_load(util::ServiceId id, double load) {
  const std::uint32_t* slot = edge_index_.find(id);
  if (slot == nullptr) {
    throw std::out_of_range("ResourceGraph: unknown service " +
                            util::to_string(id));
  }
  ServiceEdge& edge = edge_pool_.get(*slot);
  if (edge.load != load) ++epoch_;
  edge.load = load;
}

std::vector<const ServiceEdge*> ResourceGraph::edges_from(StateIndex v) const {
  std::vector<const ServiceEdge*> out;
  if (v >= out_.size()) return out;
  out.reserve(out_[v].size());
  for (auto id : out_[v]) out.push_back(&edge_at(id));
  return out;
}

std::vector<const ServiceEdge*> ResourceGraph::services_of(
    util::PeerId peer) const {
  std::vector<const ServiceEdge*> out;
  const auto* owned = by_peer_.find(peer);
  if (owned == nullptr) return out;
  out.reserve(owned->size());
  for (auto id : *owned) out.push_back(&edge_at(id));
  // Deterministic order regardless of insertion sequence.
  std::sort(out.begin(), out.end(),
            [](const ServiceEdge* a, const ServiceEdge* b) {
              return a->id < b->id;
            });
  return out;
}

std::vector<const ServiceEdge*> ResourceGraph::all_services() const {
  std::vector<const ServiceEdge*> out;
  out.reserve(edge_index_.size());
  edge_index_.for_each([&](const auto&, const std::uint32_t& slot) {
    out.push_back(&edge_pool_.get(slot));
  });
  std::sort(out.begin(), out.end(),
            [](const ServiceEdge* a, const ServiceEdge* b) {
              return a->id < b->id;
            });
  return out;
}

}  // namespace p2prm::graph

#include "graph/resource_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace p2prm::graph {

StateIndex ResourceGraph::add_state(const media::MediaFormat& format) {
  const auto it = state_index_.find(format);
  if (it != state_index_.end()) return it->second;
  const StateIndex idx = states_.size();
  states_.push_back(format);
  state_index_[format] = idx;
  out_.emplace_back();
  return idx;
}

std::optional<StateIndex> ResourceGraph::find_state(
    const media::MediaFormat& format) const {
  const auto it = state_index_.find(format);
  if (it == state_index_.end()) return std::nullopt;
  return it->second;
}

const media::MediaFormat& ResourceGraph::state(StateIndex i) const {
  return states_.at(i);
}

void ResourceGraph::add_service(util::ServiceId id, util::PeerId peer,
                                const media::TranscoderType& type) {
  if (edges_.count(id)) {
    throw std::logic_error("ResourceGraph: duplicate service id " +
                           util::to_string(id));
  }
  ServiceEdge edge;
  edge.id = id;
  edge.peer = peer;
  edge.type = type;
  edge.from = add_state(type.input);
  edge.to = add_state(type.output);
  out_[edge.from].push_back(id);
  by_peer_[peer].push_back(id);
  edges_.emplace(id, edge);
  ++epoch_;
}

bool ResourceGraph::remove_service(util::ServiceId id) {
  const auto it = edges_.find(id);
  if (it == edges_.end()) return false;
  auto& adj = out_[it->second.from];
  adj.erase(std::remove(adj.begin(), adj.end(), id), adj.end());
  const auto host = by_peer_.find(it->second.peer);
  if (host != by_peer_.end()) {
    auto& owned = host->second;
    owned.erase(std::remove(owned.begin(), owned.end(), id), owned.end());
    if (owned.empty()) by_peer_.erase(host);
  }
  edges_.erase(it);
  ++epoch_;
  return true;
}

std::size_t ResourceGraph::remove_peer(util::PeerId peer) {
  const auto it = by_peer_.find(peer);
  if (it == by_peer_.end()) return 0;
  // Copy: remove_service() edits the indexed vector we are walking.
  const std::vector<util::ServiceId> doomed = it->second;
  for (auto id : doomed) remove_service(id);
  return doomed.size();
}

bool ResourceGraph::has_service(util::ServiceId id) const {
  return edges_.count(id) != 0;
}

const ServiceEdge& ResourceGraph::service(util::ServiceId id) const {
  const auto it = edges_.find(id);
  if (it == edges_.end()) {
    throw std::out_of_range("ResourceGraph: unknown service " +
                            util::to_string(id));
  }
  return it->second;
}

void ResourceGraph::set_service_load(util::ServiceId id, double load) {
  const auto it = edges_.find(id);
  if (it == edges_.end()) {
    throw std::out_of_range("ResourceGraph: unknown service " +
                            util::to_string(id));
  }
  if (it->second.load != load) ++epoch_;
  it->second.load = load;
}

std::vector<const ServiceEdge*> ResourceGraph::edges_from(StateIndex v) const {
  std::vector<const ServiceEdge*> out;
  if (v >= out_.size()) return out;
  out.reserve(out_[v].size());
  for (auto id : out_[v]) out.push_back(&edges_.at(id));
  return out;
}

std::vector<const ServiceEdge*> ResourceGraph::services_of(
    util::PeerId peer) const {
  std::vector<const ServiceEdge*> out;
  const auto it = by_peer_.find(peer);
  if (it == by_peer_.end()) return out;
  out.reserve(it->second.size());
  for (auto id : it->second) out.push_back(&edges_.at(id));
  // Deterministic order regardless of insertion sequence.
  std::sort(out.begin(), out.end(),
            [](const ServiceEdge* a, const ServiceEdge* b) {
              return a->id < b->id;
            });
  return out;
}

std::vector<const ServiceEdge*> ResourceGraph::all_services() const {
  std::vector<const ServiceEdge*> out;
  out.reserve(edges_.size());
  for (const auto& [_, e] : edges_) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [](const ServiceEdge* a, const ServiceEdge* b) {
              return a->id < b->id;
            });
  return out;
}

}  // namespace p2prm::graph

#include "graph/path_search.hpp"

#include <deque>

namespace p2prm::graph {

std::vector<EdgePath> bfs_paths(const ResourceGraph& graph, StateIndex start,
                                StateIndex goal, const PrunePredicate& accept,
                                SearchStats* stats) {
  SearchStats local;
  std::vector<EdgePath> found;
  if (start >= graph.state_count() || goal >= graph.state_count()) {
    if (stats) *stats = local;
    return found;
  }

  // Fig. 3: queue of vertices paired with the execution sequence that
  // reached them.
  struct Item {
    StateIndex v;
    EdgePath seq;
  };
  std::deque<Item> queue;
  queue.push_back({start, {}});
  local.sequences_enqueued = 1;
  std::vector<bool> expanded(graph.state_count(), false);

  while (!queue.empty()) {
    Item item = std::move(queue.front());
    queue.pop_front();
    ++local.vertices_popped;

    // "if v has not been visited before and e_seq fulfills requirements".
    // v_sol is never expanded, so it never becomes visited and every
    // arrival produces a candidate.
    if (item.v != goal && expanded[item.v]) continue;
    if (accept && !accept(item.seq)) {
      ++local.pruned;
      continue;
    }
    if (item.v == goal) {
      if (!item.seq.empty()) {  // start==goal with empty seq is not a task
        ++local.candidates_found;
        found.push_back(item.seq);
      }
      continue;
    }
    expanded[item.v] = true;
    for (const ServiceEdge* e : graph.edges_from(item.v)) {
      EdgePath next = item.seq;
      next.push_back(e);
      queue.push_back({e->to, std::move(next)});
      ++local.sequences_enqueued;
    }
  }
  if (stats) *stats = local;
  return found;
}

namespace {
void dfs(const ResourceGraph& graph, StateIndex v, StateIndex goal,
         std::size_t max_hops, const PrunePredicate& accept,
         std::vector<bool>& on_path, EdgePath& seq,
         std::vector<EdgePath>& found, SearchStats& stats) {
  ++stats.vertices_popped;
  if (accept && !accept(seq)) {
    ++stats.pruned;
    return;
  }
  if (v == goal && !seq.empty()) {
    ++stats.candidates_found;
    found.push_back(seq);
    return;  // simple paths: do not extend beyond the goal
  }
  if (seq.size() >= max_hops) return;
  on_path[v] = true;
  for (const ServiceEdge* e : graph.edges_from(v)) {
    if (on_path[e->to]) continue;
    seq.push_back(e);
    ++stats.sequences_enqueued;
    dfs(graph, e->to, goal, max_hops, accept, on_path, seq, found, stats);
    seq.pop_back();
  }
  on_path[v] = false;
}
}  // namespace

std::vector<EdgePath> all_simple_paths(const ResourceGraph& graph,
                                       StateIndex start, StateIndex goal,
                                       std::size_t max_hops,
                                       const PrunePredicate& accept,
                                       SearchStats* stats) {
  SearchStats local;
  std::vector<EdgePath> found;
  if (start < graph.state_count() && goal < graph.state_count()) {
    std::vector<bool> on_path(graph.state_count(), false);
    EdgePath seq;
    dfs(graph, start, goal, max_hops, accept, on_path, seq, found, local);
  }
  if (stats) *stats = local;
  return found;
}

bool reachable(const ResourceGraph& graph, StateIndex start, StateIndex goal) {
  if (start >= graph.state_count() || goal >= graph.state_count()) return false;
  if (start == goal) return true;
  std::vector<bool> seen(graph.state_count(), false);
  std::deque<StateIndex> queue{start};
  seen[start] = true;
  while (!queue.empty()) {
    const StateIndex v = queue.front();
    queue.pop_front();
    for (const ServiceEdge* e : graph.edges_from(v)) {
      if (e->to == goal) return true;
      if (!seen[e->to]) {
        seen[e->to] = true;
        queue.push_back(e->to);
      }
    }
  }
  return false;
}

}  // namespace p2prm::graph

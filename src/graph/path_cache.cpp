#include "graph/path_cache.hpp"

namespace p2prm::graph {

void PathCache::invalidate_if_stale(const ResourceGraph& graph) {
  const std::uint64_t now = graph.epoch();
  if (primed_ && now == seen_epoch_) return;
  if (!entries_.empty()) {
    entries_.clear();
    ++stats_.invalidations;
  }
  seen_epoch_ = now;
  primed_ = true;
}

std::vector<EdgePath> PathCache::bfs_paths(const ResourceGraph& graph,
                                           StateIndex start, StateIndex goal,
                                           SearchStats* stats) {
  invalidate_if_stale(graph);
  const Key key{start, goal};
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    const auto paths = graph::bfs_paths(graph, start, goal, {}, stats);
    // After: bfs_paths assigns the whole SearchStats, so the miss must be
    // recorded on top of (not before) the traversal counters.
    if (stats) ++stats->cache_misses;
    std::vector<IdPath> ids;
    ids.reserve(paths.size());
    for (const auto& path : paths) {
      IdPath seq;
      seq.reserve(path.size());
      for (const ServiceEdge* e : path) seq.push_back(e->id);
      ids.push_back(std::move(seq));
    }
    it = entries_.emplace(key, std::move(ids)).first;
    return paths;
  }
  ++stats_.hits;
  if (stats) ++stats->cache_hits;
  // Re-materialize against the live graph: ids are stable, pointers and
  // loads are read fresh so hit results carry current ServiceEdge state.
  std::vector<EdgePath> out;
  out.reserve(it->second.size());
  for (const auto& seq : it->second) {
    EdgePath path;
    path.reserve(seq.size());
    for (auto id : seq) path.push_back(&graph.service(id));
    out.push_back(std::move(path));
  }
  return out;
}

void PathCache::clear() {
  entries_.clear();
  primed_ = false;
}

void PathCache::publish(obs::MetricsRegistry& registry,
                        obs::Labels labels) const {
  registry.counter("graph.path_cache.hits", labels).set(stats_.hits);
  registry.counter("graph.path_cache.misses", labels).set(stats_.misses);
  registry.counter("graph.path_cache.invalidations", labels)
      .set(stats_.invalidations);
  registry.gauge("graph.path_cache.entries", labels)
      .set(static_cast<double>(entries_.size()));
}

}  // namespace p2prm::graph

// Path search over the resource graph.
//
// Two engines:
//  * bfs_paths(): the paper's Figure 3 traversal, faithfully. A vertex is
//    marked visited when it is *expanded*; the solution vertex is never
//    expanded, so every BFS arrival at v_sol yields one candidate execution
//    sequence. On Figure 1 this enumerates exactly {e1,e2}, {e1,e3},
//    {e1,e4,e5,e8} — the three paths the text lists.
//  * all_simple_paths(): exhaustive DFS enumeration of simple paths up to a
//    hop bound; used by tests and by the "exhaustive" allocator ablation to
//    quantify what Fig. 3's visited-pruning gives up.
//
// Both take a feasibility predicate over the partial sequence so callers
// prune with QoS requirements during the walk, as Fig. 3 does.
#pragma once

#include <functional>
#include <vector>

#include "graph/resource_graph.hpp"

namespace p2prm::graph {

// One candidate execution sequence: service edges in invocation order.
using EdgePath = std::vector<const ServiceEdge*>;

// Return false to prune the partial sequence (QoS cannot be met on any
// extension — the caller guarantees monotonicity).
using PrunePredicate = std::function<bool(const EdgePath& partial)>;

struct SearchStats {
  std::size_t vertices_popped = 0;
  std::size_t sequences_enqueued = 0;
  std::size_t candidates_found = 0;
  std::size_t pruned = 0;
  // PathCache bookkeeping: a hit answers the query from memoized sequences
  // without popping a single vertex; a miss falls through to the BFS above
  // (whose work lands in the counters above as usual).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

// Figure 3 BFS. Returns every candidate sequence reaching `goal` in the
// order discovered (the caller evaluates fairness and keeps the best, as
// the algorithm's f_max loop does). `accept` prunes partial sequences.
[[nodiscard]] std::vector<EdgePath> bfs_paths(const ResourceGraph& graph,
                                              StateIndex start, StateIndex goal,
                                              const PrunePredicate& accept = {},
                                              SearchStats* stats = nullptr);

// Every simple path (no repeated vertex) from start to goal with at most
// `max_hops` edges.
[[nodiscard]] std::vector<EdgePath> all_simple_paths(
    const ResourceGraph& graph, StateIndex start, StateIndex goal,
    std::size_t max_hops, const PrunePredicate& accept = {},
    SearchStats* stats = nullptr);

// True if `goal` is reachable from `start` at all (plain BFS, no pruning).
[[nodiscard]] bool reachable(const ResourceGraph& graph, StateIndex start,
                             StateIndex goal);

}  // namespace p2prm::graph

// Load-epoch-invalidated memoization of Figure 3 BFS path enumeration.
//
// The allocator re-runs the same (start, goal) enumeration for every task
// query between two load reports; at production scale that BFS dominates
// the control-plane hot path. The cache keys on the (start, goal) state
// pair and stores the enumerated candidate sequences as *service ids*, not
// edge pointers: on a hit the sequence is re-materialized against the live
// graph, so callers always observe current ServiceEdge loads.
//
// Invalidation is wholesale by graph epoch: any edge insertion/removal or
// ServiceEdge load update bumps ResourceGraph::epoch(), and the first query
// under a new epoch drops every entry. This makes the cached result
// *exactly* the unpruned bfs_paths() answer, byte for byte, at all times —
// the property path_cache_test.cpp checks under randomized interleavings.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/path_search.hpp"
#include "graph/resource_graph.hpp"
#include "obs/metrics_registry.hpp"

namespace p2prm::graph {

// House-style stats struct (cf. RmStats, NetworkStats): cheap counters the
// cache bumps inline, snapshotted via stats()/publish().
struct PathCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  // Times the whole cache was dropped because the graph epoch moved.
  std::uint64_t invalidations = 0;
};

class PathCache {
 public:

  // Unpruned Figure 3 enumeration from `start` to `goal`, served from the
  // cache when the graph epoch has not moved since the entry was computed.
  // Identical (including order) to graph::bfs_paths(graph, start, goal).
  // On a hit, only stats->cache_hits is touched; on a miss the underlying
  // search fills the traversal counters as usual.
  [[nodiscard]] std::vector<EdgePath> bfs_paths(const ResourceGraph& graph,
                                                StateIndex start,
                                                StateIndex goal,
                                                SearchStats* stats = nullptr);

  void clear();
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const PathCacheStats& stats() const { return stats_; }
  // Writes graph.path_cache.* (hit/miss/invalidation counters plus an
  // entries gauge) under `labels`.
  void publish(obs::MetricsRegistry& registry, obs::Labels labels = {}) const;

 private:
  struct Key {
    StateIndex start;
    StateIndex goal;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return k.start * 0x9e3779b97f4a7c15ULL ^ k.goal;
    }
  };
  using IdPath = std::vector<util::ServiceId>;

  void invalidate_if_stale(const ResourceGraph& graph);

  std::unordered_map<Key, std::vector<IdPath>, KeyHash> entries_;
  std::uint64_t seen_epoch_ = 0;
  bool primed_ = false;  // false until the first query records an epoch
  PathCacheStats stats_;
};

}  // namespace p2prm::graph

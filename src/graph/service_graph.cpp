#include "graph/service_graph.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace p2prm::graph {

std::string_view task_state_name(TaskState s) {
  switch (s) {
    case TaskState::Composing: return "composing";
    case TaskState::Running: return "running";
    case TaskState::Completed: return "completed";
    case TaskState::Failed: return "failed";
    case TaskState::Rejected: return "rejected";
    case TaskState::Redirected: return "redirected";
  }
  return "?";
}

ServiceGraph::ServiceGraph(util::TaskId task, util::PeerId source_peer,
                           util::ObjectId object, util::PeerId sink_peer,
                           media::MediaFormat source_format,
                           media::MediaFormat target_format)
    : task_(task),
      source_peer_(source_peer),
      object_(object),
      sink_peer_(sink_peer),
      source_format_(source_format),
      target_format_(target_format) {}

void ServiceGraph::add_hop(ServiceHop hop) { hops_.push_back(std::move(hop)); }

void ServiceGraph::substitute_hop(std::size_t i, const ServiceHop& replacement) {
  if (i >= hops_.size()) {
    throw std::out_of_range("ServiceGraph::substitute_hop: bad index");
  }
  if (replacement.type != hops_[i].type) {
    throw std::invalid_argument(
        "ServiceGraph::substitute_hop: replacement must offer the same "
        "conversion");
  }
  hops_[i] = replacement;
}

std::vector<util::PeerId> ServiceGraph::participants() const {
  std::vector<util::PeerId> out;
  out.push_back(source_peer_);
  for (const auto& h : hops_) out.push_back(h.peer);
  out.push_back(sink_peer_);
  return out;
}

bool ServiceGraph::involves(util::PeerId peer) const {
  if (peer == source_peer_ || peer == sink_peer_) return true;
  return std::any_of(hops_.begin(), hops_.end(),
                     [&](const ServiceHop& h) { return h.peer == peer; });
}

std::vector<std::size_t> ServiceGraph::hops_on(util::PeerId peer) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (hops_[i].peer == peer) out.push_back(i);
  }
  return out;
}

util::SimDuration ServiceGraph::estimated_execution_time() const {
  util::SimDuration total = 0;
  for (const auto& h : hops_) {
    total += h.estimated_compute_time + h.estimated_transfer_time;
  }
  return total;
}

bool ServiceGraph::chain_consistent() const {
  if (hops_.empty()) return source_format_ == target_format_;
  if (hops_.front().type.input != source_format_) return false;
  if (hops_.back().type.output != target_format_) return false;
  for (std::size_t i = 0; i + 1 < hops_.size(); ++i) {
    if (hops_[i].type.output != hops_[i + 1].type.input) return false;
  }
  return true;
}

std::string ServiceGraph::to_string() const {
  std::ostringstream os;
  os << "task " << task_ << " [" << task_state_name(state) << "] "
     << "peer " << source_peer_ << " (" << source_format_.to_string() << ")";
  for (const auto& h : hops_) {
    os << " -> T@" << h.peer << " (" << h.type.output.to_string() << ")";
  }
  os << " -> peer " << sink_peer_;
  return os.str();
}

}  // namespace p2prm::graph

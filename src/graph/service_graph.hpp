// The application service graph G_s (§3.3).
//
// "The vertices of the service graph represent objects or services of the
// system, while the edges represent connections between the peers."
//
// For a streaming/transcoding task G_s is a chain: the source object's
// peer, then each chosen transcoder hop, then the requesting peer. We keep
// the per-hop resource estimates the RM computed at composition time so
// adaptation can later compare predictions against profiler measurements.
#pragma once

#include <string>
#include <vector>

#include "media/format.hpp"
#include "media/transcoder.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace p2prm::graph {

struct ServiceHop {
  util::ServiceId service;
  util::PeerId peer;
  media::TranscoderType type;
  // RM estimates at composition time (§3.3 Execution_time components).
  double estimated_ops = 0.0;                    // CPU work for this hop
  util::SimDuration estimated_compute_time = 0;  // under load at composition
  util::SimDuration estimated_transfer_time = 0; // link to the next hop
};

enum class TaskState {
  Composing,   // RM searching / sending graph composition messages
  Running,     // all hops connected, media flowing
  Completed,   // delivered; deadline verdict recorded
  Failed,      // unrecoverable (no substitute peer found)
  Rejected,    // admission control turned the task away
  Redirected,  // forwarded to another domain's RM
};
[[nodiscard]] std::string_view task_state_name(TaskState s);

class ServiceGraph {
 public:
  ServiceGraph() = default;
  ServiceGraph(util::TaskId task, util::PeerId source_peer,
               util::ObjectId object, util::PeerId sink_peer,
               media::MediaFormat source_format,
               media::MediaFormat target_format);

  void add_hop(ServiceHop hop);
  // Replace the peer serving hop `i` (recovery after a peer failure, §4.1).
  void substitute_hop(std::size_t i, const ServiceHop& replacement);

  [[nodiscard]] util::TaskId task() const { return task_; }
  [[nodiscard]] util::PeerId source_peer() const { return source_peer_; }
  [[nodiscard]] util::ObjectId object() const { return object_; }
  [[nodiscard]] util::PeerId sink_peer() const { return sink_peer_; }
  [[nodiscard]] const media::MediaFormat& source_format() const {
    return source_format_;
  }
  [[nodiscard]] const media::MediaFormat& target_format() const {
    return target_format_;
  }
  [[nodiscard]] const std::vector<ServiceHop>& hops() const { return hops_; }
  [[nodiscard]] std::size_t hop_count() const { return hops_.size(); }

  // Every peer participating (source, transcoder hosts, sink) in order.
  [[nodiscard]] std::vector<util::PeerId> participants() const;
  [[nodiscard]] bool involves(util::PeerId peer) const;
  // Indices of hops hosted on `peer`.
  [[nodiscard]] std::vector<std::size_t> hops_on(util::PeerId peer) const;

  // Sum of the per-hop estimates: the RM's §3.3 Execution_time prediction.
  [[nodiscard]] util::SimDuration estimated_execution_time() const;

  // Chain consistency: hop i's output format equals hop i+1's input, first
  // input matches the source format, last output matches the target.
  [[nodiscard]] bool chain_consistent() const;

  [[nodiscard]] std::string to_string() const;

  TaskState state = TaskState::Composing;
  util::SimTime composed_at = -1;
  util::SimTime started_at = -1;
  util::SimTime completed_at = -1;

 private:
  util::TaskId task_;
  util::PeerId source_peer_;
  util::ObjectId object_;
  util::PeerId sink_peer_;
  media::MediaFormat source_format_{};
  media::MediaFormat target_format_{};
  std::vector<ServiceHop> hops_;
};

}  // namespace p2prm::graph

// Format catalogs: the universe of media formats and feasible transcoding
// steps an experiment works with.
//
// Two constructions:
//  * figure1_catalog(): the exact 5-state, 8-edge example of the paper's
//    Figure 1 (v1..v5, e1..e8, with the three v1->v3 paths the text lists).
//  * ladder_catalog(): a parameterized codec x resolution x bitrate ladder
//    whose sensible conversions form the state space for the large
//    experiments.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "media/transcoder.hpp"
#include "util/rng.hpp"

namespace p2prm::media {

class Catalog {
 public:
  // Adds a format; returns its dense index (stable, insertion-ordered).
  std::size_t add_format(const MediaFormat& f);
  // Registers a conversion between two known formats.
  void add_conversion(const MediaFormat& from, const MediaFormat& to);

  [[nodiscard]] std::size_t format_count() const { return formats_.size(); }
  [[nodiscard]] const std::vector<MediaFormat>& formats() const {
    return formats_;
  }
  [[nodiscard]] const std::vector<TranscoderType>& conversions() const {
    return conversions_;
  }
  [[nodiscard]] bool has_format(const MediaFormat& f) const;
  [[nodiscard]] std::size_t index_of(const MediaFormat& f) const;
  [[nodiscard]] const MediaFormat& format(std::size_t index) const;

  // Conversions whose input is `f`.
  [[nodiscard]] std::vector<TranscoderType> conversions_from(
      const MediaFormat& f) const;

  // A uniformly random format / conversion (workload synthesis).
  [[nodiscard]] const MediaFormat& random_format(util::Rng& rng) const;
  [[nodiscard]] const TranscoderType& random_conversion(util::Rng& rng) const;

 private:
  std::vector<MediaFormat> formats_;
  std::vector<TranscoderType> conversions_;
  std::unordered_map<MediaFormat, std::size_t> index_;
};

// ---- Figure 1 ----------------------------------------------------------
// The concrete formats behind v1..v5 and the conversions behind e1..e8.
// Vertices (from §4.3's narrative):
//   v1 = 800x600 MPEG-2 512kbps   (source format)
//   v2 = 800x600 MPEG-4 512kbps   (after codec conversion e1)
//   v3 = 640x480 MPEG-4  64kbps   (requested target)
//   v4 = 640x480 MPEG-4 256kbps
//   v5 = 640x480 MPEG-4 128kbps
// Edges: e1: v1->v2, e2: v2->v3, e3: v2->v3 (second provider), e4: v2->v4,
//        e5: v4->v5, e6: v2->v1, e7: v5->v4, e8: v5->v3.
// The simple v1->v3 paths are exactly {e1,e2}, {e1,e3}, {e1,e4,e5,e8} as
// the paper states.
struct Figure1Catalog {
  Catalog catalog;
  MediaFormat v1, v2, v3, v4, v5;
  // Edge list in paper order (e1..e8); e2 and e3 share a TranscoderType and
  // are distinguished by being hosted on different peers.
  std::vector<TranscoderType> edges;
};
[[nodiscard]] Figure1Catalog figure1_catalog();

// ---- Parameterized ladder ----------------------------------------------
struct LadderConfig {
  std::vector<Codec> codecs{Codec::MPEG2, Codec::MPEG4};
  std::vector<Resolution> resolutions{kRes800x600, kRes640x480, kRes320x240};
  std::vector<std::uint32_t> bitrates_kbps{512, 256, 128, 64};
  // Conversions are generated between formats that differ in at most
  // `max_aspect_changes` of {codec, resolution-step, bitrate-step}, always
  // moving "down" (is_sensible_conversion).
  int max_aspect_changes = 2;
  // Only adjacent rungs (one step down in resolution/bitrate) are directly
  // convertible; multi-rung targets require chains — this is what makes
  // multi-hop service graphs necessary, as in the paper's example.
  bool adjacent_steps_only = true;
};
[[nodiscard]] Catalog ladder_catalog(const LadderConfig& config = {});

// Random media object in a catalog format (Zipf-popular names).
[[nodiscard]] MediaObject make_object(util::ObjectId id, const MediaFormat& f,
                                      double duration_s, util::Rng& rng);

}  // namespace p2prm::media

#include "media/format.hpp"

#include "util/table.hpp"

namespace p2prm::media {

std::string_view codec_name(Codec c) {
  switch (c) {
    case Codec::MPEG2: return "MPEG-2";
    case Codec::MPEG4: return "MPEG-4";
    case Codec::H263: return "H.263";
    case Codec::MJPEG: return "MJPEG";
  }
  return "?";
}

double codec_complexity(Codec c) {
  switch (c) {
    case Codec::MJPEG: return 0.5;
    case Codec::H263: return 0.8;
    case Codec::MPEG2: return 1.0;
    case Codec::MPEG4: return 1.4;
  }
  return 1.0;
}

std::string MediaFormat::to_string() const {
  return util::format("%ux%u %s %ukbps", resolution.width, resolution.height,
                      std::string(codec_name(codec)).c_str(), bitrate_kbps);
}

}  // namespace p2prm::media

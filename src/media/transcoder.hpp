// Transcoder types and their resource cost model.
//
// The paper's services are transcoders ("the transcoding services available
// in each processor", §3.1). We cannot run real codecs inside the
// simulator, so a transcoder is represented by its *resource footprint*:
// how much CPU work one media-second of conversion costs and how much
// bandwidth the output stream occupies. Allocation and scheduling only
// ever consume this footprint, so the substitution preserves behaviour
// (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "media/format.hpp"

namespace p2prm::media {

// What a transcoding step changes. A single service may change several
// aspects at once (e.g. downscale + bitrate reduction).
enum class TranscodeAspect : std::uint8_t {
  None = 0,
  CodecChange = 1 << 0,
  Downscale = 1 << 1,
  Upscale = 1 << 2,
  BitrateReduce = 1 << 3,
  BitrateIncrease = 1 << 4,
};
[[nodiscard]] constexpr TranscodeAspect operator|(TranscodeAspect a,
                                                  TranscodeAspect b) {
  return static_cast<TranscodeAspect>(static_cast<std::uint8_t>(a) |
                                      static_cast<std::uint8_t>(b));
}
[[nodiscard]] constexpr bool has_aspect(TranscodeAspect set, TranscodeAspect a) {
  return (static_cast<std::uint8_t>(set) & static_cast<std::uint8_t>(a)) != 0;
}

// The *type* of a transcoding service: a format conversion. Instances of a
// type live on peers (see overlay::ServiceInstance).
struct TranscoderType {
  MediaFormat input;
  MediaFormat output;

  friend constexpr auto operator<=>(const TranscoderType&,
                                    const TranscoderType&) = default;

  [[nodiscard]] TranscodeAspect aspects() const;
  [[nodiscard]] std::string to_string() const;

  // Deterministic identity usable in Bloom summaries; collision-resistant
  // enough for simulation-scale catalogs.
  [[nodiscard]] std::uint64_t type_key() const;
};

struct CostModelConfig {
  // Ops per (pixel/second) of decode + encode work; multiplied by codec
  // complexity. Calibrated so 800x600 MPEG-2 -> MPEG-4 costs ~23 Mops per
  // media-second (realtime on a mid-range simulated peer of 50 Mops/s).
  double ops_per_pixel_per_s = 25.0;
  double base_ops_per_s = 1.0e6;  // fixed per-stream overhead
};

// CPU work (abstract ops) to transcode one second of media through `type`.
[[nodiscard]] double transcode_ops_per_media_second(
    const TranscoderType& type, const CostModelConfig& config = {});

// Output network footprint in bytes per media-second.
[[nodiscard]] double output_bytes_per_media_second(const TranscoderType& type);

// Whether this conversion is one a sane transcoder library offers (no
// upscaling/bitrate inflation, at most one codec hop at a time for
// catalog-generated types).
[[nodiscard]] bool is_sensible_conversion(const MediaFormat& in,
                                          const MediaFormat& out);

}  // namespace p2prm::media

// Media formats — the "application states" of the paper's resource graph.
//
// In the motivating transcoding application, a vertex of G_r is a media
// presentation format (§4.3's example: "800x600 MPEG-2 video at 512 Kbps").
// Objects carry the metadata the paper lists in §3.1 item 5: "hash value,
// bitrate, resolution, codec".
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/ids.hpp"

namespace p2prm::media {

enum class Codec : std::uint8_t { MPEG2, MPEG4, H263, MJPEG };

[[nodiscard]] std::string_view codec_name(Codec c);
// Relative computational complexity of decoding/encoding this codec
// (MJPEG cheapest, MPEG-4 most expensive). Feeds the transcode cost model.
[[nodiscard]] double codec_complexity(Codec c);

struct Resolution {
  std::uint16_t width = 0;
  std::uint16_t height = 0;

  [[nodiscard]] std::uint32_t pixels() const {
    return static_cast<std::uint32_t>(width) * height;
  }
  friend constexpr auto operator<=>(const Resolution&, const Resolution&) = default;
};

// Common ladder used by catalogs and workloads.
inline constexpr Resolution kRes800x600{800, 600};
inline constexpr Resolution kRes640x480{640, 480};
inline constexpr Resolution kRes320x240{320, 240};
inline constexpr Resolution kRes176x144{176, 144};

struct MediaFormat {
  Codec codec = Codec::MPEG2;
  Resolution resolution{};
  std::uint32_t bitrate_kbps = 0;

  friend constexpr auto operator<=>(const MediaFormat&, const MediaFormat&) = default;

  [[nodiscard]] std::string to_string() const;
};

// A stored media object (§3.1 item 5): content identified by a hash, plus
// its presentation format and extent.
struct MediaObject {
  util::ObjectId id;
  std::string name;
  MediaFormat format;
  double duration_s = 0.0;
  std::uint64_t content_hash = 0;

  [[nodiscard]] std::uint64_t size_bytes() const {
    return static_cast<std::uint64_t>(static_cast<double>(format.bitrate_kbps) *
                                      1000.0 / 8.0 * duration_s);
  }
};

}  // namespace p2prm::media

template <>
struct std::hash<p2prm::media::MediaFormat> {
  std::size_t operator()(const p2prm::media::MediaFormat& f) const noexcept {
    std::uint64_t x = static_cast<std::uint64_t>(f.codec);
    x = x * 1000003u + f.resolution.width;
    x = x * 1000003u + f.resolution.height;
    x = x * 1000003u + f.bitrate_kbps;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return static_cast<std::size_t>(x);
  }
};

#include "media/catalog.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace p2prm::media {

std::size_t Catalog::add_format(const MediaFormat& f) {
  const auto it = index_.find(f);
  if (it != index_.end()) return it->second;
  const std::size_t idx = formats_.size();
  formats_.push_back(f);
  index_[f] = idx;
  return idx;
}

void Catalog::add_conversion(const MediaFormat& from, const MediaFormat& to) {
  if (!has_format(from) || !has_format(to)) {
    throw std::logic_error("Catalog::add_conversion: unknown format");
  }
  conversions_.push_back(TranscoderType{from, to});
}

bool Catalog::has_format(const MediaFormat& f) const {
  return index_.count(f) != 0;
}

std::size_t Catalog::index_of(const MediaFormat& f) const {
  const auto it = index_.find(f);
  if (it == index_.end()) {
    throw std::out_of_range("Catalog: unknown format " + f.to_string());
  }
  return it->second;
}

const MediaFormat& Catalog::format(std::size_t index) const {
  return formats_.at(index);
}

std::vector<TranscoderType> Catalog::conversions_from(
    const MediaFormat& f) const {
  std::vector<TranscoderType> out;
  for (const auto& c : conversions_) {
    if (c.input == f) out.push_back(c);
  }
  return out;
}

const MediaFormat& Catalog::random_format(util::Rng& rng) const {
  if (formats_.empty()) throw std::logic_error("Catalog: no formats");
  return formats_[rng.below(formats_.size())];
}

const TranscoderType& Catalog::random_conversion(util::Rng& rng) const {
  if (conversions_.empty()) throw std::logic_error("Catalog: no conversions");
  return conversions_[rng.below(conversions_.size())];
}

Figure1Catalog figure1_catalog() {
  Figure1Catalog fig;
  fig.v1 = MediaFormat{Codec::MPEG2, kRes800x600, 512};
  fig.v2 = MediaFormat{Codec::MPEG4, kRes800x600, 512};
  fig.v3 = MediaFormat{Codec::MPEG4, kRes640x480, 64};
  fig.v4 = MediaFormat{Codec::MPEG4, kRes640x480, 256};
  fig.v5 = MediaFormat{Codec::MPEG4, kRes640x480, 128};
  for (const auto& f : {fig.v1, fig.v2, fig.v3, fig.v4, fig.v5}) {
    fig.catalog.add_format(f);
  }
  // e1..e8; e3 duplicates e2's type (two peers offering the same service).
  fig.edges = {
      TranscoderType{fig.v1, fig.v2},  // e1: codec conversion
      TranscoderType{fig.v2, fig.v3},  // e2: downscale + reduce
      TranscoderType{fig.v2, fig.v3},  // e3: same service, other peer
      TranscoderType{fig.v2, fig.v4},  // e4
      TranscoderType{fig.v4, fig.v5},  // e5
      TranscoderType{fig.v2, fig.v1},  // e6: reverse codec conversion
      TranscoderType{fig.v5, fig.v4},  // e7: reverse (bitrate increase)
      TranscoderType{fig.v5, fig.v3},  // e8
  };
  for (const auto& e : fig.edges) {
    fig.catalog.add_conversion(e.input, e.output);
  }
  return fig;
}

namespace {
// Index of x in v, or -1.
template <typename T>
int find_index(const std::vector<T>& v, const T& x) {
  const auto it = std::find(v.begin(), v.end(), x);
  return it == v.end() ? -1 : static_cast<int>(it - v.begin());
}
}  // namespace

Catalog ladder_catalog(const LadderConfig& config) {
  Catalog cat;
  for (Codec c : config.codecs) {
    for (const Resolution& r : config.resolutions) {
      for (std::uint32_t b : config.bitrates_kbps) {
        cat.add_format(MediaFormat{c, r, b});
      }
    }
  }
  const auto& formats = cat.formats();
  for (const auto& from : formats) {
    for (const auto& to : formats) {
      if (!is_sensible_conversion(from, to)) continue;
      int changes = 0;
      if (from.codec != to.codec) ++changes;
      const int ri = find_index(config.resolutions, from.resolution);
      const int rj = find_index(config.resolutions, to.resolution);
      const int bi = find_index(config.bitrates_kbps, from.bitrate_kbps);
      const int bj = find_index(config.bitrates_kbps, to.bitrate_kbps);
      const int res_step = std::abs(ri - rj);
      const int bit_step = std::abs(bi - bj);
      if (res_step > 0) ++changes;
      if (bit_step > 0) ++changes;
      if (changes == 0 || changes > config.max_aspect_changes) continue;
      if (config.adjacent_steps_only && (res_step > 1 || bit_step > 1)) continue;
      cat.add_conversion(from, to);
    }
  }
  return cat;
}

MediaObject make_object(util::ObjectId id, const MediaFormat& f,
                        double duration_s, util::Rng& rng) {
  MediaObject obj;
  obj.id = id;
  obj.name = "object-" + util::to_string(id);
  obj.format = f;
  obj.duration_s = duration_s;
  obj.content_hash = rng.next();
  return obj;
}

}  // namespace p2prm::media

#include "media/transcoder.hpp"

#include "bloom/bloom_filter.hpp"
#include "util/table.hpp"

namespace p2prm::media {

TranscodeAspect TranscoderType::aspects() const {
  TranscodeAspect a = TranscodeAspect::None;
  if (input.codec != output.codec) a = a | TranscodeAspect::CodecChange;
  if (output.resolution.pixels() < input.resolution.pixels()) {
    a = a | TranscodeAspect::Downscale;
  } else if (output.resolution.pixels() > input.resolution.pixels()) {
    a = a | TranscodeAspect::Upscale;
  }
  if (output.bitrate_kbps < input.bitrate_kbps) {
    a = a | TranscodeAspect::BitrateReduce;
  } else if (output.bitrate_kbps > input.bitrate_kbps) {
    a = a | TranscodeAspect::BitrateIncrease;
  }
  return a;
}

std::string TranscoderType::to_string() const {
  return input.to_string() + " -> " + output.to_string();
}

std::uint64_t TranscoderType::type_key() const {
  // Hash explicit fields, never raw struct bytes: struct padding is
  // uninitialized and would make equal types hash differently.
  const std::uint64_t packed[2] = {
      static_cast<std::uint64_t>(input.codec) |
          (std::uint64_t{input.resolution.width} << 8) |
          (std::uint64_t{input.resolution.height} << 24) |
          (std::uint64_t{input.bitrate_kbps} << 40),
      static_cast<std::uint64_t>(output.codec) |
          (std::uint64_t{output.resolution.width} << 8) |
          (std::uint64_t{output.resolution.height} << 24) |
          (std::uint64_t{output.bitrate_kbps} << 40),
  };
  return bloom::hash_bytes(packed, sizeof packed).h1;
}

double transcode_ops_per_media_second(const TranscoderType& type,
                                      const CostModelConfig& config) {
  // Decode cost scales with input pixel rate and codec, encode with output.
  const double decode = static_cast<double>(type.input.resolution.pixels()) *
                        config.ops_per_pixel_per_s *
                        codec_complexity(type.input.codec);
  const double encode = static_cast<double>(type.output.resolution.pixels()) *
                        config.ops_per_pixel_per_s *
                        codec_complexity(type.output.codec);
  // Pure bitrate shaping without codec change is cheaper (no full re-encode
  // of motion estimation): apply a discount.
  double encode_factor = 1.0;
  const TranscodeAspect a = type.aspects();
  if (!has_aspect(a, TranscodeAspect::CodecChange) &&
      !has_aspect(a, TranscodeAspect::Downscale) &&
      !has_aspect(a, TranscodeAspect::Upscale)) {
    encode_factor = 0.4;
  }
  return config.base_ops_per_s + decode + encode * encode_factor;
}

double output_bytes_per_media_second(const TranscoderType& type) {
  return static_cast<double>(type.output.bitrate_kbps) * 1000.0 / 8.0;
}

bool is_sensible_conversion(const MediaFormat& in, const MediaFormat& out) {
  if (in == out) return false;
  if (out.resolution.pixels() > in.resolution.pixels()) return false;
  if (out.bitrate_kbps > in.bitrate_kbps) return false;
  return true;
}

}  // namespace p2prm::media

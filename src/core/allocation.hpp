// Task allocation (§4.3, Figure 3).
//
// "The Resource Manager uses the Breadth-First-Search (BFS) algorithm to
// search for services (edges) connecting the initial and final requested
// application states ... It prunes the possible solutions using the
// requested QoS requirements q ... Among the allocations that satisfy the
// QoS requirements, the algorithm returns the one that results to the
// maximum fairness of the load distribution among the peers."
//
// Besides the paper's algorithm we provide the baselines the experiments
// compare against (min-hop, random, least-loaded) and an exhaustive
// simple-path enumerator used as an ablation upper bound for the BFS's
// visited-vertex pruning.
#pragma once

#include <memory>
#include <string>

#include "core/config.hpp"
#include "core/info_base.hpp"
#include "graph/path_search.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"

namespace p2prm::core {

struct AllocationRequest {
  util::TaskId task;
  QoSRequirements q;
  util::PeerId sink;  // requesting peer (media destination)
  util::SimTime now = 0;
  util::SimTime submitted_at = 0;

  [[nodiscard]] util::SimTime absolute_deadline() const {
    return submitted_at + q.deadline;
  }
};

// A fully-evaluated candidate allocation for one (source, target) pair and
// one path through G_r.
struct PathEvaluation {
  bool feasible = false;  // meets the deadline given current loads
  util::SimDuration exec_time = 0;
  util::PeerId source_peer;
  media::MediaObject object;
  media::MediaFormat target{};
  std::vector<graph::ServiceHop> hops;
  // (peer, +ops_rate) deltas this allocation would add.
  std::vector<std::pair<util::PeerId, double>> load_deltas;
  double fairness_after = 0.0;
  double max_utilization_after = 0.0;
};

struct AllocationResult {
  bool found = false;
  graph::ServiceGraph sg;  // composed, state == Composing
  std::vector<std::pair<util::PeerId, double>> load_deltas;
  double fairness_after = 0.0;
  util::SimDuration estimated_execution = 0;
  graph::SearchStats search{};
  std::size_t candidates_considered = 0;
  std::size_t candidates_feasible = 0;
  // On failure: "no-object" (unknown in this domain), "no-path"
  // (structurally impossible), or "deadline" (paths exist, none feasible).
  std::string failure_reason;
};

class Allocator {
 public:
  virtual ~Allocator() = default;
  [[nodiscard]] virtual AllocationResult allocate(
      const InfoBase& info, const net::Transport& network,
      const SystemConfig& config, const AllocationRequest& request,
      util::Rng& rng) const = 0;
  [[nodiscard]] virtual AllocatorKind kind() const = 0;
};

[[nodiscard]] std::unique_ptr<Allocator> make_allocator(AllocatorKind kind);

// ---- shared machinery (exposed for tests and benches) -----------------------

// Estimated compute time of `ops` on `peer`: current backlog plus the work
// at the peer's spare capacity under its effective load (§3.3's
// execution-time components, informed by profiler reports).
[[nodiscard]] util::SimDuration estimate_compute_time(
    const InfoBase& info, const SystemConfig& config, util::PeerId peer,
    double ops);

// Same, additionally blending the profiler-measured mean execution time of
// this service type on this peer (when available and enabled): the
// prediction never undercuts observed reality.
[[nodiscard]] util::SimDuration estimate_service_time(
    const InfoBase& info, const SystemConfig& config, util::PeerId peer,
    double ops, std::uint64_t type_key);

// Full evaluation of one candidate path (possibly empty = direct delivery).
[[nodiscard]] PathEvaluation evaluate_path(
    const InfoBase& info, const net::Transport& network,
    const SystemConfig& config, const AllocationRequest& request,
    const ObjectLocation& source, const media::MediaFormat& target,
    const graph::EdgePath& path);

// Every evaluated candidate across all (source replica, acceptable target,
// path) combinations, using the paper's BFS (or the exhaustive enumerator).
[[nodiscard]] std::vector<PathEvaluation> enumerate_candidates(
    const InfoBase& info, const net::Transport& network,
    const SystemConfig& config, const AllocationRequest& request,
    bool exhaustive, graph::SearchStats* stats);

// Builds the final ServiceGraph from a winning evaluation.
[[nodiscard]] AllocationResult finalize(const AllocationRequest& request,
                                        const PathEvaluation& winner);

}  // namespace p2prm::core

#include "core/trace.hpp"

#include <algorithm>

namespace p2prm::core {

std::string_view trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::TaskSubmitted: return "task.submitted";
    case TraceKind::TaskAdmitted: return "task.admitted";
    case TraceKind::TaskRedirected: return "task.redirected";
    case TraceKind::TaskRejected: return "task.rejected";
    case TraceKind::TaskCompleted: return "task.completed";
    case TraceKind::TaskFailed: return "task.failed";
    case TraceKind::TaskRecovered: return "task.recovered";
    case TraceKind::HopStarted: return "hop.started";
    case TraceKind::HopCompleted: return "hop.completed";
    case TraceKind::PeerJoined: return "peer.joined";
    case TraceKind::PeerLeft: return "peer.left";
    case TraceKind::PeerFailed: return "peer.failed";
    case TraceKind::RmPromoted: return "rm.promoted";
    case TraceKind::RmTakeover: return "rm.takeover";
    case TraceKind::RmDemoted: return "rm.demoted";
  }
  return "?";
}

std::string derive_detail(TraceKind kind, const obs::Attrs& attrs) {
  if (attrs.empty()) return {};
  switch (kind) {
    case TraceKind::RmPromoted:
    case TraceKind::RmTakeover:
      if (const auto* epoch = obs::find_attr(attrs, "epoch")) {
        return "epoch " + obs::to_string(*epoch);
      }
      break;
    case TraceKind::TaskAdmitted:
      if (obs::find_attr(attrs, "hops") != nullptr &&
          obs::find_attr(attrs, "fairness") != nullptr) {
        return util::format("%lld hops, fairness %.3f",
                            static_cast<long long>(obs::attr_int(attrs, "hops")),
                            obs::attr_double(attrs, "fairness"));
      }
      break;
    case TraceKind::TaskRedirected:
      if (const auto* target = obs::find_attr(attrs, "target_rm")) {
        return "to RM " + obs::to_string(*target) + " (" +
               obs::attr_string(attrs, "reason") + ")";
      }
      break;
    case TraceKind::TaskRejected:
    case TraceKind::TaskFailed:
      return obs::attr_string(attrs, "reason");
    case TraceKind::TaskRecovered:
      return obs::attr_string(attrs, "cause");
    case TraceKind::TaskCompleted:
      return obs::attr_string(attrs, "outcome");
    case TraceKind::PeerJoined:
    case TraceKind::PeerLeft:
    case TraceKind::PeerFailed:
      return obs::attr_string(attrs, "reason");
    case TraceKind::RmDemoted:
      if (const auto* successor = obs::find_attr(attrs, "successor")) {
        return "abdicated to " + obs::to_string(*successor);
      }
      return obs::attr_string(attrs, "reason");
    default:
      break;
  }
  std::string out;
  for (const auto& a : attrs) {
    if (!out.empty()) out += ' ';
    out += a.key;
    out += '=';
    out += obs::to_string(a.value);
  }
  return out;
}

Tracer::Tracer(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 16)) {
  events_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void Tracer::record(TraceEvent event) {
  ++recorded_;
  if (events_.size() >= capacity_) {
    // Drop the oldest half; keeping a ring index is not worth the
    // complexity at trace volumes.
    events_.erase(events_.begin(),
                  events_.begin() + static_cast<std::ptrdiff_t>(capacity_ / 2));
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::task_timeline(util::TaskId task) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.task == task) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> Tracer::of_kind(TraceKind kind) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::size_t Tracer::count_of(TraceKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [&](const TraceEvent& e) { return e.kind == kind; }));
}

util::Table Tracer::to_table(std::optional<util::TaskId> task) const {
  util::Table t({"time", "event", "peer", "task", "domain", "detail"});
  for (const auto& e : events_) {
    if (task && e.task != *task) continue;
    t.cell(util::format_time(e.at))
        .cell(std::string(trace_kind_name(e.kind)))
        .cell(util::to_string(e.peer))
        .cell(e.task.valid() ? util::to_string(e.task) : "")
        .cell(e.domain.valid() ? util::to_string(e.domain) : "")
        .cell(e.detail)
        .end_row();
  }
  return t;
}

void Tracer::clear() {
  events_.clear();
  recorded_ = 0;
}

}  // namespace p2prm::core

// Admission control and overload detection (§4.5).
//
// "When admitting a new application task the resource manager estimates
// whether its QoS requirements can be accommodated by the system's current
// resources without overloading the system. If all peers are too loaded to
// provide the requested QoS guarantees, then the task is not admitted ...
// Instead, the task query is redirected to a Resource Manager of another
// domain."
//
// "When the Resource Manager determines that the system is overloaded (for
// example if the processor or network load is constantly above a certain
// threshold for all peers or if the applications do not meet their
// deadlines), some of the currently running application tasks might be
// reassigned."
#pragma once

#include <string>
#include <unordered_map>

#include "core/config.hpp"
#include "core/info_base.hpp"

namespace p2prm::core {

struct AdmissionDecision {
  bool admit = true;
  bool domain_overloaded = false;
  std::string reason;
};

// Pre-allocation gate: refuses outright when every peer in the domain is
// above the overload threshold (allocation could only make things worse),
// and — when the value-based gate is enabled — turns away low-importance
// tasks while the domain is busy.
[[nodiscard]] AdmissionDecision check_admission(const InfoBase& info,
                                                const SystemConfig& config,
                                                double importance = 1e300);

// True when every member's effective utilization exceeds the threshold.
[[nodiscard]] bool domain_overloaded(const InfoBase& info,
                                     const SystemConfig& config);

// Mean effective utilization across the domain (load / capacity). The
// config overload routes the read through the hierarchical aggregate when
// enable_hierarchical_infobase is on (identical value, different path).
[[nodiscard]] double mean_domain_utilization(const InfoBase& info);
[[nodiscard]] double mean_domain_utilization(const InfoBase& info,
                                             const SystemConfig& config);

// Tracks per-peer consecutive overloaded reports ("constantly above a
// certain threshold", not just a blip).
class OverloadDetector {
 public:
  explicit OverloadDetector(double threshold, int consecutive);

  // Feed one profiler report's utilization; returns the updated verdict.
  bool record(util::PeerId peer, double utilization);
  [[nodiscard]] bool overloaded(util::PeerId peer) const;
  void forget(util::PeerId peer);
  [[nodiscard]] std::size_t overloaded_count() const;

 private:
  double threshold_;
  int consecutive_;
  std::unordered_map<util::PeerId, int> streak_;
};

}  // namespace p2prm::core

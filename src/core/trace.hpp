// Structured event tracing.
//
// The middleware emits a typed event at every interesting control-plane
// moment (task lifecycle, membership changes, failover, adaptation). The
// Tracer collects them with simulated timestamps; experiments and examples
// use it to print per-task timelines or audit protocol behaviour without
// scraping logs. Tracing is off unless a Tracer is attached to the System.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/attr.hpp"
#include "util/ids.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace p2prm::core {

enum class TraceKind {
  // task lifecycle
  TaskSubmitted,
  TaskAdmitted,
  TaskRedirected,
  TaskRejected,
  TaskCompleted,
  TaskFailed,
  TaskRecovered,    // re-planned after failure / reassignment / QoS change
  // per-hop service execution (emitted only when SystemConfig::enable_spans;
  // obs::build_task_spans turns these into span trees)
  HopStarted,
  HopCompleted,
  // membership & roles
  PeerJoined,
  PeerLeft,
  PeerFailed,       // detected by the RM
  RmPromoted,
  RmTakeover,
  RmDemoted,
};

[[nodiscard]] std::string_view trace_kind_name(TraceKind kind);

struct TraceEvent {
  util::SimTime at = 0;
  TraceKind kind{};
  util::PeerId peer;        // acting peer (RM for decisions, subject else)
  util::TaskId task;        // invalid for membership events
  util::DomainId domain;    // invalid when not applicable
  obs::Attrs attrs;         // typed payload: reason, hops, fairness, ...
  std::string detail;       // derived from attrs (derive_detail); legacy view
};

// The human-readable one-liner the old free-form `detail` field carried,
// now computed from the typed attrs so emit sites state facts exactly once.
// Kind-aware: reproduces the historical strings byte-for-byte (the golden
// quickstart trace pins them); unknown kinds fall back to "k=v k=v".
[[nodiscard]] std::string derive_detail(TraceKind kind,
                                        const obs::Attrs& attrs);

class Tracer {
 public:
  // `capacity` bounds memory: the buffer keeps the most recent events.
  explicit Tracer(std::size_t capacity = 65536);

  void record(TraceEvent event);

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::uint64_t total_recorded() const { return recorded_; }
  [[nodiscard]] bool dropped_any() const { return recorded_ > events_.size(); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }

  // All events of one task, in order (the per-task timeline).
  [[nodiscard]] std::vector<TraceEvent> task_timeline(util::TaskId task) const;
  [[nodiscard]] std::vector<TraceEvent> of_kind(TraceKind kind) const;
  [[nodiscard]] std::size_t count_of(TraceKind kind) const;

  // Renders events (optionally one task only) as a table.
  [[nodiscard]] util::Table to_table(
      std::optional<util::TaskId> task = std::nullopt) const;

  void clear();

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;  // ring, compacted on overflow
  std::uint64_t recorded_ = 0;
};

}  // namespace p2prm::core

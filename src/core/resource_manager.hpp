// The Resource Manager (§2): leader of a domain.
//
// "The Resource Manager has a global view of the domain in terms of the
// applications in the domain and the utilization of the system resources.
// The responsibility of the Resource Manager is to distribute the
// application objects on the processors to meet the application QoS
// requirements."
//
// Hosted by a PeerNode (RMs "are selected among regular peers"). Owns the
// information base, the allocator, admission control, the adaptation loop
// (failure recovery + overload reassignment), heartbeats, backup-RM
// synchronization and the inter-domain gossip engine.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/admission.hpp"
#include "core/allocation.hpp"
#include "core/info_base.hpp"
#include "core/messages.hpp"
#include "gossip/gossip_engine.hpp"
#include "overlay/membership.hpp"
#include "sim/retry.hpp"
#include "util/stats.hpp"

namespace p2prm::core {

class PeerNode;

struct RmStats {
  std::uint64_t queries_received = 0;
  std::uint64_t queries_redirected_in = 0;  // arrived with redirect_count > 0
  std::uint64_t tasks_admitted = 0;
  std::uint64_t tasks_rejected = 0;
  std::uint64_t redirects_out = 0;
  std::uint64_t allocation_no_object = 0;
  std::uint64_t allocation_no_path = 0;
  std::uint64_t allocation_deadline = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_missed = 0;
  std::uint64_t tasks_failed = 0;
  std::uint64_t member_failures = 0;
  std::uint64_t recoveries_attempted = 0;
  std::uint64_t recoveries_succeeded = 0;
  std::uint64_t reassignments = 0;
  std::uint64_t tasks_expired = 0;  // GC'd after deadline + grace
  std::uint64_t qos_updates = 0;
  std::uint64_t qos_replans = 0;  // tightened deadline forced a re-plan
  std::uint64_t joins_accepted = 0;
  std::uint64_t joins_promoted = 0;
  std::uint64_t joins_redirected = 0;
  // Fault hardening: duplicate-suppression and retry bookkeeping.
  std::uint64_t duplicate_queries = 0;   // retried/duplicated TaskQuery
  std::uint64_t duplicate_reports = 0;   // stale-seq ProfilerReport
  // Control-plane hot-path counters: Figure 3 search work and path-cache
  // effectiveness, accumulated over every allocation this RM ran.
  std::uint64_t search_vertices_popped = 0;
  std::uint64_t path_cache_hits = 0;
  std::uint64_t path_cache_misses = 0;
  sim::RetryStats backup_sync_retry;     // BackupSync -> BackupSyncAck
  util::RunningStats allocation_fairness;
  util::RunningStats candidates_per_allocation;
};

class ResourceManager {
 public:
  // `restored` is the backup's snapshot on takeover; nullopt for a fresh
  // domain. `epoch` must exceed any epoch the members have seen.
  ResourceManager(PeerNode& host, util::DomainId domain,
                  std::vector<overlay::RmInfo> known_rms,
                  std::optional<InfoBaseSnapshot> restored,
                  std::uint64_t epoch);
  ~ResourceManager();

  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  // Starts heartbeats, backup sync, gossip and the adaptation loop; called
  // once the host peer is attached to the network.
  void start();
  void stop();

  // Routes one message; returns false if the type is not RM business.
  bool handle(util::PeerId from, const net::Message& message);

  [[nodiscard]] util::DomainId domain_id() const { return info_.domain().id(); }
  [[nodiscard]] InfoBase& info() { return info_; }
  [[nodiscard]] const InfoBase& info() const { return info_; }
  [[nodiscard]] gossip::GossipEngine& gossip() { return *gossip_; }
  [[nodiscard]] const gossip::GossipEngine& gossip() const { return *gossip_; }
  [[nodiscard]] const RmStats& stats() const { return stats_; }
  // Writes rm.* metrics (admission/recovery/redirect counters, fairness
  // distribution, backup-sync retries, path-cache effectiveness) labelled
  // with this RM's domain.
  void publish(obs::MetricsRegistry& registry) const;
  [[nodiscard]] const std::vector<overlay::RmInfo>& known_rms() const {
    return known_rms_;
  }

  // Exposed for adaptation tests: run one tick immediately.
  void adaptation_tick();

 private:
  // --- message handlers -----------------------------------------------------
  void on_join_request(util::PeerId from, const overlay::JoinRequest& m);
  void on_leave(util::PeerId from);
  void on_peer_announce(const PeerAnnounce& m);
  void on_profiler_report(util::PeerId from, const ProfilerReport& m);
  void on_task_query(const TaskQuery& m);
  void on_hop_done(util::PeerId from, const HopDone& m);
  void on_task_completed(const TaskCompleted& m);
  void on_qos_update(const TaskQosUpdate& m);
  void on_rm_intro(const overlay::RmPeerIntro& m);

  // --- periodic work -----------------------------------------------------------
  void heartbeat_tick();
  void backup_sync_tick();

  // --- allocation pipeline --------------------------------------------------------
  void admit_or_redirect(const TaskQuery& query);
  bool try_allocate_and_compose(const TaskQuery& query);
  void compose(ActiveTask& task,
               const std::vector<std::pair<util::PeerId, double>>& deltas);
  void redirect_query(const TaskQuery& query, const std::string& reason);
  void reject_task(const TaskQuery& query, const std::string& reason);

  // --- adaptation --------------------------------------------------------------
  void handle_member_failure(util::PeerId peer);
  // Re-runs allocation for a disrupted/overloaded task. When
  // `keep_if_infeasible` is set (overload reassignment), an allocation
  // failure leaves the existing (still functional) assignment untouched;
  // otherwise (member failure) the task fails. Returns true if the task
  // was re-composed.
  bool recover_task(util::TaskId task_id, const char* cause,
                    bool keep_if_infeasible = false);
  void cancel_task_hops(ActiveTask& task, bool notify_peers);
  void release_task_loads(ActiveTask& task);
  void fail_task(ActiveTask& task, const std::string& reason);

  void publish_summary();
  [[nodiscard]] std::vector<util::PeerId> rm_peer_ids() const;
  void add_known_rm(overlay::RmInfo info);
  // True when `info` is safe to route a joiner or redirected query to: its
  // domain's summary is fresh per gossip, or the entry itself is so recent
  // that a freshly founded domain plausibly has not gossiped yet. Dead
  // domains fail both tests — without this, routing loops on stale entries
  // strand joiners forever (found by the scenario fuzzer).
  [[nodiscard]] bool rm_routable(const overlay::RmInfo& info) const;
  // Remembers a task that reached a terminal state, so a retried (or
  // network-duplicated) TaskQuery for it cannot re-admit it.
  void note_terminal(util::TaskId id);

  PeerNode& host_;
  InfoBase info_;
  std::unique_ptr<Allocator> allocator_;
  OverloadDetector overload_;
  std::unique_ptr<gossip::GossipEngine> gossip_;
  std::vector<overlay::RmInfo> known_rms_;  // other domains' RMs
  // When each known_rms_ entry was added or last re-confirmed; bounds the
  // no-summary-yet grace window in rm_routable().
  std::unordered_map<util::DomainId, util::SimTime> rm_seen_;
  util::Rng rng_;
  RmStats stats_;

  sim::Timer heartbeat_timer_;
  sim::Timer backup_sync_timer_;
  sim::Timer adaptation_timer_;
  bool started_ = false;

  // Fault hardening (see docs/FAULT_MODEL.md): report duplicate detection,
  // BackupSync retry, and a bounded memory of recently terminal tasks.
  std::unordered_map<util::PeerId, std::uint64_t> last_report_seq_;
  sim::RetryOp backup_sync_retry_op_;
  std::uint64_t backup_sync_seq_ = 0;
  BackupSync pending_sync_;
  std::deque<util::TaskId> recent_terminal_order_;
  std::unordered_set<util::TaskId> recent_terminal_;
};

}  // namespace p2prm::core

#include "core/resource_manager.hpp"

#include <algorithm>
#include <cassert>

#include "core/peer_node.hpp"
#include "core/system.hpp"
#include "util/logging.hpp"

namespace p2prm::core {

namespace {
constexpr const char* kLog = "rm";

[[nodiscard]] double hop_ops_rate(const graph::ServiceHop& hop,
                                  const media::CostModelConfig& cost) {
  return media::transcode_ops_per_media_second(hop.type, cost);
}
}  // namespace

ResourceManager::ResourceManager(PeerNode& host, util::DomainId domain,
                                 std::vector<overlay::RmInfo> known_rms,
                                 std::optional<InfoBaseSnapshot> restored,
                                 std::uint64_t epoch)
    : host_(host),
      info_(domain, host.id()),
      allocator_(make_allocator(host.system().config().allocator)),
      overload_(host.system().config().overload_utilization,
                host.system().config().overload_consecutive_reports),
      known_rms_(std::move(known_rms)),
      rng_(host.system().simulator().rng().fork()) {
  auto& system = host_.system();
  // Entries handed over at promotion/takeover count as just-confirmed for
  // rm_routable()'s no-summary grace window.
  for (const auto& info : known_rms_) {
    rm_seen_[info.domain] = system.simulator().now();
  }
  if (restored) {
    info_.restore(*restored);
    info_.domain().set_resource_manager(host_.id());
    info_.domain().set_epoch(epoch);
    info_.bump_summary_version();
  } else {
    info_.domain().set_epoch(epoch);
    // The RM is itself a processor of the domain.
    info_.add_member(host_.spec(), system.simulator().now());
    PeerAnnounce self;
    self.spec = host_.spec();
    self.objects = host_.inventory().objects;
    self.services = host_.inventory().services;
    info_.add_inventory(self);
  }
  gossip_ = std::make_unique<gossip::GossipEngine>(
      system.simulator(), system.transport(), host_.id(),
      system.config().gossip, [this] { return rm_peer_ids(); });
  gossip_->set_on_change([this](std::size_t) {
    // Learn new RMs (new domains, failovers) from incoming summaries.
    for (const auto& s : gossip_->known()) {
      add_known_rm(overlay::RmInfo{s.domain, s.resource_manager});
    }
  });
}

ResourceManager::~ResourceManager() { stop(); }

void ResourceManager::start() {
  if (started_) return;
  started_ = true;
  auto& sim = host_.system().simulator();
  const auto& config = host_.system().config();
  heartbeat_timer_ = sim.every(config.heartbeat_period, [this] {
    heartbeat_tick();
  });
  if (config.enable_backup_rm) {
    backup_sync_timer_ = sim.every(config.backup_sync_period, [this] {
      backup_sync_tick();
    });
  }
  adaptation_timer_ = sim.every(config.adaptation_period, [this] {
    adaptation_tick();
  });
  publish_summary();
  gossip_->start();
}

void ResourceManager::stop() {
  heartbeat_timer_.cancel();
  backup_sync_timer_.cancel();
  adaptation_timer_.cancel();
  backup_sync_retry_op_.cancel();
  if (gossip_) gossip_->stop();
  started_ = false;
}

// ---------------------------------------------------------------------------
// Dispatch

bool ResourceManager::handle(util::PeerId from, const net::Message& message) {
  if (const auto* m = net::message_as<overlay::JoinRequest>(message)) {
    on_join_request(from, *m);
    return true;
  }
  if (net::message_as<overlay::LeaveNotice>(message) != nullptr) {
    on_leave(from);
    return true;
  }
  if (const auto* m = net::message_as<PeerAnnounce>(message)) {
    on_peer_announce(*m);
    return true;
  }
  if (const auto* m = net::message_as<ProfilerReport>(message)) {
    on_profiler_report(from, *m);
    return true;
  }
  if (const auto* m = net::message_as<TaskQuery>(message)) {
    on_task_query(*m);
    return true;
  }
  if (const auto* m = net::message_as<HopDone>(message)) {
    on_hop_done(from, *m);
    return true;
  }
  if (const auto* m = net::message_as<TaskCompleted>(message)) {
    on_task_completed(*m);
    return true;
  }
  if (const auto* m = net::message_as<HopFailed>(message)) {
    if (auto* task = info_.task(m->task)) fail_task(*task, m->reason);
    return true;
  }
  if (const auto* m = net::message_as<TaskQosUpdate>(message)) {
    on_qos_update(*m);
    return true;
  }
  if (const auto* m = net::message_as<overlay::RmPeerIntro>(message)) {
    on_rm_intro(*m);
    return true;
  }
  if (const auto* m = net::message_as<BackupSyncAck>(message)) {
    if (m->seq == backup_sync_seq_) backup_sync_retry_op_.ack();
    return true;
  }
  if (const auto* m = net::message_as<gossip::GossipMessage>(message)) {
    gossip_->handle_message(from, *m);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Membership (RM side)

void ResourceManager::on_join_request(util::PeerId from,
                                      const overlay::JoinRequest& m) {
  auto& system = host_.system();
  const auto& config = system.config();
  overlay::JoinDecisionInput input;
  input.domain_size = info_.domain().size();
  input.max_domain_size = config.max_domain_size;
  input.newcomer_qualifies = overlay::qualifies_for_rm(
      m.spec, system.simulator().now(), config.qualification);

  // Prefer steering the joiner to a domain with spare slots (known from
  // gossip summaries) over founding yet another domain. Among underfull
  // domains pick the one whose RM is closest to the joiner — the paper's
  // domains are *geographical* ("grouped into domains according to their
  // topological proximity", §2); we stand in for an RTT probe with the
  // network's delay estimate. Only *fresh* summaries count: a dead domain's
  // frozen summary would bounce the joiner to a dead RM forever.
  util::PeerId underfull_rm = util::PeerId::invalid();
  util::SimDuration best_proximity = util::kTimeInfinity;
  for (const auto& s : gossip_->known()) {
    if (s.domain == info_.domain().id()) continue;
    if (!gossip_->is_fresh(s.domain)) continue;
    if (s.peer_count < config.max_domain_size &&
        s.resource_manager.valid() && s.resource_manager != host_.id()) {
      const auto rtt =
          system.transport().estimate_delay(from, s.resource_manager, 64);
      if (rtt < best_proximity) {
        underfull_rm = s.resource_manager;
        best_proximity = rtt;
      }
    }
  }
  // Redirect fallback pool: routable RMs only — fresh summaries, or entries
  // so recent that a freshly founded domain plausibly has not gossiped yet
  // (those double as underfull candidates: a new domain is almost certainly
  // underfull). Dead domains' frozen entries are excluded.
  std::vector<util::PeerId> redirect_targets;
  for (const auto& rm_info : known_rms_) {
    if (!rm_routable(rm_info)) continue;
    if (!underfull_rm.valid() &&
        gossip_->summary_of(rm_info.domain) == nullptr) {
      underfull_rm = rm_info.rm;
    }
    redirect_targets.push_back(rm_info.rm);
  }
  input.other_rms_known = !redirect_targets.empty();
  input.underfull_domain_known = underfull_rm.valid();

  switch (overlay::decide_join(input)) {
    case overlay::JoinOutcome::Accept: {
      info_.add_member(m.spec, system.simulator().now());
      auto accept = std::make_unique<overlay::JoinAccept>();
      accept->domain = info_.domain().id();
      accept->rm = host_.id();
      accept->epoch = info_.domain().epoch();
      host_.send(from, std::move(accept));
      ++stats_.joins_accepted;
      break;
    }
    case overlay::JoinOutcome::Promote: {
      const util::DomainId new_domain = system.next_domain_id();
      auto promote = std::make_unique<overlay::JoinPromote>();
      promote->new_domain = new_domain;
      promote->known_rms = known_rms_;
      promote->known_rms.push_back(
          overlay::RmInfo{info_.domain().id(), host_.id()});
      host_.send(from, std::move(promote));
      add_known_rm(overlay::RmInfo{new_domain, from});
      ++stats_.joins_promoted;
      break;
    }
    case overlay::JoinOutcome::Redirect: {
      auto redirect = std::make_unique<overlay::JoinRedirect>();
      redirect->target_rm =
          underfull_rm.valid()
              ? underfull_rm
              : redirect_targets[rng_.below(redirect_targets.size())];
      host_.send(from, std::move(redirect));
      ++stats_.joins_redirected;
      break;
    }
    case overlay::JoinOutcome::Reject: {
      auto redirect = std::make_unique<overlay::JoinRedirect>();
      redirect->target_rm = util::PeerId::invalid();
      host_.send(from, std::move(redirect));
      break;
    }
  }
}

void ResourceManager::on_leave(util::PeerId from) {
  host_.system().trace(TraceKind::PeerLeft, from, util::TaskId::invalid(),
                       info_.domain().id());
  handle_member_failure(from);
}

void ResourceManager::on_peer_announce(const PeerAnnounce& m) {
  if (!info_.domain().has_member(m.spec.id)) {
    // Announce can race ahead of our accept bookkeeping after a takeover.
    info_.add_member(m.spec, host_.system().simulator().now());
  }
  // A (re)joining peer restarts its report sequence from 1.
  last_report_seq_.erase(m.spec.id);
  info_.add_inventory(m);
  publish_summary();
}

void ResourceManager::on_profiler_report(util::PeerId from,
                                         const ProfilerReport& m) {
  const auto& config = host_.system().config();
  if (config.ack_profiler_reports && m.seq != 0) {
    auto ack = std::make_unique<ReportAck>();
    ack->seq = m.seq;
    host_.send(from, std::move(ack));
    // Retransmissions and network duplicates are re-acked but must not be
    // re-applied: overload detection counts *consecutive* hot reports, so a
    // duplicate would double-count one observation.
    auto& last_seq = last_report_seq_[from];
    if (m.seq <= last_seq) {
      ++stats_.duplicate_reports;
      return;
    }
    last_seq = m.seq;
  }
  info_.record_report(from, m, host_.system().simulator().now());
  // "Overloaded" needs both a hot CPU and work piling up behind it — a
  // saturated processor with an empty queue is just a transcode in flight.
  const bool hot_cpu =
      m.sample.smoothed_utilization >= config.overload_utilization &&
      (m.sample.queue_length >= config.overload_min_queue ||
       m.sample.backlog_seconds > config.overload_backlog_seconds);
  // §4.5 names "processor or network load": a saturated uplink also counts.
  bool hot_net = false;
  if (const auto* rec = info_.domain().member(from)) {
    const double link = rec->spec.bandwidth_bytes_per_s();
    hot_net = link > 0.0 && m.sample.smoothed_bandwidth >=
                                config.overload_bandwidth_fraction * link;
  }
  overload_.record(from, (hot_cpu || hot_net) ? 1.0 : 0.0);
}

void ResourceManager::on_rm_intro(const overlay::RmPeerIntro& m) {
  for (const auto& info : m.rms) add_known_rm(info);
}

// ---------------------------------------------------------------------------
// Task admission and allocation (§4.3, §4.5)

void ResourceManager::on_task_query(const TaskQuery& m) {
  ++stats_.queries_received;
  if (m.redirect_count > 0) ++stats_.queries_redirected_in;
  // Retried or network-duplicated queries must be idempotent (§ fault
  // hardening): an already-admitted task gets its accept re-sent, a
  // recently terminal one a reject that settles the origin's retry loop
  // (its ledger is already terminal, so the reject is a no-op there).
  if (const auto* active = info_.task(m.task)) {
    ++stats_.duplicate_queries;
    auto accept = std::make_unique<TaskAccept>();
    accept->task = m.task;
    accept->serving_rm = host_.id();
    accept->estimated_execution =
        active->estimated_execution >= 0 ? active->estimated_execution : 0;
    host_.send(m.origin, std::move(accept));
    return;
  }
  if (recent_terminal_.count(m.task) != 0) {
    ++stats_.duplicate_queries;
    auto reject = std::make_unique<TaskReject>();
    reject->task = m.task;
    reject->reason = "stale-duplicate";
    host_.send(m.origin, std::move(reject));
    return;
  }
  admit_or_redirect(m);
}

void ResourceManager::note_terminal(util::TaskId id) {
  if (!recent_terminal_.insert(id).second) return;
  recent_terminal_order_.push_back(id);
  constexpr std::size_t kRememberTerminal = 512;
  while (recent_terminal_order_.size() > kRememberTerminal) {
    recent_terminal_.erase(recent_terminal_order_.front());
    recent_terminal_order_.pop_front();
  }
}

void ResourceManager::admit_or_redirect(const TaskQuery& query) {
  const auto& config = host_.system().config();
  const auto decision = check_admission(info_, config, query.q.importance);
  if (!decision.admit) {
    redirect_query(query, decision.reason);
    return;
  }
  if (try_allocate_and_compose(query)) return;
  // Allocation failed; failure counters were updated there. Redirect if the
  // object or capacity may exist elsewhere.
  redirect_query(query, "allocation-failed");
}

bool ResourceManager::try_allocate_and_compose(const TaskQuery& query) {
  auto& system = host_.system();
  AllocationRequest request;
  request.task = query.task;
  request.q = query.q;
  request.sink = query.origin;
  request.now = system.simulator().now();
  request.submitted_at = query.submitted_at;

  const AllocationResult result = allocator_->allocate(
      info_, system.transport(), system.config(), request, rng_);
  stats_.search_vertices_popped += result.search.vertices_popped;
  stats_.path_cache_hits += result.search.cache_hits;
  stats_.path_cache_misses += result.search.cache_misses;
  if (!result.found) {
    if (result.failure_reason == "no-object") ++stats_.allocation_no_object;
    else if (result.failure_reason == "no-path") ++stats_.allocation_no_path;
    else ++stats_.allocation_deadline;
    return false;
  }

  ActiveTask task;
  task.sg = result.sg;
  task.sg.state = graph::TaskState::Running;
  task.sg.composed_at = system.simulator().now();
  task.q = query.q;
  task.origin = query.origin;
  task.submitted_at = query.submitted_at;
  task.absolute_deadline = query.submitted_at + query.q.deadline;
  task.hop_done.assign(task.sg.hop_count(), false);
  task.estimated_execution = result.estimated_execution;
  ActiveTask& stored = info_.add_task(std::move(task));

  compose(stored, result.load_deltas);
  ++stats_.tasks_admitted;
  host_.system().trace(TraceKind::TaskAdmitted, host_.id(), query.task,
                       info_.domain().id(),
                       {{"hops", stored.sg.hop_count()},
                        {"fairness", result.fairness_after}});
  stats_.allocation_fairness.add(result.fairness_after);
  stats_.candidates_per_allocation.add(
      static_cast<double>(result.candidates_considered));

  auto accept = std::make_unique<TaskAccept>();
  accept->task = query.task;
  accept->serving_rm = host_.id();
  accept->estimated_execution = result.estimated_execution;
  host_.send(query.origin, std::move(accept));
  return true;
}

void ResourceManager::compose(
    ActiveTask& task,
    const std::vector<std::pair<util::PeerId, double>>& deltas) {
  auto& system = host_.system();
  auto& gr = info_.resource_graph();
  const auto& cost = system.config().cost_model;

  for (const auto& [peer, rate] : deltas) {
    info_.commit_load(peer, rate, system.simulator().now());
  }

  const auto& hops = task.sg.hops();
  // Locate the object's duration for the stream messages.
  double media_seconds = 0.0;
  if (const auto* locs = info_.locations(task.sg.object())) {
    for (const auto& loc : *locs) {
      if (loc.peer == task.sg.source_peer()) {
        media_seconds = loc.object.duration_s;
        break;
      }
    }
  }

  for (std::size_t i = 0; i < hops.size(); ++i) {
    const auto& hop = hops[i];
    if (gr.has_service(hop.service)) {
      gr.set_service_load(hop.service,
                          gr.service(hop.service).load + hop_ops_rate(hop, cost));
    }
    auto msg = std::make_unique<GraphCompose>();
    msg->hop.task = task.sg.task();
    msg->hop.hop_index = i;
    msg->hop.service = hop.service;
    msg->hop.type = hop.type;
    msg->hop.rm = host_.id();
    msg->hop.prev_peer = i == 0 ? task.sg.source_peer() : hops[i - 1].peer;
    msg->hop.next_peer =
        i + 1 < hops.size() ? hops[i + 1].peer : task.sg.sink_peer();
    msg->hop.next_is_sink = i + 1 == hops.size();
    msg->hop.object = task.sg.object();
    msg->hop.media_seconds = media_seconds;
    msg->hop.absolute_deadline = task.absolute_deadline;
    msg->hop.importance = task.q.importance;
    host_.send(hop.peer, std::move(msg));
  }

  auto start = std::make_unique<SourceStart>();
  start->task = task.sg.task();
  start->object = task.sg.object();
  start->first_hop = hops.empty() ? task.sg.sink_peer() : hops.front().peer;
  start->first_is_sink = hops.empty();
  start->media_seconds = media_seconds;
  start->format = task.sg.source_format();
  start->absolute_deadline = task.absolute_deadline;
  start->rm = host_.id();
  host_.send(task.sg.source_peer(), std::move(start));
}

void ResourceManager::redirect_query(const TaskQuery& query,
                                     const std::string& reason) {
  const auto& config = host_.system().config();
  if (!config.redirect_across_domains ||
      query.redirect_count >= config.max_redirects || known_rms_.empty()) {
    reject_task(query, reason);
    return;
  }
  // "To maximize the probability that the task will be admitted, the
  // summaries of the available objects and services in other domains are
  // utilized to direct the query to the appropriate domain." (§4.5)
  util::PeerId target = util::PeerId::invalid();
  const auto candidates =
      gossip_->domains_with_object(query.q.object, info_.domain().id());
  for (const auto* s : candidates) {
    if (s->resource_manager != host_.id()) {
      target = s->resource_manager;
      break;
    }
  }
  if (!target.valid()) {
    // No summary hit: fall back to the least-utilized *fresh* known domain.
    // Stale summaries belong to possibly-dead RMs; forwarding there strands
    // the query until its watchdog fires.
    const gossip::DomainSummary* best = nullptr;
    for (const auto& s : gossip_->known()) {
      if (s.domain == info_.domain().id()) continue;
      if (!gossip_->is_fresh(s.domain)) continue;
      if (best == nullptr || s.utilization() < best->utilization()) best = &s;
    }
    if (best != nullptr) {
      target = best->resource_manager;
    } else {
      // Last resort: a routable RM so new gossip has no summary for it yet.
      for (const auto& rm_info : known_rms_) {
        if (gossip_->summary_of(rm_info.domain) == nullptr &&
            rm_routable(rm_info)) {
          target = rm_info.rm;
          break;
        }
      }
    }
  }
  if (!target.valid() || target == host_.id()) {
    reject_task(query, reason);
    return;
  }
  auto fwd = std::make_unique<TaskQuery>(query);
  fwd->redirect_count = query.redirect_count + 1;
  host_.send(target, std::move(fwd));
  ++stats_.redirects_out;
  host_.system().trace(TraceKind::TaskRedirected, host_.id(), query.task,
                       info_.domain().id(),
                       {{"target_rm", util::to_string(target)},
                        {"reason", reason}});
}

void ResourceManager::reject_task(const TaskQuery& query,
                                  const std::string& reason) {
  auto reject = std::make_unique<TaskReject>();
  reject->task = query.task;
  reject->reason = reason;
  host_.send(query.origin, std::move(reject));
  ++stats_.tasks_rejected;
}

// ---------------------------------------------------------------------------
// Execution feedback

void ResourceManager::on_hop_done(util::PeerId from, const HopDone& m) {
  auto* task = info_.task(m.task);
  if (task == nullptr) return;
  if (m.hop_index >= task->hop_done.size()) return;
  if (task->hop_done[m.hop_index]) return;
  task->hop_done[m.hop_index] = true;

  const auto& hop = task->sg.hops()[m.hop_index];
  const auto& cost = host_.system().config().cost_model;
  const double rate = hop_ops_rate(hop, cost);
  info_.release_load(from, rate);
  auto& gr = info_.resource_graph();
  if (gr.has_service(hop.service)) {
    gr.set_service_load(hop.service,
                        std::max(0.0, gr.service(hop.service).load - rate));
  }
}

void ResourceManager::on_task_completed(const TaskCompleted& m) {
  auto* task = info_.task(m.task);
  if (task == nullptr) return;
  // Release anything HopDone messages have not released yet.
  release_task_loads(*task);
  ++stats_.tasks_completed;
  if (m.missed_deadline) ++stats_.tasks_missed;
  note_terminal(m.task);
  info_.remove_task(m.task);
}

void ResourceManager::on_qos_update(const TaskQosUpdate& m) {
  auto* task = info_.task(m.task);
  if (task == nullptr) return;
  ++stats_.qos_updates;
  const util::SimTime old_deadline = task->absolute_deadline;
  task->q.deadline = m.new_deadline;
  task->absolute_deadline = task->submitted_at + m.new_deadline;
  if (!m.new_acceptable_formats.empty()) {
    task->q.acceptable_formats = m.new_acceptable_formats;
  }
  // Relaxations need no action — the running pipeline only gets easier.
  // A tightened deadline (or new formats) may invalidate the current
  // assignment: attempt a re-plan, keeping the old one when no feasible
  // alternative exists (it may still finish in time).
  const bool tightened = task->absolute_deadline < old_deadline;
  if (tightened || !m.new_acceptable_formats.empty()) {
    if (recover_task(m.task, "qos-update", /*keep_if_infeasible=*/true)) {
      ++stats_.qos_replans;
    }
  }
}

// ---------------------------------------------------------------------------
// Adaptation (§4.5)

void ResourceManager::adaptation_tick() {
  auto& system = host_.system();
  const auto& config = system.config();
  info_.purge_commitments(system.simulator().now());

  // 1. Failure detection: members whose profiler reports stopped.
  const auto stale = info_.domain().stale_members(
      system.simulator().now(), config.member_failure_timeout);
  for (const auto peer : stale) {
    P2PRM_LOG(Info, kLog, system.simulator().now_seconds())
        << "RM " << host_.id() << " detected failure of member " << peer;
    handle_member_failure(peer);
  }
  // Losing *every* member to failure detection means the fault is almost
  // certainly on our side of a partition (the members elected a backup and
  // moved on). Step down and rejoin — deferred to a fresh event because
  // demotion destroys this object.
  if (!stale.empty() && info_.domain().size() <= 1) {
    // Deferred through the host's lifetime guard: the node may be
    // destroyed (demotion/teardown) before this fires.
    PeerNode* host = &host_;
    const util::DomainId d = info_.domain().id();
    host_.defer_after(1, [host, d] {
      auto* rm = host->resource_manager();
      if (host->alive() && rm != nullptr && rm->domain_id() == d &&
          rm->info().domain().size() <= 1) {
        host->demote_and_rejoin();
      }
    });
    return;
  }

  // 2. Garbage-collect tasks whose terminal reports were lost (sink died,
  //    RM failover raced the completion message): long past the deadline
  //    they only pin load commitments.
  std::vector<util::TaskId> expired;
  for (const auto id : info_.running_task_ids()) {
    const auto* task = info_.task(id);
    if (task != nullptr &&
        system.simulator().now() >
            task->absolute_deadline + config.task_gc_grace) {
      expired.push_back(id);
    }
  }
  for (const auto id : expired) {
    auto* task = info_.task(id);
    cancel_task_hops(*task, /*notify_peers=*/true);
    release_task_loads(*task);
    note_terminal(id);
    info_.remove_task(id);
    ++stats_.tasks_expired;
  }

  // 3. Overload reassignment: "some of the currently running application
  //    tasks might be reassigned."
  if (!config.enable_reassignment) return;
  if (domain_overloaded(info_, config)) return;  // nowhere better inside

  std::vector<util::PeerId> hot;
  for (const auto peer : info_.domain().member_ids()) {
    if (overload_.overloaded(peer)) hot.push_back(peer);
  }
  if (hot.empty()) return;

  int budget = 2;  // bounded work per tick
  for (const auto peer : hot) {
    if (budget <= 0) break;
    for (const auto task_id : info_.tasks_involving(peer)) {
      if (budget <= 0) break;
      const auto* task = info_.task(task_id);
      if (task == nullptr || task->sg.state != graph::TaskState::Running) {
        continue;
      }
      if (task->recompositions >= config.max_reassignments_per_task) continue;
      if (task->sg.composed_at >= 0 &&
          system.simulator().now() - task->sg.composed_at <
              config.reassignment_cooldown) {
        continue;  // give the current composition a chance to run
      }
      // Only tasks whose hot hops have not finished benefit from moving.
      bool worth_moving = false;
      for (std::size_t i = 0; i < task->sg.hop_count(); ++i) {
        if (!task->hop_done[i] && task->sg.hops()[i].peer == peer) {
          worth_moving = true;
          break;
        }
      }
      if (!worth_moving) continue;
      if (recover_task(task_id, "reassignment", /*keep_if_infeasible=*/true)) {
        ++stats_.reassignments;
        --budget;
      }
    }
  }
}

void ResourceManager::handle_member_failure(util::PeerId peer) {
  ++stats_.member_failures;
  host_.system().trace(TraceKind::PeerFailed, peer, util::TaskId::invalid(),
                       info_.domain().id());
  overload_.forget(peer);
  const auto affected = info_.remove_peer(peer);
  publish_summary();
  for (const auto task_id : affected) {
    auto* task = info_.task(task_id);
    if (task == nullptr) continue;
    if (task->origin == peer || task->sg.sink_peer() == peer) {
      // Nobody left to deliver to; drop quietly.
      cancel_task_hops(*task, /*notify_peers=*/true);
      release_task_loads(*task);
      info_.remove_task(task_id);
      continue;
    }
    if (!recover_task(task_id, "member-failure")) {
      // recover_task already failed the task.
    }
  }
}

bool ResourceManager::recover_task(util::TaskId task_id, const char* cause,
                                   bool keep_if_infeasible) {
  auto& system = host_.system();
  auto* task = info_.task(task_id);
  if (task == nullptr) return false;
  ++stats_.recoveries_attempted;

  if (!keep_if_infeasible) {
    // The old assignment is already broken (a participant died): tear it
    // down before re-planning.
    cancel_task_hops(*task, /*notify_peers=*/true);
    release_task_loads(*task);
  }

  AllocationRequest request;
  request.task = task_id;
  request.q = task->q;
  request.sink = task->sg.sink_peer();
  request.now = system.simulator().now();
  request.submitted_at = task->submitted_at;

  const AllocationResult result = allocator_->allocate(
      info_, system.transport(), system.config(), request, rng_);
  stats_.search_vertices_popped += result.search.vertices_popped;
  stats_.path_cache_hits += result.search.cache_hits;
  stats_.path_cache_misses += result.search.cache_misses;
  if (!result.found) {
    if (keep_if_infeasible) return false;  // old assignment stays in force
    fail_task(*task, std::string("unrecoverable-") + cause);
    return false;
  }
  if (keep_if_infeasible) {
    // Commit to the move only now that a feasible alternative exists.
    cancel_task_hops(*task, /*notify_peers=*/true);
    release_task_loads(*task);
  }
  const int recompositions = task->recompositions + 1;
  task->sg = result.sg;
  task->sg.state = graph::TaskState::Running;
  task->sg.composed_at = system.simulator().now();
  task->recompositions = recompositions;
  task->hop_done.assign(task->sg.hop_count(), false);
  // The participant set just changed under the stored task.
  info_.reindex_task(task_id);
  compose(*task, result.load_deltas);
  ++stats_.recoveries_succeeded;
  host_.system().trace(TraceKind::TaskRecovered, host_.id(), task_id,
                       info_.domain().id(), {{"cause", cause}});
  P2PRM_LOG(Debug, kLog, system.simulator().now_seconds())
      << "RM " << host_.id() << " recomposed task " << task_id << " ("
      << cause << ")";
  return true;
}

void ResourceManager::cancel_task_hops(ActiveTask& task, bool notify_peers) {
  if (!notify_peers) return;
  const auto& hops = task.sg.hops();
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (task.hop_done[i]) continue;
    auto cancel = std::make_unique<HopCancel>();
    cancel->task = task.sg.task();
    cancel->hop_index = i;
    host_.send(hops[i].peer, std::move(cancel));
  }
}

void ResourceManager::release_task_loads(ActiveTask& task) {
  const auto& cost = host_.system().config().cost_model;
  auto& gr = info_.resource_graph();
  const auto& hops = task.sg.hops();
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (task.hop_done[i]) continue;
    const double rate = hop_ops_rate(hops[i], cost);
    info_.release_load(hops[i].peer, rate);
    if (gr.has_service(hops[i].service)) {
      gr.set_service_load(
          hops[i].service,
          std::max(0.0, gr.service(hops[i].service).load - rate));
    }
    task.hop_done[i] = true;  // accounted; do not release twice
  }
}

void ResourceManager::fail_task(ActiveTask& task, const std::string& reason) {
  const util::TaskId id = task.sg.task();
  cancel_task_hops(task, /*notify_peers=*/true);
  release_task_loads(task);
  auto failed = std::make_unique<TaskFailedMsg>();
  failed->task = id;
  failed->reason = reason;
  host_.send(task.origin, std::move(failed));
  ++stats_.tasks_failed;
  note_terminal(id);
  info_.remove_task(id);
}

// ---------------------------------------------------------------------------
// Periodic work

void ResourceManager::heartbeat_tick() {
  const auto& config = host_.system().config();
  const auto backup = info_.domain().backup();

  // §4.4: derive the update frequency from the application QoS — the
  // tighter the closest running deadline, the fresher the loads must be.
  util::SimDuration announce_period = 0;
  if (config.adaptive_report_period) {
    const util::SimTime now = host_.system().simulator().now();
    util::SimDuration tightest = util::kTimeInfinity;
    for (const auto id : info_.running_task_ids()) {
      const auto* task = info_.task(id);
      if (task != nullptr && task->absolute_deadline > now) {
        tightest = std::min(tightest, task->absolute_deadline - now);
      }
    }
    announce_period =
        tightest == util::kTimeInfinity
            ? config.report_period  // idle: relax to the default
            : std::clamp(tightest / 10, config.report_period_min,
                         config.report_period);
  }

  for (const auto member : info_.domain().member_ids()) {
    if (member == host_.id()) continue;
    auto hb = std::make_unique<overlay::RmHeartbeat>();
    hb->domain = info_.domain().id();
    hb->epoch = info_.domain().epoch();
    hb->backup = backup.value_or(util::PeerId::invalid());
    hb->report_period = announce_period;
    host_.send(member, std::move(hb));
  }
}

void ResourceManager::backup_sync_tick() {
  const auto backup = info_.domain().backup();
  if (!backup) return;
  const auto& config = host_.system().config();
  auto sync = std::make_unique<BackupSync>();
  sync->snapshot = info_.snapshot();
  sync->known_rms = known_rms_;
  sync->seq = ++backup_sync_seq_;
  if (config.ack_backup_sync) pending_sync_ = *sync;
  host_.send(*backup, std::move(sync));

  // The snapshot is the failover lifeline: resend until the backup acks,
  // giving up when the next periodic sync is about to supersede it anyway.
  const util::BackoffPolicy& policy = config.retry.backup_sync;
  if (!config.ack_backup_sync || policy.max_attempts <= 1) return;
  backup_sync_retry_op_.cancel();
  backup_sync_retry_op_.arm(
      host_.system().simulator(), policy, &rng_,
      [this](int /*attempt*/) {
        // Re-resolve: if the backup changed since the tick, the (slightly
        // stale) snapshot still beats the new backup having none at all.
        const auto current = info_.domain().backup();
        if (!current) return;
        host_.send(*current, std::make_unique<BackupSync>(pending_sync_));
      },
      /*on_exhausted=*/{}, &stats_.backup_sync_retry);
}

void ResourceManager::publish_summary() {
  const auto& config = host_.system().config();
  auto summary = info_.build_summary(config.bloom_bits, config.bloom_hashes);
  if (config.gossip_domain_aggregates) {
    // Attach the fixed-size domain digest so remote RMs can answer
    // capability / load-quantile questions without per-peer rows.
    summary.aggregate = info_.build_aggregate();
  }
  gossip_->set_local_summary(std::move(summary));
}

std::vector<util::PeerId> ResourceManager::rm_peer_ids() const {
  std::vector<util::PeerId> out;
  out.reserve(known_rms_.size());
  for (const auto& info : known_rms_) out.push_back(info.rm);
  return out;
}

void ResourceManager::add_known_rm(overlay::RmInfo info) {
  if (info.rm == host_.id()) return;
  rm_seen_[info.domain] = host_.system().simulator().now();
  for (auto& existing : known_rms_) {
    if (existing.domain == info.domain) {
      existing.rm = info.rm;  // failover replaced the RM
      return;
    }
  }
  known_rms_.push_back(info);
}

bool ResourceManager::rm_routable(const overlay::RmInfo& info) const {
  if (info.rm == host_.id()) return false;
  if (gossip_->summary_of(info.domain) != nullptr) {
    return gossip_->is_fresh(info.domain);
  }
  // No summary at all: either a freshly founded domain gossip has not
  // caught up with (routable — it is almost certainly underfull), or a
  // domain that died before it ever gossiped (not routable). Distinguish by
  // the entry's age: the grace ends one staleness window after we learned
  // of it.
  const auto stale_after = host_.system().config().gossip.stale_after;
  if (stale_after <= 0) return true;
  const auto it = rm_seen_.find(info.domain);
  if (it == rm_seen_.end()) return false;
  return host_.system().simulator().now() - it->second <= stale_after;
}

void ResourceManager::publish(obs::MetricsRegistry& registry) const {
  const obs::Labels labels{{"domain", util::to_string(info_.domain().id())}};
  const auto c = [&](std::string_view name, std::uint64_t v) {
    registry.counter(name, labels).set(v);
  };
  c("rm.queries_received", stats_.queries_received);
  c("rm.queries_redirected_in", stats_.queries_redirected_in);
  c("rm.tasks_admitted", stats_.tasks_admitted);
  c("rm.tasks_rejected", stats_.tasks_rejected);
  c("rm.redirects_out", stats_.redirects_out);
  c("rm.allocation_no_object", stats_.allocation_no_object);
  c("rm.allocation_no_path", stats_.allocation_no_path);
  c("rm.allocation_deadline", stats_.allocation_deadline);
  c("rm.tasks_completed", stats_.tasks_completed);
  c("rm.tasks_missed", stats_.tasks_missed);
  c("rm.tasks_failed", stats_.tasks_failed);
  c("rm.member_failures", stats_.member_failures);
  c("rm.recoveries_attempted", stats_.recoveries_attempted);
  c("rm.recoveries_succeeded", stats_.recoveries_succeeded);
  c("rm.reassignments", stats_.reassignments);
  c("rm.tasks_expired", stats_.tasks_expired);
  c("rm.qos_updates", stats_.qos_updates);
  c("rm.qos_replans", stats_.qos_replans);
  c("rm.joins_accepted", stats_.joins_accepted);
  c("rm.joins_promoted", stats_.joins_promoted);
  c("rm.joins_redirected", stats_.joins_redirected);
  c("rm.duplicate_queries", stats_.duplicate_queries);
  c("rm.duplicate_reports", stats_.duplicate_reports);
  c("rm.search_vertices_popped", stats_.search_vertices_popped);
  c("rm.path_cache_hits", stats_.path_cache_hits);
  c("rm.path_cache_misses", stats_.path_cache_misses);
  sim::publish_retry_stats(stats_.backup_sync_retry, registry,
                           "rm.backup_sync", labels);
  c("rm.allocations_scored", stats_.allocation_fairness.count());
  registry.gauge("rm.allocation_fairness_mean", labels)
      .set(stats_.allocation_fairness.mean());
  registry.gauge("rm.candidates_per_allocation_mean", labels)
      .set(stats_.candidates_per_allocation.mean());
  registry.gauge("rm.domain_members", labels)
      .set(static_cast<double>(info_.domain().size()));
  info_.path_cache().publish(registry, labels);
}

}  // namespace p2prm::core

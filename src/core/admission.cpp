#include "core/admission.hpp"

namespace p2prm::core {

bool domain_overloaded(const InfoBase& info, const SystemConfig& config) {
  // "Every member is at or above the threshold" is a minimum-utilization
  // query; the incrementally maintained load index answers it without
  // walking the membership (min_utilization() is +inf for an empty
  // domain, so an RM with no members correctly reports overloaded).
  if (config.enable_hierarchical_infobase) {
    // Aggregate path: same min, read through the domain digest. The
    // digest copies the LoadIndex scalars verbatim, so this branch is
    // bit-identical to the direct read (scale_test.cpp differential).
    return info.build_aggregate().min_utilization >=
           config.overload_utilization;
  }
  return info.load_index().min_utilization() >= config.overload_utilization;
}

double mean_domain_utilization(const InfoBase& info) {
  return info.load_index().mean_utilization();
}

double mean_domain_utilization(const InfoBase& info,
                               const SystemConfig& config) {
  if (config.enable_hierarchical_infobase) {
    return info.build_aggregate().mean_utilization();
  }
  return mean_domain_utilization(info);
}

AdmissionDecision check_admission(const InfoBase& info,
                                  const SystemConfig& config,
                                  double importance) {
  AdmissionDecision d;
  if (!config.admission_control) return d;
  if (domain_overloaded(info, config)) {
    d.admit = false;
    d.domain_overloaded = true;
    d.reason = "domain-overloaded";
    return d;
  }
  if (config.min_importance_when_busy > 0.0 &&
      importance < config.min_importance_when_busy &&
      mean_domain_utilization(info, config) >= config.busy_utilization) {
    d.admit = false;
    d.reason = "low-importance-while-busy";
  }
  return d;
}

OverloadDetector::OverloadDetector(double threshold, int consecutive)
    : threshold_(threshold), consecutive_(consecutive) {}

bool OverloadDetector::record(util::PeerId peer, double utilization) {
  int& streak = streak_[peer];
  if (utilization >= threshold_) {
    ++streak;
  } else {
    streak = 0;
  }
  return streak >= consecutive_;
}

bool OverloadDetector::overloaded(util::PeerId peer) const {
  const auto it = streak_.find(peer);
  return it != streak_.end() && it->second >= consecutive_;
}

void OverloadDetector::forget(util::PeerId peer) { streak_.erase(peer); }

std::size_t OverloadDetector::overloaded_count() const {
  std::size_t n = 0;
  for (const auto& [_, s] : streak_) {
    if (s >= consecutive_) ++n;
  }
  return n;
}

}  // namespace p2prm::core

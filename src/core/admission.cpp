#include "core/admission.hpp"

namespace p2prm::core {

bool domain_overloaded(const InfoBase& info, const SystemConfig& config) {
  const auto members = info.domain().member_ids();
  if (members.empty()) return true;
  for (const auto peer : members) {
    const auto* rec = info.domain().member(peer);
    const double cap = rec->spec.capacity_ops_per_s;
    const double util = cap > 0.0 ? info.effective_load(peer) / cap : 1.0;
    if (util < config.overload_utilization) return false;
  }
  return true;
}

double mean_domain_utilization(const InfoBase& info) {
  double load = 0.0;
  double capacity = 0.0;
  for (const auto peer : info.domain().member_ids()) {
    const auto* rec = info.domain().member(peer);
    load += info.effective_load(peer);
    capacity += rec->spec.capacity_ops_per_s;
  }
  return capacity > 0.0 ? load / capacity : 1.0;
}

AdmissionDecision check_admission(const InfoBase& info,
                                  const SystemConfig& config,
                                  double importance) {
  AdmissionDecision d;
  if (!config.admission_control) return d;
  if (domain_overloaded(info, config)) {
    d.admit = false;
    d.domain_overloaded = true;
    d.reason = "domain-overloaded";
    return d;
  }
  if (config.min_importance_when_busy > 0.0 &&
      importance < config.min_importance_when_busy &&
      mean_domain_utilization(info) >= config.busy_utilization) {
    d.admit = false;
    d.reason = "low-importance-while-busy";
  }
  return d;
}

OverloadDetector::OverloadDetector(double threshold, int consecutive)
    : threshold_(threshold), consecutive_(consecutive) {}

bool OverloadDetector::record(util::PeerId peer, double utilization) {
  int& streak = streak_[peer];
  if (utilization >= threshold_) {
    ++streak;
  } else {
    streak = 0;
  }
  return streak >= consecutive_;
}

bool OverloadDetector::overloaded(util::PeerId peer) const {
  const auto it = streak_.find(peer);
  return it != streak_.end() && it->second >= consecutive_;
}

void OverloadDetector::forget(util::PeerId peer) { streak_.erase(peer); }

std::size_t OverloadDetector::overloaded_count() const {
  std::size_t n = 0;
  for (const auto& [_, s] : streak_) {
    if (s >= consecutive_) ++n;
  }
  return n;
}

}  // namespace p2prm::core

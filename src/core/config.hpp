// All tunables of the middleware in one place.
//
// Defaults reproduce the paper's described behaviour: LLS local scheduling,
// fairness-maximizing allocation over the Fig. 3 BFS, admission control
// with inter-domain redirection, adaptive reassignment, backup RMs, and
// lazy gossip of Bloom summaries. Experiments toggle individual features
// for ablations.
#pragma once

#include <cstdint>
#include <string_view>

#include "gossip/gossip_engine.hpp"
#include "media/transcoder.hpp"
#include "net/socket_transport.hpp"
#include "net/topology.hpp"
#include "overlay/peer.hpp"
#include "sched/scheduler.hpp"
#include "util/backoff.hpp"
#include "util/time.hpp"

namespace p2prm::core {

enum class AllocatorKind {
  PaperBfs,     // Fig. 3: BFS + QoS pruning + max fairness
  Exhaustive,   // all simple paths + max fairness (ablation upper bound)
  MinHop,       // first feasible path found by BFS (fewest hops)
  Random,       // uniformly random feasible path
  LeastLoaded,  // feasible path minimizing max post-assignment utilization
  MaxUtil,      // consolidating best-fit: max mean post-assignment utilization
  DetStream,    // deterministic min completion time (docs/STREAMING.md)
};
[[nodiscard]] std::string_view allocator_name(AllocatorKind k);
[[nodiscard]] AllocatorKind allocator_from_name(std::string_view name);

// Which net::Transport backend carries the control plane
// (docs/TRANSPORT.md). Sim is the deterministic simulated network; Socket
// runs the same protocol over real loopback TCP, paced by the realtime
// driver.
enum class TransportKind { Sim, Socket };
[[nodiscard]] std::string_view transport_kind_name(TransportKind k);
[[nodiscard]] TransportKind transport_kind_from_name(std::string_view name);

// Per-message-class retry/timeout/backoff policies (see docs/FAULT_MODEL.md).
// A policy's `initial` is that class's ack timeout; `max_attempts` counts
// the original send. Set max_attempts = 1 to disable retries for a class.
struct RetryConfig {
  // Join attempts through a fresh random contact after a dead-ended try.
  // A detached peer whose every attempt finds nobody reachable founds a
  // fresh domain once the attempts are exhausted (sole-survivor rule).
  util::BackoffPolicy join{util::seconds(2), 1.5, util::seconds(10), 5, 0.0};
  // TaskQuery -> TaskAccept/TaskReject (the task-allocation RPC). Timeout
  // must comfortably exceed a WAN round trip plus allocation time.
  util::BackoffPolicy task_query{util::milliseconds(1500), 2.0,
                                 util::seconds(6), 4, 0.1};
  // ProfilerReport -> ReportAck. Bounded well under the report period so a
  // retried report still lands before the next one supersedes it.
  util::BackoffPolicy profiler_report{util::milliseconds(150), 2.0,
                                      util::milliseconds(300), 2, 0.0};
  // BackupSync -> BackupSyncAck. Snapshots are the failover lifeline; retry
  // harder than reports but give up before the next sync period.
  util::BackoffPolicy backup_sync{util::milliseconds(250), 2.0,
                                  util::milliseconds(500), 3, 0.0};
};

struct SystemConfig {
  std::uint64_t seed = 42;

  // --- substrate -----------------------------------------------------------
  net::TopologyConfig topology{};
  double message_drop_probability = 0.0;

  // --- transport (docs/TRANSPORT.md) ---------------------------------------
  // Socket mode runs the identical protocol stack over loopback TCP. It is
  // incompatible with the parallel engine (num_threads > 1) and with
  // fault plans (both are properties of the simulated network); System
  // rejects those combinations at construction / installation time.
  TransportKind transport = TransportKind::Sim;
  net::SocketConfig socket{};
  // First value minted by every id family (tasks, jobs, services, ...).
  // Per-process deployments give each process a disjoint base so ids stay
  // globally unique across the wire; 0 keeps classic single-process ids.
  std::uint64_t id_base = 0;

  // --- retry / timeout hardening -------------------------------------------
  // The protocol tolerates loss passively (watchdogs, GC, periodic gossip);
  // these make the critical exchanges *actively* reliable under injected
  // faults. Acks cost one tiny message per report/sync; disable for
  // overhead ablations.
  RetryConfig retry{};
  bool ack_profiler_reports = true;
  bool ack_backup_sync = true;

  // --- overlay / domains (§4.1) ---------------------------------------------
  // "The only parameter determining the domain size is the maximum number
  // of processing peers a Resource Manager can manage."
  std::size_t max_domain_size = 32;
  overlay::QualificationConfig qualification{};
  std::size_t max_connections = 64;

  // --- local scheduling (§2) --------------------------------------------------
  sched::Policy scheduling_policy = sched::Policy::LeastLaxity;
  bool drop_hopeless_jobs = false;

  // --- profiler feedback (§4.4) ----------------------------------------------
  util::SimDuration report_period = util::milliseconds(500);
  double ewma_alpha = 0.3;
  // "The application QoS requirements determine the appropriate update
  // frequency" (§4.4): when enabled, the RM derives the report period from
  // the tightest running deadline (headroom / 10, clamped to
  // [report_period_min, report_period]) and announces it in heartbeats.
  bool adaptive_report_period = false;
  util::SimDuration report_period_min = util::milliseconds(100);

  // --- failure detection / RM succession (§4.1) --------------------------------
  util::SimDuration heartbeat_period = util::milliseconds(500);
  util::SimDuration rm_failure_timeout = util::milliseconds(1800);
  util::SimDuration member_failure_timeout = util::milliseconds(2500);
  util::SimDuration backup_sync_period = util::seconds(1);
  bool enable_backup_rm = true;

  // --- gossip / summaries (§3.1, §4.4) ------------------------------------------
  gossip::GossipConfig gossip{};
  std::size_t bloom_bits = 4096;
  std::size_t bloom_hashes = 4;
  // Hierarchical info base: admission reads the per-domain aggregate
  // (gossip::DomainAggregate, O(domains) state) instead of per-peer rows.
  // The aggregate is built from the same incrementally maintained
  // LoadIndex values legacy admission reads, so decisions — and therefore
  // whole deterministic runs — are bit-identical either way
  // (tests/scale_test.cpp differential, seeds 1..50). Deliberately does
  // NOT touch the wire; that is gossip_domain_aggregates below.
  bool enable_hierarchical_infobase = false;
  // Attach the fixed-size DomainAggregate digest to outgoing
  // DomainSummary gossip so remote RMs can answer capability /
  // load-quantile questions without per-peer rows. Grows each summary by
  // DomainAggregate::wire_size() bytes, which shifts transmission times —
  // kept separate from enable_hierarchical_infobase so the decision knob
  // is timing-neutral and golden traces only change when asked.
  bool gossip_domain_aggregates = false;

  // --- allocation (§4.3) --------------------------------------------------------
  AllocatorKind allocator = AllocatorKind::PaperBfs;
  std::size_t exhaustive_max_hops = 6;
  // Memoize Figure 3 enumerations per (start, goal) state pair until a
  // service or load change bumps the resource-graph epoch. Pure
  // memoization: results are identical with the cache off, just slower
  // (path_cache_test.cpp enforces this).
  bool enable_path_cache = true;
  // Floor on assumed spare capacity when estimating compute times on a
  // loaded peer (prevents divide-by-zero optimism inversion).
  double min_spare_capacity_fraction = 0.10;
  // Blend profiler-measured per-service execution times (§4.4 feedback)
  // into the RM's estimates: the estimate never undercuts what the peer
  // has actually been achieving. Ablation: off = pure cost model.
  bool use_measured_execution_times = true;

  // --- admission & adaptation (§4.5) ----------------------------------------------
  bool admission_control = true;
  // "if the processor or network load is constantly above a certain
  // threshold for all peers" -> overloaded domain.
  double overload_utilization = 0.90;
  int overload_consecutive_reports = 3;
  // A saturated CPU is normal while a transcode runs; a peer only counts
  // as overloaded when work is also *waiting* (queue depth / backlog).
  std::size_t overload_min_queue = 2;
  double overload_backlog_seconds = 3.0;
  // Network-load overload (§4.5 lists "processor or network load"): a peer
  // whose used bandwidth exceeds this fraction of its link also counts.
  double overload_bandwidth_fraction = 0.90;
  // Value-based admission (optional extension, after Jensen et al. [10]):
  // when the domain's mean utilization exceeds `busy_utilization`, tasks
  // with importance below `min_importance_when_busy` are turned away so the
  // remaining capacity serves the valuable work. 0 disables the gate.
  double busy_utilization = 0.75;
  double min_importance_when_busy = 0.0;
  bool enable_reassignment = true;
  util::SimDuration adaptation_period = util::seconds(1);
  // Reassignment restarts the pipeline from the source; bound how often a
  // single task may be moved and give fresh compositions time to make
  // progress before judging them.
  int max_reassignments_per_task = 2;
  util::SimDuration reassignment_cooldown = util::seconds(5);
  // Tasks still in the info base this long past their deadline are garbage
  // collected (their completion reports were lost, e.g. across an RM
  // failover) so they stop pinning load commitments.
  util::SimDuration task_gc_grace = util::minutes(1);
  bool redirect_across_domains = true;
  int max_redirects = 3;

  // --- parallel execution (docs/PARALLELISM.md) -------------------------------------
  // Shard the event loop across this many worker threads, partitioning
  // peers by domain; lookahead is derived from the topology's latency
  // floor. 1 (the default) keeps the classic sequential path entirely
  // untouched. Any N produces byte-identical traces, digests, and metrics
  // to N=1 (tests/parallel_test.cpp proves it per fuzz seed).
  unsigned num_threads = 1;
  // Adaptive shard rebalancing: every `rebalance_interval_windows`
  // conservative windows the engine hands its per-shard events-per-window
  // EWMA to the System, which migrates the hottest domains off the hottest
  // shard (when its EWMA exceeds `rebalance_imbalance` x the mean) and
  // refreshes the per-(src,dst) lookahead matrix from the new membership's
  // coordinate bounding boxes. Pure routing: under the ordered-commit
  // engine the commit order is the global (time, id) order regardless of
  // which shard queue an event sits in, so this can never change behaviour
  // (the rebalance differential test in parallel_test.cpp proves it).
  bool enable_shard_rebalance = true;
  std::uint64_t rebalance_interval_windows = 64;
  double rebalance_imbalance = 1.25;

  // --- observability ---------------------------------------------------------------
  // Emit HopStarted/HopCompleted trace events so obs::build_task_spans can
  // reconstruct full per-task span trees (docs/OBSERVABILITY.md). Off by
  // default: the coarse lifecycle events stay byte-identical to the golden
  // traces and hop volume can dwarf the trace ring on long runs.
  bool enable_spans = false;

  // --- workload-facing cost model -------------------------------------------------
  media::CostModelConfig cost_model{};
};

}  // namespace p2prm::core

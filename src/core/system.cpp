#include "core/system.hpp"

#include <algorithm>

#include "fault/fault_injector.hpp"

namespace p2prm::core {

std::string_view task_status_name(TaskStatus s) {
  switch (s) {
    case TaskStatus::Pending: return "pending";
    case TaskStatus::Completed: return "completed";
    case TaskStatus::Rejected: return "rejected";
    case TaskStatus::Failed: return "failed";
    case TaskStatus::Orphaned: return "orphaned";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// TaskLedger

void TaskLedger::on_submitted(const TaskRecord& record) {
  records_[record.id] = record;
}

void TaskLedger::on_estimate(util::TaskId id, util::SimDuration estimated) {
  const auto it = records_.find(id);
  // A late (retried/duplicated) accept after the terminal outcome must not
  // count again: on_completed already credited the admission.
  if (it == records_.end() || it->second.status != TaskStatus::Pending) return;
  if (it->second.estimated_execution < 0) ++admitted_;
  it->second.estimated_execution = estimated;
}

void TaskLedger::on_deadline_update(util::TaskId id,
                                    util::SimDuration new_deadline) {
  const auto it = records_.find(id);
  if (it == records_.end() || it->second.status != TaskStatus::Pending) return;
  it->second.deadline = new_deadline;
}

void TaskLedger::on_completed(util::TaskId id, util::SimTime at, bool missed) {
  const auto it = records_.find(id);
  if (it == records_.end() || it->second.status != TaskStatus::Pending) return;
  it->second.status = TaskStatus::Completed;
  it->second.missed_deadline = missed;
  it->second.finished = at;
  // A completion implies admission even if the TaskAccept itself was lost.
  if (it->second.estimated_execution < 0) ++admitted_;
  ++completed_;
  if (missed) ++missed_;
  response_times_.add(util::to_seconds(at - it->second.submitted));
}

void TaskLedger::on_rejected(util::TaskId id, const std::string& reason) {
  const auto it = records_.find(id);
  if (it == records_.end() || it->second.status != TaskStatus::Pending) return;
  it->second.status = TaskStatus::Rejected;
  it->second.reason = reason;
  ++rejected_;
}

void TaskLedger::on_failed(util::TaskId id, const std::string& reason) {
  const auto it = records_.find(id);
  if (it == records_.end() || it->second.status != TaskStatus::Pending) return;
  it->second.status = TaskStatus::Failed;
  it->second.reason = reason;
  ++failed_;
}

void TaskLedger::orphan_pending(util::SimTime at) {
  for (auto& [_, record] : records_) {
    if (record.status == TaskStatus::Pending) {
      record.status = TaskStatus::Orphaned;
      record.finished = at;
      ++orphaned_;
    }
  }
}

const TaskRecord* TaskLedger::record(util::TaskId id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

std::size_t TaskLedger::pending() const {
  return records_.size() - completed_ - rejected_ - failed_ - orphaned_;
}

double TaskLedger::on_time_ratio() const {
  return completed_ ? static_cast<double>(completed_ - missed_) /
                          static_cast<double>(completed_)
                    : 0.0;
}

double TaskLedger::miss_ratio() const {
  if (records_.empty()) return 0.0;
  const std::size_t bad = missed_ + rejected_ + failed_ + orphaned_;
  return static_cast<double>(bad) / static_cast<double>(records_.size());
}

double TaskLedger::goodput() const {
  if (records_.empty()) return 0.0;
  return static_cast<double>(completed_ - missed_) /
         static_cast<double>(records_.size());
}

// ---------------------------------------------------------------------------
// System

System::System(SystemConfig config)
    : config_(config),
      sim_(config.seed),
      topology_(config.topology),
      placement_rng_(sim_.rng().fork()),
      workload_rng_(sim_.rng().fork()) {
  if (config_.num_threads > 1) {
    sim::ParallelConfig pc;
    pc.threads = config_.num_threads;
    pc.lookahead = topology_.min_latency();
    pc.mode = sim::ParallelMode::OrderedCommit;
    sim_.enable_parallel(pc);
    sim_.set_shard_router([this](util::PeerId peer) { return shard_of(peer); });
  }
  network_ = std::make_unique<net::Network>(sim_, topology_,
                                            config.message_drop_probability);
}

sim::ShardId System::shard_of(util::PeerId peer) const {
  if (config_.num_threads <= 1) return 0;
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return 0;
  const util::DomainId d = it->second->domain();
  if (!d.valid()) return 0;
  return static_cast<sim::ShardId>(d.value() % config_.num_threads);
}

System::~System() = default;

util::PeerId System::add_peer(const overlay::PeerSpec& spec_template,
                              PeerInventory inventory,
                              std::optional<net::Coordinates> at,
                              std::optional<util::PeerId> contact) {
  overlay::PeerSpec spec = spec_template;
  if (!spec.id.valid()) spec.id = next_peer_id();
  // A peer's uptime history may predate joining this overlay (the caller
  // sets online_since in the past to model long-running machines, which is
  // what makes RM qualification attainable); never let it sit in the future.
  if (spec.online_since > sim_.now()) spec.online_since = sim_.now();

  if (at) {
    topology_.place_at(spec.id, *at);
  } else {
    topology_.place(spec.id, placement_rng_);
  }

  auto node = std::make_unique<PeerNode>(*this, spec, std::move(inventory));
  PeerNode* raw = node.get();
  peers_[spec.id] = std::move(node);

  network_->attach(spec.id, spec.link,
                   [raw](util::PeerId from, const net::Message& m) {
                     raw->handle_message(from, m);
                   });

  std::optional<util::PeerId> boot = contact;
  if (!boot) boot = random_alive_peer(spec.id);
  raw->start(boot);
  return spec.id;
}

void System::leave_peer(util::PeerId peer) {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  it->second->leave();
  network_->detach(peer);
}

void System::crash_peer(util::PeerId peer) {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  network_->detach(peer);  // detach first: a crash sends nothing
  it->second->crash();
}

bool System::restart_peer(util::PeerId peer) {
  const auto it = peers_.find(peer);
  if (it == peers_.end() || it->second->alive()) return false;
  overlay::PeerSpec spec = it->second->spec();
  PeerInventory inventory = it->second->inventory();
  // The process restarted: uptime history starts over (this matters for RM
  // qualification), but identity, placement and stored media survive.
  spec.online_since = sim_.now();
  auto node = std::make_unique<PeerNode>(*this, spec, std::move(inventory));
  PeerNode* raw = node.get();
  // The dead node may still be referenced by simulator callbacks it
  // scheduled before crashing (they no-op once !alive_). Park it instead of
  // destroying it — nodes are never freed mid-run.
  retired_.push_back(std::move(it->second));
  it->second = std::move(node);
  network_->attach(spec.id, spec.link,
                   [raw](util::PeerId from, const net::Message& m) {
                     raw->handle_message(from, m);
                   });
  raw->start(random_alive_peer(spec.id));
  trace(TraceKind::PeerJoined, spec.id, util::TaskId::invalid(),
        util::DomainId::invalid(), {{"reason", "restarted"}});
  return true;
}

fault::FaultInjector& System::install_fault_plan(fault::FaultPlan plan) {
  fault::FaultInjector::Hooks hooks;
  hooks.crash = [this](util::PeerId p) { crash_peer(p); };
  hooks.restart = [this](util::PeerId p) { restart_peer(p); };
  hooks.primary_rm = [this] {
    const auto rms = resource_manager_ids();
    return rms.empty() ? util::PeerId::invalid() : rms.front();
  };
  fault_injector_ = std::make_unique<fault::FaultInjector>(
      sim_, *network_, std::move(plan), std::move(hooks));
  fault_injector_->arm();
  return *fault_injector_;
}

PeerNode* System::peer(util::PeerId id) {
  const auto it = peers_.find(id);
  return it == peers_.end() ? nullptr : it->second.get();
}

const PeerNode* System::peer(util::PeerId id) const {
  const auto it = peers_.find(id);
  return it == peers_.end() ? nullptr : it->second.get();
}

std::vector<util::PeerId> System::peer_ids() const {
  std::vector<util::PeerId> out;
  out.reserve(peers_.size());
  for (const auto& [id, _] : peers_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<util::PeerId> System::alive_peer_ids() const {
  std::vector<util::PeerId> out;
  for (const auto& [id, node] : peers_) {
    if (node->alive()) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<util::PeerId> System::resource_manager_ids() const {
  std::vector<util::PeerId> out;
  for (const auto& [id, node] : peers_) {
    if (node->alive() && node->resource_manager() != nullptr) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<util::PeerId> System::random_alive_peer(util::PeerId exclude) {
  std::vector<util::PeerId> candidates;
  for (const auto& [id, node] : peers_) {
    if (id != exclude && node->alive() && node->joined()) {
      candidates.push_back(id);
    }
  }
  if (candidates.empty()) return std::nullopt;
  std::sort(candidates.begin(), candidates.end());
  return candidates[placement_rng_.below(candidates.size())];
}

std::size_t System::alive_count() const {
  std::size_t n = 0;
  for (const auto& [_, node] : peers_) {
    if (node->alive()) ++n;
  }
  return n;
}

util::TaskId System::submit_task(util::PeerId origin, QoSRequirements q) {
  const util::TaskId id = next_task_id();
  TaskRecord record;
  record.id = id;
  record.origin = origin;
  record.submitted = sim_.now();
  record.deadline = q.deadline;
  ledger_.on_submitted(record);
  trace(TraceKind::TaskSubmitted, origin, id);

  PeerNode* node = peer(origin);
  if (node == nullptr || !node->alive() || !node->joined()) {
    ledger_.on_rejected(id, "origin-unavailable");
    return id;
  }
  node->submit_request(id, std::move(q));
  return id;
}

void System::trace(TraceKind kind, util::PeerId peer, util::TaskId task,
                   util::DomainId domain, obs::Attrs attrs) {
  if (tracer_ == nullptr) return;
  TraceEvent e;
  e.at = sim_.now();
  e.kind = kind;
  e.peer = peer;
  e.task = task;
  e.domain = domain;
  e.detail = derive_detail(kind, attrs);
  e.attrs = std::move(attrs);
  tracer_->record(std::move(e));
}

bool System::update_task_deadline(util::TaskId task,
                                  util::SimDuration new_deadline) {
  const auto* record = ledger_.record(task);
  if (record == nullptr || record->status != TaskStatus::Pending) return false;
  PeerNode* origin = peer(record->origin);
  if (origin == nullptr || !origin->alive() || !origin->joined()) return false;
  ledger_.on_deadline_update(task, new_deadline);
  origin->request_qos_update(task, new_deadline);
  return true;
}

std::vector<System::DomainInfo> System::domains() const {
  std::vector<DomainInfo> out;
  for (const auto& [id, node] : peers_) {
    const auto* rm = node->resource_manager();
    if (node->alive() && rm != nullptr) {
      out.push_back(DomainInfo{rm->info().domain().id(), id,
                               rm->info().domain().size()});
    }
  }
  std::sort(out.begin(), out.end(), [](const DomainInfo& a, const DomainInfo& b) {
    return a.domain < b.domain;
  });
  return out;
}

}  // namespace p2prm::core

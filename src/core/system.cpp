#include "core/system.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/wire_registry.hpp"
#include "fault/fault_injector.hpp"
#include "fault/frame_shim.hpp"

namespace p2prm::core {

std::string_view task_status_name(TaskStatus s) {
  switch (s) {
    case TaskStatus::Pending: return "pending";
    case TaskStatus::Completed: return "completed";
    case TaskStatus::Rejected: return "rejected";
    case TaskStatus::Failed: return "failed";
    case TaskStatus::Orphaned: return "orphaned";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// TaskLedger

void TaskLedger::on_submitted(const TaskRecord& record) {
  records_[record.id] = record;
}

void TaskLedger::on_estimate(util::TaskId id, util::SimDuration estimated) {
  const auto it = records_.find(id);
  // A late (retried/duplicated) accept after the terminal outcome must not
  // count again: on_completed already credited the admission.
  if (it == records_.end() || it->second.status != TaskStatus::Pending) return;
  if (it->second.estimated_execution < 0) ++admitted_;
  it->second.estimated_execution = estimated;
}

void TaskLedger::on_deadline_update(util::TaskId id,
                                    util::SimDuration new_deadline) {
  const auto it = records_.find(id);
  if (it == records_.end() || it->second.status != TaskStatus::Pending) return;
  it->second.deadline = new_deadline;
}

void TaskLedger::on_completed(util::TaskId id, util::SimTime at, bool missed) {
  const auto it = records_.find(id);
  if (it == records_.end() || it->second.status != TaskStatus::Pending) return;
  it->second.status = TaskStatus::Completed;
  it->second.missed_deadline = missed;
  it->second.finished = at;
  // A completion implies admission even if the TaskAccept itself was lost.
  if (it->second.estimated_execution < 0) ++admitted_;
  ++completed_;
  if (missed) ++missed_;
  response_times_.add(util::to_seconds(at - it->second.submitted));
}

void TaskLedger::on_rejected(util::TaskId id, const std::string& reason) {
  const auto it = records_.find(id);
  if (it == records_.end() || it->second.status != TaskStatus::Pending) return;
  it->second.status = TaskStatus::Rejected;
  it->second.reason = reason;
  ++rejected_;
}

void TaskLedger::on_failed(util::TaskId id, const std::string& reason) {
  const auto it = records_.find(id);
  if (it == records_.end() || it->second.status != TaskStatus::Pending) return;
  it->second.status = TaskStatus::Failed;
  it->second.reason = reason;
  ++failed_;
}

void TaskLedger::orphan_pending(util::SimTime at) {
  for (auto& [_, record] : records_) {
    if (record.status == TaskStatus::Pending) {
      record.status = TaskStatus::Orphaned;
      record.finished = at;
      ++orphaned_;
    }
  }
}

const TaskRecord* TaskLedger::record(util::TaskId id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

std::size_t TaskLedger::pending() const {
  return records_.size() - completed_ - rejected_ - failed_ - orphaned_;
}

double TaskLedger::on_time_ratio() const {
  return completed_ ? static_cast<double>(completed_ - missed_) /
                          static_cast<double>(completed_)
                    : 0.0;
}

double TaskLedger::miss_ratio() const {
  if (records_.empty()) return 0.0;
  const std::size_t bad = missed_ + rejected_ + failed_ + orphaned_;
  return static_cast<double>(bad) / static_cast<double>(records_.size());
}

double TaskLedger::goodput() const {
  if (records_.empty()) return 0.0;
  return static_cast<double>(completed_ - missed_) /
         static_cast<double>(records_.size());
}

// ---------------------------------------------------------------------------
// System

System::System(SystemConfig config)
    : config_(config),
      sim_(config.seed),
      topology_(config.topology),
      placement_rng_(sim_.rng().fork()),
      workload_rng_(sim_.rng().fork()) {
  if (config_.id_base != 0) {
    task_ids_ = util::IdGenerator<util::TaskId>(config_.id_base);
    job_ids_ = util::IdGenerator<util::JobId>(config_.id_base);
    service_ids_ = util::IdGenerator<util::ServiceId>(config_.id_base);
    object_ids_ = util::IdGenerator<util::ObjectId>(config_.id_base);
    peer_ids_gen_ = util::IdGenerator<util::PeerId>(config_.id_base);
    domain_ids_ = util::IdGenerator<util::DomainId>(config_.id_base);
  }
  if (config_.transport == TransportKind::Socket && config_.num_threads > 1) {
    // The parallel engine's ordered-commit machinery is a property of the
    // simulated event loop; real sockets are paced by the wall clock.
    throw std::invalid_argument(
        "socket transport requires num_threads == 1");
  }
  if (config_.num_threads > 1) {
    sim::ParallelConfig pc;
    pc.threads = config_.num_threads;
    pc.lookahead = topology_.min_latency();
    pc.mode = sim::ParallelMode::OrderedCommit;
    if (config_.enable_shard_rebalance) {
      pc.rebalance_interval_windows = config_.rebalance_interval_windows;
    }
    sim_.enable_parallel(pc);
    // The router mutates the domain_events_ tally (a util::FlatMap, not
    // thread-safe). That is sound only because System pins OrderedCommit,
    // where every handler — and therefore every schedule call that
    // consults the router — runs serially on the coordinator. If System
    // ever adopts ShardConcurrent, the tally must become per-shard or
    // atomic before this router can be installed.
    sim_.set_shard_router(
        [this](util::PeerId peer) { return route_peer(peer); });
    if (config_.enable_shard_rebalance) {
      sim_.parallel_engine()->set_rebalance_hook(
          [this](const std::vector<double>& ewma) { rebalance_shards(ewma); });
    }
  }
  if (config_.transport == TransportKind::Socket) {
    socket_transport_ = std::make_unique<net::SocketTransport>(
        config_.socket, &decode_message);
    transport_ = socket_transport_.get();
    realtime_ = std::make_unique<net::RealtimeDriver>(
        sim_, *socket_transport_, config_.socket.time_scale);
  } else {
    network_ = std::make_unique<net::Network>(
        sim_, topology_, config.message_drop_probability);
    transport_ = network_.get();
  }
}

void System::run_until(util::SimTime t) {
  if (realtime_ != nullptr) {
    realtime_->run_until(t);
  } else {
    sim_.run_until(t);
  }
}

void System::drain_transport(int wall_ms) {
  if (realtime_ != nullptr) realtime_->drain(wall_ms);
}

sim::ShardId System::domain_shard(util::DomainId d) const {
  if (const sim::ShardId* s = shard_overrides_.find(d.value())) return *s;
  return static_cast<sim::ShardId>(d.value() % config_.num_threads);
}

sim::ShardId System::shard_of(util::PeerId peer) const {
  if (config_.num_threads <= 1) return 0;
  const PeerNode* node = registry_.node_of(peer);
  if (node == nullptr) return 0;
  const util::DomainId d = node->domain();
  if (!d.valid()) return 0;
  return domain_shard(d);
}

sim::ShardId System::route_peer(util::PeerId peer) {
  if (config_.num_threads <= 1) return 0;
  const PeerNode* node = registry_.node_of(peer);
  if (node == nullptr) return 0;
  const util::DomainId d = node->domain();
  if (!d.valid()) return 0;
  // Tally traffic per domain so the rebalancer knows what is hot. The
  // tally influences only routing decisions, never event content, so it is
  // free to live on the scheduling hot path. Unsynchronized by design:
  // under OrderedCommit (the only mode System runs) scheduling is
  // serialized on the coordinator — see the note at the router
  // installation in the constructor.
  if (config_.enable_shard_rebalance) domain_events_[d.value()] += 1.0;
  return domain_shard(d);
}

void System::rebalance_shards(const std::vector<double>& shard_ewma) {
  auto* engine = sim_.parallel_engine();
  if (engine == nullptr || shard_ewma.size() < 2) return;
  const auto n = static_cast<sim::ShardId>(shard_ewma.size());

  // Hot/cool shard from the engine's executed-per-window EWMA; ties break
  // toward the lower shard id so the decision is deterministic.
  sim::ShardId hot = 0, cool = 0;
  double total = 0.0;
  for (sim::ShardId s = 0; s < n; ++s) {
    total += shard_ewma[s];
    if (shard_ewma[s] > shard_ewma[hot]) hot = s;
    if (shard_ewma[s] < shard_ewma[cool]) cool = s;
  }
  const double mean = total / static_cast<double>(n);
  if (hot != cool && mean > 0.0 &&
      shard_ewma[hot] > config_.rebalance_imbalance * mean) {
    // Migrate the heaviest domain currently homed on the hot shard, by the
    // decayed per-domain traffic tally (ties toward the lower domain id).
    // One domain per invocation: small deterministic steps, re-evaluated
    // next interval with fresh EWMAs.
    std::uint64_t best_domain = 0;
    double best_weight = 0.0;
    bool found = false;
    domain_events_.for_each([&](const std::uint64_t& d, double& w) {
      if (domain_shard(util::DomainId{d}) != hot) return;
      if (!found || w > best_weight || (w == best_weight && d < best_domain)) {
        found = true;
        best_domain = d;
        best_weight = w;
      }
    });
    if (found && best_weight > 0.0) {
      if (static_cast<sim::ShardId>(best_domain % config_.num_threads) ==
          cool) {
        shard_overrides_.erase(best_domain);  // cool is its hash home
      } else {
        shard_overrides_.insert_or_assign(best_domain, cool);
      }
    }
  }
  // Halve the tallies so old traffic fades; drop domains that fell silent
  // (collect first — the flat map must not be mutated mid-iteration).
  std::vector<std::uint64_t> faded;
  domain_events_.for_each([&](const std::uint64_t& d, double& w) {
    w *= 0.5;
    if (w < 0.5) faded.push_back(d);
  });
  for (const auto d : faded) domain_events_.erase(d);
  // Membership or routing may have shifted: refresh the per-pair lookahead
  // matrix from the current shard bounding boxes.
  engine->set_pair_lookahead(compute_pair_lookahead());
}

std::vector<util::SimDuration> System::compute_pair_lookahead() const {
  const auto n = static_cast<std::size_t>(config_.num_threads);
  struct Box {
    double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;
    bool any = false;
  };
  std::vector<Box> boxes(n);
  // Min/max folds are commutative, so the unordered peer iteration cannot
  // leak ordering into the result.
  registry_.for_each_node([&](std::uint32_t row, const PeerNode& node) {
    const util::PeerId id = registry_.id(row);
    if (!node.alive() || !topology_.contains(id)) return;
    const util::DomainId d = node.domain();
    const sim::ShardId s = d.valid() ? domain_shard(d) : 0;
    const net::Coordinates c = topology_.coordinates(id);
    Box& b = boxes[s];
    if (!b.any) {
      b = Box{c.x, c.y, c.x, c.y, true};
    } else {
      b.min_x = std::min(b.min_x, c.x);
      b.min_y = std::min(b.min_y, c.y);
      b.max_x = std::max(b.max_x, c.x);
      b.max_y = std::max(b.max_y, c.y);
    }
  });
  std::vector<util::SimDuration> matrix(n * n, topology_.min_latency());
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      if (src == dst || !boxes[src].any || !boxes[dst].any) continue;
      // Box-to-box distance lower-bounds the distance of any member pair,
      // so the latency floor at that distance lower-bounds any src -> dst
      // message delay.
      const double dx = std::max(
          {0.0, boxes[src].min_x - boxes[dst].max_x,
           boxes[dst].min_x - boxes[src].max_x});
      const double dy = std::max(
          {0.0, boxes[src].min_y - boxes[dst].max_y,
           boxes[dst].min_y - boxes[src].max_y});
      matrix[src * n + dst] =
          topology_.latency_floor(std::sqrt(dx * dx + dy * dy));
    }
  }
  return matrix;
}

System::~System() = default;

PeerNode* System::build_node(std::uint32_t row, overlay::PeerSpec spec,
                             PeerInventory inventory) {
  auto node = std::make_unique<PeerNode>(*this, spec, std::move(inventory));
  PeerNode* raw = registry_.attach_node(row, std::move(node));
  transport_->attach(spec.id, spec.link,
                     [raw](util::PeerId from, const net::Message& m) {
                       raw->handle_message(from, m);
                     });
  return raw;
}

util::PeerId System::add_peer(const overlay::PeerSpec& spec_template,
                              PeerInventory inventory,
                              std::optional<net::Coordinates> at,
                              std::optional<util::PeerId> contact) {
  overlay::PeerSpec spec = spec_template;
  if (!spec.id.valid()) spec.id = next_peer_id();
  // A peer's uptime history may predate joining this overlay (the caller
  // sets online_since in the past to model long-running machines, which is
  // what makes RM qualification attainable); never let it sit in the future.
  if (spec.online_since > sim_.now()) spec.online_since = sim_.now();

  net::Coordinates coords;
  if (at) {
    coords = *at;
    topology_.place_at(spec.id, coords);
  } else {
    coords = topology_.place(spec.id, placement_rng_);
  }

  const std::uint32_t row = registry_.add_row(spec, coords, PeerState::Live);
  PeerNode* raw = build_node(row, spec, std::move(inventory));

  std::optional<util::PeerId> boot = contact;
  if (!boot) boot = random_alive_peer(spec.id);
  raw->start(boot);
  return spec.id;
}

util::PeerId System::add_lazy_peer(const overlay::PeerSpec& spec_template,
                                   PeerInventory inventory,
                                   std::optional<net::Coordinates> at) {
  overlay::PeerSpec spec = spec_template;
  if (!spec.id.valid()) spec.id = next_peer_id();
  if (spec.online_since > sim_.now()) spec.online_since = sim_.now();
  // Coordinates are drawn now (same rng the eager path uses) but live only
  // in the row until materialization keeps the topology table O(materialized).
  const net::Coordinates coords = at ? *at : topology_.draw(placement_rng_);
  registry_.add_row(spec, coords, PeerState::Lazy);
  registry_.stash_inventory(spec.id, std::move(inventory));
  return spec.id;
}

bool System::materialize_peer(util::PeerId peer,
                              std::optional<util::PeerId> contact) {
  const std::uint32_t row = registry_.row_of(peer);
  if (row == PeerRegistry::kNoSlot ||
      registry_.state(row) != PeerState::Lazy) {
    return false;
  }
  overlay::PeerSpec spec = registry_.spec(row);
  if (spec.online_since > sim_.now()) spec.online_since = sim_.now();
  topology_.place_at(peer, registry_.coordinates(row));
  registry_.set_state(row, PeerState::Live);
  PeerNode* raw = build_node(row, spec, registry_.take_inventory(peer));
  std::optional<util::PeerId> boot = contact;
  if (!boot) boot = random_alive_peer(peer);
  raw->start(boot);
  return true;
}

bool System::demote_peer(util::PeerId peer) {
  const std::uint32_t row = registry_.row_of(peer);
  if (row == PeerRegistry::kNoSlot) return false;
  PeerNode* node = registry_.node(row);
  if (node == nullptr || !node->quiescent()) return false;
  // Graceful departure so the RM drops the member promptly, then tear the
  // node down for real. Destroying mid-run is safe: every deferred
  // callback a node schedules is routed through its lifetime guard
  // (PeerNode::defer_after), timers/retry-ops are cancelled by
  // stop_local_work, and in-flight network deliveries are invalidated by
  // the endpoint epoch bump on detach.
  node->leave();
  transport_->detach(peer);
  topology_.remove(peer);
  registry_.stash_inventory(peer, node->inventory());
  registry_.detach_node(row).reset();
  registry_.set_state(row, PeerState::Lazy);
  return true;
}

std::size_t System::demote_idle_peers(util::SimDuration min_idle) {
  // Candidates first: demote_peer mutates the node storage mid-iteration.
  std::vector<util::PeerId> idle;
  registry_.for_each_node([&](std::uint32_t row, const PeerNode& node) {
    if (node.quiescent() && sim_.now() - node.last_activity() >= min_idle) {
      idle.push_back(registry_.id(row));
    }
  });
  std::sort(idle.begin(), idle.end());
  std::size_t demoted = 0;
  for (const util::PeerId id : idle) {
    if (demote_peer(id)) ++demoted;
  }
  return demoted;
}

void System::leave_peer(util::PeerId peer) {
  const std::uint32_t row = registry_.row_of(peer);
  if (row == PeerRegistry::kNoSlot) return;
  PeerNode* node = registry_.node(row);
  if (node == nullptr) return;
  node->leave();
  transport_->detach(peer);
  if (registry_.state(row) == PeerState::Live) {
    registry_.set_state(row, PeerState::Left);
  }
}

void System::crash_peer(util::PeerId peer) {
  const std::uint32_t row = registry_.row_of(peer);
  if (row == PeerRegistry::kNoSlot) return;
  PeerNode* node = registry_.node(row);
  if (node == nullptr) return;
  transport_->detach(peer);  // detach first: a crash sends nothing
  node->crash();
  if (registry_.state(row) == PeerState::Live) {
    registry_.set_state(row, PeerState::Crashed);
  }
}

bool System::restart_peer(util::PeerId peer) {
  const std::uint32_t row = registry_.row_of(peer);
  if (row == PeerRegistry::kNoSlot) return false;
  PeerNode* old = registry_.node(row);
  if (old == nullptr || old->alive()) return false;
  overlay::PeerSpec spec = old->spec();
  PeerInventory inventory = old->inventory();
  // The process restarted: uptime history starts over (this matters for RM
  // qualification), but identity, placement and stored media survive.
  spec.online_since = sim_.now();
  registry_.set_online_since(row, spec.online_since);
  // The dead node may still be referenced by simulator callbacks it
  // scheduled before crashing (they no-op once !alive_). Park it instead of
  // destroying it — restarts keep the historical never-free-mid-run
  // behaviour (demotion is the lifecycle that proves destruction safe).
  retired_.push_back(registry_.detach_node(row));
  registry_.set_state(row, PeerState::Live);
  PeerNode* raw = build_node(row, spec, std::move(inventory));
  raw->start(random_alive_peer(spec.id));
  trace(TraceKind::PeerJoined, spec.id, util::TaskId::invalid(),
        util::DomainId::invalid(), {{"reason", "restarted"}});
  return true;
}

void System::install_fault_plan(fault::FaultPlan plan) {
  fault::FaultInjector::Hooks hooks;
  hooks.crash = [this](util::PeerId p) { crash_peer(p); };
  hooks.restart = [this](util::PeerId p) { restart_peer(p); };
  hooks.primary_rm = [this] {
    const auto rms = resource_manager_ids();
    return rms.empty() ? util::PeerId::invalid() : rms.front();
  };
  if (network_ != nullptr) {
    // Sim mode: the injector hooks the Network's delivery pipeline.
    fault_injector_ = std::make_unique<fault::FaultInjector>(
        sim_, *network_, std::move(plan), std::move(hooks));
    fault_injector_->arm();
    return;
  }
  // Socket mode: a frame-granularity shim on the transport executes the
  // link faults and partition cuts (docs/TRANSPORT.md); crash/restart
  // events reuse the same peer-lifecycle hooks (crash_peer detaches the
  // listener, so remote frames drop exactly as for a killed process).
  socket_fault_ = std::make_unique<fault::SocketFaultInjector>(
      sim_, *socket_transport_, std::move(plan), std::move(hooks));
  socket_fault_->arm();
}

PeerNode* System::peer(util::PeerId id) { return registry_.node_of(id); }

const PeerNode* System::peer(util::PeerId id) const {
  return registry_.node_of(id);
}

std::vector<util::PeerId> System::peer_ids() const {
  std::vector<util::PeerId> out;
  out.reserve(registry_.size());
  registry_.for_each_row(
      [&](std::uint32_t row) { out.push_back(registry_.id(row)); });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<util::PeerId> System::materialized_peer_ids() const {
  std::vector<util::PeerId> out;
  out.reserve(registry_.materialized());
  registry_.for_each_node([&](std::uint32_t row, const PeerNode&) {
    out.push_back(registry_.id(row));
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<util::PeerId> System::alive_peer_ids() const {
  std::vector<util::PeerId> out;
  registry_.for_each_node([&](std::uint32_t row, const PeerNode& node) {
    if (node.alive()) out.push_back(registry_.id(row));
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<util::PeerId> System::resource_manager_ids() const {
  std::vector<util::PeerId> out;
  registry_.for_each_node([&](std::uint32_t row, const PeerNode& node) {
    if (node.alive() && node.resource_manager() != nullptr) {
      out.push_back(registry_.id(row));
    }
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<util::PeerId> System::random_alive_peer(util::PeerId exclude) {
  std::vector<util::PeerId> candidates;
  registry_.for_each_node([&](std::uint32_t row, const PeerNode& node) {
    const util::PeerId id = registry_.id(row);
    if (id != exclude && node.alive() && node.joined()) {
      candidates.push_back(id);
    }
  });
  if (candidates.empty()) return std::nullopt;
  std::sort(candidates.begin(), candidates.end());
  return candidates[placement_rng_.below(candidates.size())];
}

std::size_t System::alive_count() const {
  std::size_t n = 0;
  registry_.for_each_node([&](std::uint32_t, const PeerNode& node) {
    if (node.alive()) ++n;
  });
  return n;
}

util::TaskId System::submit_task(util::PeerId origin, QoSRequirements q) {
  const util::TaskId id = next_task_id();
  TaskRecord record;
  record.id = id;
  record.origin = origin;
  record.submitted = sim_.now();
  record.deadline = q.deadline;
  ledger_.on_submitted(record);
  trace(TraceKind::TaskSubmitted, origin, id);

  PeerNode* node = peer(origin);
  if (node == nullptr) {
    // First touch of a lazy peer: materialize it and start its join. The
    // join handshake takes network round-trips, so this first task is
    // still rejected — cold-start semantics (docs/SCALING.md): the touch
    // buys *future* submissions a live origin.
    materialize_peer(origin);
    node = peer(origin);
  }
  if (node == nullptr || !node->alive() || !node->joined()) {
    ledger_.on_rejected(id, "origin-unavailable");
    return id;
  }
  node->submit_request(id, std::move(q));
  return id;
}

void System::trace(TraceKind kind, util::PeerId peer, util::TaskId task,
                   util::DomainId domain, obs::Attrs attrs) {
  if (tracer_ == nullptr) return;
  TraceEvent e;
  e.at = sim_.now();
  e.kind = kind;
  e.peer = peer;
  e.task = task;
  e.domain = domain;
  e.detail = derive_detail(kind, attrs);
  e.attrs = std::move(attrs);
  tracer_->record(std::move(e));
}

bool System::update_task_deadline(util::TaskId task,
                                  util::SimDuration new_deadline) {
  const auto* record = ledger_.record(task);
  if (record == nullptr || record->status != TaskStatus::Pending) return false;
  PeerNode* origin = peer(record->origin);
  if (origin == nullptr || !origin->alive() || !origin->joined()) return false;
  ledger_.on_deadline_update(task, new_deadline);
  origin->request_qos_update(task, new_deadline);
  return true;
}

std::vector<System::DomainInfo> System::domains() const {
  std::vector<DomainInfo> out;
  registry_.for_each_node([&](std::uint32_t row, const PeerNode& node) {
    const auto* rm = node.resource_manager();
    if (node.alive() && rm != nullptr) {
      out.push_back(DomainInfo{rm->info().domain().id(), registry_.id(row),
                               rm->info().domain().size()});
    }
  });
  std::sort(out.begin(), out.end(), [](const DomainInfo& a, const DomainInfo& b) {
    return a.domain < b.domain;
  });
  return out;
}

}  // namespace p2prm::core

#include "core/peer_node.hpp"

#include <cassert>

#include "core/system.hpp"
#include "util/logging.hpp"

namespace p2prm::core {

namespace {
constexpr const char* kLog = "peer";
}

PeerNode::PeerNode(System& system, overlay::PeerSpec spec,
                   PeerInventory inventory)
    : system_(system),
      spec_(spec),
      inventory_(std::move(inventory)),
      profiler_(spec.capacity_ops_per_s,
                profile::ProfilerConfig{system.config().ewma_alpha}),
      conns_(system.config().max_connections) {
  sched::ProcessorConfig pc;
  pc.ops_per_second = spec_.capacity_ops_per_s;
  pc.policy = system_.config().scheduling_policy;
  pc.drop_hopeless_jobs = system_.config().drop_hopeless_jobs;
  processor_ = std::make_unique<sched::Processor>(
      system_.simulator(), pc,
      [this](const sched::Job& job, sched::JobStatus status) {
        on_job_finished(job, status);
      });
}

PeerNode::~PeerNode() { stop_local_work(); }

// ---------------------------------------------------------------------------
// Lifecycle

void PeerNode::start(std::optional<util::PeerId> contact) {
  alive_ = true;
  last_activity_ = system_.simulator().now();
  boot_contact_ = contact;
  if (!contact) {
    // First peer in the network: found the first domain (§4.1).
    become_rm(system_.next_domain_id(), {}, /*epoch=*/1, std::nullopt);
    return;
  }
  auto req = std::make_unique<overlay::JoinRequest>();
  req->spec = spec_;
  send(*contact, std::move(req));
  arm_join_watchdog();
}

void PeerNode::leave() {
  if (!alive_) return;
  if (joined_ && !rm_ && my_rm_.valid()) {
    auto notice = std::make_unique<overlay::LeaveNotice>();
    send(my_rm_, std::move(notice));
  }
  // An RM leaving gracefully still relies on the backup takeover path: the
  // paper's §4.1 describes succession only through the backup "sensing the
  // withdrawn connection".
  stop_local_work();
  alive_ = false;
  joined_ = false;
}

void PeerNode::crash() {
  stop_local_work();
  alive_ = false;
  joined_ = false;
}

void PeerNode::stop_local_work() {
  report_timer_.cancel();
  membership_timer_.cancel();
  report_retry_op_.cancel();
  for (auto& [task, op] : query_retries_) op.cancel();
  query_retries_.clear();
  if (rm_) {
    rm_->stop();
    rm_.reset();
  }
  if (processor_) processor_->cancel_all();
  sessions_.clear();
  job_index_.clear();
  early_data_.clear();
  conns_.drop_everything();
  backup_copy_.reset();
}

util::SimDuration PeerNode::current_report_period() const {
  return report_period_ > 0 ? report_period_ : system_.config().report_period;
}

void PeerNode::system_guarded_schedule(std::int64_t when_or_delay,
                                       bool absolute,
                                       std::function<void()> fn) {
  auto guarded = [weak = std::weak_ptr<char>(life_), fn = std::move(fn)] {
    if (weak.lock()) fn();
  };
  if (absolute) {
    system_.simulator().schedule_at(when_or_delay, std::move(guarded));
  } else {
    system_.simulator().schedule_after(when_or_delay, std::move(guarded));
  }
}

bool PeerNode::quiescent() const {
  return alive_ && joined_ && rm_ == nullptr && sessions_.empty() &&
         early_data_.empty() && query_retries_.empty() &&
         job_index_.empty() && !backup_copy_.has_value() &&
         designated_backup_ != spec_.id;
}

void PeerNode::send(util::PeerId to, net::MessagePtr message) {
  if (!alive_) return;
  stats_.bytes_sent += message->wire_size() + net::kEnvelopeBytes;
  system_.transport().send(spec_.id, to, std::move(message));
}

// ---------------------------------------------------------------------------
// Promotion

void PeerNode::become_rm(util::DomainId domain,
                         std::vector<overlay::RmInfo> known_rms,
                         std::uint64_t epoch,
                         std::optional<InfoBaseSnapshot> restored) {
  assert(alive_);
  domain_ = domain;
  my_rm_ = spec_.id;
  epoch_ = epoch;
  joined_ = true;
  rm_ = std::make_unique<ResourceManager>(*this, domain, std::move(known_rms),
                                          std::move(restored), epoch);
  rm_->start();
  if (!report_timer_.active()) {
    report_timer_ = system_.simulator().every(
        system_.config().report_period, [this] { report_tick(); });
  }
  membership_timer_.cancel();  // RMs do not watch for their own heartbeats
  system_.trace(epoch > 1 ? TraceKind::RmTakeover : TraceKind::RmPromoted,
                spec_.id, util::TaskId::invalid(), domain,
                {{"epoch", epoch}});
  P2PRM_LOG(Info, kLog, system_.simulator().now_seconds())
      << "peer " << spec_.id << " is now RM of domain " << domain << " (epoch "
      << epoch << ")";
}

// ---------------------------------------------------------------------------
// Message dispatch

void PeerNode::handle_message(util::PeerId from, const net::Message& message) {
  if (!alive_) return;
  // Deliberately NOT an activity touch: heartbeats and gossip arrive
  // forever, so counting control traffic would make every member immortal.
  // Activity = application work (requests, jobs); quiescent() separately
  // refuses demotion while any protocol state is in flight.

  // RM-side protocol first (join requests, reports, task queries, ...).
  if (rm_ && rm_->handle(from, message)) return;

  if (const auto* m = net::message_as<overlay::JoinRequest>(message)) {
    // Not an RM: "a random peer who redirects it to the Resource Manager".
    (void)m;
    auto redirect = std::make_unique<overlay::JoinRedirect>();
    redirect->target_rm = joined_ ? my_rm_ : util::PeerId::invalid();
    send(from, std::move(redirect));
    return;
  }
  if (const auto* m = net::message_as<overlay::JoinRedirect>(message)) {
    on_join_redirect(*m);
    return;
  }
  if (const auto* m = net::message_as<overlay::JoinAccept>(message)) {
    on_join_accept(from, *m);
    return;
  }
  if (const auto* m = net::message_as<overlay::JoinPromote>(message)) {
    on_join_promote(*m);
    return;
  }
  if (const auto* m = net::message_as<overlay::RmHeartbeat>(message)) {
    on_rm_heartbeat(from, *m);
    return;
  }
  if (const auto* m = net::message_as<overlay::RmTakeover>(message)) {
    on_rm_takeover(from, *m);
    return;
  }
  if (const auto* m = net::message_as<BackupSync>(message)) {
    on_backup_sync(*m, from);
    return;
  }
  if (const auto* m = net::message_as<GraphCompose>(message)) {
    on_graph_compose(*m);
    return;
  }
  if (const auto* m = net::message_as<SourceStart>(message)) {
    on_source_start(*m);
    return;
  }
  if (const auto* m = net::message_as<StreamData>(message)) {
    profiler_.record_communication(from, system_.simulator().now() - m->sent_at);
    on_stream_data(*m);
    return;
  }
  if (const auto* m = net::message_as<HopCancel>(message)) {
    on_hop_cancel(*m);
    return;
  }
  if (const auto* m = net::message_as<TaskAccept>(message)) {
    settle_task_query(m->task);
    system_.ledger().on_estimate(m->task, m->estimated_execution);
    return;
  }
  if (const auto* m = net::message_as<TaskReject>(message)) {
    settle_task_query(m->task);
    system_.ledger().on_rejected(m->task, m->reason);
    system_.trace(TraceKind::TaskRejected, spec_.id, m->task,
                  util::DomainId::invalid(), {{"reason", m->reason}});
    return;
  }
  if (const auto* m = net::message_as<TaskFailedMsg>(message)) {
    settle_task_query(m->task);
    system_.ledger().on_failed(m->task, m->reason);
    system_.trace(TraceKind::TaskFailed, spec_.id, m->task,
                  util::DomainId::invalid(), {{"reason", m->reason}});
    return;
  }
  if (const auto* m = net::message_as<ReportAck>(message)) {
    if (m->seq == report_seq_) report_retry_op_.ack();
    return;
  }
  if (net::message_as<TaskQuery>(message) != nullptr && joined_ &&
      my_rm_.valid() && my_rm_ != spec_.id) {
    // A query reached a peer that stopped being RM (stale sender view, RM
    // failover): forward to the RM we currently know.
    auto fwd = std::make_unique<TaskQuery>(
        *net::message_as<TaskQuery>(message));
    send(my_rm_, std::move(fwd));
    return;
  }
  // Remaining RM-only messages (ProfilerReport, HopDone, gossip, ...) that
  // reached a non-RM peer are stale; drop them.
}

// ---------------------------------------------------------------------------
// Membership (client side)

void PeerNode::on_join_redirect(const overlay::JoinRedirect& m) {
  if (joined_) return;
  constexpr int kMaxRedirectHops = 8;
  if (!m.target_rm.valid() || m.target_rm == spec_.id ||
      ++redirect_hops_ > kMaxRedirectHops) {
    P2PRM_LOG(Debug, kLog, system_.simulator().now_seconds())
        << "peer " << spec_.id << " join attempt dead-ended; will retry";
    schedule_join_retry();
    return;
  }
  auto req = std::make_unique<overlay::JoinRequest>();
  req->spec = spec_;
  send(m.target_rm, std::move(req));
  arm_join_watchdog();
}

void PeerNode::arm_join_watchdog() {
  const int token = ++join_watchdog_token_;
  defer_after(util::seconds(5), [this, token] {
    if (!alive_ || joined_ || token != join_watchdog_token_) return;
    schedule_join_retry();
  });
}

void PeerNode::schedule_join_retry() {
  // Exponential backoff per the configured join policy; retry through a
  // fresh random contact.
  const util::BackoffPolicy& policy = system_.config().retry.join;
  const auto delay =
      policy.delay(join_attempts_, &system_.simulator().rng());
  ++join_attempts_;
  ++stats_.join_retries;
  defer_after(delay, [this] {
    if (!alive_ || joined_) return;
    redirect_hops_ = 0;
    std::optional<util::PeerId> contact = system_.random_alive_peer(spec_.id);
    if (!contact) {
      // Nobody hosted locally. Once the policy's attempts are spent,
      // assume the rest of the network is gone and found a fresh domain —
      // otherwise a sole survivor would stay detached forever. Until
      // then, keep retrying: in a multi-process deployment this System
      // hosts only its own slice of the overlay, so an empty local
      // registry says nothing about the bootstrap contact across the
      // wire (a join whose first exchange lost a frame must not strand).
      if (system_.config().retry.join.exhausted(join_attempts_ - 1)) {
        become_rm(system_.next_domain_id(), {}, /*epoch=*/1, std::nullopt);
        return;
      }
      if (boot_contact_ && *boot_contact_ != spec_.id) {
        contact = boot_contact_;
      } else {
        schedule_join_retry();
        return;
      }
    }
    auto req = std::make_unique<overlay::JoinRequest>();
    req->spec = spec_;
    send(*contact, std::move(req));
    arm_join_watchdog();
  });
}

void PeerNode::on_join_accept(util::PeerId from, const overlay::JoinAccept& m) {
  if (joined_) return;
  joined_ = true;
  redirect_hops_ = 0;
  join_attempts_ = 0;
  domain_ = m.domain;
  my_rm_ = m.rm.valid() ? m.rm : from;
  epoch_ = m.epoch;
  last_rm_heartbeat_ = system_.simulator().now();
  conns_.open(my_rm_, overlay::ConnectionPurpose::Control);
  announce_to_rm();
  if (!report_timer_.active()) {
    report_timer_ = system_.simulator().every(
        system_.config().report_period, [this] { report_tick(); });
  }
  if (!membership_timer_.active()) {
    membership_timer_ = system_.simulator().every(
        system_.config().heartbeat_period, [this] { membership_check_tick(); });
  }
  system_.trace(TraceKind::PeerJoined, spec_.id, util::TaskId::invalid(),
                domain_);
  P2PRM_LOG(Debug, kLog, system_.simulator().now_seconds())
      << "peer " << spec_.id << " joined domain " << domain_ << " under RM "
      << my_rm_;
}

void PeerNode::on_join_promote(const overlay::JoinPromote& m) {
  if (joined_) return;
  become_rm(m.new_domain, m.known_rms, /*epoch=*/1, std::nullopt);
  // Introduce ourselves to the RMs we were told about.
  for (const auto& info : m.known_rms) {
    auto intro = std::make_unique<overlay::RmPeerIntro>();
    intro->rms.push_back(
        overlay::RmInfo{domain_, spec_.id});
    send(info.rm, std::move(intro));
  }
}

void PeerNode::announce_to_rm() {
  auto announce = std::make_unique<PeerAnnounce>();
  announce->spec = spec_;
  announce->objects = inventory_.objects;
  announce->services = inventory_.services;
  send(my_rm_, std::move(announce));
}

void PeerNode::on_rm_heartbeat(util::PeerId from, const overlay::RmHeartbeat& m) {
  if (!joined_) {
    // Heartbeats retry what a lost RmTakeover announced once: a dropped-out
    // member of this domain gets re-adopted on the next beat.
    try_readopt(from, m.domain, m.epoch);
    return;
  }
  if (rm_) {
    // Split-brain resolution: a heartbeat for our own domain with a higher
    // epoch means a backup took over while we were partitioned away (the
    // members already follow it). Abdicate and fall in line.
    if (m.domain == domain_ && from != spec_.id &&
        m.epoch > rm_->info().domain().epoch()) {
      abdicate(from, m.epoch);
    }
    return;
  }
  if (m.epoch < epoch_) return;  // stale RM
  epoch_ = m.epoch;
  domain_ = m.domain;
  my_rm_ = from;
  last_rm_heartbeat_ = system_.simulator().now();
  designated_backup_ = m.backup;
  if (m.backup != spec_.id) {
    backup_copy_.reset();
    backup_known_rms_.clear();
  }
  if (m.report_period > 0 && m.report_period != report_period_) {
    // §4.4 adaptive feedback: re-arm the profiler report timer at the
    // period the RM derived from the current QoS requirements.
    report_period_ = m.report_period;
    report_timer_.cancel();
    report_timer_ =
        system_.simulator().every(report_period_, [this] { report_tick(); });
  }
}

void PeerNode::abdicate(util::PeerId new_rm, std::uint64_t new_epoch) {
  system_.trace(TraceKind::RmDemoted, spec_.id, util::TaskId::invalid(),
                domain_, {{"successor", util::to_string(new_rm)}});
  P2PRM_LOG(Info, kLog, system_.simulator().now_seconds())
      << "peer " << spec_.id << " abdicates RM of domain " << domain_
      << " to " << new_rm << " (epoch " << new_epoch << ")";
  rm_->stop();
  rm_.reset();
  my_rm_ = new_rm;
  epoch_ = new_epoch;
  last_rm_heartbeat_ = system_.simulator().now();
  conns_.open(my_rm_, overlay::ConnectionPurpose::Control);
  // The takeover RM restored our inventory from the snapshot; re-announce
  // anyway (idempotent) in case it was founded fresh.
  announce_to_rm();
  if (!membership_timer_.active()) {
    membership_timer_ = system_.simulator().every(
        system_.config().heartbeat_period, [this] { membership_check_tick(); });
  }
}

void PeerNode::demote_and_rejoin() {
  if (!rm_) return;
  system_.trace(TraceKind::RmDemoted, spec_.id, util::TaskId::invalid(),
                domain_, {{"reason", "lost all members"}});
  P2PRM_LOG(Info, kLog, system_.simulator().now_seconds())
      << "peer " << spec_.id << " demotes itself (domain " << domain_
      << " lost all members) and rejoins";
  rm_->stop();
  rm_.reset();
  rejoin();
}

bool PeerNode::try_readopt(util::PeerId from, util::DomainId domain,
                           std::uint64_t epoch) {
  // A member that gave up on a silent dead RM (rejoin()) may hear the
  // takeover only after it dropped out — the backup's detection and our
  // own rejoin threshold race, and under CPU contention or frame loss the
  // announcement can arrive arbitrarily late. Re-adopt instead of
  // ignoring: our rejoin JoinRequest went to a possibly-dead bootstrap
  // contact, so the new RM's takeover/heartbeat traffic can be the only
  // live endpoint we ever hear from again.
  P2PRM_LOG(Trace, kLog, system_.simulator().now_seconds())
      << "peer " << spec_.id << " readopt offer from " << from << " (domain "
      << domain << " epoch " << epoch << "; mine " << domain_ << " epoch "
      << epoch_ << " joined=" << joined_ << ")";
  if (alive_ == false || joined_ || rm_) return false;
  if (domain != domain_ || epoch < epoch_) return false;
  joined_ = true;
  redirect_hops_ = 0;
  join_attempts_ = 0;
  ++join_watchdog_token_;  // disarm any pending join watchdog
  epoch_ = epoch;
  my_rm_ = from;
  last_rm_heartbeat_ = system_.simulator().now();
  conns_.open(my_rm_, overlay::ConnectionPurpose::Control);
  announce_to_rm();
  P2PRM_LOG(Debug, kLog, system_.simulator().now_seconds())
      << "peer " << spec_.id << " re-adopted into domain " << domain_
      << " by RM " << from << " (epoch " << epoch << ")";
  return true;
}

void PeerNode::on_rm_takeover(util::PeerId from, const overlay::RmTakeover& m) {
  if (!joined_) {
    try_readopt(from, m.domain, m.epoch);
    return;
  }
  if (rm_) {
    if (m.domain == domain_ && from != spec_.id &&
        m.epoch > rm_->info().domain().epoch()) {
      abdicate(from, m.epoch);
    }
    return;
  }
  if (m.epoch < epoch_) return;
  epoch_ = m.epoch;
  domain_ = m.domain;
  my_rm_ = from;
  last_rm_heartbeat_ = system_.simulator().now();
  // The takeover RM restored the old info base; our inventory is in it.
}

void PeerNode::on_backup_sync(const BackupSync& m, util::PeerId from) {
  if (!joined_ || rm_ || from != my_rm_) return;
  backup_copy_ = m.snapshot;
  backup_known_rms_ = m.known_rms;
  P2PRM_LOG(Trace, kLog, system_.simulator().now_seconds())
      << "backup " << spec_.id << " accepted sync seq " << m.seq << " ("
      << m.snapshot.domain.size() << " members)";
  if (system_.config().ack_backup_sync && m.seq != 0) {
    auto ack = std::make_unique<BackupSyncAck>();
    ack->seq = m.seq;
    send(from, std::move(ack));
  }
}

void PeerNode::membership_check_tick() {
  if (!joined_ || rm_) return;
  const util::SimTime now = system_.simulator().now();
  const util::SimDuration silence = now - last_rm_heartbeat_;
  const auto timeout = system_.config().rm_failure_timeout;
  if (silence <= timeout) return;

  if (system_.config().enable_backup_rm && designated_backup_ == spec_.id &&
      backup_copy_.has_value()) {
    // "The backup Resource Manager senses the withdrawn connection. It then
    // takes over as a Resource Manager, using its backup copy." (§4.1)
    const util::PeerId dead_rm = my_rm_;
    const std::uint64_t new_epoch = epoch_ + 1;
    InfoBaseSnapshot snapshot = std::move(*backup_copy_);
    backup_copy_.reset();
    const auto members = snapshot.domain.member_ids();
    become_rm(domain_, backup_known_rms_, new_epoch, std::move(snapshot));
    rm_->info().domain().set_epoch(new_epoch);
    // Absorb the dead RM's departure (removes its services, repairs tasks).
    rm_->handle(dead_rm, overlay::LeaveNotice{});
    for (const auto member : members) {
      if (member == spec_.id || member == dead_rm) continue;
      auto takeover = std::make_unique<overlay::RmTakeover>();
      takeover->domain = domain_;
      takeover->epoch = new_epoch;
      send(member, std::move(takeover));
    }
    for (const auto& info : backup_known_rms_) {
      auto intro = std::make_unique<overlay::RmPeerIntro>();
      intro->rms.push_back(overlay::RmInfo{domain_, spec_.id});
      send(info.rm, std::move(intro));
    }
    P2PRM_LOG(Info, kLog, system_.simulator().now_seconds())
        << "backup " << spec_.id << " took over domain " << domain_
        << " after RM " << dead_rm << " failed (" << members.size()
        << " members in snapshot)";
    return;
  }

  if (silence > 2 * timeout) rejoin();
}

void PeerNode::rejoin() {
  ++stats_.rejoin_attempts;
  joined_ = false;
  my_rm_ = util::PeerId::invalid();
  backup_copy_.reset();
  conns_.drop_everything();
  const auto contact = system_.random_alive_peer(spec_.id);
  if (!contact) {
    schedule_join_retry();
    return;
  }
  auto req = std::make_unique<overlay::JoinRequest>();
  req->spec = spec_;
  send(*contact, std::move(req));
  arm_join_watchdog();
  P2PRM_LOG(Debug, kLog, system_.simulator().now_seconds())
      << "peer " << spec_.id << " rejoining via " << *contact;
}

// ---------------------------------------------------------------------------
// User API

void PeerNode::submit_request(util::TaskId task, QoSRequirements q) {
  last_activity_ = system_.simulator().now();
  auto query = std::make_unique<TaskQuery>();
  query->task = task;
  query->origin = spec_.id;
  query->q = std::move(q);
  query->submitted_at = system_.simulator().now();
  const TaskQuery original = *query;
  send(my_rm_, std::move(query));

  // Watch the allocation RPC: resend (to whatever RM we know *now* — it may
  // have failed over) until accepted, rejected or exhausted. The RM side
  // deduplicates retried queries, so a slow answer plus a retry is safe.
  const util::BackoffPolicy& policy = system_.config().retry.task_query;
  if (policy.max_attempts <= 1) return;
  sim::RetryOp& op = query_retries_[task];
  op.arm(
      system_.simulator(), policy, &system_.simulator().rng(),
      [this, original](int /*attempt*/) {
        if (!alive_ || !joined_ || !my_rm_.valid()) return;
        send(my_rm_, std::make_unique<TaskQuery>(original));
      },
      [this, task] {
        // No answer within the whole retry budget: the ledger records a
        // reject unless a (late) terminal outcome already landed.
        query_retries_.erase(task);
        system_.ledger().on_rejected(task, "rpc-timeout");
        system_.trace(TraceKind::TaskRejected, spec_.id, task,
                      util::DomainId::invalid(), {{"reason", "rpc-timeout"}});
      },
      &stats_.query_retry);
}

void PeerNode::request_qos_update(util::TaskId task,
                                  util::SimDuration new_deadline) {
  auto update = std::make_unique<TaskQosUpdate>();
  update->task = task;
  update->new_deadline = new_deadline;
  send(my_rm_, std::move(update));
}

// ---------------------------------------------------------------------------
// Session execution (Fig. 2 step C)

void PeerNode::close_session_connections(const HopSession& session) {
  conns_.close(session.spec.prev_peer, overlay::ConnectionPurpose::Streaming);
  conns_.close(session.spec.next_peer, overlay::ConnectionPurpose::Streaming);
}

void PeerNode::on_graph_compose(const GraphCompose& m) {
  const SessionKey key{m.hop.task, m.hop.hop_index};
  HopSession session;
  session.spec = m.hop;
  session.token = ++session_tokens_;
  // "Graph composition messages are sent to the nodes ... allowing them to
  // establish the appropriate connections." (§4.3)
  conns_.open(m.hop.prev_peer, overlay::ConnectionPurpose::Streaming);
  conns_.open(m.hop.next_peer, overlay::ConnectionPurpose::Streaming);
  const auto existing = sessions_.find(key);
  if (existing != sessions_.end()) {
    // Superseded by a re-composition: release the old session's links.
    close_session_connections(existing->second);
  }
  sessions_[key] = session;

  // Self-expiry: if the data never arrives (the upstream stage died or the
  // task was torn down and the HopCancel raced past us), reap the session
  // so it cannot leak. Anchored to the task deadline plus the same grace
  // the RM uses for task GC.
  const std::uint64_t token = session.token;
  const util::SimTime expiry = std::max(
      m.hop.absolute_deadline + system_.config().task_gc_grace,
      system_.simulator().now() + system_.config().task_gc_grace);
  defer_at(expiry, [this, key, token] {
    const auto it = sessions_.find(key);
    if (it == sessions_.end() || it->second.token != token) return;
    if (it->second.job_submitted) return;  // running; completion cleans up
    close_session_connections(it->second);
    sessions_.erase(it);
  });

  // Data that outran the composition message.
  const auto early = early_data_.find(key);
  if (early != early_data_.end()) {
    StreamData data = early->second.first;
    early_data_.erase(early);
    on_stream_data(data);
  }
}

void PeerNode::on_source_start(const SourceStart& m) {
  // We are the source: push the object into the pipeline (or straight to
  // the requesting peer when no transcoding is needed).
  auto data = std::make_unique<StreamData>();
  data->task = m.task;
  data->dest_hop_index = 0;
  data->for_sink = m.first_is_sink;
  data->object = m.object;
  data->format = m.format;
  data->media_seconds = m.media_seconds;
  data->pipeline_started_at = system_.simulator().now();
  data->sent_at = system_.simulator().now();
  ++stats_.streams_forwarded;
  send(m.first_hop, std::move(data));
}

void PeerNode::on_stream_data(const StreamData& m) {
  if (m.for_sink) {
    deliver_to_user(m);
    return;
  }
  const SessionKey key{m.task, m.dest_hop_index};
  const auto it = sessions_.find(key);
  if (it == sessions_.end()) {
    // Compose message still in flight — buffer, with self-expiry in case it
    // never arrives (the task was torn down between the upstream send and
    // our composition).
    const std::uint64_t token = ++session_tokens_;
    early_data_[key] = {m, token};
    defer_after(
        system_.config().task_gc_grace, [this, key, token] {
          const auto e = early_data_.find(key);
          if (e != early_data_.end() && e->second.second == token) {
            early_data_.erase(e);
          }
        });
    return;
  }
  HopSession& session = it->second;
  if (session.job_submitted) return;  // duplicate
  session.data_arrived_at = system_.simulator().now();
  session.pipeline_started_at = m.pipeline_started_at;

  sched::Job job;
  job.id = system_.next_job_id();
  job.task = m.task;
  job.release = system_.simulator().now();
  job.absolute_deadline = session.spec.absolute_deadline;
  job.importance = session.spec.importance;
  job.total_ops = media::transcode_ops_per_media_second(
                      session.spec.type, system_.config().cost_model) *
                  session.spec.media_seconds;
  job.remaining_ops = job.total_ops;
  session.job = job.id;
  session.job_submitted = true;
  job_index_[job.id] = key;
  processor_->submit(job);
  if (system_.config().enable_spans) {
    system_.trace(TraceKind::HopStarted, spec_.id, session.spec.task,
                  util::DomainId::invalid(),
                  {{"hop", session.spec.hop_index},
                   {"service", session.spec.type.type_key()}});
  }
}

void PeerNode::on_job_finished(const sched::Job& job, sched::JobStatus status) {
  last_activity_ = system_.simulator().now();
  const auto idx = job_index_.find(job.id);
  if (idx == job_index_.end()) return;
  const SessionKey key = idx->second;
  job_index_.erase(idx);
  const auto it = sessions_.find(key);
  if (it == sessions_.end()) return;
  HopSession session = it->second;
  sessions_.erase(it);
  close_session_connections(session);

  if (status == sched::JobStatus::Dropped) {
    // drop_hopeless_jobs mode: the deadline became unreachable; tell the RM
    // so it can fail or re-plan the task.
    auto failed = std::make_unique<HopFailed>();
    failed->task = session.spec.task;
    failed->hop_index = session.spec.hop_index;
    failed->reason = "hop-dropped";
    send(session.spec.rm, std::move(failed));
    return;
  }

  ++stats_.hops_executed;
  if (system_.config().enable_spans) {
    system_.trace(TraceKind::HopCompleted, spec_.id, session.spec.task,
                  util::DomainId::invalid(),
                  {{"hop", session.spec.hop_index},
                   {"service", session.spec.type.type_key()},
                   {"exec_s", util::to_seconds(job.completed - job.release)},
                   {"late", status == sched::JobStatus::CompletedLate ? 1 : 0}});
  }
  profiler_.record_execution(session.spec.type.type_key(),
                             job.completed - job.release);
  forward_hop_output(session);

  auto done = std::make_unique<HopDone>();
  done->task = session.spec.task;
  done->hop_index = session.spec.hop_index;
  done->execution_time = job.completed - job.release;
  done->missed_local_deadline = status == sched::JobStatus::CompletedLate;
  send(session.spec.rm, std::move(done));
}

void PeerNode::forward_hop_output(const HopSession& session) {
  auto data = std::make_unique<StreamData>();
  data->task = session.spec.task;
  data->dest_hop_index = session.spec.hop_index + 1;
  data->for_sink = session.spec.next_is_sink;
  data->object = session.spec.object;
  data->format = session.spec.type.output;
  data->media_seconds = session.spec.media_seconds;
  data->pipeline_started_at = session.pipeline_started_at;
  data->sent_at = system_.simulator().now();
  ++stats_.streams_forwarded;
  send(session.spec.next_peer, std::move(data));
}

void PeerNode::settle_task_query(util::TaskId task) {
  const auto it = query_retries_.find(task);
  if (it == query_retries_.end()) return;
  it->second.ack();
  query_retries_.erase(it);
}

void PeerNode::deliver_to_user(const StreamData& m) {
  settle_task_query(m.task);
  const util::SimTime now = system_.simulator().now();
  const TaskRecord* record = system_.ledger().record(m.task);
  bool missed = false;
  if (record != nullptr) {
    missed = now > record->submitted + record->deadline;
  }
  system_.ledger().on_completed(m.task, now, missed);
  system_.trace(TraceKind::TaskCompleted, spec_.id, m.task,
                util::DomainId::invalid(),
                {{"outcome", missed ? "missed" : "on-time"}});
  if (joined_ && my_rm_.valid()) {
    auto done = std::make_unique<TaskCompleted>();
    done->task = m.task;
    done->completed_at = now;
    done->missed_deadline = missed;
    send(my_rm_, std::move(done));
  }
}

void PeerNode::on_hop_cancel(const HopCancel& m) {
  const SessionKey key{m.task, m.hop_index};
  early_data_.erase(key);
  const auto it = sessions_.find(key);
  if (it == sessions_.end()) return;
  HopSession session = it->second;
  sessions_.erase(it);
  if (session.job_submitted) {
    processor_->cancel(session.job);
    job_index_.erase(session.job);
  }
  close_session_connections(session);
  ++stats_.hops_cancelled;
}

// ---------------------------------------------------------------------------
// Profiler feedback (§4.4 intra-domain propagation)

void PeerNode::report_tick() {
  if (!joined_ || !my_rm_.valid()) return;
  const auto sample = profiler_.sample(
      system_.simulator().now(), processor_->busy_time(), stats_.bytes_sent,
      processor_->queue_length(), processor_->backlog_seconds());
  auto report = std::make_unique<ProfilerReport>();
  report->sample = sample;
  report->eligible_rm = overlay::qualifies_for_rm(
      spec_, system_.simulator().now(), system_.config().qualification);
  report->rm_score = overlay::rm_score(spec_, system_.simulator().now(),
                                       system_.config().qualification);
  report->active_hops = sessions_.size();
  for (const auto& [key, stats] : profiler_.execution_records()) {
    if (stats.count() > 0) {
      report->measured_exec_s.emplace_back(key, stats.mean());
    }
  }
  report->seq = ++report_seq_;
  if (system_.config().ack_profiler_reports) pending_report_ = *report;
  send(my_rm_, std::move(report));

  // Resend until the RM acks this seq; the next tick supersedes (cancels)
  // any still-armed retry — a report is only worth repeating while fresh.
  const util::BackoffPolicy& policy = system_.config().retry.profiler_report;
  if (!system_.config().ack_profiler_reports || policy.max_attempts <= 1) {
    return;
  }
  report_retry_op_.cancel();
  report_retry_op_.arm(
      system_.simulator(), policy, &system_.simulator().rng(),
      [this](int /*attempt*/) {
        if (!alive_ || !joined_ || !my_rm_.valid()) return;
        send(my_rm_, std::make_unique<ProfilerReport>(pending_report_));
      },
      /*on_exhausted=*/{}, &stats_.report_retry);
}

void PeerNode::publish(obs::MetricsRegistry& registry) const {
  const obs::Labels labels{{"peer", util::to_string(spec_.id)}};
  const auto c = [&](std::string_view name, std::uint64_t v) {
    registry.counter(name, labels).set(v);
  };
  c("peer.hops_executed", stats_.hops_executed);
  c("peer.hops_cancelled", stats_.hops_cancelled);
  c("peer.streams_forwarded", stats_.streams_forwarded);
  c("peer.rejoin_attempts", stats_.rejoin_attempts);
  c("peer.bytes_sent", stats_.bytes_sent);
  c("peer.join_retries", stats_.join_retries);
  sim::publish_retry_stats(stats_.query_retry, registry, "peer.query",
                           labels);
  sim::publish_retry_stats(stats_.report_retry, registry, "peer.report",
                           labels);
  registry.gauge("peer.active_sessions", labels)
      .set(static_cast<double>(sessions_.size()));
  if (processor_) processor_->publish(registry, labels);
  if (rm_) rm_->publish(registry);
}

}  // namespace p2prm::core

// Wire codecs of the task-protocol messages (declared in messages.hpp).
//
// Body layouts are flat field-order encodings using the net::Writer /
// net::Reader primitives and the shared field codecs in
// overlay/wire_fields.hpp. Every wire_size() in the header states the
// exact body size these implementations produce; the codec round-trip
// property test (tests/codec_test.cpp) enforces the match.
#include "core/messages.hpp"

#include "overlay/wire_fields.hpp"

namespace p2prm::core {

std::size_t qos_wire_size(const QoSRequirements& q) {
  return 8 + 4 + q.acceptable_formats.size() * wire::kMediaFormatBytes + 8 + 8;
}

void encode_qos(net::Writer& w, const QoSRequirements& q) {
  w.id(q.object);
  w.count(q.acceptable_formats.size());
  for (const auto& f : q.acceptable_formats) wire::encode(w, f);
  w.time(q.deadline);
  w.f64(q.importance);
}

QoSRequirements decode_qos(net::Reader& r) {
  QoSRequirements q;
  q.object = r.id<util::ObjectIdTag>();
  const std::size_t n = r.count(wire::kMediaFormatBytes);
  q.acceptable_formats.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    q.acceptable_formats.push_back(wire::decode_media_format(r));
  }
  q.deadline = r.time();
  q.importance = r.f64();
  return q;
}

// ---- PeerAnnounce -----------------------------------------------------------

std::size_t PeerAnnounce::wire_size() const {
  std::size_t n = net::kFrameHeaderBytes + wire::kPeerSpecBytes + 4 + 4 +
                  services.size() * (8 + wire::kTranscoderTypeBytes);
  for (const auto& o : objects) n += wire::wire_sizeof(o);
  return n;
}

void PeerAnnounce::encode_body(net::Writer& w) const {
  wire::encode(w, spec);
  w.count(objects.size());
  for (const auto& o : objects) wire::encode(w, o);
  w.count(services.size());
  for (const auto& s : services) {
    w.id(s.id);
    wire::encode(w, s.type);
  }
}

PeerAnnounce PeerAnnounce::decode_body(net::Reader& r) {
  PeerAnnounce m;
  m.spec = wire::decode_peer_spec(r);
  const std::size_t no = r.count(37);  // smallest MediaObject encoding
  m.objects.reserve(no);
  for (std::size_t i = 0; i < no; ++i) {
    m.objects.push_back(wire::decode_media_object(r));
  }
  const std::size_t ns = r.count(8 + wire::kTranscoderTypeBytes);
  m.services.reserve(ns);
  for (std::size_t i = 0; i < ns; ++i) {
    ServiceOffering s;
    s.id = r.id<util::ServiceIdTag>();
    s.type = wire::decode_transcoder_type(r);
    m.services.push_back(s);
  }
  return m;
}

// ---- TaskQuery --------------------------------------------------------------

void TaskQuery::encode_body(net::Writer& w) const {
  w.id(task);
  w.id(origin);
  encode_qos(w, q);
  w.time(submitted_at);
  w.i64(redirect_count);
}

TaskQuery TaskQuery::decode_body(net::Reader& r) {
  TaskQuery m;
  m.task = r.id<util::TaskIdTag>();
  m.origin = r.id<util::PeerIdTag>();
  m.q = decode_qos(r);
  m.submitted_at = r.time();
  m.redirect_count = static_cast<int>(r.i64());
  return m;
}

// ---- TaskReject / TaskAccept ------------------------------------------------

void TaskReject::encode_body(net::Writer& w) const {
  w.id(task);
  w.str(reason);
}

TaskReject TaskReject::decode_body(net::Reader& r) {
  TaskReject m;
  m.task = r.id<util::TaskIdTag>();
  m.reason = r.str();
  return m;
}

void TaskAccept::encode_body(net::Writer& w) const {
  w.id(task);
  w.id(serving_rm);
  w.time(estimated_execution);
}

TaskAccept TaskAccept::decode_body(net::Reader& r) {
  TaskAccept m;
  m.task = r.id<util::TaskIdTag>();
  m.serving_rm = r.id<util::PeerIdTag>();
  m.estimated_execution = r.time();
  return m;
}

// ---- GraphCompose -----------------------------------------------------------

void GraphCompose::encode_body(net::Writer& w) const {
  w.id(hop.task);
  w.u64(hop.hop_index);
  w.id(hop.service);
  wire::encode(w, hop.type);
  w.id(hop.rm);
  w.id(hop.prev_peer);
  w.id(hop.next_peer);
  w.boolean(hop.next_is_sink);
  w.id(hop.object);
  w.f64(hop.media_seconds);
  w.time(hop.absolute_deadline);
  w.f64(hop.importance);
}

GraphCompose GraphCompose::decode_body(net::Reader& r) {
  GraphCompose m;
  m.hop.task = r.id<util::TaskIdTag>();
  m.hop.hop_index = static_cast<std::size_t>(r.u64());
  m.hop.service = r.id<util::ServiceIdTag>();
  m.hop.type = wire::decode_transcoder_type(r);
  m.hop.rm = r.id<util::PeerIdTag>();
  m.hop.prev_peer = r.id<util::PeerIdTag>();
  m.hop.next_peer = r.id<util::PeerIdTag>();
  m.hop.next_is_sink = r.boolean();
  m.hop.object = r.id<util::ObjectIdTag>();
  m.hop.media_seconds = r.f64();
  m.hop.absolute_deadline = r.time();
  m.hop.importance = r.f64();
  return m;
}

// ---- SourceStart / StreamData ----------------------------------------------

void SourceStart::encode_body(net::Writer& w) const {
  w.id(task);
  w.id(object);
  w.id(first_hop);
  w.boolean(first_is_sink);
  w.f64(media_seconds);
  wire::encode(w, format);
  w.time(absolute_deadline);
  w.id(rm);
}

SourceStart SourceStart::decode_body(net::Reader& r) {
  SourceStart m;
  m.task = r.id<util::TaskIdTag>();
  m.object = r.id<util::ObjectIdTag>();
  m.first_hop = r.id<util::PeerIdTag>();
  m.first_is_sink = r.boolean();
  m.media_seconds = r.f64();
  m.format = wire::decode_media_format(r);
  m.absolute_deadline = r.time();
  m.rm = r.id<util::PeerIdTag>();
  return m;
}

void StreamData::encode_body(net::Writer& w) const {
  w.id(task);
  w.u64(dest_hop_index);
  w.boolean(for_sink);
  w.id(object);
  wire::encode(w, format);
  w.f64(media_seconds);
  w.time(pipeline_started_at);
  w.time(sent_at);
  // The media payload itself: zeros stand in for stream content, but the
  // frame genuinely occupies the modelled size on a real wire.
  w.zeros(payload_bytes());
}

StreamData StreamData::decode_body(net::Reader& r) {
  StreamData m;
  m.task = r.id<util::TaskIdTag>();
  m.dest_hop_index = static_cast<std::size_t>(r.u64());
  m.for_sink = r.boolean();
  m.object = r.id<util::ObjectIdTag>();
  m.format = wire::decode_media_format(r);
  m.media_seconds = r.f64();
  m.pipeline_started_at = r.time();
  m.sent_at = r.time();
  r.skip(m.payload_bytes());
  return m;
}

// ---- execution feedback -----------------------------------------------------

void HopDone::encode_body(net::Writer& w) const {
  w.id(task);
  w.u64(hop_index);
  w.time(execution_time);
  w.boolean(missed_local_deadline);
}

HopDone HopDone::decode_body(net::Reader& r) {
  HopDone m;
  m.task = r.id<util::TaskIdTag>();
  m.hop_index = static_cast<std::size_t>(r.u64());
  m.execution_time = r.time();
  m.missed_local_deadline = r.boolean();
  return m;
}

void TaskCompleted::encode_body(net::Writer& w) const {
  w.id(task);
  w.time(completed_at);
  w.boolean(missed_deadline);
}

TaskCompleted TaskCompleted::decode_body(net::Reader& r) {
  TaskCompleted m;
  m.task = r.id<util::TaskIdTag>();
  m.completed_at = r.time();
  m.missed_deadline = r.boolean();
  return m;
}

void TaskFailedMsg::encode_body(net::Writer& w) const {
  w.id(task);
  w.str(reason);
}

TaskFailedMsg TaskFailedMsg::decode_body(net::Reader& r) {
  TaskFailedMsg m;
  m.task = r.id<util::TaskIdTag>();
  m.reason = r.str();
  return m;
}

void HopFailed::encode_body(net::Writer& w) const {
  w.id(task);
  w.u64(hop_index);
  w.str(reason);
}

HopFailed HopFailed::decode_body(net::Reader& r) {
  HopFailed m;
  m.task = r.id<util::TaskIdTag>();
  m.hop_index = static_cast<std::size_t>(r.u64());
  m.reason = r.str();
  return m;
}

// ---- ProfilerReport / ReportAck --------------------------------------------

void ProfilerReport::encode_body(net::Writer& w) const {
  wire::encode(w, sample);
  w.boolean(eligible_rm);
  w.f64(rm_score);
  w.u64(active_hops);
  w.count(measured_exec_s.size());
  for (const auto& [key, mean] : measured_exec_s) {
    w.u64(key);
    w.f64(mean);
  }
  w.u64(seq);
}

ProfilerReport ProfilerReport::decode_body(net::Reader& r) {
  ProfilerReport m;
  m.sample = wire::decode_load_sample(r);
  m.eligible_rm = r.boolean();
  m.rm_score = r.f64();
  m.active_hops = static_cast<std::size_t>(r.u64());
  const std::size_t n = r.count(16);
  m.measured_exec_s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = r.u64();
    const double mean = r.f64();
    m.measured_exec_s.emplace_back(key, mean);
  }
  m.seq = r.u64();
  return m;
}

void ReportAck::encode_body(net::Writer& w) const { w.u64(seq); }

ReportAck ReportAck::decode_body(net::Reader& r) {
  ReportAck m;
  m.seq = r.u64();
  return m;
}

// ---- adaptation -------------------------------------------------------------

void HopCancel::encode_body(net::Writer& w) const {
  w.id(task);
  w.u64(hop_index);
}

HopCancel HopCancel::decode_body(net::Reader& r) {
  HopCancel m;
  m.task = r.id<util::TaskIdTag>();
  m.hop_index = static_cast<std::size_t>(r.u64());
  return m;
}

void TaskQosUpdate::encode_body(net::Writer& w) const {
  w.id(task);
  w.time(new_deadline);
  w.count(new_acceptable_formats.size());
  for (const auto& f : new_acceptable_formats) wire::encode(w, f);
}

TaskQosUpdate TaskQosUpdate::decode_body(net::Reader& r) {
  TaskQosUpdate m;
  m.task = r.id<util::TaskIdTag>();
  m.new_deadline = r.time();
  const std::size_t n = r.count(wire::kMediaFormatBytes);
  m.new_acceptable_formats.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.new_acceptable_formats.push_back(wire::decode_media_format(r));
  }
  return m;
}

}  // namespace p2prm::core

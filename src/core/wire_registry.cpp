#include "core/wire_registry.hpp"

#include <array>

#include "core/info_base.hpp"
#include "core/messages.hpp"
#include "gossip/gossip_engine.hpp"
#include "overlay/membership.hpp"

namespace p2prm::core {

namespace {

template <typename T>
net::MessagePtr decode_as(net::Reader& r) {
  auto m = std::make_unique<T>(T::decode_body(r));
  // A valid body is consumed exactly: trailing garbage means a framing bug
  // or a hostile peer, and partially-initialized messages must not escape.
  if (!r.done()) return nullptr;
  return m;
}

template <typename T>
constexpr WireEntry entry(std::string_view name) {
  return WireEntry{T::kType, name, &decode_as<T>};
}

// The single source of truth for what can appear on a production wire.
// Keep ordered by tag value.
constexpr std::array kRegistry = {
    entry<overlay::JoinRequest>("overlay.join_request"),
    entry<overlay::JoinRedirect>("overlay.join_redirect"),
    entry<overlay::JoinAccept>("overlay.join_accept"),
    entry<overlay::JoinPromote>("overlay.join_promote"),
    entry<overlay::LeaveNotice>("overlay.leave"),
    entry<overlay::RmHeartbeat>("overlay.rm_heartbeat"),
    entry<overlay::RmTakeover>("overlay.rm_takeover"),
    entry<overlay::RmPeerIntro>("overlay.rm_intro"),
    entry<PeerAnnounce>("core.peer_announce"),
    entry<TaskQuery>("core.task_query"),
    entry<TaskReject>("core.task_reject"),
    entry<TaskAccept>("core.task_accept"),
    entry<GraphCompose>("core.graph_compose"),
    entry<SourceStart>("core.source_start"),
    entry<StreamData>("core.stream_data"),
    entry<HopDone>("core.hop_done"),
    entry<TaskCompleted>("core.task_completed"),
    entry<TaskFailedMsg>("core.task_failed"),
    entry<HopFailed>("core.hop_failed"),
    entry<ProfilerReport>("core.profiler_report"),
    entry<ReportAck>("core.report_ack"),
    entry<HopCancel>("core.hop_cancel"),
    entry<TaskQosUpdate>("core.task_qos_update"),
    entry<BackupSync>("core.backup_sync"),
    entry<BackupSyncAck>("core.backup_sync_ack"),
    entry<gossip::GossipMessage>("gossip.summaries"),
};

// Compile-time tag uniqueness: a duplicated WireType value anywhere in the
// registry is a build error, not a runtime surprise.
constexpr bool tags_unique() {
  for (std::size_t i = 0; i < kRegistry.size(); ++i) {
    for (std::size_t j = i + 1; j < kRegistry.size(); ++j) {
      if (kRegistry[i].type == kRegistry[j].type) return false;
    }
  }
  return true;
}
static_assert(tags_unique(), "duplicate WireType tag in the message registry");

constexpr bool tags_valid() {
  for (const auto& e : kRegistry) {
    if (e.type == net::WireType::Invalid) return false;
    if (e.type >= net::WireType::TestBase) return false;
  }
  return true;
}
static_assert(tags_valid(),
              "registry entries must use production (non-test) wire tags");

}  // namespace

std::span<const WireEntry> wire_registry() { return kRegistry; }

net::MessagePtr decode_message(net::WireType type, net::Reader& r) {
  for (const auto& e : kRegistry) {
    if (e.type == type) return e.decode(r);
  }
  return nullptr;
}

}  // namespace p2prm::core

// The System facade: owns the simulator, the network, every peer, and the
// global task ledger. This is the entry point examples and experiments use.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "core/peer_node.hpp"
#include "core/peer_registry.hpp"
#include "core/trace.hpp"
#include "fault/fault_plan.hpp"
#include "net/network.hpp"
#include "net/realtime.hpp"
#include "net/socket_transport.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "util/flat_map.hpp"
#include "util/stats.hpp"

namespace p2prm::fault {
class FaultInjector;
class SocketFaultInjector;
}

namespace p2prm::core {

// Terminal status of a task as observed at its origin peer.
enum class TaskStatus { Pending, Completed, Rejected, Failed, Orphaned };
[[nodiscard]] std::string_view task_status_name(TaskStatus s);

struct TaskRecord {
  util::TaskId id;
  util::PeerId origin;
  util::SimTime submitted = 0;
  util::SimDuration deadline = 0;
  TaskStatus status = TaskStatus::Pending;
  bool missed_deadline = false;
  util::SimTime finished = -1;
  // The RM's execution-time prediction at admission (from TaskAccept);
  // negative when the task never got that far. Lets experiments score the
  // estimator against the realized response time.
  util::SimDuration estimated_execution = -1;
  std::string reason;  // reject/fail reason

  [[nodiscard]] util::SimDuration response_time() const {
    return finished >= 0 ? finished - submitted : -1;
  }
};

// Aggregated outcome bookkeeping for experiments.
class TaskLedger {
 public:
  void on_submitted(const TaskRecord& record);
  void on_estimate(util::TaskId id, util::SimDuration estimated);
  // QoS renegotiation: the deadline the outcome is judged against changes.
  void on_deadline_update(util::TaskId id, util::SimDuration new_deadline);
  void on_completed(util::TaskId id, util::SimTime at, bool missed);
  void on_rejected(util::TaskId id, const std::string& reason);
  void on_failed(util::TaskId id, const std::string& reason);
  // Marks every still-pending task as orphaned (end-of-run cleanup).
  void orphan_pending(util::SimTime at);

  [[nodiscard]] const TaskRecord* record(util::TaskId id) const;
  [[nodiscard]] std::size_t submitted() const { return records_.size(); }
  // Tasks for which the origin saw an admission (TaskAccept, or completion
  // when the accept itself was lost). Survives RM crash-restarts, unlike
  // per-RM counters.
  [[nodiscard]] std::size_t admitted() const { return admitted_; }
  [[nodiscard]] std::size_t completed() const { return completed_; }
  [[nodiscard]] std::size_t completed_on_time() const {
    return completed_ - missed_;
  }
  [[nodiscard]] std::size_t missed() const { return missed_; }
  [[nodiscard]] std::size_t rejected() const { return rejected_; }
  [[nodiscard]] std::size_t failed() const { return failed_; }
  [[nodiscard]] std::size_t orphaned() const { return orphaned_; }
  [[nodiscard]] std::size_t pending() const;

  // Fraction of *finished* tasks that made their deadline.
  [[nodiscard]] double on_time_ratio() const;
  // Fraction of submitted tasks that missed, were rejected, failed or
  // orphaned — the paper's notion of not "meeting their deadlines".
  [[nodiscard]] double miss_ratio() const;
  [[nodiscard]] double goodput() const;  // on-time completions / submitted
  [[nodiscard]] const util::Samples& response_times_s() const {
    return response_times_;
  }

 private:
  std::unordered_map<util::TaskId, TaskRecord> records_;
  std::size_t admitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t missed_ = 0;
  std::size_t rejected_ = 0;
  std::size_t failed_ = 0;
  std::size_t orphaned_ = 0;
  util::Samples response_times_;
};

class System {
 public:
  explicit System(SystemConfig config);
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  // --- population ------------------------------------------------------------
  // Creates, places and starts a peer. With no explicit contact, an alive
  // peer is picked at random (the "random peer who redirects it to the
  // Resource Manager" of §4.1); the very first peer founds domain 0.
  util::PeerId add_peer(const overlay::PeerSpec& spec_template,
                        PeerInventory inventory,
                        std::optional<net::Coordinates> at = std::nullopt,
                        std::optional<util::PeerId> contact = std::nullopt);
  void leave_peer(util::PeerId peer);   // graceful
  void crash_peer(util::PeerId peer);   // abrupt failure
  // Brings a previously crashed/left peer back with the same identity,
  // placement and inventory (a process restart: uptime history resets, the
  // peer rejoins through a random contact). Returns false when the id is
  // unknown or the peer is still alive.
  bool restart_peer(util::PeerId peer);

  // --- lazy population (docs/SCALING.md) -------------------------------------
  // Pre-sizes the flat registry for a bulk registration (exact bytes/peer
  // accounting at scale; optional otherwise).
  void reserve_peers(std::size_t n) { registry_.reserve(n); }
  // Registers a peer as a bare registry row: coordinates are drawn (or
  // taken from `at`) and the inventory stashed, but no PeerNode, network
  // endpoint or join traffic exists until the peer is first touched. Costs
  // a few dozen bytes (PeerRegistry::footprint_bytes accounts it exactly).
  util::PeerId add_lazy_peer(const overlay::PeerSpec& spec_template,
                             PeerInventory inventory,
                             std::optional<net::Coordinates> at = std::nullopt);
  // First touch: builds the lazy peer's full state (node, endpoint, join).
  // No-op (false) unless the id names a Lazy row. submit_task materializes
  // its origin implicitly; the first tasks can still be rejected
  // "origin-unavailable" while the join handshake runs — cold-start
  // semantics, see docs/SCALING.md.
  bool materialize_peer(util::PeerId peer,
                        std::optional<util::PeerId> contact = std::nullopt);
  // Returns a quiescent, joined, non-RM peer to a bare row: graceful
  // leave, endpoint detached, inventory stashed back, node destroyed.
  // Refuses (false) peers with any in-flight local state (sessions, query
  // retries, queued jobs) or an RM role.
  bool demote_peer(util::PeerId peer);
  // Demotes every materialized peer with no application activity (task
  // submissions, job completions) for at least `min_idle`. Returns how
  // many were demoted.
  std::size_t demote_idle_peers(util::SimDuration min_idle);

  [[nodiscard]] const PeerRegistry& peer_registry() const { return registry_; }

  // --- fault injection -------------------------------------------------------
  // Installs and arms a deterministic fault plan (docs/FAULT_MODEL.md):
  // link-level loss/delay/duplication/reordering plus scheduled partitions
  // and crash-restarts, all reproducible from plan.seed. Call before
  // running the simulation. Works on both transports: sim mode hooks the
  // Network's delivery pipeline (fault::FaultInjector, exposed via
  // fault_injector()); socket mode installs a frame-granularity shim on
  // the SocketTransport plus the same scheduled partition/crash events
  // (fault::SocketFaultInjector, exposed via socket_fault_injector()).
  void install_fault_plan(fault::FaultPlan plan);
  [[nodiscard]] fault::FaultInjector* fault_injector() {
    return fault_injector_.get();
  }
  [[nodiscard]] fault::SocketFaultInjector* socket_fault_injector() {
    return socket_fault_.get();
  }

  [[nodiscard]] PeerNode* peer(util::PeerId id);
  [[nodiscard]] const PeerNode* peer(util::PeerId id) const;
  // Every registered peer id, lazy rows included, sorted. O(population):
  // prefer materialized_peer_ids() in per-snapshot paths at scale.
  [[nodiscard]] std::vector<util::PeerId> peer_ids() const;
  // Ids of peers that currently own a PeerNode, sorted.
  [[nodiscard]] std::vector<util::PeerId> materialized_peer_ids() const;
  [[nodiscard]] std::vector<util::PeerId> alive_peer_ids() const;
  [[nodiscard]] std::vector<util::PeerId> resource_manager_ids() const;
  [[nodiscard]] std::optional<util::PeerId> random_alive_peer(
      util::PeerId exclude);
  [[nodiscard]] std::size_t alive_count() const;

  // --- workload entry point ------------------------------------------------------
  // Submits a user query at `origin`; returns the task id (recorded in the
  // ledger immediately).
  util::TaskId submit_task(util::PeerId origin, QoSRequirements q);
  // Dynamic QoS renegotiation (§4.5): the user at the task's origin changes
  // the deadline (still relative to the original submission). Returns false
  // if the origin is gone or never owned the task.
  bool update_task_deadline(util::TaskId task, util::SimDuration new_deadline);

  // --- run -------------------------------------------------------------------------
  // Sim mode: runs the event loop to the target sim time. Socket mode: the
  // realtime driver paces sim time against the wall clock and pumps socket
  // I/O between event batches.
  void run_for(util::SimDuration d) { run_until(sim_.now() + d); }
  void run_until(util::SimTime t);
  // Socket mode only: linger up to `wall_ms`, flushing outbound frames and
  // processing stragglers, before a process exits. No-op in sim mode.
  void drain_transport(int wall_ms);

  // --- access ------------------------------------------------------------------------
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const sim::Simulator& simulator() const { return sim_; }
  // The control-plane message fabric. All protocol traffic (joins, task
  // queries, gossip, stream data) goes through this interface; in sim mode
  // it is the deterministic net::Network, in socket mode a
  // net::SocketTransport speaking length-prefixed frames over loopback.
  [[nodiscard]] net::Transport& transport() { return *transport_; }
  [[nodiscard]] const net::Transport& transport() const { return *transport_; }
  // The simulated network, when running in sim mode (partitions, fault
  // hooks, topology-derived delays). nullptr-deref hazard in socket mode:
  // guard with has_sim_network() in code that may run under either.
  [[nodiscard]] bool has_sim_network() const { return network_ != nullptr; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] const net::Network& network() const { return *network_; }
  [[nodiscard]] net::Topology& topology() { return topology_; }
  [[nodiscard]] const SystemConfig& config() const { return config_; }
  [[nodiscard]] TaskLedger& ledger() { return ledger_; }
  [[nodiscard]] const TaskLedger& ledger() const { return ledger_; }
  [[nodiscard]] util::Rng& workload_rng() { return workload_rng_; }

  // --- tracing ---------------------------------------------------------------------
  // Attach a tracer to capture structured control-plane events (task
  // lifecycle, membership, failover). nullptr (default) disables tracing.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] Tracer* tracer() { return tracer_; }
  // Emits one event if a tracer is attached (timestamp filled in here).
  // Payload is typed attrs; the legacy `detail` string is derived from them
  // (core::derive_detail), so call sites state each fact exactly once.
  void trace(TraceKind kind, util::PeerId peer,
             util::TaskId task = util::TaskId::invalid(),
             util::DomainId domain = util::DomainId::invalid(),
             obs::Attrs attrs = {});

  // Global id factories (unique across the whole system).
  [[nodiscard]] util::TaskId next_task_id() { return task_ids_.next(); }
  [[nodiscard]] util::JobId next_job_id() { return job_ids_.next(); }
  [[nodiscard]] util::ServiceId next_service_id() { return service_ids_.next(); }
  [[nodiscard]] util::ObjectId next_object_id() { return object_ids_.next(); }
  [[nodiscard]] util::PeerId next_peer_id() { return peer_ids_gen_.next(); }
  [[nodiscard]] util::DomainId next_domain_id() { return domain_ids_.next(); }

  // Domain -> shard mapping for the parallel engine: a peer lives on the
  // shard of its *current* domain (rebalance override when one exists,
  // domain id modulo num_threads otherwise), so a domain split or merge
  // migrates its peers automatically — the router is consulted afresh at
  // every schedule. Peers with no domain yet (joining, detached) fall back
  // to shard 0. With the ordered-commit engine the mapping balances work
  // across shards but can never change behaviour.
  [[nodiscard]] sim::ShardId shard_of(util::PeerId peer) const;
  // Domains currently routed away from their hash shard by the rebalancer.
  [[nodiscard]] std::size_t shard_override_count() const {
    return shard_overrides_.size();
  }

  // Domain census: (domain id, rm peer, member count) per live RM.
  struct DomainInfo {
    util::DomainId domain;
    util::PeerId rm;
    std::size_t members;
  };
  [[nodiscard]] std::vector<DomainInfo> domains() const;

 private:
  // Constructs a PeerNode for a registered row and wires its network
  // endpoint (shared by add_peer, materialize_peer and restart_peer).
  PeerNode* build_node(std::uint32_t row, overlay::PeerSpec spec,
                       PeerInventory inventory);
  // The engine's shard router: shard_of plus per-domain traffic tallies
  // (the rebalancer's signal for *what* to migrate).
  sim::ShardId route_peer(util::PeerId peer);
  [[nodiscard]] sim::ShardId domain_shard(util::DomainId d) const;
  // Rebalance hook (engine calls it at a barrier with per-shard
  // events-per-window EWMAs): migrates the heaviest domain off the hottest
  // shard when imbalance exceeds config_.rebalance_imbalance, then
  // refreshes the engine's per-pair lookahead matrix. Never schedules.
  void rebalance_shards(const std::vector<double>& shard_ewma);
  // Per-(src,dst) delay lower bounds from per-shard coordinate bounding
  // boxes (box-to-box distance lower-bounds any member-pair distance).
  [[nodiscard]] std::vector<util::SimDuration> compute_pair_lookahead() const;

  SystemConfig config_;
  sim::Simulator sim_;
  net::Topology topology_;
  // Exactly one of these two backends exists, per config_.transport.
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<net::SocketTransport> socket_transport_;
  // Points at whichever backend is live. Never null after construction.
  net::Transport* transport_ = nullptr;
  // Paces sim time against the wall clock in socket mode; null in sim mode.
  std::unique_ptr<net::RealtimeDriver> realtime_;
  // Flat SoA rows for every peer; PeerNodes only for materialized ones.
  PeerRegistry registry_;
  // Crashed nodes replaced by restart_peer(). Kept alive until teardown:
  // simulator callbacks they scheduled may still fire (guarded by alive_).
  // (Demotion, by contrast, *destroys* the node — every deferred callback
  // a node schedules is routed through its lifetime guard, so that is
  // safe; restart keeps the parking behaviour to stay byte-identical.)
  std::vector<std::unique_ptr<PeerNode>> retired_;
  std::unique_ptr<fault::FaultInjector> fault_injector_;
  // Socket-mode counterpart (declared after socket_transport_, so it is
  // destroyed first and clears its shim pointer off the live transport).
  std::unique_ptr<fault::SocketFaultInjector> socket_fault_;
  TaskLedger ledger_;
  Tracer* tracer_ = nullptr;
  util::Rng placement_rng_;
  util::Rng workload_rng_;

  // Rebalancer state, keyed by DomainId::value(). domain_events_ is a
  // decayed tally of events routed per domain; shard_overrides_ pins a
  // domain to a shard other than its hash home.
  util::FlatMap<std::uint64_t, double> domain_events_;
  util::FlatMap<std::uint64_t, sim::ShardId> shard_overrides_;

  util::IdGenerator<util::TaskId> task_ids_;
  util::IdGenerator<util::JobId> job_ids_;
  util::IdGenerator<util::ServiceId> service_ids_;
  util::IdGenerator<util::ObjectId> object_ids_;
  util::IdGenerator<util::PeerId> peer_ids_gen_;
  util::IdGenerator<util::DomainId> domain_ids_;
};

}  // namespace p2prm::core

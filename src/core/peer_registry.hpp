// Flat, struct-of-arrays registry of every peer the System has ever seen.
//
// The million-peer ceiling (ROADMAP "Million-peer simulations") is set by
// per-peer heap objects: a PeerNode carries a Processor, Profiler,
// ConnectionManager and half a dozen maps, which is fine for the peers that
// actually exchange events but fatal when 99% of a million-peer population
// is idle. The registry splits the two populations:
//
//   * every peer owns one *row* — parallel flat columns (id, capacity,
//     link, uptime origin, coordinates, lifecycle state) totalling a few
//     dozen bytes, accounted exactly by footprint_bytes();
//   * only *materialized* peers own a PeerNode, stored in a pointer-stable
//     slot vector the row indexes into.
//
// Lazy peers (state Lazy, no node) are registered but have never touched
// the network; System::materialize_peer builds their full state on first
// touch and System::demote_peer returns a quiescent node to a bare row.
// The `core.peers.*` gauges published from here (notably
// `core.peers.materialized`) make the split observable.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "overlay/peer.hpp"
#include "util/flat_map.hpp"

namespace p2prm::obs {
class MetricsRegistry;
}

namespace p2prm::core {

class PeerNode;
struct PeerInventory;

// Lifecycle of a row. Lazy rows have no node; all other states do (Left and
// Crashed keep their node so restart_peer can recover spec + inventory, the
// same contract the old per-peer map had).
enum class PeerState : std::uint8_t { Lazy, Live, Left, Crashed };
[[nodiscard]] std::string_view peer_state_name(PeerState s);

class PeerRegistry {
 public:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  PeerRegistry();
  ~PeerRegistry();
  PeerRegistry(const PeerRegistry&) = delete;
  PeerRegistry& operator=(const PeerRegistry&) = delete;

  // Pre-sizes every column (and the id->row map) for `n` peers so a bulk
  // registration neither rehashes nor reallocates — this is what makes
  // footprint_bytes()/size() a sharp per-peer figure at scale.
  void reserve(std::size_t n);

  // Adds a row for a peer not yet registered. Coordinates are the peer's
  // (already drawn) placement; they are pushed into the Topology only when
  // the peer materializes. Returns the row index.
  std::uint32_t add_row(const overlay::PeerSpec& spec, net::Coordinates at,
                        PeerState state);

  [[nodiscard]] bool contains(util::PeerId id) const {
    return row_of_.contains(id.value());
  }
  // Row index or kNoSlot.
  [[nodiscard]] std::uint32_t row_of(util::PeerId id) const {
    const std::uint32_t* r = row_of_.find(id.value());
    return r == nullptr ? kNoSlot : *r;
  }

  // --- column access (row index from row_of) -------------------------------
  [[nodiscard]] std::size_t size() const { return id_.size(); }
  [[nodiscard]] util::PeerId id(std::uint32_t row) const {
    return util::PeerId{id_[row]};
  }
  [[nodiscard]] PeerState state(std::uint32_t row) const { return state_[row]; }
  void set_state(std::uint32_t row, PeerState s) { state_[row] = s; }
  [[nodiscard]] net::Coordinates coordinates(std::uint32_t row) const {
    return net::Coordinates{x_[row], y_[row]};
  }
  // Rebuilds the announced spec of a row (identity, capacity, link, uptime
  // origin) — everything a PeerNode needs to come back to life.
  [[nodiscard]] overlay::PeerSpec spec(std::uint32_t row) const;
  void set_online_since(std::uint32_t row, util::SimTime t) {
    online_since_[row] = t;
  }

  // --- node storage ---------------------------------------------------------
  // Attaches a freshly built node to the row (row must not have one).
  // Pointer-stable: the node lives in a slot vector, so the returned raw
  // pointer survives other attach/detach calls.
  PeerNode* attach_node(std::uint32_t row, std::unique_ptr<PeerNode> node);
  // Removes and returns the row's node (caller decides to destroy or park).
  std::unique_ptr<PeerNode> detach_node(std::uint32_t row);
  [[nodiscard]] PeerNode* node(std::uint32_t row) const {
    const std::uint32_t s = node_slot_[row];
    return s == kNoSlot ? nullptr : nodes_[s].get();
  }
  [[nodiscard]] PeerNode* node_of(util::PeerId id) const {
    const std::uint32_t r = row_of(id);
    return r == kNoSlot ? nullptr : node(r);
  }
  [[nodiscard]] std::size_t materialized() const { return materialized_; }

  // Calls fn(row, PeerNode&) for every row that has a node, in unspecified
  // order — callers that expose ordering must sort, exactly as they did
  // over the old unordered_map.
  template <typename Fn>
  void for_each_node(Fn&& fn) const {
    for (std::uint32_t row = 0; row < id_.size(); ++row) {
      const std::uint32_t s = node_slot_[row];
      if (s != kNoSlot) fn(row, *nodes_[s]);
    }
  }
  // Calls fn(row) for every row, materialized or not.
  template <typename Fn>
  void for_each_row(Fn&& fn) const {
    for (std::uint32_t row = 0; row < id_.size(); ++row) fn(row);
  }

  // --- lazy-peer inventory stash -------------------------------------------
  // Lazy rows with a non-empty provisioned inventory keep it here until
  // materialization (most lazy peers carry nothing, so this stays tiny).
  void stash_inventory(util::PeerId id, PeerInventory inventory);
  // Removes and returns the stash (empty inventory when none).
  PeerInventory take_inventory(util::PeerId id);

  // --- accounting ------------------------------------------------------------
  // Bytes owned by the flat per-peer rows: column storage (at current
  // capacity) plus the id->row map's table. Deliberately *excludes*
  // materialized PeerNodes and stashed inventories — divide by size() for
  // the idle bytes/peer figure the scale test budgets (docs/SCALING.md).
  [[nodiscard]] std::size_t footprint_bytes() const;

  // core.peers.{total,materialized,lazy,left,crashed} gauges.
  void publish(obs::MetricsRegistry& registry) const;

 private:
  // SoA columns, index = row.
  std::vector<std::uint64_t> id_;
  std::vector<double> capacity_ops_;
  std::vector<double> link_up_;
  std::vector<double> link_down_;
  std::vector<util::SimTime> online_since_;
  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<PeerState> state_;
  std::vector<std::uint32_t> node_slot_;

  util::FlatMap<std::uint64_t, std::uint32_t> row_of_;

  // Materialized nodes; free_slots_ recycles holes left by detach_node.
  std::vector<std::unique_ptr<PeerNode>> nodes_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t materialized_ = 0;

  util::FlatMap<std::uint64_t, std::unique_ptr<PeerInventory>> stashed_;
};

}  // namespace p2prm::core

// A peer in the overlay: the actor that joins a domain, runs the local
// Connection Manager / Profiler / Scheduler (§2), executes service-graph
// hops, and — when selected — hosts the domain's Resource Manager.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/messages.hpp"
#include "core/resource_manager.hpp"
#include "overlay/connection_manager.hpp"
#include "overlay/membership.hpp"
#include "overlay/peer.hpp"
#include "profile/profiler.hpp"
#include "sched/processor.hpp"
#include "sim/retry.hpp"

namespace p2prm::core {

class System;

struct PeerInventory {
  std::vector<media::MediaObject> objects;
  std::vector<ServiceOffering> services;
};

struct PeerStats {
  std::uint64_t hops_executed = 0;
  std::uint64_t hops_cancelled = 0;
  std::uint64_t streams_forwarded = 0;
  std::uint64_t rejoin_attempts = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t join_retries = 0;
  // TaskQuery -> TaskAccept/TaskReject RPC retries (fault hardening).
  sim::RetryStats query_retry;
  // ProfilerReport -> ReportAck retries (when acks are enabled).
  sim::RetryStats report_retry;
};

class PeerNode {
 public:
  PeerNode(System& system, overlay::PeerSpec spec, PeerInventory inventory);
  ~PeerNode();

  PeerNode(const PeerNode&) = delete;
  PeerNode& operator=(const PeerNode&) = delete;

  // --- lifecycle ----------------------------------------------------------
  // Joins through `contact` (any alive peer); with no contact the peer
  // founds the first domain and becomes its RM.
  void start(std::optional<util::PeerId> contact);
  // Graceful departure: notify the RM, cancel local work.
  void leave();
  // Abrupt failure: everything local stops silently.
  void crash();
  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] bool joined() const { return joined_; }

  // --- identity / roles ------------------------------------------------------
  [[nodiscard]] const overlay::PeerSpec& spec() const { return spec_; }
  [[nodiscard]] util::PeerId id() const { return spec_.id; }
  [[nodiscard]] overlay::PeerRole role() const {
    return rm_ ? overlay::PeerRole::ResourceManager : overlay::PeerRole::Regular;
  }
  [[nodiscard]] util::DomainId domain() const { return domain_; }
  [[nodiscard]] util::PeerId current_rm() const { return my_rm_; }
  [[nodiscard]] ResourceManager* resource_manager() { return rm_.get(); }
  [[nodiscard]] const ResourceManager* resource_manager() const {
    return rm_.get();
  }

  // --- user API ----------------------------------------------------------------
  // Submits a query from the user at this peer to its RM (Fig. 2 step A).
  void submit_request(util::TaskId task, QoSRequirements q);
  // §4.5 dynamic QoS change: send the RM a new (relaxed or tightened)
  // deadline for a task this user submitted.
  void request_qos_update(util::TaskId task, util::SimDuration new_deadline);

  // --- components -----------------------------------------------------------------
  [[nodiscard]] sched::Processor& processor() { return *processor_; }
  [[nodiscard]] profile::Profiler& profiler() { return profiler_; }
  [[nodiscard]] overlay::ConnectionManager& connections() { return conns_; }
  [[nodiscard]] const PeerInventory& inventory() const { return inventory_; }
  [[nodiscard]] const PeerStats& stats() const { return stats_; }
  // Writes peer.* metrics (hop execution, stream forwarding, rejoin and
  // RPC-retry counters) plus this peer's processor series, labelled with
  // the peer id. An RM host also publishes its rm.* metrics.
  void publish(obs::MetricsRegistry& registry) const;
  [[nodiscard]] std::size_t active_sessions() const { return sessions_.size(); }
  // The profiler report period currently in force (RM-announced under
  // adaptive feedback, else the configured default).
  [[nodiscard]] util::SimDuration current_report_period() const;
  [[nodiscard]] std::size_t buffered_early_data() const {
    return early_data_.size();
  }
  // Backup-RM probes (src/check invariants): the backup designation this
  // peer last heard from its RM, and the synced info-base copy it would
  // restore from on takeover.
  [[nodiscard]] util::PeerId designated_backup() const {
    return designated_backup_;
  }
  [[nodiscard]] const std::optional<InfoBaseSnapshot>& backup_snapshot() const {
    return backup_copy_;
  }

  // --- plumbing used by ResourceManager and System ------------------------------
  void handle_message(util::PeerId from, const net::Message& message);
  void send(util::PeerId to, net::MessagePtr message);
  [[nodiscard]] System& system() { return system_; }
  // Promotion entry point (first node, JoinPromote, backup takeover).
  void become_rm(util::DomainId domain, std::vector<overlay::RmInfo> known_rms,
                 std::uint64_t epoch,
                 std::optional<InfoBaseSnapshot> restored);

  // --- lifetime-guarded deferral (docs/SCALING.md) -------------------------
  // Every one-shot callback a node (or its hosted RM) hands the simulator
  // must go through these: the wrapper drops the call if the node has been
  // destroyed by then. This is what makes demotion free to destroy a
  // PeerNode mid-run — timers and retry-ops are cancelled explicitly by
  // stop_local_work, network deliveries die on the endpoint epoch, and
  // deferred lambdas die here.
  void defer_after(util::SimDuration delay, std::function<void()> fn) {
    system_guarded_schedule(delay, /*absolute=*/false, std::move(fn));
  }
  void defer_at(util::SimTime when, std::function<void()> fn) {
    system_guarded_schedule(when, /*absolute=*/true, std::move(fn));
  }

  // --- lazy lifecycle probes (System::demote_peer) -------------------------
  // A peer is quiescent when demoting it cannot lose work: joined as a
  // plain member (never an RM and not holding the domain's backup
  // snapshot), with no sessions, buffered data, queued jobs or in-flight
  // task RPCs.
  [[nodiscard]] bool quiescent() const;
  // Last time this peer did application work — submitted a task or
  // finished a job (start time when none since). Control traffic
  // (heartbeats, gossip, reports) deliberately does not count: it never
  // stops, so it would make every member look permanently busy.
  [[nodiscard]] util::SimTime last_activity() const { return last_activity_; }
  // Step down with no known successor and rejoin through the overlay (an
  // RM that lost every member to failure detection is almost certainly the
  // partitioned one). Invoked by the hosted ResourceManager via a deferred
  // event.
  void demote_and_rejoin();

 private:
  struct HopSession {
    HopSpec spec;
    bool job_submitted = false;
    util::JobId job;
    util::SimTime data_arrived_at = 0;
    util::SimTime pipeline_started_at = 0;
    // Distinguishes re-compositions of the same (task, hop) so expiry
    // events for a superseded session cannot reap its successor.
    std::uint64_t token = 0;
  };
  using SessionKey = std::pair<util::TaskId, std::size_t>;

  // --- membership client side ---------------------------------------------------
  void on_join_redirect(const overlay::JoinRedirect& m);
  void on_join_accept(util::PeerId from, const overlay::JoinAccept& m);
  void on_join_promote(const overlay::JoinPromote& m);
  void on_rm_heartbeat(util::PeerId from, const overlay::RmHeartbeat& m);
  void on_rm_takeover(util::PeerId from, const overlay::RmTakeover& m);
  // Step down as RM in favour of a higher-epoch successor (split-brain
  // resolution after a partition heals).
  void abdicate(util::PeerId new_rm, std::uint64_t new_epoch);
  void on_backup_sync(const BackupSync& m, util::PeerId from);
  void announce_to_rm();
  void membership_check_tick();
  void rejoin();

  // --- session execution (Fig. 2 step C) --------------------------------------------
  void on_graph_compose(const GraphCompose& m);
  void on_source_start(const SourceStart& m);
  void on_stream_data(const StreamData& m);
  void on_hop_cancel(const HopCancel& m);
  void on_job_finished(const sched::Job& job, sched::JobStatus status);
  void forward_hop_output(const HopSession& session);
  void deliver_to_user(const StreamData& m);

  // --- profiler reporting ----------------------------------------------------------
  void report_tick();

  // Settles the retry op watching `task`'s TaskQuery (any terminal signal —
  // accept, reject, failure, completion — counts as an ack).
  void settle_task_query(util::TaskId task);

  void stop_local_work();
  void system_guarded_schedule(std::int64_t when_or_delay, bool absolute,
                               std::function<void()> fn);

  System& system_;
  overlay::PeerSpec spec_;
  PeerInventory inventory_;
  // Lifetime guard: deferred callbacks hold a weak_ptr and no-op once the
  // node is destroyed (demotion). The pointee is irrelevant.
  std::shared_ptr<char> life_ = std::make_shared<char>('\0');
  util::SimTime last_activity_ = 0;

  std::unique_ptr<sched::Processor> processor_;
  profile::Profiler profiler_;
  overlay::ConnectionManager conns_;
  std::unique_ptr<ResourceManager> rm_;

  bool alive_ = false;
  bool joined_ = false;
  util::DomainId domain_;
  util::PeerId my_rm_;
  std::uint64_t epoch_ = 0;
  util::SimTime last_rm_heartbeat_ = 0;
  util::PeerId designated_backup_;
  std::optional<InfoBaseSnapshot> backup_copy_;
  std::vector<overlay::RmInfo> backup_known_rms_;

  std::map<SessionKey, HopSession> sessions_;
  std::map<util::JobId, SessionKey> job_index_;
  // StreamData that arrived before its GraphCompose (reordering guard),
  // stamped with a token for expiry.
  std::map<SessionKey, std::pair<StreamData, std::uint64_t>> early_data_;
  std::uint64_t session_tokens_ = 0;
  void close_session_connections(const HopSession& session);

  sim::Timer report_timer_;
  util::SimDuration report_period_ = 0;  // current (possibly RM-announced)
  sim::Timer membership_timer_;
  PeerStats stats_;
  // Retry/timeout hardening (see docs/FAULT_MODEL.md). Each submitted
  // TaskQuery is watched until a terminal answer; each profiler report is
  // resent until acked (or superseded by the next report).
  std::map<util::TaskId, sim::RetryOp> query_retries_;
  sim::RetryOp report_retry_op_;
  std::uint64_t report_seq_ = 0;
  ProfilerReport pending_report_;
  // Join progress: redirect hops this attempt; retries scheduled with
  // backoff when an attempt dead-ends (rejection or a redirect loop).
  // The bootstrap contact is remembered because in a multi-process
  // deployment this System hosts only a slice of the overlay: when
  // random_alive_peer finds nobody locally, retries must still go out
  // across the wire instead of concluding the network is gone.
  std::optional<util::PeerId> boot_contact_;
  int redirect_hops_ = 0;
  int join_attempts_ = 0;
  int join_watchdog_token_ = 0;
  void schedule_join_retry();
  // Arms a timeout for the join request just sent: a lost request (drop,
  // partition, dead contact) must not leave the peer detached forever.
  void arm_join_watchdog();
  // Re-adopts this peer into `domain` under `from` after it dropped out
  // via rejoin(): the takeover RM's announcement/heartbeats are
  // authoritative for members whose silence threshold fired first.
  bool try_readopt(util::PeerId from, util::DomainId domain,
                   std::uint64_t epoch);
};

}  // namespace p2prm::core
